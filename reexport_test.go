package itask

import (
	"errors"
	"math"
	"testing"
)

func TestGenerateSceneHelper(t *testing.T) {
	img, gts := GenerateScene(Driving, 5)
	if img.Shape[0] != 3 || img.Shape[1] != img.Shape[2] {
		t.Fatalf("image shape %v", img.Shape)
	}
	if len(gts) == 0 {
		t.Fatal("no ground truth")
	}
	names := map[string]bool{}
	for _, n := range ClassNames() {
		names[n] = true
	}
	for _, gt := range gts {
		if !names[gt.Class] {
			t.Errorf("unknown class %q", gt.Class)
		}
		if gt.Box.W <= 0 || gt.Box.H <= 0 {
			t.Errorf("degenerate box %+v", gt.Box)
		}
	}
	// Deterministic.
	img2, _ := GenerateScene(Driving, 5)
	if !img.Equal(img2) {
		t.Error("GenerateScene not deterministic")
	}
}

func TestReexportedGeometry(t *testing.T) {
	a := Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	if math.Abs(IoU(a, a)-1) > 1e-9 {
		t.Errorf("IoU(a,a) = %v, want 1", IoU(a, a))
	}
	img := NewImage(3, 16)
	if img.Size() != 3*16*16 {
		t.Errorf("NewImage size %d", img.Size())
	}
}

// The re-exported registry surface: artifact IDs round-trip through
// ParseArtifactID, and the lifecycle errors discriminate with errors.Is.
func TestReexportedRegistryTypes(t *testing.T) {
	id := ArtifactID{Name: "patrol-student", Version: 3, Checksum: "abcd1234"}
	back, err := ParseArtifactID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseArtifactID(%q) = %+v, %v; want %+v", id.String(), back, err, id)
	}
	if _, err := ParseArtifactID("not-an-id"); err == nil {
		t.Error("ParseArtifactID accepted a bare name")
	}
	if ErrUnknownArtifact == nil || ErrModelConflict == nil || ErrNoRollback == nil {
		t.Fatal("registry errors not re-exported")
	}

	// The aliases are the same types the Pipeline returns: RollbackModel on
	// an unpublished name yields an ErrUnknownArtifact the caller can test
	// without importing internal packages.
	p := New(DefaultOptions())
	if _, err := p.RollbackModel("never-published"); !errors.Is(err, ErrUnknownArtifact) {
		t.Errorf("RollbackModel error = %v, want ErrUnknownArtifact", err)
	}
	var stats RegistryStats = p.RegistryStats()
	if stats.Publishes != 0 || stats.Names != 0 {
		t.Errorf("fresh pipeline registry stats = %+v, want zeroes", stats)
	}
	var _ []ModelVersion = p.Registry().Versions("never-published")
}

func TestClassNamesStable(t *testing.T) {
	names := ClassNames()
	if len(names) == 0 || names[0] != "car" {
		t.Errorf("vocabulary unexpected: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate class name %q", n)
		}
		seen[n] = true
	}
}
