package itask

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// End-to-end proof that the serving layer's result cache keys pin full
// versioned artifact IDs through the real registry: publishing a new student
// version makes the old version's cached entries unreachable (the route
// epoch — the registry snapshot sequence — invalidates the memoized route,
// and the new versioned ID misses), and rolling back re-serves the restored
// version's still-valid entries without executing a kernel.
func TestResultCacheAcrossPublishRollback(t *testing.T) {
	opts := DefaultOptions()
	rng := tensor.NewRNG(5)
	dir := t.TempDir()
	teacherPath := filepath.Join(dir, "teacher.ckpt")
	if err := vit.New(opts.TeacherCfg, rng.Split()).SaveFile(teacherPath); err != nil {
		t.Fatal(err)
	}
	studentPath := filepath.Join(dir, "student.ckpt")
	if err := vit.New(opts.StudentCfg, rng.Split()).SaveFile(studentPath); err != nil {
		t.Fatal(err)
	}

	p := New(opts)
	if err := p.LoadGeneralist(teacherPath); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineTask("patrol", "watch the perimeter for vehicles and people"); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadStudent("patrol", studentPath); err != nil {
		t.Fatal(err)
	}

	cfg := serve.DefaultConfig()
	cfg.BatchDelay = 0
	cfg.CacheBytes = 8 << 20
	cfg.CacheTTL = time.Minute
	cfg.Coalesce = true
	srv, err := serve.New(p.ServeBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	img := tensor.New(3, opts.TeacherCfg.ImageSize, opts.TeacherCfg.ImageSize)
	detect := func() serve.Result {
		t.Helper()
		res, err := srv.Detect(context.Background(), serve.Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := detect()
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	if res := detect(); !res.Cached || res.Model != first.Model {
		t.Fatalf("repeat = %+v, want cache hit on %s", res, first.Model)
	}

	// Publish v2 of the student: same weights, new version — the cache must
	// not serve v1's entry for a request routed to v2.
	if err := p.LoadStudent("patrol", studentPath); err != nil {
		t.Fatal(err)
	}
	afterPublish := detect()
	if afterPublish.Cached {
		t.Fatal("request routed to the new version hit the old version's cache entry")
	}
	if afterPublish.Model == first.Model {
		t.Fatalf("post-publish request served by %s, want a new version", afterPublish.Model)
	}

	// Roll back: v1 is active again and its entry is still TTL-valid.
	if _, err := p.RollbackModel("patrol-student"); err != nil {
		t.Fatal(err)
	}
	afterRollback := detect()
	if !afterRollback.Cached || afterRollback.Model != first.Model {
		t.Fatalf("post-rollback = %+v, want %s served from cache", afterRollback, first.Model)
	}

	snap := srv.Snapshot()
	if snap.ResultCacheHits != 2 {
		t.Fatalf("ResultCacheHits = %d, want 2", snap.ResultCacheHits)
	}
}
