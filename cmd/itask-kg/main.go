// Command itask-kg runs only the front half of the iTask pipeline: it
// compiles a natural-language mission description into the abstract
// knowledge graph (via the simulated LLM) and prints the graph as JSON plus
// the derived class priors — useful for debugging missions and for feeding
// external tools.
//
// Usage:
//
//	itask-kg -mission "Detect ripe apples, ignore leaves" [-json] [-threshold 0.45]
package main

import (
	"flag"
	"fmt"
	"os"

	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/scene"
)

func main() {
	mission := flag.String("mission", "", "natural-language mission description (required)")
	name := flag.String("name", "mission", "task name for the graph's root node")
	asJSON := flag.Bool("json", false, "print the full graph as JSON instead of a summary")
	asDOT := flag.Bool("dot", false, "print the graph in Graphviz DOT format")
	threshold := flag.Float64("threshold", 0.45, "relevance threshold for the class list")
	flag.Parse()

	if *mission == "" {
		fmt.Fprintln(os.Stderr, "itask-kg: -mission is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := llm.New(llm.DefaultOptions()).Generate(*name, *mission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itask-kg: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		if err := g.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "itask-kg: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *asDOT {
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "itask-kg: %v\n", err)
			os.Exit(1)
		}
		return
	}

	taskID := "task:" + *name
	fmt.Printf("mission: %q\n", *mission)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	fmt.Println("target concepts:")
	for _, cid := range g.TargetConcepts(taskID) {
		n, _ := g.Node(cid)
		fmt.Printf("  %s\n", n.Label)
		for _, rel := range kg.AttrRelations() {
			for _, e := range g.Out(cid, rel) {
				a, _ := g.Node(e.To)
				fmt.Printf("    %-12s %-10s %.2f\n", string(rel), a.Label, e.Weight)
			}
		}
	}
	if avoided := g.Out(taskID, kg.Avoids); len(avoided) > 0 {
		fmt.Println("avoided concepts:")
		for _, e := range avoided {
			n, _ := g.Node(e.To)
			fmt.Printf("  %s (%.2f)\n", n.Label, e.Weight)
		}
	}

	fmt.Printf("\nclass priors (vocabulary of %d classes):\n", scene.NumClasses)
	priors := kg.ClassPriors(g, taskID)
	for c := scene.ClassID(0); c < scene.NumClasses; c++ {
		marker := " "
		if priors[c] >= *threshold {
			marker = "*"
		}
		fmt.Printf("  %s %-14s %.3f\n", marker, c.Name(), priors[c])
	}
	fmt.Printf("\nclasses the detector will report (prior >= %.2f):", *threshold)
	for _, c := range kg.RelevantClasses(g, taskID, *threshold) {
		fmt.Printf(" %s", c.Name())
	}
	fmt.Println()
}
