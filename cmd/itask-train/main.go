// Command itask-train trains the iTask model zoo — the multi-task teacher,
// the generalist, and one distilled student per standard task — and saves
// checkpoints that other tools and programs can load with vit.LoadParams.
//
// Alongside the flat checkpoints it publishes each artifact into the
// versioned registry layout (<out>/<name>/v<N>/{manifest.json, weights}),
// with the manifest checksum produced by the checksummed save path, so
// itask-serve's /v1/models/reload can hot-swap the new versions with
// end-to-end integrity verification. Re-running into the same -out directory
// publishes the next version of each name; existing versions are immutable.
//
// Usage:
//
//	itask-train -out ./models [-samples 96] [-epochs 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/experiments"
	"itask/internal/quant"
	"itask/internal/registry"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

func main() {
	outDir := flag.String("out", "models", "output directory for checkpoints")
	samples := flag.Int("samples", 96, "training scenes per task")
	epochs := flag.Int("epochs", 20, "training epochs")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	if err := run(*outDir, *samples, *epochs, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "itask-train: %v\n", err)
		os.Exit(1)
	}
}

func run(outDir string, samples, epochs int, seed uint64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	rng := tensor.NewRNG(seed)
	tasks := dataset.StandardTasks()
	gen := scene.DefaultGenConfig()
	th := eval.DefaultThresholds()

	// Teacher.
	fmt.Printf("training teacher (%d scenes/task, %d epochs)...\n", samples, epochs)
	mixed := dataset.BuildMixed(tasks, samples, gen, rng.Split())
	teacher := vit.New(experiments.TeacherModelCfg(), rng.Split())
	tcfg := distill.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Seed = rng.Uint64()
	tcfg.Log = os.Stdout
	if _, err := distill.Train(teacher, mixed, tcfg); err != nil {
		return err
	}
	if err := teacher.SaveFile(filepath.Join(outDir, "teacher.ckpt")); err != nil {
		return err
	}
	if err := publishVersion(outDir, "teacher", registry.Teacher, "", "teacher.ckpt", 0, teacher.SaveFileSum); err != nil {
		return err
	}
	// Deployable quantized generalist alongside the float checkpoint.
	qm, err := quant.FromViT(teacher, quant.DefaultConfig())
	if err != nil {
		return err
	}
	if err := qm.SaveFile(filepath.Join(outDir, "generalist-q8.itq8")); err != nil {
		return err
	}
	if err := publishVersion(outDir, "generalist-q8", registry.Generalist, "", "generalist-q8.itq8", 8, qm.SaveFileSum); err != nil {
		return err
	}
	fmt.Printf("quantized generalist: %.1f KiB int8\n", float64(qm.WeightBytes())/1024)

	// Per-task students.
	for _, task := range tasks {
		fmt.Printf("distilling student for %s...\n", task.Name)
		set := dataset.Build(task, samples, gen, rng.Split())
		student := vit.New(experiments.StudentModelCfg(), rng.Split())
		dcfg := distill.DefaultDistillConfig()
		dcfg.Train.Epochs = epochs
		dcfg.Train.Seed = rng.Uint64()
		if _, err := distill.Distill(teacher, student, set, dcfg); err != nil {
			return err
		}
		if err := student.SaveFile(filepath.Join(outDir, "student-"+task.Name+".ckpt")); err != nil {
			return err
		}
		if err := publishVersion(outDir, task.Name+"-student", registry.TaskSpecific, task.Name, "student.ckpt", 0, student.SaveFileSum); err != nil {
			return err
		}
		val := dataset.Build(task, 32, gen, rng.Split())
		s := eval.Run(eval.DetectorOf(student, th), val, dataset.ClassInts(task.Classes), th)
		fmt.Printf("  %s student: %s\n", task.Name, s)
	}

	fmt.Printf("checkpoints written to %s\n", outDir)
	return nil
}

// publishVersion writes one artifact into the registry layout under root:
// the next version directory for name, the checksummed weights file (save is
// vit's or quant's SaveFileSum, returning the content hash), and last the
// manifest — the commit point; a crash before it leaves no visible version.
func publishVersion(root, name string, kind registry.Kind, task, file string, bits int,
	save func(path string) (string, error)) error {
	v, err := registry.LatestVersion(root, name)
	if err != nil {
		return err
	}
	man := registry.Manifest{Name: name, Version: v + 1, Kind: kind.String(), Task: task, File: file, Bits: bits}
	dir := registry.VersionDir(root, name, man.Version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum, err := save(filepath.Join(dir, file))
	if err != nil {
		return err
	}
	man.Checksum = sum
	if _, err := registry.WriteManifest(root, man); err != nil {
		return err
	}
	fmt.Printf("published %s@v%d (checksum %s)\n", name, man.Version, sum)
	return nil
}
