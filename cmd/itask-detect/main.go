// Command itask-detect runs the full iTask pipeline on one synthetic scene:
// it trains the quick generalist, defines a mission from the command line,
// optionally distills a task-specific student, renders a scene from the
// chosen domain, and prints the detections next to the ground truth —
// including an ASCII rendering of the scene.
//
// Usage:
//
//	itask-detect -mission "Detect cars and pedestrians, ignore vegetation" \
//	             -domain driving [-student] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"itask"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

func main() {
	mission := flag.String("mission", "Detect cars, trucks, pedestrians, cyclists and cones on the road",
		"natural-language mission description")
	domainName := flag.String("domain", "driving", "scene domain: driving, medical, industrial, orchard")
	student := flag.Bool("student", false, "distill a task-specific student before detecting")
	models := flag.String("models", "", "load teacher.ckpt from this directory (itask-train output) instead of training")
	saliency := flag.Bool("saliency", false, "print the attention-rollout saliency map of the scene")
	seed := flag.Uint64("seed", 7, "scene seed")
	flag.Parse()

	dom, ok := scene.DomainByName(*domainName)
	if !ok {
		fmt.Fprintf(os.Stderr, "itask-detect: unknown domain %q\n", *domainName)
		os.Exit(2)
	}

	pipe := itask.New(itask.DefaultOptions())
	if *models != "" {
		fmt.Fprintf(os.Stderr, "loading generalist from %s/teacher.ckpt...\n", *models)
		if err := pipe.LoadGeneralist(*models + "/teacher.ckpt"); err != nil {
			fmt.Fprintf(os.Stderr, "itask-detect: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintln(os.Stderr, "training quantized generalist on the standard task mixture...")
		if err := pipe.TrainGeneralist(nil); err != nil {
			fmt.Fprintf(os.Stderr, "itask-detect: %v\n", err)
			os.Exit(1)
		}
	}
	if err := pipe.DefineTask("mission", *mission); err != nil {
		fmt.Fprintf(os.Stderr, "itask-detect: %v\n", err)
		os.Exit(1)
	}
	if *student {
		fmt.Fprintln(os.Stderr, "distilling task-specific student...")
		if err := pipe.DistillStudent("mission", dom.ID); err != nil {
			fmt.Fprintf(os.Stderr, "itask-detect: %v\n", err)
			os.Exit(1)
		}
	}

	// Knowledge-graph summary.
	priors, _ := pipe.Priors("mission")
	fmt.Println("knowledge-graph class priors:")
	for c := scene.ClassID(0); c < scene.NumClasses; c++ {
		if priors[c] >= 0.3 {
			fmt.Printf("  %-14s %.2f\n", c.Name(), priors[c])
		}
	}

	sc := scene.Generate(dom, scene.DefaultGenConfig(), tensor.NewRNG(*seed))
	dets, info, err := pipe.Detect("mission", sc.Image)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itask-detect: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nscene (%s domain, seed %d):\n%s\n", dom.Name, *seed, asciiScene(sc))
	fmt.Println("ground truth:")
	for _, gt := range sc.Objects {
		fmt.Printf("  %-14s at (%.2f,%.2f) size %.2fx%.2f\n",
			gt.Class.Name(), gt.Box.X, gt.Box.Y, gt.Box.W, gt.Box.H)
	}
	fmt.Printf("\ndetections (served by %s, %s; simulated accel: %.0f us, %.0f uJ):\n",
		info.Name, info.Kind, info.LatencyUS, info.EnergyUJ)
	if len(dets) == 0 {
		fmt.Println("  (none)")
	}
	for _, d := range dets {
		fmt.Printf("  %-14s at (%.2f,%.2f) size %.2fx%.2f  score %.2f  relevance %.2f\n",
			d.Class, d.Box.X, d.Box.Y, d.Box.W, d.Box.H, d.Score, d.Relevance)
	}

	if *saliency {
		// Rollout on the float model serving the mission (student if
		// distilled, else the teacher).
		m := pipe.Student("mission")
		if m == nil {
			m = pipe.Teacher()
		}
		fmt.Printf("\nattention-rollout saliency (%dx%d patch grid):\n", m.Cfg.Grid(), m.Cfg.Grid())
		fmt.Print(vit.RenderSaliencyASCII(m.Cfg, m.AttentionRollout(sc.Image)))
	}
}

// asciiScene renders the scene as a 32x16 character grid: object letters on
// a dotted background (luminance-based shading for the rest).
func asciiScene(sc scene.Scene) string {
	const w, h = 32, 16
	grid := make([][]byte, h)
	size := sc.Image.Shape[1]
	for y := range grid {
		grid[y] = make([]byte, w)
		for x := range grid[y] {
			px := sc.Image.At(0, y*size/h, x*size/w) // red channel as luminance proxy
			switch {
			case px > 0.66:
				grid[y][x] = '#'
			case px > 0.4:
				grid[y][x] = '+'
			default:
				grid[y][x] = '.'
			}
		}
	}
	for _, gt := range sc.Objects {
		x := int(gt.Box.X * w)
		y := int(gt.Box.Y * h)
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = gt.Class.Name()[0] - 'a' + 'A'
		}
	}
	out := make([]byte, 0, h*(w+1))
	for _, row := range grid {
		out = append(out, row...)
		out = append(out, '\n')
	}
	return string(out)
}
