// Command itask-bench regenerates every table and figure of the iTask
// evaluation (experiment index in DESIGN.md §4) from a single deterministic
// training run.
//
// Usage:
//
//	itask-bench [-scale quick|full] [-only E1,E3,...]
//
// Hardware experiments (E3, E5, E6) are analytical and run instantly;
// accuracy experiments (E1, E2, E4, E7, E8) first train the model zoo,
// which takes about a minute at quick scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"itask/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment ids (E1..E8); empty = all")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "itask-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag == "" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"} {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	out := os.Stdout

	// Analytical experiments need no training.
	if want["E3"] {
		experiments.FprintE3(out, experiments.E3Hardware())
		experiments.FprintE3Batch(out, experiments.E3GPUBatchSweep())
		fmt.Fprintln(out)
	}
	if want["E5"] {
		experiments.FprintE5(out, experiments.E5ArraySweep())
		fmt.Fprintln(out)
	}
	if want["E6"] {
		experiments.FprintE6(out, experiments.E6EnergyBreakdown())
		fmt.Fprintln(out)
	}
	if want["E12"] {
		rows, err := experiments.E12Streaming(33000, []float64{500, 1000, 2000, 4000, 6000})
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E12: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE12(out, 33000, rows)
		fmt.Fprintln(out)
	}

	needEnv := want["E1"] || want["E2"] || want["E4"] || want["E7"] || want["E8"] ||
		want["E9"] || want["E10"] || want["E11"] || want["E13"]
	if !needEnv {
		return
	}
	fmt.Fprintf(os.Stderr, "itask-bench: training %s-scale environment (teacher, generalist, %d students)...\n",
		scale.Name, 4)
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itask-bench: %v\n", err)
		os.Exit(1)
	}

	if want["E1"] {
		experiments.FprintE1(out, experiments.E1ConfigAccuracy(env))
		fmt.Fprintln(out)
	}
	if want["E2"] {
		experiments.FprintE2(out, env, experiments.E2MultiTask(env))
		fmt.Fprintln(out)
	}
	if want["E4"] {
		rows, err := experiments.E4FewShot(env, "harvest")
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E4: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE4(out, "harvest", rows)
		fmt.Fprintln(out)
	}
	if want["E7"] {
		rows, err := experiments.E7BitWidth(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E7: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE7(out, rows)
		fmt.Fprintln(out)
	}
	if want["E8"] {
		kgRows, err := experiments.E8KGAblation(env, "patrol")
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E8a: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE8KG(out, "patrol", kgRows)
		dRows, err := experiments.E8DistillAblation(env, "inspect")
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E8b: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE8Distill(out, "inspect", dRows)
		fmt.Fprintln(out)
	}
	if want["E9"] {
		rows, err := experiments.E9SampleEfficiency(env, "triage", scale.E9Samples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E9: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE9(out, "triage", rows)
		fmt.Fprintln(out)
	}
	if want["E10"] {
		rows, err := experiments.E10NoiseRobustness(env, []float64{1, 2, 3, 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E10: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE10(out, rows)
		fmt.Fprintln(out)
	}
	if want["E11"] {
		rows, err := experiments.E11DeploymentVariants(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E11: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE11(out, rows)
		fmt.Fprintln(out)
	}
	if want["E13"] {
		rows, err := experiments.E13FaultInjection(env, []float64{1e-5, 1e-4, 1e-3, 1e-2})
		if err != nil {
			fmt.Fprintf(os.Stderr, "itask-bench: E13: %v\n", err)
			os.Exit(1)
		}
		experiments.FprintE13(out, rows)
	}
}
