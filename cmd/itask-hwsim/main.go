// Command itask-hwsim explores the iTask hardware accelerator design space:
// per-layer breakdowns, device comparisons, and parameter sweeps, all from
// the analytical cycle/energy model in internal/hwsim.
//
// Usage:
//
//	itask-hwsim -model teacher            # device comparison + layer table
//	itask-hwsim -sweep array              # array-size sweep (Fig. 2 series)
//	itask-hwsim -sweep freq               # clock sweep
//	itask-hwsim -rows 16 -cols 16         # custom design point
package main

import (
	"flag"
	"fmt"
	"os"

	"itask/internal/experiments"
	"itask/internal/hwsim"
	"itask/internal/vit"
)

func main() {
	modelName := flag.String("model", "teacher", "model geometry: teacher or student")
	rows := flag.Int("rows", 0, "override systolic array rows")
	cols := flag.Int("cols", 0, "override systolic array cols")
	freq := flag.Float64("freq", 0, "override clock (MHz)")
	sweep := flag.String("sweep", "", "sweep a parameter: array, freq, bandwidth, dataflow")
	rtl := flag.String("rtl", "", "write the accelerator's generated Verilog to this path and exit")
	flag.Parse()

	var model vit.Config
	switch *modelName {
	case "teacher":
		model = experiments.HWTeacherCfg()
	case "student":
		model = experiments.HWStudentCfg()
	default:
		fmt.Fprintf(os.Stderr, "itask-hwsim: unknown model %q\n", *modelName)
		os.Exit(2)
	}

	accel := hwsim.DefaultAccel()
	if *rows > 0 {
		accel.Rows = *rows
	}
	if *cols > 0 {
		accel.Cols = *cols
	}
	if *freq > 0 {
		accel.FreqMHz = *freq
	}

	if *rtl != "" {
		if err := os.WriteFile(*rtl, []byte(hwsim.GenerateVerilog(accel)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "itask-hwsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%dx%d array RTL)\n", *rtl, accel.Rows, accel.Cols)
		return
	}

	switch *sweep {
	case "":
		c := hwsim.Compare(accel, hwsim.DefaultGPU(), hwsim.DefaultCPU(), model)
		fmt.Printf("model: %s (%d MMACs/inference)\n\n", *modelName, model.TotalMACs()/1e6)
		fmt.Print(c.String())
		fmt.Printf("\naccelerator per-layer breakdown (%s):\n", accel.Name)
		fmt.Print(c.Accel.LayerTable())
	case "array":
		fmt.Printf("array sweep on %s model:\n", *modelName)
		fmt.Printf("%-8s %12s %12s %8s %14s\n", "array", "latency(us)", "energy(uJ)", "util", "EDP(uJ*us)")
		for _, n := range []int{4, 8, 16, 32, 64, 128} {
			cfg := accel
			cfg.Rows, cfg.Cols = n, n
			r := hwsim.SimulateAccel(cfg, model)
			fmt.Printf("%dx%-6d %12.1f %12.1f %7.1f%% %14.0f\n",
				n, n, r.LatencyUS, r.TotalUJ, 100*r.MeanUtilization, r.TotalUJ*r.LatencyUS)
		}
	case "freq":
		fmt.Printf("frequency sweep on %s model (%dx%d array):\n", *modelName, accel.Rows, accel.Cols)
		fmt.Printf("%-10s %12s %12s\n", "MHz", "latency(us)", "energy(uJ)")
		for _, f := range []float64{100, 200, 400, 800, 1600} {
			cfg := accel
			cfg.FreqMHz = f
			r := hwsim.SimulateAccel(cfg, model)
			fmt.Printf("%-10.0f %12.1f %12.1f\n", f, r.LatencyUS, r.TotalUJ)
		}
	case "bandwidth":
		fmt.Printf("DRAM bandwidth sweep on %s model:\n", *modelName)
		fmt.Printf("%-10s %12s %12s\n", "GB/s", "latency(us)", "energy(uJ)")
		for _, bw := range []float64{1, 2, 4, 8, 16, 32} {
			cfg := accel
			cfg.DRAMBandwidthGBs = bw
			r := hwsim.SimulateAccel(cfg, model)
			fmt.Printf("%-10.0f %12.1f %12.1f\n", bw, r.LatencyUS, r.TotalUJ)
		}
	case "dataflow":
		fmt.Printf("dataflow comparison on %s model (%dx%d array):\n", *modelName, accel.Rows, accel.Cols)
		fmt.Printf("%-20s %12s %12s %8s %12s\n", "dataflow", "latency(us)", "energy(uJ)", "util", "sram(KB)")
		for _, df := range []hwsim.Dataflow{hwsim.WeightStationary, hwsim.OutputStationary} {
			r := hwsim.SimulateAccelDataflow(accel, model, df)
			var sram int64
			for _, l := range r.Layers {
				sram += l.SRAMBytes
			}
			fmt.Printf("%-20s %12.1f %12.1f %7.1f%% %12.1f\n",
				df, r.LatencyUS, r.TotalUJ, 100*r.MeanUtilization, float64(sram)/1024)
		}
	default:
		fmt.Fprintf(os.Stderr, "itask-hwsim: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}
