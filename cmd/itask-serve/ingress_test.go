package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/wire"
)

// fakeBackend serves every task on one variant with empty payloads — just
// enough backend for the HTTP handler to run requests end to end.
type fakeBackend struct{}

func (fakeBackend) Route(task string) (string, error) { return "fake@v1", nil }

func (fakeBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	payloads := make([]any, len(imgs))
	return payloads, variant, nil
}

func newTestHandler(t *testing.T) *handler {
	t.Helper()
	cfg := serve.DefaultConfig()
	cfg.CacheBytes = 1 << 20 // cache on: digest equivalence shows up as a hit
	srv, err := serve.New(fakeBackend{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return &handler{srv: srv, imageSize: testImageSize}
}

func testFrameBodies(t *testing.T) (jsonBody, binBody []byte) {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	data := make([]float32, 3*testImageSize*testImageSize)
	for i := range data {
		data[i] = r.Float32()
	}
	jsonBody, err := json.Marshal(map[string]any{
		"task":   "patrol",
		"tenant": "acme",
		"image":  map[string]any{"shape": []int{3, testImageSize, testImageSize}, "data": data},
	})
	if err != nil {
		t.Fatal(err)
	}
	binBody = wire.AppendFrame(nil, "patrol", "acme", 0,
		[3]int{3, testImageSize, testImageSize}, data)
	return jsonBody, binBody
}

func postDetect(h *handler, body []byte, contentType string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.detect(rec, req)
	return rec
}

// A binary frame and its JSON twin must behave identically end to end: both
// 200, and — because they digest to the same cache key — the second request
// is served from the result cache regardless of which encoding primed it.
func TestDetectBinaryAndJSONAreEquivalent(t *testing.T) {
	jsonBody, binBody := testFrameBodies(t)

	type resp struct {
		Task   string `json:"task"`
		Cached bool   `json:"cached"`
	}
	decode := func(rec *httptest.ResponseRecorder) resp {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("response Content-Type %q", ct)
		}
		var v resp
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	// JSON primes the cache, binary hits it.
	h := newTestHandler(t)
	if v := decode(postDetect(h, jsonBody, "application/json")); v.Cached {
		t.Fatal("first (JSON) request already cached")
	}
	if v := decode(postDetect(h, binBody, wire.ContentType)); !v.Cached {
		t.Fatal("binary twin missed the cache primed by JSON — digests diverge")
	}

	// And the other way around, on a fresh server.
	h = newTestHandler(t)
	if v := decode(postDetect(h, binBody, wire.ContentType)); v.Cached {
		t.Fatal("first (binary) request already cached")
	}
	if v := decode(postDetect(h, jsonBody, "application/json")); !v.Cached {
		t.Fatal("JSON twin missed the cache primed by binary — digests diverge")
	}

	// Content-Type parameters after the media type still select the frame
	// parser.
	h = newTestHandler(t)
	if rec := postDetect(h, binBody, wire.ContentType+"; v=1"); rec.Code != http.StatusOK {
		t.Fatalf("parameterized content type: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestParseDetectFrame(t *testing.T) {
	_, binBody := testFrameBodies(t)
	dr, img, err := parseDetectFrame(binBody, testImageSize)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Task != "patrol" || dr.Tenant != "acme" || dr.TimeoutMS != 0 {
		t.Fatalf("frame parsed as %+v", dr)
	}
	if len(img.Data) != 3*testImageSize*testImageSize {
		t.Fatalf("image has %d values", len(img.Data))
	}
	// The tensor must not alias the body: a watchdog-abandoned execution may
	// read it after the pooled body buffer is recycled.
	before := img.Data[0]
	for i := range binBody {
		binBody[i] = 0xff
	}
	if img.Data[0] != before {
		t.Fatal("parsed tensor aliases the request body")
	}

	data := make([]float32, 3*testImageSize*testImageSize)
	shape := [3]int{3, testImageSize, testImageSize}
	cases := []struct {
		name string
		body []byte
	}{
		{"not a frame", []byte(`{"task":"patrol"}`)},
		{"truncated", wire.AppendFrame(nil, "patrol", "", 0, shape, data)[:40]},
		{"missing task", wire.AppendFrame(nil, "", "", 0, shape, data)},
		{"oversized tenant", wire.AppendFrame(nil, "patrol", strings.Repeat("x", 65), 0, shape, data)},
		{"control-char tenant", wire.AppendFrame(nil, "patrol", "a\x01b", 0, shape, data)},
		{"wrong shape", wire.AppendFrame(nil, "patrol", "", 0, [3]int{3, 4, 4}, make([]float32, 48))},
	}
	for _, tc := range cases {
		if _, _, err := parseDetectFrame(tc.body, testImageSize); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// FuzzParseDetectFrame asserts the binary parser never panics and only
// accepts bodies that materialize an exactly-sized tensor with a valid
// task/tenant — the binary mirror of FuzzParseDetectRequest.
func FuzzParseDetectFrame(f *testing.F) {
	data := make([]float32, 3*testImageSize*testImageSize)
	shape := [3]int{3, testImageSize, testImageSize}
	full := wire.AppendFrame(nil, "patrol", "acme", 250, shape, data)
	f.Add(full)
	f.Add(full[:17])                               // truncated header
	f.Add(full[:len(full)-3])                      // truncated payload
	f.Add(append(append([]byte{}, full...), 0xAA)) // trailing byte
	f.Add([]byte("iTSK"))
	f.Add([]byte(`{"task":"patrol"}`))
	f.Add(wire.AppendFrame(nil, "", "", 0, shape, data))
	f.Add(wire.AppendFrame(nil, "patrol", "a\x01b", 0, shape, data))
	f.Add(wire.AppendFrame(nil, "patrol", "", 0, [3]int{1, 1, 1}, make([]float32, 1)))
	// Hostile dims whose product overflows: hand-built header.
	hostile := wire.AppendFrame(nil, "p", "", 0, [3]int{1, 1, 1}, make([]float32, 1))
	for i := 20; i < 32; i++ {
		hostile[i] = 0xff
	}
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, body []byte) {
		dr, img, err := parseDetectFrame(body, testImageSize)
		if err != nil {
			return
		}
		if dr.Task == "" {
			t.Fatalf("accepted frame without task")
		}
		if len(dr.Tenant) > maxTenantLen {
			t.Fatal("accepted oversized tenant id")
		}
		for _, b := range []byte(dr.Tenant) {
			if b < 0x20 || b == 0x7f {
				t.Fatal("accepted control character in tenant id")
			}
		}
		if dr.TimeoutMS < 0 {
			t.Fatal("accepted negative timeout")
		}
		if img == nil || len(img.Data) != 3*testImageSize*testImageSize {
			t.Fatalf("accepted frame with wrong image size")
		}
	})
}

// Every response out of the detect handler — success or failure, JSON or
// binary ingress — must carry Content-Type: application/json.
func TestDetectErrorResponsesCarryJSONContentType(t *testing.T) {
	h := &handler{imageSize: testImageSize}
	cases := []struct {
		name string
		rec  *httptest.ResponseRecorder
		code int
	}{
		{"method not allowed", func() *httptest.ResponseRecorder {
			rec := httptest.NewRecorder()
			h.detect(rec, httptest.NewRequest(http.MethodGet, "/v1/detect", nil))
			return rec
		}(), http.StatusMethodNotAllowed},
		{"bad JSON", postDetect(h, []byte(`{`), "application/json"), http.StatusBadRequest},
		{"trailing garbage", postDetect(h, []byte(`{"task":"patrol","scene":{"domain":"driving"}}]`), ""), http.StatusBadRequest},
		{"binary garbage", postDetect(h, []byte("not a frame"), wire.ContentType), http.StatusBadRequest},
		{"oversized", postDetect(h, bytes.Repeat([]byte("x"), maxBodyBytes+1), ""), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if tc.rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, tc.rec.Code, tc.code)
		}
		if ct := tc.rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		if !json.Valid(tc.rec.Body.Bytes()) {
			t.Errorf("%s: body is not JSON: %q", tc.name, tc.rec.Body.String())
		}
	}
}

// BenchmarkServeIngress measures the serve handler's ingress layer — pooled
// body read, parse, tensor materialization — for a JSON body and its binary
// twin at the default 3×32×32 frame size. The Detect call itself is
// identical either way, so this is where the encodings differ.
func BenchmarkServeIngress(b *testing.B) {
	const size = 32
	r := rand.New(rand.NewSource(5))
	data := make([]float32, 3*size*size)
	for i := range data {
		data[i] = r.Float32()
	}
	jsonBody, err := json.Marshal(map[string]any{
		"task":  "patrol",
		"image": map[string]any{"shape": []int{3, size, size}, "data": data},
	})
	if err != nil {
		b.Fatal(err)
	}
	binBody := wire.AppendFrame(nil, "patrol", "", 0, [3]int{3, size, size}, data)
	h := &handler{imageSize: size}

	run := func(b *testing.B, body []byte, contentType string) {
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		rd := bytes.NewReader(body)
		for i := 0; i < b.N; i++ {
			rd.Reset(body)
			buf, err := wire.ReadAll(rd, len(body))
			if err != nil {
				b.Fatal(err)
			}
			_, img, err := h.parseDetect(contentType, buf.Bytes())
			buf.Release()
			if err != nil || img == nil {
				b.Fatalf("parse: %v", err)
			}
		}
	}
	b.Run("json", func(b *testing.B) { run(b, jsonBody, "application/json") })
	b.Run("binary", func(b *testing.B) { run(b, binBody, wire.ContentType) })
}
