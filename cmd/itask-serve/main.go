// Command itask-serve runs the iTask pipeline behind an HTTP front end: it
// trains (or loads) the quantized generalist, defines the standard tasks,
// and serves concurrent task-conditioned detection with dynamic
// micro-batching, admission control, and graceful shutdown.
//
// Endpoints:
//
//	POST /v1/detect   run detection; body {"task": "...", "scene": {...}}
//	                  or {"task": "...", "image": {"shape": [3,H,W], "data": [...]}}
//	GET  /v1/tasks    list the defined tasks
//	GET  /healthz     200 while serving, 503 once draining
//	GET  /metricsz    serving metrics snapshot (latency percentiles,
//	                  throughput, batch histogram, shed/reject counts,
//	                  model-cache hit rate)
//
// Usage:
//
//	itask-serve [-addr :8080] [-models dir] [-students] \
//	            [-workers 2] [-max-batch 8] [-batch-delay 2ms] \
//	            [-queue-cap 256] [-timeout 0]
//
// Example:
//
//	curl -s localhost:8080/v1/detect -d '{"task":"patrol","scene":{"domain":"driving","seed":7}}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"itask"
	"itask/internal/dataset"
	"itask/internal/scene"
	"itask/internal/serve"
	"itask/internal/tensor"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	models := flag.String("models", "", "load teacher.ckpt from this directory (itask-train output) instead of training")
	students := flag.Bool("students", false, "distill a task-specific student per standard task (slow)")
	workers := flag.Int("workers", 2, "inference worker goroutines")
	maxBatch := flag.Int("max-batch", 8, "micro-batch size cap")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "max coalescing wait before a lane flushes")
	queueCap := flag.Int("queue-cap", 256, "admission queue bound (beyond it: HTTP 429)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	flag.Parse()

	pipe := itask.New(itask.DefaultOptions())
	if *models != "" {
		fmt.Fprintf(os.Stderr, "loading generalist from %s/teacher.ckpt...\n", *models)
		if err := pipe.LoadGeneralist(*models + "/teacher.ckpt"); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "training quantized generalist on the standard task mixture...")
		if err := pipe.TrainGeneralist(nil); err != nil {
			fatal(err)
		}
	}
	for _, t := range dataset.StandardTasks() {
		if err := pipe.DefineTask(t.Name, t.Description); err != nil {
			fatal(err)
		}
		if *students {
			fmt.Fprintf(os.Stderr, "distilling student for %q...\n", t.Name)
			if err := pipe.DistillStudent(t.Name, t.Domain); err != nil {
				fatal(err)
			}
		}
	}

	cfg := serve.Config{
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		BatchDelay:     *batchDelay,
		QueueCap:       *queueCap,
		DefaultTimeout: *timeout,
		LatencyWindow:  serve.DefaultConfig().LatencyWindow,
	}
	srv, err := serve.New(pipe.ServeBackend(), cfg)
	if err != nil {
		fatal(err)
	}

	h := &handler{pipe: pipe, srv: srv, imageSize: itask.DefaultOptions().TeacherCfg.ImageSize}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", h.detect)
	mux.HandleFunc("/v1/tasks", h.tasks)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/metricsz", h.metricsz)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "itask-serve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Stop accepting HTTP first, then drain the batcher.
		_ = httpSrv.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "itask-serve: listening on %s (workers=%d max-batch=%d batch-delay=%v)\n",
		*addr, *workers, *maxBatch, *batchDelay)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "itask-serve: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "itask-serve: %v\n", err)
	os.Exit(1)
}

type handler struct {
	pipe      *itask.Pipeline
	srv       *serve.Server
	imageSize int
}

// detectRequest is the POST /v1/detect body. Exactly one of Image and Scene
// must be set: Image carries raw pixels, Scene renders a synthetic scene
// server-side (handy for curl demos).
type detectRequest struct {
	Task  string `json:"task"`
	Image *struct {
		Shape []int     `json:"shape"`
		Data  []float32 `json:"data"`
	} `json:"image,omitempty"`
	Scene *struct {
		Domain string `json:"domain"`
		Seed   uint64 `json:"seed"`
	} `json:"scene,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type detectResponse struct {
	Task       string            `json:"task"`
	Model      string            `json:"model"`
	BatchSize  int               `json:"batch_size"`
	QueuedUS   float64           `json:"queued_us"`
	TotalUS    float64           `json:"total_us"`
	Detections []itask.Detection `json:"detections"`
}

func (h *handler) detect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var dr detectRequest
	if err := json.NewDecoder(r.Body).Decode(&dr); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	img, err := h.buildImage(dr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	req := serve.Request{Task: dr.Task, Image: img}
	if dr.TimeoutMS > 0 {
		req.Deadline = time.Now().Add(time.Duration(dr.TimeoutMS) * time.Millisecond)
	}
	res, err := h.srv.Detect(r.Context(), req)
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	dets, _ := res.Payload.([]itask.Detection)
	if dets == nil {
		dets = []itask.Detection{}
	}
	writeJSON(w, http.StatusOK, detectResponse{
		Task:       dr.Task,
		Model:      res.Model,
		BatchSize:  res.BatchSize,
		QueuedUS:   float64(res.Queued.Microseconds()),
		TotalUS:    float64(res.Total.Microseconds()),
		Detections: dets,
	})
}

// buildImage turns the request's image or scene spec into a (3,S,S) tensor.
func (h *handler) buildImage(dr detectRequest) (*tensor.Tensor, error) {
	switch {
	case dr.Image != nil && dr.Scene != nil:
		return nil, fmt.Errorf("set either image or scene, not both")
	case dr.Image != nil:
		s := h.imageSize
		sh := dr.Image.Shape
		if len(sh) != 3 || sh[0] != 3 || sh[1] != s || sh[2] != s {
			return nil, fmt.Errorf("image shape must be [3,%d,%d], got %v", s, s, sh)
		}
		if len(dr.Image.Data) != 3*s*s {
			return nil, fmt.Errorf("image data has %d values, want %d", len(dr.Image.Data), 3*s*s)
		}
		return tensor.FromSlice(dr.Image.Data, 3, s, s), nil
	case dr.Scene != nil:
		dom, ok := scene.DomainByName(dr.Scene.Domain)
		if !ok {
			return nil, fmt.Errorf("unknown domain %q", dr.Scene.Domain)
		}
		sc := scene.Generate(dom, scene.DefaultGenConfig(), tensor.NewRNG(dr.Scene.Seed))
		return sc.Image, nil
	default:
		return nil, fmt.Errorf("set image or scene")
	}
}

func (h *handler) tasks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tasks": h.pipe.Tasks()})
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if h.srv.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *handler) metricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Snapshot())
}

// statusOf maps serving-layer errors onto HTTP status codes: queue full is
// backpressure (429), draining is unavailability (503), a missed deadline
// is a gateway timeout (504), and anything else from admission is the
// caller's fault (404: unknown task).
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusNotFound
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
