// Command itask-serve runs the iTask pipeline behind an HTTP front end: it
// trains (or loads) the quantized generalist, defines the standard tasks,
// and serves concurrent task-conditioned detection with dynamic
// micro-batching, admission control, fault tolerance (panic isolation,
// poison quarantine, per-lane circuit breakers with quantized-fallback
// degradation), and graceful shutdown.
//
// Endpoints:
//
//	POST /v1/detect          run detection; body {"task": "...", "scene": {...}}
//	                         or {"task": "...", "image": {"shape": [3,H,W], "data": [...]}};
//	                         with Content-Type application/x-itask-tensor the
//	                         body is instead a binary tensor frame (see
//	                         internal/wire) decoded by slicing — no JSON float
//	                         parsing on the hot path
//	GET  /v1/tasks           list the defined tasks
//	POST /v1/models/reload   hot-swap model versions from a checkpoint
//	                         directory (body {"dir": "..."}, default the
//	                         -models flag): a registry layout loads each
//	                         name's newest version checksum-verified; a flat
//	                         directory reloads teacher.ckpt
//	GET  /healthz            per-task health from the per-lane breaker
//	                         states: 200 "ok", 200 "degraded" while open
//	                         lanes still have a healthy fallback, 503 once a
//	                         task has every lane open with no healthy
//	                         fallback, 503 when draining
//	GET  /metricsz           serving metrics snapshot (latency percentiles,
//	                         throughput, batch histogram, shed/reject/fault
//	                         counters, per-lane breaker states, per-version
//	                         model attribution, registry publish/rollback
//	                         counters, model-cache hit rate)
//
// Failure modes map onto HTTP statuses: malformed input (including an
// oversized or control-character tenant id) is 400, content quarantined as
// poison (with -neg-ttl) is 422, admission backpressure — a full queue, an
// exhausted per-tenant share, or an overdrawn -tenant-rate budget — is 429
// with Retry-After, draining or an open circuit with no healthy fallback is
// 503 (the breaker case carries Retry-After), an isolated backend panic is
// 500, and a missed deadline or watchdog-abandoned execution is 504. Requests served by the quantized fallback while their
// preferred lane's breaker is open succeed with "degraded" set in the body
// and an X-Itask-Degraded response header.
//
// Usage:
//
//	itask-serve [-addr :8080] [-models dir] [-students] \
//	            [-workers 2] [-max-batch 8] [-batch-delay 2ms] \
//	            [-queue-cap 256] [-timeout 0] \
//	            [-watchdog 10s] [-retry-budget 3] \
//	            [-breaker-threshold 5] [-breaker-backoff 500ms] [-slo 0] \
//	            [-cache-bytes 33554432] [-cache-ttl 1m] [-coalesce] \
//	            [-neg-ttl 0] [-hot-threshold 64] [-hot-decay 0] \
//	            [-hot-bytes 4194304] [-pprof addr] \
//	            [-tenant-weights gold=4,free=1] [-tenant-rate 0] [-tenant-burst 0] \
//	            [-announce gateway-url] [-heartbeat 1s] [-advertise url]
//
// -cache-bytes enables the content-addressed result cache (0 disables it):
// repeated frames are answered from memory without running a kernel, and
// -coalesce collapses concurrent duplicate requests into one execution.
// -hot-threshold enables the cache's hot replica tier (0 disables it): a
// digest read that many times within the -hot-decay window is promoted to a
// lock-free replicated table bounded by -hot-bytes, so a viral frame's
// readers stop serializing on one cache-shard mutex. A gateway's fleet-wide
// hot verdict arriving as an X-Itask-Hot request header pre-promotes the
// digest without waiting for the local detector.
// Requests carry their tenant in the body's "tenant" field or the
// X-Itask-Tenant header (body wins); the normalized attribution is echoed
// back as an X-Itask-Tenant response header. -tenant-weights sets DRR
// weights for the weighted-fair batcher (unlisted tenants weigh 1);
// -tenant-rate/-tenant-burst arm per-tenant token-bucket admission budgets.
// -pprof serves net/http/pprof on a second listener with mutex and block
// profiling enabled, for inspecting lock contention under load.
// -announce joins an itask-gateway's lease-based fleet membership: the
// shard registers with POST /v1/announce once it is listening, renews on a
// jittered -heartbeat cadence (carrying its registry epoch so the gateway
// can gate routing on epoch convergence), and deregisters before draining
// on SIGTERM. -advertise overrides the self URL sent to the gateway, for
// when the listen address is not what peers should dial (NAT, 0.0.0.0).
//
// Example:
//
//	curl -s localhost:8080/v1/detect -d '{"task":"patrol","scene":{"domain":"driving","seed":7}}'
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"itask"
	"itask/internal/dataset"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/wire"
)

func main() {
	def := serve.DefaultConfig()
	addr := flag.String("addr", ":8080", "listen address")
	models := flag.String("models", "", "load teacher.ckpt from this directory (itask-train output) instead of training")
	students := flag.Bool("students", false, "distill a task-specific student per standard task (slow)")
	workers := flag.Int("workers", def.Workers, "inference worker goroutines")
	maxBatch := flag.Int("max-batch", def.MaxBatch, "micro-batch size cap")
	batchDelay := flag.Duration("batch-delay", def.BatchDelay, "max coalescing wait before a lane flushes")
	queueCap := flag.Int("queue-cap", 256, "admission queue bound (beyond it: HTTP 429)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	watchdog := flag.Duration("watchdog", def.Watchdog, "abandon a batch execution after this long (0 = no watchdog)")
	retryBudget := flag.Int("retry-budget", def.RetryBudget, "max re-executions per request while quarantining a failed batch (0 = no quarantine)")
	breakerThreshold := flag.Int("breaker-threshold", def.BreakerThreshold, "consecutive lane failures that trip its circuit breaker (0 = no breakers)")
	breakerBackoff := flag.Duration("breaker-backoff", def.BreakerBackoff, "initial open-breaker backoff; doubles per failed probe")
	slo := flag.Duration("slo", 0, "latency SLO; slower executions count as breaker failures (0 = none)")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "result-cache byte budget (0 = cache disabled)")
	cacheTTL := flag.Duration("cache-ttl", time.Minute, "result-cache entry lifetime (0 = until evicted)")
	negTTL := flag.Duration("neg-ttl", 0, "quarantine window for content that crashed or hung the backend in isolation; repeats are refused with HTTP 422 for this long (0 = off; needs -cache-bytes > 0)")
	coalesce := flag.Bool("coalesce", true, "collapse concurrent duplicate requests into one execution")
	hotThreshold := flag.Int("hot-threshold", 64, "reads within the decay window past which a digest's cache entry is replicated lock-free (0 = off; needs -cache-bytes > 0)")
	hotDecay := flag.Int("hot-decay", 0, "hot-detector decay window in arrivals; counts halve every N cache lookups (0 = detector default)")
	hotBytes := flag.Int64("hot-bytes", 4<<20, "hot replica tier byte budget, on top of -cache-bytes (0 = cache-bytes/8)")
	tenantWeights := flag.String("tenant-weights", "", `comma-separated tenant DRR weights, e.g. "gold=4,free=1" (empty = every tenant weight 1)`)
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission budget in requests/second (0 = unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst credits on top of -tenant-rate (0 = one second of rate)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address with mutex/block profiling (empty = off)")
	announceTo := flag.String("announce", "", "gateway base URL to join via lease-based membership (empty = standalone)")
	heartbeat := flag.Duration("heartbeat", time.Second, "lease renewal cadence when announcing (jittered ±25%)")
	advertise := flag.String("advertise", "", "base URL to announce as this shard's address (default: derived from the listen address)")
	flag.Parse()

	if *pprofAddr != "" {
		// Sampled rates: cheap enough to leave on while serving, detailed
		// enough that /debug/pprof/mutex and /block show real contention.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "itask-serve: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				fmt.Fprintf(os.Stderr, "itask-serve: pprof: %v\n", err)
			}
		}()
	}

	pipe := itask.New(itask.DefaultOptions())
	for _, t := range dataset.StandardTasks() {
		if err := pipe.DefineTask(t.Name, t.Description); err != nil {
			fatal(err)
		}
	}
	if *models != "" {
		fmt.Fprintf(os.Stderr, "loading models from %s...\n", *models)
		loaded, skipped, err := reloadModels(pipe, *models)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %v (skipped %v)\n", loaded, skipped)
	} else {
		fmt.Fprintln(os.Stderr, "training quantized generalist on the standard task mixture...")
		if err := pipe.TrainGeneralist(nil); err != nil {
			fatal(err)
		}
	}
	if *students {
		for _, t := range dataset.StandardTasks() {
			if pipe.Student(t.Name) != nil {
				continue // a checkpointed student already loaded for this task
			}
			fmt.Fprintf(os.Stderr, "distilling student for %q...\n", t.Name)
			if err := pipe.DistillStudent(t.Name, t.Domain); err != nil {
				fatal(err)
			}
		}
	}

	cfg := serve.Config{
		Workers:           *workers,
		MaxBatch:          *maxBatch,
		BatchDelay:        *batchDelay,
		QueueCap:          *queueCap,
		DefaultTimeout:    *timeout,
		LatencyWindow:     def.LatencyWindow,
		Watchdog:          *watchdog,
		RetryBudget:       *retryBudget,
		BreakerThreshold:  *breakerThreshold,
		BreakerBackoff:    *breakerBackoff,
		BreakerMaxBackoff: def.BreakerMaxBackoff,
		LatencySLO:        *slo,
		CacheBytes:        *cacheBytes,
		CacheTTL:          *cacheTTL,
		NegativeTTL:       *negTTL,
		Coalesce:          *coalesce,
		HotThreshold:      *hotThreshold,
		HotDecay:          *hotDecay,
		HotBytes:          *hotBytes,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
	}
	if *tenantWeights != "" {
		weights, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			fatal(err)
		}
		cfg.TenantWeights = weights
	}
	if *cacheBytes <= 0 {
		// The hot tier rides the result cache; without one it has nothing to
		// replicate (and serve.Validate would reject the pairing).
		cfg.HotThreshold = 0
	}
	backend := pipe.ServeBackend()
	srv, err := serve.New(backend, cfg)
	if err != nil {
		fatal(err)
	}

	h := &handler{
		pipe:      pipe,
		srv:       srv,
		backend:   backend,
		modelsDir: *models,
		imageSize: itask.DefaultOptions().TeacherCfg.ImageSize,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", h.detect)
	mux.HandleFunc("/v1/tasks", h.tasks)
	mux.HandleFunc("/v1/models/reload", h.reload)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/metricsz", h.metricsz)
	httpSrv := &http.Server{Handler: mux}

	// Listen before announcing: the advertised URL comes from the bound
	// address (which resolves ":0"-style ephemeral ports), and the gateway
	// will start probing the shard the moment it announces.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var ann *announcer
	if *announceTo != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(ln.Addr())
		}
		epoch := func() uint64 { return 0 }
		if re, ok := backend.(serve.RouteEpocher); ok {
			epoch = re.RouteEpoch
		}
		ann = newAnnouncer(*announceTo, self, *heartbeat, *workers, epoch)
		ann.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		ann.start()
		fmt.Fprintf(os.Stderr, "itask-serve: announcing %s to %s every %v\n", self, *announceTo, *heartbeat)
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "itask-serve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Leave the fleet first so the gateway stops routing here, then
		// stop accepting HTTP, then drain the batcher.
		if ann != nil {
			ann.close(ctx)
		}
		_ = httpSrv.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "itask-serve: listening on %s (workers=%d max-batch=%d batch-delay=%v watchdog=%v breaker=%d)\n",
		ln.Addr(), *workers, *maxBatch, *batchDelay, *watchdog, *breakerThreshold)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "itask-serve: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "itask-serve: %v\n", err)
	os.Exit(1)
}

type handler struct {
	pipe *itask.Pipeline
	srv  *serve.Server
	// backend is the serve.Backend the server routes over; /healthz
	// consults its FallbackRouter to tell degraded from unavailable.
	backend serve.Backend
	// modelsDir is the -models flag, the default /v1/models/reload source.
	modelsDir string
	imageSize int
}

type detectResponse struct {
	Task      string  `json:"task"`
	Model     string  `json:"model"`
	BatchSize int     `json:"batch_size"`
	QueuedUS  float64 `json:"queued_us"`
	TotalUS   float64 `json:"total_us"`
	// Degraded is set when the request was served by the quantized
	// fallback because its preferred lane's circuit breaker was open.
	Degraded string `json:"degraded,omitempty"`
	// Cached marks a response served from the result cache; Coalesced one
	// produced by a concurrent duplicate's execution.
	Cached     bool              `json:"cached,omitempty"`
	Coalesced  bool              `json:"coalesced,omitempty"`
	Detections []itask.Detection `json:"detections"`
}

func (h *handler) detect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		// Only an actual entity-too-large condition is 413; other read
		// failures (client disconnects, network errors) are the request's
		// problem, not its size.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, http.StatusBadRequest, "unreadable request body")
		}
		return
	}
	// Both parsers copy everything that outlives them (JSON decoding copies
	// by construction; the frame path copies the payload into a fresh
	// tensor), so the pooled body can be recycled the moment the handler
	// returns even if a watchdog-abandoned execution is still running.
	defer buf.Release()
	dr, img, err := h.parseDetect(r.Header.Get("Content-Type"), buf.Bytes())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := dr.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Itask-Tenant")
		if err := validateTenant(tenant); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	req := serve.Request{Task: dr.Task, Tenant: tenant, Image: img, Hot: r.Header.Get("X-Itask-Hot") == "1"}
	if dr.TimeoutMS > 0 {
		req.Deadline = time.Now().Add(time.Duration(dr.TimeoutMS) * time.Millisecond)
	}
	res, err := h.srv.Detect(r.Context(), req)
	if err != nil {
		if ra, ok := retryAfter(err); ok {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		httpError(w, statusOf(err), err.Error())
		return
	}
	dets, _ := res.Payload.([]itask.Detection)
	if dets == nil {
		dets = []itask.Detection{}
	}
	if res.Degraded != "" {
		w.Header().Set("X-Itask-Degraded", res.Degraded)
	}
	// Echo the normalized attribution so callers (and the gateway's smoke
	// tooling) can see which tenant's ledger the request landed on.
	w.Header().Set("X-Itask-Tenant", res.Tenant)
	writeJSON(w, http.StatusOK, detectResponse{
		Task:       dr.Task,
		Model:      res.Model,
		BatchSize:  res.BatchSize,
		QueuedUS:   float64(res.Queued.Microseconds()),
		TotalUS:    float64(res.Total.Microseconds()),
		Degraded:   res.Degraded,
		Cached:     res.Cached,
		Coalesced:  res.Coalesced,
		Detections: dets,
	})
}

// parseDetect routes a /v1/detect body to the decoder its Content-Type
// declares: a binary tensor frame for application/x-itask-tensor (parameters
// after the media type are tolerated), the JSON parser for everything else.
func (h *handler) parseDetect(contentType string, body []byte) (*detectRequest, *tensor.Tensor, error) {
	if strings.HasPrefix(contentType, wire.ContentType) {
		return parseDetectFrame(body, h.imageSize)
	}
	dr, err := parseDetectRequest(body, h.imageSize)
	if err != nil {
		return nil, nil, err
	}
	img, err := dr.buildImage(h.imageSize)
	if err != nil {
		return nil, nil, err
	}
	return dr, img, nil
}

// readBody drains a request body into a pooled buffer, bounded by
// maxBodyBytes. The declared Content-Length pre-sizes the buffer class;
// chunked or absurd declarations start small and grow as real bytes arrive.
func readBody(w http.ResponseWriter, r *http.Request) (*wire.Buf, error) {
	hint := int(r.ContentLength)
	if hint < 0 || hint > maxBodyBytes {
		hint = 0
	}
	return wire.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes), hint)
}

func (h *handler) tasks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tasks": h.pipe.Tasks()})
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	rep, code := computeHealth(h.srv.Draining(), h.pipe.Tasks(), h.srv.Snapshot().Breakers, h.fallbackFor)
	writeJSON(w, code, rep)
}

// fallbackFor reports the degraded-configuration variant that could serve a
// task if its preferred lane's breaker is open, when the backend has one.
func (h *handler) fallbackFor(task string) (string, bool) {
	fr, ok := h.backend.(serve.FallbackRouter)
	if !ok {
		return "", false
	}
	v, err := fr.RouteFallback(task)
	return v, err == nil
}

// reloadRequest is the /v1/models/reload body; an empty body is allowed.
type reloadRequest struct {
	// Dir overrides the -models checkpoint directory for this reload.
	Dir string `json:"dir"`
}

func (h *handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unreadable request body")
		return
	}
	defer buf.Release()
	var req reloadRequest
	if body := buf.Bytes(); len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad reload request: "+err.Error())
			return
		}
	}
	dir := req.Dir
	if dir == "" {
		dir = h.modelsDir
	}
	if dir == "" {
		httpError(w, http.StatusBadRequest, `no models directory: pass {"dir": ...} or start with -models`)
		return
	}
	loaded, skipped, err := reloadModels(h.pipe, dir)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, fs.ErrNotExist) {
			code = http.StatusNotFound
		}
		httpError(w, code, err.Error())
		return
	}
	if loaded == nil {
		loaded = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": loaded, "skipped": skipped})
}

func (h *handler) metricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Snapshot())
}

// statusOf maps serving-layer errors onto HTTP status codes: malformed
// input is the caller's fault (400), queue full and an overdrawn tenant
// budget are backpressure (429),
// draining or an open breaker with no healthy fallback is unavailability
// (503), an isolated backend panic is an internal error (500), a missed
// deadline or watchdog-abandoned execution is a gateway timeout (504), and
// anything else from admission is an unknown task (404).
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrBadShape):
		return http.StatusBadRequest
	case errors.Is(err, serve.ErrQuarantined):
		// The content itself recently crashed or hung the backend; the
		// request is well-formed but unprocessable, and retrying it anywhere
		// would reproduce the fault.
		return http.StatusUnprocessableEntity
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrTenantBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrShuttingDown), errors.Is(err, serve.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrBackendPanic):
		return http.StatusInternalServerError
	case errors.Is(err, serve.ErrDeadlineExceeded),
		errors.Is(err, serve.ErrWatchdog),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusNotFound
	}
}

// retryAfter extracts the Retry-After hint for retryable rejections: the
// breaker's own backoff for an open circuit and the token bucket's refill
// time for an overdrawn tenant budget (each rounded up to a whole second,
// minimum 1), a flat second for queue-full backpressure.
func retryAfter(err error) (int, bool) {
	var bo *serve.BreakerOpenError
	if errors.As(err, &bo) {
		secs := int((bo.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs, true
	}
	var tb *serve.TenantBudgetError
	if errors.As(err, &tb) {
		secs := int((tb.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs, true
	}
	if errors.Is(err, serve.ErrQueueFull) {
		return 1, true
	}
	return 0, false
}

// parseTenantWeights parses the -tenant-weights flag: comma-separated
// name=weight pairs with positive integer weights.
func parseTenantWeights(s string) (map[string]int, error) {
	weights := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q, want name=weight", pair)
		}
		if err := validateTenant(name); err != nil {
			return nil, fmt.Errorf("bad -tenant-weights tenant %q: %v", name, err)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -tenant-weights weight %q for %q, want positive integer", val, name)
		}
		if _, dup := weights[name]; dup {
			return nil, fmt.Errorf("duplicate -tenant-weights tenant %q", name)
		}
		weights[name] = w
	}
	return weights, nil
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON routes every response — success and error alike — through the
// shared pooled encoder, which also pins Content-Type: application/json on
// all of them.
func writeJSON(w http.ResponseWriter, code int, v any) {
	wire.WriteJSON(w, code, v)
}
