package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// announce.go: the shard side of the gateway's lease-based membership.
// With -announce, itask-serve registers itself against the gateway's
// POST /v1/announce endpoint and keeps the lease alive by re-announcing on
// a jittered heartbeat. Each announce carries the shard's current registry
// epoch (from the backend's RouteEpoch), so the gateway can gate routing on
// epoch convergence after a fleet-wide reload, and a capacity hint the
// gateway may use for weighting. On SIGTERM the shard deregisters (DELETE
// /v1/announce) before draining, so the gateway stops routing to it
// immediately instead of discovering the loss through a lease expiry.
//
// The heartbeat is jittered ±25% so a fleet of shards started together does
// not renew in lockstep, and a failed announce retries with full-jitter
// exponential backoff (base heartbeat/4, capped at 4×heartbeat) — an
// unreachable gateway costs a bounded, decorrelated trickle of dials, not a
// tight reconnect loop.

// announcer keeps one shard registered with one gateway.
type announcer struct {
	gateway   string // gateway base URL
	self      string // this shard's advertised base URL (the member identity)
	heartbeat time.Duration
	capacity  int
	epoch     func() uint64 // current registry epoch, sent with each announce
	hc        *http.Client
	logf      func(format string, args ...any)

	mu    sync.Mutex
	state string // last state reported by the gateway ("" until first ack)

	stop chan struct{}
	done sync.WaitGroup
}

func newAnnouncer(gateway, self string, heartbeat time.Duration, capacity int, epoch func() uint64) *announcer {
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	if epoch == nil {
		epoch = func() uint64 { return 0 }
	}
	return &announcer{
		gateway:   strings.TrimSuffix(gateway, "/"),
		self:      strings.TrimSuffix(self, "/"),
		heartbeat: heartbeat,
		capacity:  capacity,
		epoch:     epoch,
		hc:        &http.Client{Timeout: 5 * time.Second},
		logf:      func(string, ...any) {},
		stop:      make(chan struct{}),
	}
}

// start launches the heartbeat loop.
func (a *announcer) start() {
	a.done.Add(1)
	go a.run()
}

// close stops the heartbeat loop and deregisters from the gateway, so the
// caller can drain knowing no new requests will be routed here. Safe to
// call once; the deregistration honors ctx.
func (a *announcer) close(ctx context.Context) {
	close(a.stop)
	a.done.Wait()
	if err := a.deregister(ctx); err != nil {
		a.logf("itask-serve: deregister: %v", err)
	}
}

// State reports the membership state from the last successful announce.
func (a *announcer) State() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

func (a *announcer) run() {
	defer a.done.Done()
	fails := 0
	for {
		if err := a.announceOnce(context.Background()); err != nil {
			if fails == 0 {
				a.logf("itask-serve: announce to %s: %v (retrying)", a.gateway, err)
			}
			fails++
		} else {
			if fails > 0 {
				a.logf("itask-serve: announce to %s: recovered after %d failures", a.gateway, fails)
			}
			fails = 0
		}
		t := time.NewTimer(a.nextDelay(fails))
		select {
		case <-a.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// nextDelay is the pause before the next announce: the jittered heartbeat
// (uniform in [0.75h, 1.25h)) while healthy, full-jitter exponential
// backoff (uniform in [0, min(h/4 × 2^fails, 4h))) while the gateway is
// unreachable.
func (a *announcer) nextDelay(fails int) time.Duration {
	h := a.heartbeat
	if fails == 0 {
		return h*3/4 + rand.N(h/2)
	}
	ceil := (h / 4) << uint(fails-1)
	if max := 4 * h; ceil > max || ceil <= 0 {
		ceil = max
	}
	return rand.N(ceil)
}

// announceOnce POSTs one announce/heartbeat and records the gateway's view
// of this shard's membership state.
func (a *announcer) announceOnce(ctx context.Context) error {
	body, _ := json.Marshal(map[string]any{
		"url":      a.self,
		"epoch":    a.epoch(),
		"capacity": a.capacity,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.gateway+"/v1/announce", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway returned %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	var ack struct {
		State string `json:"state"`
	}
	_ = json.Unmarshal(payload, &ack)
	a.mu.Lock()
	a.state = ack.State
	a.mu.Unlock()
	return nil
}

// deregister removes this shard from the gateway's membership (graceful
// leave). A 404 — the lease already expired or the shard never converged —
// counts as success: either way the gateway is no longer routing here.
func (a *announcer) deregister(ctx context.Context) error {
	u := a.gateway + "/v1/announce?url=" + url.QueryEscape(a.self)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("gateway returned %d", resp.StatusCode)
	}
	return nil
}

// advertiseURL derives the base URL other processes should use to reach a
// listener bound to addr: an unspecified host (":8080", "0.0.0.0:8080",
// "[::]:8080") advertises the loopback address, since "listen everywhere"
// gives a peer nothing dialable.
func advertiseURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
