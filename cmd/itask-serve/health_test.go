package main

import (
	"net/http"
	"testing"

	"itask/internal/serve"
)

// computeHealth folds lane breaker states into per-task verdicts: open lanes
// with a healthy fallback degrade, a task with every lane open and no
// healthy fallback is unavailable (503), draining is always 503.
func TestComputeHealth(t *testing.T) {
	noFallback := func(string) (string, bool) { return "", false }
	quantFallback := func(string) (string, bool) { return "generalist-q8@v1", true }

	cases := []struct {
		name     string
		draining bool
		tasks    []string
		breakers []serve.LaneBreaker
		fallback func(string) (string, bool)
		status   string
		code     int
		taskWant map[string]string
	}{
		{
			name:   "no breakers tracked: healthy",
			tasks:  []string{"patrol", "triage"},
			status: healthOK, code: http.StatusOK,
			taskWant: map[string]string{"patrol": healthOK, "triage": healthOK},
		},
		{
			name:     "draining trumps everything",
			draining: true,
			tasks:    []string{"patrol"},
			status:   healthDraining, code: http.StatusServiceUnavailable,
		},
		{
			name:  "open lane with healthy fallback: degraded, still 200",
			tasks: []string{"patrol"},
			breakers: []serve.LaneBreaker{
				{Variant: "patrol-student@v2", Task: "patrol", State: "open", RetryAfterMS: 250},
			},
			fallback: quantFallback,
			status:   healthDegraded, code: http.StatusOK,
			taskWant: map[string]string{"patrol": healthDegraded},
		},
		{
			name:  "all lanes open, no fallback: unavailable 503",
			tasks: []string{"patrol", "triage"},
			breakers: []serve.LaneBreaker{
				{Variant: "patrol-student@v2", Task: "patrol", State: "open"},
			},
			fallback: noFallback,
			status:   healthUnavailable, code: http.StatusServiceUnavailable,
			taskWant: map[string]string{"patrol": healthUnavailable, "triage": healthOK},
		},
		{
			name:  "all lanes open including the fallback's: unavailable 503",
			tasks: []string{"patrol"},
			breakers: []serve.LaneBreaker{
				{Variant: "patrol-student@v2", Task: "patrol", State: "open"},
				{Variant: "generalist-q8@v1", Task: "patrol", State: "open"},
			},
			fallback: quantFallback,
			status:   healthUnavailable, code: http.StatusServiceUnavailable,
			taskWant: map[string]string{"patrol": healthUnavailable},
		},
		{
			name:  "one lane open, another closed: degraded even without fallback",
			tasks: []string{"patrol"},
			breakers: []serve.LaneBreaker{
				{Variant: "patrol-student@v2", Task: "patrol", State: "open"},
				{Variant: "generalist-q8@v1", Task: "patrol", State: "closed"},
			},
			fallback: noFallback,
			status:   healthDegraded, code: http.StatusOK,
			taskWant: map[string]string{"patrol": healthDegraded},
		},
		{
			name:  "half-open probe is not open: healthy",
			tasks: []string{"patrol"},
			breakers: []serve.LaneBreaker{
				{Variant: "patrol-student@v2", Task: "patrol", State: "half-open"},
			},
			fallback: noFallback,
			status:   healthOK, code: http.StatusOK,
			taskWant: map[string]string{"patrol": healthOK},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fb := tc.fallback
			if fb == nil {
				fb = noFallback
			}
			rep, code := computeHealth(tc.draining, tc.tasks, tc.breakers, fb)
			if rep.Status != tc.status || code != tc.code {
				t.Fatalf("status = %q code = %d, want %q %d", rep.Status, code, tc.status, tc.code)
			}
			for task, want := range tc.taskWant {
				if got := rep.Tasks[task].Status; got != want {
					t.Errorf("task %q status = %q, want %q", task, got, want)
				}
			}
		})
	}
}

// The degraded report names the fallback variant and carries the open lane's
// retry hint, so operators can see what is serving and when probing resumes.
func TestComputeHealthReportsFallbackAndRetry(t *testing.T) {
	rep, _ := computeHealth(false, []string{"patrol"},
		[]serve.LaneBreaker{{Variant: "patrol-student@v2", Task: "patrol", State: "open", RetryAfterMS: 125}},
		func(string) (string, bool) { return "generalist-q8@v1", true })
	th := rep.Tasks["patrol"]
	if th.Fallback != "generalist-q8@v1" {
		t.Errorf("fallback = %q, want generalist-q8@v1", th.Fallback)
	}
	if len(th.Lanes) != 1 || th.Lanes[0].RetryAfterMS != 125 {
		t.Errorf("lanes = %+v, want one open lane with retry 125ms", th.Lanes)
	}
}
