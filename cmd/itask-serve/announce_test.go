package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubGateway records announce/deregister traffic like the real gateway's
// /v1/announce endpoint, with a switchable failure mode to exercise the
// announcer's backoff-and-recover path.
type stubGateway struct {
	srv *httptest.Server

	mu        sync.Mutex
	fail      bool
	announces []announcePost
	leaves    []string
}

type announcePost struct {
	URL      string `json:"url"`
	Epoch    uint64 `json:"epoch"`
	Capacity int    `json:"capacity"`
}

func newStubGateway(t *testing.T) *stubGateway {
	t.Helper()
	g := &stubGateway{}
	g.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/announce" {
			http.NotFound(w, r)
			return
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		if g.fail {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		switch r.Method {
		case http.MethodPost:
			var p announcePost
			if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			g.announces = append(g.announces, p)
			json.NewEncoder(w).Encode(map[string]any{
				"id": p.URL, "state": "active", "weight": 1.0, "lease_ms": 3000,
			})
		case http.MethodDelete:
			g.leaves = append(g.leaves, r.URL.Query().Get("url"))
			json.NewEncoder(w).Encode(map[string]any{"left": true})
		default:
			http.Error(w, "bad method", http.StatusMethodNotAllowed)
		}
	}))
	t.Cleanup(g.srv.Close)
	return g
}

func (g *stubGateway) setFail(v bool) {
	g.mu.Lock()
	g.fail = v
	g.mu.Unlock()
}

func (g *stubGateway) snapshot() (announces []announcePost, leaves []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]announcePost(nil), g.announces...), append([]string(nil), g.leaves...)
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAnnouncerHeartbeatsAndDeregisters(t *testing.T) {
	gw := newStubGateway(t)
	var epoch uint64 = 7
	a := newAnnouncer(gw.srv.URL, "http://127.0.0.1:9999/", 30*time.Millisecond, 4,
		func() uint64 { return epoch })
	a.start()

	waitUntil(t, 5*time.Second, "three heartbeats", func() bool {
		ann, _ := gw.snapshot()
		return len(ann) >= 3
	})
	if got := a.State(); got != "active" {
		t.Fatalf("State() = %q, want active", got)
	}

	a.close(context.Background())
	ann, leaves := gw.snapshot()
	for i, p := range ann {
		// The trailing slash must be normalized away: the URL is the member
		// identity, and "x/" and "x" must not register as two members.
		if p.URL != "http://127.0.0.1:9999" {
			t.Fatalf("announce %d advertised %q", i, p.URL)
		}
		if p.Epoch != 7 || p.Capacity != 4 {
			t.Fatalf("announce %d = %+v, want epoch 7 capacity 4", i, p)
		}
	}
	if len(leaves) != 1 || leaves[0] != "http://127.0.0.1:9999" {
		t.Fatalf("leaves = %v, want one for the shard URL", leaves)
	}

	// After close the loop is stopped: no further announces arrive.
	n := len(ann)
	time.Sleep(80 * time.Millisecond)
	ann, _ = gw.snapshot()
	if len(ann) != n {
		t.Fatalf("announcer kept heartbeating after close: %d -> %d", n, len(ann))
	}
}

func TestAnnouncerRetriesThroughGatewayOutage(t *testing.T) {
	gw := newStubGateway(t)
	gw.setFail(true)
	a := newAnnouncer(gw.srv.URL, "http://127.0.0.1:9998", 20*time.Millisecond, 1, nil)
	a.start()
	defer a.close(context.Background())

	// While failing, no announce lands but the loop keeps trying (bounded
	// backoff caps at 4×heartbeat, so recovery lands well within a second).
	time.Sleep(100 * time.Millisecond)
	if ann, _ := gw.snapshot(); len(ann) != 0 {
		t.Fatalf("announces landed while gateway failing: %d", len(ann))
	}
	gw.setFail(false)
	waitUntil(t, 5*time.Second, "recovery announce", func() bool {
		ann, _ := gw.snapshot()
		return len(ann) >= 1
	})
}

func TestAnnouncerDeregisterTolerates404(t *testing.T) {
	// A lease that already expired deregisters as 404; that is success (the
	// gateway is not routing here), not an error worth holding up drain for.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	a := newAnnouncer(srv.URL, "http://127.0.0.1:9997", time.Minute, 1, nil)
	if err := a.deregister(context.Background()); err != nil {
		t.Fatalf("deregister on 404: %v", err)
	}
}

func TestAnnouncerNextDelay(t *testing.T) {
	a := newAnnouncer("http://g", "http://s", 100*time.Millisecond, 1, nil)
	for i := 0; i < 200; i++ {
		if d := a.nextDelay(0); d < 75*time.Millisecond || d >= 125*time.Millisecond {
			t.Fatalf("healthy delay %v outside [75ms, 125ms)", d)
		}
		// Backoff draws stay under the 4×heartbeat cap even at high failure
		// counts (where the shifted ceiling has long overflowed).
		if d := a.nextDelay(20); d >= 400*time.Millisecond {
			t.Fatalf("backoff delay %v >= cap", d)
		}
		if d := a.nextDelay(1); d >= 25*time.Millisecond {
			t.Fatalf("first backoff %v >= base 25ms", d)
		}
	}
}

func TestAdvertiseURL(t *testing.T) {
	cases := []struct {
		addr string
		want string
	}{
		{"0.0.0.0:8080", "http://127.0.0.1:8080"},
		{"[::]:8080", "http://127.0.0.1:8080"},
		{"192.168.1.5:9090", "http://192.168.1.5:9090"},
		{"[::1]:9090", "http://[::1]:9090"},
	}
	for _, c := range cases {
		addr, err := net.ResolveTCPAddr("tcp", c.addr)
		if err != nil {
			t.Fatalf("resolve %q: %v", c.addr, err)
		}
		if got := advertiseURL(addr); got != c.want {
			t.Errorf("advertiseURL(%q) = %q, want %q", c.addr, got, c.want)
		}
	}
}
