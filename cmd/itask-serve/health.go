package main

import (
	"net/http"

	"itask/internal/serve"
)

// Health statuses reported by /healthz, per task and overall.
const (
	healthOK          = "ok"
	healthDegraded    = "degraded"    // some lane open, but a healthy fallback serves
	healthUnavailable = "unavailable" // every lane for a task open, no healthy fallback
	healthDraining    = "draining"
)

// laneHealth is one (variant, task) lane's breaker state in a health report.
type laneHealth struct {
	Variant      string  `json:"variant"`
	State        string  `json:"state"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
}

// taskHealth is one task's serving status: its lanes' breaker states, the
// fallback variant consulted when a lane is open, and the verdict.
type taskHealth struct {
	Status   string       `json:"status"`
	Fallback string       `json:"fallback,omitempty"`
	Lanes    []laneHealth `json:"lanes,omitempty"`
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status string                `json:"status"`
	Tasks  map[string]taskHealth `json:"tasks,omitempty"`
}

// computeHealth folds the server's per-lane breaker snapshot into a per-task
// health report and the HTTP status to serve it with. A task with an open
// lane is "degraded" while a healthy fallback variant can still serve it, and
// "unavailable" once every tracked lane for it is open and the fallback is
// missing or itself open; any unavailable task (or draining) makes the whole
// report a 503, so orchestrators stop sending traffic that can only fail.
// Lanes the breaker registry has never tracked are healthy by definition.
func computeHealth(draining bool, tasks []string, breakers []serve.LaneBreaker,
	fallback func(task string) (variant string, ok bool)) (healthReport, int) {
	if draining {
		return healthReport{Status: healthDraining}, http.StatusServiceUnavailable
	}
	byTask := map[string][]serve.LaneBreaker{}
	for _, b := range breakers {
		byTask[b.Task] = append(byTask[b.Task], b)
	}
	laneOpen := func(variant, task string) bool {
		for _, b := range byTask[task] {
			if b.Variant == variant {
				return b.State == "open"
			}
		}
		return false
	}

	rep := healthReport{Status: healthOK, Tasks: make(map[string]taskHealth, len(tasks))}
	code := http.StatusOK
	for _, task := range tasks {
		lanes := byTask[task]
		th := taskHealth{Status: healthOK}
		anyOpen, allOpen := false, len(lanes) > 0
		for _, b := range lanes {
			th.Lanes = append(th.Lanes, laneHealth{Variant: b.Variant, State: b.State, RetryAfterMS: b.RetryAfterMS})
			if b.State == "open" {
				anyOpen = true
			} else {
				allOpen = false
			}
		}
		if anyOpen {
			fbVariant, ok := fallback(task)
			if ok {
				th.Fallback = fbVariant
			}
			if allOpen && (!ok || laneOpen(fbVariant, task)) {
				th.Status = healthUnavailable
			} else {
				th.Status = healthDegraded
			}
		}
		rep.Tasks[task] = th
		switch th.Status {
		case healthUnavailable:
			rep.Status = healthUnavailable
			code = http.StatusServiceUnavailable
		case healthDegraded:
			if rep.Status == healthOK {
				rep.Status = healthDegraded
			}
		}
	}
	return rep, code
}
