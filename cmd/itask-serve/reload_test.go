package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itask"
	"itask/internal/registry"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// writeVersion publishes v1 of one artifact into a registry layout under
// root, saving the weights with the checksummed path and recording the sum
// in the manifest — the same shape itask-train writes.
func writeVersion(t *testing.T, root, name, kind, task, file string, save func(string) (string, error)) {
	t.Helper()
	dir := registry.VersionDir(root, name, 1)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	sum, err := save(filepath.Join(dir, file))
	if err != nil {
		t.Fatal(err)
	}
	man := registry.Manifest{Name: name, Version: 1, Kind: kind, Task: task, Checksum: sum, File: file}
	if _, err := registry.WriteManifest(root, man); err != nil {
		t.Fatal(err)
	}
}

// POST /v1/models/reload over a registry layout hot-swaps the teacher and
// the defined task's student (checksum-verified), skips derived artifacts,
// and leaves the pipeline serving; /healthz reports ok until drain.
func TestReloadFromRegistryLayout(t *testing.T) {
	opts := itask.DefaultOptions()
	rng := tensor.NewRNG(7)
	dir := t.TempDir()
	writeVersion(t, dir, "teacher", "teacher", "", "teacher.ckpt",
		vit.New(opts.TeacherCfg, rng.Split()).SaveFileSum)
	writeVersion(t, dir, "patrol-student", "task-specific", "patrol", "student.ckpt",
		vit.New(opts.StudentCfg, rng.Split()).SaveFileSum)
	// A derived quantized export: present in the layout, skipped on reload
	// (the server re-quantizes from the teacher), weights never read.
	writeVersion(t, dir, "generalist-q8", "generalist", "", "weights.itq8",
		func(path string) (string, error) { return "feedc0de", os.WriteFile(path, []byte("q8"), 0o644) })

	pipe := itask.New(opts)
	if err := pipe.DefineTask("patrol", "monitor the perimeter for vehicles and people"); err != nil {
		t.Fatal(err)
	}
	h := &handler{pipe: pipe, modelsDir: dir, imageSize: opts.TeacherCfg.ImageSize}

	rec := httptest.NewRecorder()
	h.reload(rec, httptest.NewRequest(http.MethodPost, "/v1/models/reload", strings.NewReader("")))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status = %d body = %s", rec.Code, rec.Body)
	}
	var resp struct {
		Reloaded []string `json:"reloaded"`
		Skipped  []string `json:"skipped"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	has := func(list []string, s string) bool {
		for _, v := range list {
			if v == s {
				return true
			}
		}
		return false
	}
	if !has(resp.Reloaded, "teacher@v1") || !has(resp.Reloaded, "patrol-student@v1") {
		t.Errorf("reloaded = %v, want teacher@v1 and patrol-student@v1", resp.Reloaded)
	}
	if !has(resp.Skipped, "generalist-q8@v1") {
		t.Errorf("skipped = %v, want generalist-q8@v1", resp.Skipped)
	}
	if pipe.Teacher() == nil || pipe.Quantized() == nil || pipe.Student("patrol") == nil {
		t.Fatal("pipeline not fully loaded after reload")
	}

	// The wired /healthz: ok on the live server, draining 503 after Shutdown.
	backend := pipe.ServeBackend()
	srv, err := serve.New(backend, serve.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.srv, h.backend = srv, backend
	rec = httptest.NewRecorder()
	h.healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz: status = %d body = %s", rec.Code, rec.Body)
	}
	var rep healthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != healthOK || rep.Tasks["patrol"].Status != healthOK {
		t.Errorf("health report = %+v, want ok", rep)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: status = %d, want 503", rec.Code)
	}
}

// A directory without a registry layout reloads the flat itask-train
// teacher.ckpt; reload request plumbing rejects bad methods, missing
// directories, and unparseable bodies with the right statuses.
func TestReloadFlatLayoutAndErrors(t *testing.T) {
	opts := itask.DefaultOptions()
	dir := t.TempDir()
	teacher := vit.New(opts.TeacherCfg, tensor.NewRNG(3))
	if err := teacher.SaveFile(filepath.Join(dir, "teacher.ckpt")); err != nil {
		t.Fatal(err)
	}
	pipe := itask.New(opts)
	h := &handler{pipe: pipe, imageSize: opts.TeacherCfg.ImageSize}

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.reload(rec, httptest.NewRequest(http.MethodPost, "/v1/models/reload", strings.NewReader(body)))
		return rec
	}

	if rec := post(`{"dir": "` + dir + `"}`); rec.Code != http.StatusOK {
		t.Fatalf("flat reload: status = %d body = %s", rec.Code, rec.Body)
	}
	if pipe.Quantized() == nil {
		t.Fatal("generalist not published after flat reload")
	}

	rec := httptest.NewRecorder()
	h.reload(rec, httptest.NewRequest(http.MethodGet, "/v1/models/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: status = %d, want 405", rec.Code)
	}
	if rec := post(""); rec.Code != http.StatusBadRequest {
		t.Errorf("no dir configured: status = %d, want 400", rec.Code)
	}
	if rec := post("{nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: status = %d, want 400", rec.Code)
	}
	if rec := post(`{"dir": "` + filepath.Join(dir, "missing") + `"}`); rec.Code != http.StatusNotFound {
		t.Errorf("missing dir: status = %d, want 404", rec.Code)
	}
}
