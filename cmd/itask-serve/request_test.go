package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"itask/internal/serve"
)

const testImageSize = 8

// validImageBody builds a well-formed /v1/detect body for an 8×8 server.
func validImageBody(t *testing.T) []byte {
	t.Helper()
	data := make([]float32, 3*testImageSize*testImageSize)
	body, err := json.Marshal(map[string]any{
		"task":  "patrol",
		"image": map[string]any{"shape": []int{3, testImageSize, testImageSize}, "data": data},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestParseDetectRequestAcceptsValidBodies(t *testing.T) {
	dr, err := parseDetectRequest(validImageBody(t), testImageSize)
	if err != nil {
		t.Fatal(err)
	}
	img, err := dr.buildImage(testImageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Shape; len(got) != 3 || got[0] != 3 || got[1] != testImageSize {
		t.Errorf("built image shape %v", got)
	}

	dr, err = parseDetectRequest([]byte(`{"task":"patrol","scene":{"domain":"driving","seed":7},"timeout_ms":100}`), testImageSize)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Scene == nil || dr.TimeoutMS != 100 {
		t.Errorf("scene request parsed as %+v", dr)
	}

	dr, err = parseDetectRequest([]byte(`{"task":"patrol","tenant":"acme-prod","scene":{"domain":"driving"}}`), testImageSize)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Tenant != "acme-prod" {
		t.Errorf("tenant parsed as %q", dr.Tenant)
	}
}

func TestParseDetectRequestRejectsMalformedBodies(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"truncated JSON", `{"task":"patrol"`},
		{"not JSON", `<html>`},
		{"missing task", `{"scene":{"domain":"driving"}}`},
		{"neither image nor scene", `{"task":"patrol"}`},
		{"both image and scene", `{"task":"patrol","image":{"shape":[3,8,8],"data":[]},"scene":{"domain":"driving"}}`},
		{"zero-size image", `{"task":"patrol","image":{"shape":[3,0,0],"data":[]}}`},
		{"huge dims", `{"task":"patrol","image":{"shape":[3,1099511627776,1099511627776],"data":[1]}}`},
		{"negative dims", `{"task":"patrol","image":{"shape":[3,-8,-8],"data":[]}}`},
		{"wrong dim count", `{"task":"patrol","image":{"shape":[8,8],"data":[]}}`},
		{"data/shape mismatch", `{"task":"patrol","image":{"shape":[3,8,8],"data":[1,2,3]}}`},
		{"unknown domain", `{"task":"patrol","scene":{"domain":"atlantis"}}`},
		{"negative timeout", `{"task":"patrol","scene":{"domain":"driving"},"timeout_ms":-5}`},
		{"trailing garbage", `{"task":"patrol","scene":{"domain":"driving"}}garbage`},
		{"second JSON value", `{"task":"patrol","scene":{"domain":"driving"}}{"task":"x"}`},
		{"trailing bracket", `{"task":"patrol","scene":{"domain":"driving"}}]`},
		{"oversized tenant", `{"task":"patrol","tenant":"` + strings.Repeat("x", 65) + `","scene":{"domain":"driving"}}`},
		{"control-char tenant", `{"task":"patrol","tenant":"a\u0001b","scene":{"domain":"driving"}}`},
		{"newline tenant", `{"task":"patrol","tenant":"a\nb","scene":{"domain":"driving"}}`},
	}
	for _, tc := range cases {
		if _, err := parseDetectRequest([]byte(tc.body), testImageSize); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.body)
		}
	}
}

// FuzzParseDetectRequest asserts the /v1/detect parser never panics and
// never accepts a body whose image spec could not be materialized exactly:
// whatever bytes arrive, the outcome is a clean 400 or a tensor-backed
// request.
func FuzzParseDetectRequest(f *testing.F) {
	f.Add([]byte(`{"task":"patrol","scene":{"domain":"driving","seed":7}}`))
	f.Add([]byte(`{"task":"patrol","image":{"shape":[3,8,8],"data":[0]}}`))
	f.Add([]byte(`{"task":"","image":{"shape":[],"data":[]}}`))
	f.Add([]byte(`{"task":"p","image":{"shape":[3,0,0],"data":[]}}`))
	f.Add([]byte(`{"task":"p","image":{"shape":[3,1099511627776,1099511627776],"data":[1]}}`))
	f.Add([]byte(`{"task":"p","timeout_ms":-9223372036854775808}`))
	f.Add([]byte(`{"task":"p","tenant":"acme","scene":{"domain":"driving"}}`))
	f.Add([]byte(`{"task":"p","tenant":"` + strings.Repeat("t", 65) + `","scene":{"domain":"driving"}}`))
	f.Add([]byte(`{"task":"p","tenant":"a\u0001b","scene":{"domain":"driving"}}`))
	f.Add([]byte(`{"task":"p","scene":{"domain":"driving"}}{"task":"q"}`))
	f.Add([]byte(`{"task":"p","scene":{"domain":"driving"}} ` + "\n"))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, body []byte) {
		dr, err := parseDetectRequest(body, testImageSize)
		if err != nil {
			return
		}
		if dr.Task == "" {
			t.Fatalf("accepted request without task: %q", body)
		}
		if (dr.Image == nil) == (dr.Scene == nil) {
			t.Fatalf("accepted request without exactly one of image/scene: %q", body)
		}
		if dr.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout: %q", body)
		}
		if len(dr.Tenant) > maxTenantLen {
			t.Fatalf("accepted oversized tenant id: %q", body)
		}
		for _, b := range []byte(dr.Tenant) {
			if b < 0x20 || b == 0x7f {
				t.Fatalf("accepted control character in tenant id: %q", body)
			}
		}
		// A validated image spec must materialize without panicking, at
		// exactly the advertised size. (Scene generation is exercised by
		// its own package tests; rebuilding scenes per fuzz input would
		// dominate the run.)
		if dr.Image != nil {
			img, err := dr.buildImage(testImageSize)
			if err != nil {
				t.Fatalf("validated image failed to build: %v", err)
			}
			if len(img.Data) != 3*testImageSize*testImageSize {
				t.Fatalf("built image has %d values", len(img.Data))
			}
		}
	})
}

func TestStatusOfMapsFailureModes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", serve.ErrBadShape), http.StatusBadRequest},
		{serve.ErrQueueFull, http.StatusTooManyRequests},
		{&serve.TenantBudgetError{Tenant: "acme", RetryAfter: time.Second}, http.StatusTooManyRequests},
		{serve.ErrShuttingDown, http.StatusServiceUnavailable},
		{&serve.BreakerOpenError{Variant: "v", Task: "t", RetryAfter: time.Second}, http.StatusServiceUnavailable},
		{&serve.PanicError{Value: "boom"}, http.StatusInternalServerError},
		{serve.ErrDeadlineExceeded, http.StatusGatewayTimeout},
		{serve.ErrWatchdog, http.StatusGatewayTimeout},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("unknown task"), http.StatusNotFound},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.want {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRetryAfterHints(t *testing.T) {
	if ra, ok := retryAfter(&serve.BreakerOpenError{RetryAfter: 2500 * time.Millisecond}); !ok || ra != 3 {
		t.Errorf("breaker retry-after = %d,%v, want 3,true (rounded up)", ra, ok)
	}
	if ra, ok := retryAfter(&serve.BreakerOpenError{RetryAfter: 0}); !ok || ra != 1 {
		t.Errorf("zero-backoff breaker retry-after = %d,%v, want 1,true", ra, ok)
	}
	if ra, ok := retryAfter(serve.ErrQueueFull); !ok || ra != 1 {
		t.Errorf("queue-full retry-after = %d,%v, want 1,true", ra, ok)
	}
	if ra, ok := retryAfter(&serve.TenantBudgetError{Tenant: "acme", RetryAfter: 1200 * time.Millisecond}); !ok || ra != 2 {
		t.Errorf("tenant-budget retry-after = %d,%v, want 2,true (rounded up)", ra, ok)
	}
	if _, ok := retryAfter(serve.ErrWatchdog); ok {
		t.Error("watchdog expiry should carry no retry-after")
	}
}

func TestParseTenantWeights(t *testing.T) {
	got, err := parseTenantWeights("gold=4, silver=2,free=1")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]int{"gold": 4, "silver": 2, "free": 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("parsed %v, want %v", got, want)
	}
	for _, bad := range []string{"gold", "gold=", "=4", "gold=0", "gold=-1", "gold=x", "gold=1,gold=2", "a\nb=1"} {
		if _, err := parseTenantWeights(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
