package main

import (
	"fmt"
	"path/filepath"

	"itask"
	"itask/internal/registry"
)

// reloadModels publishes fresh model versions into the serving pipeline from
// a checkpoint directory, without stopping traffic. A registry layout
// (<dir>/<name>/v<N>/manifest.json, written by itask-train) is preferred:
// each name's newest version loads with its manifest checksum verified
// end-to-end, teacher first so students and fallbacks land on the new
// generalist. A directory with no registry layout falls back to the flat
// itask-train teacher.ckpt, unverified. Returns the coordinates it published
// and the ones it skipped (derived artifacts like quantized exports, and
// students whose task is not defined on this server).
func reloadModels(p *itask.Pipeline, dir string) (loaded, skipped []string, err error) {
	names, err := registry.Names(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		path := filepath.Join(dir, "teacher.ckpt")
		if err := p.ReloadGeneralist(path, ""); err != nil {
			return nil, nil, err
		}
		return []string{path}, nil, nil
	}

	defined := map[string]bool{}
	for _, t := range p.Tasks() {
		defined[t] = true
	}
	var students []registry.Manifest
	studentDirs := map[string]string{}
	for _, name := range names {
		man, vdir, err := registry.LatestManifest(dir, name)
		if err != nil {
			return loaded, skipped, err
		}
		kind, err := registry.KindFromString(man.Kind)
		if err != nil {
			return loaded, skipped, err
		}
		coord := fmt.Sprintf("%s@v%d", man.Name, man.Version)
		switch kind {
		case registry.Teacher:
			if err := p.ReloadGeneralist(filepath.Join(vdir, man.File), man.Checksum); err != nil {
				return loaded, skipped, fmt.Errorf("reloading %s: %w", coord, err)
			}
			loaded = append(loaded, coord)
		case registry.TaskSpecific:
			students = append(students, man)
			studentDirs[coord] = vdir
		default:
			// Quantized exports and few-shot bases are derived in-process
			// from the teacher checkpoint; nothing to load directly.
			skipped = append(skipped, coord)
		}
	}
	for _, man := range students {
		coord := fmt.Sprintf("%s@v%d", man.Name, man.Version)
		if !defined[man.Task] {
			skipped = append(skipped, coord)
			continue
		}
		path := filepath.Join(studentDirs[coord], man.File)
		if err := p.LoadStudentVerified(man.Task, path, man.Checksum); err != nil {
			return loaded, skipped, fmt.Errorf("reloading %s: %w", coord, err)
		}
		loaded = append(loaded, coord)
	}
	return loaded, skipped, nil
}
