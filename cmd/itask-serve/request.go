package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/wire"
)

// maxBodyBytes bounds a /v1/detect body. A 64×64×3 image serialized as
// JSON floats is ~150 KiB; 4 MiB leaves ample headroom while keeping a
// hostile request from ballooning the decoder.
const maxBodyBytes = 4 << 20

// maxTenantLen bounds a tenant identifier. Tenant IDs become map keys in
// the scheduler, quarantine entries, and metrics labels, so the edge keeps
// them short and printable rather than letting a client mint unbounded or
// log-hostile strings.
const maxTenantLen = 64

// validateTenant checks a tenant identifier from the body's "tenant" field
// or the X-Itask-Tenant header. Empty is fine (the serving layer assigns
// the default tenant); anything present must be short and free of control
// characters.
func validateTenant(tenant string) error {
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("tenant id exceeds %d bytes", maxTenantLen)
	}
	for _, b := range []byte(tenant) {
		if b < 0x20 || b == 0x7f {
			return errors.New("tenant id contains control characters")
		}
	}
	return nil
}

// detectRequest is the POST /v1/detect body. Exactly one of Image and Scene
// must be set: Image carries raw pixels, Scene renders a synthetic scene
// server-side (handy for curl demos).
type detectRequest struct {
	Task string `json:"task"`
	// Tenant attributes the request for weighted-fair scheduling and
	// budgets; it wins over the X-Itask-Tenant header when both are set.
	Tenant string `json:"tenant,omitempty"`
	Image  *struct {
		Shape []int     `json:"shape"`
		Data  []float32 `json:"data"`
	} `json:"image,omitempty"`
	Scene *struct {
		Domain string `json:"domain"`
		Seed   uint64 `json:"seed"`
	} `json:"scene,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// parseDetectRequest decodes and structurally validates a /v1/detect body
// against the server's image size. Every return path is either a valid
// request whose image spec can be materialized without allocation surprises,
// or an error fit for HTTP 400 — the function must never panic, whatever the
// bytes (it is fuzzed).
func parseDetectRequest(body []byte, imageSize int) (*detectRequest, error) {
	var dr detectRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&dr); err != nil {
		return nil, fmt.Errorf("bad JSON: %v", err)
	}
	// One value per body: json.Decoder stops at the end of the first value,
	// so `{...}garbage` would otherwise be accepted with the garbage ignored
	// — and two callers disagreeing on where a body ends is how smuggled
	// payloads start. A second decode must see clean EOF.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("trailing data after JSON body")
	}
	if dr.Task == "" {
		return nil, errors.New("missing task")
	}
	if err := validateTenant(dr.Tenant); err != nil {
		return nil, err
	}
	if dr.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", dr.TimeoutMS)
	}
	switch {
	case dr.Image != nil && dr.Scene != nil:
		return nil, errors.New("set either image or scene, not both")
	case dr.Image == nil && dr.Scene == nil:
		return nil, errors.New("set image or scene")
	case dr.Image != nil:
		s := imageSize
		sh := dr.Image.Shape
		// Exact-shape check: dimension count, then each extent. Checking
		// extents individually (rather than multiplying) sidesteps overflow
		// on hostile dims like [3, 1<<40, 1<<40].
		if len(sh) != 3 || sh[0] != 3 || sh[1] != s || sh[2] != s {
			return nil, fmt.Errorf("image shape must be [3,%d,%d], got %v", s, s, sh)
		}
		if len(dr.Image.Data) != 3*s*s {
			return nil, fmt.Errorf("image data has %d values, want %d", len(dr.Image.Data), 3*s*s)
		}
	case dr.Scene != nil:
		if _, ok := scene.DomainByName(dr.Scene.Domain); !ok {
			return nil, fmt.Errorf("unknown domain %q", dr.Scene.Domain)
		}
	}
	return &dr, nil
}

// parseDetectFrame decodes and validates a binary (application/x-itask-tensor)
// /v1/detect body, applying the same semantic rules as the JSON parser:
// non-empty task, well-formed tenant, exact [3,S,S] shape. The returned
// tensor is materialized by copying the payload out of body — body is a
// pooled buffer the handler releases on return, while a watchdog-abandoned
// execution may keep reading the image long after that, so the tensor must
// not alias it. Never panics, whatever the bytes (it is fuzzed).
func parseDetectFrame(body []byte, imageSize int) (*detectRequest, *tensor.Tensor, error) {
	fr, err := wire.ParseFrame(body)
	if err != nil {
		if errors.Is(err, wire.ErrNotFrame) {
			return nil, nil, fmt.Errorf("Content-Type %s but body is not a tensor frame", wire.ContentType)
		}
		return nil, nil, err
	}
	dr := &detectRequest{
		Task:      string(fr.Task),
		Tenant:    string(fr.Tenant),
		TimeoutMS: int(fr.TimeoutMS),
	}
	if dr.Task == "" {
		return nil, nil, errors.New("missing task")
	}
	if err := validateTenant(dr.Tenant); err != nil {
		return nil, nil, err
	}
	s := imageSize
	if fr.Shape != [3]int{3, s, s} {
		return nil, nil, fmt.Errorf("image shape must be [3,%d,%d], got %v", s, s, fr.Shape)
	}
	img := tensor.New(3, s, s)
	wire.Float32s(fr.Payload, img.Data)
	return dr, img, nil
}

// buildImage materializes the validated request's image or scene spec into
// a (3,S,S) tensor. Must only be called on a request parseDetectRequest
// accepted.
func (dr *detectRequest) buildImage(imageSize int) (*tensor.Tensor, error) {
	if dr.Image != nil {
		return tensor.FromSlice(dr.Image.Data, 3, imageSize, imageSize), nil
	}
	dom, ok := scene.DomainByName(dr.Scene.Domain)
	if !ok {
		return nil, fmt.Errorf("unknown domain %q", dr.Scene.Domain)
	}
	sc := scene.Generate(dom, scene.DefaultGenConfig(), tensor.NewRNG(dr.Scene.Seed))
	return sc.Image, nil
}
