package main

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// errReader simulates a network read failure mid-body — not an
// entity-too-large condition.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("connection reset") }

// Only a genuinely oversized body maps to 413; other body read failures
// (client disconnects, network errors) are 400.
func TestDetectBodyReadStatusCodes(t *testing.T) {
	h := &handler{imageSize: testImageSize}

	big := bytes.Repeat([]byte("x"), maxBodyBytes+1)
	rec := httptest.NewRecorder()
	h.detect(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", bytes.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want %d", rec.Code, http.StatusRequestEntityTooLarge)
	}

	rec = httptest.NewRecorder()
	h.detect(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", errReader{}))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unreadable body: status = %d, want %d", rec.Code, http.StatusBadRequest)
	}
}
