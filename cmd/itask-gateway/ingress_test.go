package main

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"itask/internal/gateway"
	"itask/internal/rcache"
	"itask/internal/wire"
)

// twinBodies builds a JSON /v1/detect image body and its binary tensor-frame
// twin: same task, same shape, same float values bit for bit.
func twinBodies(t testing.TB, task string, seed int64) (jsonBody, binBody []byte) {
	t.Helper()
	const size = 8
	r := rand.New(rand.NewSource(seed))
	data := make([]float32, 3*size*size)
	for i := range data {
		data[i] = r.Float32()
	}
	jsonBody, err := json.Marshal(map[string]any{
		"task":  task,
		"image": map[string]any{"shape": []int{3, size, size}, "data": data},
	})
	if err != nil {
		t.Fatal(err)
	}
	binBody = wire.AppendFrame(nil, task, "", 0, [3]int{3, size, size}, data)
	return jsonBody, binBody
}

// routeKeyFrame derives routing identity from the frame header and a digest
// of the raw payload — no tensor is ever built. Its keys must be the same
// ones routeKey derives from the JSON twin, and garbage must degrade to the
// task-less zero key.
func TestRouteKeyFrameDerivation(t *testing.T) {
	jsonBody, binBody := twinBodies(t, "patrol", 3)

	k := routeKeyFrame(binBody)
	if k.Task != "patrol" || !k.HasDigest {
		t.Fatalf("frame mis-keyed: %+v", k)
	}
	fr, err := wire.ParseFrame(binBody)
	if err != nil {
		t.Fatal(err)
	}
	if want := rcache.DigestFrame(fr.Shape[:], fr.Payload); k.Digest != want {
		t.Fatalf("frame digest %x, want DigestFrame %x", k.Digest, want)
	}
	if jk := routeKey(jsonBody); jk != k {
		t.Fatalf("JSON twin keys differently: %+v vs %+v", jk, k)
	}

	// Tenant travels into the key.
	withTenant := wire.AppendFrame(nil, "patrol", "acme", 0, [3]int{3, 8, 8}, make([]float32, 3*8*8))
	if k := routeKeyFrame(withTenant); k.Tenant != "acme" {
		t.Fatalf("frame tenant not keyed: %+v", k)
	}

	// Unparseable bodies yield the zero key (the caller 400s on JSON-side
	// validation or lets the shard render the verdict).
	for _, bad := range [][]byte{nil, []byte("iTSK"), binBody[:40], []byte(`{"task":"patrol"}`)} {
		if k := routeKeyFrame(bad); k != (gateway.Key{}) {
			t.Fatalf("garbage frame %q produced key %+v", bad, k)
		}
	}
}

// A binary frame and its JSON twin must land on the same shard: the gateway
// digests the frame payload without materializing a tensor, and that digest
// equals the one the JSON path computes from the built image.
func TestDetectBinaryBodyRoutesLikeJSONTwin(t *testing.T) {
	_, front := newTestApp(t, passiveCfg(), newFakeBackend("b0"), newFakeBackend("b1"), newFakeBackend("b2"))

	post := func(body []byte, contentType string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(front.URL+"/v1/detect", contentType, strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}

	distinct := map[string]bool{}
	for seed := int64(0); seed < 12; seed++ {
		jsonBody, binBody := twinBodies(t, "patrol", seed)
		jr, jb := post(jsonBody, "application/json")
		if jr.StatusCode != http.StatusOK {
			t.Fatalf("seed %d JSON: status %d: %s", seed, jr.StatusCode, jb)
		}
		br, bb := post(binBody, wire.ContentType)
		if br.StatusCode != http.StatusOK {
			t.Fatalf("seed %d binary: status %d: %s", seed, br.StatusCode, bb)
		}
		js, bs := jr.Header.Get("X-Itask-Shard"), br.Header.Get("X-Itask-Shard")
		if js == "" || js != bs {
			t.Fatalf("seed %d: JSON shard %q, binary shard %q — twins diverged", seed, js, bs)
		}
		if !strings.Contains(bb, `"task":"patrol"`) {
			t.Fatalf("binary body not relayed through the backend: %s", bb)
		}
		distinct[js] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("12 distinct frames all routed to one shard: %v", distinct)
	}
}

// BenchmarkServeIngress measures the gateway's routing-key derivation for a
// JSON image body versus its binary twin. The binary path reads the frame
// header and digests raw payload words in place — no JSON decode, no tensor.
func BenchmarkServeIngress(b *testing.B) {
	const size = 32
	r := rand.New(rand.NewSource(5))
	data := make([]float32, 3*size*size)
	for i := range data {
		data[i] = r.Float32()
	}
	jsonBody, err := json.Marshal(map[string]any{
		"task":  "patrol",
		"image": map[string]any{"shape": []int{3, size, size}, "data": data},
	})
	if err != nil {
		b.Fatal(err)
	}
	binBody := wire.AppendFrame(nil, "patrol", "", 0, [3]int{3, size, size}, data)

	b.Run("routekey_json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonBody)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k := routeKey(jsonBody); !k.HasDigest {
				b.Fatal("no digest")
			}
		}
	})
	b.Run("routekey_binary", func(b *testing.B) {
		b.SetBytes(int64(len(binBody)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k := routeKeyFrame(binBody); !k.HasDigest {
				b.Fatal("no digest")
			}
		}
	})
}
