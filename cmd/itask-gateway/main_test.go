package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/wire"
)

// fakeBackend is an httptest-served itask-serve lookalike: detect answers
// carry the backend's name, reload bumps the registry sequence, and healthz
// and metricsz speak the real endpoints' shapes.
type fakeBackend struct {
	name string
	srv  *httptest.Server

	mu         sync.Mutex
	seq        uint64
	detects    int
	reloads    int
	status     int    // non-zero forces every detect to this status
	lastTenant string // X-Itask-Tenant seen on the latest detect
}

func newFakeBackend(name string) *fakeBackend {
	b := &fakeBackend{name: name, seq: 1}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		b.mu.Lock()
		b.detects++
		b.lastTenant = r.Header.Get("X-Itask-Tenant")
		status := b.status
		b.mu.Unlock()
		if status != 0 {
			if status == http.StatusTooManyRequests {
				// Real itask-serve backpressure advertises a horizon.
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"forced %d"}`, status)
			return
		}
		var probe struct {
			Task   string `json:"task"`
			Tenant string `json:"tenant"`
		}
		// The lookalike accepts both ingress encodings the way real
		// itask-serve does: a binary tensor frame or a JSON body.
		if fr, err := wire.ParseFrame(body); err == nil {
			probe.Task, probe.Tenant = string(fr.Task), string(fr.Tenant)
		} else if json.Unmarshal(body, &probe) != nil {
			probe.Task = ""
		}
		if probe.Task == "" {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"missing task"}`)
			return
		}
		// Echo the normalized tenant the way real itask-serve does: the
		// body's tenant field wins over the forwarded header.
		tenant := probe.Tenant
		if tenant == "" {
			tenant = r.Header.Get("X-Itask-Tenant")
		}
		if tenant != "" {
			w.Header().Set("X-Itask-Tenant", tenant)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"task":%q,"model":%q,"detections":[]}`, probe.Task, b.name)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		seq := b.seq
		b.mu.Unlock()
		fmt.Fprintf(w, `{"registry":{"seq":%d}}`, seq)
	})
	mux.HandleFunc("/v1/models/reload", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		b.reloads++
		b.seq++
		b.mu.Unlock()
		fmt.Fprint(w, `{"reloaded":["teacher"]}`)
	})
	b.srv = httptest.NewServer(mux)
	return b
}

func (b *fakeBackend) detectCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.detects
}

func (b *fakeBackend) tenantSeen() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastTenant
}

func (b *fakeBackend) forceStatus(code int) {
	b.mu.Lock()
	b.status = code
	b.mu.Unlock()
}

func newTestApp(t *testing.T, cfg gateway.Config, backends ...*fakeBackend) (*app, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.srv.URL
	}
	a, err := newApp(cfg, urls, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(a.mux())
	t.Cleanup(func() {
		front.Close()
		a.g.Close()
		for _, b := range backends {
			b.srv.Close()
		}
	})
	return a, front
}

func passiveCfg() gateway.Config {
	return gateway.Config{VirtualNodes: 64, MaxRetries: 1, FailThreshold: 1, EjectFor: time.Minute}
}

func sceneBody(task string, seed int) string {
	return fmt.Sprintf(`{"task":%q,"scene":{"domain":"driving","seed":%d}}`, task, seed)
}

func postDetect(t *testing.T, front *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(front.URL+"/v1/detect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// Content-consistent routing with shard attribution: a given body always
// lands on the same shard (named in X-Itask-Shard), and distinct content
// spreads over the fleet.
func TestDetectRoutesByContentWithAttribution(t *testing.T) {
	a, front := newTestApp(t, passiveCfg(), newFakeBackend("b0"), newFakeBackend("b1"), newFakeBackend("b2"))
	shardOf := map[int]string{}
	for seed := 0; seed < 40; seed++ {
		for rep := 0; rep < 3; rep++ {
			resp, body := postDetect(t, front, sceneBody("patrol", seed))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
			}
			shard := resp.Header.Get("X-Itask-Shard")
			if shard == "" {
				t.Fatal("response missing X-Itask-Shard")
			}
			if prev, ok := shardOf[seed]; ok && prev != shard {
				t.Fatalf("seed %d flapped between shards %s and %s", seed, prev, shard)
			}
			shardOf[seed] = shard
			if !strings.Contains(body, `"task":"patrol"`) {
				t.Fatalf("backend body not relayed: %s", body)
			}
		}
	}
	distinct := map[string]bool{}
	for _, s := range shardOf {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("40 distinct scenes all routed to one shard: %v", distinct)
	}
	if snap := a.g.Snapshot(); snap.Routed == 0 || snap.Failed != 0 {
		t.Fatalf("snapshot routed/failed = %d/%d", snap.Routed, snap.Failed)
	}
}

// A dead backend's keys fail over transparently: the client sees 200 from a
// successor with the attempt recorded, and the dead shard is ejected.
func TestDetectFailsOverWhenBackendDies(t *testing.T) {
	b0, b1 := newFakeBackend("b0"), newFakeBackend("b1")
	a, front := newTestApp(t, passiveCfg(), b0, b1)

	// Find a seed owned by b0, then kill b0.
	victimSeed := -1
	for seed := 0; seed < 64 && victimSeed < 0; seed++ {
		resp, _ := postDetect(t, front, sceneBody("patrol", seed))
		if resp.Header.Get("X-Itask-Shard") == b0.srv.URL {
			victimSeed = seed
		}
	}
	if victimSeed < 0 {
		t.Fatal("no seed routed to b0")
	}
	b0.srv.Close()

	resp, body := postDetect(t, front, sceneBody("patrol", victimSeed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover detect: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Itask-Shard"); got != b1.srv.URL {
		t.Fatalf("served by %s, want survivor %s", got, b1.srv.URL)
	}
	if got := resp.Header.Get("X-Itask-Attempts"); got != "2" {
		t.Fatalf("X-Itask-Attempts = %s, want 2", got)
	}
	snap := a.g.Snapshot()
	if snap.Ejections == 0 {
		t.Fatal("dead backend not ejected")
	}
	// Subsequent requests for the same key route straight to the survivor.
	resp, _ = postDetect(t, front, sceneBody("patrol", victimSeed))
	if resp.Header.Get("X-Itask-Attempts") != "1" {
		t.Fatal("ejected backend still tried first")
	}
}

// Backend verdicts about request content relay as-is — no failover, no
// second backend touched.
func TestDetectPassesThroughContentVerdicts(t *testing.T) {
	b0, b1 := newFakeBackend("b0"), newFakeBackend("b1")
	_, front := newTestApp(t, passiveCfg(), b0, b1)

	resp, body := postDetect(t, front, `{"scene":{"domain":"driving","seed":1}}`) // no task
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "missing task") {
		t.Fatalf("backend 400 not relayed: %d %s", resp.StatusCode, body)
	}

	b0.forceStatus(http.StatusUnprocessableEntity)
	b1.forceStatus(http.StatusUnprocessableEntity)
	before := b0.detectCount() + b1.detectCount()
	resp, _ = postDetect(t, front, sceneBody("patrol", 9))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("422 verdict became %d", resp.StatusCode)
	}
	if got := b0.detectCount() + b1.detectCount() - before; got != 1 {
		t.Fatalf("content verdict touched %d backends, want 1", got)
	}
}

// 429 backpressure spills to a successor instead of surfacing.
func TestDetectSpillsOnBackpressure(t *testing.T) {
	b0, b1 := newFakeBackend("b0"), newFakeBackend("b1")
	_, front := newTestApp(t, passiveCfg(), b0, b1)
	seed := 0
	for ; seed < 64; seed++ {
		resp, _ := postDetect(t, front, sceneBody("patrol", seed))
		if resp.Header.Get("X-Itask-Shard") == b0.srv.URL {
			break
		}
	}
	b0.forceStatus(http.StatusTooManyRequests)
	resp, body := postDetect(t, front, sceneBody("patrol", seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backpressure not failed over: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Itask-Shard"); got != b1.srv.URL {
		t.Fatalf("spilled to %s, want %s", got, b1.srv.URL)
	}
}

// A fleet-wide reload converges every backend and reports the fleet epoch.
func TestReloadPropagatesFleetWide(t *testing.T) {
	b0, b1, b2 := newFakeBackend("b0"), newFakeBackend("b1"), newFakeBackend("b2")
	cfg := passiveCfg()
	cfg.BarrierPoll = 5 * time.Millisecond
	a, front := newTestApp(t, cfg, b0, b1, b2)

	resp, err := http.Post(front.URL+"/v1/models/reload", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 2 {
		t.Fatalf("fleet epoch = %d, want 2 (seq 1 + one reload)", out.Epoch)
	}
	for _, b := range []*fakeBackend{b0, b1, b2} {
		b.mu.Lock()
		reloads, seq := b.reloads, b.seq
		b.mu.Unlock()
		if reloads != 1 || seq != 2 {
			t.Fatalf("%s: reloads=%d seq=%d, want 1/2", b.name, reloads, seq)
		}
	}
	if a.g.CommittedEpoch() != out.Epoch {
		t.Fatalf("committed epoch %d != reported %d", a.g.CommittedEpoch(), out.Epoch)
	}
}

// healthz flips to 503 only when no backend is routable.
func TestGatewayHealthz(t *testing.T) {
	b0, b1 := newFakeBackend("b0"), newFakeBackend("b1")
	a, front := newTestApp(t, passiveCfg(), b0, b1)
	get := func() (int, string) {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"available":2`) {
		t.Fatalf("healthy fleet: %d %s", code, body)
	}
	// Kill both backends and push traffic until passive accounting ejects
	// them; healthz must then refuse.
	b0.srv.Close()
	b1.srv.Close()
	for seed := 0; seed < 8; seed++ {
		resp, _ := postDetect(t, front, sceneBody("patrol", seed))
		if resp.StatusCode == http.StatusOK {
			t.Fatal("detect succeeded with every backend dead")
		}
	}
	if a.g.Snapshot().Failed == 0 {
		t.Fatal("no failures recorded with the fleet dead")
	}
	if code, body := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet healthz: %d %s", code, body)
	}
}

// routeKey alignment: image bodies digest like the shard cache, scene bodies
// key on (task, domain, seed), garbage falls back to the task.
func TestRouteKeyDerivation(t *testing.T) {
	img := `{"task":"patrol","image":{"shape":[3,2,2],"data":[1,2,3,4,5,6,7,8,9,10,11,12]}}`
	k1, k2 := routeKey([]byte(img)), routeKey([]byte(img))
	if !k1.HasDigest || k1 != k2 {
		t.Fatalf("image keys unstable: %+v vs %+v", k1, k2)
	}
	s1 := routeKey([]byte(sceneBody("patrol", 7)))
	s2 := routeKey([]byte(sceneBody("patrol", 8)))
	if !s1.HasDigest || !s2.HasDigest || s1.Digest == s2.Digest {
		t.Fatalf("scene seeds 7/8 not distinctly keyed: %+v vs %+v", s1, s2)
	}
	if k := routeKey([]byte(`{"task":"patrol"}`)); k.HasDigest || k.Task != "patrol" {
		t.Fatalf("bare task body mis-keyed: %+v", k)
	}
	if k := routeKey([]byte(`not json`)); k.HasDigest || k.Task != "" {
		t.Fatalf("garbage body mis-keyed: %+v", k)
	}
	// A shape/data mismatch must not panic or allocate a bogus tensor.
	if k := routeKey([]byte(`{"task":"t","image":{"shape":[3,100,100],"data":[1]}}`)); k.HasDigest {
		t.Fatalf("mismatched image spec produced a digest: %+v", k)
	}
}

// Tenant identity threads the whole proxied path: the gateway validates it
// at its own door, forwards it to the shard as X-Itask-Tenant, relays the
// shard's echo back to the client, and attributes the request in its
// per-tenant counters.
func TestDetectTenantThreading(t *testing.T) {
	b0, b1 := newFakeBackend("b0"), newFakeBackend("b1")
	a, front := newTestApp(t, passiveCfg(), b0, b1)

	post := func(body, headerTenant string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/detect", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if headerTenant != "" {
			req.Header.Set("X-Itask-Tenant", headerTenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}

	// A header-identified tenant reaches the shard and echoes back.
	resp, body := post(sceneBody("patrol", 1), "acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Itask-Tenant"); got != "acme" {
		t.Fatalf("echoed tenant %q, want acme", got)
	}
	if b0.tenantSeen() != "acme" && b1.tenantSeen() != "acme" {
		t.Fatalf("no backend saw the forwarded tenant (b0 %q, b1 %q)", b0.tenantSeen(), b1.tenantSeen())
	}

	// The body's tenant field wins over the header, end to end.
	resp, body = post(`{"task":"patrol","tenant":"bodywins","scene":{"domain":"driving","seed":2}}`, "ignored")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Itask-Tenant"); got != "bodywins" {
		t.Fatalf("echoed tenant %q, want bodywins", got)
	}

	// Hostile ids are refused at the gateway door, before any backend sees
	// the request.
	before := b0.detectCount() + b1.detectCount()
	for _, bad := range []struct{ body, header string }{
		{sceneBody("patrol", 3), strings.Repeat("x", 65)},
		{`{"task":"patrol","tenant":"a\u0001b","scene":{"domain":"driving","seed":3}}`, ""},
	} {
		resp, body = post(bad.body, bad.header)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("hostile tenant got status %d: %s", resp.StatusCode, body)
		}
	}
	if after := b0.detectCount() + b1.detectCount(); after != before {
		t.Fatalf("rejected tenants still reached backends (%d -> %d detects)", before, after)
	}

	want := map[string]uint64{"acme": 1, "bodywins": 1}
	for _, row := range a.g.Snapshot().PerTenant {
		if n, ok := want[row.Tenant]; ok {
			if row.Routed != n {
				t.Errorf("tenant %s routed %d, want %d", row.Tenant, row.Routed, n)
			}
			delete(want, row.Tenant)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing per-tenant rows for %v: %+v", want, a.g.Snapshot().PerTenant)
	}
}
