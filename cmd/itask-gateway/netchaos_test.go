package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/gateway"
)

// netchaos_test.go: the self-healing acceptance tests. A fleet assembled
// purely from announcements is driven through real network faults
// (chaos.NetProxy between gateway and backend) and must keep every healthy
// request whole: a blackholed shard is ejected by lease expiry, its keys
// rehash, and it rejoins — gated on epoch convergence, then slow-started —
// once the network heals and it announces again.

// leasedFleet is one fake backend reachable only through its fault proxy,
// plus the announce loop a real itask-serve would run.
type leasedFleet struct {
	front    *httptest.Server
	app      *app
	backends []*fakeBackend
	proxies  []*chaos.NetProxy
	urls     []string // proxied base URLs — the member identities

	mu     sync.Mutex
	beatOn []bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

func (f *leasedFleet) announceOnce(t *testing.T, i int, epoch uint64) map[string]any {
	t.Helper()
	body := fmt.Sprintf(`{"url":%q,"epoch":%d,"capacity":4}`, f.urls[i], epoch)
	resp, err := http.Post(f.front.URL+"/v1/announce", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("announce %s: %v", f.urls[i], err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("announce %s: status %d decode err %v", f.urls[i], resp.StatusCode, err)
	}
	return out
}

// setBeat pauses or resumes shard i's heartbeat loop — the test's stand-in
// for the shard losing (or regaining) its network path to the gateway.
func (f *leasedFleet) setBeat(i int, on bool) {
	f.mu.Lock()
	f.beatOn[i] = on
	f.mu.Unlock()
}

func (f *leasedFleet) beating(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.beatOn[i]
}

// epochOf reads backend i's current registry sequence (what a real shard
// would report in its heartbeat).
func (f *leasedFleet) epochOf(i int) uint64 {
	f.backends[i].mu.Lock()
	defer f.backends[i].mu.Unlock()
	return f.backends[i].seq
}

func newLeasedFleet(t *testing.T, n int, cfg gateway.Config) *leasedFleet {
	t.Helper()
	f := &leasedFleet{stop: make(chan struct{}), beatOn: make([]bool, n)}
	a, err := newApp(cfg, nil, 5*time.Second) // no static seeds: announce-only fleet
	if err != nil {
		t.Fatal(err)
	}
	f.app = a
	f.front = httptest.NewServer(a.mux())
	for i := 0; i < n; i++ {
		b := newFakeBackend(fmt.Sprintf("shard-%d", i))
		px, err := chaos.NewNetProxy("127.0.0.1:0", strings.TrimPrefix(b.srv.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		f.backends = append(f.backends, b)
		f.proxies = append(f.proxies, px)
		f.urls = append(f.urls, "http://"+px.Addr())
		f.beatOn[i] = true
	}
	t.Cleanup(func() {
		close(f.stop)
		f.wg.Wait()
		f.front.Close()
		a.g.Close()
		for i := range f.backends {
			f.proxies[i].Close()
			f.backends[i].srv.Close()
		}
	})

	// Announce everyone, then heartbeat every shard on a short cadence.
	for i := 0; i < n; i++ {
		f.announceOnce(t, i, f.epochOf(i))
		f.wg.Add(1)
		go func(i int) {
			defer f.wg.Done()
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-f.stop:
					return
				case <-tick.C:
					if !f.beating(i) {
						continue
					}
					body := fmt.Sprintf(`{"url":%q,"epoch":%d}`, f.urls[i], f.epochOf(i))
					resp, err := http.Post(f.front.URL+"/v1/announce", "application/json", strings.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	return f
}

// fleetHealth reads /healthz's backend availability counts.
func (f *leasedFleet) fleetHealth(t *testing.T) (backends, available int) {
	t.Helper()
	resp, err := http.Get(f.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Backends  int `json:"backends"`
		Available int `json:"available"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Backends, h.Available
}

func (f *leasedFleet) metrics(t *testing.T) gateway.Snapshot {
	t.Helper()
	resp, err := http.Get(f.front.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s gateway.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// The tentpole acceptance: an announce-assembled 3-shard fleet under
// sustained traffic takes a network partition on one shard and loses
// nothing — the victim's lease expires and it leaves the ring, every
// healthy request keeps succeeding (bounded by the per-attempt deadline
// while the blackhole is fresh), and after the network heals the victim
// rejoins only once its registry epoch has converged to the fleet's, then
// serves again.
func TestFleetSelfHealsThroughPartition(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:    64,
		MaxRetries:      2,
		FailThreshold:   3,
		EjectFor:        400 * time.Millisecond,
		LeaseTTL:        600 * time.Millisecond,
		SuspectAfter:    200 * time.Millisecond,
		RampWindows:     2,
		SweepInterval:   50 * time.Millisecond,
		AttemptTimeout:  250 * time.Millisecond,
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 50 * time.Millisecond,
	}
	f := newLeasedFleet(t, 3, cfg)
	if n, avail := f.fleetHealth(t); n != 3 || avail != 3 {
		t.Fatalf("fleet after announces: %d/%d available", avail, n)
	}

	// Sustained traffic: every request must succeed for the whole test.
	var reqs, fails atomic.Int64
	trafficStop := make(chan struct{})
	var traffic sync.WaitGroup
	for w := 0; w < 4; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-trafficStop:
					return
				default:
				}
				resp, body := postDetect(t, f.front, sceneBody("patrol", w*10_000+i%50))
				reqs.Add(1)
				if resp.StatusCode != http.StatusOK {
					fails.Add(1)
					t.Errorf("healthy request failed: %d %s", resp.StatusCode, body)
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond) // warm: all shards serving

	// Partition shard 0: its proxy blackholes traffic (accepts, never
	// answers — the nastiest failure) and its heartbeats stop reaching the
	// gateway.
	const victim = 0
	f.setBeat(victim, false)
	f.proxies[victim].SetFault(chaos.NetBlackhole)

	// The lease expires and the victim leaves the ring.
	waitFor(t, 5*time.Second, "victim lease expiry", func() bool {
		_, avail := f.fleetHealth(t)
		return avail == 2 && f.metrics(t).LeaseExpirations >= 1
	})

	// While the fleet runs 2-wide, publish a model reload: the committed
	// epoch moves past the partitioned shard's stale registry.
	resp, err := http.Post(f.front.URL+"/v1/models/reload", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload during partition: %d", resp.StatusCode)
	}
	committed := f.metrics(t).CommittedEpoch
	if committed < 2 {
		t.Fatalf("committed epoch %d after reload, want >= 2", committed)
	}

	// Heal the network. The victim re-announces with its stale epoch: it
	// must be admitted as joining but NOT routable until it converges.
	f.proxies[victim].Heal()
	out := f.announceOnce(t, victim, f.epochOf(victim))
	if out["state"] != "joining" {
		t.Fatalf("stale rejoin state = %v, want joining (committed=%d, victim epoch=%d)",
			out["state"], committed, f.epochOf(victim))
	}
	if _, avail := f.fleetHealth(t); avail != 2 {
		t.Fatal("epoch-stale rejoiner counted as available")
	}

	// The shard catches up (reloads its models) and heartbeats the new
	// epoch: now it converges, ramps, and serves again.
	reloadBackend(t, f.backends[victim])
	out = f.announceOnce(t, victim, f.epochOf(victim))
	if s := out["state"]; s != "warming" && s != "active" {
		t.Fatalf("converged rejoin state = %v, want warming/active", s)
	}
	f.setBeat(victim, true)
	waitFor(t, 5*time.Second, "victim readmission", func() bool {
		_, avail := f.fleetHealth(t)
		return avail == 3
	})
	served := f.backends[victim].detectCount()
	waitFor(t, 5*time.Second, "victim serving again", func() bool {
		return f.backends[victim].detectCount() > served
	})

	close(trafficStop)
	traffic.Wait()
	if fails.Load() != 0 {
		t.Fatalf("%d of %d requests failed across the partition", fails.Load(), reqs.Load())
	}
	snap := f.metrics(t)
	if snap.Failed != 0 {
		t.Fatalf("gateway counted %d failed requests", snap.Failed)
	}
	if snap.Rejoins < 1 {
		t.Fatalf("rejoins = %d, want >= 1", snap.Rejoins)
	}
	t.Logf("partition run: %d requests, retries=%d expirations=%d rejoins=%d committed=%d",
		reqs.Load(), snap.Retries, snap.LeaseExpirations, snap.Rejoins, snap.CommittedEpoch)
}

// reloadBackend bumps a fake backend's registry sequence directly — the
// shard-local half of catching up to a fleet publish it missed.
func reloadBackend(t *testing.T, b *fakeBackend) {
	t.Helper()
	resp, err := http.Post(b.srv.URL+"/v1/models/reload", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// A flapping shard (fails every request, never dies) cannot amplify into a
// retry storm: failover retries are bounded by the token-bucket budget,
// and requests beyond it fail fast with the shard's own error.
func TestFlappingShardBoundedByRetryBudget(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:     64,
		MaxRetries:       1,
		RetryBudgetRate:  1e-9, // effectively no refill within the test
		RetryBudgetBurst: 3,
	}
	flapper := newFakeBackend("flapper")
	healthy := newFakeBackend("healthy")
	flapper.forceStatus(http.StatusServiceUnavailable) // plain 503: down-class
	a, front := newTestApp(t, cfg, flapper, healthy)

	okCount, failCount := 0, 0
	for i := 0; i < 40; i++ {
		resp, _ := postDetect(t, front, sceneBody("patrol", i))
		if resp.StatusCode == http.StatusOK {
			okCount++
		} else {
			failCount++
		}
	}
	snap := a.g.Snapshot()
	if snap.Retries > 3 {
		t.Fatalf("%d failover retries escaped a burst-3 budget", snap.Retries)
	}
	if snap.RetryBudgetExhausted == 0 || failCount == 0 {
		t.Fatalf("budget never exhausted: counter=%d failed=%d", snap.RetryBudgetExhausted, failCount)
	}
	if okCount == 0 {
		t.Fatal("no request succeeded at all — keys never landed on the healthy shard")
	}
	t.Logf("budget run: ok=%d failed=%d retries=%d exhausted=%d", okCount, failCount, snap.Retries, snap.RetryBudgetExhausted)
}

// An overloaded shard's Retry-After header paces the failover: the second
// attempt waits min(Retry-After, RetryBackoffMax) instead of re-landing
// the work immediately.
func TestGatewayFailoverHonorsRetryAfter(t *testing.T) {
	cfg := passiveCfg()
	cfg.FailThreshold = 0 // keep the 429ing shard in rotation
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryBackoffMax = 150 * time.Millisecond
	b1 := newFakeBackend("b1")
	b2 := newFakeBackend("b2")
	_, front := newTestApp(t, cfg, b1, b2)

	// Find this body's owner, then overload it.
	body := sceneBody("patrol", 424242)
	resp, _ := postDetect(t, front, body)
	owner := resp.Header.Get("X-Itask-Shard")
	for _, b := range []*fakeBackend{b1, b2} {
		if b.srv.URL == owner {
			b.forceStatus(http.StatusTooManyRequests) // sends Retry-After: 1
		}
	}

	start := time.Now()
	resp, out := postDetect(t, front, body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover response: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Itask-Shard"); got == owner {
		t.Fatalf("still served by the overloaded owner %s", got)
	}
	if resp.Header.Get("X-Itask-Attempts") != "2" {
		t.Fatalf("attempts = %s, want 2", resp.Header.Get("X-Itask-Attempts"))
	}
	if elapsed < 150*time.Millisecond {
		t.Fatalf("failover took %v, want >= the capped Retry-After (150ms)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("failover took %v: the 1s hint must be capped at 150ms", elapsed)
	}
}

// The announce endpoint's own contract: bad URLs rejected, leases-off
// gateways refuse, graceful leave removes the member exactly once.
func TestAnnounceEndpoint(t *testing.T) {
	cfg := passiveCfg()
	cfg.LeaseTTL = time.Minute
	cfg.RampWindows = 1
	b := newFakeBackend("b")
	a, front := newTestApp(t, cfg, b)

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(front.URL+"/v1/announce", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(out)
	}

	if resp, out := post(`{"url":"not a url"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad url accepted: %d %s", resp.StatusCode, out)
	}
	if resp, out := post(`{"url":"ftp://x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-http scheme accepted: %d %s", resp.StatusCode, out)
	}

	// A live announce joins (committed epoch is 0 → immediate converge).
	shard := newFakeBackend("announced")
	defer shard.srv.Close()
	resp, out := post(fmt.Sprintf(`{"url":%q,"epoch":1,"capacity":2}`, shard.srv.URL))
	if resp.StatusCode != http.StatusOK || !strings.Contains(out, `"active"`) {
		t.Fatalf("announce: %d %s", resp.StatusCode, out)
	}
	if _, avail := healthOf(t, front); avail != 2 {
		t.Fatalf("available = %d after announce, want 2", avail)
	}

	// Graceful leave via DELETE; second leave 404s.
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/announce?url="+shard.srv.URL, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d", dresp.StatusCode)
	}
	if dresp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("double leave: %d, want 404", dresp.StatusCode)
	}
	if a.g.Snapshot().GracefulLeaves != 1 {
		t.Fatal("graceful leave not counted")
	}

	// A leases-off gateway refuses announces outright.
	offApp, offFront := newTestApp(t, passiveCfg(), newFakeBackend("static"))
	_ = offApp
	resp2, err := http.Post(offFront.URL+"/v1/announce", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, shard.srv.URL)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("leases-off announce: %d, want 501", resp2.StatusCode)
	}
}

func healthOf(t *testing.T, front *httptest.Server) (backends, available int) {
	t.Helper()
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Backends  int `json:"backends"`
		Available int `json:"available"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Backends, h.Available
}
