// Command itask-gateway is the distributed serve tier's front door: it
// consistent-hashes detection requests by content across a fleet of
// itask-serve backends, so each frame's result-cache entry lives on exactly
// one shard and the fleet's caches compose instead of overlapping. Routing,
// health, hot-key replication, and epoch propagation are internal/gateway;
// this command is the HTTP shell.
//
// Endpoints:
//
//	POST /v1/detect          route one detection to its content's shard and
//	                         relay the shard's answer verbatim. JSON bodies and
//	                         binary tensor frames (Content-Type
//	                         application/x-itask-tensor, see internal/wire) are
//	                         both accepted; a binary frame's routing digest is
//	                         computed from the raw header and payload bytes —
//	                         no tensor is materialized at the gateway — and the
//	                         body is forwarded verbatim under its original
//	                         content type. The serving
//	                         shard is attributed in X-Itask-Shard (and the
//	                         attempt count in X-Itask-Attempts; hot-replicated
//	                         requests carry X-Itask-Hot: 1). The hot verdict is
//	                         also forwarded on the proxied request, so shards
//	                         pre-promote the digest in their in-process hot
//	                         tier instead of re-detecting virality from their
//	                         1/replicas slice of the traffic.
//	POST /v1/announce        lease-based membership: a shard announces itself
//	                         with {"url","epoch","capacity"} and re-POSTs the
//	                         same body as its heartbeat. A new (or rejoining)
//	                         shard is admitted once its registry epoch has
//	                         converged to the fleet's committed epoch, then
//	                         ramps to full routing weight over the slow-start
//	                         windows. A shard that stops heartbeating for the
//	                         lease TTL expires off the ring automatically.
//	DELETE /v1/announce      graceful leave: ?url=... (or the same JSON body)
//	                         removes the shard from the ring immediately while
//	                         its in-flight requests finish.
//	POST /v1/models/reload   propagate a model reload fleet-wide: the body is
//	                         relayed to every backend's reload endpoint and
//	                         the gateway blocks until every backend's registry
//	                         sequence converges to the fleet maximum, so a
//	                         publish is cluster-wide before the response —
//	                         clients never observe version flapping keyed by
//	                         which shard their frame hashes to.
//	GET  /healthz            200 with fleet counts while at least one backend
//	                         is routable, 503 otherwise
//	GET  /metricsz           gateway snapshot: routing/spill/retry/ejection
//	                         counters, committed epoch, per-node status, and
//	                         per-tenant attribution (per_tenant)
//
// Requests carry an optional tenant identity — the body's "tenant" field or
// the X-Itask-Tenant header, body winning, validated at this door exactly as
// at the shard's (64 bytes, printable). The tenant never affects placement
// (two tenants' identical frames share one shard's cache entry); it is
// forwarded to the shard as X-Itask-Tenant for weighted-fair scheduling and
// budgets there, attributed in the gateway's per-tenant counters, and
// watched by the monopolization guard: a tenant holding more than half the
// fleet's in-flight work is pinned to its ring owners — no hot-replica
// spread, no bounded-load spill — so the elastic capacity stays available
// to the other tenants. The shard's normalized tenant echoes back on the
// response as X-Itask-Tenant.
//
// Requests are keyed the same way the shards key their result caches: an
// image body routes by its rcache content digest, a scene body by its
// (task, domain, seed) identity, and anything else by task, which keeps one
// task's traffic on one shard's batch lanes. Backend verdicts about request
// content (400, 404, 413, 422, 500, 504) relay as-is; 429 and breaker-open
// 503 fail over to a ring successor; connection failures and draining
// backends fail over and count toward ejection.
//
// Failover between attempts is paced: a per-attempt deadline bounds how
// long a blackholed shard can pin a request, retries wait a full-jitter
// exponential backoff (honoring any Retry-After the failed shard sent,
// capped at -retry-backoff-max), and a fleet-wide token-bucket retry budget
// keeps a flapping shard from amplifying into a retry storm.
//
// Usage:
//
//	itask-gateway [-backends http://127.0.0.1:8081,http://127.0.0.1:8082] \
//	              [-addr :8080] [-vnodes 128] [-load-factor 1.25] \
//	              [-hot-threshold 64] [-hot-replicas 2] [-hot-decay 8192] \
//	              [-max-retries 1] [-fail-threshold 3] [-eject-for 2s] \
//	              [-probe-interval 1s] [-probe-timeout 500ms] \
//	              [-propagate-timeout 30s] \
//	              [-lease-ttl 3s] [-suspect-after 1s] [-ramp-windows 4] \
//	              [-attempt-timeout 2s] [-retry-backoff 25ms] \
//	              [-retry-backoff-max 1s] [-retry-budget-rate 10] \
//	              [-retry-budget-burst 20]
//
// -backends is now an optional static seed list: with lease-based
// membership on (-lease-ttl > 0, the default), a fleet can start empty and
// populate itself entirely from shard announcements (itask-serve
// -announce).
//
// Example:
//
//	curl -si localhost:8080/v1/detect -d '{"task":"patrol","scene":{"domain":"driving","seed":7}}' | grep X-Itask-Shard
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"itask/internal/gateway"
	"itask/internal/member"
	"itask/internal/rcache"
	"itask/internal/tensor"
	"itask/internal/wire"
)

// maxBodyBytes mirrors the itask-serve request bound: relaying a body the
// backend would reject at its own door wastes a round trip.
const maxBodyBytes = 4 << 20

func main() {
	def := gateway.DefaultConfig()
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated itask-serve base URLs (optional seed list when leases are on)")
	vnodes := flag.Int("vnodes", def.VirtualNodes, "ring points per backend")
	loadFactor := flag.Float64("load-factor", def.LoadFactor, "bounded-load factor: owners above this multiple of the fleet-average in-flight spill to a successor (0 = off)")
	hotThreshold := flag.Int("hot-threshold", def.HotThreshold, "windowed arrivals past which a digest is replicated (0 = off)")
	hotReplicas := flag.Int("hot-replicas", def.HotReplicas, "shards serving a hot digest")
	hotDecay := flag.Int("hot-decay", def.HotDecay, "hot-detector decay window in arrivals (counts halve every N requests)")
	maxRetries := flag.Int("max-retries", def.MaxRetries, "failover attempts on ring successors")
	failThreshold := flag.Int("fail-threshold", def.FailThreshold, "consecutive down-class failures that eject a backend (0 = off)")
	ejectFor := flag.Duration("eject-for", def.EjectFor, "how long an ejected backend is skipped (a live probe readmits it earlier)")
	probeInterval := flag.Duration("probe-interval", def.ProbeInterval, "active health-probe period (0 = passive only)")
	probeTimeout := flag.Duration("probe-timeout", def.ProbeTimeout, "per-probe deadline")
	propagateTimeout := flag.Duration("propagate-timeout", 30*time.Second, "fleet-wide reload deadline, including the epoch convergence barrier")
	leaseTTL := flag.Duration("lease-ttl", def.LeaseTTL, "membership lease: a shard that stops heartbeating this long expires off the ring (0 = static -backends only)")
	suspectAfter := flag.Duration("suspect-after", def.SuspectAfter, "missed-renewal grace before a member turns suspect (0 = lease-ttl/2)")
	rampWindows := flag.Int("ramp-windows", def.RampWindows, "slow-start span: a joining shard's weight climbs to full over this many renewals")
	attemptTimeout := flag.Duration("attempt-timeout", def.AttemptTimeout, "per-attempt deadline before failing over (0 = request deadline only)")
	retryBackoff := flag.Duration("retry-backoff", def.RetryBackoff, "base of the full-jitter backoff between failover attempts (0 = immediate)")
	retryBackoffMax := flag.Duration("retry-backoff-max", def.RetryBackoffMax, "cap on the failover backoff and any honored Retry-After")
	retryBudgetRate := flag.Float64("retry-budget-rate", def.RetryBudgetRate, "fleet-wide failover budget refill, tokens/sec (0 = unlimited)")
	retryBudgetBurst := flag.Int("retry-budget-burst", def.RetryBudgetBurst, "failover budget bucket depth")
	flag.Parse()

	urls := splitBackends(*backends)
	if len(urls) == 0 && *leaseTTL <= 0 {
		fmt.Fprintln(os.Stderr, "itask-gateway: no members possible: give a -backends seed list or enable announce-based membership with -lease-ttl")
		os.Exit(2)
	}

	cfg := gateway.Config{
		VirtualNodes:     *vnodes,
		LoadFactor:       *loadFactor,
		HotThreshold:     *hotThreshold,
		HotReplicas:      *hotReplicas,
		HotDecay:         *hotDecay,
		MaxRetries:       *maxRetries,
		FailThreshold:    *failThreshold,
		EjectFor:         *ejectFor,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BarrierPoll:      50 * time.Millisecond,
		LeaseTTL:         *leaseTTL,
		SuspectAfter:     *suspectAfter,
		RampWindows:      *rampWindows,
		AttemptTimeout:   *attemptTimeout,
		RetryBackoff:     *retryBackoff,
		RetryBackoffMax:  *retryBackoffMax,
		RetryBudgetRate:  *retryBudgetRate,
		RetryBudgetBurst: *retryBudgetBurst,
	}
	app, err := newApp(cfg, urls, *propagateTimeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itask-gateway: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: app.mux()}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "itask-gateway: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		app.g.Close()
	}()

	fmt.Fprintf(os.Stderr, "itask-gateway: listening on %s, %d seed backends (vnodes=%d load-factor=%g hot=%d/%d retries=%d lease-ttl=%v)\n",
		*addr, len(urls), *vnodes, *loadFactor, *hotThreshold, *hotReplicas, *maxRetries, *leaseTTL)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "itask-gateway: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "itask-gateway: bye")
}

func splitBackends(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

type app struct {
	g                *gateway.Gateway
	hc               *http.Client
	leaseTTL         time.Duration
	propagateTimeout time.Duration
}

func newApp(cfg gateway.Config, urls []string, propagateTimeout time.Duration) (*app, error) {
	g, err := gateway.New(cfg)
	if err != nil {
		return nil, err
	}
	hc := &http.Client{} // per-request deadlines come from the inbound ctx
	for _, u := range urls {
		if err := g.AddNode(&httpNode{base: u, hc: hc}); err != nil {
			g.Close()
			return nil, err
		}
	}
	return &app{g: g, hc: hc, leaseTTL: cfg.LeaseTTL, propagateTimeout: propagateTimeout}, nil
}

func (a *app) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", a.detect)
	mux.HandleFunc("/v1/announce", a.announce)
	mux.HandleFunc("/v1/models/reload", a.reload)
	mux.HandleFunc("/healthz", a.healthz)
	mux.HandleFunc("/metricsz", a.metricsz)
	return mux
}

// announceRequest is a shard's self-registration: its dialable base URL
// (the member identity), its current registry epoch, and a capacity hint.
type announceRequest struct {
	URL      string `json:"url"`
	Epoch    uint64 `json:"epoch"`
	Capacity int    `json:"capacity,omitempty"`
}

// announce handles lease-based membership: POST announces (and, re-POSTed,
// renews) a shard; DELETE is a graceful leave.
func (a *app) announce(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
	case http.MethodDelete:
		u := r.URL.Query().Get("url")
		if u == "" {
			var req announceRequest
			if buf, err := readBody(w, r, 1<<16); err == nil {
				_ = json.Unmarshal(buf.Bytes(), &req)
				buf.Release()
			}
			u = req.URL
		}
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			httpError(w, http.StatusBadRequest, "leave needs the member url (?url= or JSON body)")
			return
		}
		if !a.g.Leave(u) {
			httpError(w, http.StatusNotFound, "unknown member "+u)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"left": u})
		return
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST to announce/renew, DELETE to leave")
		return
	}

	buf, err := readBody(w, r, 1<<16)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unreadable request body")
		return
	}
	var req announceRequest
	uerr := json.Unmarshal(buf.Bytes(), &req)
	buf.Release() // Unmarshal copied everything it kept
	if uerr != nil {
		httpError(w, http.StatusBadRequest, "announce body must be JSON: "+uerr.Error())
		return
	}
	base := strings.TrimSuffix(strings.TrimSpace(req.URL), "/")
	if u, err := url.Parse(base); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, "announce url must be a dialable http(s) base URL")
		return
	}
	e, err := a.g.Announce(&httpNode{base: base, hc: a.hc}, member.Meta{
		Addr:     base,
		Epoch:    req.Epoch,
		Capacity: req.Capacity,
	})
	switch {
	case errors.Is(err, member.ErrNoLeases):
		httpError(w, http.StatusNotImplemented, "lease-based membership disabled; start the gateway with -lease-ttl")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":              e.ID,
		"state":           e.State.String(),
		"weight":          e.Weight,
		"lease_ms":        a.leaseTTL.Milliseconds(),
		"committed_epoch": a.g.CommittedEpoch(),
	})
}

// routeProbe is the loose decode of a detect body used only to derive the
// routing key; full validation is the backend's job — except the tenant id,
// which the gateway validates itself because it becomes an accounting key
// here, before any backend sees it.
type routeProbe struct {
	Task   string `json:"task"`
	Tenant string `json:"tenant"`
	Image  *struct {
		Shape []int     `json:"shape"`
		Data  []float32 `json:"data"`
	} `json:"image"`
	Scene *struct {
		Domain string `json:"domain"`
		Seed   uint64 `json:"seed"`
	} `json:"scene"`
}

// routeKeyFrame derives the routing identity of a binary tensor frame from
// its raw bytes: the header yields task/tenant, and the payload is
// content-hashed in place (rcache.DigestFrame) — the digest equals what the
// shard's result cache will compute from the materialized tensor, without
// this door ever materializing one. Undecodable frames fall back to the
// empty key and let the shard issue the 400, mirroring routeKey's treatment
// of garbage JSON.
func routeKeyFrame(body []byte) gateway.Key {
	fr, err := wire.ParseFrame(body)
	if err != nil {
		return gateway.Key{}
	}
	return gateway.Key{
		Task:      string(fr.Task),
		Tenant:    string(fr.Tenant),
		Digest:    rcache.DigestFrame(fr.Shape[:], fr.Payload),
		HasDigest: true,
	}
}

// routeKey derives the request's routing identity from the raw body. Image
// bodies digest exactly as the shard's result cache will digest them, so a
// frame's gateway shard is the shard whose cache can hold its result. Scene
// bodies are deterministic renders, so (task, domain, seed) is their content
// identity — repeats of a seed land on (and hit in) one shard's cache, and a
// viral seed participates in hot-key replication. Undecodable bodies fall
// back to the task key and let the backend issue the 400.
func routeKey(body []byte) gateway.Key {
	var rp routeProbe
	if err := json.Unmarshal(body, &rp); err != nil {
		return gateway.Key{}
	}
	k := gateway.Key{Task: rp.Task, Tenant: rp.Tenant}
	if img := rp.Image; img != nil && len(img.Shape) == 3 &&
		img.Shape[0] > 0 && img.Shape[1] > 0 && img.Shape[2] > 0 &&
		len(img.Data) == img.Shape[0]*img.Shape[1]*img.Shape[2] {
		t := tensor.FromSlice(img.Data, img.Shape[0], img.Shape[1], img.Shape[2])
		k.Digest, k.HasDigest = rcache.DigestImage(t), true
		return k
	}
	if sc := rp.Scene; sc != nil {
		h := fnv.New64a()
		fmt.Fprintf(h, "scene|%s|%s|%d", rp.Task, sc.Domain, sc.Seed)
		k.Digest, k.HasDigest = h.Sum64(), true
		return k
	}
	return k
}

// maxTenantLen and validateTenant mirror the itask-serve edge: tenant ids
// become accounting keys at the gateway (and scheduler keys at the shard),
// so both doors hold the same line — short, printable, or rejected with 400.
const maxTenantLen = 64

func validateTenant(tenant string) error {
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("tenant id exceeds %d bytes", maxTenantLen)
	}
	for _, b := range []byte(tenant) {
		if b < 0x20 || b == 0x7f {
			return errors.New("tenant id contains control characters")
		}
	}
	return nil
}

func (a *app) detect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	buf, err := readBody(w, r, maxBodyBytes)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, http.StatusBadRequest, "unreadable request body")
		}
		return
	}
	body := buf.Bytes()

	// The tenant rides the body ("tenant" field) or the X-Itask-Tenant
	// header, body winning — the same precedence the shard applies. It is
	// validated here because it keys the gateway's own per-tenant accounting
	// and the monopolization guard. Binary frames carry both identities in
	// the fixed header, so deriving the key never touches the payload except
	// to hash it.
	contentType := r.Header.Get("Content-Type")
	var key gateway.Key
	if strings.HasPrefix(contentType, wire.ContentType) {
		key = routeKeyFrame(body)
	} else {
		key = routeKey(body)
	}
	if key.Tenant == "" {
		key.Tenant = r.Header.Get("X-Itask-Tenant")
	}
	if verr := validateTenant(key.Tenant); verr != nil {
		buf.Release()
		httpError(w, http.StatusBadRequest, verr.Error())
		return
	}

	var relay *backendResponse
	info, err := a.g.Execute(r.Context(), key, func(ctx context.Context, n gateway.Node, hot bool) error {
		br, ferr := n.(*httpNode).forwardDetect(ctx, body, contentType, hot, key.Tenant)
		if ferr == nil {
			relay = br
		} else if br != nil {
			// A classified failure (429/503) still carried a fully-read
			// response body; this attempt's relay is dead, recycle it.
			br.release()
		}
		return ferr
	})
	// The request body buffer can only be recycled when no transport could
	// still be draining it: a clean single-attempt exchange. After a
	// canceled or failed-over attempt, http.Transport's write goroutine may
	// race ahead reading the body, so the buffer is left to the GC instead.
	if err == nil && info.Attempts == 1 {
		buf.Release()
	}
	w.Header().Set("X-Itask-Shard", info.Node)
	w.Header().Set("X-Itask-Attempts", fmt.Sprint(info.Attempts))
	if info.Hot {
		w.Header().Set("X-Itask-Hot", "1")
	}
	if err != nil || relay == nil {
		a.writeRouteError(w, err)
		return
	}
	defer relay.release()
	for _, h := range []string{"Content-Type", "Retry-After", "X-Itask-Degraded", "X-Itask-Tenant"} {
		if v := relay.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if relay.header.Get("Content-Type") == "" {
		// A shard that somehow omitted the header still answered our JSON
		// protocol; don't let the client sniff.
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(relay.status)
	_, _ = w.Write(relay.body)
}

// readBody drains a request body into a pooled buffer bounded by limit,
// pre-sized by the declared Content-Length (chunked or absurd declarations
// start small and grow as real bytes arrive).
func readBody(w http.ResponseWriter, r *http.Request, limit int) (*wire.Buf, error) {
	hint := int(r.ContentLength)
	if hint < 0 || hint > limit {
		hint = 0
	}
	return wire.ReadAll(http.MaxBytesReader(w, r.Body, int64(limit)), hint)
}

// writeRouteError maps a routing failure (every attempt exhausted) onto a
// status the client can act on.
func (a *app) writeRouteError(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		httpError(w, http.StatusBadGateway, "no backend response")
	case errors.Is(err, gateway.ErrNoNodes):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case gateway.Classify(err) == gateway.ClassOverload:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	default:
		httpError(w, http.StatusBadGateway, err.Error())
	}
}

func (a *app) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "unreadable request body")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), a.propagateTimeout)
	defer cancel()
	epoch, err := a.g.Propagate(ctx, gateway.Change{Op: gateway.OpPublish, Payload: body})
	if err != nil {
		code := http.StatusBadGateway
		if errors.Is(err, context.DeadlineExceeded) {
			// The reloads applied but the fleet did not observably converge
			// in time; the committed epoch still names the target.
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, map[string]any{"error": err.Error(), "epoch": epoch})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch})
}

func (a *app) healthz(w http.ResponseWriter, r *http.Request) {
	snap := a.g.Snapshot()
	available := 0
	for _, n := range snap.Nodes {
		// Weight > 0 means the membership table has the node on the ring
		// (expired, left, and epoch-gated joining members sit at 0).
		if n.Weight > 0 && !n.Ejected && !n.Lagging {
			available++
		}
	}
	code := http.StatusOK
	if available == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"backends": len(snap.Nodes), "available": available})
}

func (a *app) metricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.g.Snapshot())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON routes every gateway-originated response through the shared
// pooled encoder, which also pins Content-Type: application/json on all of
// them (relayed shard responses carry the shard's own header).
func writeJSON(w http.ResponseWriter, code int, v any) {
	wire.WriteJSON(w, code, v)
}
