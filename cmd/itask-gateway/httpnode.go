package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"itask/internal/gateway"
	"itask/internal/wire"
)

// httpNode adapts one itask-serve backend (identified by its base URL) to
// the gateway's node interfaces:
//
//	gateway.Node          ID is the base URL — stable, unique, and the same
//	                      on every gateway instance, so a fleet of gateways
//	                      in front of the same backends routes identically.
//	gateway.ProbeNode     GET /healthz; 200 (ok or degraded) is alive,
//	                      anything else — including a refused connection —
//	                      counts toward ejection.
//	gateway.EpochNode     GET /metricsz, reading registry.seq: the backend's
//	                      registry snapshot sequence is its route epoch.
//	gateway.ChangeApplier POST /v1/models/reload. itask-serve has no
//	                      stage/commit surface, so Propagate uses its
//	                      apply-then-epoch-barrier fallback: the reload runs
//	                      on every backend and the gateway blocks until the
//	                      whole fleet's registry sequence converges.
type httpNode struct {
	base string
	hc   *http.Client
}

func (n *httpNode) ID() string { return n.base }

// maxProxyBytes bounds how much of a backend response the gateway buffers:
// the detect response for a dense frame is well under 1 MiB, and a runaway
// body must not balloon the gateway.
const maxProxyBytes = 8 << 20

// backendResponse is a fully-buffered backend answer ready to relay. body
// aliases buf, a pooled buffer the owner must release (once) after the
// relay is written — releasing is always safe because forwardDetect only
// builds a backendResponse after draining the response body completely.
type backendResponse struct {
	status     int
	header     http.Header
	body       []byte
	buf        *wire.Buf
	retryAfter string
}

func (br *backendResponse) release() {
	br.buf.Release()
	br.buf, br.body = nil, nil
}

// forwardDetect relays one raw /v1/detect body to the backend and buffers
// its answer. Outcomes the caller should fail over from are returned as
// classified errors; every other status — including the backend's own 4xx
// and 5xx verdicts about the request content — is a pass-through response
// (retrying a content-fault on a successor would just spread it). hot is the
// gateway's fleet-wide hot-digest verdict, forwarded as X-Itask-Hot so the
// shard pre-promotes the digest in its in-process hot tier: the gateway sees
// the digest's whole arrival stream, while each of the replicas it spreads a
// hot digest across sees only a fraction of it. tenant is the request's
// accounting identity, forwarded as X-Itask-Tenant so a client that
// identified itself only by header to the gateway is still scheduled and
// budgeted under its own tenant on the shard (a "tenant" field in the body
// wins over the header at the shard, so forwarding is harmless then).
func (n *httpNode) forwardDetect(ctx context.Context, body []byte, contentType string, hot bool, tenant string) (*backendResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return nil, &gateway.NodeError{Class: gateway.ClassRequest, Err: err}
	}
	// The body is forwarded verbatim, so its declared encoding must travel
	// with it: a binary tensor frame relabeled as JSON would 400 at the
	// shard's door.
	if contentType == "" {
		contentType = "application/json"
	}
	req.Header.Set("Content-Type", contentType)
	if hot {
		req.Header.Set("X-Itask-Hot", "1")
	}
	if tenant != "" {
		req.Header.Set("X-Itask-Tenant", tenant)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		// ctx expiry is the request's deadline, not the node's death.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &gateway.NodeError{Class: gateway.ClassNodeDown, Err: err}
	}
	defer resp.Body.Close()
	hint := int(resp.ContentLength)
	if hint < 0 || hint > maxProxyBytes {
		hint = 0
	}
	buf, err := wire.ReadAll(io.LimitReader(resp.Body, maxProxyBytes), hint)
	if err != nil {
		return nil, &gateway.NodeError{Class: gateway.ClassNodeDown, Err: fmt.Errorf("reading %s response: %w", n.base, err)}
	}
	br := &backendResponse{status: resp.StatusCode, header: resp.Header, body: buf.Bytes(), buf: buf, retryAfter: resp.Header.Get("Retry-After")}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		// Admission backpressure: this shard's queue is full, a successor
		// may have room. The advertised horizon paces the failover.
		return br, &gateway.NodeError{
			Class:      gateway.ClassOverload,
			RetryAfter: parseRetryAfter(br.retryAfter),
			Err:        fmt.Errorf("%s: backend backpressure (429)", n.base),
		}
	case http.StatusServiceUnavailable:
		if br.retryAfter != "" {
			// An open breaker advertises a retry horizon — the node is up
			// but this lane is cooling; spill without penalizing it.
			return br, &gateway.NodeError{
				Class:      gateway.ClassOverload,
				RetryAfter: parseRetryAfter(br.retryAfter),
				Err:        fmt.Errorf("%s: breaker open (503)", n.base),
			}
		}
		// Plain 503 is draining or dead-to-serving: fail over and count it.
		return br, &gateway.NodeError{Class: gateway.ClassNodeDown, Err: fmt.Errorf("%s: backend unavailable (503)", n.base)}
	default:
		return br, nil
	}
}

// parseRetryAfter reads a Retry-After header in its delta-seconds form
// (what itask-serve emits). Unparseable values — including the HTTP-date
// form — yield 0: no hint, the jittered backoff alone paces the retry.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func (n *httpNode) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: healthz %d", n.base, resp.StatusCode)
	}
	return nil
}

func (n *httpNode) RouteEpoch(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/metricsz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: metricsz %d", n.base, resp.StatusCode)
	}
	var m struct {
		Registry *struct {
			Seq uint64 `json:"seq"`
		} `json:"registry"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProxyBytes)).Decode(&m); err != nil {
		return 0, fmt.Errorf("%s: decoding metricsz: %w", n.base, err)
	}
	if m.Registry == nil {
		return 0, fmt.Errorf("%s: backend exposes no registry epoch", n.base)
	}
	return m.Registry.Seq, nil
}

// ApplyChange drives a fleet-propagated model reload. Only OpPublish is
// meaningful over the itask-serve surface (its reload endpoint both
// publishes new versions and re-verifies existing ones); the payload is the
// raw /v1/models/reload body to relay.
func (n *httpNode) ApplyChange(ctx context.Context, c gateway.Change) (uint64, error) {
	if c.Op != gateway.OpPublish {
		return 0, fmt.Errorf("%s: op %q not supported over HTTP (reload covers publish only)", n.base, c.Op)
	}
	body, ok := c.Payload.([]byte)
	if !ok {
		return 0, errors.New("reload payload must be the raw request body")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/v1/models/reload", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return 0, err
	}
	// The error detail is only worth keeping on failure, and even then only
	// as part of the formatted error (which copies it) — the pooled read
	// buffer goes straight back either way.
	mbuf, _ := wire.ReadAll(io.LimitReader(resp.Body, 4096), 4096)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg []byte
		if mbuf != nil {
			msg = bytes.TrimSpace(mbuf.Bytes())
		}
		err := fmt.Errorf("%s: reload %d: %s", n.base, resp.StatusCode, msg)
		mbuf.Release()
		return 0, err
	}
	mbuf.Release()
	return n.RouteEpoch(ctx)
}
