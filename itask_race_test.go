package itask

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"itask/internal/registry"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// The facade promises lock-free reads concurrent with any mutation — not
// just safety after setup, which is all the old taskMu comment guaranteed.
// Detect and DetectBatch run against concurrent DefineTask, few-shot
// AdaptStudent, student republishes, and explicit registry rollbacks; run
// under -race, any torn read of the task table or a routing snapshot fails
// the test.
func TestDetectRacesWithMutation(t *testing.T) {
	opts := DefaultOptions()
	rng := tensor.NewRNG(23)
	dir := t.TempDir()
	teacherPath := filepath.Join(dir, "teacher.ckpt")
	if err := vit.New(opts.TeacherCfg, rng.Split()).SaveFile(teacherPath); err != nil {
		t.Fatal(err)
	}
	studentPath := filepath.Join(dir, "student.ckpt")
	if err := vit.New(opts.StudentCfg, rng.Split()).SaveFile(studentPath); err != nil {
		t.Fatal(err)
	}

	p := New(opts)
	if err := p.LoadGeneralist(teacherPath); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineTask("patrol", "watch the perimeter for vehicles and people"); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadStudent("patrol", studentPath); err != nil {
		t.Fatal(err)
	}
	// Pre-publish an untrained few-shot base so AdaptStudent skips the
	// expensive base distillation and the race window stays tight.
	base := vit.New(opts.StudentCfg, rng.Split())
	bsum, err := base.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Registry().Publish(registry.Artifact{
		Name: FewShotBaseArtifact, Kind: registry.FewShotBase,
		Bytes: int64(base.NumParams() * 4), Checksum: bsum, Payload: base,
	}); err != nil {
		t.Fatal(err)
	}

	img := tensor.New(3, opts.TeacherCfg.ImageSize, opts.TeacherCfg.ImageSize)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readerErr := make(chan error, 1)
	reportErr := func(err error) {
		select {
		case readerErr <- err:
		default:
		}
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r%2 == 0 {
					if _, _, err := p.Detect("patrol", img); err != nil {
						reportErr(fmt.Errorf("Detect: %w", err))
					}
				} else {
					if _, _, err := p.DetectBatch("patrol", []*tensor.Tensor{img, img}); err != nil {
						reportErr(fmt.Errorf("DetectBatch: %w", err))
					}
				}
			}
		}(r)
	}

	var mutators sync.WaitGroup
	mutators.Add(3)
	go func() { // new tasks appear mid-traffic, then serve immediately
		defer mutators.Done()
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("aux-%d", i)
			if err := p.DefineTask(name, "inspect the area for defects and tools"); err != nil {
				reportErr(err)
				return
			}
			if _, _, err := p.Detect(name, img); err != nil {
				reportErr(fmt.Errorf("Detect on fresh task %s: %w", name, err))
			}
		}
	}()
	go func() { // few-shot adaptation republishes the patrol student
		defer mutators.Done()
		if err := p.AdaptStudent("patrol", Driving, 1); err != nil {
			reportErr(err)
		}
	}()
	go func() { // checkpoint republish + explicit rollback churn
		defer mutators.Done()
		for i := 0; i < 3; i++ {
			if err := p.LoadStudent("patrol", studentPath); err != nil {
				reportErr(err)
				return
			}
			if _, err := p.RollbackModel("patrol-student"); err != nil {
				reportErr(err)
				return
			}
		}
	}()

	mutators.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// The churn is visible in the lifecycle counters, and patrol still serves.
	stats := p.RegistryStats()
	if stats.Publishes < 6 || stats.Rollbacks < 3 {
		t.Errorf("registry stats = %+v, want >= 6 publishes and >= 3 rollbacks", stats)
	}
	if _, _, err := p.Detect("patrol", img); err != nil {
		t.Fatalf("patrol no longer serves after churn: %v", err)
	}
}
