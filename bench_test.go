// Benchmark harness: one benchmark per reconstructed table/figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// BenchmarkE* runs its experiment once on the shared quick-scale environment,
// prints the table the paper would show, and reports the headline number as
// a benchmark metric. Training happens once and is shared; re-run with
// `go test -bench=E -benchtime=1x` for a single clean pass.
//
// The Benchmark{Float,Quantized}Inference / BenchmarkLLM / BenchmarkHWSim
// functions at the bottom are conventional per-op microbenchmarks.
package itask_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"itask/internal/dataset"
	"itask/internal/experiments"
	"itask/internal/hwsim"
	"itask/internal/llm"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
	benchSink    int
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "[bench] training quick-scale environment (teacher, generalist, 4 students)...")
		benchEnv, benchEnvErr = experiments.BuildEnv(experiments.QuickScale())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// spin keeps the b.N loop honest after the (cached) experiment ran.
func spin(b *testing.B, v int) {
	for i := 0; i < b.N; i++ {
		benchSink += v
	}
}

var (
	e1Once sync.Once
	e1Rows []experiments.E1Row
)

// BenchmarkE1_ConfigAccuracy regenerates Table 1 (claim C1: task-specific
// beats quantized generalist in-task by ~15%).
func BenchmarkE1_ConfigAccuracy(b *testing.B) {
	env := getBenchEnv(b)
	e1Once.Do(func() {
		e1Rows = experiments.E1ConfigAccuracy(env)
		experiments.FprintE1(os.Stdout, e1Rows)
	})
	var gap float64
	for _, r := range e1Rows {
		gap += r.GapPct
	}
	b.ReportMetric(gap/float64(len(e1Rows)), "gap_pct")
	spin(b, len(e1Rows))
}

var (
	e2Once sync.Once
	e2Rows []experiments.E2Row
)

// BenchmarkE2_MultiTask regenerates Table 2 (claim C2: the quantized
// generalist is robust across tasks; students collapse off-task).
func BenchmarkE2_MultiTask(b *testing.B) {
	env := getBenchEnv(b)
	e2Once.Do(func() {
		e2Rows = experiments.E2MultiTask(env)
		experiments.FprintE2(os.Stdout, env, e2Rows)
	})
	gen := e2Rows[len(e2Rows)-1]
	b.ReportMetric(100*gen.WorstAcc, "generalist_worst_acc_pct")
	spin(b, len(e2Rows))
}

var (
	e3Once sync.Once
	e3Res  experiments.E3Result
)

// BenchmarkE3_HardwareComparison regenerates Table 3 (claims C3/C4:
// 3.5x speedup, 40% energy reduction vs the GPU baseline).
func BenchmarkE3_HardwareComparison(b *testing.B) {
	e3Once.Do(func() {
		e3Res = experiments.E3Hardware()
		experiments.FprintE3(os.Stdout, e3Res)
		experiments.FprintE3Batch(os.Stdout, experiments.E3GPUBatchSweep())
	})
	b.ReportMetric(e3Res.SpeedupVsGPU, "speedup_vs_gpu")
	b.ReportMetric(100*e3Res.EnergyReductionVsGPU, "energy_reduction_pct")
	spin(b, len(e3Res.Rows))
}

var (
	e4Once sync.Once
	e4Rows []experiments.E4Row
	e4Err  error
)

// BenchmarkE4_FewShot regenerates Figure 1 (claim C5: KG-guided few-shot
// adaptation beats plain fine-tuning at every sample budget).
func BenchmarkE4_FewShot(b *testing.B) {
	env := getBenchEnv(b)
	e4Once.Do(func() {
		e4Rows, e4Err = experiments.E4FewShot(env, "harvest")
		if e4Err == nil {
			experiments.FprintE4(os.Stdout, "harvest", e4Rows)
		}
	})
	if e4Err != nil {
		b.Fatal(e4Err)
	}
	var delta float64
	for _, r := range e4Rows {
		delta += r.AccKG - r.AccNoKG
	}
	b.ReportMetric(100*delta/float64(len(e4Rows)), "mean_kg_gain_pct")
	spin(b, len(e4Rows))
}

var (
	e5Once sync.Once
	e5Rows []experiments.E5Row
)

// BenchmarkE5_ArraySweep regenerates Figure 2 (accelerator design space).
func BenchmarkE5_ArraySweep(b *testing.B) {
	e5Once.Do(func() {
		e5Rows = experiments.E5ArraySweep()
		experiments.FprintE5(os.Stdout, e5Rows)
	})
	best := e5Rows[0]
	for _, r := range e5Rows {
		if r.EDP < best.EDP {
			best = r
		}
	}
	b.ReportMetric(best.LatencyUS, "best_edp_latency_us")
	spin(b, len(e5Rows))
}

var (
	e6Once sync.Once
	e6Rows []experiments.E6Row
)

// BenchmarkE6_EnergyBreakdown regenerates Figure 3 (energy by component).
func BenchmarkE6_EnergyBreakdown(b *testing.B) {
	e6Once.Do(func() {
		e6Rows = experiments.E6EnergyBreakdown()
		experiments.FprintE6(os.Stdout, e6Rows)
	})
	spin(b, len(e6Rows))
}

var (
	e7Once sync.Once
	e7Rows []experiments.E7Row
	e7Err  error
)

// BenchmarkE7_BitWidth regenerates Figure 4 (quantization sensitivity).
func BenchmarkE7_BitWidth(b *testing.B) {
	env := getBenchEnv(b)
	e7Once.Do(func() {
		e7Rows, e7Err = experiments.E7BitWidth(env)
		if e7Err == nil {
			experiments.FprintE7(os.Stdout, e7Rows)
		}
	})
	if e7Err != nil {
		b.Fatal(e7Err)
	}
	b.ReportMetric(100*e7Rows[0].MeanAcc, "int8_perchannel_acc_pct")
	spin(b, len(e7Rows))
}

var (
	e8Once  sync.Once
	e8KG    []experiments.E8KGRow
	e8Dist  []experiments.E8DistillRow
	e8Error error
)

// BenchmarkE8_Ablation regenerates the ablation studies: knowledge-graph
// attribute families and distillation loss terms.
func BenchmarkE8_Ablation(b *testing.B) {
	env := getBenchEnv(b)
	e8Once.Do(func() {
		e8KG, e8Error = experiments.E8KGAblation(env, "patrol")
		if e8Error != nil {
			return
		}
		experiments.FprintE8KG(os.Stdout, "patrol", e8KG)
		e8Dist, e8Error = experiments.E8DistillAblation(env, "inspect")
		if e8Error != nil {
			return
		}
		experiments.FprintE8Distill(os.Stdout, "inspect", e8Dist)
	})
	if e8Error != nil {
		b.Fatal(e8Error)
	}
	b.ReportMetric(e8KG[0].Separation, "full_kg_separation")
	spin(b, len(e8KG)+len(e8Dist))
}

var (
	e9Once sync.Once
	e9Rows []experiments.E9Row
	e9Err  error
)

// BenchmarkE9_SampleEfficiency regenerates the sample-efficiency study:
// the abstract's motivating claim that conventional models need vast
// datasets while iTask adapts from limited samples.
func BenchmarkE9_SampleEfficiency(b *testing.B) {
	env := getBenchEnv(b)
	e9Once.Do(func() {
		e9Rows, e9Err = experiments.E9SampleEfficiency(env, "triage", env.Scale.E9Samples)
		if e9Err == nil {
			experiments.FprintE9(os.Stdout, "triage", e9Rows)
		}
	})
	if e9Err != nil {
		b.Fatal(e9Err)
	}
	first := e9Rows[0]
	b.ReportMetric(100*(first.ITaskAcc-first.CNNAcc), "lowdata_itask_vs_cnn_pct")
	spin(b, len(e9Rows))
}

var (
	e10Once sync.Once
	e10Rows []experiments.E10Row
	e10Err  error
)

// BenchmarkE10_NoiseRobustness regenerates the sensor-degradation study:
// float vs int8 vs int4 generalists under scaled pixel noise.
func BenchmarkE10_NoiseRobustness(b *testing.B) {
	env := getBenchEnv(b)
	e10Once.Do(func() {
		e10Rows, e10Err = experiments.E10NoiseRobustness(env, []float64{1, 2, 3, 4})
		if e10Err == nil {
			experiments.FprintE10(os.Stdout, e10Rows)
		}
	})
	if e10Err != nil {
		b.Fatal(e10Err)
	}
	b.ReportMetric(100*e10Rows[0].Int8Acc, "int8_nominal_acc_pct")
	spin(b, len(e10Rows))
}

var (
	e11Once sync.Once
	e11Rows []experiments.E11Row
	e11Err  error
)

// BenchmarkE11_DeploymentVariants regenerates the deployment ablation:
// dynamic vs static activation quantization × exact vs approximate vector
// unit, on the quantized generalist.
func BenchmarkE11_DeploymentVariants(b *testing.B) {
	env := getBenchEnv(b)
	e11Once.Do(func() {
		e11Rows, e11Err = experiments.E11DeploymentVariants(env)
		if e11Err == nil {
			experiments.FprintE11(os.Stdout, e11Rows)
		}
	})
	if e11Err != nil {
		b.Fatal(e11Err)
	}
	worst := 0.0
	for _, r := range e11Rows {
		if r.DeltaVsDeployed < worst {
			worst = r.DeltaVsDeployed
		}
	}
	b.ReportMetric(100*worst, "worst_variant_delta_pct")
	spin(b, len(e11Rows))
}

var (
	e12Once sync.Once
	e12Rows []experiments.E12Row
	e12Err  error
)

// BenchmarkE12_Streaming regenerates the real-time streaming study:
// P95 sojourn and deadline-miss rate vs frame arrival rate for three
// deployments (students/roomy, generalist-only, students/tight-memory).
func BenchmarkE12_Streaming(b *testing.B) {
	e12Once.Do(func() {
		e12Rows, e12Err = experiments.E12Streaming(33000, []float64{500, 1000, 2000, 4000, 6000})
		if e12Err == nil {
			experiments.FprintE12(os.Stdout, 33000, e12Rows)
		}
	})
	if e12Err != nil {
		b.Fatal(e12Err)
	}
	last := e12Rows[len(e12Rows)-1]
	b.ReportMetric(last.StudentsP95US, "students_p95_us_at_max_fps")
	spin(b, len(e12Rows))
}

var (
	e13Once sync.Once
	e13Rows []experiments.E13Row
	e13Err  error
)

// BenchmarkE13_FaultInjection regenerates the weight-SRAM soft-error study
// on the deployed int8 generalist.
func BenchmarkE13_FaultInjection(b *testing.B) {
	env := getBenchEnv(b)
	e13Once.Do(func() {
		e13Rows, e13Err = experiments.E13FaultInjection(env, []float64{1e-5, 1e-4, 1e-3, 1e-2})
		if e13Err == nil {
			experiments.FprintE13(os.Stdout, e13Rows)
		}
	})
	if e13Err != nil {
		b.Fatal(e13Err)
	}
	b.ReportMetric(100*e13Rows[len(e13Rows)-1].DeltaVsClean, "delta_at_1e2_pct")
	spin(b, len(e13Rows))
}

// --- conventional per-op microbenchmarks ---

// BenchmarkFloatInference measures single-image float detection latency on
// the laptop-scale student (the task-specific configuration's software
// reference).
func BenchmarkFloatInference(b *testing.B) {
	cfg := experiments.StudentModelCfg()
	m := vit.New(cfg, tensor.NewRNG(1))
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	patches := vit.Patchify(cfg, []*tensor.Tensor{img})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats := m.Forward(patches, false)
		out := m.DetHead(feats, false)
		benchSink += out.Size()
	}
}

// BenchmarkQuantizedInference measures single-image int8 detection latency
// (software emulation of the accelerator's arithmetic).
func BenchmarkQuantizedInference(b *testing.B) {
	cfg := experiments.StudentModelCfg()
	m := vit.New(cfg, tensor.NewRNG(1))
	qm, err := quant.FromViT(m, quant.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	patches := vit.Patchify(cfg, []*tensor.Tensor{img})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats := qm.Forward(patches)
		out := qm.DetHead(feats)
		benchSink += out.Size()
	}
}

// BenchmarkLLMGenerate measures mission-description-to-knowledge-graph
// generation.
func BenchmarkLLMGenerate(b *testing.B) {
	gen := llm.New(llm.DefaultOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := gen.Generate("patrol", "Detect cars, trucks, pedestrians and cyclists, ignore vegetation")
		if err != nil {
			b.Fatal(err)
		}
		benchSink += g.NumEdges()
	}
}

// BenchmarkHWSimModel measures one full accelerator model simulation.
func BenchmarkHWSimModel(b *testing.B) {
	accel := hwsim.DefaultAccel()
	model := experiments.HWTeacherCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := hwsim.SimulateAccel(accel, model)
		benchSink += len(r.Layers)
	}
}

// BenchmarkSceneGeneration measures synthetic scene rendering.
func BenchmarkSceneGeneration(b *testing.B) {
	rng := tensor.NewRNG(1)
	dom := scene.GetDomain(scene.Driving)
	cfg := scene.DefaultGenConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := scene.Generate(dom, cfg, rng)
		benchSink += len(sc.Objects)
	}
}

// BenchmarkDatasetPack measures batch packing (patchify + target encode).
func BenchmarkDatasetPack(b *testing.B) {
	rng := tensor.NewRNG(1)
	task, _ := dataset.TaskByName("patrol")
	set := dataset.Build(task, 8, scene.DefaultGenConfig(), rng)
	cfg := experiments.StudentModelCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := dataset.Pack(cfg, set.Examples)
		benchSink += batch.Patches.Size()
	}
}

// pacedBackend is a serve.Backend paced by the simulated accelerator: each
// DetectBatch sleeps the total accelerator latency of executing the batch
// (per-image latency at that batch size × batch), so serving throughput
// reflects the hardware model's weight-stationary batching amortization
// rather than this host's core count.
type pacedBackend struct {
	accel hwsim.AccelConfig
	cfg   vit.Config
}

func (p *pacedBackend) Route(task string) (string, error) { return "generalist", nil }

func (p *pacedBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	rep := hwsim.SimulateAccelBatch(p.accel, p.cfg, len(imgs))
	time.Sleep(time.Duration(rep.LatencyUS*float64(len(imgs))) * time.Microsecond)
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = struct{}{}
	}
	return out, "generalist", nil
}

// serveRow is one operating point of the serving throughput sweep.
type serveRow struct {
	maxBatch  int
	rps       float64
	meanBatch float64
	p95US     float64
}

// runServeLoad drives `requests` concurrent detections through a server
// with the given batch cap and returns the measured throughput.
func runServeLoad(maxBatch int) (serveRow, error) {
	be := &pacedBackend{accel: hwsim.DefaultAccel(), cfg: experiments.StudentModelCfg()}
	cfg := serve.Config{
		Workers:       2,
		MaxBatch:      maxBatch,
		BatchDelay:    time.Millisecond,
		QueueCap:      512,
		LatencyWindow: 4096,
	}
	if maxBatch == 1 {
		cfg.BatchDelay = 0 // nothing to wait for
	}
	s, err := serve.New(be, cfg)
	if err != nil {
		return serveRow{}, err
	}
	const (
		clients = 32
		perConn = 12
	)
	img := tensor.New(1)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				if _, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: img}); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return serveRow{}, err
	}
	select {
	case err := <-errCh:
		return serveRow{}, err
	default:
	}
	snap := s.Snapshot()
	return serveRow{
		maxBatch:  maxBatch,
		rps:       float64(clients*perConn) / elapsed.Seconds(),
		meanBatch: snap.MeanBatch,
		p95US:     snap.LatencyP95US,
	}, nil
}

var (
	serveBenchOnce sync.Once
	serveBenchRows []serveRow
	serveBenchErr  error
)

// BenchmarkServeMicroBatching measures the serving layer's throughput with
// micro-batching disabled (batch cap 1: one accelerator pass per request)
// versus enabled (cap 8), on the same two-worker pool under the same
// 32-client closed-loop load. The batched configuration must win: lanes
// coalesce concurrent requests and the accelerator's weight-stationary
// reuse makes a batch of 8 far cheaper than 8 single passes.
func BenchmarkServeMicroBatching(b *testing.B) {
	serveBenchOnce.Do(func() {
		for _, cap := range []int{1, 8} {
			row, err := runServeLoad(cap)
			if err != nil {
				serveBenchErr = err
				return
			}
			serveBenchRows = append(serveBenchRows, row)
		}
	})
	if serveBenchErr != nil {
		b.Fatal(serveBenchErr)
	}
	fmt.Printf("\n%-10s %12s %12s %12s\n", "max-batch", "rps", "mean-batch", "p95(us)")
	for _, r := range serveBenchRows {
		fmt.Printf("%-10d %12.0f %12.2f %12.0f\n", r.maxBatch, r.rps, r.meanBatch, r.p95US)
	}
	speedup := serveBenchRows[1].rps / serveBenchRows[0].rps
	fmt.Printf("micro-batching throughput gain: %.2fx\n\n", speedup)
	if speedup <= 1 {
		b.Fatalf("batched serving (%.0f rps) not faster than unbatched (%.0f rps)",
			serveBenchRows[1].rps, serveBenchRows[0].rps)
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(serveBenchRows[1].rps, "rps")
	spin(b, int(speedup))
}
