#!/usr/bin/env bash
# gateway_smoke.sh — end-to-end smoke of the distributed serve tier as real
# processes: train a tiny generalist once, start two itask-serve backends on
# the shared checkpoint directory, put itask-gateway in front, and verify
# over plain HTTP that
#
#   1. detection answers arrive with shard attribution (X-Itask-Shard),
#   2. the same content always routes to the same shard,
#   3. distinct content engages both shards,
#   4. the gateway's own health/metrics surfaces report the fleet.
#
# The in-process cluster tests (internal/gateway) cover the hard properties
# — kill-mid-storm, publish barriers, hot replication; this script proves
# the binaries compose over a real network surface.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "gateway-smoke: $*"; }

say "building binaries"
go build -o "$workdir/itask-train" ./cmd/itask-train
go build -o "$workdir/itask-serve" ./cmd/itask-serve
go build -o "$workdir/itask-gateway" ./cmd/itask-gateway

say "training a tiny generalist checkpoint"
"$workdir/itask-train" -out "$workdir/models" -samples 8 -epochs 2 -seed 1 >"$workdir/train.log" 2>&1

wait_healthy() { # url name
    for _ in $(seq 1 100); do
        if curl -sf -o /dev/null "$1"; then
            return 0
        fi
        sleep 0.2
    done
    say "FAIL: $2 never became healthy at $1"
    cat "$workdir"/*.log || true
    exit 1
}

say "starting two itask-serve backends"
"$workdir/itask-serve" -addr 127.0.0.1:18081 -models "$workdir/models" >"$workdir/serve1.log" 2>&1 &
pids+=($!)
"$workdir/itask-serve" -addr 127.0.0.1:18082 -models "$workdir/models" >"$workdir/serve2.log" 2>&1 &
pids+=($!)
wait_healthy http://127.0.0.1:18081/healthz backend-1
wait_healthy http://127.0.0.1:18082/healthz backend-2

say "starting itask-gateway"
"$workdir/itask-gateway" -addr 127.0.0.1:18080 \
    -backends http://127.0.0.1:18081,http://127.0.0.1:18082 \
    -probe-interval 250ms >"$workdir/gateway.log" 2>&1 &
pids+=($!)
wait_healthy http://127.0.0.1:18080/healthz gateway

say "driving detections through the gateway"
declare -A shard_of
distinct_shards=()
for seed in $(seq 0 23); do
    body="{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$seed}}"
    headers="$workdir/headers.$seed"
    status=$(curl -s -D "$headers" -o "$workdir/resp.$seed" -w '%{http_code}' \
        -X POST http://127.0.0.1:18080/v1/detect -d "$body")
    if [ "$status" != 200 ]; then
        say "FAIL: seed $seed got HTTP $status"
        cat "$workdir/resp.$seed"
        exit 1
    fi
    shard=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-shard"{print $2}')
    if [ -z "$shard" ]; then
        say "FAIL: seed $seed response carries no X-Itask-Shard attribution"
        exit 1
    fi
    grep -q '"detections"' "$workdir/resp.$seed" || {
        say "FAIL: seed $seed body is not a detect response"
        cat "$workdir/resp.$seed"
        exit 1
    }
    shard_of[$seed]="$shard"
    if [[ ! " ${distinct_shards[*]:-} " == *" $shard "* ]]; then
        distinct_shards+=("$shard")
    fi
done

say "checking routing stability (same content, same shard)"
for seed in 0 7 19; do
    headers="$workdir/recheck.$seed"
    curl -sf -D "$headers" -o /dev/null \
        -X POST http://127.0.0.1:18080/v1/detect \
        -d "{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$seed}}"
    again=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-shard"{print $2}')
    if [ "$again" != "${shard_of[$seed]}" ]; then
        say "FAIL: seed $seed flapped from ${shard_of[$seed]} to $again"
        exit 1
    fi
done

if [ "${#distinct_shards[@]}" -lt 2 ]; then
    say "FAIL: 24 distinct scenes all landed on one shard (${distinct_shards[*]})"
    exit 1
fi
say "fleet engaged: ${#distinct_shards[@]} shards served traffic"

say "checking gateway metrics"
metrics="$(curl -sf http://127.0.0.1:18080/metricsz)"
echo "$metrics" | grep -q '"routed":' || { say "FAIL: metricsz missing routed counter"; exit 1; }
routed=$(echo "$metrics" | sed -n 's/.*"routed":\([0-9]*\).*/\1/p')
if [ -z "$routed" ] || [ "$routed" -lt 24 ]; then
    say "FAIL: gateway routed=$routed, want >= 24"
    exit 1
fi

say "OK: $routed requests routed across ${#distinct_shards[@]} shards with stable attribution"
