#!/usr/bin/env bash
# gateway_smoke.sh — end-to-end smoke of the distributed serve tier as real
# processes: train a tiny generalist once, start an itask-gateway with NO
# static backend list, have two itask-serve shards join it via lease-based
# announce, and verify over plain HTTP that
#
#   1. the fleet assembles from announces alone (no -backends),
#   2. detection answers arrive with shard attribution (X-Itask-Shard),
#   3. the same content always routes to the same shard,
#   4. distinct content engages both shards,
#   5. SIGKILLing a shard mid-traffic loses no requests: failover absorbs
#      the deaths until the lease expires the member off the ring,
#   6. the restarted shard rejoins and serves again,
#   7. SIGTERM deregisters gracefully (graceful_leaves, not an expiry).
#
# The in-process cluster tests (internal/gateway, cmd/itask-gateway) cover
# the hard properties — partitions via the chaos NetProxy, epoch gating,
# retry budgets; this script proves the binaries compose over a real
# network surface.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "gateway-smoke: $*"; }

say "building binaries"
go build -o "$workdir/itask-train" ./cmd/itask-train
go build -o "$workdir/itask-serve" ./cmd/itask-serve
go build -o "$workdir/itask-gateway" ./cmd/itask-gateway

say "training a tiny generalist checkpoint"
"$workdir/itask-train" -out "$workdir/models" -samples 8 -epochs 2 -seed 1 >"$workdir/train.log" 2>&1

GW=http://127.0.0.1:18080

wait_healthy() { # url name
    for _ in $(seq 1 100); do
        if curl -sf -o /dev/null "$1"; then
            return 0
        fi
        sleep 0.2
    done
    say "FAIL: $2 never became healthy at $1"
    cat "$workdir"/*.log || true
    exit 1
}

metric() { # name — top-level integer field from the gateway snapshot (0 if absent)
    # The snapshot is one JSON line and per-tenant/node rows repeat field
    # names, so split on commas and take the FIRST occurrence (top-level
    # counters precede the nodes and per_tenant arrays).
    local v
    v=$(curl -sf "$GW/metricsz" | tr ',' '\n' | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p" | sed -n 1p)
    echo "${v:-0}"
}

wait_available() { # n what
    for _ in $(seq 1 100); do
        avail=$(curl -s "$GW/healthz" | sed -n 's/.*"available":\([0-9]*\).*/\1/p')
        if [ "${avail:-0}" = "$1" ]; then
            return 0
        fi
        sleep 0.2
    done
    say "FAIL: fleet never reached available=$1 ($2); last healthz: $(curl -s "$GW/healthz")"
    cat "$workdir"/*.log || true
    exit 1
}

start_shard() { # port logname
    "$workdir/itask-serve" -addr "127.0.0.1:$1" -models "$workdir/models" \
        -announce "$GW" -heartbeat 300ms >"$workdir/$2.log" 2>&1 &
    echo $!
}

say "starting itask-gateway with no static backends (announce-only fleet)"
"$workdir/itask-gateway" -addr 127.0.0.1:18080 \
    -lease-ttl 2s -probe-interval 250ms \
    -retry-backoff 5ms -retry-backoff-max 250ms >"$workdir/gateway.log" 2>&1 &
pids+=($!)
wait_healthy "$GW/metricsz" gateway

say "starting two itask-serve shards announcing to the gateway"
shard1_pid=$(start_shard 18081 serve1)
pids+=("$shard1_pid")
shard2_pid=$(start_shard 18082 serve2)
pids+=("$shard2_pid")
wait_available 2 "initial announce"
say "fleet assembled from announces: available=2"

say "driving detections through the gateway"
declare -A shard_of
distinct_shards=()
for seed in $(seq 0 23); do
    body="{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$seed}}"
    headers="$workdir/headers.$seed"
    status=$(curl -s -D "$headers" -o "$workdir/resp.$seed" -w '%{http_code}' \
        -X POST "$GW/v1/detect" -d "$body")
    if [ "$status" != 200 ]; then
        say "FAIL: seed $seed got HTTP $status"
        cat "$workdir/resp.$seed"
        exit 1
    fi
    shard=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-shard"{print $2}')
    if [ -z "$shard" ]; then
        say "FAIL: seed $seed response carries no X-Itask-Shard attribution"
        exit 1
    fi
    grep -q '"detections"' "$workdir/resp.$seed" || {
        say "FAIL: seed $seed body is not a detect response"
        cat "$workdir/resp.$seed"
        exit 1
    }
    shard_of[$seed]="$shard"
    if [[ ! " ${distinct_shards[*]:-} " == *" $shard "* ]]; then
        distinct_shards+=("$shard")
    fi
done

say "checking routing stability (same content, same shard)"
for seed in 0 7 19; do
    headers="$workdir/recheck.$seed"
    curl -sf -D "$headers" -o /dev/null \
        -X POST "$GW/v1/detect" \
        -d "{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$seed}}"
    again=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-shard"{print $2}')
    if [ "$again" != "${shard_of[$seed]}" ]; then
        say "FAIL: seed $seed flapped from ${shard_of[$seed]} to $again"
        exit 1
    fi
done

if [ "${#distinct_shards[@]}" -lt 2 ]; then
    say "FAIL: 24 distinct scenes all landed on one shard (${distinct_shards[*]})"
    exit 1
fi
say "fleet engaged: ${#distinct_shards[@]} shards served traffic"

say "posting binary tensor frames (must route exactly like their JSON twins)"
# mkframe writes a JSON image body and its application/x-itask-tensor twin:
# same task, same 3×32×32 payload bit for bit. The gateway digests the frame
# header+payload without building a tensor, so both encodings must carry the
# same digest, land on the same shard, and stay there across repeats.
shard_of_twin() { # headers-file
    tr -d '\r' <"$1" | awk -F': ' 'tolower($1)=="x-itask-shard"{print $2}'
}
for seed in 41 42; do
    go run ./scripts/mkframe -size 32 -seed "$seed" \
        -json "$workdir/twin.$seed.json" -bin "$workdir/twin.$seed.bin"
    headers="$workdir/twin.$seed.json.headers"
    st=$(curl -s -D "$headers" -o "$workdir/twin.$seed.json.resp" -w '%{http_code}' \
        -X POST "$GW/v1/detect" -H 'Content-Type: application/json' \
        --data-binary @"$workdir/twin.$seed.json")
    [ "$st" = 200 ] || { say "FAIL: seed $seed JSON twin got HTTP $st"; cat "$workdir/twin.$seed.json.resp"; exit 1; }
    json_shard=$(shard_of_twin "$headers")
    for rep in 1 2; do
        headers="$workdir/twin.$seed.bin.$rep.headers"
        st=$(curl -s -D "$headers" -o "$workdir/twin.$seed.bin.$rep.resp" -w '%{http_code}' \
            -X POST "$GW/v1/detect" -H 'Content-Type: application/x-itask-tensor' \
            --data-binary @"$workdir/twin.$seed.bin")
        [ "$st" = 200 ] || { say "FAIL: seed $seed binary twin rep $rep got HTTP $st"; cat "$workdir/twin.$seed.bin.$rep.resp"; exit 1; }
        bin_shard=$(shard_of_twin "$headers")
        if [ -z "$bin_shard" ] || [ "$bin_shard" != "$json_shard" ]; then
            say "FAIL: seed $seed binary twin routed to '$bin_shard', JSON twin to '$json_shard'"
            exit 1
        fi
        grep -q '"detections"' "$workdir/twin.$seed.bin.$rep.resp" || {
            say "FAIL: seed $seed binary twin body is not a detect response"
            cat "$workdir/twin.$seed.bin.$rep.resp"
            exit 1
        }
    done
done
say "binary ingress verified: frames route with their JSON twins, attribution stable"

say "driving two tenants through the gateway (header and body identity)"
# tenant-a identifies itself by header, tenant-b by body field; both must be
# echoed back normalized, attributed in the gateway's per-tenant counters,
# and forwarded to the shards so their schedulers account them too.
headers="$workdir/tenant-a.headers"
curl -sf -D "$headers" -o /dev/null -X POST "$GW/v1/detect" \
    -H 'X-Itask-Tenant: tenant-a' \
    -d '{"task":"patrol","scene":{"domain":"driving","seed":31}}'
echo_a=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-tenant"{print $2}')
if [ "$echo_a" != "tenant-a" ]; then
    say "FAIL: header tenant echoed as '$echo_a', want tenant-a"
    exit 1
fi
headers="$workdir/tenant-b.headers"
curl -sf -D "$headers" -o /dev/null -X POST "$GW/v1/detect" \
    -d '{"task":"patrol","tenant":"tenant-b","scene":{"domain":"driving","seed":32}}'
echo_b=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-itask-tenant"{print $2}')
if [ "$echo_b" != "tenant-b" ]; then
    say "FAIL: body tenant echoed as '$echo_b', want tenant-b"
    exit 1
fi
gw_tenants="$(curl -sf "$GW/metricsz")"
shard_tenants="$(curl -sf http://127.0.0.1:18081/metricsz http://127.0.0.1:18082/metricsz)"
for tenant in tenant-a tenant-b; do
    echo "$gw_tenants" | grep -q "\"tenant\":\"$tenant\"" || {
        say "FAIL: gateway per_tenant has no row for $tenant"
        echo "$gw_tenants"
        exit 1
    }
    # Content routing decides which shard served each tenant; the tenant
    # must show up in at least one shard's own per-tenant accounting.
    echo "$shard_tenants" | grep -q "\"tenant\":\"$tenant\"" || {
        say "FAIL: no shard accounts for $tenant in its /metricsz"
        echo "$shard_tenants"
        exit 1
    }
done
# Hostile tenant ids bounce at the gateway door.
st=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$GW/v1/detect" \
    -H "X-Itask-Tenant: $(printf 'x%.0s' $(seq 1 65))" \
    -d '{"task":"patrol","scene":{"domain":"driving","seed":33}}')
[ "$st" = 400 ] || { say "FAIL: oversized tenant id got HTTP $st, want 400"; exit 1; }
say "tenants attributed end to end: gateway and shard per_tenant rows present"

say "SIGKILLing shard2 mid-traffic (failover must hide it, lease must expire it)"
: >"$workdir/traffic.fails"
(
    # Continuous traffic across the kill and the lease expiry. Every request
    # must succeed: before the expiry, failover retries absorb attempts that
    # land on the corpse; after it, the ring no longer contains it.
    for i in $(seq 0 79); do
        st=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$GW/v1/detect" \
            -d "{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$((i % 24))}}")
        [ "$st" = 200 ] || echo "request $i: HTTP $st" >>"$workdir/traffic.fails"
        sleep 0.05
    done
) &
traffic_pid=$!
sleep 0.3
kill -9 "$shard2_pid"
wait_available 1 "lease expiry of the killed shard"
wait "$traffic_pid"
if [ -s "$workdir/traffic.fails" ]; then
    say "FAIL: requests failed across the shard kill:"
    cat "$workdir/traffic.fails"
    exit 1
fi
expirations=$(metric lease_expirations)
if [ "$expirations" -lt 1 ]; then
    say "FAIL: lease_expirations=$expirations after SIGKILL, want >= 1"
    exit 1
fi
say "kill absorbed: 80/80 requests OK, lease_expirations=$expirations"

say "restarting shard2 (must rejoin and serve)"
shard2_pid=$(start_shard 18082 serve2-rejoin)
pids+=("$shard2_pid")
wait_available 2 "rejoin of the restarted shard"
rejoins=$(metric rejoins)
if [ "$rejoins" -lt 1 ]; then
    say "FAIL: rejoins=$rejoins after restart, want >= 1"
    exit 1
fi
for seed in $(seq 0 23); do
    st=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$GW/v1/detect" \
        -d "{\"task\":\"patrol\",\"scene\":{\"domain\":\"driving\",\"seed\":$seed}}")
    [ "$st" = 200 ] || { say "FAIL: post-rejoin seed $seed got HTTP $st"; exit 1; }
done
say "rejoin converged: rejoins=$rejoins, traffic flows on both shards"

say "SIGTERMing shard1 (must deregister gracefully, not expire)"
kill -TERM "$shard1_pid"
wait_available 1 "graceful leave of shard1"
leaves=$(metric graceful_leaves)
if [ "$leaves" -lt 1 ]; then
    say "FAIL: graceful_leaves=$leaves after SIGTERM, want >= 1"
    exit 1
fi
st=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$GW/v1/detect" \
    -d '{"task":"patrol","scene":{"domain":"driving","seed":3}}')
[ "$st" = 200 ] || { say "FAIL: post-leave detect got HTTP $st"; exit 1; }

say "checking gateway metrics"
metrics="$(curl -sf "$GW/metricsz")"
echo "$metrics" | grep -q '"routed":' || { say "FAIL: metricsz missing routed counter"; exit 1; }
routed=$(metric routed)
granted=$(metric leases_granted)
if [ "$routed" -lt 128 ]; then
    say "FAIL: gateway routed=$routed, want >= 128"
    exit 1
fi
if [ "$granted" -lt 3 ]; then
    say "FAIL: leases_granted=$granted, want >= 3 (two joins + one rejoin)"
    exit 1
fi
failed=$(metric failed)
if [ "$failed" -gt 0 ]; then
    say "FAIL: gateway reports failed=$failed routed requests"
    exit 1
fi

say "OK: $routed requests routed, leases=$granted expirations=$expirations rejoins=$rejoins leaves=$leaves, zero failures"
