// mkframe emits twin /v1/detect bodies — a JSON image request and the
// equivalent application/x-itask-tensor binary frame — for shell-driven
// smoke tests. curl can post arbitrary bytes but can't build them, so the
// smoke script generates the pair here and asserts both encodings route and
// digest identically through a real gateway and shards.
//
//	go run ./scripts/mkframe -size 32 -seed 7 -task patrol -json body.json -bin body.bin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"itask/internal/wire"
)

func main() {
	var (
		size     = flag.Int("size", 32, "image side length (frame is 3×size×size)")
		seed     = flag.Int64("seed", 1, "deterministic payload seed")
		task     = flag.String("task", "patrol", "task name")
		tenant   = flag.String("tenant", "", "tenant id (optional)")
		jsonPath = flag.String("json", "", "write the JSON body here")
		binPath  = flag.String("bin", "", "write the binary frame here")
	)
	flag.Parse()
	if *jsonPath == "" && *binPath == "" {
		fmt.Fprintln(os.Stderr, "mkframe: nothing to do (pass -json and/or -bin)")
		os.Exit(2)
	}

	r := rand.New(rand.NewSource(*seed))
	data := make([]float32, 3**size**size)
	for i := range data {
		data[i] = r.Float32()
	}

	if *jsonPath != "" {
		req := map[string]any{
			"task":  *task,
			"image": map[string]any{"shape": []int{3, *size, *size}, "data": data},
		}
		if *tenant != "" {
			req["tenant"] = *tenant
		}
		body, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, body, 0o644); err != nil {
			fatal(err)
		}
	}
	if *binPath != "" {
		frame := wire.AppendFrame(nil, *task, *tenant, 0, [3]int{3, *size, *size}, data)
		if err := os.WriteFile(*binPath, frame, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkframe:", err)
	os.Exit(1)
}
