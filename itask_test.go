package itask

import (
	"sync"
	"testing"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/scene"
	"itask/internal/tensor"
)

// fastOptions shrinks training so the integration tests run in seconds.
func fastOptions() Options {
	o := DefaultOptions()
	o.TrainSamplesPerTask = 40
	o.TrainCfg.Epochs = 14
	o.DistillSamples = 64
	o.DistillCfg.Train.Epochs = 14
	return o
}

// sharedPipe builds one trained pipeline reused by the integration tests
// (training is the expensive part; the tests only read).
var (
	sharedPipeOnce sync.Once
	sharedPipe     *Pipeline
	sharedPipeErr  error
)

func trainedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	sharedPipeOnce.Do(func() {
		p := New(fastOptions())
		if err := p.TrainGeneralist(nil); err != nil {
			sharedPipeErr = err
			return
		}
		if err := p.DefineTask("patrol", "Detect cars, trucks, pedestrians, cyclists and cones on the road"); err != nil {
			sharedPipeErr = err
			return
		}
		if err := p.DistillStudent("patrol", scene.Driving); err != nil {
			sharedPipeErr = err
			return
		}
		sharedPipe = p
	})
	if sharedPipeErr != nil {
		t.Fatal(sharedPipeErr)
	}
	return sharedPipe
}

func TestPipelineLifecycleErrors(t *testing.T) {
	p := New(fastOptions())
	if _, _, err := p.Detect("x", tensor.New(3, 32, 32)); err == nil {
		t.Error("detect before task definition should fail")
	}
	if err := p.DefineTask("", "detect cars"); err == nil {
		t.Error("empty task name should fail")
	}
	if err := p.DefineTask("bad", "lorem ipsum dolor"); err == nil {
		t.Error("unintelligible mission should fail")
	}
	if err := p.DefineTask("t", "detect cars"); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineTask("t", "detect cars"); err == nil {
		t.Error("duplicate task should fail")
	}
	if err := p.DistillStudent("t", scene.Driving); err == nil {
		t.Error("distill before generalist should fail")
	}
	if _, _, err := p.Detect("t", tensor.New(3, 32, 32)); err == nil {
		t.Error("detect before generalist training should fail")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p := trainedPipeline(t)

	// Graph and priors exist and favour driving classes.
	priors, err := p.Priors("patrol")
	if err != nil {
		t.Fatal(err)
	}
	if priors[scene.Car] < 0.5 {
		t.Errorf("car prior = %v", priors[scene.Car])
	}
	g, err := p.Graph("patrol")
	if err != nil || g.NumNodes() == 0 {
		t.Fatalf("graph missing: %v", err)
	}

	// Detection on a driving scene via the task-specific student.
	sc := scene.Generate(scene.GetDomain(scene.Driving), scene.DefaultGenConfig(), tensor.NewRNG(99))
	dets, info, err := p.Detect("patrol", sc.Image)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "task-specific" {
		t.Errorf("expected student to serve patrol, got %s (%s)", info.Name, info.Kind)
	}
	if info.LatencyUS <= 0 || info.EnergyUJ <= 0 {
		t.Errorf("hardware cost missing: %+v", info)
	}
	for _, d := range dets {
		if d.Relevance < fastOptions().PriorThreshold {
			t.Errorf("irrelevant class %s leaked through prior filter", d.Class)
		}
		if d.Class == "" || d.Score <= 0 {
			t.Errorf("malformed detection %+v", d)
		}
	}

	// An undefined-but-described task is served by the generalist.
	if err := p.DefineTask("triage", "Locate lesions, instruments and vials"); err != nil {
		t.Fatal(err)
	}
	med := scene.Generate(scene.GetDomain(scene.Medical), scene.DefaultGenConfig(), tensor.NewRNG(7))
	_, info2, err := p.Detect("triage", med.Image)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Kind != "generalist" {
		t.Errorf("triage should fall back to generalist, got %s", info2.Kind)
	}
}

func TestPipelineDetectionQuality(t *testing.T) {
	p := trainedPipeline(t)
	task, _ := dataset.TaskByName("patrol")
	val := dataset.Build(task, 20, scene.DefaultGenConfig(), tensor.NewRNG(123))
	th := eval.DefaultThresholds()
	// Wrap the pipeline as an eval.DetectFunc.
	df := func(img *tensor.Tensor) []geom.Scored {
		dets, _, err := p.Detect("patrol", img)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]geom.Scored, len(dets))
		for i, d := range dets {
			out[i] = geom.Scored{Box: d.Box, Class: d.ClassID, Score: d.Score}
		}
		return out
	}
	summary := eval.Run(df, val, dataset.ClassInts(task.Classes), th)
	if summary.Accuracy < 0.2 {
		t.Errorf("end-to-end patrol accuracy %v too low", summary.Accuracy)
	}
}

func TestSchedulerStatsExposed(t *testing.T) {
	p := trainedPipeline(t)
	sc := scene.Generate(scene.GetDomain(scene.Driving), scene.DefaultGenConfig(), tensor.NewRNG(5))
	if _, _, err := p.Detect("patrol", sc.Image); err != nil {
		t.Fatal(err)
	}
	st := p.SchedulerStats()
	if st.Hits+st.Misses == 0 {
		t.Error("scheduler stats should record activity")
	}
}

func TestLoadGeneralistAndStudentFromCheckpoint(t *testing.T) {
	src := trainedPipeline(t)
	dir := t.TempDir()
	if err := src.Teacher().SaveFile(dir + "/teacher.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := src.Student("patrol").SaveFile(dir + "/student.ckpt"); err != nil {
		t.Fatal(err)
	}

	p := New(fastOptions())
	if err := p.LoadGeneralist(dir + "/teacher.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadGeneralist(dir + "/teacher.ckpt"); err == nil {
		t.Error("double load should fail")
	}
	if err := p.DefineTask("patrol", "Detect cars, trucks, pedestrians, cyclists and cones"); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadStudent("patrol", dir+"/student.ckpt"); err != nil {
		t.Fatal(err)
	}
	sc := scene.Generate(scene.GetDomain(scene.Driving), scene.DefaultGenConfig(), tensor.NewRNG(9))
	_, info, err := p.Detect("patrol", sc.Image)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "task-specific" {
		t.Errorf("loaded student should serve, got %s", info.Kind)
	}
	// Error paths.
	if err := p.LoadStudent("nope", dir+"/student.ckpt"); err == nil {
		t.Error("undefined task should fail")
	}
	// Re-loading a student is a hot swap: it publishes the next version of
	// the task's artifact and routes it atomically.
	if err := p.LoadStudent("patrol", dir+"/student.ckpt"); err != nil {
		t.Errorf("student reload should publish a new version: %v", err)
	}
	if _, info, err := p.Detect("patrol", sc.Image); err != nil {
		t.Fatal(err)
	} else if id, perr := registry.ParseID(info.Artifact); perr != nil || id.Version != 2 {
		t.Errorf("after reload: served %q, want version 2", info.Artifact)
	}
	fresh := New(fastOptions())
	if err := fresh.LoadGeneralist(dir + "/missing.ckpt"); err == nil {
		t.Error("missing checkpoint should fail")
	}
}

func TestAdaptStudentFewShot(t *testing.T) {
	p := trainedPipeline(t)
	if err := p.DefineTask("harvest", "Find ripe fruit and unripe fruit"); err != nil {
		t.Fatal(err)
	}
	if err := p.AdaptStudent("harvest", scene.Orchard, 4); err != nil {
		t.Fatal(err)
	}
	sc := scene.Generate(scene.GetDomain(scene.Orchard), scene.DefaultGenConfig(), tensor.NewRNG(31))
	_, info, err := p.Detect("harvest", sc.Image)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "task-specific" {
		t.Errorf("few-shot student should serve harvest, got %s", info.Kind)
	}
	// Re-adapting a task is a hot swap: it publishes the next student
	// version and routes it atomically.
	if err := p.AdaptStudent("harvest", scene.Orchard, 4); err != nil {
		t.Errorf("second adapt should publish a new version: %v", err)
	}
	if _, info2, err := p.Detect("harvest", sc.Image); err != nil {
		t.Fatal(err)
	} else if id, perr := registry.ParseID(info2.Artifact); perr != nil || id.Version != 2 {
		t.Errorf("after re-adapt: served %q, want version 2", info2.Artifact)
	}
	if err := p.AdaptStudent("undefined", scene.Orchard, 4); err == nil {
		t.Error("undefined task should fail")
	}
	if err := p.DefineTask("inspect2", "Inspect for gears and bolts"); err != nil {
		t.Fatal(err)
	}
	if err := p.AdaptStudent("inspect2", scene.Industrial, 0); err == nil {
		t.Error("zero shots should fail")
	}
}

func TestHardwareComparisonShape(t *testing.T) {
	p := New(fastOptions())
	c := p.HardwareComparison()
	if c.SpeedupVsGPU <= 1 {
		t.Errorf("accelerator should beat GPU: %v", c.SpeedupVsGPU)
	}
	if c.EnergyReductionVsGPU <= 0 {
		t.Errorf("accelerator should save energy: %v", c.EnergyReductionVsGPU)
	}
}
