// Package itask is a pure-Go implementation of iTask, the task-oriented
// object detection framework for resource-constrained environments
// (Jeong et al., DAC 2025).
//
// iTask turns a natural-language mission description into an abstract
// knowledge graph of task attributes (via a simulated LLM), conditions a
// detector on that graph so objects are identified by high-level
// characteristics rather than per-class training data, and serves inference
// through one of two configurations:
//
//   - a distilled, task-specific vision transformer (highest in-task
//     accuracy), and
//   - a quantized multi-task generalist (robust across missions).
//
// A cycle-level model of the iTask hardware acceleration circuit
// (internal/hwsim) reports the latency and energy of each configuration
// against embedded GPU and CPU baselines.
//
// # Quick start
//
//	pipe := itask.New(itask.DefaultOptions())
//	if err := pipe.TrainGeneralist(nil); err != nil { ... }
//	if err := pipe.DefineTask("patrol", "Detect cars and pedestrians, ignore vegetation"); err != nil { ... }
//	dets, info, err := pipe.Detect("patrol", img)
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// system inventory and the experiment index.
package itask
