// Registry benchmarks: the measurements recorded in BENCH_registry.json.
// They size the two costs the versioned-registry refactor trades: what a
// writer pays to publish a new model version (build-then-swap of the routing
// snapshot), and what the Detect path pays per routing read — the lock-free
// atomic snapshot load vs the RWMutex lookup the old taskMu design used,
// serially and under reader contention.
//
// Regenerate the JSON with:
//
//	go test -run=NONE -bench='BenchmarkRegistrySwap' -benchtime=1s .
package itask_test

import (
	"sync"
	"testing"

	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/tensor"
)

// benchArtifact is a routable artifact shaped like a published student.
func benchArtifact(name, task string) registry.Artifact {
	return registry.Artifact{
		Name: name, Kind: registry.TaskSpecific, Task: task,
		Bytes: 1 << 20, LatencyUS: 120, Checksum: "cafebabe00112233",
		Detect: func(img *tensor.Tensor) []geom.Scored { return nil },
	}
}

// benchRegistry returns a registry mirroring a deployed pipeline: one
// generalist and five task students.
func benchRegistry(b *testing.B) *registry.Registry {
	b.Helper()
	reg := registry.New()
	gen := benchArtifact("generalist-q8", "")
	gen.Kind, gen.Task = registry.Generalist, ""
	if _, err := reg.Publish(gen); err != nil {
		b.Fatal(err)
	}
	for _, task := range []string{"patrol", "triage", "inspect", "harvest", "survey"} {
		if _, err := reg.Publish(benchArtifact(task+"-student", task)); err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

// lockedModels replicates the pre-registry design this PR removed: one
// RWMutex guarding a mutable model table, RLock-ed on every Detect.
type lockedModels struct {
	mu     sync.RWMutex
	models map[string]*registry.Artifact
}

func (l *lockedModels) resolve(name string) (*registry.Artifact, bool) {
	l.mu.RLock()
	m, ok := l.models[name]
	l.mu.RUnlock()
	return m, ok
}

func BenchmarkRegistrySwap(b *testing.B) {
	b.Run("publish", func(b *testing.B) {
		// Publish cost includes rebuilding the routing snapshot, which grows
		// with the retained version history; restarting the registry every
		// 512 versions keeps the measurement at a realistic series depth.
		reg := benchRegistry(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%512 == 0 && i > 0 {
				b.StopTimer()
				reg = benchRegistry(b)
				b.StartTimer()
			}
			if _, err := reg.Publish(benchArtifact("patrol-student", "patrol")); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("resolve-snapshot", func(b *testing.B) {
		reg := benchRegistry(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, ok := reg.Snapshot().Resolve("patrol-student")
			if !ok {
				b.Fatal("unresolved")
			}
			benchSink += int(m.Bytes)
		}
	})

	b.Run("resolve-rwmutex", func(b *testing.B) {
		l := &lockedModels{models: map[string]*registry.Artifact{}}
		for _, a := range benchRegistry(b).Snapshot().Artifacts() {
			l.models[a.Name] = a
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, ok := l.resolve("patrol-student")
			if !ok {
				b.Fatal("unresolved")
			}
			benchSink += int(m.Bytes)
		}
	})

	b.Run("resolve-snapshot-parallel", func(b *testing.B) {
		reg := benchRegistry(b)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			n := 0
			for pb.Next() {
				m, ok := reg.Snapshot().Resolve("patrol-student")
				if !ok {
					b.Fatal("unresolved")
				}
				n += int(m.Bytes)
			}
			sinkMu.Lock()
			benchSink += n
			sinkMu.Unlock()
		})
	})

	b.Run("resolve-rwmutex-parallel", func(b *testing.B) {
		l := &lockedModels{models: map[string]*registry.Artifact{}}
		for _, a := range benchRegistry(b).Snapshot().Artifacts() {
			l.models[a.Name] = a
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			n := 0
			for pb.Next() {
				m, ok := l.resolve("patrol-student")
				if !ok {
					b.Fatal("unresolved")
				}
				n += int(m.Bytes)
			}
			sinkMu.Lock()
			benchSink += n
			sinkMu.Unlock()
		})
	})
}

var sinkMu sync.Mutex
