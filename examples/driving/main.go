// Driving: the autonomous-driving scenario from the paper's introduction.
//
// A patrol mission is compiled to a knowledge graph, a task-specific student
// is distilled for it, and both configurations (task-specific vs quantized
// generalist) are evaluated on held-out driving scenes — the per-task slice
// of experiment E1.
//
// Run with: go run ./examples/driving
package main

import (
	"fmt"
	"log"

	"itask"
	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/metrics"
	"itask/internal/scene"
	"itask/internal/tensor"
)

func main() {
	pipe := itask.New(itask.DefaultOptions())
	fmt.Println("training generalist...")
	if err := pipe.TrainGeneralist(nil); err != nil {
		log.Fatal(err)
	}
	mission := "Detect cars, trucks, pedestrians, cyclists and cones on the road"
	if err := pipe.DefineTask("patrol", mission); err != nil {
		log.Fatal(err)
	}
	fmt.Println("distilling task-specific student for the patrol mission...")
	if err := pipe.DistillStudent("patrol", scene.Driving); err != nil {
		log.Fatal(err)
	}

	// Evaluate the pipeline on held-out driving scenes.
	task, _ := dataset.TaskByName("patrol")
	val := dataset.Build(task, 40, scene.DefaultGenConfig(), tensor.NewRNG(777))
	classes := dataset.ClassInts(task.Classes)
	th := eval.DefaultThresholds()

	asFunc := func(taskName string) eval.DetectFunc {
		return func(img *tensor.Tensor) []geom.Scored {
			dets, _, err := pipe.Detect(taskName, img)
			if err != nil {
				log.Fatal(err)
			}
			out := make([]geom.Scored, len(dets))
			for i, d := range dets {
				out[i] = geom.Scored{Box: d.Box, Class: d.ClassID, Score: d.Score}
			}
			return out
		}
	}

	// Task-specific config serves "patrol" (student registered).
	student := eval.Run(asFunc("patrol"), val, classes, th)
	// The generalist serves a second task definition with no student.
	if err := pipe.DefineTask("patrol-generalist", mission); err != nil {
		log.Fatal(err)
	}
	generalist := eval.Run(asFunc("patrol-generalist"), val, classes, th)

	fmt.Println("\npatrol mission on 40 held-out driving scenes:")
	report("task-specific student", student)
	report("quantized generalist ", generalist)
	fmt.Printf("\ntask-specific advantage: %+.1f%% accuracy (paper claim C1: ~+15%%)\n",
		100*(student.Accuracy-generalist.Accuracy))

	// Hardware view of the two configurations.
	_, sInfo, _ := pipe.Detect("patrol", val.Examples[0].Image)
	_, gInfo, _ := pipe.Detect("patrol-generalist", val.Examples[0].Image)
	fmt.Printf("\nsimulated edge cost per frame:\n")
	fmt.Printf("  %-22s %8.0f us  %8.0f uJ\n", sInfo.Name, sInfo.LatencyUS, sInfo.EnergyUJ)
	fmt.Printf("  %-22s %8.0f us  %8.0f uJ\n", gInfo.Name, gInfo.LatencyUS, gInfo.EnergyUJ)
}

func report(name string, s metrics.Summary) {
	fmt.Printf("  %s  acc %5.1f%%  precision %5.1f%%  mAP %.3f\n",
		name, 100*s.Accuracy, 100*s.Precision, s.MAP)
}
