// Multitask-edge: the situational-adaptability scenario.
//
// An edge device with a tight RAM budget serves a stream of mission requests
// across all four domains. The scheduler picks the task-specific student
// when one is registered and falls back to the quantized generalist
// otherwise, LRU-evicting models under the memory budget. The run prints the
// request log and the cache statistics.
//
// Run with: go run ./examples/multitask-edge
package main

import (
	"fmt"
	"log"

	"itask"
	"itask/internal/scene"
	"itask/internal/tensor"
)

func main() {
	opts := itask.DefaultOptions()
	// A deliberately tight budget: the generalist plus roughly one student.
	opts.MemoryBudgetBytes = 256 << 10
	pipe := itask.New(opts)

	fmt.Println("training generalist...")
	if err := pipe.TrainGeneralist(nil); err != nil {
		log.Fatal(err)
	}

	// Missions: two get dedicated students, two are served by the
	// generalist (covering both sides of the dual-configuration design).
	missions := []struct {
		name, text string
		domain     scene.DomainID
		student    bool
	}{
		{"patrol", "Detect cars, trucks, pedestrians, cyclists and cones", scene.Driving, true},
		{"triage", "Locate lesions, instruments and vials", scene.Medical, true},
		{"inspect", "Inspect for gears, bolts and cracks", scene.Industrial, false},
		{"harvest", "Find ripe fruit and unripe fruit", scene.Orchard, false},
	}
	for _, m := range missions {
		if err := pipe.DefineTask(m.name, m.text); err != nil {
			log.Fatal(err)
		}
		if m.student {
			fmt.Printf("distilling student for %s...\n", m.name)
			if err := pipe.DistillStudent(m.name, m.domain); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A day in the life: interleaved mission requests.
	sequence := []string{
		"patrol", "patrol", "patrol", "triage", "patrol",
		"inspect", "inspect", "harvest", "triage", "patrol",
		"harvest", "inspect", "patrol", "triage", "patrol",
	}
	rng := tensor.NewRNG(99)
	fmt.Printf("\n%-4s %-10s %-24s %-14s %s\n", "#", "mission", "served by", "config", "detections")
	for i, taskName := range sequence {
		var dom scene.DomainID
		for _, m := range missions {
			if m.name == taskName {
				dom = m.domain
			}
		}
		sc := scene.Generate(scene.GetDomain(dom), scene.DefaultGenConfig(), rng)
		dets, info, err := pipe.Detect(taskName, sc.Image)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10s %-24s %-14s %d\n", i+1, taskName, info.Name, info.Kind, len(dets))
	}

	st := pipe.SchedulerStats()
	fmt.Printf("\nmodel cache under %d KiB budget: %d hits, %d misses, %d evictions, %.0f KiB loaded\n",
		opts.MemoryBudgetBytes>>10, st.Hits, st.Misses, st.Evictions, float64(st.BytesLoaded)/1024)
}
