// Patrol-video: streaming detection + tracking on a synthetic driving video.
//
// The pipeline's task-specific student detects per frame, a SORT-lite
// tracker turns detections into stable identities, and the run reports
// tracking quality (recall, ID switches) plus the simulated real-time
// margin on the accelerator — the low-latency edge scenario the paper's
// hardware circuit exists for.
//
// Run with: go run ./examples/patrol-video
package main

import (
	"fmt"
	"log"
	"time"

	"itask"
	"itask/internal/geom"
	"itask/internal/metrics"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/track"
)

func main() {
	opts := itask.DefaultOptions()
	// The streaming demo deserves a better-trained student than the
	// quick defaults.
	opts.TrainSamplesPerTask = 64
	opts.TrainCfg.Epochs = 16
	opts.DistillSamples = 96
	opts.DistillCfg.Train.Epochs = 16
	pipe := itask.New(opts)
	fmt.Println("training generalist and distilling patrol student...")
	if err := pipe.TrainGeneralist(nil); err != nil {
		log.Fatal(err)
	}
	if err := pipe.DefineTask("patrol",
		"Detect cars, trucks, pedestrians, cyclists and cones on the road"); err != nil {
		log.Fatal(err)
	}
	if err := pipe.DistillStudent("patrol", scene.Driving); err != nil {
		log.Fatal(err)
	}

	vcfg := scene.DefaultVideoConfig()
	vcfg.Frames = 60
	vcfg.Gen.MinObjects, vcfg.Gen.MaxObjects = 2, 3
	frames := scene.GenerateVideo(scene.GetDomain(scene.Driving), vcfg, tensor.NewRNG(2025))

	tracker := track.New(track.DefaultConfig())
	var gtFrames [][]track.GT
	var outFrames [][]track.Track
	var swLatenciesMS []float64
	var simLatencyUS float64

	for _, fr := range frames {
		start := time.Now()
		dets, info, err := pipe.Detect("patrol", fr.Image)
		if err != nil {
			log.Fatal(err)
		}
		swLatenciesMS = append(swLatenciesMS, float64(time.Since(start).Microseconds())/1000)
		simLatencyUS = info.LatencyUS

		scored := make([]geom.Scored, len(dets))
		for i, d := range dets {
			scored[i] = geom.Scored{Box: d.Box, Class: d.ClassID, Score: d.Score}
		}
		tracks := tracker.Update(scored)
		outFrames = append(outFrames, tracks)

		var gts []track.GT
		for _, o := range fr.Objects {
			gts = append(gts, track.GT{TrackID: o.TrackID, Box: o.Box, Class: int(o.Class)})
		}
		gtFrames = append(gtFrames, gts)
	}

	q := track.EvaluateTracking(gtFrames, outFrames, 0.3)
	fmt.Printf("\ntracking over %d frames, %d ground-truth identities:\n", len(frames), q.GTIdentities)
	fmt.Printf("  recall %.1f%%  precision %.1f%%  ID switches %d  mostly-tracked %d/%d\n",
		100*q.Recall, 100*q.Precision, q.IDSwitches, q.MostlyTracked, q.GTIdentities)

	sw := metrics.ComputeStats(swLatenciesMS)
	fmt.Printf("\nsoftware detection latency (this machine): mean %.2f ms, p95 %.2f ms\n", sw.Mean, sw.P95)
	fmt.Printf("simulated accelerator latency: %.0f us/frame -> %.0f FPS", simLatencyUS, 1e6/simLatencyUS)
	const target = 30.0
	budget := 1e6 / target
	fmt.Printf(" (uses %.1f%% of a %.0f-FPS real-time budget)\n", 100*simLatencyUS/budget, target)
}
