// Quickstart: the smallest end-to-end iTask program.
//
// It trains the quantized generalist on the standard task mixture, turns a
// natural-language mission into a knowledge graph, and detects objects in a
// synthetic driving scene.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"itask"
	"itask/internal/scene"
	"itask/internal/tensor"
)

func main() {
	pipe := itask.New(itask.DefaultOptions())

	// 1. Train the multi-task generalist (the quantized configuration).
	fmt.Println("training generalist...")
	if err := pipe.TrainGeneralist(nil); err != nil {
		log.Fatal(err)
	}

	// 2. Define a mission in natural language. The simulated LLM compiles
	//    it into an abstract knowledge graph of task attributes.
	mission := "Detect cars and pedestrians on the road, ignore vegetation"
	if err := pipe.DefineTask("patrol", mission); err != nil {
		log.Fatal(err)
	}
	g, _ := pipe.Graph("patrol")
	fmt.Printf("mission %q -> knowledge graph with %d nodes, %d edges\n",
		mission, g.NumNodes(), g.NumEdges())

	// 3. Detect on a synthetic scene.
	sc := scene.Generate(scene.GetDomain(scene.Driving), scene.DefaultGenConfig(), tensor.NewRNG(42))
	dets, info, err := pipe.Detect("patrol", sc.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served by %s (%s), simulated edge cost %.0f us / %.0f uJ\n",
		info.Name, info.Kind, info.LatencyUS, info.EnergyUJ)
	fmt.Printf("ground truth: %d objects; detected:\n", len(sc.Objects))
	for _, d := range dets {
		fmt.Printf("  %-12s score %.2f  box (%.2f,%.2f) %.2fx%.2f  KG relevance %.2f\n",
			d.Class, d.Score, d.Box.X, d.Box.Y, d.Box.W, d.Box.H, d.Relevance)
	}
}
