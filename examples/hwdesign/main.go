// Hwdesign: accelerator design-space exploration with the hwsim model.
//
// Sweeps the systolic array geometry and SRAM/DRAM parameters for the
// deployed generalist, reports the energy-delay-product-optimal design
// point, and shows how the pick shifts for the smaller student model —
// the kind of study the iTask acceleration circuit came from.
//
// Run with: go run ./examples/hwdesign
package main

import (
	"fmt"

	"itask/internal/experiments"
	"itask/internal/hwsim"
	"itask/internal/vit"
)

func main() {
	generalist := experiments.HWTeacherCfg()
	student := experiments.HWStudentCfg()

	fmt.Printf("workloads: generalist %d MMACs, student %d MMACs per frame\n\n",
		generalist.TotalMACs()/1e6, student.TotalMACs()/1e6)

	fmt.Println("== array geometry sweep (generalist) ==")
	best := exploreArrays(generalist)
	fmt.Printf("\nEDP-optimal design point for the generalist: %s\n\n", best.Name)

	fmt.Println("== same sweep for the student ==")
	bestStudent := exploreArrays(student)
	fmt.Printf("\nEDP-optimal design point for the student: %s\n", bestStudent.Name)
	fmt.Println("(note how utilization falls off much sooner on the smaller model)")

	// Memory sensitivity at the chosen point.
	fmt.Println("\n== DRAM bandwidth sensitivity at the chosen point ==")
	fmt.Printf("%-8s %14s %14s\n", "GB/s", "latency(us)", "dram-bound?")
	for _, bw := range []float64{0.5, 1, 2, 4, 8, 16} {
		cfg := best
		cfg.DRAMBandwidthGBs = bw
		r := hwsim.SimulateAccel(cfg, generalist)
		bound := "no"
		// Compare against an effectively infinite-bandwidth run.
		cfgInf := cfg
		cfgInf.DRAMBandwidthGBs = 1e6
		if r.LatencyUS > hwsim.SimulateAccel(cfgInf, generalist).LatencyUS*1.05 {
			bound = "yes"
		}
		fmt.Printf("%-8.1f %14.1f %14s\n", bw, r.LatencyUS, bound)
	}

	// Final comparison against the baselines at the chosen point.
	fmt.Println("\n== chosen design vs baselines (generalist) ==")
	c := hwsim.Compare(best, hwsim.DefaultGPU(), hwsim.DefaultCPU(), generalist)
	fmt.Print(c.String())
}

// exploreArrays sweeps square arrays and returns the EDP-optimal config.
func exploreArrays(model vit.Config) hwsim.AccelConfig {
	fmt.Printf("%-8s %10s %12s %12s %8s %14s\n",
		"array", "GOPS", "latency(us)", "energy(uJ)", "util", "EDP(uJ*us)")
	bestEDP := 0.0
	var best hwsim.AccelConfig
	for _, n := range []int{8, 16, 32, 64, 128} {
		cfg := hwsim.DefaultAccel()
		cfg.Rows, cfg.Cols = n, n
		cfg.Name = fmt.Sprintf("%dx%d@%.0fMHz", n, n, cfg.FreqMHz)
		r := hwsim.SimulateAccel(cfg, model)
		edp := r.TotalUJ * r.LatencyUS
		fmt.Printf("%-8s %10.0f %12.1f %12.1f %7.1f%% %14.0f\n",
			fmt.Sprintf("%dx%d", n, n), cfg.PeakGOPS(), r.LatencyUS, r.TotalUJ,
			100*r.MeanUtilization, edp)
		if best.Name == "" || edp < bestEDP {
			bestEDP, best = edp, cfg
		}
	}
	return best
}
