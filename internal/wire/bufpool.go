package wire

import (
	"io"
	"sync"
)

// Body buffers are pooled in size classes so steady-state ingress makes no
// buffer allocations: a typical JSON detect body (~40 KiB at the default
// 3×32×32 frame) and its binary twin (~12 KiB) each land in a small class,
// while the 4 MiB ceiling class exists only for worst-case bodies and is
// touched as rarely as they arrive. Classes are powers of four-ish steps —
// few enough that every class stays warm under mixed traffic, close enough
// that a body never occupies more than ~4× its size.
var bufClasses = [...]int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

var bufPools [len(bufClasses)]sync.Pool

// Buf is a pooled byte buffer. Get one with GetBuf or ReadAll, use Bytes,
// and hand it back with Release exactly once — after Release the contents
// may be overwritten by any other goroutine at any time. A Buf whose bytes
// may still be referenced elsewhere (a proxied request body a canceled
// transport write could still be draining, say) must be dropped on the
// floor instead: the garbage collector reclaims it and the pool never
// learns about it.
type Buf struct {
	b     []byte
	n     int
	class int // index into bufPools, -1 for an off-class (unpooled) buffer
}

// Bytes returns the filled portion of the buffer.
func (b *Buf) Bytes() []byte { return b.b[:b.n] }

// Release returns the buffer to its size-class pool. Safe on nil.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	c := b.class
	b.n = 0
	b.class = -1 // double-Release becomes a no-op instead of a double-free
	bufPools[c].Put(b)
}

// GetBuf returns a pooled buffer whose capacity is at least sizeHint (the
// smallest class that fits; hints beyond the largest class fall back to a
// one-off allocation the pool never sees).
func GetBuf(sizeHint int) *Buf {
	for i, c := range bufClasses {
		if sizeHint <= c {
			if v := bufPools[i].Get(); v != nil {
				b := v.(*Buf)
				b.n, b.class = 0, i // re-arm (Release parks buffers with class -1)
				return b
			}
			return &Buf{b: make([]byte, c), class: i}
		}
	}
	return &Buf{b: make([]byte, sizeHint), class: -1}
}

// ReadAll drains r into a pooled buffer, growing through the size classes
// as bytes arrive. sizeHint pre-sizes the first class (an HTTP handler
// passes the request's ContentLength; chunked bodies pass 0 and start
// small). The reader's own limit (http.MaxBytesReader) is the byte bound —
// ReadAll grows until the reader is done or errors. On error the partial
// buffer is released and (nil, err) returned; on success the caller owns
// the Buf and must Release (or deliberately leak) it.
func ReadAll(r io.Reader, sizeHint int) (*Buf, error) {
	if sizeHint < 0 {
		sizeHint = 0
	}
	buf := GetBuf(sizeHint)
	for {
		if buf.n == len(buf.b) {
			// Full: either the body is exactly this long (the next read
			// returns 0, io.EOF) or it continues into the next class. Probe
			// with a one-byte read before paying the copy.
			var probe [1]byte
			m, err := r.Read(probe[:])
			if m == 0 && err == io.EOF {
				return buf, nil
			}
			if m == 0 && err != nil {
				buf.Release()
				return nil, err
			}
			want := len(buf.b) + 1
			if want > bufClasses[len(bufClasses)-1] {
				want = 2 * len(buf.b) // off-class: double, don't creep
			}
			next := GetBuf(want)
			next.n = copy(next.b, buf.b[:buf.n])
			buf.Release()
			buf = next
			if m > 0 {
				buf.b[buf.n] = probe[0]
				buf.n++
			}
			if err == io.EOF {
				return buf, nil
			}
			if err != nil {
				buf.Release()
				return nil, err
			}
			continue
		}
		m, err := r.Read(buf.b[buf.n:])
		buf.n += m
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			buf.Release()
			return nil, err
		}
	}
}
