package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReadAllSmallBody(t *testing.T) {
	body := []byte("hello wire")
	buf, err := ReadAll(bytes.NewReader(body), len(body))
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if !bytes.Equal(buf.Bytes(), body) {
		t.Fatalf("read %q", buf.Bytes())
	}
}

func TestReadAllGrowsThroughClasses(t *testing.T) {
	// A body bigger than the first class with a zero size hint (chunked
	// transfer: no Content-Length) must grow without losing bytes.
	body := bytes.Repeat([]byte{7}, bufClasses[0]*3+13)
	buf, err := ReadAll(iotestOneByOne{bytes.NewReader(body)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if !bytes.Equal(buf.Bytes(), body) {
		t.Fatalf("grown read lost bytes: %d vs %d", len(buf.Bytes()), len(body))
	}
}

// iotestOneByOne returns at most 1000 bytes per Read, forcing many refill
// iterations and at least one exactly-full buffer boundary.
type iotestOneByOne struct{ r io.Reader }

func (o iotestOneByOne) Read(p []byte) (int, error) {
	if len(p) > 1000 {
		p = p[:1000]
	}
	return o.r.Read(p)
}

func TestReadAllExactClassBoundary(t *testing.T) {
	// A body exactly one class long must not require a grow to detect EOF
	// corruption — and must come back byte-identical.
	body := bytes.Repeat([]byte{9}, bufClasses[0])
	buf, err := ReadAll(bytes.NewReader(body), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if !bytes.Equal(buf.Bytes(), body) {
		t.Fatal("class-boundary body corrupted")
	}
}

func TestReadAllPropagatesError(t *testing.T) {
	boom := errors.New("mid-body reset")
	_, err := ReadAll(io.MultiReader(strings.NewReader("partial"), errorReader{boom}), 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type errorReader struct{ err error }

func (e errorReader) Read([]byte) (int, error) { return 0, e.err }

func TestGetBufClasses(t *testing.T) {
	for _, hint := range []int{0, 1, 16 << 10, 16<<10 + 1, 4 << 20} {
		b := GetBuf(hint)
		if len(b.b) < hint {
			t.Fatalf("GetBuf(%d) returned %d bytes", hint, len(b.b))
		}
		if b.class < 0 {
			t.Fatalf("GetBuf(%d) off-class", hint)
		}
		b.Release()
	}
	huge := GetBuf(bufClasses[len(bufClasses)-1] + 1)
	if huge.class != -1 {
		t.Fatal("over-ceiling hint should be off-class")
	}
	huge.Release() // must be a no-op, not a pool poisoning
}

func TestBufDoubleReleaseIsNoop(t *testing.T) {
	b := GetBuf(8)
	b.Release()
	b.Release()
	// After a double release the pool must still vend distinct buffers.
	x, y := GetBuf(8), GetBuf(8)
	if x == y {
		t.Fatal("double release duplicated a pooled buffer")
	}
	x.Release()
	y.Release()
}

func TestWriteJSONSetsContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, 418, map[string]string{"status": "teapot"})
	if rec.Code != 418 {
		t.Fatalf("code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["status"] != "teapot" {
		t.Fatalf("body %q (%v)", rec.Body.String(), err)
	}
}

func TestWriteJSONUnencodableValue(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, 200, map[string]any{"fn": func() {}})
	if rec.Code != 500 {
		t.Fatalf("unencodable value answered %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
}
