package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func testFrame(t *testing.T) []byte {
	t.Helper()
	data := make([]float32, 3*4*4)
	for i := range data {
		data[i] = float32(i) * 0.25
	}
	return AppendFrame(nil, "patrol", "acme", 250, [3]int{3, 4, 4}, data)
}

func TestFrameRoundTrip(t *testing.T) {
	data := make([]float32, 3*4*4)
	for i := range data {
		data[i] = float32(i) - 7.5
	}
	data[0] = float32(math.NaN())
	data[1] = float32(math.Inf(-1))
	body := AppendFrame(nil, "patrol", "acme", 1234, [3]int{3, 4, 4}, data)
	if want := FrameLen(len("patrol"), len("acme"), len(data)); len(body) != want {
		t.Fatalf("encoded %d bytes, FrameLen says %d", len(body), want)
	}
	f, err := ParseFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Task) != "patrol" || string(f.Tenant) != "acme" || f.TimeoutMS != 1234 {
		t.Fatalf("parsed header %q/%q/%d", f.Task, f.Tenant, f.TimeoutMS)
	}
	if f.Shape != [3]int{3, 4, 4} || f.Elems() != len(data) {
		t.Fatalf("parsed shape %v (%d elems)", f.Shape, f.Elems())
	}
	got := make([]float32, f.Elems())
	Float32s(f.Payload, got)
	for i, v := range data {
		if math.Float32bits(got[i]) != math.Float32bits(v) {
			t.Fatalf("element %d: %x != %x (NaN/Inf must round-trip bit-exactly)", i, math.Float32bits(got[i]), math.Float32bits(v))
		}
	}
}

func TestFrameEmptyNames(t *testing.T) {
	body := AppendFrame(nil, "", "", 0, [3]int{1, 1, 1}, []float32{42})
	f, err := ParseFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Task) != 0 || len(f.Tenant) != 0 || f.TimeoutMS != 0 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestFramePayloadAligned(t *testing.T) {
	// Name lengths that are not multiples of 4 must be padded so the
	// payload offset stays word-aligned within the body.
	for _, task := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		body := AppendFrame(nil, task, "xyz", 0, [3]int{1, 1, 2}, []float32{1, 2})
		f, err := ParseFrame(body)
		if err != nil {
			t.Fatalf("task %q: %v", task, err)
		}
		off := len(body) - len(f.Payload)
		if off%4 != 0 {
			t.Fatalf("task %q: payload offset %d not 4-byte aligned", task, off)
		}
	}
}

func TestParseFrameRejectsMalformedBodies(t *testing.T) {
	valid := testFrame(t)
	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short garbage", []byte("xx")},
		{"truncated header", valid[:16]},
		{"truncated payload", valid[:len(valid)-3]},
		{"trailing garbage", append(append([]byte(nil), valid...), 'x')},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b })},
		{"nonzero flags", mutate(func(b []byte) []byte { b[6] = 1; return b })},
		{"nonzero reserved", mutate(func(b []byte) []byte { b[18] = 1; return b })},
		{"wrong ndim", mutate(func(b []byte) []byte { b[16] = 2; return b })},
		{"zero dim", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[20:], 0); return b })},
		{"huge dims", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], 1<<31)
			binary.LittleEndian.PutUint32(b[28:], 1<<31)
			return b
		})},
		{"oversized task len", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[12:], 2000); return b })},
		{"name overruns body", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[12:], 900); return b })},
		{"nonzero padding", mutate(func(b []byte) []byte {
			// task "patrol" (6) + tenant "acme" (4) = 10 → 2 pad bytes at 42.
			b[headerLen+10] = 0xff
			return b
		})},
	}
	for _, tc := range cases {
		if _, err := ParseFrame(tc.body); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// A non-frame body yields ErrNotFrame specifically, so callers can fall
	// back to the JSON parser without claiming frame corruption.
	if _, err := ParseFrame([]byte(`{"task":"patrol"}`)); !errors.Is(err, ErrNotFrame) {
		t.Errorf("JSON body: err = %v, want ErrNotFrame", err)
	}
	// A body that *starts* like a frame but is cut off is a frame error,
	// not a fall-back case.
	if _, err := ParseFrame([]byte("iTSK")); errors.Is(err, ErrNotFrame) || err == nil {
		t.Errorf("truncated magic-only body: err = %v, want a frame error", err)
	}
}

// FuzzParseFrame: whatever the bytes — truncated, oversized, garbage
// headers — the parser must never panic, and an accepted frame must be
// internally consistent.
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("iTSK"))
	f.Add(testFrameSeed())
	f.Add(testFrameSeed()[:17])
	f.Add(append(testFrameSeed(), 0))
	big := testFrameSeed()
	binary.LittleEndian.PutUint32(big[24:], 0xffffffff)
	f.Add(big)
	f.Add([]byte(`{"task":"patrol","scene":{"domain":"driving","seed":7}}`))
	f.Add(bytes.Repeat([]byte{0xfe}, 64))
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := ParseFrame(body)
		if err != nil {
			return
		}
		n := 1
		for _, d := range fr.Shape {
			if d <= 0 {
				t.Fatalf("accepted non-positive dim: %v", fr.Shape)
			}
			n *= d
		}
		if n > maxFrameElems {
			t.Fatalf("accepted oversized shape %v", fr.Shape)
		}
		if len(fr.Payload) != 4*n {
			t.Fatalf("payload %d bytes for shape %v", len(fr.Payload), fr.Shape)
		}
		if len(fr.Task) > maxNameLen || len(fr.Tenant) > maxNameLen {
			t.Fatal("accepted oversized name")
		}
		dst := make([]float32, n)
		Float32s(fr.Payload, dst) // must not panic on any accepted frame
	})
}

func testFrameSeed() []byte {
	return AppendFrame(nil, "patrol", "acme", 250, [3]int{3, 2, 2}, make([]float32, 12))
}

// The steady-state binary ingest path — pooled body read plus frame decode
// — must make zero allocations per request.
func TestBinaryIngestZeroAllocs(t *testing.T) {
	data := make([]float32, 3*32*32)
	for i := range data {
		data[i] = float32(i)
	}
	body := AppendFrame(nil, "patrol", "acme", 0, [3]int{3, 32, 32}, data)
	r := bytes.NewReader(body)
	// Warm the size-class pool so the measured runs reuse buffers.
	for i := 0; i < 4; i++ {
		r.Reset(body)
		buf, err := ReadAll(r, len(body))
		if err != nil {
			t.Fatal(err)
		}
		buf.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(body)
		buf, err := ReadAll(r, len(body))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseFrame(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		buf.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled read + frame decode allocates %.1f/op, want 0", allocs)
	}
}
