package wire

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
)

// jsonEnc is a pooled encoder: the bytes.Buffer absorbs the encoded body
// (its backing array survives pool round-trips, so steady-state responses
// allocate only what encoding/json itself needs for the value), and the
// json.Encoder is bound to it once instead of per response.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// jsonEncMaxRetain bounds the buffer capacity a pooled encoder keeps: a
// one-off giant response (a full metrics snapshot of a huge fleet) must not
// pin megabytes in the pool forever.
const jsonEncMaxRetain = 1 << 20

// WriteJSON encodes v through a pooled encoder and writes it as one
// response with Content-Type: application/json — the single JSON response
// path both HTTP doors route every handler through, so the header is set
// consistently on success and error responses alike.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// The value itself refused to encode (a handler bug, not a client
		// condition). Nothing has been written yet, so say so cleanly.
		e.buf.Reset()
		e.buf.WriteString(`{"error":"response encoding failed"}` + "\n")
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= jsonEncMaxRetain {
		jsonEncPool.Put(e)
	}
}
