// Package wire owns the ingress byte path shared by cmd/itask-serve and
// cmd/itask-gateway: the versioned application/x-itask-tensor binary frame
// format, size-classed pooled body buffers for reading request/response
// bodies without steady-state allocation, and pooled JSON response encoding.
//
// The binary format exists because a dense frame serialized as JSON floats
// costs a full decimal parse per element at every door that needs to look at
// it — the gateway once (to derive the routing digest) and the shard again
// (to materialize the tensor). A frame on the wire format is decoded by
// slicing: the gateway reads the fixed header and content-hashes the raw
// payload bytes directly (no tensor, no float parsing), and the shard's only
// per-element work is one 4-byte little-endian load per float.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ContentType is the media type of a binary tensor frame. Bodies posted to
// /v1/detect with this Content-Type are parsed by ParseFrame; anything else
// takes the JSON path.
const ContentType = "application/x-itask-tensor"

// Frame wire layout, version 1, every multi-byte field little-endian:
//
//	offset size field
//	0      4    magic "iTSK"
//	4      2    version (1)
//	6      2    flags (must be 0; reserved for future negotiation)
//	8      4    timeout_ms (0 = server default)
//	12     2    task length in bytes
//	14     2    tenant length in bytes
//	16     2    ndim (must be 3 in v1)
//	18     2    reserved (must be 0)
//	20     12   dims, 3 × uint32 (channels, height, width)
//	32     ...  task bytes, then tenant bytes, then zero padding to the
//	            next 4-byte boundary, then the payload: dims product ×
//	            float32, raw IEEE-754 bits, little-endian
//
// The total body length must equal the header-implied length exactly —
// trailing bytes are rejected, the same line the JSON parser holds. Padding
// keeps the payload 4-byte aligned relative to the body start so a decoder
// may view it as words without unaligned loads.
const (
	frameMagic   = "iTSK"
	FrameVersion = 1
	headerLen    = 32

	// maxNameLen bounds the task and tenant fields structurally. The
	// serving layers apply their own (tighter) rules; this bound only keeps
	// a hostile header from pointing the parser at megabytes of "name".
	maxNameLen = 1024

	// maxFrameElems bounds the payload element count (a 4 MiB body bound
	// divided by 4-byte elements). ParseFrame enforces it before trusting
	// the dims product, so hostile dims cannot size anything real.
	maxFrameElems = 1 << 20
)

// Frame is a parsed binary detect request. Task, Tenant, and Payload alias
// the body buffer passed to ParseFrame — they are valid only while that
// buffer is; copy (or convert to string) anything that outlives it.
type Frame struct {
	Task      []byte
	Tenant    []byte
	TimeoutMS uint32
	// Shape is the declared (channels, height, width) extent. ParseFrame
	// guarantees each dim is positive and the product matches Payload.
	Shape [3]int
	// Payload is the raw little-endian float32 data, 4 bytes per element.
	Payload []byte
}

// Elems returns the payload element count.
func (f *Frame) Elems() int { return len(f.Payload) / 4 }

// ErrNotFrame marks a body that does not begin with the frame magic: the
// caller may fall back to another decode (or reject) without reporting a
// corrupt frame.
var ErrNotFrame = errors.New("wire: not a tensor frame")

// ParseFrame decodes a binary detect body by slicing. It never allocates
// and never panics, whatever the bytes (it is fuzzed): every return is
// either a structurally valid frame whose payload length matches its shape
// exactly, or an error fit for HTTP 400.
func ParseFrame(body []byte) (Frame, error) {
	var f Frame
	if len(body) < headerLen {
		if len(body) < 4 || string(body[:4]) != frameMagic {
			return f, ErrNotFrame
		}
		return f, fmt.Errorf("wire: truncated frame header: %d bytes, need %d", len(body), headerLen)
	}
	if string(body[:4]) != frameMagic {
		return f, ErrNotFrame
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != FrameVersion {
		return f, fmt.Errorf("wire: unsupported frame version %d (want %d)", v, FrameVersion)
	}
	if flags := binary.LittleEndian.Uint16(body[6:]); flags != 0 {
		return f, fmt.Errorf("wire: unknown frame flags %#x", flags)
	}
	f.TimeoutMS = binary.LittleEndian.Uint32(body[8:])
	taskLen := int(binary.LittleEndian.Uint16(body[12:]))
	tenantLen := int(binary.LittleEndian.Uint16(body[14:]))
	if taskLen > maxNameLen || tenantLen > maxNameLen {
		return f, fmt.Errorf("wire: name field exceeds %d bytes", maxNameLen)
	}
	if ndim := binary.LittleEndian.Uint16(body[16:]); ndim != 3 {
		return f, fmt.Errorf("wire: frame ndim %d (v1 carries exactly 3 dims)", ndim)
	}
	if rsv := binary.LittleEndian.Uint16(body[18:]); rsv != 0 {
		return f, fmt.Errorf("wire: reserved header bytes %#x must be zero", rsv)
	}
	elems := uint64(1)
	for i := range f.Shape {
		d := binary.LittleEndian.Uint32(body[20+4*i:])
		if d == 0 {
			return f, fmt.Errorf("wire: zero dim %d in frame shape", i)
		}
		f.Shape[i] = int(d)
		elems *= uint64(d)
		if elems > maxFrameElems {
			return f, fmt.Errorf("wire: frame shape %v exceeds %d elements", f.Shape, maxFrameElems)
		}
	}
	nameEnd := headerLen + taskLen + tenantLen
	payloadOff := pad4(nameEnd)
	want := payloadOff + int(elems)*4
	if len(body) < want {
		return f, fmt.Errorf("wire: truncated frame: %d bytes, header implies %d", len(body), want)
	}
	if len(body) > want {
		return f, fmt.Errorf("wire: %d trailing bytes after frame payload", len(body)-want)
	}
	for _, b := range body[nameEnd:payloadOff] {
		if b != 0 {
			return f, errors.New("wire: nonzero padding between names and payload")
		}
	}
	f.Task = body[headerLen : headerLen+taskLen]
	f.Tenant = body[headerLen+taskLen : nameEnd]
	f.Payload = body[payloadOff:want]
	return f, nil
}

// AppendFrame encodes one binary detect request onto dst and returns the
// extended slice — the client-side mirror of ParseFrame, used by tests,
// benchmarks, and the mkframe tooling. len(data) must equal the shape
// product; task and tenant must fit the structural name bound.
func AppendFrame(dst []byte, task, tenant string, timeoutMS uint32, shape [3]int, data []float32) []byte {
	n := 1
	for _, d := range shape {
		if d <= 0 || d > math.MaxUint32 {
			panic(fmt.Sprintf("wire: AppendFrame shape %v", shape))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("wire: AppendFrame %d elements for shape %v (need %d)", len(data), shape, n))
	}
	if len(task) > maxNameLen || len(tenant) > maxNameLen {
		panic("wire: AppendFrame name exceeds structural bound")
	}
	var hdr [headerLen]byte
	copy(hdr[:4], frameMagic)
	binary.LittleEndian.PutUint16(hdr[4:], FrameVersion)
	binary.LittleEndian.PutUint32(hdr[8:], timeoutMS)
	binary.LittleEndian.PutUint16(hdr[12:], uint16(len(task)))
	binary.LittleEndian.PutUint16(hdr[14:], uint16(len(tenant)))
	binary.LittleEndian.PutUint16(hdr[16:], 3)
	for i, d := range shape {
		binary.LittleEndian.PutUint32(hdr[20+4*i:], uint32(d))
	}
	dst = append(dst, hdr[:]...)
	dst = append(dst, task...)
	dst = append(dst, tenant...)
	for pad := pad4(len(task)+len(tenant)) - len(task) - len(tenant); pad > 0; pad-- {
		dst = append(dst, 0)
	}
	var w [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
		dst = append(dst, w[:]...)
	}
	return dst
}

// FrameLen returns the encoded size of a frame with the given name lengths
// and element count, for pre-sizing buffers.
func FrameLen(taskLen, tenantLen, elems int) int {
	return pad4(headerLen+taskLen+tenantLen) + 4*elems
}

// Float32s decodes a frame payload into dst, one little-endian 4-byte load
// per element — no text parsing, no allocation. len(dst) must equal
// len(payload)/4 (ParseFrame guarantees the payload length is a multiple
// of 4 matching the declared shape).
func Float32s(payload []byte, dst []float32) {
	if len(payload) != 4*len(dst) {
		panic(fmt.Sprintf("wire: Float32s %d payload bytes for %d elements", len(payload), len(dst)))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
}

// pad4 rounds n up to the next multiple of 4.
func pad4(n int) int { return (n + 3) &^ 3 }
