package geom_test

import (
	"fmt"

	"itask/internal/geom"
)

func ExampleIoU() {
	a := geom.Box{X: 0.25, Y: 0.5, W: 0.5, H: 1.0}
	b := geom.Box{X: 0.5, Y: 0.5, W: 0.5, H: 1.0}
	fmt.Printf("%.3f\n", geom.IoU(a, b))
	// Output: 0.333
}

func ExampleNMS() {
	dets := []geom.Scored{
		{Box: geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}, Class: 1, Score: 0.9},
		{Box: geom.Box{X: 0.51, Y: 0.5, W: 0.2, H: 0.2}, Class: 1, Score: 0.7}, // duplicate
		{Box: geom.Box{X: 0.1, Y: 0.1, W: 0.1, H: 0.1}, Class: 1, Score: 0.6},
	}
	kept := geom.NMS(dets, 0.5)
	fmt.Println(len(kept))
	// Output: 2
}
