// Package geom provides the 2-D box geometry shared by the scene renderer,
// the detection heads, and the evaluation metrics. Coordinates are
// normalized to [0,1] relative to the image, with (X,Y) the box center.
package geom

import "sort"

// Box is an axis-aligned box with normalized center coordinates and size.
type Box struct {
	X, Y float64 // center
	W, H float64 // width, height
}

// Left returns the left edge.
func (b Box) Left() float64 { return b.X - b.W/2 }

// Right returns the right edge.
func (b Box) Right() float64 { return b.X + b.W/2 }

// Top returns the top edge.
func (b Box) Top() float64 { return b.Y - b.H/2 }

// Bottom returns the bottom edge.
func (b Box) Bottom() float64 { return b.Y + b.H/2 }

// Area returns the box area (0 for degenerate boxes).
func (b Box) Area() float64 {
	if b.W <= 0 || b.H <= 0 {
		return 0
	}
	return b.W * b.H
}

// Contains reports whether the point (x,y) lies inside the box.
func (b Box) Contains(x, y float64) bool {
	return x >= b.Left() && x <= b.Right() && y >= b.Top() && y <= b.Bottom()
}

// Clip returns the box clipped to the unit square, preserving the
// center/size representation.
func (b Box) Clip() Box {
	l, r := clamp01(b.Left()), clamp01(b.Right())
	t, bo := clamp01(b.Top()), clamp01(b.Bottom())
	return Box{X: (l + r) / 2, Y: (t + bo) / 2, W: r - l, H: bo - t}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Intersection returns the area of overlap between a and b.
func Intersection(a, b Box) float64 {
	w := minF(a.Right(), b.Right()) - maxF(a.Left(), b.Left())
	h := minF(a.Bottom(), b.Bottom()) - maxF(a.Top(), b.Top())
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// IoU returns the intersection-over-union of a and b, in [0,1].
// Two degenerate boxes have IoU 0.
func IoU(a, b Box) float64 {
	inter := Intersection(a, b)
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Scored is a box with a class and confidence, the unit of detector output.
type Scored struct {
	Box   Box
	Class int
	Score float64
}

// NMS performs class-aware greedy non-maximum suppression: detections are
// visited in descending score order and dropped if they overlap an already
// kept detection of the same class by more than iouThresh.
func NMS(dets []Scored, iouThresh float64) []Scored {
	sorted := append([]Scored(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []Scored
	for _, d := range sorted {
		suppressed := false
		for _, k := range kept {
			if k.Class == d.Class && IoU(k.Box, d.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
