package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxEdgesAndArea(t *testing.T) {
	b := Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.4}
	if math.Abs(b.Left()-0.4) > 1e-12 || math.Abs(b.Right()-0.6) > 1e-12 {
		t.Errorf("horizontal edges wrong: %v %v", b.Left(), b.Right())
	}
	if math.Abs(b.Top()-0.3) > 1e-12 || math.Abs(b.Bottom()-0.7) > 1e-12 {
		t.Errorf("vertical edges wrong: %v %v", b.Top(), b.Bottom())
	}
	if math.Abs(b.Area()-0.08) > 1e-12 {
		t.Errorf("area = %v", b.Area())
	}
	if (Box{W: -1, H: 1}).Area() != 0 {
		t.Error("degenerate box should have zero area")
	}
}

func TestContains(t *testing.T) {
	b := Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	if !b.Contains(0.5, 0.5) || !b.Contains(0.4, 0.4) {
		t.Error("points inside reported outside")
	}
	if b.Contains(0.39, 0.5) || b.Contains(0.5, 0.61) {
		t.Error("points outside reported inside")
	}
}

func TestIoUIdentityAndDisjoint(t *testing.T) {
	a := Box{X: 0.3, Y: 0.3, W: 0.2, H: 0.2}
	if got := IoU(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("IoU(a,a) = %v, want 1", got)
	}
	b := Box{X: 0.8, Y: 0.8, W: 0.2, H: 0.2}
	if got := IoU(a, b); got != 0 {
		t.Errorf("IoU disjoint = %v, want 0", got)
	}
}

func TestIoUKnownValue(t *testing.T) {
	// Two unit-half boxes overlapping by half horizontally.
	a := Box{X: 0.25, Y: 0.5, W: 0.5, H: 1.0}
	b := Box{X: 0.5, Y: 0.5, W: 0.5, H: 1.0}
	// intersection = 0.25*1, union = 0.5+0.5-0.25 = 0.75
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("IoU = %v, want 1/3", got)
	}
}

func TestIoUProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a := Box{frac(x1), frac(y1), frac(w1), frac(h1)}
		b := Box{frac(x2), frac(y2), frac(w2), frac(h2)}
		u1, u2 := IoU(a, b), IoU(b, a)
		// Symmetric and in range.
		return math.Abs(u1-u2) < 1e-12 && u1 >= 0 && u1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// frac maps any float into (0,1) deterministically.
func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	v = math.Abs(v)
	return v - math.Floor(v) + 0.001
}

func TestClip(t *testing.T) {
	b := Box{X: 0.05, Y: 0.5, W: 0.3, H: 0.2} // sticks out left
	c := b.Clip()
	if c.Left() < -1e-12 {
		t.Errorf("clipped box extends past 0: %v", c.Left())
	}
	if math.Abs(c.Right()-b.Right()) > 1e-12 {
		t.Errorf("right edge should be unchanged")
	}
	// Fully inside: unchanged.
	in := Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	got := in.Clip()
	if math.Abs(got.X-in.X) > 1e-12 || math.Abs(got.W-in.W) > 1e-12 {
		t.Error("interior box modified by Clip")
	}
}

func TestNMSSuppressesSameClassOverlaps(t *testing.T) {
	dets := []Scored{
		{Box: Box{0.5, 0.5, 0.2, 0.2}, Class: 0, Score: 0.9},
		{Box: Box{0.51, 0.5, 0.2, 0.2}, Class: 0, Score: 0.8}, // heavy overlap, same class
		{Box: Box{0.51, 0.5, 0.2, 0.2}, Class: 1, Score: 0.7}, // heavy overlap, other class
		{Box: Box{0.1, 0.1, 0.1, 0.1}, Class: 0, Score: 0.6},  // disjoint
	}
	kept := NMS(dets, 0.5)
	if len(kept) != 3 {
		t.Fatalf("kept %d detections, want 3: %+v", len(kept), kept)
	}
	if kept[0].Score != 0.9 {
		t.Error("NMS must keep the highest-score detection first")
	}
	for _, k := range kept {
		if k.Score == 0.8 {
			t.Error("overlapping same-class detection should be suppressed")
		}
	}
}

func TestNMSEmptyAndSingle(t *testing.T) {
	if got := NMS(nil, 0.5); len(got) != 0 {
		t.Error("NMS(nil) should be empty")
	}
	one := []Scored{{Box: Box{0.5, 0.5, 0.1, 0.1}, Score: 0.5}}
	if got := NMS(one, 0.5); len(got) != 1 {
		t.Error("single detection must survive")
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	dets := []Scored{
		{Box: Box{0.5, 0.5, 0.2, 0.2}, Score: 0.1},
		{Box: Box{0.2, 0.2, 0.2, 0.2}, Score: 0.9},
	}
	NMS(dets, 0.5)
	if dets[0].Score != 0.1 {
		t.Error("NMS reordered the caller's slice")
	}
}

func TestIntersectionCommutes(t *testing.T) {
	a := Box{0.4, 0.4, 0.3, 0.3}
	b := Box{0.5, 0.5, 0.3, 0.3}
	if Intersection(a, b) != Intersection(b, a) {
		t.Error("Intersection not symmetric")
	}
	if Intersection(a, b) <= 0 {
		t.Error("expected positive overlap")
	}
}
