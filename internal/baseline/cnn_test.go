package baseline

import (
	"testing"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

func TestCNNConfigValidate(t *testing.T) {
	if err := DefaultCNNConfig(14).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CNNConfig{
		{},
		{ImageSize: 32, Channels: 3, Classes: 14, Width: 16, Grid: 5},
		{ImageSize: 32, Channels: 3, Classes: 14, Width: 16, Grid: 8}, // 4x downsample mismatch
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed: %+v", i, c)
		}
	}
}

func TestToCellsRoundTrip(t *testing.T) {
	tc := &toCells{C: 3, Cells: 4}
	x := tensor.New(2, 12)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := tc.Forward(x, true)
	if y.Shape[0] != 8 || y.Shape[1] != 3 {
		t.Fatalf("shape %v", y.Shape)
	}
	// Cell 0 of batch 0 should hold channels at positions 0, 4, 8.
	if y.At(0, 0) != 0 || y.At(0, 1) != 4 || y.At(0, 2) != 8 {
		t.Errorf("cell row = %v", y.Row(0).Data)
	}
	// Backward of forward's output recovers the original layout.
	dx := tc.Backward(y)
	if !dx.Equal(x) {
		t.Error("toCells backward is not the inverse permutation")
	}
}

func TestCNNForwardShapes(t *testing.T) {
	cfg := DefaultCNNConfig(int(scene.NumClasses))
	d := NewCNN(cfg, tensor.NewRNG(1))
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, 32, 32)
	dets := d.Detect(img, 0.0, 0.5)
	for _, det := range dets {
		if det.Class < 0 || det.Class >= cfg.Classes {
			t.Errorf("class out of range: %+v", det)
		}
	}
	if d.NumParams() <= 0 {
		t.Error("no parameters")
	}
}

func TestCNNTrainValidation(t *testing.T) {
	d := NewCNN(DefaultCNNConfig(14), tensor.NewRNG(1))
	if _, err := d.Train(dataset.Set{}, DefaultTrainConfig()); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := d.Train(dataset.Set{Examples: make([]dataset.Example, 1)}, TrainConfig{}); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestCNNLearnsTask verifies the baseline can actually learn with enough
// data — it is a real comparator, not a strawman.
func TestCNNLearnsTask(t *testing.T) {
	rng := tensor.NewRNG(3)
	task, _ := dataset.TaskByName("inspect")
	gen := scene.DefaultGenConfig()
	gen.MaxObjects = 2
	train := dataset.Build(task, 64, gen, rng)
	val := dataset.Build(task, 24, gen, rng)

	d := NewCNN(DefaultCNNConfig(int(scene.NumClasses)), tensor.NewRNG(4))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 14
	if _, err := d.Train(train, cfg); err != nil {
		t.Fatal(err)
	}
	th := eval.DefaultThresholds()
	df := eval.DetectFunc(func(img *tensor.Tensor) []geom.Scored {
		return d.Detect(img, th.Obj, th.NMSIoU)
	})
	s := eval.Run(df, val, dataset.ClassInts(task.Classes), th)
	if s.Accuracy < 0.2 {
		t.Errorf("trained CNN accuracy %v too low — baseline must be competitive at full data", s.Accuracy)
	}
}

func TestCNNSharesGridEncoding(t *testing.T) {
	// The grid config used by the CNN must produce the same target encoding
	// as the laptop-scale ViT geometry, so metrics are comparable.
	cnnGrid := DefaultCNNConfig(14).gridCfg()
	vitCfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 14,
	}
	objs := []vit.Object{{Box: geom.Box{X: 0.3, Y: 0.7, W: 0.2, H: 0.2}, Class: 5}}
	a := vit.EncodeTargets(cnnGrid, objs)
	b := vit.EncodeTargets(vitCfg, objs)
	if len(a.Obj) != len(b.Obj) {
		t.Fatalf("grid mismatch: %d vs %d cells", len(a.Obj), len(b.Obj))
	}
	for i := range a.Obj {
		if a.Obj[i] != b.Obj[i] || a.Class[i] != b.Class[i] {
			t.Fatal("target encodings differ between CNN and ViT grids")
		}
	}
}
