// Package baseline implements the "conventional model" the paper's
// introduction argues against: a lightweight CNN detector trained from
// scratch per task, with no teacher, no knowledge graph, and no task
// conditioning. It shares the detection-grid encoding with the ViT so both
// are scored by exactly the same metrics, and exists to quantify the
// abstract's motivating claim that conventional models "requir[e] vast
// datasets" compared to iTask's few-shot pipeline (experiment E9).
package baseline

import (
	"fmt"

	"itask/internal/dataset"
	"itask/internal/geom"
	"itask/internal/nn"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// CNNConfig describes the baseline detector.
type CNNConfig struct {
	ImageSize int
	Channels  int
	Classes   int
	// Width is the first conv's channel count; later stages double it.
	Width int
	// Grid is the detection grid edge (head cells per side); ImageSize
	// must be divisible by it and the conv trunk downsamples to exactly it.
	Grid int
}

// DefaultCNNConfig matches the laptop-scale ViT geometry (32px, 4×4 grid).
func DefaultCNNConfig(classes int) CNNConfig {
	return CNNConfig{ImageSize: 32, Channels: 3, Classes: classes, Width: 16, Grid: 4}
}

// Validate checks the configuration.
func (c CNNConfig) Validate() error {
	switch {
	case c.ImageSize <= 0 || c.Channels <= 0 || c.Classes <= 0 || c.Width <= 0 || c.Grid <= 0:
		return fmt.Errorf("baseline: non-positive field in %+v", c)
	case c.ImageSize%c.Grid != 0:
		return fmt.Errorf("baseline: image %d not divisible by grid %d", c.ImageSize, c.Grid)
	case c.ImageSize/c.Grid != 8:
		// The trunk has three stride-2 pools: 8x downsampling.
		return fmt.Errorf("baseline: trunk downsamples 8x; image/grid must be 8, got %d", c.ImageSize/c.Grid)
	}
	return nil
}

// gridCfg returns a vit.Config carrying only the detection-grid geometry,
// so the CNN reuses vit.EncodeTargets / vit.DetLoss / vit.Decode verbatim.
// The transformer-only fields are placeholder-valid and never used.
func (c CNNConfig) gridCfg() vit.Config {
	return vit.Config{
		ImageSize: c.ImageSize, Channels: c.Channels,
		PatchSize: c.ImageSize / c.Grid,
		Dim:       8, Depth: 1, Heads: 1, MLPRatio: 1,
		Classes: c.Classes,
	}
}

// toCells reorders a channel-major feature map batch (B, C*G*G) into
// per-cell rows (B*G*G, C) and back — the bridge between conv trunk and the
// shared per-cell detection head.
type toCells struct {
	C, Cells int
	batch    int
}

func (t *toCells) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b := x.Shape[0]
	if x.Shape[1] != t.C*t.Cells {
		panic(fmt.Sprintf("baseline: toCells width %d, want %d", x.Shape[1], t.C*t.Cells))
	}
	if train {
		t.batch = b
	}
	out := tensor.New(b*t.Cells, t.C)
	for bi := 0; bi < b; bi++ {
		in := x.Data[bi*t.C*t.Cells:]
		for cell := 0; cell < t.Cells; cell++ {
			row := out.Data[(bi*t.Cells+cell)*t.C:]
			for ch := 0; ch < t.C; ch++ {
				row[ch] = in[ch*t.Cells+cell]
			}
		}
	}
	return out
}

func (t *toCells) Backward(dy *tensor.Tensor) *tensor.Tensor {
	b := t.batch
	dx := tensor.New(b, t.C*t.Cells)
	for bi := 0; bi < b; bi++ {
		out := dx.Data[bi*t.C*t.Cells:]
		for cell := 0; cell < t.Cells; cell++ {
			row := dy.Data[(bi*t.Cells+cell)*t.C:]
			for ch := 0; ch < t.C; ch++ {
				out[ch*t.Cells+cell] = row[ch]
			}
		}
	}
	return dx
}

func (t *toCells) Params() []*nn.Param { return nil }

// CNNDetector is the conventional baseline: three conv/pool stages and a
// per-cell detection head.
type CNNDetector struct {
	Cfg CNNConfig
	net *nn.Sequential
}

// NewCNN builds the detector with fresh weights.
func NewCNN(cfg CNNConfig, rng *tensor.RNG) *CNNDetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := cfg.ImageSize
	w := cfg.Width
	conv1 := nn.NewConv2D("conv1", cfg.Channels, w, 3, 1, s, s, rng)
	pool1 := nn.NewMaxPool2D(w, s, s)
	conv2 := nn.NewConv2D("conv2", w, 2*w, 3, 1, s/2, s/2, rng)
	pool2 := nn.NewMaxPool2D(2*w, s/2, s/2)
	conv3 := nn.NewConv2D("conv3", 2*w, 2*w, 3, 1, s/4, s/4, rng)
	pool3 := nn.NewMaxPool2D(2*w, s/4, s/4)
	cells := cfg.Grid * cfg.Grid
	head := nn.NewLinear("det_head", 2*w, 5+cfg.Classes, rng)
	return &CNNDetector{
		Cfg: cfg,
		net: nn.NewSequential(
			conv1, nn.NewReLU(), pool1,
			conv2, nn.NewReLU(), pool2,
			conv3, nn.NewReLU(), pool3,
			&toCells{C: 2 * w, Cells: cells},
			head,
		),
	}
}

// Params returns all trainable parameters.
func (d *CNNDetector) Params() []*nn.Param { return d.net.Params() }

// NumParams returns the scalar parameter count.
func (d *CNNDetector) NumParams() int { return nn.CountParams(d.net.Params()) }

// forwardImages flattens (C,H,W) images into the batch-row layout.
func (d *CNNDetector) forwardImages(images []*tensor.Tensor, train bool) *tensor.Tensor {
	w := d.Cfg.Channels * d.Cfg.ImageSize * d.Cfg.ImageSize
	x := tensor.New(len(images), w)
	for i, img := range images {
		if img.Size() != w {
			panic(fmt.Sprintf("baseline: image %d has %d values, want %d", i, img.Size(), w))
		}
		copy(x.Data[i*w:(i+1)*w], img.Data)
	}
	return d.net.Forward(x, train)
}

// TrainConfig controls baseline training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Seed      uint64
}

// DefaultTrainConfig mirrors the ViT training budget.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 16, BatchSize: 8, LR: 2e-3, Seed: 1}
}

// Train fits the detector on the set with plain supervised detection loss —
// the conventional recipe, no teacher and no priors.
func (d *CNNDetector) Train(set dataset.Set, cfg TrainConfig) (float32, error) {
	if set.Len() == 0 {
		return 0, fmt.Errorf("baseline: empty dataset")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("baseline: invalid train config %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	gcfg := d.Cfg.gridCfg()
	weights := vit.DefaultDetLossWeights()
	var last float32
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		batches := set.Batches(cfg.BatchSize, rng)
		for _, batch := range batches {
			images := make([]*tensor.Tensor, len(batch))
			targets := make([]vit.DetTarget, len(batch))
			for i, ex := range batch {
				images[i] = ex.Image
				targets[i] = vit.EncodeTargets(gcfg, ex.Objects)
			}
			out := d.forwardImages(images, true)
			loss, grad := vit.DetLoss(gcfg, out, targets, weights)
			d.net.Backward(grad)
			nn.ClipGradNorm(d.Params(), 5)
			opt.Step(d.Params())
			epochLoss += float64(loss)
		}
		last = float32(epochLoss / float64(len(batches)))
	}
	return last, nil
}

// Detect runs inference on one image.
func (d *CNNDetector) Detect(img *tensor.Tensor, objThresh, nmsIoU float64) []geom.Scored {
	out := d.forwardImages([]*tensor.Tensor{img}, false)
	return vit.Decode(d.Cfg.gridCfg(), out, objThresh, nmsIoU)
}
