// Package kg implements the abstract knowledge graph at the core of iTask.
// The simulated LLM (internal/llm) converts a natural-language mission
// description into this graph; the detection pipeline then derives class
// priors and attribute prototypes from it, letting the detector identify
// objects by high-level characteristics rather than per-class training data.
package kg

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes the three node types of an iTask graph.
type NodeKind int

// Node kinds: a task (mission root), a concept (an abstract object category
// the task cares about), and an attribute value.
const (
	TaskNode NodeKind = iota
	ConceptNode
	AttrNode
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case TaskNode:
		return "task"
	case ConceptNode:
		return "concept"
	case AttrNode:
		return "attr"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Relation is the typed label on an edge.
type Relation string

// The relation vocabulary. Targets links a task to a concept; Avoid marks
// concepts the task must NOT flag; the Has* relations attach attribute
// values to concepts.
const (
	Targets    Relation = "targets"
	Avoids     Relation = "avoids"
	HasShape   Relation = "has_shape"
	HasColor   Relation = "has_color"
	HasTexture Relation = "has_texture"
	HasSize    Relation = "has_size"
	InContext  Relation = "in_context"
)

// AttrRelations lists the attribute-family relations in canonical order.
func AttrRelations() []Relation {
	return []Relation{HasShape, HasColor, HasTexture, HasSize}
}

// Node is a graph vertex.
type Node struct {
	ID    string   `json:"id"`
	Kind  NodeKind `json:"kind"`
	Label string   `json:"label"`
}

// Edge is a weighted, typed, directed edge.
type Edge struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Rel    Relation `json:"rel"`
	Weight float64  `json:"weight"`
}

// Graph is a small property graph with idempotent insertion: re-adding an
// edge keeps the maximum weight seen, so merging evidence from repeated LLM
// passes can only strengthen, never flicker.
type Graph struct {
	nodes map[string]Node
	// edges indexed by from-node for traversal.
	out map[string][]Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: map[string]Node{}, out: map[string][]Edge{}}
}

// AddNode inserts or updates a node. Updating with a different kind panics:
// node identity is structural, and a kind flip is always a generator bug.
func (g *Graph) AddNode(id string, kind NodeKind, label string) {
	if id == "" {
		panic("kg: empty node id")
	}
	if prev, ok := g.nodes[id]; ok && prev.Kind != kind {
		panic(fmt.Sprintf("kg: node %q kind conflict %v vs %v", id, prev.Kind, kind))
	}
	g.nodes[id] = Node{ID: id, Kind: kind, Label: label}
}

// AddEdge inserts a directed edge, creating a stronger weight if the edge
// already exists. Both endpoints must already be nodes.
func (g *Graph) AddEdge(from, to string, rel Relation, weight float64) {
	if _, ok := g.nodes[from]; !ok {
		panic(fmt.Sprintf("kg: edge from unknown node %q", from))
	}
	if _, ok := g.nodes[to]; !ok {
		panic(fmt.Sprintf("kg: edge to unknown node %q", to))
	}
	if weight < 0 || weight > 1 {
		panic(fmt.Sprintf("kg: edge weight %v outside [0,1]", weight))
	}
	for i, e := range g.out[from] {
		if e.To == to && e.Rel == rel {
			if weight > e.Weight {
				g.out[from][i].Weight = weight
			}
			return
		}
	}
	g.out[from] = append(g.out[from], Edge{From: from, To: to, Rel: rel, Weight: weight})
}

// Node returns the node with the given id.
func (g *Graph) Node(id string) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes sorted by ID for deterministic iteration.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns all edges sorted (from, rel, to) for deterministic iteration.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, es := range g.out {
		out = append(out, es...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.To < b.To
	})
	return out
}

// Out returns the outgoing edges of a node with the given relation,
// sorted by descending weight (ties broken by target id).
func (g *Graph) Out(from string, rel Relation) []Edge {
	var out []Edge
	for _, e := range g.out[from] {
		if e.Rel == rel {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Merge folds other into g: nodes are united, edge weights take the max.
// Merge is idempotent: g.Merge(g2); g.Merge(g2) equals a single merge.
func (g *Graph) Merge(other *Graph) {
	for _, n := range other.Nodes() {
		g.AddNode(n.ID, n.Kind, n.Label)
	}
	for _, e := range other.Edges() {
		g.AddEdge(e.From, e.To, e.Rel, e.Weight)
	}
}

// Prune removes edges below minWeight and then drops nodes with no
// remaining edges in either direction (except task nodes, which anchor the
// graph).
func (g *Graph) Prune(minWeight float64) {
	referenced := map[string]bool{}
	for from, es := range g.out {
		kept := es[:0]
		for _, e := range es {
			if e.Weight >= minWeight {
				kept = append(kept, e)
				referenced[e.From] = true
				referenced[e.To] = true
			}
		}
		if len(kept) == 0 {
			delete(g.out, from)
		} else {
			g.out[from] = kept
		}
	}
	for id, n := range g.nodes {
		if n.Kind != TaskNode && !referenced[id] {
			delete(g.nodes, id)
		}
	}
}

// Tasks returns the IDs of all task nodes, sorted.
func (g *Graph) Tasks() []string {
	var out []string
	for id, n := range g.nodes {
		if n.Kind == TaskNode {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// TargetConcepts returns the concept IDs a task targets, strongest first.
func (g *Graph) TargetConcepts(taskID string) []string {
	var out []string
	for _, e := range g.Out(taskID, Targets) {
		out = append(out, e.To)
	}
	return out
}
