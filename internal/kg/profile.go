package kg

import (
	"fmt"

	"itask/internal/scene"
)

// AttrProfile is a soft attribute signature: per attribute family, a weight
// for each possible value. Weights live in [0,1]; an empty family means the
// task expressed no constraint on it.
type AttrProfile struct {
	Shape   map[scene.Shape]float64
	Color   map[scene.Color]float64
	Texture map[scene.Texture]float64
	Size    map[scene.SizeClass]float64
}

// NewAttrProfile returns an empty profile.
func NewAttrProfile() AttrProfile {
	return AttrProfile{
		Shape:   map[scene.Shape]float64{},
		Color:   map[scene.Color]float64{},
		Texture: map[scene.Texture]float64{},
		Size:    map[scene.SizeClass]float64{},
	}
}

// attrNodeID builds the canonical node ID for an attribute value, e.g.
// "attr:color:red".
func attrNodeID(family, value string) string {
	return "attr:" + family + ":" + value
}

// AddAttrValue inserts the attribute node for (family, value) into g and
// returns its ID. Unknown families or values panic: the lexicon and the
// renderer share one vocabulary, so a miss is a programming error.
func AddAttrValue(g *Graph, family, value string) string {
	switch family {
	case "shape":
		if _, ok := scene.ShapeFromName(value); !ok {
			panic(fmt.Sprintf("kg: unknown shape %q", value))
		}
	case "color":
		if _, ok := scene.ColorFromName(value); !ok {
			panic(fmt.Sprintf("kg: unknown color %q", value))
		}
	case "texture":
		if _, ok := scene.TextureFromName(value); !ok {
			panic(fmt.Sprintf("kg: unknown texture %q", value))
		}
	case "size":
		if _, ok := scene.SizeFromName(value); !ok {
			panic(fmt.Sprintf("kg: unknown size %q", value))
		}
	default:
		panic(fmt.Sprintf("kg: unknown attribute family %q", family))
	}
	id := attrNodeID(family, value)
	g.AddNode(id, AttrNode, value)
	return id
}

// familyOf maps an attribute relation to its family name.
func familyOf(rel Relation) string {
	switch rel {
	case HasShape:
		return "shape"
	case HasColor:
		return "color"
	case HasTexture:
		return "texture"
	case HasSize:
		return "size"
	}
	return ""
}

// ConceptProfile reads the attribute edges of a concept node into a soft
// profile.
func ConceptProfile(g *Graph, conceptID string) AttrProfile {
	p := NewAttrProfile()
	for _, rel := range AttrRelations() {
		for _, e := range g.Out(conceptID, rel) {
			n, ok := g.Node(e.To)
			if !ok {
				continue
			}
			switch rel {
			case HasShape:
				if s, ok := scene.ShapeFromName(n.Label); ok && e.Weight > p.Shape[s] {
					p.Shape[s] = e.Weight
				}
			case HasColor:
				if c, ok := scene.ColorFromName(n.Label); ok && e.Weight > p.Color[c] {
					p.Color[c] = e.Weight
				}
			case HasTexture:
				if x, ok := scene.TextureFromName(n.Label); ok && e.Weight > p.Texture[x] {
					p.Texture[x] = e.Weight
				}
			case HasSize:
				if s, ok := scene.SizeFromName(n.Label); ok && e.Weight > p.Size[s] {
					p.Size[s] = e.Weight
				}
			}
		}
	}
	return p
}

// Match scores how well a concrete class profile satisfies this soft
// profile. Each constrained family contributes its weight for the class's
// value, averaged over constrained families; an unconstrained family is
// neutral (contributes nothing). Result is in [0,1].
func (p AttrProfile) Match(cp scene.Profile) float64 {
	var sum float64
	var families int
	if len(p.Shape) > 0 {
		sum += p.Shape[cp.Shape]
		families++
	}
	if len(p.Color) > 0 {
		sum += p.Color[cp.Color]
		families++
	}
	if len(p.Texture) > 0 {
		sum += p.Texture[cp.Texture]
		families++
	}
	if len(p.Size) > 0 {
		sum += p.Size[cp.Size]
		families++
	}
	if families == 0 {
		return 0
	}
	return sum / float64(families)
}

// VectorDim is the length of a profile feature vector: one slot per
// attribute value across all families.
const VectorDim = 6 + 9 + 3 + 3 // shapes + colors + textures + sizes

// Vector encodes the soft profile as a fixed-length feature vector, the
// representation used to initialize few-shot class prototypes.
func (p AttrProfile) Vector() []float64 {
	v := make([]float64, VectorDim)
	for s, w := range p.Shape {
		v[int(s)] = w
	}
	for c, w := range p.Color {
		v[6+int(c)] = w
	}
	for t, w := range p.Texture {
		v[15+int(t)] = w
	}
	for s, w := range p.Size {
		v[18+int(s)] = w
	}
	return v
}

// ProfileOfClass encodes a concrete class profile as a one-hot soft profile,
// so classes and concepts live in the same vector space.
func ProfileOfClass(c scene.ClassID) AttrProfile {
	cp := c.Profile()
	p := NewAttrProfile()
	p.Shape[cp.Shape] = 1
	p.Color[cp.Color] = 1
	p.Texture[cp.Texture] = 1
	p.Size[cp.Size] = 1
	return p
}

// ClassPriors computes, for a task node, the relevance of every global class
// in [0,1]: the best Match over the task's target concepts, zeroed for
// concepts the task explicitly avoids more strongly than it targets.
func ClassPriors(g *Graph, taskID string) []float64 {
	priors := make([]float64, scene.NumClasses)
	targets := g.TargetConcepts(taskID)
	var avoid []AttrProfile
	for _, e := range g.Out(taskID, Avoids) {
		avoid = append(avoid, ConceptProfile(g, e.To))
	}
	for _, conceptID := range targets {
		cp := ConceptProfile(g, conceptID)
		for c := scene.ClassID(0); c < scene.NumClasses; c++ {
			m := cp.Match(c.Profile())
			if m > priors[c] {
				priors[c] = m
			}
		}
	}
	for _, ap := range avoid {
		for c := scene.ClassID(0); c < scene.NumClasses; c++ {
			if ap.Match(c.Profile()) > priors[c] {
				priors[c] = 0
			}
		}
	}
	return priors
}

// RelevantClasses returns the classes whose prior meets threshold, strongest
// first.
func RelevantClasses(g *Graph, taskID string, threshold float64) []scene.ClassID {
	priors := ClassPriors(g, taskID)
	type scored struct {
		c scene.ClassID
		p float64
	}
	var keep []scored
	for c := scene.ClassID(0); c < scene.NumClasses; c++ {
		if priors[c] >= threshold {
			keep = append(keep, scored{c, priors[c]})
		}
	}
	// Stable order: descending prior, then class ID.
	for i := 1; i < len(keep); i++ {
		for j := i; j > 0 && (keep[j].p > keep[j-1].p || (keep[j].p == keep[j-1].p && keep[j].c < keep[j-1].c)); j-- {
			keep[j], keep[j-1] = keep[j-1], keep[j]
		}
	}
	out := make([]scene.ClassID, len(keep))
	for i, k := range keep {
		out[i] = k.c
	}
	return out
}
