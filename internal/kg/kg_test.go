package kg

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"itask/internal/scene"
)

// buildTestGraph constructs a small task graph by hand: a patrol task that
// targets a "vehicle" concept (square, blue/gray, medium/large) and avoids a
// "vegetation" concept (green).
func buildTestGraph() *Graph {
	g := New()
	g.AddNode("task:patrol", TaskNode, "patrol")
	g.AddNode("concept:vehicle", ConceptNode, "vehicle")
	g.AddNode("concept:vegetation", ConceptNode, "vegetation")
	g.AddEdge("task:patrol", "concept:vehicle", Targets, 1.0)
	g.AddEdge("task:patrol", "concept:vegetation", Avoids, 0.9)

	shape := AddAttrValue(g, "shape", "square")
	blue := AddAttrValue(g, "color", "blue")
	gray := AddAttrValue(g, "color", "gray")
	med := AddAttrValue(g, "size", "medium")
	large := AddAttrValue(g, "size", "large")
	g.AddEdge("concept:vehicle", shape, HasShape, 0.95)
	g.AddEdge("concept:vehicle", blue, HasColor, 0.8)
	g.AddEdge("concept:vehicle", gray, HasColor, 0.7)
	g.AddEdge("concept:vehicle", med, HasSize, 0.6)
	g.AddEdge("concept:vehicle", large, HasSize, 0.6)

	green := AddAttrValue(g, "color", "green")
	g.AddEdge("concept:vegetation", green, HasColor, 0.9)
	return g
}

func TestAddNodeAndEdgeBasics(t *testing.T) {
	g := New()
	g.AddNode("a", TaskNode, "A")
	g.AddNode("b", ConceptNode, "B")
	g.AddEdge("a", "b", Targets, 0.5)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	// Idempotent edge insert keeps max weight.
	g.AddEdge("a", "b", Targets, 0.3)
	if g.NumEdges() != 1 || g.Edges()[0].Weight != 0.5 {
		t.Error("lower re-insert should not change edge")
	}
	g.AddEdge("a", "b", Targets, 0.8)
	if g.Edges()[0].Weight != 0.8 {
		t.Error("higher re-insert should raise weight")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.AddNode("a", TaskNode, "A")
	for name, f := range map[string]func(){
		"unknown from": func() { g.AddEdge("x", "a", Targets, 0.5) },
		"unknown to":   func() { g.AddEdge("a", "x", Targets, 0.5) },
		"bad weight":   func() { g.AddNode("b", ConceptNode, "B"); g.AddEdge("a", "b", Targets, 1.5) },
		"empty id":     func() { g.AddNode("", TaskNode, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKindConflictPanics(t *testing.T) {
	g := New()
	g.AddNode("n", TaskNode, "N")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	g.AddNode("n", ConceptNode, "N")
}

func TestOutSortedByWeight(t *testing.T) {
	g := buildTestGraph()
	colors := g.Out("concept:vehicle", HasColor)
	if len(colors) != 2 {
		t.Fatalf("got %d color edges", len(colors))
	}
	if colors[0].Weight < colors[1].Weight {
		t.Error("Out should sort by descending weight")
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := buildTestGraph()
	b := buildTestGraph()
	a.Merge(b)
	n1, e1 := a.NumNodes(), a.NumEdges()
	a.Merge(b)
	if a.NumNodes() != n1 || a.NumEdges() != e1 {
		t.Error("merge is not idempotent")
	}
}

func TestMergeUnion(t *testing.T) {
	a := buildTestGraph()
	b := New()
	b.AddNode("task:other", TaskNode, "other")
	b.AddNode("concept:thing", ConceptNode, "thing")
	b.AddEdge("task:other", "concept:thing", Targets, 0.4)
	before := a.NumNodes()
	a.Merge(b)
	if a.NumNodes() != before+2 {
		t.Errorf("merge should add 2 nodes, got %d -> %d", before, a.NumNodes())
	}
}

func TestPrune(t *testing.T) {
	g := buildTestGraph()
	// Add a weak edge to a throwaway concept.
	g.AddNode("concept:weak", ConceptNode, "weak")
	g.AddEdge("task:patrol", "concept:weak", Targets, 0.05)
	g.Prune(0.3)
	if _, ok := g.Node("concept:weak"); ok {
		t.Error("weak concept should be pruned")
	}
	if _, ok := g.Node("concept:vehicle"); !ok {
		t.Error("strong concept should survive")
	}
	if _, ok := g.Node("task:patrol"); !ok {
		t.Error("task nodes must survive pruning")
	}
	for _, e := range g.Edges() {
		if e.Weight < 0.3 {
			t.Errorf("edge %+v survived pruning", e)
		}
	}
}

func TestTasksAndTargets(t *testing.T) {
	g := buildTestGraph()
	tasks := g.Tasks()
	if len(tasks) != 1 || tasks[0] != "task:patrol" {
		t.Fatalf("tasks = %v", tasks)
	}
	targets := g.TargetConcepts("task:patrol")
	if len(targets) != 1 || targets[0] != "concept:vehicle" {
		t.Fatalf("targets = %v", targets)
	}
}

func TestConceptProfile(t *testing.T) {
	g := buildTestGraph()
	p := ConceptProfile(g, "concept:vehicle")
	if p.Shape[scene.Square] != 0.95 {
		t.Errorf("shape weight = %v", p.Shape[scene.Square])
	}
	if p.Color[scene.Blue] != 0.8 || p.Color[scene.Gray] != 0.7 {
		t.Errorf("color weights = %v", p.Color)
	}
	if len(p.Texture) != 0 {
		t.Error("texture should be unconstrained")
	}
}

func TestProfileMatch(t *testing.T) {
	g := buildTestGraph()
	p := ConceptProfile(g, "concept:vehicle")
	// Car: square blue medium -> (0.95 + 0.8 + 0.6)/3
	carScore := p.Match(scene.Car.Profile())
	want := (0.95 + 0.8 + 0.6) / 3
	if math.Abs(carScore-want) > 1e-9 {
		t.Errorf("car match = %v, want %v", carScore, want)
	}
	// Lesion: disc red small -> 0 on all constrained families.
	if s := p.Match(scene.Lesion.Profile()); s != 0 {
		t.Errorf("lesion match = %v, want 0", s)
	}
	// Truck (square gray large) should also score high.
	if p.Match(scene.Truck.Profile()) < 0.7 {
		t.Errorf("truck match too low: %v", p.Match(scene.Truck.Profile()))
	}
	// Empty profile matches nothing.
	if NewAttrProfile().Match(scene.Car.Profile()) != 0 {
		t.Error("empty profile should match 0")
	}
}

func TestClassPriors(t *testing.T) {
	g := buildTestGraph()
	priors := ClassPriors(g, "task:patrol")
	if len(priors) != int(scene.NumClasses) {
		t.Fatalf("priors length %d", len(priors))
	}
	if priors[scene.Car] <= priors[scene.Lesion] {
		t.Error("car should outrank lesion for a vehicle task")
	}
	if priors[scene.Car] <= priors[scene.Pedestrian] {
		t.Error("car should outrank pedestrian (triangle orange)")
	}
	// Avoided green concepts zero out green classes.
	if priors[scene.UnripeFruit] != 0 {
		t.Errorf("green class prior = %v, want 0 (avoided)", priors[scene.UnripeFruit])
	}
	for c, p := range priors {
		if p < 0 || p > 1 {
			t.Errorf("prior[%d] = %v outside [0,1]", c, p)
		}
	}
}

func TestRelevantClasses(t *testing.T) {
	g := buildTestGraph()
	rel := RelevantClasses(g, "task:patrol", 0.6)
	if len(rel) == 0 {
		t.Fatal("no relevant classes")
	}
	// All returned classes meet the threshold and are sorted descending.
	priors := ClassPriors(g, "task:patrol")
	prev := 2.0
	for _, c := range rel {
		if priors[c] < 0.6 {
			t.Errorf("class %v below threshold", c)
		}
		if priors[c] > prev {
			t.Error("not sorted by descending prior")
		}
		prev = priors[c]
	}
	// Car and truck must be in there.
	found := map[scene.ClassID]bool{}
	for _, c := range rel {
		found[c] = true
	}
	if !found[scene.Car] || !found[scene.Truck] {
		t.Errorf("vehicle classes missing from %v", rel)
	}
}

func TestAddAttrValueValidation(t *testing.T) {
	g := New()
	for _, bad := range [][2]string{
		{"shape", "hexagon"},
		{"color", "mauve"},
		{"texture", "fuzzy"},
		{"size", "gigantic"},
		{"weight", "heavy"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddAttrValue(%q,%q) should panic", bad[0], bad[1])
				}
			}()
			AddAttrValue(g, bad[0], bad[1])
		}()
	}
}

func TestProfileVector(t *testing.T) {
	p := ProfileOfClass(scene.Car)
	v := p.Vector()
	if len(v) != VectorDim {
		t.Fatalf("vector dim %d, want %d", len(v), VectorDim)
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum != 4 { // one-hot in each of 4 families
		t.Errorf("one-hot class vector sums to %v, want 4", sum)
	}
	// Car and Truck share shape+texture slots but differ in color and size.
	vt := ProfileOfClass(scene.Truck).Vector()
	diff := 0
	for i := range v {
		if v[i] != vt[i] {
			diff++
		}
	}
	if diff != 4 { // color pair + size pair
		t.Errorf("car/truck vectors differ in %d slots, want 4", diff)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildTestGraph()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost content: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Priors must be identical after a round trip.
	p1 := ClassPriors(g, "task:patrol")
	p2 := ClassPriors(g2, "task:patrol")
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prior %d changed after round trip", i)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	for name, doc := range map[string]string{
		"dangling edge": `{"nodes":[{"id":"a","kind":0,"label":"a"}],"edges":[{"from":"a","to":"x","rel":"targets","weight":0.5}]}`,
		"bad weight":    `{"nodes":[{"id":"a","kind":0,"label":"a"},{"id":"b","kind":1,"label":"b"}],"edges":[{"from":"a","to":"b","rel":"targets","weight":2}]}`,
		"empty id":      `{"nodes":[{"id":"","kind":0,"label":""}],"edges":[]}`,
		"not json":      `{{{`,
	} {
		if _, err := Read(bytes.NewReader([]byte(doc))); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildTestGraph()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph itask_kg", "doubleoctagon", // task node shape
		"shape=box",      // concept shape
		"style=dashed",   // avoids edge
		"ntask_patrol",   // sanitized id
		`"targets 1.00"`, // edge label
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Deterministic.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("DOT output not deterministic")
	}
}

func TestDeterministicSerialization(t *testing.T) {
	g := buildTestGraph()
	a, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("serialization not deterministic")
	}
}
