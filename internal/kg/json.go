package kg

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the wire representation of a Graph.
type graphJSON struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// MarshalJSON serializes the graph deterministically (sorted nodes/edges).
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{Nodes: g.Nodes(), Edges: g.Edges()})
}

// UnmarshalJSON parses a graph, validating node references and weights.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	fresh := New()
	for _, n := range gj.Nodes {
		if n.ID == "" {
			return fmt.Errorf("kg: node with empty id")
		}
		fresh.AddNode(n.ID, n.Kind, n.Label)
	}
	for _, e := range gj.Edges {
		if _, ok := fresh.nodes[e.From]; !ok {
			return fmt.Errorf("kg: edge from unknown node %q", e.From)
		}
		if _, ok := fresh.nodes[e.To]; !ok {
			return fmt.Errorf("kg: edge to unknown node %q", e.To)
		}
		if e.Weight < 0 || e.Weight > 1 {
			return fmt.Errorf("kg: edge weight %v outside [0,1]", e.Weight)
		}
		fresh.AddEdge(e.From, e.To, e.Rel, e.Weight)
	}
	*g = *fresh
	return nil
}

// Write serializes the graph as indented JSON to w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read parses a graph from JSON in r.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, err
	}
	return g, nil
}
