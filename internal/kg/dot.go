package kg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visualization:
// task nodes as double octagons, concepts as boxes, attributes as ellipses,
// edges labeled with relation and weight. Output is deterministic.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph itask_kg {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes() {
		shape := "ellipse"
		switch n.Kind {
		case TaskNode:
			shape = "doubleoctagon"
		case ConceptNode:
			shape = "box"
		}
		fmt.Fprintf(&b, "  %s [label=%s, shape=%s];\n", dotID(n.ID), dotString(n.Label), shape)
	}
	for _, e := range g.Edges() {
		style := "solid"
		if e.Rel == Avoids {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %s -> %s [label=%s, style=%s];\n",
			dotID(e.From), dotID(e.To),
			dotString(fmt.Sprintf("%s %.2f", e.Rel, e.Weight)), style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// dotID turns a node ID into a safe DOT identifier.
func dotID(id string) string {
	var b strings.Builder
	b.WriteByte('n')
	for _, r := range id {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// dotString quotes a label.
func dotString(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
