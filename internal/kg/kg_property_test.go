package kg

import (
	"fmt"
	"testing"
	"testing/quick"

	"itask/internal/scene"
	"itask/internal/tensor"
)

// randomGraph builds a small random-but-valid task graph.
func randomGraph(rng *tensor.RNG) *Graph {
	g := New()
	taskID := fmt.Sprintf("task:t%d", rng.Intn(3))
	g.AddNode(taskID, TaskNode, "t")
	nConcepts := rng.Intn(3) + 1
	shapes := []string{"disc", "square", "triangle", "cross", "ring", "diamond"}
	colors := []string{"red", "green", "blue", "gray", "white"}
	for i := 0; i < nConcepts; i++ {
		cid := fmt.Sprintf("concept:c%d", rng.Intn(4))
		g.AddNode(cid, ConceptNode, "c")
		rel := Targets
		if rng.Bool(0.3) {
			rel = Avoids
		}
		g.AddEdge(taskID, cid, rel, 0.1+0.9*rng.Float64())
		if rng.Bool(0.8) {
			id := AddAttrValue(g, "shape", shapes[rng.Intn(len(shapes))])
			g.AddEdge(cid, id, HasShape, 0.1+0.9*rng.Float64())
		}
		if rng.Bool(0.8) {
			id := AddAttrValue(g, "color", colors[rng.Intn(len(colors))])
			g.AddEdge(cid, id, HasColor, 0.1+0.9*rng.Float64())
		}
	}
	return g
}

// TestMergeCommutativeProperty: a.Merge(b) and b.Merge(a) produce graphs
// with identical serialized content (node/edge sets with max weights).
func TestMergeCommutativeProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		ga1 := randomGraph(tensor.NewRNG(seedA))
		gb1 := randomGraph(tensor.NewRNG(seedB))
		ga2 := randomGraph(tensor.NewRNG(seedA))
		gb2 := randomGraph(tensor.NewRNG(seedB))

		ga1.Merge(gb1) // A ∪ B
		gb2.Merge(ga2) // B ∪ A
		j1, err1 := ga1.MarshalJSON()
		j2, err2 := gb2.MarshalJSON()
		return err1 == nil && err2 == nil && string(j1) == string(j2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPriorsInRangeProperty: class priors of any random graph stay in [0,1]
// and are deterministic.
func TestPriorsInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(tensor.NewRNG(seed))
		for _, taskID := range g.Tasks() {
			p1 := ClassPriors(g, taskID)
			p2 := ClassPriors(g, taskID)
			if len(p1) != int(scene.NumClasses) {
				return false
			}
			for i := range p1 {
				if p1[i] < 0 || p1[i] > 1 || p1[i] != p2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPruneIdempotentProperty: pruning twice equals pruning once.
func TestPruneIdempotentProperty(t *testing.T) {
	f := func(seed uint64, thSel uint8) bool {
		th := float64(thSel%10) / 10
		g1 := randomGraph(tensor.NewRNG(seed))
		g2 := randomGraph(tensor.NewRNG(seed))
		g1.Prune(th)
		g2.Prune(th)
		g2.Prune(th)
		j1, _ := g1.MarshalJSON()
		j2, _ := g2.MarshalJSON()
		return string(j1) == string(j2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPreservesPriorsProperty: JSON round trip never changes the
// derived priors.
func TestRoundTripPreservesPriorsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(tensor.NewRNG(seed))
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		g2 := New()
		if err := g2.UnmarshalJSON(data); err != nil {
			return false
		}
		for _, taskID := range g.Tasks() {
			p1 := ClassPriors(g, taskID)
			p2 := ClassPriors(g2, taskID)
			for i := range p1 {
				if p1[i] != p2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
