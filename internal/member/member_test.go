package member

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for lease-timing tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testConfig(c *fakeClock, ramp int) Config {
	return Config{LeaseTTL: time.Second, SuspectAfter: 400 * time.Millisecond, RampWindows: ramp, Now: c.now}
}

func TestLifecycleJoinConvergeRampExpireRejoin(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 4))

	// Announce behind the committed epoch: joining, weight 0, not routable.
	e, changed, rejoin, err := tbl.Announce("s1", Meta{Addr: "http://s1", Epoch: 1, Capacity: 2}, 3)
	if err != nil || rejoin {
		t.Fatalf("announce: err=%v rejoin=%v", err, rejoin)
	}
	if e.State != StateJoining || e.Weight != 0 || changed {
		t.Fatalf("behind-epoch announce: %+v changed=%v, want joining/0/false", e, changed)
	}

	// Renew while still behind: lease extends but stays gated.
	clk.advance(300 * time.Millisecond)
	e, _, err = tbl.Renew("s1", 2, 3)
	if err != nil || e.State != StateJoining {
		t.Fatalf("behind renew: %+v err=%v", e, err)
	}

	// Epoch catches up: warming at 1/4, then ramps 2/4, 3/4, active.
	e, changed, err = tbl.Renew("s1", 3, 3)
	if err != nil || !changed || e.State != StateWarming || e.Weight != 0.25 {
		t.Fatalf("converge: %+v changed=%v err=%v, want warming 0.25", e, changed, err)
	}
	for i, want := range []float64{0.5, 0.75, 1} {
		e, _, err = tbl.Renew("s1", 3, 3)
		if err != nil || e.Weight != want {
			t.Fatalf("ramp window %d: weight %g err=%v, want %g", i+2, e.Weight, err, want)
		}
	}
	if e.State != StateActive {
		t.Fatalf("fully ramped state = %v, want active", e.State)
	}

	// Miss heartbeats: suspect at 400ms (still routable), expired at 1s.
	clk.advance(500 * time.Millisecond)
	if exp := tbl.Sweep(); len(exp) != 0 {
		t.Fatalf("suspect sweep expired %v", exp)
	}
	e, _ = tbl.Entry("s1")
	if e.State != StateSuspect || !e.State.Routable() || e.Weight != 1 {
		t.Fatalf("suspect: %+v, want routable at weight 1", e)
	}
	clk.advance(600 * time.Millisecond)
	exp := tbl.Sweep()
	if len(exp) != 1 || exp[0].ID != "s1" || exp[0].State != StateExpired {
		t.Fatalf("expiry sweep: %v", exp)
	}
	if _, _, err := tbl.Renew("s1", 3, 3); err != ErrUnknown {
		t.Fatalf("renew of expired lease: %v, want ErrUnknown", err)
	}

	// Rejoin: fresh lease, counted, gated on the (now higher) epoch again.
	e, _, rejoin, err = tbl.Announce("s1", Meta{Addr: "http://s1", Epoch: 3, Capacity: 2}, 5)
	if err != nil || !rejoin || e.State != StateJoining {
		t.Fatalf("rejoin announce: %+v rejoin=%v err=%v", e, rejoin, err)
	}
	st := tbl.Stats()
	if st.LeasesGranted != 2 || st.Rejoins != 1 || st.LeaseExpirations != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestSuspectRenewalRestoresPreSuspectPosition(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 4))
	tbl.Announce("s1", Meta{Epoch: 1}, 0) // converges immediately (committed 0)
	tbl.Renew("s1", 1, 0)                 // ramp 2/4
	clk.advance(500 * time.Millisecond)
	tbl.Sweep()
	if e, _ := tbl.Entry("s1"); e.State != StateSuspect || e.Weight != 0.5 {
		t.Fatalf("pre-renewal: %+v", e)
	}
	e, _, err := tbl.Renew("s1", 1, 0)
	if err != nil || e.State != StateWarming || e.Weight != 0.5 {
		t.Fatalf("post-renewal: %+v err=%v, want warming back at 0.5", e, err)
	}
}

func TestGracefulLeaveAndRejoin(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 1))
	e, _, _, _ := tbl.Announce("s1", Meta{Epoch: 1}, 0)
	if e.State != StateActive { // RampWindows=1: full weight on convergence
		t.Fatalf("announce with ramp=1: %+v, want active", e)
	}
	e, wasRoutable := tbl.Leave("s1")
	if !wasRoutable || e.State != StateLeft {
		t.Fatalf("leave: %+v routable=%v", e, wasRoutable)
	}
	if _, again := tbl.Leave("s1"); again {
		t.Fatal("double leave reported a live member")
	}
	// Left members never expire (no double counting) but can rejoin.
	clk.advance(time.Hour)
	if exp := tbl.Sweep(); len(exp) != 0 {
		t.Fatalf("left member expired: %v", exp)
	}
	_, _, rejoin, err := tbl.Announce("s1", Meta{Epoch: 1}, 0)
	if err != nil || !rejoin {
		t.Fatalf("rejoin after leave: rejoin=%v err=%v", rejoin, err)
	}
	st := tbl.Stats()
	if st.GracefulLeaves != 1 || st.Rejoins != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestStaticMembersSkipLeases(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 4))
	e, changed, _, err := tbl.Announce("seed", Meta{Addr: "seed", Static: true}, 99)
	if err != nil || !changed || e.State != StateActive || e.Weight != 1 {
		t.Fatalf("static announce: %+v changed=%v err=%v", e, changed, err)
	}
	clk.advance(time.Hour)
	if exp := tbl.Sweep(); len(exp) != 0 {
		t.Fatalf("static member expired: %v", exp)
	}
	if st := tbl.Stats(); st.LeasesGranted != 0 {
		t.Fatalf("static seed granted a lease: %+v", st)
	}
	if !tbl.Remove("seed") {
		t.Fatal("remove of static member failed")
	}
}

func TestAnnounceOfLiveMemberRenews(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 2))
	tbl.Announce("s1", Meta{Addr: "a", Epoch: 1, Capacity: 1}, 0)
	clk.advance(900 * time.Millisecond) // one sweep away from expiry
	e, _, rejoin, err := tbl.Announce("s1", Meta{Addr: "b", Epoch: 1, Capacity: 8}, 0)
	if err != nil || rejoin {
		t.Fatalf("re-announce: rejoin=%v err=%v", rejoin, err)
	}
	if e.Addr != "b" || e.Capacity != 8 {
		t.Fatalf("meta not refreshed: %+v", e)
	}
	clk.advance(300 * time.Millisecond) // 1.2s after first lease, 0.3s after renewal
	if exp := tbl.Sweep(); len(exp) != 0 {
		t.Fatalf("renewed member expired: %v", exp)
	}
	if st := tbl.Stats(); st.LeasesGranted != 1 || st.Renewals == 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestConvergeDoesNotExtendLease(t *testing.T) {
	clk := newClock()
	tbl := NewTable(testConfig(clk, 2))
	tbl.Announce("s1", Meta{Epoch: 1}, 5) // gated
	e, changed := tbl.Converge("s1", 5, 5)
	if !changed || e.State != StateWarming {
		t.Fatalf("converge: %+v changed=%v", e, changed)
	}
	// The lease clock started at announce; convergence must not reset it.
	clk.advance(1100 * time.Millisecond)
	if exp := tbl.Sweep(); len(exp) != 1 {
		t.Fatalf("converged-but-unrenewed member survived: %v", exp)
	}
}

func TestNoLeaseTTLRejectsLeasedAnnounce(t *testing.T) {
	tbl := NewTable(Config{})
	if _, _, _, err := tbl.Announce("s1", Meta{}, 0); err != ErrNoLeases {
		t.Fatalf("leased announce on static-only table: %v, want ErrNoLeases", err)
	}
	if _, _, _, err := tbl.Announce("seed", Meta{Static: true}, 0); err != nil {
		t.Fatalf("static announce on static-only table: %v", err)
	}
}
