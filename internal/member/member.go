// Package member is the fleet-membership half of the distributed serve
// tier's self-healing story: a lease-based table of backend shards that the
// gateway consults to decide who is routable right now, instead of trusting
// a static list forever.
//
// Lifecycle of a leased member:
//
//		announce ──▶ joining ──(epoch ≥ committed)──▶ warming ──(N renewals)──▶ active
//		                                                 │                        │
//		                            missed renewals ─────┴──▶ suspect ──▶ expired │
//		                                                          ▲               │
//		                                                          └───────────────┘
//		graceful leave (any live state) ──▶ left
//
//	  - A shard announces itself with its address, its committed registry
//	    epoch, and a capacity hint, and receives a lease. Renewals (heartbeats)
//	    extend the lease.
//	  - A newly announced or rejoining shard is not routable until its epoch
//	    has converged to the cluster's committed registry epoch ("joining"):
//	    a shard that rebooted with stale models must not serve old-version
//	    answers just because it came back fast.
//	  - Once converged it "warms": its routing weight ramps linearly over
//	    RampWindows renewal windows (1/N, 2/N, … 1), so a shard with a cold
//	    result cache receives a growing slice of the key space instead of a
//	    full zipf blast on its first second of life.
//	  - A member that misses renewals turns "suspect" after SuspectAfter
//	    (still routable — one lost heartbeat is not death) and "expired" at
//	    LeaseTTL, at which point the gateway removes it from the ring. An
//	    expired or left member that announces again is a rejoin and starts a
//	    fresh joining→warming cycle.
//	  - Static members (the gateway's seed -backends list) skip all of this:
//	    they are active at full weight immediately and never expire. They
//	    exist so a leased fleet and a hand-configured fleet can mix.
//
// The table is transport-agnostic and does no I/O: the gateway feeds it
// announces, renewals, leaves, and sweep ticks, and rebuilds its ring from
// Snapshot whenever the table reports a routability or weight change. The
// clock is injectable (Config.Now), so lease timing is unit-testable without
// sleeping.
package member

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a member's lifecycle position.
type State int

const (
	// StateJoining: announced but not yet converged to the committed
	// registry epoch. Not routable.
	StateJoining State = iota
	// StateWarming: converged, slow-start ramp in progress. Routable at
	// partial weight.
	StateWarming
	// StateActive: fully ramped. Routable at weight 1.
	StateActive
	// StateSuspect: missed at least one renewal window. Still routable —
	// the lease's grace period is exactly the benefit of doubt — but the
	// next sweep past LeaseTTL expires it.
	StateSuspect
	// StateExpired: the lease lapsed. Removed from routing; the entry is
	// kept so a re-announce counts as a rejoin.
	StateExpired
	// StateLeft: deregistered gracefully (the shard said goodbye before
	// draining). Removed from routing.
	StateLeft
)

func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateWarming:
		return "warming"
	case StateActive:
		return "active"
	case StateSuspect:
		return "suspect"
	case StateExpired:
		return "expired"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Routable reports whether a member in state s may receive new work.
func (s State) Routable() bool {
	return s == StateWarming || s == StateActive || s == StateSuspect
}

// Meta is what a shard announces about itself.
type Meta struct {
	// Addr is the shard's reachable address (for HTTP fleets, its base URL).
	Addr string
	// Epoch is the shard's current route epoch (its registry snapshot
	// sequence). Compared against the cluster's committed epoch to gate
	// routability.
	Epoch uint64
	// Capacity is an advisory concurrency hint (e.g. worker count). The
	// table records it for observability; it does not affect weights yet.
	Capacity int
	// Static marks a seed member: active immediately, full weight, no
	// lease, never expires.
	Static bool
}

// Config sizes the table.
type Config struct {
	// LeaseTTL is how long a lease lives without renewal before the member
	// expires. 0 disables leased membership (static members only).
	LeaseTTL time.Duration
	// SuspectAfter is how long without renewal before a member is marked
	// suspect. 0 defaults to LeaseTTL/2.
	SuspectAfter time.Duration
	// RampWindows is how many renewal windows the slow-start ramp spans:
	// the first window serves at weight 1/N, the Nth at 1. 0 defaults to 4;
	// 1 disables the ramp (full weight on convergence).
	RampWindows int
	// Now is the clock (defaults to time.Now). Injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 || c.SuspectAfter > c.LeaseTTL {
		c.SuspectAfter = c.LeaseTTL / 2
	}
	if c.RampWindows <= 0 {
		c.RampWindows = 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Entry is one member's observable state.
type Entry struct {
	ID       string
	Addr     string
	State    State
	Epoch    uint64
	Capacity int
	// Weight is the member's routing weight in [0, 1]: 0 while joining,
	// ramp/RampWindows while warming, 1 once active. The gateway scales the
	// member's virtual-node count by it.
	Weight float64
	// ExpiresAt is the lease deadline (zero for static members).
	ExpiresAt time.Time
	Static    bool
}

// Counters are the table's monotonic membership counters.
type Counters struct {
	// LeasesGranted counts announces that created or revived a member
	// (first joins and rejoins both grant a lease; static seeds do not).
	LeasesGranted uint64 `json:"leases_granted"`
	// Renewals counts lease extensions (heartbeats and announce-as-renew).
	Renewals uint64 `json:"renewals,omitempty"`
	// LeaseExpirations counts leases that lapsed without renewal.
	LeaseExpirations uint64 `json:"lease_expirations,omitempty"`
	// Rejoins counts announces that revived an expired or left member.
	Rejoins uint64 `json:"rejoins,omitempty"`
	// GracefulLeaves counts explicit deregistrations.
	GracefulLeaves uint64 `json:"graceful_leaves,omitempty"`
}

// ErrUnknown is returned by Renew for a member that never announced (or
// whose entry was removed): the shard must re-announce to get a new lease.
var ErrUnknown = errors.New("member: unknown member (announce first)")

// ErrNoLeases is returned by Announce when the table was configured without
// a LeaseTTL and the member is not static.
var ErrNoLeases = errors.New("member: leased membership disabled (no LeaseTTL)")

type entry struct {
	id       string
	addr     string
	state    State
	epoch    uint64
	capacity int
	static   bool
	ramp     int // completed warming windows, [0, RampWindows]
	// renewedAt is the last lease grant/extension; suspect and expiry
	// deadlines derive from it.
	renewedAt time.Time
}

func (e *entry) weight(rampWindows int) float64 {
	switch e.state {
	case StateActive:
		return 1
	case StateWarming, StateSuspect:
		if e.ramp >= rampWindows {
			return 1
		}
		return float64(e.ramp) / float64(rampWindows)
	default:
		return 0
	}
}

func (e *entry) view(cfg Config) Entry {
	v := Entry{
		ID:       e.id,
		Addr:     e.addr,
		State:    e.state,
		Epoch:    e.epoch,
		Capacity: e.capacity,
		Weight:   e.weight(cfg.RampWindows),
		Static:   e.static,
	}
	if !e.static && e.state.Routable() || e.state == StateJoining {
		v.ExpiresAt = e.renewedAt.Add(cfg.LeaseTTL)
	}
	return v
}

// Table is the membership table. All methods are safe for concurrent use.
type Table struct {
	mu       sync.Mutex
	cfg      Config
	entries  map[string]*entry
	counters Counters
}

// NewTable builds a table. A zero Config gives a static-only table.
func NewTable(cfg Config) *Table {
	return &Table{cfg: cfg.withDefaults(), entries: map[string]*entry{}}
}

// Announce registers or renews a member. committed is the cluster's current
// committed registry epoch, the convergence gate for new and rejoining
// members. It reports the member's resulting view, whether the routable set
// or a weight changed (the caller should rebuild its ring), and whether this
// announce revived a dead member (a rejoin — the caller should reset any
// per-incarnation health state).
func (t *Table) Announce(id string, m Meta, committed uint64) (Entry, bool, bool, error) {
	if id == "" {
		return Entry{}, false, false, errors.New("member: empty id")
	}
	if !m.Static && t.cfg.LeaseTTL <= 0 {
		return Entry{}, false, false, ErrNoLeases
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Now()
	e, ok := t.entries[id]
	rejoin := ok && (e.state == StateExpired || e.state == StateLeft)
	if !ok || rejoin {
		e = &entry{id: id}
		t.entries[id] = e
		if m.Static {
			e.static = true
			e.state = StateActive
		} else {
			t.counters.LeasesGranted++
			if rejoin {
				t.counters.Rejoins++
			}
			e.state = StateJoining
		}
		e.addr, e.epoch, e.capacity = m.Addr, m.Epoch, m.Capacity
		e.renewedAt = now
		changed := t.advanceLocked(e, m.Epoch, committed)
		return e.view(t.cfg), e.state.Routable() || changed, rejoin, nil
	}
	// Live member re-announcing: treat as a renewal plus a meta refresh.
	if m.Addr != "" {
		e.addr = m.Addr
	}
	if m.Capacity != 0 {
		e.capacity = m.Capacity
	}
	changed := t.renewLocked(e, m.Epoch, committed, now)
	return e.view(t.cfg), changed, false, nil
}

// Renew extends a member's lease (one heartbeat), records its epoch, and
// advances convergence and the slow-start ramp. It reports the member's view
// and whether routability or weight changed.
func (t *Table) Renew(id string, epoch, committed uint64) (Entry, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.state == StateExpired || e.state == StateLeft {
		return Entry{}, false, ErrUnknown
	}
	changed := t.renewLocked(e, epoch, committed, t.cfg.Now())
	return e.view(t.cfg), changed, nil
}

// renewLocked is the shared renewal path: extend the lease, lift suspicion,
// converge a joining member whose epoch caught up, advance the warming ramp.
func (t *Table) renewLocked(e *entry, epoch, committed uint64, now time.Time) bool {
	if !e.static {
		t.counters.Renewals++
		e.renewedAt = now
	}
	before := e.weight(t.cfg.RampWindows)
	routableBefore := e.state.Routable()
	if e.state == StateSuspect {
		// Renewed in the grace window: restore the pre-suspect position.
		e.state = StateWarming
		if e.ramp >= t.cfg.RampWindows {
			e.state = StateActive
		}
	} else if e.state == StateWarming {
		e.ramp++
		if e.ramp >= t.cfg.RampWindows {
			e.state = StateActive
		}
	}
	t.advanceLocked(e, epoch, committed)
	return e.state.Routable() != routableBefore || e.weight(t.cfg.RampWindows) != before
}

// advanceLocked records an observed epoch and converges a joining member
// once it has caught up to the committed epoch. Reports whether routability
// changed.
func (t *Table) advanceLocked(e *entry, epoch, committed uint64) bool {
	if epoch > e.epoch {
		e.epoch = epoch
	}
	if e.state == StateJoining && e.epoch >= committed {
		e.state = StateWarming
		e.ramp = 1 // the first window serves at 1/RampWindows immediately
		if e.ramp >= t.cfg.RampWindows {
			e.state = StateActive
		}
		return true
	}
	return false
}

// Converge is the observer-driven convergence path (the gateway's prober
// seeing a joining member answer at the committed epoch). Unlike Renew it
// does NOT extend the lease: liveness is vouched for only by the shard's own
// renewals. Reports the view and whether routability changed.
func (t *Table) Converge(id string, epoch, committed uint64) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.state != StateJoining {
		if ok {
			return e.view(t.cfg), false
		}
		return Entry{}, false
	}
	changed := t.advanceLocked(e, epoch, committed)
	return e.view(t.cfg), changed
}

// Leave deregisters a member gracefully. The entry is kept (StateLeft) so a
// later announce counts as a rejoin. Reports whether the id was a live
// member (and so whether the caller's ring changed).
func (t *Table) Leave(id string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.state == StateExpired || e.state == StateLeft {
		return Entry{}, false
	}
	wasRoutable := e.state.Routable()
	e.state = StateLeft
	e.ramp = 0
	if !e.static {
		t.counters.GracefulLeaves++
	}
	return e.view(t.cfg), wasRoutable
}

// Remove hard-deletes an entry (the static-member analogue of leave, and an
// admin escape hatch). Reports whether the id existed.
func (t *Table) Remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[id]
	delete(t.entries, id)
	return ok
}

// Sweep advances lease timers: members past SuspectAfter turn suspect,
// members past LeaseTTL expire. It returns the members that expired on this
// sweep (the caller must remove them from routing).
func (t *Table) Sweep() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.LeaseTTL <= 0 {
		return nil
	}
	now := t.cfg.Now()
	var expired []Entry
	for _, e := range t.entries {
		if e.static || e.state == StateExpired || e.state == StateLeft {
			continue
		}
		idle := now.Sub(e.renewedAt)
		switch {
		case idle >= t.cfg.LeaseTTL:
			e.state = StateExpired
			e.ramp = 0
			t.counters.LeaseExpirations++
			expired = append(expired, e.view(t.cfg))
		case idle >= t.cfg.SuspectAfter && (e.state == StateWarming || e.state == StateActive):
			e.state = StateSuspect
		}
	}
	return expired
}

// Entry returns one member's view.
func (t *Table) Entry(id string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return Entry{}, false
	}
	return e.view(t.cfg), true
}

// Snapshot returns every entry (including expired and left ones, for
// observability), sorted by id.
func (t *Table) Snapshot() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.view(t.cfg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns the membership counters.
func (t *Table) Stats() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters
}
