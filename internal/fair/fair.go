// Package fair provides the serving layer's multi-tenant admission
// primitives: a deficit-round-robin (DRR) weighted-fair queue that
// interleaves per-tenant subqueues inside one batching lane, and a
// token-bucket admission budget with burst credits.
//
// The problem both solve is the one the paper's premise creates at fleet
// scale: many tasks — owned by different tenants — multiplexed onto one
// resource-constrained detector. A single FIFO admission queue lets one
// tenant's traffic spike (or poison storm) occupy every queue slot and
// every batch, turning one hot workload into global tail-latency collapse.
// With DRR dequeue, a saturating tenant can never take more than its
// weighted share of batch slots while other tenants have work waiting; with
// per-tenant budgets, its overrun is rejected at admission (HTTP 429)
// before it can occupy a queue slot at all.
//
// DRR here is the classic Shreedhar/Varghese scheme with unit cost per
// item: each active tenant holds a deficit counter; a rotation visit grants
// quantum·weight credits; items are dequeued while credit lasts; and — the
// property the no-starvation test pins — a tenant's deficit resets to zero
// the moment its subqueue drains, so an idle tenant banks nothing and its
// return can never starve tenants that kept arriving.
package fair

// DefaultWeight is the DRR weight of tenants absent from the weight map.
const DefaultWeight = 1

// quantum is the credit granted per unit weight per rotation visit. Items
// have unit cost (one request = one batch slot), so quantum 1 already gives
// exact weight-proportional service with the finest interleaving.
const quantum = 1

// subq is one tenant's FIFO inside the fair queue.
type subq[T any] struct {
	tenant  string
	weight  int
	items   []T
	head    int
	deficit int
	// visited marks that the current rotation already granted this
	// subqueue its credits, so a PopMax that stops mid-tenant (batch
	// full) resumes without granting twice.
	visited bool
}

func (s *subq[T]) len() int { return len(s.items) - s.head }

func (s *subq[T]) pop() T {
	v := s.items[s.head]
	var zero T
	s.items[s.head] = zero // release the reference for GC
	s.head++
	if s.head == len(s.items) {
		s.items = s.items[:0]
		s.head = 0
	}
	return v
}

// Queue is a weighted-fair queue over per-tenant subqueues. It is NOT safe
// for concurrent use: the serving layer calls it under the batcher state
// mutex, which it must hold anyway to maintain its occupancy counters.
type Queue[T any] struct {
	weights map[string]int
	subs    map[string]*subq[T]
	// ring holds the active (non-empty) subqueues in rotation order;
	// cursor is the subqueue the next PopMax serves first.
	ring   []*subq[T]
	cursor int
	size   int
}

// NewQueue builds a fair queue with the given tenant weights (nil or
// missing entries fall back to DefaultWeight; non-positive weights are
// clamped to 1). The map is not copied; callers must not mutate it.
func NewQueue[T any](weights map[string]int) *Queue[T] {
	return &Queue[T]{weights: weights, subs: map[string]*subq[T]{}}
}

// Weight reports the effective DRR weight of a tenant.
func (q *Queue[T]) Weight(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return DefaultWeight
}

// Len is the total number of queued items across all tenants.
func (q *Queue[T]) Len() int { return q.size }

// TenantLen is the number of queued items for one tenant.
func (q *Queue[T]) TenantLen(tenant string) int {
	if s, ok := q.subs[tenant]; ok {
		return s.len()
	}
	return 0
}

// Tenants is the number of tenants with items queued.
func (q *Queue[T]) Tenants() int { return len(q.ring) }

// Push appends v to tenant's subqueue, activating the subqueue (at the
// tail of the rotation) when it was empty.
func (q *Queue[T]) Push(tenant string, v T) {
	s := q.subs[tenant]
	if s == nil {
		s = &subq[T]{tenant: tenant, weight: q.Weight(tenant)}
		q.subs[tenant] = s
	}
	if s.len() == 0 {
		q.ring = append(q.ring, s)
	}
	s.items = append(s.items, v)
	q.size++
}

// PopMax dequeues up to n items by deficit round robin. A call that fills
// n mid-tenant preserves the tenant's remaining credit and rotation
// position, so DRR accounting is exact across batch boundaries. A subqueue
// that drains leaves the rotation with its deficit reset to zero (idle
// tenants bank nothing) and is released entirely, so the tenant set the
// queue remembers is exactly the set with work queued.
func (q *Queue[T]) PopMax(n int) []T {
	if n <= 0 || q.size == 0 {
		return nil
	}
	if n > q.size {
		n = q.size
	}
	out := make([]T, 0, n)
	for q.size > 0 && len(out) < n {
		s := q.ring[q.cursor]
		if !s.visited {
			s.deficit += quantum * s.weight
			s.visited = true
		}
		for s.deficit > 0 && s.len() > 0 && len(out) < n {
			out = append(out, s.pop())
			s.deficit--
			q.size--
		}
		switch {
		case s.len() == 0:
			// Drained: reset (no banked credit) and deactivate.
			s.deficit = 0
			s.visited = false
			delete(q.subs, s.tenant)
			q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
			if q.cursor >= len(q.ring) {
				q.cursor = 0
			}
		case s.deficit <= 0:
			// Credit spent: next rotation position.
			s.visited = false
			q.cursor = (q.cursor + 1) % len(q.ring)
		default:
			// Batch full with credit left: resume here next call.
			return out
		}
	}
	return out
}
