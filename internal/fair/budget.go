package fair

import (
	"sync"
	"time"
)

// maxBuckets caps the bucket table so a storm of distinct tenant IDs (the
// HTTP edge bounds their length, not their cardinality) cannot grow it
// without bound. At the cap, inserting first reaps buckets idle long
// enough to have refilled completely — indistinguishable from fresh ones,
// so dropping them is lossless — and then, if the storm is all live, drops
// an arbitrary victim (costing that tenant one free refill).
const maxBuckets = 4096

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Budget is a per-tenant token-bucket admission limiter. Each tenant owns
// a bucket holding up to burst tokens, refilled at rate tokens/second;
// admitting a request consumes one token. A fresh tenant starts with a
// full bucket — those are its burst credits: a tenant idle long enough
// always has burst requests of headroom before pacing kicks in.
//
// Safe for concurrent use.
type Budget struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	buckets map[string]*bucket
}

// NewBudget builds a budget granting each tenant rate requests/second
// with burst credits. rate <= 0 disables limiting (Allow always true);
// burst <= 0 defaults to max(1, rate) — one second of headroom.
func NewBudget(rate, burst float64) *Budget {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &Budget{rate: rate, burst: burst, buckets: map[string]*bucket{}}
}

// Limiting reports whether the budget enforces anything.
func (b *Budget) Limiting() bool { return b != nil && b.rate > 0 }

// Allow consumes one token from tenant's bucket, reporting false when the
// tenant is over budget. Lazy refill: tokens accrue from the bucket's last
// touch, clamped at burst.
func (b *Budget) Allow(tenant string, now time.Time) bool {
	if !b.Limiting() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.buckets[tenant]
	if bk == nil {
		if len(b.buckets) >= maxBuckets {
			b.reapLocked(now)
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.buckets[tenant] = bk
	} else {
		if dt := now.Sub(bk.last).Seconds(); dt > 0 {
			bk.tokens += dt * b.rate
			if bk.tokens > b.burst {
				bk.tokens = b.burst
			}
			bk.last = now
		}
	}
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

// RetryAfter estimates how long tenant must wait for its next token —
// the Retry-After hint for a rejected request. Zero when not limiting.
func (b *Budget) RetryAfter(tenant string, now time.Time) time.Duration {
	if !b.Limiting() {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.buckets[tenant]
	if bk == nil {
		return 0
	}
	tokens := bk.tokens + now.Sub(bk.last).Seconds()*b.rate
	if tokens >= 1 {
		return 0
	}
	return time.Duration((1 - tokens) / b.rate * float64(time.Second))
}

// reapLocked drops buckets whose lazy refill would have filled them — a
// full bucket is semantically identical to no bucket — then, if none were
// reapable, an arbitrary one.
func (b *Budget) reapLocked(now time.Time) {
	fullAfter := time.Duration(b.burst / b.rate * float64(time.Second))
	for t, bk := range b.buckets {
		if now.Sub(bk.last) >= fullAfter {
			delete(b.buckets, t)
		}
	}
	for t := range b.buckets {
		if len(b.buckets) < maxBuckets {
			break
		}
		delete(b.buckets, t)
	}
}
