package fair

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Under saturation (every tenant always has work queued), DRR service
// converges to the configured weight ratio. Weights {1,2,4} must yield a
// 1:2:4 service ratio within a tight tolerance, across a range of batch
// sizes — including ones that cut rotations mid-tenant.
func TestDRRConvergesToWeightRatio(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 2, "c": 4}
	for _, batch := range []int{1, 3, 8, 64} {
		q := NewQueue[string](weights)
		served := map[string]int{}
		total := 0
		const rounds = 7000
		for total < rounds {
			// Keep every tenant saturated.
			for tenant := range weights {
				for q.TenantLen(tenant) < batch+1 {
					q.Push(tenant, tenant)
				}
			}
			for _, v := range q.PopMax(batch) {
				served[v]++
				total++
			}
		}
		sum := float64(served["a"] + served["b"] + served["c"])
		for tenant, w := range weights {
			got := float64(served[tenant]) / sum
			want := float64(w) / 7.0
			if math.Abs(got-want)/want > 0.05 {
				t.Errorf("batch=%d tenant %s served share %.3f, want %.3f (served=%v)",
					batch, tenant, got, want, served)
			}
		}
	}
}

// An idle tenant banks no credit: after sitting out many rotations it
// re-enters with a deficit of zero, so its backlog cannot starve tenants
// that kept arriving. In any window after the return, the returning
// tenant's service stays proportional to its weight — not to its idle time.
func TestIdleTenantBanksNothing(t *testing.T) {
	q := NewQueue[string](map[string]int{"steady": 1, "sleeper": 1})
	// sleeper appears once, drains, then goes idle for many rotations.
	q.Push("sleeper", "sleeper")
	q.PopMax(1)
	for i := 0; i < 1000; i++ {
		q.Push("steady", "steady")
		q.PopMax(1)
	}
	// sleeper returns with a large backlog; steady keeps arriving.
	for i := 0; i < 64; i++ {
		q.Push("sleeper", "sleeper")
	}
	served := map[string]int{}
	for i := 0; i < 32; i++ {
		q.Push("steady", "steady")
		for _, v := range q.PopMax(2) {
			served[v]++
		}
	}
	// Equal weights: the window must split near-evenly; a banked deficit
	// would let sleeper take (nearly) the whole window.
	if served["steady"] < 24 {
		t.Fatalf("steady served only %d of 64 slots after sleeper's return (sleeper=%d): idle tenant banked credit",
			served["steady"], served["sleeper"])
	}
}

// Order within one tenant is FIFO, and nothing is lost or duplicated under
// randomized interleaving of pushes and pops.
func TestQueueFIFOPerTenantAndConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tenants := []string{"a", "b", "c", "d"}
	q := NewQueue[int](map[string]int{"a": 1, "b": 2, "c": 4})
	// Values encode (tenant index, sequence) so a pop can be checked
	// against exactly its own tenant's FIFO expectation.
	next := map[string]int{}   // next sequence number to push, per tenant
	expect := map[string]int{} // next sequence number to pop, per tenant
	pushed, popped := 0, 0
	drain := func(vals []int) {
		for _, v := range vals {
			tn := tenants[v/1000000]
			seq := v % 1000000
			if expect[tn] != seq {
				t.Fatalf("tenant %s popped seq %d, want %d (FIFO violated)", tn, seq, expect[tn])
			}
			expect[tn]++
			popped++
		}
	}
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			ti := rng.Intn(len(tenants))
			tn := tenants[ti]
			q.Push(tn, ti*1000000+next[tn])
			next[tn]++
			pushed++
		} else {
			drain(q.PopMax(rng.Intn(5)))
		}
		if q.Len() != pushed-popped {
			t.Fatalf("Len() = %d, want %d", q.Len(), pushed-popped)
		}
	}
	drain(q.PopMax(q.Len()))
	if popped != pushed {
		t.Fatalf("conservation: pushed %d, popped %d", pushed, popped)
	}
	if q.Len() != 0 || q.Tenants() != 0 {
		t.Fatalf("drained queue reports Len=%d Tenants=%d", q.Len(), q.Tenants())
	}
}

// A PopMax that fills mid-tenant resumes the same tenant with its
// remaining credit, so small batches don't skew service toward any
// rotation position.
func TestPopMaxResumesMidTenant(t *testing.T) {
	q := NewQueue[string](map[string]int{"heavy": 4, "light": 1})
	for i := 0; i < 8; i++ {
		q.Push("heavy", "heavy")
		q.Push("light", "light")
	}
	var order []string
	for q.Len() > 0 {
		order = append(order, q.PopMax(2)...)
	}
	// One full rotation serves 4 heavy then 1 light regardless of the
	// batch size cutting it into pieces.
	wantPrefix := []string{"heavy", "heavy", "heavy", "heavy", "light"}
	for i, w := range wantPrefix {
		if order[i] != w {
			t.Fatalf("service order %v, want prefix %v", order[:len(wantPrefix)], wantPrefix)
		}
	}
}

func TestPopMaxEdgeCases(t *testing.T) {
	q := NewQueue[int](nil)
	if got := q.PopMax(4); got != nil {
		t.Fatalf("PopMax on empty queue = %v, want nil", got)
	}
	q.Push("t", 1)
	if got := q.PopMax(0); got != nil {
		t.Fatalf("PopMax(0) = %v, want nil", got)
	}
	if got := q.PopMax(100); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PopMax(100) = %v, want [1]", got)
	}
	if q.Weight("unknown") != DefaultWeight {
		t.Fatalf("Weight(unknown) = %d, want %d", q.Weight("unknown"), DefaultWeight)
	}
}

// Burst credits: a fresh tenant gets burst requests immediately, then is
// paced at rate; an idle stretch refills up to burst and no further.
func TestBudgetBurstAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBudget(10, 3)
	for i := 0; i < 3; i++ {
		if !b.Allow("a", now) {
			t.Fatalf("burst credit %d denied", i)
		}
	}
	if b.Allow("a", now) {
		t.Fatal("4th request within burst window admitted")
	}
	if ra := b.RetryAfter("a", now); ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms]", ra)
	}
	// 100ms refills exactly one token at 10/s.
	if !b.Allow("a", now.Add(100*time.Millisecond)) {
		t.Fatal("refilled token denied")
	}
	if b.Allow("a", now.Add(100*time.Millisecond)) {
		t.Fatal("second request admitted on one refilled token")
	}
	// A long idle stretch clamps at burst, never beyond.
	later := now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !b.Allow("a", later) {
			t.Fatalf("post-idle burst credit %d denied", i)
		}
	}
	if b.Allow("a", later) {
		t.Fatal("idle tenant banked more than burst")
	}
}

// Tenants are independent: one tenant exhausting its bucket never affects
// another's.
func TestBudgetTenantIsolation(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBudget(1, 2)
	for b.Allow("noisy", now) {
	}
	if !b.Allow("quiet", now) {
		t.Fatal("noisy tenant's exhaustion denied quiet tenant")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0, 0)
	if b.Limiting() {
		t.Fatal("rate 0 should not limit")
	}
	now := time.Unix(1000, 0)
	for i := 0; i < 10000; i++ {
		if !b.Allow("t", now) {
			t.Fatal("unlimited budget denied")
		}
	}
	if ra := b.RetryAfter("t", now); ra != 0 {
		t.Fatalf("RetryAfter on unlimited budget = %v", ra)
	}
}

// The bucket table is bounded: a storm of distinct tenant IDs reaps
// refilled buckets instead of growing without bound.
func TestBudgetBucketTableBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBudget(100, 1)
	for i := 0; i < 3*maxBuckets; i++ {
		b.Allow(string(rune('a'+i%26))+string(rune('0'+(i/26)%10))+itoa(i), now.Add(time.Duration(i)*time.Millisecond))
	}
	b.mu.Lock()
	n := len(b.buckets)
	b.mu.Unlock()
	if n > maxBuckets {
		t.Fatalf("bucket table grew to %d, cap %d", n, maxBuckets)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
