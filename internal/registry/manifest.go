package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk registry layout:
//
//	<root>/<name>/v<N>/manifest.json
//	<root>/<name>/v<N>/<weights file named by Manifest.File>
//
// Each version directory is immutable once written; publishing a new version
// of a name creates the next v<N+1> directory. Trainers write manifests with
// the checksum produced by the checksummed save path (vit.SaveFileSum /
// quant.SaveFileSum); loaders re-hash while reading and refuse mismatches,
// so a truncated or corrupted artifact can never be published into the
// routing snapshot.

// ManifestFile is the fixed name of the per-version metadata file.
const ManifestFile = "manifest.json"

// Manifest is the serialized metadata of one published artifact version.
type Manifest struct {
	Name     string `json:"name"`
	Version  int    `json:"version"`
	Kind     string `json:"kind"` // Kind.String() form
	Task     string `json:"task,omitempty"`
	Checksum string `json:"checksum"`
	// File is the weights filename within the version directory.
	File string `json:"file"`
	// Bits is the quantization width for generalist artifacts (0 = float).
	Bits int `json:"bits,omitempty"`
}

// VersionDir returns the directory for one version of a name under root.
func VersionDir(root, name string, version int) string {
	return filepath.Join(root, name, "v"+strconv.Itoa(version))
}

// WriteManifest creates the version directory (must not already hold a
// manifest — versions are immutable) and writes the manifest atomically via
// rename, returning the directory path.
func WriteManifest(root string, m Manifest) (string, error) {
	if m.Name == "" || m.Version < 1 || m.File == "" {
		return "", fmt.Errorf("registry: incomplete manifest %+v", m)
	}
	dir := VersionDir(root, m.Name, m.Version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ManifestFile)
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("registry: version %s@v%d already published at %s", m.Name, m.Version, dir)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return dir, nil
}

// ReadManifest loads and validates the manifest of one version directory.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("registry: bad manifest in %s: %w", dir, err)
	}
	if m.Name == "" || m.Version < 1 || m.File == "" {
		return Manifest{}, fmt.Errorf("registry: incomplete manifest in %s", dir)
	}
	if _, err := KindFromString(m.Kind); err != nil {
		return Manifest{}, fmt.Errorf("registry: manifest in %s: %w", dir, err)
	}
	return m, nil
}

// LatestVersion scans <root>/<name> for the highest v<N> directory holding a
// readable manifest. Returns 0 (no error) when the name has no versions.
func LatestVersion(root, name string) (int, error) {
	entries, err := os.ReadDir(filepath.Join(root, name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	best := 0
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "v") {
			continue
		}
		n, err := strconv.Atoi(e.Name()[1:])
		if err != nil || n < 1 || n <= best {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, name, e.Name(), ManifestFile)); err == nil {
			best = n
		}
	}
	return best, nil
}

// Names lists the artifact names present under root (directories holding at
// least one version), sorted.
func Names(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if v, err := LatestVersion(root, e.Name()); err == nil && v > 0 {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// LatestManifest reads the manifest of a name's highest version under root.
func LatestManifest(root, name string) (Manifest, string, error) {
	v, err := LatestVersion(root, name)
	if err != nil {
		return Manifest{}, "", err
	}
	if v == 0 {
		return Manifest{}, "", fmt.Errorf("registry: no versions of %q under %s: %w", name, root, ErrUnknownArtifact)
	}
	dir := VersionDir(root, name, v)
	m, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, "", err
	}
	return m, dir, nil
}
