package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

func stubDetect(class int) DetectFunc {
	return func(img *tensor.Tensor) []geom.Scored {
		return []geom.Scored{{Class: class, Score: 0.9}}
	}
}

func publishStudent(t *testing.T, r *Registry, name, task string, class int) ArtifactID {
	t.Helper()
	id, err := r.Publish(Artifact{
		Name: name, Kind: TaskSpecific, Task: task,
		Bytes: 100, LatencyUS: 10, Detect: stubDetect(class),
	})
	if err != nil {
		t.Fatalf("publish %s: %v", name, err)
	}
	return id
}

func TestPublishAssignsVersionsAndSwapsSnapshot(t *testing.T) {
	r := New()
	s0 := r.Snapshot()
	id1 := publishStudent(t, r, "patrol-student", "patrol", 1)
	if id1.Version != 1 || id1.Name != "patrol-student" || id1.Checksum == "" {
		t.Fatalf("first publish id = %+v", id1)
	}
	id2 := publishStudent(t, r, "patrol-student", "patrol", 2)
	if id2.Version != 2 {
		t.Fatalf("second publish version = %d, want 2", id2.Version)
	}
	s := r.Snapshot()
	if s == s0 || s.Seq() <= s0.Seq() {
		t.Fatal("snapshot not swapped by publish")
	}
	a, ok := s.Active("patrol-student")
	if !ok || a.ID != id2 {
		t.Fatalf("active = %+v, want v2", a)
	}
	if a2, ok := s.ForTask("patrol"); !ok || a2.ID != id2 {
		t.Fatalf("ForTask = %+v, want v2", a2)
	}
	// The superseded v1 still resolves by exact ID (in-flight batches).
	if got, ok := s.Resolve(id1.String()); !ok || got.ID != id1 {
		t.Fatalf("Resolve(v1) = %+v, want v1", got)
	}
	// Bare name resolves to active.
	if got, ok := s.Resolve("patrol-student"); !ok || got.ID != id2 {
		t.Fatalf("Resolve(name) = %+v, want v2", got)
	}
}

func TestPublishValidation(t *testing.T) {
	r := New()
	cases := []Artifact{
		{},                           // no name
		{Name: "x@y", Kind: Teacher}, // reserved char
		{Name: "a", Kind: TaskSpecific, Task: "t", Bytes: 10},             // routable, no Detect
		{Name: "a", Kind: TaskSpecific, Task: "t", Detect: stubDetect(0)}, // no bytes
		{Name: "a", Kind: TaskSpecific, Bytes: 10, Detect: stubDetect(0)}, // no task
	}
	for i, a := range cases {
		if _, err := r.Publish(a); err == nil {
			t.Errorf("case %d: publish %+v succeeded, want error", i, a)
		}
	}
	// Non-routable kinds need neither Detect nor Bytes.
	if _, err := r.Publish(Artifact{Name: "teacher", Kind: Teacher}); err != nil {
		t.Errorf("teacher publish: %v", err)
	}
}

func TestPublishConflicts(t *testing.T) {
	r := New()
	if _, err := r.Publish(Artifact{Name: "gen", Kind: Generalist, Bytes: 10, Detect: stubDetect(0)}); err != nil {
		t.Fatal(err)
	}
	// Second generalist under a different name conflicts.
	if _, err := r.Publish(Artifact{Name: "gen2", Kind: Generalist, Bytes: 10, Detect: stubDetect(0)}); !errors.Is(err, ErrConflict) {
		t.Errorf("second generalist: err = %v, want ErrConflict", err)
	}
	// Same generalist name republishes fine.
	if _, err := r.Publish(Artifact{Name: "gen", Kind: Generalist, Bytes: 10, Detect: stubDetect(0)}); err != nil {
		t.Errorf("generalist republish: %v", err)
	}
	publishStudent(t, r, "s1", "patrol", 1)
	// Different name for the same task conflicts.
	if _, err := r.Publish(Artifact{Name: "s2", Kind: TaskSpecific, Task: "patrol", Bytes: 10, Detect: stubDetect(0)}); !errors.Is(err, ErrConflict) {
		t.Errorf("task takeover: err = %v, want ErrConflict", err)
	}
	// Kind change under one name conflicts.
	if _, err := r.Publish(Artifact{Name: "s1", Kind: Generalist, Bytes: 10, Detect: stubDetect(0)}); !errors.Is(err, ErrConflict) {
		t.Errorf("kind flip: err = %v, want ErrConflict", err)
	}
	// Task change under one name conflicts.
	if _, err := r.Publish(Artifact{Name: "s1", Kind: TaskSpecific, Task: "rescue", Bytes: 10, Detect: stubDetect(0)}); !errors.Is(err, ErrConflict) {
		t.Errorf("task flip: err = %v, want ErrConflict", err)
	}
}

func TestDemoteRollsBackToLastKnownGood(t *testing.T) {
	r := New()
	id1 := publishStudent(t, r, "s", "patrol", 1)
	id2 := publishStudent(t, r, "s", "patrol", 2)

	active, rolledBack := r.Demote(id2)
	if !rolledBack || active != id1 {
		t.Fatalf("Demote(v2) = %v,%v, want v1,true", active, rolledBack)
	}
	s := r.Snapshot()
	if a, _ := s.Active("s"); a.ID != id1 {
		t.Fatalf("active after demote = %+v, want v1", a)
	}
	// Retries pinned to the quarantined v2 redirect to v1.
	if got, ok := s.Resolve(id2.String()); !ok || got.ID != id1 {
		t.Fatalf("Resolve(quarantined v2) = %+v, want v1", got)
	}
	if !s.Quarantined(id2.String()) {
		t.Error("v2 not marked quarantined in snapshot")
	}
	st := r.Stats()
	if st.Rollbacks != 1 || st.Demotions != 1 {
		t.Errorf("stats = %+v, want 1 rollback, 1 demotion", st)
	}
	// Double demote is a no-op reporting current active.
	if active, rb := r.Demote(id2); rb || active != id1 {
		t.Errorf("re-demote = %v,%v, want v1,false", active, rb)
	}
}

func TestDemoteSoleVersionStaysActive(t *testing.T) {
	r := New()
	id1 := publishStudent(t, r, "s", "patrol", 1)
	active, rolledBack := r.Demote(id1)
	if rolledBack || active != id1 {
		t.Fatalf("Demote(sole v1) = %v,%v, want v1,false (serve something over nothing)", active, rolledBack)
	}
	if a, ok := r.Snapshot().Active("s"); !ok || a.ID != id1 {
		t.Fatalf("sole version vacated: %+v %v", a, ok)
	}
}

func TestDemoteSupersededVersionMarksOnly(t *testing.T) {
	r := New()
	id1 := publishStudent(t, r, "s", "patrol", 1)
	id2 := publishStudent(t, r, "s", "patrol", 2)
	// v1 is already superseded; demoting it must not move active.
	active, rolledBack := r.Demote(id1)
	if rolledBack || active != id2 {
		t.Fatalf("Demote(superseded v1) = %v,%v, want v2,false", active, rolledBack)
	}
	if got, ok := r.Snapshot().Resolve(id1.String()); !ok || got.ID != id2 {
		t.Fatalf("Resolve(quarantined v1) = %+v, want redirect to v2", got)
	}
}

func TestRollbackExplicit(t *testing.T) {
	r := New()
	_ = publishStudent(t, r, "s", "patrol", 1)
	id2 := publishStudent(t, r, "s", "patrol", 2)
	id3 := publishStudent(t, r, "s", "patrol", 3)
	if active, err := r.Rollback("s"); err != nil || active.Version != 2 {
		t.Fatalf("rollback v3: %v, %v", active, err)
	}
	// Rolling back again lands on v1; then nothing healthy remains.
	if active, err := r.Rollback("s"); err != nil || active.Version != 1 {
		t.Fatalf("rollback v2: %v, %v", active, err)
	}
	if _, err := r.Rollback("s"); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("rollback sole healthy: err = %v, want ErrNoRollback", err)
	}
	if _, err := r.Rollback("ghost"); !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("rollback unknown: err = %v, want ErrUnknownArtifact", err)
	}
	// Republishing after rollbacks continues the version sequence.
	id4 := publishStudent(t, r, "s", "patrol", 4)
	if id4.Version != 4 {
		t.Fatalf("post-rollback publish version = %d, want 4", id4.Version)
	}
	_ = id2
	_ = id3
	vs := r.Versions("s")
	if len(vs) != 4 || !vs[3].Active || !vs[1].Quarantined || !vs[2].Quarantined {
		t.Fatalf("versions = %+v", vs)
	}
}

func TestArtifactIDRoundTrip(t *testing.T) {
	id := ArtifactID{Name: "patrol-student", Version: 7, Checksum: "9f2ab4"}
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	for _, bad := range []string{"", "name", "name@vX#s", "@v1#s", "name@v0#s", "name@v1"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) succeeded, want error", bad)
		}
	}
}

// Readers loading snapshots concurrently with publishes and demotions must
// never observe a torn or internally inconsistent view (run with -race).
func TestSnapshotReadersNeverTear(t *testing.T) {
	r := New()
	publishStudent(t, r, "s", "patrol", 1)
	if _, err := r.Publish(Artifact{Name: "gen", Kind: Generalist, Bytes: 10, Detect: stubDetect(9)}); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := r.Snapshot()
				a, ok := s.ForTask("patrol")
				if !ok {
					t.Error("task vanished from snapshot")
					return
				}
				// Every active artifact must be executable and resolvable.
				if a.Detect == nil || a.ID.Version < 1 {
					t.Errorf("torn artifact: %+v", a)
					return
				}
				if got, ok := s.Resolve(a.ID.String()); !ok || got == nil {
					t.Error("active ID failed to resolve in its own snapshot")
					return
				}
			}
		}()
	}
	var lastID ArtifactID
	for v := 0; v < 200; v++ {
		id := publishStudent(t, r, "s", "patrol", v)
		if v%3 == 2 {
			r.Demote(id)
		}
		lastID = id
	}
	stop.Store(true)
	wg.Wait()
	if lastID.IsZero() {
		t.Fatal("no publishes happened")
	}
	st := r.Stats()
	if st.Publishes < 200 || st.Rollbacks == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestOnRetire pins the hook contract: exactly the versions that stop being
// active are reported, before the new snapshot is observable.
func TestOnRetire(t *testing.T) {
	r := New()
	var retired []string
	r.OnRetire(func(artifact string) {
		// The hook runs before the swap: the retired ID must still be the
		// active one in the currently-published snapshot.
		if a, ok := r.Snapshot().Active("s"); ok && a.ID.String() != artifact {
			t.Errorf("hook for %s ran after snapshot swap (active now %s)", artifact, a.ID)
		}
		retired = append(retired, artifact)
	})

	v1 := publishStudent(t, r, "s", "patrol", 1)
	if len(retired) != 0 {
		t.Fatalf("first publish retired %v", retired)
	}
	v2 := publishStudent(t, r, "s", "patrol", 2)
	if len(retired) != 1 || retired[0] != v1.String() {
		t.Fatalf("publish over v1: retired %v, want [%s]", retired, v1)
	}
	// Demoting the active version rolls back to v1 and retires v2.
	if _, rolledBack := r.Demote(v2); !rolledBack {
		t.Fatal("demote did not roll back")
	}
	if len(retired) != 2 || retired[1] != v2.String() {
		t.Fatalf("demote of v2: retired %v, want [... %s]", retired, v2)
	}
	// Marking an already-inactive version quarantined changes no active set:
	// no retirement.
	r.Demote(v2)
	if len(retired) != 2 {
		t.Fatalf("re-demote retired %v", retired)
	}
	// An unrelated publish retires nothing.
	publishStudent(t, r, "other", "rescue", 3)
	if len(retired) != 2 {
		t.Fatalf("unrelated publish retired %v", retired)
	}
}

func TestManifestLayoutRoundTrip(t *testing.T) {
	root := t.TempDir()
	m := Manifest{Name: "patrol-student", Version: 1, Kind: TaskSpecific.String(),
		Task: "patrol", Checksum: "abc123", File: "weights.ckpt"}
	dir, err := WriteManifest(root, m)
	if err != nil {
		t.Fatal(err)
	}
	if dir != VersionDir(root, "patrol-student", 1) {
		t.Fatalf("dir = %s", dir)
	}
	// Versions are immutable: rewriting the same version fails.
	if _, err := WriteManifest(root, m); err == nil {
		t.Fatal("overwriting a published version succeeded")
	}
	m2 := m
	m2.Version = 2
	if _, err := WriteManifest(root, m2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil || got != m {
		t.Fatalf("ReadManifest = %+v, %v", got, err)
	}
	if v, err := LatestVersion(root, "patrol-student"); err != nil || v != 2 {
		t.Fatalf("LatestVersion = %d, %v, want 2", v, err)
	}
	if v, err := LatestVersion(root, "ghost"); err != nil || v != 0 {
		t.Fatalf("LatestVersion(ghost) = %d, %v, want 0", v, err)
	}
	names, err := Names(root)
	if err != nil || len(names) != 1 || names[0] != "patrol-student" {
		t.Fatalf("Names = %v, %v", names, err)
	}
	lm, ldir, err := LatestManifest(root, "patrol-student")
	if err != nil || lm.Version != 2 || ldir != VersionDir(root, "patrol-student", 2) {
		t.Fatalf("LatestManifest = %+v, %s, %v", lm, ldir, err)
	}
	if _, _, err := LatestManifest(root, "ghost"); !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("LatestManifest(ghost): err = %v", err)
	}
	// Bad kind strings are rejected on read.
	dirBad := VersionDir(root, "x", 1)
	if err := os.MkdirAll(dirBad, 0o755); err != nil {
		t.Fatal(err)
	}
	raw := `{"name":"x","version":1,"kind":"alien","checksum":"c","file":"w"}`
	if err := os.WriteFile(filepath.Join(dirBad, ManifestFile), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dirBad); err == nil {
		t.Fatal("alien kind accepted")
	}
}
