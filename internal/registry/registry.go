// Package registry is iTask's versioned model store: every deployable model
// (the quantized generalist, per-task distilled students, and the
// non-routable float teacher and few-shot base they derive from) is published
// as an immutable, checksummed Artifact identified by name@vN#hash. The
// currently routable set lives in an atomically-swapped Snapshot
// (atomic.Pointer), so readers — Detect, DetectBatch, and every serving-layer
// lane — resolve models lock-free, while writers (distillation, few-shot
// adaptation, checkpoint reload) build a complete new artifact off to the
// side and publish it in one pointer swap. Nothing is ever mutated in place:
// a republished name gets a new version, the previous version stays available
// to in-flight batches, and an unhealthy new version can be demoted, which
// atomically rolls the name back to its newest healthy prior version.
package registry

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// Kind classifies an artifact's role in the dual-configuration design.
type Kind int

const (
	// TaskSpecific is a distilled per-task student: highest in-task
	// accuracy, one copy per task, routable.
	TaskSpecific Kind = iota
	// Generalist is the quantized multi-task model: lower per-task
	// accuracy, serves every mission, routable.
	Generalist
	// Teacher is the float multi-task model students distill from. It is
	// registered for provenance and reuse but never routed.
	Teacher
	// FewShotBase is the student-architecture multi-task base cloned by
	// few-shot adaptation. Registered, never routed.
	FewShotBase
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TaskSpecific:
		return "task-specific"
	case Generalist:
		return "generalist"
	case Teacher:
		return "teacher"
	case FewShotBase:
		return "fewshot-base"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindFromString inverts Kind.String (used by layout manifests).
func KindFromString(s string) (Kind, error) {
	switch s {
	case "task-specific":
		return TaskSpecific, nil
	case "generalist":
		return Generalist, nil
	case "teacher":
		return Teacher, nil
	case "fewshot-base":
		return FewShotBase, nil
	}
	return 0, fmt.Errorf("registry: unknown kind %q", s)
}

// routable reports whether artifacts of this kind may serve traffic.
func (k Kind) routable() bool { return k == TaskSpecific || k == Generalist }

// DetectFunc is the inference entry point of a published artifact.
type DetectFunc func(img *tensor.Tensor) []geom.Scored

// BatchDetectFunc runs inference on a coalesced batch of images, returning
// one detection set per image.
type BatchDetectFunc func(imgs []*tensor.Tensor) [][]geom.Scored

// ArtifactID identifies one immutable published version of a model:
// name + monotonically increasing version + content checksum.
type ArtifactID struct {
	Name     string
	Version  int
	Checksum string
}

// idSepVersion and idSepSum delimit the textual ArtifactID form.
const (
	idSepVersion = "@v"
	idSepSum     = "#"
)

// String renders the canonical textual form, e.g. "patrol-student@v3#9f2ab4".
func (id ArtifactID) String() string {
	return id.Name + idSepVersion + strconv.Itoa(id.Version) + idSepSum + id.Checksum
}

// IsZero reports an unset ID.
func (id ArtifactID) IsZero() bool { return id.Name == "" && id.Version == 0 }

// ParseID parses the canonical textual form produced by ArtifactID.String.
func ParseID(s string) (ArtifactID, error) {
	name, rest, ok := strings.Cut(s, idSepVersion)
	if !ok || name == "" {
		return ArtifactID{}, fmt.Errorf("registry: malformed artifact id %q: %w", s, ErrUnknownArtifact)
	}
	ver, sum, ok := strings.Cut(rest, idSepSum)
	if !ok {
		return ArtifactID{}, fmt.Errorf("registry: malformed artifact id %q: %w", s, ErrUnknownArtifact)
	}
	v, err := strconv.Atoi(ver)
	if err != nil || v <= 0 {
		return ArtifactID{}, fmt.Errorf("registry: bad version in artifact id %q: %w", s, ErrUnknownArtifact)
	}
	return ArtifactID{Name: name, Version: v, Checksum: sum}, nil
}

// Artifact is one immutable published model version. The caller fills the
// descriptive fields; Publish assigns ID and the registry never mutates a
// stored artifact afterwards, so an *Artifact taken from any Snapshot may be
// used concurrently and indefinitely.
type Artifact struct {
	// Name groups versions of the same logical model (e.g.
	// "patrol-student"). Required.
	Name string
	// Kind is the artifact's role; only TaskSpecific and Generalist route.
	Kind Kind
	// Task is the mission a TaskSpecific artifact serves (empty otherwise).
	Task string
	// Bytes is the weight footprint counted against the RAM budget.
	Bytes int64
	// LatencyUS is the per-inference accelerator latency (from hwsim),
	// used to enforce request latency budgets.
	LatencyUS float64
	// Checksum is the content hash of the artifact's weights. When empty,
	// Publish derives a structural tag (fine for tests and fakes; real
	// publishers pass a weight checksum from vit/quant).
	Checksum string
	// Detect runs inference. Required for routable kinds.
	Detect DetectFunc
	// DetectBatch, when non-nil, runs a whole micro-batch in one pass;
	// when nil, callers fall back to per-image Detect.
	DetectBatch BatchDetectFunc
	// Payload optionally carries the underlying model value (e.g.
	// *vit.Model) so facades can recover it without a side table.
	Payload any

	// ID is assigned by Publish: Name@vN#Checksum.
	ID ArtifactID
}

// Sentinel errors.
var (
	// ErrUnknownArtifact reports a name or id the registry has never seen.
	ErrUnknownArtifact = errors.New("registry: unknown artifact")
	// ErrConflict reports a publish that contradicts the routing topology:
	// a second generalist under a different name, or a task already served
	// by a different artifact name.
	ErrConflict = errors.New("registry: conflicting publish")
	// ErrNoRollback reports that a demoted or rolled-back name has no
	// healthy prior version to return to.
	ErrNoRollback = errors.New("registry: no healthy prior version")
)

// series is the version history of one artifact name. Guarded by Registry.mu.
type series struct {
	versions    []*Artifact  // index i holds version i+1
	quarantined map[int]bool // version -> demoted as unhealthy
	active      int          // currently routed version (0 = none)
}

// Registry stores versioned artifacts and derives the atomically-swapped
// routing snapshot. Writers serialize on an internal mutex and publish
// build-then-swap; readers call Snapshot and never block.
type Registry struct {
	mu     sync.Mutex
	names  map[string]*series
	byTask map[string]string // task -> artifact name serving it
	gen    string            // the single generalist name

	seq       uint64
	publishes uint64
	rollbacks uint64
	demotions uint64

	// retireHooks run inside every snapshot swap, before the new snapshot
	// is published, once per artifact version that stops being active (see
	// OnRetire).
	retireHooks []func(artifact string)

	snap atomic.Pointer[Snapshot]
}

// New creates an empty registry with an empty (but non-nil) snapshot.
func New() *Registry {
	r := &Registry{
		names:  map[string]*series{},
		byTask: map[string]string{},
	}
	r.snap.Store(&Snapshot{
		active:      map[string]*Artifact{},
		byTask:      map[string]*Artifact{},
		byID:        map[string]*Artifact{},
		quarantined: map[string]bool{},
	})
	return r
}

// Snapshot is an immutable routing view. All methods are safe for concurrent
// use by any number of readers; a Snapshot never changes after publication.
type Snapshot struct {
	seq         uint64
	active      map[string]*Artifact // name -> active version
	byTask      map[string]*Artifact // task -> active task-specific artifact
	generalist  *Artifact
	byID        map[string]*Artifact // every published version, by ID string
	quarantined map[string]bool      // ID string -> demoted
}

// Snapshot returns the current routing view (lock-free pointer load).
func (r *Registry) Snapshot() *Snapshot { return r.snap.Load() }

// Seq is the snapshot's publication sequence number; it increases with every
// swap, so readers can detect that a publish or rollback happened between
// two loads.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Active returns the active version of a name.
func (s *Snapshot) Active(name string) (*Artifact, bool) {
	a, ok := s.active[name]
	return a, ok
}

// ForTask returns the active task-specific artifact serving a task.
func (s *Snapshot) ForTask(task string) (*Artifact, bool) {
	a, ok := s.byTask[task]
	return a, ok
}

// Generalist returns the active generalist artifact.
func (s *Snapshot) Generalist() (*Artifact, bool) {
	if s.generalist == nil {
		return nil, false
	}
	return s.generalist, true
}

// Candidates returns the routable artifacts that could serve a task,
// preferred first: the task's student (if any), then the generalist.
func (s *Snapshot) Candidates(task string) []*Artifact {
	var out []*Artifact
	if a, ok := s.byTask[task]; ok {
		out = append(out, a)
	}
	if s.generalist != nil {
		out = append(out, s.generalist)
	}
	return out
}

// Resolve maps a variant string to an executable artifact, version-aware:
//
//   - a bare name resolves to the name's active version;
//   - a full ID string resolves to that exact version while it is healthy
//     (active or merely superseded), so in-flight batches pinned to an older
//     version still execute on the weights they were coalesced for;
//   - a full ID string of a quarantined (demoted) version resolves to the
//     name's current active version instead — the automatic-rollback path:
//     retries of a batch that was pinned to a bad new version transparently
//     land on the restored last-known-good version.
func (s *Snapshot) Resolve(variant string) (*Artifact, bool) {
	if a, ok := s.byID[variant]; ok {
		if !s.quarantined[variant] {
			return a, true
		}
		act, ok := s.active[a.Name]
		return act, ok
	}
	a, ok := s.active[variant]
	return a, ok
}

// Quarantined reports whether the exact version behind a full ID string has
// been demoted as unhealthy.
func (s *Snapshot) Quarantined(id string) bool { return s.quarantined[id] }

// Artifacts returns every active artifact, sorted by name.
func (s *Snapshot) Artifacts() []*Artifact {
	out := make([]*Artifact, 0, len(s.active))
	for _, a := range s.active {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Publish validates an artifact, assigns it the next version of its name,
// makes it the name's active version, and swaps the routing snapshot. The
// previous active version (if any) is retained as the healthy rollback
// target. Returns the assigned ID.
func (r *Registry) Publish(a Artifact) (ArtifactID, error) {
	switch {
	case a.Name == "":
		return ArtifactID{}, fmt.Errorf("registry: empty artifact name")
	case strings.ContainsAny(a.Name, idSepSum+"@/\\"):
		return ArtifactID{}, fmt.Errorf("registry: artifact name %q contains reserved characters", a.Name)
	case a.Kind.routable() && a.Detect == nil:
		return ArtifactID{}, fmt.Errorf("registry: routable artifact %q has no Detect", a.Name)
	case a.Kind.routable() && a.Bytes <= 0:
		return ArtifactID{}, fmt.Errorf("registry: routable artifact %q has non-positive size", a.Name)
	case a.Kind == TaskSpecific && a.Task == "":
		return ArtifactID{}, fmt.Errorf("registry: task-specific artifact %q without task", a.Name)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	switch a.Kind {
	case Generalist:
		if r.gen != "" && r.gen != a.Name {
			return ArtifactID{}, fmt.Errorf("registry: second generalist %q (have %q): %w", a.Name, r.gen, ErrConflict)
		}
	case TaskSpecific:
		if prev, ok := r.byTask[a.Task]; ok && prev != a.Name {
			return ArtifactID{}, fmt.Errorf("registry: task %q already served by %q: %w", a.Task, prev, ErrConflict)
		}
	}
	sr := r.names[a.Name]
	if sr == nil {
		sr = &series{quarantined: map[int]bool{}}
		r.names[a.Name] = sr
	} else if sr.versions[0].Kind != a.Kind {
		return ArtifactID{}, fmt.Errorf("registry: artifact %q republished as %s, was %s: %w",
			a.Name, a.Kind, sr.versions[0].Kind, ErrConflict)
	} else if a.Kind == TaskSpecific && sr.versions[0].Task != a.Task {
		return ArtifactID{}, fmt.Errorf("registry: artifact %q republished for task %q, was %q: %w",
			a.Name, a.Task, sr.versions[0].Task, ErrConflict)
	}

	stored := a
	stored.ID = ArtifactID{Name: a.Name, Version: len(sr.versions) + 1, Checksum: a.Checksum}
	if stored.ID.Checksum == "" {
		stored.ID.Checksum = structuralSum(&stored)
	}
	stored.Checksum = stored.ID.Checksum
	sr.versions = append(sr.versions, &stored)
	sr.active = stored.ID.Version
	switch a.Kind {
	case Generalist:
		r.gen = a.Name
	case TaskSpecific:
		r.byTask[a.Task] = a.Name
	}
	r.publishes++
	r.swapLocked()
	return stored.ID, nil
}

// Rollback demotes a name's active version and reactivates its newest
// healthy prior version, swapping the snapshot. It fails with ErrNoRollback
// when no healthy prior version exists (the active version then stays
// active — serving something beats serving nothing).
func (r *Registry) Rollback(name string) (ArtifactID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := r.names[name]
	if sr == nil || sr.active == 0 {
		return ArtifactID{}, fmt.Errorf("registry: rollback of %q: %w", name, ErrUnknownArtifact)
	}
	return r.demoteLocked(sr, sr.active)
}

// Demote quarantines one exact version as unhealthy. If it is the name's
// active version, the name atomically rolls back to its newest healthy prior
// version; the returned ID is the version now active and rolledBack reports
// whether the active version changed. Demoting an already-quarantined or
// non-active version only marks it. Unknown ids are a no-op (ok=false).
func (r *Registry) Demote(id ArtifactID) (active ArtifactID, rolledBack bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := r.names[id.Name]
	if sr == nil || id.Version < 1 || id.Version > len(sr.versions) {
		return ArtifactID{}, false
	}
	if sr.quarantined[id.Version] {
		// Already demoted; report the current active version unchanged.
		if sr.active > 0 {
			return sr.versions[sr.active-1].ID, false
		}
		return ArtifactID{}, false
	}
	if id.Version != sr.active {
		// A superseded version went bad: mark it so Resolve redirects any
		// still-pinned batch to the active version.
		sr.quarantined[id.Version] = true
		r.demotions++
		r.swapLocked()
		return sr.versions[sr.active-1].ID, false
	}
	newActive, err := r.demoteLocked(sr, id.Version)
	if err != nil {
		// No healthy prior version: the demoted version stays active.
		return sr.versions[sr.active-1].ID, false
	}
	return newActive, true
}

// demoteLocked quarantines version v of sr and rolls active back to the
// newest healthy prior version. Caller holds r.mu.
func (r *Registry) demoteLocked(sr *series, v int) (ArtifactID, error) {
	prev := 0
	for cand := v - 1; cand >= 1; cand-- {
		if !sr.quarantined[cand] {
			prev = cand
			break
		}
	}
	if prev == 0 {
		return ArtifactID{}, fmt.Errorf("registry: %s@v%d: %w", sr.versions[v-1].Name, v, ErrNoRollback)
	}
	sr.quarantined[v] = true
	sr.active = prev
	r.demotions++
	r.rollbacks++
	r.swapLocked()
	return sr.versions[prev-1].ID, nil
}

// OnRetire registers a hook called with the full ID string (name@vN#sum) of
// every artifact version that stops being active — the version a publish
// supersedes, or the one a demotion/rollback quarantines. Hooks run inside
// the swap, under the registry's write lock and crucially *before* the new
// snapshot is stored: derived state keyed by versioned IDs (the serving
// layer's result-cache replicas) is torn down before any reader can observe
// the new routing view, so a retired version's cached results can never be
// served alongside it. Hooks must therefore be fast and must not call back
// into the registry.
func (r *Registry) OnRetire(fn func(artifact string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retireHooks = append(r.retireHooks, fn)
}

// swapLocked rebuilds the routing snapshot from the series table and stores
// it atomically. Caller holds r.mu.
func (r *Registry) swapLocked() {
	r.seq++
	s := &Snapshot{
		seq:         r.seq,
		active:      make(map[string]*Artifact, len(r.names)),
		byTask:      make(map[string]*Artifact, len(r.byTask)),
		byID:        map[string]*Artifact{},
		quarantined: map[string]bool{},
	}
	for name, sr := range r.names {
		for _, a := range sr.versions {
			s.byID[a.ID.String()] = a
			if sr.quarantined[a.ID.Version] {
				s.quarantined[a.ID.String()] = true
			}
		}
		if sr.active == 0 {
			continue
		}
		act := sr.versions[sr.active-1]
		s.active[name] = act
		switch act.Kind {
		case Generalist:
			s.generalist = act
		case TaskSpecific:
			s.byTask[act.Task] = act
		}
	}
	if len(r.retireHooks) > 0 {
		if old := r.snap.Load(); old != nil {
			for name, a := range old.active {
				na, ok := s.active[name]
				if ok && na.ID == a.ID {
					continue
				}
				for _, fn := range r.retireHooks {
					fn(a.ID.String())
				}
			}
		}
	}
	r.snap.Store(s)
}

// Versions returns the full version history of a name, oldest first, with
// quarantine flags.
func (r *Registry) Versions(name string) []VersionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := r.names[name]
	if sr == nil {
		return nil
	}
	out := make([]VersionInfo, len(sr.versions))
	for i, a := range sr.versions {
		out[i] = VersionInfo{
			ID:          a.ID,
			Kind:        a.Kind,
			Task:        a.Task,
			Bytes:       a.Bytes,
			Quarantined: sr.quarantined[a.ID.Version],
			Active:      sr.active == a.ID.Version,
		}
	}
	return out
}

// VersionInfo describes one published version for introspection endpoints.
type VersionInfo struct {
	ID          ArtifactID `json:"id"`
	Kind        Kind       `json:"-"`
	Task        string     `json:"task,omitempty"`
	Bytes       int64      `json:"bytes"`
	Quarantined bool       `json:"quarantined,omitempty"`
	Active      bool       `json:"active,omitempty"`
}

// Stats are the registry's lifetime counters.
type Stats struct {
	// Publishes counts successful Publish calls (every new version).
	Publishes uint64 `json:"publishes"`
	// Rollbacks counts active-version rollbacks (via Rollback or Demote of
	// an active version with a healthy prior).
	Rollbacks uint64 `json:"rollbacks"`
	// Demotions counts versions quarantined as unhealthy.
	Demotions uint64 `json:"demotions"`
	// Names is the number of distinct artifact names.
	Names int `json:"names"`
	// Versions is the total number of published versions across all names.
	Versions int `json:"versions"`
	// Seq is the current snapshot sequence number.
	Seq uint64 `json:"seq"`
}

// Stats returns the lifetime counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Publishes: r.publishes,
		Rollbacks: r.rollbacks,
		Demotions: r.demotions,
		Names:     len(r.names),
		Seq:       r.seq,
	}
	for _, sr := range r.names {
		st.Versions += len(sr.versions)
	}
	return st
}

// structuralSum derives a stable tag for artifacts published without a
// content checksum (test fakes, synthetic models): FNV-1a over the
// descriptive fields. It is NOT a weight checksum — real model publishers
// pass one computed by vit/quant checksummed serialization.
func structuralSum(a *Artifact) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|%d|%g|%d", a.Name, a.Kind, a.Task, a.Bytes, a.LatencyUS, a.ID.Version)
	return fmt.Sprintf("%08x", h.Sum64()&0xffffffff)
}
