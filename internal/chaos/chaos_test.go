package chaos_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/serve"
	"itask/internal/tensor"
)

// mkImage builds a small deterministic image whose content (and therefore
// poison verdict) is a pure function of i.
func mkImage(i int) *tensor.Tensor {
	img := tensor.New(4)
	for j := range img.Data {
		img.Data[j] = float32(i)*4 + float32(j)
	}
	return img
}

// cleanImage returns an image that is NOT poison under b, nudging the
// content deterministically until the hash clears the threshold.
func cleanImage(t *testing.T, b *chaos.Backend, i int) *tensor.Tensor {
	t.Helper()
	img := mkImage(1_000_000 + i)
	for n := 0; b.IsPoison(img); n++ {
		if n > 1000 {
			t.Fatal("could not find a clean image in 1000 nudges")
		}
		img.Data[0]++
	}
	return img
}

func newFixed() *chaos.Fixed {
	return chaos.NewFixed(map[string]string{
		"patrol":  "patrol-student",
		"inspect": "gen",
	}, "gen")
}

func TestIsPoisonDeterministic(t *testing.T) {
	img := mkImage(7)
	first := chaos.IsPoison(42, 0.5, img)
	for i := 0; i < 10; i++ {
		if chaos.IsPoison(42, 0.5, img) != first {
			t.Fatal("IsPoison not stable across calls")
		}
	}
	if chaos.IsPoison(42, 0, img) {
		t.Error("rate 0 should never be poison")
	}
	if !chaos.IsPoison(42, 1, img) {
		t.Error("rate 1 should always be poison")
	}
	if chaos.IsPoison(42, 0.5, nil) {
		t.Error("nil image should never be poison")
	}
	// The seed matters: over many images, two seeds must disagree
	// somewhere.
	same := true
	for i := 0; i < 256 && same; i++ {
		im := mkImage(i)
		same = chaos.IsPoison(1, 0.5, im) == chaos.IsPoison(2, 0.5, im)
	}
	if same {
		t.Error("seeds 1 and 2 agree on 256 images; seed not mixed in")
	}
}

func TestBreakAndHealForceFaults(t *testing.T) {
	b := chaos.Wrap(newFixed(), chaos.Config{Seed: 1})
	imgs := []*tensor.Tensor{mkImage(0)}

	b.Break("patrol-student", chaos.FaultError)
	if _, _, err := b.DetectBatch("patrol-student", "patrol", imgs); err == nil {
		t.Fatal("forced error mode returned nil error")
	}
	// Other variants stay healthy.
	if _, _, err := b.DetectBatch("gen", "patrol", imgs); err != nil {
		t.Fatalf("unbroken variant errored: %v", err)
	}

	b.Break("patrol-student", chaos.FaultPanic)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("forced panic mode did not panic")
			}
		}()
		b.DetectBatch("patrol-student", "patrol", imgs)
	}()

	b.Heal("patrol-student")
	if _, _, err := b.DetectBatch("patrol-student", "patrol", imgs); err != nil {
		t.Fatalf("healed variant errored: %v", err)
	}
	st := b.Stats()
	if st.ForcedFaults != 2 {
		t.Errorf("ForcedFaults = %d, want 2", st.ForcedFaults)
	}
	if st.Executions != 4 {
		t.Errorf("Executions = %d, want 4", st.Executions)
	}
}

func TestPoisonBatchPanicsAndIsCounted(t *testing.T) {
	b := chaos.Wrap(newFixed(), chaos.Config{Seed: 9, PanicRate: 1})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("poison batch did not panic")
			}
			if !strings.Contains(r.(string), "poison") {
				t.Errorf("panic value %q does not name the poison", r)
			}
		}()
		b.DetectBatch("gen", "patrol", []*tensor.Tensor{mkImage(0)})
	}()
	if st := b.Stats(); st.PoisonPanics != 1 {
		t.Errorf("PoisonPanics = %d, want 1", st.PoisonPanics)
	}
}

func TestCorruptionTruncatesPayloads(t *testing.T) {
	b := chaos.Wrap(newFixed(), chaos.Config{Seed: 3, CorruptRate: 1})
	imgs := []*tensor.Tensor{mkImage(0), mkImage(1), mkImage(2)}
	payloads, _, err := b.DetectBatch("gen", "patrol", imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(imgs)-1 {
		t.Errorf("corrupted payload count = %d, want %d", len(payloads), len(imgs)-1)
	}
	if st := b.Stats(); st.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", st.Corruptions)
	}
}

func TestOptionalInterfaceDelegation(t *testing.T) {
	fixed := newFixed()
	b := chaos.Wrap(fixed, chaos.Config{})
	if v, err := b.RouteFallback("patrol"); err != nil || v != "gen" {
		t.Errorf("RouteFallback = %q, %v; want gen", v, err)
	}
	b.EvictVariant("patrol-student")
	if fixed.Evictions("patrol-student") != 1 {
		t.Error("eviction not delegated to inner backend")
	}
	if b.Stats().Evictions != 1 {
		t.Error("eviction not counted")
	}
	// Fixed validates nothing and has no cache; the wrapper must not
	// invent either.
	if err := b.ValidateImage(mkImage(0)); err != nil {
		t.Errorf("ValidateImage on non-validating inner: %v", err)
	}
	if cs := b.CacheStats(); cs.Hits+cs.Misses != 0 {
		t.Errorf("CacheStats on cache-less inner: %+v", cs)
	}
}

func TestHangTripsServeWatchdog(t *testing.T) {
	fixed := newFixed()
	b := chaos.Wrap(fixed, chaos.Config{Seed: 5, HangFor: 300 * time.Millisecond})
	b.Break("patrol-student", chaos.FaultHang)
	srv, err := serve.New(b, serve.Config{
		Workers: 1, MaxBatch: 4, QueueCap: 8, LatencyWindow: 16,
		Watchdog: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	_, err = srv.Detect(context.Background(), serve.Request{Task: "patrol", Image: cleanImage(t, b, 0)})
	if !errors.Is(err, serve.ErrWatchdog) {
		t.Fatalf("hung execution returned %v, want ErrWatchdog", err)
	}
	if snap := srv.Snapshot(); snap.WatchdogTimeouts == 0 {
		t.Error("watchdog timeout not counted")
	}
}

func TestLatencyInjectionTripsSLOAndDegrades(t *testing.T) {
	fixed := newFixed()
	// Every execution sleeps 30ms against a 5ms SLO: two breaches trip the
	// patrol lane open and the third request degrades to the fallback.
	b := chaos.Wrap(fixed, chaos.Config{Seed: 5, LatencyRate: 1, Latency: 30 * time.Millisecond})
	srv, err := serve.New(b, serve.Config{
		Workers: 1, MaxBatch: 4, QueueCap: 8, LatencyWindow: 16,
		LatencySLO:        5 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerBackoff:    time.Minute,
		BreakerMaxBackoff: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := srv.Detect(ctx, serve.Request{Task: "patrol", Image: cleanImage(t, b, i)}); err != nil {
			t.Fatalf("slow-but-successful request %d errored: %v", i, err)
		}
	}
	res, err := srv.Detect(ctx, serve.Request{Task: "patrol", Image: cleanImage(t, b, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != serve.DegradedBreakerOpen || res.Model != "gen" {
		t.Errorf("post-SLO-trip request: model=%q degraded=%q, want gen/breaker-open", res.Model, res.Degraded)
	}
	snap := srv.Snapshot()
	if snap.SLOBreaches < 2 {
		t.Errorf("SLOBreaches = %d, want >= 2", snap.SLOBreaches)
	}
	if snap.BreakerOpens == 0 {
		t.Error("breaker did not open on SLO breaches")
	}
}

// TestChaosAcceptance is the PR's acceptance scenario end to end. Phase 1:
// a 64-request run against a backend whose requests are poison with
// probability 10% (deterministically, keyed by image content) completes
// with exactly the poison requests failing and everything else succeeding —
// no crash, no collateral failures. Phase 2: the task-specific variant is
// broken outright; its lane's breaker trips open and subsequent traffic is
// observably served by the quantized fallback, visible in the /metricsz
// snapshot counters.
func TestChaosAcceptance(t *testing.T) {
	fixed := newFixed()
	b := chaos.Wrap(fixed, chaos.Config{Seed: 42, PanicRate: 0.10})
	cfg := serve.Config{
		Workers:       2,
		MaxBatch:      8,
		BatchDelay:    time.Hour, // lanes flush only when full: 64 requests = 8 full batches
		QueueCap:      128,
		LatencyWindow: 256,
		Watchdog:      5 * time.Second,
		RetryBudget:   3, // log2(MaxBatch): isolates any single poison
		// High enough that phase 1's poison panics (interleaved with the
		// successes of their quarantined batch-mates) never trip it, low
		// enough that phase 2 trips it in a few bursts.
		BreakerThreshold:  20,
		BreakerBackoff:    5 * time.Minute, // stays open for the rest of the test
		BreakerMaxBackoff: 5 * time.Minute,
	}
	srv, err := serve.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// Phase 1: 64 requests, deterministic ~10% poison.
	const n = 64
	imgs := make([]*tensor.Tensor, n)
	poison := make([]bool, n)
	poisonCount := 0
	for i := range imgs {
		imgs[i] = mkImage(i)
		poison[i] = b.IsPoison(imgs[i])
		if poison[i] {
			poisonCount++
		}
	}
	if poisonCount < 2 || poisonCount > 16 {
		t.Fatalf("seed 42 yields %d/64 poison; pick a seed near the 10%% rate", poisonCount)
	}
	t.Logf("poison set: %d/%d requests", poisonCount, n)

	outs := make([]<-chan serve.Outcome, n)
	for i := range imgs {
		ch, err := srv.Submit(serve.Request{Task: "patrol", Image: imgs[i]})
		if err != nil {
			t.Fatalf("submit %d refused: %v", i, err)
		}
		outs[i] = ch
	}
	for i, ch := range outs {
		out := <-ch
		if poison[i] {
			if !errors.Is(out.Err, serve.ErrBackendPanic) {
				t.Errorf("poison request %d: err = %v, want ErrBackendPanic", i, out.Err)
			}
			var pe *serve.PanicError
			if !errors.As(out.Err, &pe) || len(pe.Stack) == 0 {
				t.Errorf("poison request %d: error lacks the captured panic stack", i)
			}
		} else {
			if out.Err != nil {
				t.Errorf("clean request %d failed: %v (quarantine leaked collateral damage)", i, out.Err)
			} else if out.Res.Degraded != "" {
				t.Errorf("clean request %d served degraded (%s); breaker tripped during phase 1", i, out.Res.Degraded)
			}
		}
	}

	phase1 := srv.Snapshot()
	if phase1.Completed != uint64(n-poisonCount) {
		t.Errorf("Completed = %d, want %d", phase1.Completed, n-poisonCount)
	}
	if phase1.Failed != uint64(poisonCount) {
		t.Errorf("Failed = %d, want %d", phase1.Failed, poisonCount)
	}
	if phase1.Quarantined != uint64(poisonCount) {
		t.Errorf("Quarantined = %d, want %d (every poison isolated to a batch of one)",
			phase1.Quarantined, poisonCount)
	}
	if phase1.PanicsRecovered < uint64(poisonCount) {
		t.Errorf("PanicsRecovered = %d, want >= %d", phase1.PanicsRecovered, poisonCount)
	}
	if phase1.QuarantineRetry == 0 {
		t.Error("no quarantine retries: poison was never batched with clean requests")
	}
	if phase1.VariantEvictions == 0 || fixed.Evictions("patrol-student") == 0 {
		t.Error("panicking variant's cached weights were never evicted")
	}
	if phase1.BreakerOpens != 0 {
		t.Errorf("breaker opened %d times during quarantine; threshold too tight", phase1.BreakerOpens)
	}

	// Phase 2: break the student outright and hammer its lane until the
	// breaker opens; traffic must then be served degraded on the fallback.
	b.Break("patrol-student", chaos.FaultError)
	var degradedRes *serve.Result
	for burst := 0; burst < 12 && degradedRes == nil; burst++ {
		chans := make([]<-chan serve.Outcome, 0, cfg.MaxBatch)
		for i := 0; i < cfg.MaxBatch; i++ {
			ch, err := srv.Submit(serve.Request{Task: "patrol", Image: cleanImage(t, b, burst*cfg.MaxBatch+i)})
			if err != nil {
				t.Fatalf("phase-2 submit refused: %v", err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			if out := <-ch; out.Err == nil && out.Res.Degraded == serve.DegradedBreakerOpen {
				r := out.Res
				degradedRes = &r
			}
		}
	}
	if degradedRes == nil {
		t.Fatal("breaker never opened / no request was served by the fallback")
	}
	if degradedRes.Model != "gen" {
		t.Errorf("degraded request served by %q, want the quantized fallback gen", degradedRes.Model)
	}
	if fixed.Executions("gen") == 0 {
		t.Error("fallback variant never executed a batch")
	}

	phase2 := srv.Snapshot()
	if phase2.BreakerOpens == 0 {
		t.Error("BreakerOpens = 0 after forced failures")
	}
	if phase2.DegradedRouted == 0 || phase2.DegradedServed == 0 {
		t.Errorf("degraded traffic not visible in counters: routed=%d served=%d",
			phase2.DegradedRouted, phase2.DegradedServed)
	}
	open := false
	for _, lb := range phase2.Breakers {
		if lb.Variant == "patrol-student" && lb.Task == "patrol" && lb.State == "open" {
			open = true
			if lb.RetryAfterMS <= 0 {
				t.Error("open lane advertises no retry-after")
			}
		}
	}
	if !open {
		t.Errorf("patrol-student lane not reported open in snapshot: %+v", phase2.Breakers)
	}
	// Zero crashes: the server is still serving — a full batch on a
	// healthy, unbroken lane round-trips. (A single request would sit in
	// the hour-long coalescing window forever.)
	healthy := make([]<-chan serve.Outcome, 0, cfg.MaxBatch)
	for i := 0; i < cfg.MaxBatch; i++ {
		ch, err := srv.Submit(serve.Request{Task: "inspect", Image: cleanImage(t, b, 2000+i)})
		if err != nil {
			t.Fatalf("healthy-lane submit refused after chaos: %v", err)
		}
		healthy = append(healthy, ch)
	}
	for i, ch := range healthy {
		out := <-ch
		if out.Err != nil || out.Res.Model != "gen" || out.Res.Degraded != "" {
			t.Fatalf("healthy lane after chaos, request %d: res=%+v err=%v", i, out.Res, out.Err)
		}
	}
}
