package chaos_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/serve"
)

// A poison storm — the same panicking frame arriving over and over, the
// viral-content case — executes exactly once: the first arrival panics, is
// quarantined in isolation, and lands in the negative cache; every following
// arrival is refused at admission with ErrQuarantined without touching a
// kernel. Healthy traffic flows throughout, and once the short negative TTL
// lapses the content is given a fresh execution.
func TestPoisonStormHitsNegativeCache(t *testing.T) {
	b := chaos.Wrap(newFixed(), chaos.Config{Seed: 21, PanicRate: 0.1})
	cfg := serve.DefaultConfig()
	cfg.BatchDelay = 0
	cfg.CacheBytes = 1 << 20
	cfg.CacheTTL = time.Minute
	cfg.NegativeTTL = 300 * time.Millisecond
	cfg.BreakerThreshold = 0 // keep the lane admitting; the negative cache is under test
	s, err := serve.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	poison := poisonImage(t, b, 0)
	const storm = 24

	if _, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: poison}); !errors.Is(err, serve.ErrBackendPanic) {
		t.Fatalf("first poison arrival: err = %v, want ErrBackendPanic", err)
	}
	panicsAfterFirst := b.Stats().PoisonPanics

	for i := 1; i < storm; i++ {
		_, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: poison})
		if !errors.Is(err, serve.ErrQuarantined) {
			t.Fatalf("storm arrival %d: err = %v, want ErrQuarantined", i, err)
		}
		if i%4 == 0 {
			// Healthy traffic interleaves untouched.
			if _, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: cleanImage(t, b, i)}); err != nil {
				t.Fatalf("healthy request during storm: %v", err)
			}
		}
	}

	if got := b.Stats().PoisonPanics; got != panicsAfterFirst {
		t.Fatalf("poison re-executed during storm: panics %d -> %d", panicsAfterFirst, got)
	}
	snap := s.Snapshot()
	if snap.QuarantineBlocked != storm-1 {
		t.Fatalf("QuarantineBlocked = %d, want %d", snap.QuarantineBlocked, storm-1)
	}

	// The negative entry ages out: the content earns one more (failing)
	// execution, proving recovery is possible once a fixed kernel ships.
	time.Sleep(350 * time.Millisecond)
	if _, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: poison}); !errors.Is(err, serve.ErrBackendPanic) {
		t.Fatalf("post-TTL poison arrival: err = %v, want ErrBackendPanic", err)
	}
	if got := b.Stats().PoisonPanics; got <= panicsAfterFirst {
		t.Fatal("post-TTL arrival did not re-execute")
	}
}
