package chaos_test

import (
	"testing"

	"itask/internal/chaos"
	"itask/internal/rcache"
)

// The workload generator must be deterministic (same universe and same rank
// stream on every run, so benches are comparable) and genuinely skewed (rank
// 0 dominates under zipf(1.1), so hot-key machinery actually engages).
func TestZipfWorkloadDeterministicAndSkewed(t *testing.T) {
	a := chaos.ZipfImages(64, 3, 8, 8)
	b := chaos.ZipfImages(64, 3, 8, 8)
	digests := make(map[uint64]int, len(a))
	for i := range a {
		da, db := rcache.DigestImage(a[i]), rcache.DigestImage(b[i])
		if da != db {
			t.Fatalf("universe not deterministic at rank %d", i)
		}
		if prev, dup := digests[da]; dup {
			t.Fatalf("ranks %d and %d collide on digest", prev, i)
		}
		digests[da] = i
	}

	s1 := chaos.NewZipfStream(7, 1.1, 64)
	s2 := chaos.NewZipfStream(7, 1.1, 64)
	counts := make([]int, 64)
	const draws = 20000
	for i := 0; i < draws; i++ {
		r := s1.Next()
		if r2 := s2.Next(); r2 != r {
			t.Fatalf("streams with equal seeds diverged at draw %d: %d vs %d", i, r, r2)
		}
		if r < 0 || r >= 64 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] < draws/10 {
		t.Fatalf("rank 0 drew %d/%d — distribution not head-heavy", counts[0], draws)
	}
	if counts[0] <= counts[32] {
		t.Fatalf("rank 0 (%d) not hotter than rank 32 (%d)", counts[0], counts[32])
	}
}
