package chaos_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/serve"
	"itask/internal/tensor"
)

// poisonImage returns an image that IS poison under b, nudging the content
// deterministically until the hash crosses the threshold.
func poisonImage(t *testing.T, b *chaos.Backend, i int) *tensor.Tensor {
	t.Helper()
	img := mkImage(2_000_000 + i)
	for n := 0; !b.IsPoison(img); n++ {
		if n > 1000 {
			t.Fatal("could not find a poison image in 1000 nudges")
		}
		img.Data[0]++
	}
	return img
}

// With the result cache and singleflight coalescing enabled, a storm of
// concurrent duplicates — half poison content, half clean — must satisfy the
// quarantine contract end to end: every poison duplicate fails with its own
// backend panic (a poisoned leader never fails a coalesced follower without
// re-execution, and a panic outcome is never shared as a result), every
// clean duplicate succeeds, and the poison verdict is never cached (a later
// poison submission still executes and still fails, while a later clean
// submission is served from cache).
func TestPoisonNeverCachedNorSharedWithFollowers(t *testing.T) {
	fixed := newFixed()
	// Every execution sleeps 10ms (LatencyRate 1), widening the in-flight
	// window so concurrent clean duplicates genuinely coalesce; poison
	// panics fire before the latency draw, so poison failures stay fast.
	cb := chaos.Wrap(fixed, chaos.Config{
		Seed:        7,
		PanicRate:   0.5,
		LatencyRate: 1,
		Latency:     10 * time.Millisecond,
	})
	cfg := serve.DefaultConfig()
	cfg.Workers = 2
	cfg.MaxBatch = 1 // isolate executions: every panic is a quarantine verdict
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 0
	cfg.Watchdog = 0
	cfg.CacheBytes = 1 << 20
	cfg.CacheTTL = time.Minute
	cfg.Coalesce = true
	s, err := serve.New(cb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	poison := poisonImage(t, cb, 0)
	clean := cleanImage(t, cb, 0)

	const dup = 6
	var wg sync.WaitGroup
	poisonErrs := make([]error, dup)
	cleanRes := make([]serve.Result, dup)
	cleanErrs := make([]error, dup)
	for i := 0; i < dup; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, poisonErrs[i] = s.Detect(context.Background(), serve.Request{Task: "patrol", Image: poison})
		}(i)
		go func(i int) {
			defer wg.Done()
			cleanRes[i], cleanErrs[i] = s.Detect(context.Background(), serve.Request{Task: "patrol", Image: clean})
		}(i)
	}
	wg.Wait()

	for i := 0; i < dup; i++ {
		if !errors.Is(poisonErrs[i], serve.ErrBackendPanic) {
			t.Errorf("poison duplicate %d: err = %v, want a backend panic of its own", i, poisonErrs[i])
		}
		if cleanErrs[i] != nil {
			t.Errorf("clean duplicate %d failed: %v — poison leaked into a coalesced follower", i, cleanErrs[i])
		}
	}

	// The poison verdict was never cached: a fresh submission still executes
	// (and still panics) instead of being served anything from memory.
	if _, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: poison}); !errors.Is(err, serve.ErrBackendPanic) {
		t.Fatalf("later poison request: err = %v, want backend panic (nothing cacheable existed)", err)
	}
	// The clean result WAS cached: a fresh duplicate is a pure memory hit.
	res, err := s.Detect(context.Background(), serve.Request{Task: "patrol", Image: clean})
	if err != nil || !res.Cached {
		t.Fatalf("later clean request: (%+v, %v), want a cache hit", res, err)
	}

	snap := s.Snapshot()
	if snap.ResultCacheHits == 0 {
		t.Error("no cache hits recorded across the storm")
	}
	if snap.PanicsRecovered == 0 {
		t.Error("no recovered panics recorded — poison never executed?")
	}
}
