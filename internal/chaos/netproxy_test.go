package chaos_test

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"itask/internal/chaos"
)

// echoBackend is a real TCP server that echoes every byte, the ground
// truth behind the proxy under test.
func echoBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func newProxy(t *testing.T, backend string) *chaos.NetProxy {
	t.Helper()
	p, err := chaos.NewNetProxy("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and reads the echo back through conn.
func roundTrip(c net.Conn, msg string) (string, error) {
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.ReadFull(c, buf)
	return string(buf[:n]), err
}

func TestNetProxyRelay(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	c := dial(t, p.Addr())
	got, err := roundTrip(c, "hello fleet")
	if err != nil || got != "hello fleet" {
		t.Fatalf("relay: %q err=%v", got, err)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.BytesUp == 0 || st.BytesDown == 0 {
		t.Fatalf("stats after relay: %+v", st)
	}
}

func TestNetProxyLatency(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	p.Latency = 60 * time.Millisecond
	p.SetFault(chaos.NetLatency)
	c := dial(t, p.Addr())
	start := time.Now()
	if got, err := roundTrip(c, "slow"); err != nil || got != "slow" {
		t.Fatalf("latency relay: %q err=%v", got, err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want >= injected 60ms", d)
	}
}

// A blackholed connection looks alive but never answers — the only way out
// is the client's own deadline. Healing closes the starved connections;
// traffic after the heal flows again.
func TestNetProxyBlackholeAndHeal(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	p.SetFault(chaos.NetBlackhole)

	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("anyone home?")); err != nil {
		t.Fatalf("write into blackhole failed outright: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackhole read: n=%d err=%v, want deadline timeout", n, err)
	}
	if st := p.Stats(); st.Blackholed != 1 || st.BytesUp != 0 {
		t.Fatalf("stats in blackhole: %+v", st)
	}

	p.Heal()
	// The starved connection is closed by the heal (its bytes are lost)...
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("healed blackhole conn read: err=%v, want closed", err)
	}
	// ...and a fresh connection relays normally.
	c2 := dial(t, p.Addr())
	if got, err := roundTrip(c2, "back"); err != nil || got != "back" {
		t.Fatalf("post-heal relay: %q err=%v", got, err)
	}
}

// A partition refuses new connections and resets established ones.
func TestNetProxyPartition(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	c := dial(t, p.Addr())
	if got, err := roundTrip(c, "pre"); err != nil || got != "pre" {
		t.Fatalf("pre-partition relay: %q err=%v", got, err)
	}

	p.SetFault(chaos.NetPartition)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("established conn survived the partition (read %d bytes)", n)
	}

	// New connections die without a byte of service.
	c2 := dial(t, p.Addr())
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := c2.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned dial: n=%d err=%v, want refusal", n, err)
	}
	if st := p.Stats(); st.Refused == 0 || st.Reset == 0 {
		t.Fatalf("partition stats: %+v", st)
	}

	p.Heal()
	c3 := dial(t, p.Addr())
	if got, err := roundTrip(c3, "post"); err != nil || got != "post" {
		t.Fatalf("post-heal relay: %q err=%v", got, err)
	}
}

// Mid-body reset: the client receives a truncated prefix and then a hard
// error — never a clean EOF it could mistake for a complete response.
func TestNetProxyResetMidBody(t *testing.T) {
	// A backend that pushes a 10-byte body on accept.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				c.Write([]byte("0123456789"))
				time.Sleep(50 * time.Millisecond)
				c.Close()
			}()
		}
	}()

	p := newProxy(t, ln.Addr().String())
	p.ResetAfter = 4
	p.SetFault(chaos.NetResetMidBody)

	c := dial(t, p.Addr())
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	total := 0
	buf := make([]byte, 32)
	var readErr error
	for {
		n, err := c.Read(buf)
		total += n
		if err != nil {
			readErr = err
			break
		}
	}
	if readErr == io.EOF {
		t.Fatal("mid-body reset delivered a clean EOF")
	}
	if total >= 10 {
		t.Fatalf("client got the whole %d-byte body through a mid-body reset", total)
	}
	if st := p.Stats(); st.Reset == 0 {
		t.Fatalf("reset not counted: %+v", st)
	}
}

func TestNetProxySlowClose(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	p.SetFault(chaos.NetSlowClose)
	c := dial(t, p.Addr())
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if n != 0 || err != io.EOF {
		t.Fatalf("slow-close read: n=%d err=%v, want immediate EOF", n, err)
	}
}

func TestNetProxyCloseIdempotent(t *testing.T) {
	p := newProxy(t, echoBackend(t))
	c := dial(t, p.Addr())
	if got, err := roundTrip(c, "x"); err != nil || got != "x" {
		t.Fatalf("relay: %q err=%v", got, err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", p.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("closed proxy still accepting")
	}
}
