package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// netproxy.go: a TCP-level fault injector. The package's Backend wrapper
// exercises in-process failure modes (panics, errors, hangs), but the
// gateway's membership and failover machinery fails at a lower layer: the
// network. A blackholed shard accepts connections and never answers — no
// error, no RST, just a request pinned until its deadline. A partitioned
// shard refuses new connections and resets live ones. A dying shard cuts a
// response off mid-body. NetProxy reproduces all of these deterministically
// by sitting between the gateway and a real backend as a dumb TCP relay
// whose fault mode can be flipped at runtime:
//
//	px, _ := chaos.NewNetProxy("127.0.0.1:0", backendAddr)
//	gatewayDialsTo := px.Addr()            // route traffic through the proxy
//	px.SetFault(chaos.NetBlackhole)        // requests now hang silently
//	px.Heal()                              // and recover
//
// Fault transitions affect both new connections and (where meaningful)
// connections already in flight, because that is what real partitions do:
// NetPartition resets established connections, Heal unblocks blackholed
// ones (by closing them — the data lost in the hole stays lost, exactly
// like a healed network path with dropped packets).

// NetFault selects the proxy's failure behaviour.
type NetFault int

const (
	// NetNone relays traffic untouched.
	NetNone NetFault = iota
	// NetLatency relays traffic after delaying each copy direction's first
	// byte batch by the configured Latency — a congested or distant path.
	NetLatency
	// NetBlackhole accepts connections and swallows bytes in both
	// directions without ever forwarding or answering: the peer sees a
	// healthy TCP session that simply never responds. The classic
	// "process alive, service dead" failure, detectable only by deadline.
	NetBlackhole
	// NetPartition refuses new connections (immediate close) and resets
	// the ones already established: the shard has fallen off the network.
	NetPartition
	// NetResetMidBody relays the first ResetAfter bytes of each backend
	// response, then hard-resets the connection (SO_LINGER 0 → RST): a
	// shard dying mid-reply, leaving the client a truncated body.
	NetResetMidBody
	// NetSlowClose accepts and immediately half-closes without relaying:
	// the peer can write but reads EOF — a listener in a crashed state.
	NetSlowClose
)

func (f NetFault) String() string {
	switch f {
	case NetNone:
		return "none"
	case NetLatency:
		return "latency"
	case NetBlackhole:
		return "blackhole"
	case NetPartition:
		return "partition"
	case NetResetMidBody:
		return "reset-mid-body"
	case NetSlowClose:
		return "slow-close"
	default:
		return "unknown"
	}
}

// NetProxyStats counts proxy activity, for asserting that a fault actually
// engaged.
type NetProxyStats struct {
	// Accepted counts connections accepted (including ones then refused by
	// a fault); Refused counts connections closed by NetPartition or
	// NetSlowClose before relaying; Reset counts connections hard-reset
	// (partition or mid-body); Blackholed counts connections that entered a
	// blackhole.
	Accepted   uint64
	Refused    uint64
	Reset      uint64
	Blackholed uint64
	// BytesUp / BytesDown count relayed payload bytes (client→backend and
	// backend→client).
	BytesUp   uint64
	BytesDown uint64
}

// NetProxy is a runtime-switchable TCP fault injector in front of one
// backend address. Safe for concurrent use.
type NetProxy struct {
	ln      net.Listener
	backend string

	mu     sync.Mutex
	fault  NetFault
	hole   chan struct{} // closed on Heal/SetFault to release blackholed conns
	conns  map[net.Conn]struct{}
	closed bool

	// Latency is the per-direction first-copy delay under NetLatency.
	Latency time.Duration
	// ResetAfter is how many backend-response bytes NetResetMidBody relays
	// before resetting (default 1).
	ResetAfter int

	accepted, refused, reset, blackholed atomic.Uint64
	bytesUp, bytesDown                   atomic.Uint64

	done sync.WaitGroup
}

// NewNetProxy listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) and relays every connection to backendAddr under the current fault
// mode (initially NetNone).
func NewNetProxy(listenAddr, backendAddr string) (*NetProxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &NetProxy{
		ln:         ln,
		backend:    backendAddr,
		hole:       make(chan struct{}),
		conns:      map[net.Conn]struct{}{},
		ResetAfter: 1,
	}
	p.done.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dialable address.
func (p *NetProxy) Addr() string { return p.ln.Addr().String() }

// SetFault switches the fault mode. The switch applies to new connections
// immediately; NetPartition additionally resets connections already in
// flight, and leaving NetBlackhole releases (closes) the connections it
// had swallowed.
func (p *NetProxy) SetFault(f NetFault) {
	p.mu.Lock()
	p.fault = f
	// The generation channel releases anything waiting on the old fault
	// state (blackholed connections, latency sleeps).
	close(p.hole)
	p.hole = make(chan struct{})
	var toReset []net.Conn
	if f == NetPartition {
		for c := range p.conns {
			toReset = append(toReset, c)
		}
	}
	p.mu.Unlock()
	for _, c := range toReset {
		p.reset.Add(1)
		hardReset(c)
	}
}

// Heal returns the proxy to transparent relaying.
func (p *NetProxy) Heal() { p.SetFault(NetNone) }

// Fault reports the current fault mode.
func (p *NetProxy) Fault() NetFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

// Stats snapshots the activity counters.
func (p *NetProxy) Stats() NetProxyStats {
	return NetProxyStats{
		Accepted:   p.accepted.Load(),
		Refused:    p.refused.Load(),
		Reset:      p.reset.Load(),
		Blackholed: p.blackholed.Load(),
		BytesUp:    p.bytesUp.Load(),
		BytesDown:  p.bytesDown.Load(),
	}
}

// Close stops the listener and closes every tracked connection.
func (p *NetProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	close(p.hole)
	p.hole = make(chan struct{})
	var conns []net.Conn
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.done.Wait()
	return err
}

func (p *NetProxy) acceptLoop() {
	defer p.done.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.done.Add(1)
		go p.serve(c)
	}
}

// track registers a connection for fault-transition and Close handling;
// the returned func untracks it.
func (p *NetProxy) track(c net.Conn) func() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return func() {}
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *NetProxy) serve(client net.Conn) {
	defer p.done.Done()
	untrack := p.track(client)
	defer untrack()
	defer client.Close()

	p.mu.Lock()
	fault, hole, latency := p.fault, p.hole, p.Latency
	p.mu.Unlock()

	switch fault {
	case NetPartition, NetSlowClose:
		// Refuse: partition closes outright; slow-close half-closes the
		// write side first so the peer reads EOF after a beat.
		p.refused.Add(1)
		if fault == NetSlowClose {
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
				time.Sleep(5 * time.Millisecond)
			}
		}
		return
	case NetBlackhole:
		p.blackholed.Add(1)
		p.swallow(client, hole)
		return
	}

	server, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	untrackSrv := p.track(server)
	defer untrackSrv()
	defer server.Close()

	if fault == NetLatency && latency > 0 {
		if !p.sleepLive(latency, hole) {
			return
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(&countWriter{w: server, n: &p.bytesUp}, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite() // propagate the client's half-close
		}
	}()
	go func() {
		defer wg.Done()
		if fault == NetResetMidBody {
			limit := int64(p.ResetAfter)
			if limit < 1 {
				limit = 1
			}
			io.CopyN(&countWriter{w: client, n: &p.bytesDown}, server, limit)
			// Count before sending the RST: the peer must never observe the
			// reset while Stats still reads zero.
			p.reset.Add(1)
			hardReset(client)
			server.Close()
			return
		}
		io.Copy(&countWriter{w: client, n: &p.bytesDown}, server)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	wg.Wait()
}

// swallow reads and discards client bytes until the hole is healed (the
// generation channel closes) or the peer gives up. Healing closes the
// connection: the bytes that fell in the hole are gone, as on a real
// healed path.
func (p *NetProxy) swallow(client net.Conn, hole <-chan struct{}) {
	dead := make(chan struct{})
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		buf := make([]byte, 4096)
		for {
			if _, err := client.Read(buf); err != nil {
				close(dead)
				return
			}
		}
	}()
	select {
	case <-hole:
		client.Close() // releases the reader goroutine too
		<-dead
	case <-dead:
	}
}

// sleepLive pauses for d unless the fault generation changes (hole closes)
// first; reports whether the pause ran to completion.
func (p *NetProxy) sleepLive(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return true // fault lifted mid-latency: just proceed
	}
}

// countWriter records relayed bytes as they flow, so Stats observes
// traffic while connections are still open.
type countWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c *countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n.Add(uint64(n))
	return n, err
}

// hardReset aborts a TCP connection with an RST instead of a FIN
// (SO_LINGER 0), so the peer sees ECONNRESET — the signature of a process
// killed mid-reply — rather than a clean EOF it could mistake for a
// complete response.
func hardReset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
