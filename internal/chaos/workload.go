package chaos

import (
	"math/rand"

	"itask/internal/tensor"
)

// This file is the package's workload side: deterministic request streams
// for load tests and benchmarks. Real detection traffic is zipf-skewed — a
// handful of viral frames dominate while a long tail appears once — and a
// serving stack whose benches only exercise uniform or fixed-duplicate
// streams never sees the contention that skew creates (one cache shard, one
// singleflight entry, one gateway shard absorbing a fifth of all traffic).
// ZipfImages + ZipfStream make skewed workloads a one-liner in any bench.

// ZipfImages builds a deterministic universe of n distinct (c,h,w) images.
// Index i's content is a pure function of i, so every caller — concurrent
// bench goroutines, separate processes, reruns — sees byte-identical images
// and therefore identical content digests. Rank 0 is the hottest frame under
// a ZipfStream over the same n.
func ZipfImages(n, c, h, w int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := tensor.New(c, h, w)
		// Mix the index into every pixel so images are far apart in content
		// space (no two differ by only a digest-colliding perturbation).
		z := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		for j := range img.Data {
			z ^= z >> 12
			z ^= z << 25
			z ^= z >> 27
			img.Data[j] = float32(z%4096)/256 - 8
		}
		imgs[i] = img
	}
	return imgs
}

// ZipfStream is a seeded zipf(s) sampler of ranks in [0, n): Next returns
// rank r with probability proportional to 1/(r+1)^s. Not safe for concurrent
// use — give each client goroutine its own stream (distinct seeds) over one
// shared ZipfImages universe.
type ZipfStream struct {
	z *rand.Zipf
}

// NewZipfStream builds a stream over n ranks with skew s (> 1; the paper-
// adjacent default for web-like traffic is 1.1). Panics on invalid s or n,
// matching math/rand.NewZipf.
func NewZipfStream(seed uint64, s float64, n int) *ZipfStream {
	r := rand.New(rand.NewSource(int64(seed)))
	return &ZipfStream{z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// Next returns the stream's next rank in [0, n).
func (s *ZipfStream) Next() int { return int(s.z.Uint64()) }
