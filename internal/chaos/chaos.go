// Package chaos is iTask's fault-injection harness: a serving backend
// wrapper that injects panics, errors, latency, and payload corruption at
// configurable, fully seeded rates. It exists to drive deterministic tests
// of the serving layer's fault-tolerance machinery — panic isolation,
// poison-request quarantine, circuit breaking, watchdog deadlines, and
// quantized-fallback degradation — without depending on real kernel bugs.
//
// Two injection styles are provided, chosen for determinism:
//
//   - Per-request poison (Config.PanicRate): whether a request is poison is
//     a pure function of its image content and the seed (an FNV hash of the
//     pixel bits), so the poison set of a workload is identical across
//     runs, goroutine schedules, batch compositions, and retries. Executing
//     any batch that contains a poison image panics — exactly the behaviour
//     of a shape- or value-dependent kernel bug.
//   - Per-execution draws (Config.ErrorRate, LatencyRate, CorruptRate):
//     drawn from a seeded PRNG guarded by a mutex. Deterministic given a
//     serial call order (one worker); under concurrency the draw sequence
//     depends on scheduling, so tests that need exact reproducibility
//     should prefer the per-request style or a single worker.
//
// Backend implements the serving layer's Backend, ContextBackend,
// FallbackRouter, VariantEvicter, ImageValidator, and CacheStatser
// contracts structurally (delegating the optional ones to the inner backend
// when it implements them), so it can be dropped between any server and
// backend unchanged. Injected hangs and latency sleeps honor execution-
// context cancellation, so the server's watchdog can actually stop them.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"itask/internal/sched"
	"itask/internal/tensor"
)

// FaultMode is a forced failure style for Break.
type FaultMode int

const (
	// FaultPanic makes every execution on the broken variant panic.
	FaultPanic FaultMode = iota
	// FaultError makes every execution return an error.
	FaultError
	// FaultHang makes every execution sleep Config.HangFor before
	// returning normally — watchdog bait.
	FaultHang
)

func (m FaultMode) String() string {
	switch m {
	case FaultPanic:
		return "panic"
	case FaultError:
		return "error"
	default:
		return "hang"
	}
}

// Config sets the injection rates. All rates are probabilities in [0,1];
// zero disables that fault class.
type Config struct {
	// Seed drives both the per-request poison hash and the per-execution
	// PRNG. Same seed + same workload = same poison set.
	Seed uint64
	// PanicRate is the per-request probability that an image is poison:
	// executing any batch containing it panics. Keyed by image content, so
	// it is deterministic per request (see the package comment).
	PanicRate float64
	// ErrorRate is the per-execution probability of a clean error return.
	ErrorRate float64
	// LatencyRate is the per-execution probability of sleeping Latency
	// before executing.
	LatencyRate float64
	// Latency is the injected sleep for LatencyRate draws.
	Latency time.Duration
	// CorruptRate is the per-execution probability of returning a
	// truncated payload slice (len(payloads) != len(imgs)) — the
	// wrong-cardinality corruption the serving layer detects and treats as
	// a batch failure.
	CorruptRate float64
	// HangFor is how long FaultHang executions sleep (default 1s).
	HangFor time.Duration
}

// Stats counts what the injector actually did, for test assertions.
type Stats struct {
	Executions   int
	PoisonPanics int
	ForcedFaults int
	Errors       int
	Latencies    int
	Corruptions  int
	Evictions    int
}

// Backend wraps an inner serving backend with fault injection. Safe for
// concurrent use.
type Backend struct {
	inner inner
	cfg   Config

	mu     sync.Mutex
	rng    uint64 // splitmix64 state for per-execution draws
	broken map[string]FaultMode
	stats  Stats
}

// inner is the structural contract of the wrapped backend (the serving
// layer's Backend shape, without importing it).
type inner interface {
	Route(task string) (string, error)
	DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error)
}

// Wrap builds a fault-injecting backend around inner.
func Wrap(in inner, cfg Config) *Backend {
	if cfg.HangFor <= 0 {
		cfg.HangFor = time.Second
	}
	return &Backend{
		inner:  in,
		cfg:    cfg,
		rng:    cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		broken: map[string]FaultMode{},
	}
}

// Break forces every execution on variant to fail with the given mode
// until Heal — how tests trip a lane's circuit breaker on demand.
func (b *Backend) Break(variant string, mode FaultMode) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken[variant] = mode
}

// Heal removes a forced failure installed by Break.
func (b *Backend) Heal(variant string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.broken, variant)
}

// Stats returns a copy of the injection counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// IsPoison reports whether img is a poison request under this backend's
// seed and PanicRate — a pure function of the pixel bits, so tests can
// compute the expected poison set of a workload up front.
func (b *Backend) IsPoison(img *tensor.Tensor) bool {
	return IsPoison(b.cfg.Seed, b.cfg.PanicRate, img)
}

// IsPoison is the deterministic poison predicate: an FNV-1a hash of the
// seed and the image's float bits, thresholded at rate.
func IsPoison(seed uint64, rate float64, img *tensor.Tensor) bool {
	if rate <= 0 || img == nil {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [8]byte
	putU64(buf[:], seed)
	h.Write(buf[:])
	for _, v := range img.Data {
		putU64(buf[:], uint64(math.Float32bits(v)))
		h.Write(buf[:])
	}
	// Map the hash onto [0,1) and threshold.
	const scale = 1 << 53
	u := float64(h.Sum64()>>11) / scale
	return u < rate
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// draw advances the seeded PRNG and reports whether a rate-gated event
// fires. splitmix64: tiny, seedable, and good enough for fault injection.
func (b *Backend) draw(rate float64, counter *int) bool {
	if rate <= 0 {
		return false
	}
	b.mu.Lock()
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	fire := float64(z>>11)/(1<<53) < rate
	if fire {
		*counter++
	}
	b.mu.Unlock()
	return fire
}

// Route delegates to the inner backend untouched: chaos lives in
// execution, not routing.
func (b *Backend) Route(task string) (string, error) { return b.inner.Route(task) }

// RouteFallback delegates when the inner backend offers a fallback and
// reports none otherwise.
func (b *Backend) RouteFallback(task string) (string, error) {
	if fr, ok := b.inner.(interface{ RouteFallback(string) (string, error) }); ok {
		return fr.RouteFallback(task)
	}
	return "", fmt.Errorf("chaos: inner backend has no fallback")
}

// EvictVariant records the eviction and delegates when supported.
func (b *Backend) EvictVariant(variant string) {
	b.mu.Lock()
	b.stats.Evictions++
	b.mu.Unlock()
	if ev, ok := b.inner.(interface{ EvictVariant(string) }); ok {
		ev.EvictVariant(variant)
	}
}

// ValidateImage delegates when the inner backend validates shapes.
func (b *Backend) ValidateImage(img *tensor.Tensor) error {
	if v, ok := b.inner.(interface{ ValidateImage(*tensor.Tensor) error }); ok {
		return v.ValidateImage(img)
	}
	return nil
}

// CacheStats delegates when the inner backend exposes cache stats.
func (b *Backend) CacheStats() sched.CacheStats {
	if cs, ok := b.inner.(interface{ CacheStats() sched.CacheStats }); ok {
		return cs.CacheStats()
	}
	return sched.CacheStats{}
}

// DetectBatch injects faults in order — forced Break mode, poison panic,
// error draw, latency draw — then delegates to the inner backend and
// finally applies payload corruption to the successful result.
func (b *Backend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	return b.DetectBatchContext(context.Background(), variant, task, imgs)
}

// DetectBatchContext is the cancellation-aware execution path (the serving
// layer's serve.ContextBackend): injected hangs and latency sleeps end
// early with ctx.Err() when ctx is cancelled, so a watchdog-abandoned
// execution stops instead of leaking a sleeping goroutine. The inner
// backend's own context support is used when it has any.
func (b *Backend) DetectBatchContext(ctx context.Context, variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	b.mu.Lock()
	b.stats.Executions++
	mode, forced := b.broken[variant]
	hang := b.cfg.HangFor
	if forced {
		b.stats.ForcedFaults++
	}
	b.mu.Unlock()
	if forced {
		switch mode {
		case FaultPanic:
			panic(fmt.Sprintf("chaos: variant %q forced panic", variant))
		case FaultError:
			return nil, "", fmt.Errorf("chaos: variant %q forced error", variant)
		case FaultHang:
			if !sleepCtx(ctx, hang) {
				return nil, "", ctx.Err()
			}
		}
	}
	for i, img := range imgs {
		if b.IsPoison(img) {
			b.mu.Lock()
			b.stats.PoisonPanics++
			b.mu.Unlock()
			panic(fmt.Sprintf("chaos: poison request at batch index %d/%d", i, len(imgs)))
		}
	}
	if b.draw(b.cfg.ErrorRate, &b.stats.Errors) {
		return nil, "", fmt.Errorf("chaos: injected error on variant %q", variant)
	}
	if b.draw(b.cfg.LatencyRate, &b.stats.Latencies) {
		if !sleepCtx(ctx, b.cfg.Latency) {
			return nil, "", ctx.Err()
		}
	}
	var payloads []any
	var model string
	var err error
	if cb, ok := b.inner.(interface {
		DetectBatchContext(context.Context, string, string, []*tensor.Tensor) ([]any, string, error)
	}); ok {
		payloads, model, err = cb.DetectBatchContext(ctx, variant, task, imgs)
	} else {
		payloads, model, err = b.inner.DetectBatch(variant, task, imgs)
	}
	if err != nil {
		return payloads, model, err
	}
	if len(payloads) > 0 && b.draw(b.cfg.CorruptRate, &b.stats.Corruptions) {
		payloads = payloads[:len(payloads)-1]
	}
	return payloads, model, nil
}

// sleepCtx sleeps for d, reporting false when ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Fixed is a minimal healthy backend for chaos tests and demos: a static
// task→variant routing table, a designated fallback variant, and payloads
// that echo the batch index. It records per-variant execution and eviction
// counts. Safe for concurrent use.
type Fixed struct {
	mu       sync.Mutex
	variants map[string]string
	fallback string
	execs    map[string]int
	evicted  map[string]int
}

// NewFixed builds a Fixed backend. variants maps task names to their
// preferred variant; fallback (may be "") is returned by RouteFallback for
// every task.
func NewFixed(variants map[string]string, fallback string) *Fixed {
	cp := make(map[string]string, len(variants))
	for k, v := range variants {
		cp[k] = v
	}
	return &Fixed{
		variants: cp,
		fallback: fallback,
		execs:    map[string]int{},
		evicted:  map[string]int{},
	}
}

func (f *Fixed) Route(task string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.variants[task]
	if !ok {
		return "", fmt.Errorf("chaos: unknown task %q", task)
	}
	return v, nil
}

func (f *Fixed) RouteFallback(task string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fallback == "" {
		return "", fmt.Errorf("chaos: no fallback configured")
	}
	return f.fallback, nil
}

func (f *Fixed) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	f.mu.Lock()
	f.execs[variant]++
	f.mu.Unlock()
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, variant, nil
}

func (f *Fixed) EvictVariant(variant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.evicted[variant]++
}

// Executions reports how many batches ran on variant.
func (f *Fixed) Executions(variant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs[variant]
}

// Evictions reports how often variant was evicted.
func (f *Fixed) Evictions(variant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evicted[variant]
}
