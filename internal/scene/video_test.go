package scene

import (
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

func TestVideoConfigValidate(t *testing.T) {
	if err := DefaultVideoConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultVideoConfig()
	bad.Frames = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 frames should fail")
	}
	bad = DefaultVideoConfig()
	bad.MaxSpeed = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("absurd speed should fail")
	}
}

func TestGenerateVideoBasics(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.Frames = 10
	frames := GenerateVideo(GetDomain(Driving), cfg, tensor.NewRNG(1))
	if len(frames) != 10 {
		t.Fatalf("frames = %d", len(frames))
	}
	// Cast is stable: same track IDs, same classes in every frame.
	first := frames[0].Objects
	for f, fr := range frames {
		if len(fr.Objects) != len(first) {
			t.Fatalf("frame %d has %d objects, frame 0 has %d", f, len(fr.Objects), len(first))
		}
		for i, o := range fr.Objects {
			if o.TrackID != first[i].TrackID || o.Class != first[i].Class {
				t.Fatalf("identity not stable at frame %d", f)
			}
		}
	}
}

func TestGenerateVideoMotionAndBounds(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.Frames = 40
	cfg.MaxSpeed = 0.05
	frames := GenerateVideo(GetDomain(Orchard), cfg, tensor.NewRNG(2))
	moved := false
	for _, fr := range frames {
		for i, o := range fr.Objects {
			// Objects stay inside the image.
			if o.Box.Left() < -1e-9 || o.Box.Right() > 1+1e-9 ||
				o.Box.Top() < -1e-9 || o.Box.Bottom() > 1+1e-9 {
				t.Fatalf("object %d escaped: %+v", i, o.Box)
			}
			if o.Box.X != frames[0].Objects[i].Box.X {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("no object ever moved")
	}
}

func TestGenerateVideoFrameToFrameCoherence(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.Frames = 5
	cfg.MaxSpeed = 0.02
	frames := GenerateVideo(GetDomain(Industrial), cfg, tensor.NewRNG(3))
	// Consecutive frames should have high IoU per object (small motion).
	for f := 1; f < len(frames); f++ {
		for i := range frames[f].Objects {
			prev := frames[f-1].Objects[i].Box
			cur := frames[f].Objects[i].Box
			if geom.IoU(prev, cur) < 0.3 {
				t.Fatalf("object %d teleported between frames %d and %d", i, f-1, f)
			}
		}
	}
}

func TestGenerateVideoDeterministic(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.Frames = 3
	a := GenerateVideo(GetDomain(Medical), cfg, tensor.NewRNG(7))
	b := GenerateVideo(GetDomain(Medical), cfg, tensor.NewRNG(7))
	for f := range a {
		if !a[f].Image.Equal(b[f].Image) {
			t.Fatal("video generation not deterministic")
		}
	}
}
