package scene

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// MovingObject is an object with a stable identity and a velocity, used by
// the video generator.
type MovingObject struct {
	// TrackID is stable across frames — the ground truth for tracking.
	TrackID int
	Class   ClassID
	Box     geom.Box
	// VX, VY are the per-frame center displacement (normalized units).
	VX, VY float64
}

// Frame is one rendered video frame with per-object track identities.
type Frame struct {
	Image   *tensor.Tensor
	Objects []MovingObject
}

// VideoConfig controls synthetic video generation.
type VideoConfig struct {
	Gen GenConfig
	// Frames is the sequence length.
	Frames int
	// MaxSpeed is the per-frame displacement bound.
	MaxSpeed float64
}

// DefaultVideoConfig returns 30-frame sequences with gentle motion.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{Gen: DefaultGenConfig(), Frames: 30, MaxSpeed: 0.03}
}

// Validate checks the configuration.
func (v VideoConfig) Validate() error {
	if err := v.Gen.Validate(); err != nil {
		return err
	}
	if v.Frames <= 0 {
		return fmt.Errorf("scene: video frames %d", v.Frames)
	}
	if v.MaxSpeed < 0 || v.MaxSpeed > 0.5 {
		return fmt.Errorf("scene: video max speed %v", v.MaxSpeed)
	}
	return nil
}

// GenerateVideo renders a sequence: objects are placed once (with stable
// track IDs), move with constant velocity, and bounce off the image bounds.
// Per-frame appearance jitter (noise, color) still varies, so the detector
// sees realistic frame-to-frame variation.
func GenerateVideo(dom Domain, cfg VideoConfig, rng *tensor.RNG) []Frame {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	classes := dom.Classes
	if len(cfg.Gen.OnlyClasses) > 0 {
		classes = cfg.Gen.OnlyClasses
	}
	n := cfg.Gen.MinObjects
	if cfg.Gen.MaxObjects > cfg.Gen.MinObjects {
		n += rng.Intn(cfg.Gen.MaxObjects - cfg.Gen.MinObjects + 1)
	}
	// Initial cast.
	var cast []MovingObject
	var placed []geom.Box
	for i := 0; i < n; i++ {
		cls := classes[rng.Intn(len(classes))]
		box := sampleBox(cls.Profile(), cfg.Gen, rng, placed)
		placed = append(placed, box)
		cast = append(cast, MovingObject{
			TrackID: i,
			Class:   cls,
			Box:     box,
			VX:      rng.Range(-cfg.MaxSpeed, cfg.MaxSpeed),
			VY:      rng.Range(-cfg.MaxSpeed, cfg.MaxSpeed),
		})
	}

	frames := make([]Frame, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		canvas := NewCanvas(cfg.Gen.Size)
		canvas.FillBackground(dom.Background, dom.NoiseStd, rng)
		fr := Frame{Image: canvas.Img}
		for i := range cast {
			o := &cast[i]
			canvas.DrawObject(o.Class.Profile(), o.Box, cfg.Gen.ColorJitter, rng)
			fr.Objects = append(fr.Objects, *o)
			// Advance and bounce for the next frame.
			o.Box.X += o.VX
			o.Box.Y += o.VY
			if o.Box.X-o.Box.W/2 < 0 {
				o.Box.X = o.Box.W / 2
				o.VX = -o.VX
			}
			if o.Box.X+o.Box.W/2 > 1 {
				o.Box.X = 1 - o.Box.W/2
				o.VX = -o.VX
			}
			if o.Box.Y-o.Box.H/2 < 0 {
				o.Box.Y = o.Box.H / 2
				o.VY = -o.VY
			}
			if o.Box.Y+o.Box.H/2 > 1 {
				o.Box.Y = 1 - o.Box.H/2
				o.VY = -o.VY
			}
		}
		frames[f] = fr
	}
	return frames
}
