package scene

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// Canvas is a square RGB image under construction, channel-major (3,H,W)
// with values nominally in [0,1].
type Canvas struct {
	Size int
	Img  *tensor.Tensor
}

// NewCanvas allocates a black canvas of edge size px.
func NewCanvas(size int) *Canvas {
	if size <= 0 {
		panic(fmt.Sprintf("scene: canvas size %d", size))
	}
	return &Canvas{Size: size, Img: tensor.New(3, size, size)}
}

// set writes an RGB value at pixel (x,y) without bounds checking beyond the
// canvas clip.
func (c *Canvas) set(x, y int, rgb [3]float32) {
	if x < 0 || y < 0 || x >= c.Size || y >= c.Size {
		return
	}
	n := c.Size * c.Size
	c.Img.Data[y*c.Size+x] = rgb[0]
	c.Img.Data[n+y*c.Size+x] = rgb[1]
	c.Img.Data[2*n+y*c.Size+x] = rgb[2]
}

// At reads the RGB value at pixel (x,y).
func (c *Canvas) At(x, y int) [3]float32 {
	n := c.Size * c.Size
	return [3]float32{
		c.Img.Data[y*c.Size+x],
		c.Img.Data[n+y*c.Size+x],
		c.Img.Data[2*n+y*c.Size+x],
	}
}

// FillBackground paints the base color with a vertical luminance gradient
// (±10%) to break translational symmetry, then adds Gaussian pixel noise.
func (c *Canvas) FillBackground(base [3]float32, noiseStd float32, rng *tensor.RNG) {
	for y := 0; y < c.Size; y++ {
		grad := 0.9 + 0.2*float32(y)/float32(c.Size)
		for x := 0; x < c.Size; x++ {
			var rgb [3]float32
			for ch := 0; ch < 3; ch++ {
				v := base[ch]*grad + noiseStd*float32(rng.Norm())
				rgb[ch] = clamp01f(v)
			}
			c.set(x, y, rgb)
		}
	}
}

func clamp01f(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// inShape reports whether the normalized point (u,v) in [-1,1]² (relative to
// the object's box, x right, y down) is inside the silhouette.
func inShape(s Shape, u, v float64) bool {
	switch s {
	case Disc:
		return u*u+v*v <= 1
	case Square:
		return u >= -1 && u <= 1 && v >= -1 && v <= 1
	case Triangle:
		// Upright triangle: apex at top, base at bottom.
		if v < -1 || v > 1 {
			return false
		}
		halfWidth := (v + 1) / 2 // 0 at apex, 1 at base
		return u >= -halfWidth && u <= halfWidth
	case Cross:
		const arm = 0.34
		return (u >= -arm && u <= arm) || (v >= -arm && v <= arm)
	case Ring:
		r2 := u*u + v*v
		return r2 <= 1 && r2 >= 0.45
	case Diamond:
		return abs64(u)+abs64(v) <= 1
	}
	return false
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// textured returns the pixel color for a texture at integer pixel (x,y):
// striped alternates bright/dark bands, dotted punches background-colored
// holes on a grid.
func textured(t Texture, rgb [3]float32, x, y int) ([3]float32, bool) {
	switch t {
	case Solid:
		return rgb, true
	case Striped:
		if (y/2)%2 == 0 {
			return rgb, true
		}
		return [3]float32{rgb[0] * 0.35, rgb[1] * 0.35, rgb[2] * 0.35}, true
	case Dotted:
		if x%3 == 1 && y%3 == 1 {
			return rgb, false // hole: keep background
		}
		return rgb, true
	}
	return rgb, true
}

// DrawObject rasterizes one object into the canvas. Color is jittered by
// colorJitter (std of per-channel Gaussian) to model appearance variation.
func (c *Canvas) DrawObject(p Profile, box geom.Box, colorJitter float32, rng *tensor.RNG) {
	rgb := p.Color.RGB()
	for ch := 0; ch < 3; ch++ {
		rgb[ch] = clamp01f(rgb[ch] + colorJitter*float32(rng.Norm()))
	}
	x0 := int(box.Left() * float64(c.Size))
	x1 := int(box.Right() * float64(c.Size))
	y0 := int(box.Top() * float64(c.Size))
	y1 := int(box.Bottom() * float64(c.Size))
	cx := box.X * float64(c.Size)
	cy := box.Y * float64(c.Size)
	hw := box.W * float64(c.Size) / 2
	hh := box.H * float64(c.Size) / 2
	if hw <= 0 || hh <= 0 {
		return
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			u := (float64(x) + 0.5 - cx) / hw
			v := (float64(y) + 0.5 - cy) / hh
			if !inShape(p.Shape, u, v) {
				continue
			}
			px, draw := textured(p.Texture, rgb, x, y)
			if draw {
				c.set(x, y, px)
			}
		}
	}
}
