// Package scene generates the synthetic imagery that stands in for the
// paper's real-world datasets (driving, healthcare, industrial automation).
// Every object class is defined purely by abstract attributes — shape,
// color, texture, size — which is exactly the level at which the iTask
// knowledge graph reasons, so detection-by-attributes is measurable with
// full control over the data distribution.
package scene

import "fmt"

// Shape is the geometric silhouette of an object.
type Shape int

// Shape values cover the silhouettes the renderer can draw.
const (
	Disc Shape = iota
	Square
	Triangle
	Cross
	Ring
	Diamond
	numShapes
)

// String returns the lowercase shape name.
func (s Shape) String() string {
	names := [...]string{"disc", "square", "triangle", "cross", "ring", "diamond"}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("shape(%d)", int(s))
	}
	return names[s]
}

// ShapeFromName returns the Shape with the given name.
func ShapeFromName(name string) (Shape, bool) {
	for s := Shape(0); s < numShapes; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Color is a named color drawn from a fixed palette.
type Color int

// Color values cover the palette the renderer and the knowledge graph share.
const (
	Red Color = iota
	Green
	Blue
	Yellow
	Orange
	Purple
	White
	Gray
	Cyan
	numColors
)

// String returns the lowercase color name.
func (c Color) String() string {
	names := [...]string{"red", "green", "blue", "yellow", "orange", "purple", "white", "gray", "cyan"}
	if c < 0 || int(c) >= len(names) {
		return fmt.Sprintf("color(%d)", int(c))
	}
	return names[c]
}

// ColorFromName returns the Color with the given name.
func ColorFromName(name string) (Color, bool) {
	for c := Color(0); c < numColors; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// RGB returns the palette color as three [0,1] channel values.
func (c Color) RGB() [3]float32 {
	switch c {
	case Red:
		return [3]float32{0.85, 0.15, 0.15}
	case Green:
		return [3]float32{0.15, 0.75, 0.20}
	case Blue:
		return [3]float32{0.15, 0.25, 0.85}
	case Yellow:
		return [3]float32{0.90, 0.85, 0.15}
	case Orange:
		return [3]float32{0.95, 0.55, 0.10}
	case Purple:
		return [3]float32{0.60, 0.20, 0.75}
	case White:
		return [3]float32{0.95, 0.95, 0.95}
	case Gray:
		return [3]float32{0.55, 0.55, 0.55}
	case Cyan:
		return [3]float32{0.15, 0.80, 0.85}
	}
	return [3]float32{0, 0, 0}
}

// Texture is the fill pattern of an object.
type Texture int

// Texture values cover the fill patterns the renderer can draw.
const (
	Solid Texture = iota
	Striped
	Dotted
	numTextures
)

// String returns the lowercase texture name.
func (t Texture) String() string {
	names := [...]string{"solid", "striped", "dotted"}
	if t < 0 || int(t) >= len(names) {
		return fmt.Sprintf("texture(%d)", int(t))
	}
	return names[t]
}

// TextureFromName returns the Texture with the given name.
func TextureFromName(name string) (Texture, bool) {
	for x := Texture(0); x < numTextures; x++ {
		if x.String() == name {
			return x, true
		}
	}
	return 0, false
}

// SizeClass is the coarse object scale bucket.
type SizeClass int

// SizeClass values bucket object scale relative to the image.
const (
	Small SizeClass = iota
	Medium
	Large
	numSizes
)

// String returns the lowercase size-class name.
func (s SizeClass) String() string {
	names := [...]string{"small", "medium", "large"}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("size(%d)", int(s))
	}
	return names[s]
}

// SizeFromName returns the SizeClass with the given name.
func SizeFromName(name string) (SizeClass, bool) {
	for s := SizeClass(0); s < numSizes; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Range returns the normalized [min,max) box-edge range for the size class.
func (s SizeClass) Range() (lo, hi float64) {
	switch s {
	case Small:
		return 0.14, 0.22
	case Medium:
		return 0.22, 0.34
	case Large:
		return 0.34, 0.48
	}
	return 0.2, 0.3
}

// Profile is the abstract attribute signature of an object class — the
// ground truth the simulated LLM's knowledge graph tries to recover from
// task descriptions.
type Profile struct {
	Shape   Shape
	Color   Color
	Texture Texture
	Size    SizeClass
}
