package scene

import (
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

func TestAttributeNameRoundTrips(t *testing.T) {
	for s := Shape(0); s < numShapes; s++ {
		got, ok := ShapeFromName(s.String())
		if !ok || got != s {
			t.Errorf("shape %v does not round-trip", s)
		}
	}
	for c := Color(0); c < numColors; c++ {
		got, ok := ColorFromName(c.String())
		if !ok || got != c {
			t.Errorf("color %v does not round-trip", c)
		}
	}
	for x := Texture(0); x < numTextures; x++ {
		got, ok := TextureFromName(x.String())
		if !ok || got != x {
			t.Errorf("texture %v does not round-trip", x)
		}
	}
	for s := SizeClass(0); s < numSizes; s++ {
		got, ok := SizeFromName(s.String())
		if !ok || got != s {
			t.Errorf("size %v does not round-trip", s)
		}
	}
	if _, ok := ShapeFromName("hexagon"); ok {
		t.Error("unknown shape name should fail")
	}
}

func TestColorRGBInRange(t *testing.T) {
	for c := Color(0); c < numColors; c++ {
		rgb := c.RGB()
		for ch, v := range rgb {
			if v < 0 || v > 1 {
				t.Errorf("color %v channel %d = %v", c, ch, v)
			}
		}
	}
}

func TestSizeRangesOrderedAndDisjoint(t *testing.T) {
	prevHi := 0.0
	for s := SizeClass(0); s < numSizes; s++ {
		lo, hi := s.Range()
		if lo >= hi {
			t.Errorf("size %v has empty range", s)
		}
		if lo < prevHi {
			t.Errorf("size %v range overlaps previous", s)
		}
		prevHi = hi
	}
}

func TestClassTableComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := ClassID(0); c < NumClasses; c++ {
		name := c.Name()
		if name == "" || seen[name] {
			t.Errorf("class %d has bad/duplicate name %q", c, name)
		}
		seen[name] = true
		got, ok := ClassByName(name)
		if !ok || got != c {
			t.Errorf("class %q does not round-trip", name)
		}
		c.Profile() // must not panic
	}
}

func TestClassProfilesDistinct(t *testing.T) {
	// No two classes may share a full attribute profile, or they would be
	// indistinguishable by construction.
	seen := map[Profile]ClassID{}
	for c := ClassID(0); c < NumClasses; c++ {
		p := c.Profile()
		if prev, dup := seen[p]; dup {
			t.Errorf("classes %v and %v share profile %+v", prev, c, p)
		}
		seen[p] = c
	}
}

func TestDomainsWellFormed(t *testing.T) {
	if len(AllDomains()) != int(NumDomains) {
		t.Fatal("AllDomains length mismatch")
	}
	for _, d := range AllDomains() {
		if len(d.Classes) == 0 {
			t.Errorf("domain %s has no classes", d.Name)
		}
		got, ok := DomainByName(d.Name)
		if !ok || got.ID != d.ID {
			t.Errorf("domain %q does not round-trip", d.Name)
		}
		for _, c := range d.Classes {
			if c < 0 || c >= NumClasses {
				t.Errorf("domain %s has invalid class %d", d.Name, c)
			}
		}
	}
	// Domains should not share foreground classes (tasks are distinct).
	owner := map[ClassID]string{}
	for _, d := range AllDomains() {
		for _, c := range d.Classes {
			if prev, dup := owner[c]; dup {
				t.Errorf("class %v in both %s and %s", c, prev, d.Name)
			}
			owner[c] = d.Name
		}
	}
}

func TestCanvasSetAtAndClip(t *testing.T) {
	c := NewCanvas(8)
	c.set(3, 4, [3]float32{0.1, 0.2, 0.3})
	got := c.At(3, 4)
	if got != [3]float32{0.1, 0.2, 0.3} {
		t.Errorf("At = %v", got)
	}
	// Out-of-bounds writes are silently clipped.
	c.set(-1, 0, [3]float32{1, 1, 1})
	c.set(0, 8, [3]float32{1, 1, 1})
	if c.At(0, 0) != [3]float32{0, 0, 0} {
		t.Error("out-of-bounds write leaked")
	}
}

func TestFillBackgroundStatistics(t *testing.T) {
	c := NewCanvas(32)
	rng := tensor.NewRNG(1)
	base := [3]float32{0.5, 0.4, 0.3}
	c.FillBackground(base, 0.02, rng)
	// Mean of red channel near base (gradient averages to ~1.0 factor).
	n := 32 * 32
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(c.Img.Data[i])
	}
	mean := sum / float64(n)
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("background red mean = %v, want ~0.5", mean)
	}
	// All values clamped.
	if c.Img.Min() < 0 || c.Img.Max() > 1 {
		t.Error("background values outside [0,1]")
	}
}

func TestInShapeSilhouettes(t *testing.T) {
	cases := []struct {
		shape   Shape
		u, v    float64
		inside  bool
		comment string
	}{
		{Disc, 0, 0, true, "disc center"},
		{Disc, 0.9, 0.9, false, "disc corner"},
		{Square, 0.9, 0.9, true, "square corner"},
		{Triangle, 0, 0.9, true, "triangle base center"},
		{Triangle, 0.9, -0.9, false, "triangle above apex"},
		{Cross, 0, 0.9, true, "cross vertical arm"},
		{Cross, 0.9, 0, true, "cross horizontal arm"},
		{Cross, 0.8, 0.8, false, "cross corner gap"},
		{Ring, 0, 0, false, "ring hole"},
		{Ring, 0.8, 0, true, "ring band"},
		{Diamond, 0.4, 0.4, true, "diamond interior"},
		{Diamond, 0.8, 0.8, false, "diamond corner"},
	}
	for _, c := range cases {
		if got := inShape(c.shape, c.u, c.v); got != c.inside {
			t.Errorf("%s: inShape(%v, %v, %v) = %v, want %v", c.comment, c.shape, c.u, c.v, got, c.inside)
		}
	}
}

func TestDrawObjectPaintsInsideBox(t *testing.T) {
	c := NewCanvas(32)
	rng := tensor.NewRNG(2)
	// black background; draw a white solid square
	p := Profile{Square, White, Solid, Medium}
	box := geom.Box{X: 0.5, Y: 0.5, W: 0.4, H: 0.4}
	c.DrawObject(p, box, 0, rng)
	center := c.At(16, 16)
	if center[0] < 0.8 {
		t.Errorf("center not painted: %v", center)
	}
	corner := c.At(1, 1)
	if corner != [3]float32{0, 0, 0} {
		t.Errorf("outside box painted: %v", corner)
	}
}

func TestDrawObjectTextures(t *testing.T) {
	rng := tensor.NewRNG(3)
	// Striped square: vertical neighbors in different bands must differ.
	c := NewCanvas(32)
	c.DrawObject(Profile{Square, White, Striped, Large}, geom.Box{X: 0.5, Y: 0.5, W: 0.6, H: 0.6}, 0, rng)
	bright, dark := 0, 0
	for y := 10; y < 22; y++ {
		v := c.At(16, y)[0]
		if v > 0.8 {
			bright++
		} else if v > 0.1 {
			dark++
		}
	}
	if bright == 0 || dark == 0 {
		t.Errorf("striped texture missing bands: bright=%d dark=%d", bright, dark)
	}
	// Dotted disc: some interior pixels keep the background.
	c2 := NewCanvas(32)
	c2.DrawObject(Profile{Square, White, Dotted, Large}, geom.Box{X: 0.5, Y: 0.5, W: 0.6, H: 0.6}, 0, rng)
	holes := 0
	for y := 12; y < 20; y++ {
		for x := 12; x < 20; x++ {
			if c2.At(x, y)[0] < 0.1 {
				holes++
			}
		}
	}
	if holes == 0 {
		t.Error("dotted texture has no holes")
	}
}

func TestGenerateSceneBasics(t *testing.T) {
	rng := tensor.NewRNG(4)
	cfg := DefaultGenConfig()
	dom := GetDomain(Driving)
	sc := Generate(dom, cfg, rng)
	if sc.Image.Shape[0] != 3 || sc.Image.Shape[1] != cfg.Size || sc.Image.Shape[2] != cfg.Size {
		t.Fatalf("image shape %v", sc.Image.Shape)
	}
	if len(sc.Objects) < cfg.MinObjects {
		t.Errorf("scene has %d objects, want >= %d", len(sc.Objects), cfg.MinObjects)
	}
	for _, o := range sc.Objects {
		if !containsClass(dom.Classes, o.Class) {
			t.Errorf("labeled object %v not a driving class", o.Class)
		}
		if o.Box.X < 0 || o.Box.X > 1 || o.Box.Y < 0 || o.Box.Y > 1 {
			t.Errorf("object center outside image: %+v", o.Box)
		}
		if o.Box.W <= 0 || o.Box.H <= 0 {
			t.Errorf("degenerate box %+v", o.Box)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	dom := GetDomain(Medical)
	a := Generate(dom, cfg, tensor.NewRNG(77))
	b := Generate(dom, cfg, tensor.NewRNG(77))
	if !a.Image.Equal(b.Image) {
		t.Error("same seed must render identical scenes")
	}
	if len(a.Objects) != len(b.Objects) {
		t.Error("same seed must produce identical labels")
	}
}

func TestGenerateOnlyClasses(t *testing.T) {
	rng := tensor.NewRNG(5)
	cfg := DefaultGenConfig()
	cfg.OnlyClasses = []ClassID{TrafficCone}
	cfg.ClutterProb = 0
	for i := 0; i < 20; i++ {
		sc := Generate(GetDomain(Driving), cfg, rng)
		for _, o := range sc.Objects {
			if o.Class != TrafficCone {
				t.Fatalf("OnlyClasses violated: got %v", o.Class)
			}
		}
	}
}

func TestGenerateBatchCount(t *testing.T) {
	rng := tensor.NewRNG(6)
	scs := GenerateBatch(GetDomain(Orchard), DefaultGenConfig(), 7, rng)
	if len(scs) != 7 {
		t.Fatalf("batch size %d", len(scs))
	}
}

func TestGenConfigValidate(t *testing.T) {
	bad := []GenConfig{
		{Size: 4},
		{Size: 32, MinObjects: 3, MaxObjects: 1},
		{Size: 32, ClutterProb: 1.5},
		{Size: 32, SizeJitter: 1.0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed: %+v", i, c)
		}
	}
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// TestClassesVisuallyDistinct renders each class on a neutral background and
// verifies that the dominant painted color roughly matches the profile color
// — a regression net for the renderer/profile pairing.
func TestClassesVisuallyDistinct(t *testing.T) {
	rng := tensor.NewRNG(8)
	for c := ClassID(0); c < NumClasses; c++ {
		canvas := NewCanvas(32)
		box := geom.Box{X: 0.5, Y: 0.5, W: 0.4, H: 0.4}
		canvas.DrawObject(c.Profile(), box, 0, rng)
		want := c.Profile().Color.RGB()
		// Find the painted pixel closest to the profile color.
		found := false
		for y := 10; y < 22 && !found; y++ {
			for x := 10; x < 22 && !found; x++ {
				px := canvas.At(x, y)
				d := 0.0
				for ch := 0; ch < 3; ch++ {
					dd := float64(px[ch] - want[ch])
					d += dd * dd
				}
				if d < 0.01 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("class %s: no pixel matches profile color %v", c.Name(), want)
		}
	}
}
