package scene

import "fmt"

// ClassID identifies an object class in the global vocabulary shared by all
// domains. Models predict over this vocabulary; tasks restrict attention to
// a subset of it.
type ClassID int

// The global object vocabulary. Profiles are chosen so that classes are
// separable by attribute combinations but share individual attributes across
// domains (e.g. lesions and ripe fruit are both red discs, differing in
// texture and size) — this is what makes task conditioning matter.
const (
	Car ClassID = iota
	Truck
	Pedestrian
	Cyclist
	TrafficCone
	Lesion
	Instrument
	Vial
	Gear
	Bolt
	CrackDefect
	RipeFruit
	UnripeFruit
	LeafCluster
	NumClasses
)

// classInfo pairs a class name with its attribute profile.
type classInfo struct {
	name    string
	profile Profile
}

var classTable = [NumClasses]classInfo{
	Car:         {"car", Profile{Square, Blue, Solid, Medium}},
	Truck:       {"truck", Profile{Square, Gray, Solid, Large}},
	Pedestrian:  {"pedestrian", Profile{Triangle, Orange, Solid, Medium}},
	Cyclist:     {"cyclist", Profile{Diamond, Cyan, Solid, Small}},
	TrafficCone: {"traffic_cone", Profile{Triangle, Yellow, Striped, Small}},
	Lesion:      {"lesion", Profile{Disc, Red, Dotted, Small}},
	Instrument:  {"instrument", Profile{Cross, White, Solid, Medium}},
	Vial:        {"vial", Profile{Square, Purple, Solid, Small}},
	Gear:        {"gear", Profile{Ring, Gray, Solid, Medium}},
	Bolt:        {"bolt", Profile{Disc, Gray, Solid, Small}},
	CrackDefect: {"crack_defect", Profile{Cross, Red, Striped, Medium}},
	RipeFruit:   {"ripe_fruit", Profile{Disc, Red, Solid, Medium}},
	UnripeFruit: {"unripe_fruit", Profile{Disc, Green, Solid, Medium}},
	LeafCluster: {"leaf_cluster", Profile{Diamond, Green, Dotted, Medium}},
}

// Name returns the canonical snake_case class name.
func (c ClassID) Name() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classTable[c].name
}

// Profile returns the class's attribute profile.
func (c ClassID) Profile() Profile {
	if c < 0 || c >= NumClasses {
		panic(fmt.Sprintf("scene: invalid class %d", int(c)))
	}
	return classTable[c].profile
}

// ClassByName looks a class up by its canonical name.
func ClassByName(name string) (ClassID, bool) {
	for c := ClassID(0); c < NumClasses; c++ {
		if classTable[c].name == name {
			return c, true
		}
	}
	return 0, false
}

// AllClasses returns the full vocabulary in ID order.
func AllClasses() []ClassID {
	out := make([]ClassID, NumClasses)
	for i := range out {
		out[i] = ClassID(i)
	}
	return out
}

// DomainID identifies an application domain (a mission context).
type DomainID int

// The four evaluation domains, mirroring the application areas the paper's
// introduction motivates (autonomous driving, healthcare, industrial
// automation) plus an agriculture domain for the few-shot study.
const (
	Driving DomainID = iota
	Medical
	Industrial
	Orchard
	NumDomains
)

// Domain describes one application domain: its background statistics and the
// classes that occur in it.
type Domain struct {
	ID   DomainID
	Name string
	// Background is the base RGB the renderer fills before adding
	// gradient and noise.
	Background [3]float32
	// NoiseStd is the per-pixel Gaussian noise level.
	NoiseStd float32
	// Classes are the foreground classes native to this domain.
	Classes []ClassID
	// Clutter are non-target classes that may appear as distractors.
	Clutter []ClassID
}

var domainTable = [NumDomains]Domain{
	Driving: {
		ID: Driving, Name: "driving",
		Background: [3]float32{0.30, 0.30, 0.32}, NoiseStd: 0.04,
		Classes: []ClassID{Car, Truck, Pedestrian, Cyclist, TrafficCone},
		Clutter: []ClassID{Bolt, LeafCluster},
	},
	Medical: {
		ID: Medical, Name: "medical",
		Background: [3]float32{0.78, 0.74, 0.72}, NoiseStd: 0.03,
		Classes: []ClassID{Lesion, Instrument, Vial},
		Clutter: []ClassID{Bolt, Vial},
	},
	Industrial: {
		ID: Industrial, Name: "industrial",
		Background: [3]float32{0.45, 0.42, 0.40}, NoiseStd: 0.05,
		Classes: []ClassID{Gear, Bolt, CrackDefect},
		Clutter: []ClassID{TrafficCone, Vial},
	},
	Orchard: {
		ID: Orchard, Name: "orchard",
		Background: [3]float32{0.35, 0.48, 0.28}, NoiseStd: 0.05,
		Classes: []ClassID{RipeFruit, UnripeFruit, LeafCluster},
		Clutter: []ClassID{Lesion},
	},
}

// GetDomain returns the descriptor for id.
func GetDomain(id DomainID) Domain {
	if id < 0 || id >= NumDomains {
		panic(fmt.Sprintf("scene: invalid domain %d", int(id)))
	}
	return domainTable[id]
}

// DomainByName looks a domain up by name.
func DomainByName(name string) (Domain, bool) {
	for i := DomainID(0); i < NumDomains; i++ {
		if domainTable[i].Name == name {
			return domainTable[i], true
		}
	}
	return Domain{}, false
}

// AllDomains returns all domain descriptors in ID order.
func AllDomains() []Domain {
	out := make([]Domain, NumDomains)
	for i := range out {
		out[i] = domainTable[i]
	}
	return out
}
