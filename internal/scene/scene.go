package scene

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// GroundTruth is one labeled object in a scene.
type GroundTruth struct {
	Box   geom.Box
	Class ClassID
}

// Scene is a rendered image with its labels.
type Scene struct {
	Image   *tensor.Tensor // (3, Size, Size)
	Objects []GroundTruth
	Domain  DomainID
}

// GenConfig controls scene generation.
type GenConfig struct {
	// Size is the image edge in pixels.
	Size int
	// MinObjects and MaxObjects bound the foreground object count.
	MinObjects, MaxObjects int
	// ClutterProb is the chance of adding one distractor object from the
	// domain's clutter list (unlabeled for foreign classes).
	ClutterProb float64
	// ColorJitter is the appearance-variation noise std.
	ColorJitter float32
	// SizeJitter scales the sampled box size by 1±SizeJitter uniformly.
	SizeJitter float64
	// OnlyClasses, when non-empty, restricts generated foreground objects
	// to this subset of the domain's classes.
	OnlyClasses []ClassID
}

// DefaultGenConfig returns the generation settings used throughout the
// experiments: 32-pixel scenes with 1-3 objects and mild jitter.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Size: 32, MinObjects: 1, MaxObjects: 3,
		ClutterProb: 0.3, ColorJitter: 0.05, SizeJitter: 0.15,
	}
}

// Validate checks the generation config.
func (g GenConfig) Validate() error {
	switch {
	case g.Size < 8:
		return fmt.Errorf("scene: size %d too small", g.Size)
	case g.MinObjects < 0 || g.MaxObjects < g.MinObjects:
		return fmt.Errorf("scene: bad object count range [%d,%d]", g.MinObjects, g.MaxObjects)
	case g.ClutterProb < 0 || g.ClutterProb > 1:
		return fmt.Errorf("scene: clutter prob %v", g.ClutterProb)
	case g.SizeJitter < 0 || g.SizeJitter >= 1:
		return fmt.Errorf("scene: size jitter %v", g.SizeJitter)
	}
	return nil
}

// Generate renders one random scene from the given domain.
func Generate(dom Domain, cfg GenConfig, rng *tensor.RNG) Scene {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	canvas := NewCanvas(cfg.Size)
	canvas.FillBackground(dom.Background, dom.NoiseStd, rng)

	classes := dom.Classes
	if len(cfg.OnlyClasses) > 0 {
		classes = cfg.OnlyClasses
	}
	n := cfg.MinObjects
	if cfg.MaxObjects > cfg.MinObjects {
		n += rng.Intn(cfg.MaxObjects - cfg.MinObjects + 1)
	}
	sc := Scene{Image: canvas.Img, Domain: dom.ID}
	// Track occupied centers to reduce (not forbid) cell collisions.
	var placed []geom.Box
	for i := 0; i < n; i++ {
		cls := classes[rng.Intn(len(classes))]
		box := sampleBox(cls.Profile(), cfg, rng, placed)
		placed = append(placed, box)
		canvas.DrawObject(cls.Profile(), box, cfg.ColorJitter, rng)
		sc.Objects = append(sc.Objects, GroundTruth{Box: box, Class: cls})
	}
	// Optional clutter: rendered but only labeled if it is a domain class.
	if rng.Bool(cfg.ClutterProb) && len(dom.Clutter) > 0 {
		cls := dom.Clutter[rng.Intn(len(dom.Clutter))]
		box := sampleBox(cls.Profile(), cfg, rng, placed)
		canvas.DrawObject(cls.Profile(), box, cfg.ColorJitter, rng)
		if containsClass(dom.Classes, cls) {
			sc.Objects = append(sc.Objects, GroundTruth{Box: box, Class: cls})
		}
	}
	return sc
}

func containsClass(cs []ClassID, c ClassID) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// sampleBox draws a box for the class profile, preferring positions whose
// center is far from already-placed objects (rejection sampling with a
// bounded number of tries; after that, any position is accepted).
func sampleBox(p Profile, cfg GenConfig, rng *tensor.RNG, placed []geom.Box) geom.Box {
	lo, hi := p.Size.Range()
	for try := 0; ; try++ {
		edge := rng.Range(lo, hi)
		jit := 1 + cfg.SizeJitter*(2*rng.Float64()-1)
		w := edge * jit
		h := edge * (2 - jit) // anti-correlated so area stays near edge²
		margin := maxF(w, h) / 2
		x := rng.Range(margin, 1-margin)
		y := rng.Range(margin, 1-margin)
		box := geom.Box{X: x, Y: y, W: w, H: h}
		ok := true
		for _, pb := range placed {
			if geom.IoU(box, pb) > 0.15 {
				ok = false
				break
			}
		}
		if ok || try >= 8 {
			return box
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// GenerateBatch renders count scenes from the domain.
func GenerateBatch(dom Domain, cfg GenConfig, count int, rng *tensor.RNG) []Scene {
	out := make([]Scene, count)
	for i := range out {
		out[i] = Generate(dom, cfg, rng)
	}
	return out
}
