// Package eval runs detectors over datasets and reduces the results to the
// metrics the experiments report. It is deliberately interface-thin: any
// model variant (float ViT, quantized ViT, scheduler-selected model) is just
// a DetectFunc.
package eval

import (
	"itask/internal/dataset"
	"itask/internal/geom"
	"itask/internal/metrics"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// DetectFunc maps one (C,H,W) image to scored detections.
type DetectFunc func(img *tensor.Tensor) []geom.Scored

// Thresholds bundles the decode operating point shared by all evaluations.
type Thresholds struct {
	// Obj is the objectness threshold for emitting a detection.
	Obj float64
	// NMSIoU is the IoU above which same-class detections are suppressed.
	NMSIoU float64
	// MatchIoU is the IoU required to count a detection as correct.
	MatchIoU float64
}

// DefaultThresholds returns the operating point used in all experiments.
func DefaultThresholds() Thresholds {
	return Thresholds{Obj: 0.45, NMSIoU: 0.45, MatchIoU: 0.35}
}

// DetectorOf wraps a float ViT model as a DetectFunc.
func DetectorOf(m *vit.Model, th Thresholds) DetectFunc {
	return func(img *tensor.Tensor) []geom.Scored {
		patches := vit.Patchify(m.Cfg, []*tensor.Tensor{img})
		feats := m.Forward(patches, false)
		det := m.DetHead(feats, false)
		return vit.Decode(m.Cfg, det, th.Obj, th.NMSIoU)
	}
}

// BatchDetectFunc maps a batch of (C,H,W) images to per-image detections.
type BatchDetectFunc func(imgs []*tensor.Tensor) [][]geom.Scored

// BatchDetectorOf wraps a float ViT model as a BatchDetectFunc: the whole
// batch is packed into one Patchify/Forward/DetHead pass and decoded per
// image. This is the entry point the serving layer's micro-batcher calls.
func BatchDetectorOf(m *vit.Model, th Thresholds) BatchDetectFunc {
	return func(imgs []*tensor.Tensor) [][]geom.Scored {
		if len(imgs) == 0 {
			return nil
		}
		t := m.Cfg.Tokens()
		patches := vit.Patchify(m.Cfg, imgs)
		feats := m.Forward(patches, false)
		det := m.DetHead(feats, false)
		out := make([][]geom.Scored, len(imgs))
		for i := range imgs {
			out[i] = vit.Decode(m.Cfg, det.Slice2D(i*t, (i+1)*t), th.Obj, th.NMSIoU)
		}
		return out
	}
}

// Run evaluates a detector over a dataset, restricted to the given class
// set: detections outside the class set are dropped (the task-conditioned
// pipeline never reports irrelevant classes), and the summary is computed at
// th.MatchIoU.
func Run(df DetectFunc, set dataset.Set, classes []int, th Thresholds) metrics.Summary {
	s, _ := RunWithConfusion(df, set, classes, th)
	return s
}

// RunWithConfusion is Run plus a class-agnostic confusion matrix over the
// class set, for error analysis (which classes get mistaken for which).
func RunWithConfusion(df DetectFunc, set dataset.Set, classes []int, th Thresholds) (metrics.Summary, *metrics.Confusion) {
	allowed := map[int]bool{}
	for _, c := range classes {
		allowed[c] = true
	}
	conf := metrics.NewConfusion(classes)
	images := make([]metrics.ImageEval, 0, set.Len())
	for _, ex := range set.Examples {
		dets := df(ex.Image)
		kept := dets[:0]
		for _, d := range dets {
			if allowed[d.Class] {
				kept = append(kept, d)
			}
		}
		gts := dataset.GroundTruths(ex)
		conf.Add(kept, gts, th.MatchIoU)
		images = append(images, metrics.ImageEval{Dets: kept, GTs: gts})
	}
	return metrics.Evaluate(images, classes, th.MatchIoU), conf
}
