package eval

import (
	"testing"

	"itask/internal/dataset"
	"itask/internal/geom"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if th.Obj <= 0 || th.Obj >= 1 || th.NMSIoU <= 0 || th.MatchIoU <= 0 {
		t.Errorf("degenerate thresholds %+v", th)
	}
}

// oracleDetector returns the ground truth of each example, looked up by
// image pointer — a perfect detector for testing Run.
func oracleDetector(set dataset.Set) DetectFunc {
	byImg := map[*tensor.Tensor][]geom.Scored{}
	for _, ex := range set.Examples {
		var dets []geom.Scored
		for _, o := range ex.Objects {
			dets = append(dets, geom.Scored{Box: o.Box, Class: o.Class, Score: 0.99})
		}
		byImg[ex.Image] = dets
	}
	return func(img *tensor.Tensor) []geom.Scored { return byImg[img] }
}

func TestRunPerfectDetector(t *testing.T) {
	rng := tensor.NewRNG(1)
	task, _ := dataset.TaskByName("patrol")
	set := dataset.Build(task, 10, scene.DefaultGenConfig(), rng)
	th := DefaultThresholds()
	s := Run(oracleDetector(set), set, dataset.ClassInts(task.Classes), th)
	if s.Accuracy != 1 || s.Precision != 1 {
		t.Errorf("oracle should be perfect: %+v", s)
	}
	if s.Images != 10 {
		t.Errorf("images = %d", s.Images)
	}
}

func TestRunBlindDetector(t *testing.T) {
	rng := tensor.NewRNG(2)
	task, _ := dataset.TaskByName("triage")
	set := dataset.Build(task, 5, scene.DefaultGenConfig(), rng)
	blind := func(img *tensor.Tensor) []geom.Scored { return nil }
	s := Run(blind, set, dataset.ClassInts(task.Classes), DefaultThresholds())
	if s.Accuracy != 0 || s.Detections != 0 {
		t.Errorf("blind detector should score 0: %+v", s)
	}
}

func TestRunFiltersDisallowedClasses(t *testing.T) {
	rng := tensor.NewRNG(3)
	task, _ := dataset.TaskByName("inspect")
	set := dataset.Build(task, 5, scene.DefaultGenConfig(), rng)
	// Detector emits one out-of-task detection per image on top of truth.
	oracle := oracleDetector(set)
	noisy := func(img *tensor.Tensor) []geom.Scored {
		dets := oracle(img)
		return append(dets, geom.Scored{
			Box: geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}, Class: int(scene.Car), Score: 0.9,
		})
	}
	s := Run(noisy, set, dataset.ClassInts(task.Classes), DefaultThresholds())
	// The Car detections must be filtered: precision stays perfect.
	if s.Precision != 1 {
		t.Errorf("out-of-task detections leaked: %+v", s)
	}
}

func TestRunWithConfusion(t *testing.T) {
	rng := tensor.NewRNG(7)
	task, _ := dataset.TaskByName("patrol")
	set := dataset.Build(task, 6, scene.DefaultGenConfig(), rng)
	classes := dataset.ClassInts(task.Classes)
	th := DefaultThresholds()
	s, conf := RunWithConfusion(oracleDetector(set), set, classes, th)
	if s.Accuracy != 1 {
		t.Fatalf("oracle accuracy %v", s.Accuracy)
	}
	if conf.Accuracy() != 1 {
		t.Errorf("confusion accuracy %v, want 1", conf.Accuracy())
	}
	if _, _, _, ok := conf.MostConfused(); ok {
		t.Error("oracle should have no confusions")
	}
}

func TestDetectorOfRuns(t *testing.T) {
	cfg := vit.TinyConfig(int(scene.NumClasses))
	m := vit.New(cfg, tensor.NewRNG(4))
	df := DetectorOf(m, DefaultThresholds())
	img := tensor.Randn(tensor.NewRNG(5), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	// Untrained model: just verify it runs and returns well-formed output.
	for _, d := range df(img) {
		if d.Score < 0 || d.Score > 1 {
			t.Errorf("score out of range: %+v", d)
		}
		if d.Class < 0 || d.Class >= int(scene.NumClasses) {
			t.Errorf("class out of range: %+v", d)
		}
	}
}
