package metrics

import (
	"strings"
	"testing"

	"itask/internal/geom"
)

func TestConfusionPerfect(t *testing.T) {
	c := NewConfusion([]int{0, 1})
	b := geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	c.Add(
		[]geom.Scored{{Box: b, Class: 0, Score: 0.9}},
		[]GroundTruth{{Box: b, Class: 0}},
		0.5,
	)
	if c.Counts[0][0] != 1 || c.Accuracy() != 1 {
		t.Errorf("perfect match misrecorded: %+v acc=%v", c.Counts, c.Accuracy())
	}
	if _, _, _, ok := c.MostConfused(); ok {
		t.Error("no confusion expected")
	}
}

func TestConfusionMisclassification(t *testing.T) {
	c := NewConfusion([]int{3, 7})
	b := geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	// GT class 3 detected as class 7 at the same location: class-agnostic
	// matching must record it as a confusion, not miss+ghost.
	c.Add(
		[]geom.Scored{{Box: b, Class: 7, Score: 0.9}},
		[]GroundTruth{{Box: b, Class: 3}},
		0.5,
	)
	if c.Counts[0][1] != 1 {
		t.Fatalf("confusion not recorded: %+v", c.Counts)
	}
	gt, pred, n, ok := c.MostConfused()
	if !ok || gt != 3 || pred != 7 || n != 1 {
		t.Errorf("MostConfused = %d->%d x%d ok=%v", gt, pred, n, ok)
	}
	if c.Accuracy() != 0 {
		t.Errorf("accuracy = %v, want 0", c.Accuracy())
	}
}

func TestConfusionMissAndGhost(t *testing.T) {
	c := NewConfusion([]int{0})
	c.Add(
		[]geom.Scored{{Box: geom.Box{X: 0.1, Y: 0.1, W: 0.1, H: 0.1}, Class: 0, Score: 0.9}},
		[]GroundTruth{{Box: geom.Box{X: 0.8, Y: 0.8, W: 0.1, H: 0.1}, Class: 0}},
		0.5,
	)
	if c.Missed[0] != 1 || c.Ghost[0] != 1 {
		t.Errorf("miss/ghost = %d/%d, want 1/1", c.Missed[0], c.Ghost[0])
	}
}

func TestConfusionRender(t *testing.T) {
	c := NewConfusion([]int{0, 1})
	out := c.Render(func(cls int) string { return map[int]string{0: "car", 1: "gear"}[cls] })
	for _, want := range []string{"car", "gear", "missed", "ghost"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	c := NewConfusion([]int{0})
	if c.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
}
