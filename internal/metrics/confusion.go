package metrics

import (
	"fmt"
	"sort"
	"strings"

	"itask/internal/geom"
)

// Confusion is a detection confusion matrix over a class vocabulary:
// Counts[gt][pred] counts ground-truth objects of class gt matched (by IoU,
// class-agnostic) to a detection of class pred. Two synthetic indices
// complete the bookkeeping: missed ground truths and background false
// positives.
type Confusion struct {
	// Classes is the vocabulary, in the order rows/columns use.
	Classes []int
	// Counts[gt][pred] over len(Classes) real classes.
	Counts [][]int
	// Missed[gt] counts ground truths with no matching detection.
	Missed []int
	// Ghost[pred] counts detections matching no ground truth.
	Ghost []int

	index map[int]int
}

// NewConfusion creates an empty matrix over the given classes.
func NewConfusion(classes []int) *Confusion {
	c := &Confusion{
		Classes: append([]int(nil), classes...),
		Counts:  make([][]int, len(classes)),
		Missed:  make([]int, len(classes)),
		Ghost:   make([]int, len(classes)),
		index:   map[int]int{},
	}
	for i, cls := range classes {
		c.Counts[i] = make([]int, len(classes))
		c.index[cls] = i
	}
	return c
}

// Add folds one image's detections and ground truths into the matrix.
// Matching is greedy best-IoU and deliberately class-AGNOSTIC, so class
// confusions become visible (class-aware matching would file them as
// miss + ghost).
func (c *Confusion) Add(dets []geom.Scored, gts []GroundTruth, iouThresh float64) {
	type cand struct {
		di, gi int
		iou    float64
	}
	var cands []cand
	for di, d := range dets {
		for gi, gt := range gts {
			if iou := geom.IoU(d.Box, gt.Box); iou >= iouThresh {
				cands = append(cands, cand{di, gi, iou})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].iou > cands[j].iou })
	usedD := make([]bool, len(dets))
	usedG := make([]bool, len(gts))
	for _, cd := range cands {
		if usedD[cd.di] || usedG[cd.gi] {
			continue
		}
		usedD[cd.di] = true
		usedG[cd.gi] = true
		gi, ok1 := c.index[gts[cd.gi].Class]
		pi, ok2 := c.index[dets[cd.di].Class]
		if ok1 && ok2 {
			c.Counts[gi][pi]++
		}
	}
	for gi, gt := range gts {
		if !usedG[gi] {
			if idx, ok := c.index[gt.Class]; ok {
				c.Missed[idx]++
			}
		}
	}
	for di, d := range dets {
		if !usedD[di] {
			if idx, ok := c.index[d.Class]; ok {
				c.Ghost[idx]++
			}
		}
	}
}

// Accuracy returns the trace ratio: correctly classified matches over all
// ground truths (missed included).
func (c *Confusion) Accuracy() float64 {
	var correct, total int
	for i := range c.Classes {
		for j := range c.Classes {
			total += c.Counts[i][j]
			if i == j {
				correct += c.Counts[i][j]
			}
		}
		total += c.Missed[i]
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MostConfused returns the off-diagonal (gt, pred) pair with the highest
// count, or ok=false if there are no confusions.
func (c *Confusion) MostConfused() (gt, pred, count int, ok bool) {
	best := 0
	for i := range c.Classes {
		for j := range c.Classes {
			if i != j && c.Counts[i][j] > best {
				best = c.Counts[i][j]
				gt, pred = c.Classes[i], c.Classes[j]
			}
		}
	}
	return gt, pred, best, best > 0
}

// Render prints the matrix with the provided class namer.
func (c *Confusion) Render(name func(int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "gt \\ pred")
	for _, cls := range c.Classes {
		fmt.Fprintf(&b, " %8.8s", name(cls))
	}
	fmt.Fprintf(&b, " %8s\n", "missed")
	for i, cls := range c.Classes {
		fmt.Fprintf(&b, "%-14.14s", name(cls))
		for j := range c.Classes {
			fmt.Fprintf(&b, " %8d", c.Counts[i][j])
		}
		fmt.Fprintf(&b, " %8d\n", c.Missed[i])
	}
	fmt.Fprintf(&b, "%-14s", "ghost")
	for j := range c.Classes {
		fmt.Fprintf(&b, " %8d", c.Ghost[j])
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
