package metrics

import (
	"math"
	"testing"

	"itask/internal/geom"
)

func box(x, y, w, h float64) geom.Box { return geom.Box{X: x, Y: y, W: w, H: h} }

func TestMatchPerfectDetection(t *testing.T) {
	gts := []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 1}}
	dets := []geom.Scored{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 1, Score: 0.9}}
	m := Match(dets, gts, 0.5)
	if !m.TP[0] || !m.Matched[0] {
		t.Error("perfect detection should match")
	}
}

func TestMatchClassMismatch(t *testing.T) {
	gts := []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 1}}
	dets := []geom.Scored{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 2, Score: 0.9}}
	m := Match(dets, gts, 0.5)
	if m.TP[0] {
		t.Error("wrong-class detection must be a false positive")
	}
}

func TestMatchLowIoU(t *testing.T) {
	gts := []GroundTruth{{Box: box(0.2, 0.2, 0.1, 0.1), Class: 0}}
	dets := []geom.Scored{{Box: box(0.8, 0.8, 0.1, 0.1), Class: 0, Score: 0.9}}
	if m := Match(dets, gts, 0.5); m.TP[0] {
		t.Error("disjoint detection must not match")
	}
}

func TestMatchGreedyByScore(t *testing.T) {
	// Two detections on one GT: the higher-scoring one wins, the other is FP.
	gts := []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0}}
	dets := []geom.Scored{
		{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0, Score: 0.3},
		{Box: box(0.51, 0.5, 0.2, 0.2), Class: 0, Score: 0.8},
	}
	m := Match(dets, gts, 0.5)
	if m.TP[0] || !m.TP[1] {
		t.Errorf("greedy matching wrong: %+v", m.TP)
	}
}

func TestMatchOneToOne(t *testing.T) {
	// One detection cannot claim two GTs.
	gts := []GroundTruth{
		{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0},
		{Box: box(0.52, 0.5, 0.2, 0.2), Class: 0},
	}
	dets := []geom.Scored{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0, Score: 0.9}}
	m := Match(dets, gts, 0.5)
	matched := 0
	for _, ok := range m.Matched {
		if ok {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("one detection matched %d GTs", matched)
	}
}

func TestAPPerfectDetector(t *testing.T) {
	var images []ImageEval
	for i := 0; i < 5; i++ {
		gt := GroundTruth{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0}
		images = append(images, ImageEval{
			GTs:  []GroundTruth{gt},
			Dets: []geom.Scored{{Box: gt.Box, Class: 0, Score: 0.9}},
		})
	}
	ap := AP(PRCurve(images, 0, 0.5))
	if math.Abs(ap-1) > 1e-9 {
		t.Errorf("perfect detector AP = %v, want 1", ap)
	}
}

func TestAPNoDetections(t *testing.T) {
	images := []ImageEval{{GTs: []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0}}}}
	if ap := AP(PRCurve(images, 0, 0.5)); ap != 0 {
		t.Errorf("no detections AP = %v, want 0", ap)
	}
}

func TestAPAllFalsePositives(t *testing.T) {
	images := []ImageEval{{
		GTs:  []GroundTruth{{Box: box(0.2, 0.2, 0.1, 0.1), Class: 0}},
		Dets: []geom.Scored{{Box: box(0.8, 0.8, 0.1, 0.1), Class: 0, Score: 0.9}},
	}}
	if ap := AP(PRCurve(images, 0, 0.5)); ap != 0 {
		t.Errorf("all-FP AP = %v, want 0", ap)
	}
}

func TestAPHalfDetector(t *testing.T) {
	// Detector finds 1 of 2 objects perfectly: AP = 0.5 (precision 1 up to
	// recall 0.5, nothing beyond).
	images := []ImageEval{{
		GTs: []GroundTruth{
			{Box: box(0.3, 0.3, 0.2, 0.2), Class: 0},
			{Box: box(0.7, 0.7, 0.2, 0.2), Class: 0},
		},
		Dets: []geom.Scored{{Box: box(0.3, 0.3, 0.2, 0.2), Class: 0, Score: 0.9}},
	}}
	ap := AP(PRCurve(images, 0, 0.5))
	if math.Abs(ap-0.5) > 1e-9 {
		t.Errorf("half detector AP = %v, want 0.5", ap)
	}
}

func TestPRCurveIgnoresOtherClasses(t *testing.T) {
	images := []ImageEval{{
		GTs:  []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0}},
		Dets: []geom.Scored{{Box: box(0.1, 0.1, 0.1, 0.1), Class: 1, Score: 0.99}},
	}}
	curve := PRCurve(images, 0, 0.5)
	if len(curve) != 0 {
		t.Errorf("class-1 detections leaked into class-0 curve: %v", curve)
	}
}

func TestPRCurveNoGT(t *testing.T) {
	images := []ImageEval{{Dets: []geom.Scored{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0, Score: 0.9}}}}
	if c := PRCurve(images, 0, 0.5); c != nil {
		t.Error("no-GT class should yield nil curve")
	}
}

func TestMAPSkipsAbsentClasses(t *testing.T) {
	images := []ImageEval{{
		GTs:  []GroundTruth{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0}},
		Dets: []geom.Scored{{Box: box(0.5, 0.5, 0.2, 0.2), Class: 0, Score: 0.9}},
	}}
	// Class 7 never appears; mAP should be AP of class 0 alone = 1.
	m := MAP(images, []int{0, 7}, 0.5)
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("mAP = %v, want 1", m)
	}
}

func TestEvaluateSummary(t *testing.T) {
	images := []ImageEval{{
		GTs: []GroundTruth{
			{Box: box(0.3, 0.3, 0.2, 0.2), Class: 0},
			{Box: box(0.7, 0.7, 0.2, 0.2), Class: 1},
		},
		Dets: []geom.Scored{
			{Box: box(0.3, 0.3, 0.2, 0.2), Class: 0, Score: 0.9}, // TP
			{Box: box(0.1, 0.9, 0.1, 0.1), Class: 1, Score: 0.8}, // FP
		},
	}}
	s := Evaluate(images, []int{0, 1}, 0.5)
	if math.Abs(s.Accuracy-0.5) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.5", s.Accuracy)
	}
	if math.Abs(s.Precision-0.5) > 1e-9 {
		t.Errorf("precision = %v, want 0.5", s.Precision)
	}
	if math.Abs(s.F1-0.5) > 1e-9 {
		t.Errorf("f1 = %v, want 0.5", s.F1)
	}
	if s.Images != 1 || s.GTObjects != 2 || s.Detections != 2 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := Evaluate(nil, []int{0}, 0.5)
	if s.Accuracy != 0 || s.Precision != 0 || s.MAP != 0 {
		t.Errorf("empty evaluation should be all zeros: %+v", s)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("stats = %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if s.P95 < s.P50 || s.P99 < s.P95 || s.P99 > s.Max {
		t.Errorf("percentiles out of order: %+v", s)
	}
}

func TestComputeStatsEdgeCases(t *testing.T) {
	if s := ComputeStats(nil); s.N != 0 {
		t.Error("empty stats should be zero")
	}
	s := ComputeStats([]float64{42})
	if s.Mean != 42 || s.P50 != 42 || s.P99 != 42 || s.Std != 0 {
		t.Errorf("single-sample stats = %+v", s)
	}
}

func TestComputeStatsDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	ComputeStats(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("ComputeStats sorted the caller's slice")
	}
}
