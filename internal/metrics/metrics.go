// Package metrics implements the detection-quality and runtime statistics
// used by every iTask experiment: greedy IoU matching, average precision and
// mAP, recall-oriented "detection accuracy" (the headline metric the paper's
// accuracy claims refer to), and latency/energy aggregation helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"itask/internal/geom"
)

// GroundTruth is a labeled object for evaluation.
type GroundTruth struct {
	Box   geom.Box
	Class int
}

// ImageEval holds the detections and ground truth of one image.
type ImageEval struct {
	Dets []geom.Scored
	GTs  []GroundTruth
}

// MatchResult marks each detection of one image as true/false positive and
// records which ground truths were found.
type MatchResult struct {
	// TP[i] is true when detection i matched a ground truth.
	TP []bool
	// Matched[j] is true when ground truth j was found.
	Matched []bool
}

// Match greedily assigns detections (in descending score order) to the
// best-IoU unmatched ground truth of the same class. A detection is a true
// positive when its best match clears iouThresh.
func Match(dets []geom.Scored, gts []GroundTruth, iouThresh float64) MatchResult {
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dets[order[a]].Score > dets[order[b]].Score })
	res := MatchResult{TP: make([]bool, len(dets)), Matched: make([]bool, len(gts))}
	for _, di := range order {
		d := dets[di]
		best := -1
		bestIoU := iouThresh
		for gi, gt := range gts {
			if res.Matched[gi] || gt.Class != d.Class {
				continue
			}
			if iou := geom.IoU(d.Box, gt.Box); iou >= bestIoU {
				bestIoU, best = iou, gi
			}
		}
		if best >= 0 {
			res.TP[di] = true
			res.Matched[best] = true
		}
	}
	return res
}

// PRPoint is one precision/recall operating point.
type PRPoint struct {
	Score     float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision/recall curve for one class over a set of
// images. Detections of other classes are ignored; ground truths of other
// classes don't count toward recall.
func PRCurve(images []ImageEval, class int, iouThresh float64) []PRPoint {
	type flagged struct {
		score float64
		tp    bool
	}
	var all []flagged
	totalGT := 0
	for _, img := range images {
		var dets []geom.Scored
		for _, d := range img.Dets {
			if d.Class == class {
				dets = append(dets, d)
			}
		}
		var gts []GroundTruth
		for _, gt := range img.GTs {
			if gt.Class == class {
				gts = append(gts, gt)
			}
		}
		totalGT += len(gts)
		m := Match(dets, gts, iouThresh)
		for i, d := range dets {
			all = append(all, flagged{score: d.Score, tp: m.TP[i]})
		}
	}
	if totalGT == 0 {
		return nil
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].score > all[j].score })
	var curve []PRPoint
	tp, fp := 0, 0
	for _, f := range all {
		if f.tp {
			tp++
		} else {
			fp++
		}
		curve = append(curve, PRPoint{
			Score:     f.score,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalGT),
		})
	}
	return curve
}

// AP computes average precision from a PR curve using the standard
// all-points interpolation (area under the precision-envelope).
func AP(curve []PRPoint) float64 {
	if len(curve) == 0 {
		return 0
	}
	// Precision envelope: for each point, the max precision at >= recall.
	env := make([]float64, len(curve))
	maxP := 0.0
	for i := len(curve) - 1; i >= 0; i-- {
		if curve[i].Precision > maxP {
			maxP = curve[i].Precision
		}
		env[i] = maxP
	}
	ap := 0.0
	prevRecall := 0.0
	for i, p := range curve {
		ap += (p.Recall - prevRecall) * env[i]
		prevRecall = p.Recall
	}
	return ap
}

// MAP computes mean average precision over the given classes at iouThresh.
// Classes with no ground truth anywhere are skipped (not counted as 0).
func MAP(images []ImageEval, classes []int, iouThresh float64) float64 {
	var sum float64
	counted := 0
	for _, c := range classes {
		hasGT := false
		for _, img := range images {
			for _, gt := range img.GTs {
				if gt.Class == c {
					hasGT = true
					break
				}
			}
			if hasGT {
				break
			}
		}
		if !hasGT {
			continue
		}
		sum += AP(PRCurve(images, c, iouThresh))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// Summary aggregates the headline numbers of one evaluation run.
type Summary struct {
	// Accuracy is object-level detection accuracy: the fraction of ground
	// truth objects that were detected with the right class at the IoU
	// threshold. This is the metric behind the paper's "% accuracy" claims.
	Accuracy float64
	// Precision is TP / (TP + FP) over all detections.
	Precision float64
	// Recall equals Accuracy (kept separate for readability at call sites).
	Recall float64
	// F1 is the harmonic mean of precision and recall.
	F1 float64
	// MAP is COCO-style mean average precision at the IoU threshold.
	MAP float64
	// Images, GTObjects, Detections count the evaluation size.
	Images, GTObjects, Detections int
}

// Evaluate computes the full summary at iouThresh over the class set.
func Evaluate(images []ImageEval, classes []int, iouThresh float64) Summary {
	s := Summary{Images: len(images)}
	tp, fp, totalGT := 0, 0, 0
	for _, img := range images {
		m := Match(img.Dets, img.GTs, iouThresh)
		for _, isTP := range m.TP {
			if isTP {
				tp++
			} else {
				fp++
			}
		}
		totalGT += len(img.GTs)
		s.Detections += len(img.Dets)
	}
	s.GTObjects = totalGT
	if totalGT > 0 {
		s.Recall = float64(tp) / float64(totalGT)
	}
	s.Accuracy = s.Recall
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	s.MAP = MAP(images, classes, iouThresh)
	return s
}

// String renders the summary as a compact table row.
func (s Summary) String() string {
	return fmt.Sprintf("acc=%.3f prec=%.3f f1=%.3f mAP=%.3f (n=%d imgs, %d GT, %d dets)",
		s.Accuracy, s.Precision, s.F1, s.MAP, s.Images, s.GTObjects, s.Detections)
}

// Stats holds simple distribution statistics for runtime measurements.
type Stats struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// ComputeStats summarizes a sample set. Returns the zero value for empty
// input.
func ComputeStats(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		N: len(sorted), Mean: mean, Std: math.Sqrt(variance),
		Min: sorted[0], Max: sorted[len(sorted)-1],
		P50: percentile(sorted, 0.50),
		P95: percentile(sorted, 0.95),
		P99: percentile(sorted, 0.99),
	}
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
