package gateway

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// epoch.go: cluster-wide registry-change propagation. Each shard carries
// its own versioned model registry; the registry snapshot sequence is the
// shard's route epoch. A publish applied shard-by-shard would leave a
// window where shard A serves model v2 while shard B still serves v1 —
// clients behind the gateway would see version flapping keyed by which
// shard their frame hashes to. Propagate closes that window:
//
//   - Two-phase (preferred, ChangeStager): every member stages the change
//     (validates and holds it without activating); only when ALL stages
//     succeed does the gateway commit, and a failed stage aborts the whole
//     change everywhere. No shard activates a version any shard could not
//     take, so the first new-version response implies cluster-wide
//     readiness.
//   - Single-phase fallback (ChangeApplier): the change is applied on all
//     members concurrently and Propagate then barrier-polls each member's
//     route epoch until the whole fleet has reached the change's epoch (or
//     ctx expires). The flap window exists but is bounded and observable.
//
// Either way Propagate advances the gateway's committed epoch — the fleet
// highwater the prober compares members against. A member later observed
// below it (it rebooted with stale models, it missed a commit) is marked
// lagging and excluded from routing until it catches up, so staleness is a
// routing condition, not a silent wrong answer.

// Registry-change operations.
const (
	// OpPublish activates a new model version. Payload carries the
	// node-understood artifact (for ServeNode, a registry.Artifact).
	OpPublish = "publish"
	// OpDemote quarantines the version named by Target ("name@vN#sum" or
	// "name@vN"), rolling the series back to its last healthy version.
	OpDemote = "demote"
	// OpRollback reverts the series named by Target to its previous
	// version.
	OpRollback = "rollback"
)

// Change is one registry mutation to drive across every shard.
type Change struct {
	// Op is one of OpPublish, OpDemote, OpRollback.
	Op string
	// Target identifies the artifact (demote) or series (rollback).
	Target string
	// Payload is the op-specific body (publish: the artifact to publish).
	Payload any
}

// Fingerprint keys a change for stage/commit matching on a node.
func (c Change) Fingerprint() string {
	return fmt.Sprintf("%s|%s|%T", c.Op, c.Target, c.Payload)
}

// ChangeStager is implemented by nodes that support two-phase change
// application. StageChange validates and holds the change without altering
// routing; CommitChange activates a staged change and returns the node's
// resulting route epoch; AbortChange discards a staged change.
type ChangeStager interface {
	StageChange(ctx context.Context, c Change) error
	CommitChange(ctx context.Context, c Change) (uint64, error)
	AbortChange(ctx context.Context, c Change) error
}

// ChangeApplier is implemented by nodes that can only apply a change in one
// step, returning the node's resulting route epoch. Propagate falls back to
// apply-then-barrier for fleets with at least one such node.
type ChangeApplier interface {
	ApplyChange(ctx context.Context, c Change) (uint64, error)
}

// Propagate drives one registry change across every current member and
// returns the cluster's new committed epoch. With an all-ChangeStager fleet
// the change is atomic: either every member commits it or no member
// activates it. Otherwise it is applied per-member and Propagate blocks on
// an epoch barrier until the fleet converges (bounded by ctx).
func (g *Gateway) Propagate(ctx context.Context, c Change) (uint64, error) {
	rs := g.ring.Load()
	if len(rs.shards) == 0 {
		return 0, ErrNoNodes
	}
	allStage := true
	for _, m := range rs.shards {
		switch m.node.(type) {
		case ChangeStager:
		case ChangeApplier:
			allStage = false
		default:
			return 0, fmt.Errorf("%w: %s", ErrUnsupportedChange, m.id)
		}
	}
	var (
		epoch uint64
		err   error
	)
	if allStage {
		epoch, err = g.propagateTwoPhase(ctx, rs.shards, c)
	} else {
		epoch, err = g.propagateWithBarrier(ctx, rs.shards, c)
	}
	if epoch > 0 {
		g.advanceEpoch(epoch)
		g.m.inc(epoch, cPropagates)
	}
	return epoch, err
}

// propagateTwoPhase stages everywhere, then commits everywhere. The commit
// point is the moment the last stage succeeds: before it the change can be
// (and on any stage failure, is) aborted with no routing effect anywhere.
func (g *Gateway) propagateTwoPhase(ctx context.Context, shards []*shard, c Change) (uint64, error) {
	staged := make([]bool, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, m := range shards {
		wg.Add(1)
		go func(i int, m *shard) {
			defer wg.Done()
			if err := m.node.(ChangeStager).StageChange(ctx, c); err != nil {
				errs[i] = fmt.Errorf("stage on %s: %w", m.id, err)
			} else {
				staged[i] = true
			}
		}(i, m)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		// Abort the members that did stage; the fleet keeps its old routing.
		for i, m := range shards {
			if staged[i] {
				_ = m.node.(ChangeStager).AbortChange(ctx, c)
			}
		}
		return 0, err
	}

	// Commit point passed: activate everywhere. A member that fails to
	// commit now is out of sync with a change the fleet has accepted — it is
	// marked lagging (skipped by routing) until the prober sees it catch up.
	epochs := make([]uint64, len(shards))
	for i, m := range shards {
		wg.Add(1)
		go func(i int, m *shard) {
			defer wg.Done()
			ep, err := m.node.(ChangeStager).CommitChange(ctx, c)
			if err != nil {
				errs[i] = fmt.Errorf("commit on %s: %w", m.id, err)
				return
			}
			epochs[i] = ep
		}(i, m)
	}
	wg.Wait()
	var max uint64
	for _, ep := range epochs {
		if ep > max {
			max = ep
		}
	}
	var failed []string
	for i, m := range shards {
		if errs[i] != nil {
			failed = append(failed, m.id)
			m.lagging.Store(true)
			g.m.inc(uint64(i), cEpochDrift)
		} else {
			m.epoch.Store(epochs[i])
		}
	}
	if len(failed) > 0 {
		return max, fmt.Errorf("%w (lagging: %s): %v", ErrPartialCommit, strings.Join(failed, ","), firstErr(errs))
	}
	return max, nil
}

// propagateWithBarrier applies the change on every member concurrently,
// then polls route epochs until the fleet reaches the change's epoch.
func (g *Gateway) propagateWithBarrier(ctx context.Context, shards []*shard, c Change) (uint64, error) {
	epochs := make([]uint64, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, m := range shards {
		wg.Add(1)
		go func(i int, m *shard) {
			defer wg.Done()
			var (
				ep  uint64
				err error
			)
			switch n := m.node.(type) {
			case ChangeApplier:
				ep, err = n.ApplyChange(ctx, c)
			case ChangeStager:
				// Degenerate two-phase on a mixed fleet: stage+commit
				// back-to-back per member.
				if err = n.StageChange(ctx, c); err == nil {
					ep, err = n.CommitChange(ctx, c)
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("apply on %s: %w", m.id, err)
				return
			}
			epochs[i] = ep
		}(i, m)
	}
	wg.Wait()
	var max uint64
	for _, ep := range epochs {
		if ep > max {
			max = ep
		}
	}
	if err := firstErr(errs); err != nil {
		return max, err
	}

	// Barrier: wait until every member observably routes at the new epoch.
	t := time.NewTicker(g.cfg.BarrierPoll)
	defer t.Stop()
	for {
		converged := true
		for _, m := range shards {
			en, ok := m.node.(EpochNode)
			if !ok {
				continue // no observable epoch; trust the apply
			}
			ep, err := en.RouteEpoch(ctx)
			if err != nil || ep < max {
				converged = false
				break
			}
			m.epoch.Store(ep)
		}
		if converged {
			return max, nil
		}
		select {
		case <-ctx.Done():
			return max, fmt.Errorf("gateway: epoch barrier: %w", ctx.Err())
		case <-t.C:
		}
	}
}

// advanceEpoch raises the committed epoch monotonically.
func (g *Gateway) advanceEpoch(ep uint64) {
	for {
		cur := g.committedEpoch.Load()
		if ep <= cur || g.committedEpoch.CompareAndSwap(cur, ep) {
			return
		}
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
