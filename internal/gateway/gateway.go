// Package gateway is iTask's distributed serve tier: a front door that
// consistent-hashes detection requests by content digest across a fleet of
// itask-serve backends, so each frame's result-cache entry lives on exactly
// one shard and the fleet's aggregate cache behaves like one large cache
// instead of N overlapping small ones.
//
// The design is five cooperating layers:
//
//   - Membership (internal/member): the fleet is dynamic. Shards announce
//     themselves and renew heartbeat leases (Announce/Renew); missed
//     renewals move a member suspect→expired and off the ring, a graceful
//     leave (Leave) removes it immediately while in-flight requests finish,
//     and a rejoining shard must converge to the committed registry epoch
//     before becoming routable, then re-enters under a slow-start weight
//     ramp so its cold cache isn't handed a full zipf blast. A static seed
//     list (AddNode) still works and can mix with leased members.
//   - Placement (ring.go): a consistent-hash ring with virtual nodes.
//     Requests route by the rcache content digest of their image (requests
//     without a digestable image fall back to a task key, keeping a task's
//     traffic on one shard's batch lanes). Node join/leave remaps only
//     ~K/N keys. With LoadFactor > 0 the ring is bounded-load: an owner
//     already carrying more than LoadFactor times the fleet-average
//     in-flight work spills the request to its successor instead of
//     queueing behind the herd.
//   - Hot keys (internal/freq MJRTY estimator): per-digest arrival counting
//     detects zipf-hot content; a hot digest is served by its HotReplicas
//     ring successors with power-of-two-choices balancing between them, so
//     one viral frame engages several shards' capacity instead of
//     saturating its owner (each replica answers from its own result cache
//     after one miss). The verdict also rides the proxied request
//     (Request.Hot / X-Itask-Hot) so shards pre-promote fleet-hot digests
//     into their in-process replica tier (see internal/rcache).
//   - Health (health.go): active probes plus passive failure accounting
//     eject an unreachable member; its keys rehash to successors and a
//     request caught mid-death retries once on the successor, so a node
//     death costs healthy traffic nothing. Failover is paced (retry.go):
//     per-attempt deadlines bound how long a blackholed shard can hold a
//     request, full-jitter backoff and Retry-After honor space the retries,
//     and a fleet-wide token-bucket retry budget keeps a flapping shard
//     from amplifying into a retry storm.
//   - Epochs (epoch.go): registry changes (publish / demote / rollback)
//     propagate through the gateway with a two-phase stage/commit barrier:
//     no shard activates a new version until every shard has staged it, so
//     clients never observe version flapping across shards. Members whose
//     route epoch falls behind the cluster's committed epoch are marked
//     lagging and skipped by routing until they catch up.
//
// The package is transport-agnostic: a Node is any handle with an ID, and
// the request path works through Execute's callback, so in-process fleets
// (ServeNode over serve.Server) and HTTP fleets (cmd/itask-gateway) share
// all routing, membership, health, and epoch machinery.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/freq"
	"itask/internal/member"
	"itask/internal/rcache"
	"itask/internal/serve"
)

// Node is one backend shard as the gateway sees it. ID must be stable and
// unique across the fleet — it determines the member's ring placement, so
// every gateway instance with the same member set routes identically.
type Node interface {
	ID() string
}

// DetectNode is implemented by nodes that execute detection requests
// directly (in-process fleets). Gateway.Detect requires it; HTTP fleets
// that forward opaque bodies use Execute instead.
type DetectNode interface {
	Node
	Detect(ctx context.Context, req serve.Request) (serve.Result, error)
}

// ProbeNode is optionally implemented by nodes that support an active
// liveness probe. A probe error counts toward ejection exactly like a
// request failure; a probe success clears failure accounting and lifts an
// ejection early.
type ProbeNode interface {
	Probe(ctx context.Context) error
}

// EpochNode is optionally implemented by nodes that expose their routing
// epoch (for the pipeline backend, the registry snapshot sequence). The
// prober compares it against the cluster's committed epoch to detect
// shards serving stale routing, and Propagate's barrier polls it.
type EpochNode interface {
	RouteEpoch(ctx context.Context) (uint64, error)
}

// ErrClass buckets node errors by what the gateway should do about them.
type ErrClass int

const (
	// ClassOK: no error.
	ClassOK ErrClass = iota
	// ClassRequest: the request's own fault (bad shape, poison content,
	// missed deadline). The node is healthy; retrying the same content on a
	// successor would just spread the failure. Returned to the caller.
	ClassRequest
	// ClassOverload: the node is saturated (queue full, breaker open). The
	// request spills to a successor once, but the node is not penalized —
	// load is not death.
	ClassOverload
	// ClassNodeDown: the node is unreachable or draining. The request
	// retries on a successor and the failure counts toward ejection.
	ClassNodeDown
)

// NodeError lets adapters that understand their transport (HTTP status
// codes, connection errors) pass an explicit class through Execute's
// callback. Errors not wrapped in NodeError are classified from the serve
// sentinels by Classify.
type NodeError struct {
	Class ErrClass
	// RetryAfter is the shard's advertised retry horizon (parsed from a
	// Retry-After header on 429/503), honored by the failover pacing: the
	// next attempt waits min(RetryAfter, RetryBackoffMax) instead of firing
	// immediately. Zero means no hint.
	RetryAfter time.Duration
	Err        error
}

func (e *NodeError) Error() string { return e.Err.Error() }
func (e *NodeError) Unwrap() error { return e.Err }

// Classify buckets an error from a node. Adapters override via NodeError;
// serve sentinels map per the taxonomy above; unknown errors are treated as
// the request's own (fail fast, never penalize a node for content).
func Classify(err error) ErrClass {
	if err == nil {
		return ClassOK
	}
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.Class
	}
	switch {
	case errors.Is(err, serve.ErrShuttingDown):
		return ClassNodeDown
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrBreakerOpen):
		return ClassOverload
	default:
		return ClassRequest
	}
}

// Gateway-level sentinels.
var (
	// ErrNoNodes: the ring is empty (or every member is ejected and the
	// last-resort attempt failed too).
	ErrNoNodes = errors.New("gateway: no nodes available")
	// ErrUnsupportedChange: Propagate was asked to apply a registry change
	// to a node that implements neither ChangeStager nor ChangeApplier.
	ErrUnsupportedChange = errors.New("gateway: node cannot apply registry changes")
	// ErrPartialCommit: a two-phase change passed its commit point but some
	// member failed to commit; those members are marked lagging and skipped
	// by routing until they catch up.
	ErrPartialCommit = errors.New("gateway: change committed on a quorum only")
	// ErrRetryBudget: a failover retry was wanted but the fleet-wide retry
	// budget was exhausted; the request carries its shard's last error.
	ErrRetryBudget = errors.New("gateway: retry budget exhausted")
)

// Config sizes the gateway.
type Config struct {
	// VirtualNodes is the number of ring points per full-weight member
	// (smooths the per-member key share). Warming members project a
	// weight-scaled prefix of their points.
	VirtualNodes int
	// LoadFactor is the bounded-load factor c: an owner carrying more than
	// c × (fleet-average in-flight + 1) spills to its successor. 0 disables
	// bounded load; sensible values are 1.1–2.0.
	LoadFactor float64
	// HotThreshold is the windowed per-digest arrival count past which a
	// digest is treated as hot and replicated. 0 disables hot-key handling.
	HotThreshold int
	// HotReplicas is how many ring successors serve a hot digest (≥ 2 when
	// HotThreshold > 0).
	HotReplicas int
	// HotDecay is the number of arrivals between halvings of the hot-digest
	// estimator's counts — the window over which hotness is measured. 0
	// picks freq.DefaultDecay (8192). Shards reuse the same knob for their
	// in-process promotion detector, so gateway and shard agree on what
	// "recent" means.
	HotDecay int
	// MaxRetries is how many failover attempts a request gets on successor
	// shards after an overload- or down-class failure.
	MaxRetries int
	// FailThreshold is how many consecutive down-class failures eject a
	// member. 0 disables ejection.
	FailThreshold int
	// EjectFor is how long an ejected member is skipped by routing before
	// passively rejoining (a successful probe rejoins it earlier).
	EjectFor time.Duration
	// ProbeInterval is the active health-probe period. 0 disables the
	// prober (health is then purely passive).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (defaults to ProbeInterval when zero).
	ProbeTimeout time.Duration
	// BarrierPoll is the poll period of the epoch barrier used when a
	// member supports only single-phase change application.
	BarrierPoll time.Duration

	// LeaseTTL enables lease-based membership: Announce grants a lease this
	// long, renewals extend it, and a member that misses renewals for the
	// whole TTL expires off the ring. 0 disables Announce (static AddNode
	// membership only).
	LeaseTTL time.Duration
	// SuspectAfter is how long without renewal before a member is marked
	// suspect (still routable — the grace half of the lease). 0 defaults to
	// LeaseTTL/2.
	SuspectAfter time.Duration
	// RampWindows is the slow-start span: a newly converged member's
	// routing weight climbs 1/N, 2/N, … 1 over its first N renewals. 0
	// defaults to 4; 1 disables the ramp.
	RampWindows int
	// SweepInterval is how often the lease sweeper advances suspect/expiry
	// timers. 0 defaults to LeaseTTL/4 (min 10ms).
	SweepInterval time.Duration

	// AttemptTimeout is the per-attempt deadline: each node attempt runs
	// under min(request deadline, AttemptTimeout), so a blackholed shard
	// costs a request one bounded slice before failover, not its whole
	// deadline. 0 disables (attempts inherit the request ctx alone).
	AttemptTimeout time.Duration
	// RetryBackoff is the base of the full-jitter exponential backoff
	// between failover attempts: attempt k waits uniform
	// [0, min(RetryBackoff × 2^k, RetryBackoffMax)). 0 retries immediately.
	RetryBackoff time.Duration
	// RetryBackoffMax caps both the backoff ceiling and any honored
	// Retry-After hint. 0 defaults to 32 × RetryBackoff.
	RetryBackoffMax time.Duration
	// RetryBudgetRate refills the fleet-wide failover token bucket, in
	// tokens per second; every failover attempt spends one token, and a dry
	// bucket fails the request with its last shard error instead of
	// retrying. 0 disables the budget (unlimited retries).
	RetryBudgetRate float64
	// RetryBudgetBurst is the bucket depth (defaults to 1 when a rate is
	// set without one).
	RetryBudgetBurst int

	// Clock is the membership clock (defaults to time.Now). Injectable so
	// lease-timing tests need not sleep.
	Clock func() time.Time
}

// DefaultConfig returns a gateway sized for a handful of shards: 128 vnodes,
// bounded load at 1.25, hot keys past 64 windowed arrivals spread over 2
// replicas, one failover retry, ejection after 3 consecutive failures for
// 2s, probes every second. Membership leases run at 3s with a 4-window
// slow-start ramp, and failover is paced: 2s per-attempt deadline, 25ms
// full-jitter backoff capped at 1s, and a 10 token/s (burst 20) fleet-wide
// retry budget.
func DefaultConfig() Config {
	return Config{
		VirtualNodes:  128,
		LoadFactor:    1.25,
		HotThreshold:  64,
		HotReplicas:   2,
		HotDecay:      freq.DefaultDecay,
		MaxRetries:    1,
		FailThreshold: 3,
		EjectFor:      2 * time.Second,
		ProbeInterval: time.Second,
		ProbeTimeout:  500 * time.Millisecond,
		BarrierPoll:   2 * time.Millisecond,

		LeaseTTL:     3 * time.Second,
		SuspectAfter: 1 * time.Second,
		RampWindows:  4,

		AttemptTimeout:   2 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
		RetryBackoffMax:  time.Second,
		RetryBudgetRate:  10,
		RetryBudgetBurst: 20,
	}
}

// Validate rejects configurations that cannot route.
func (c Config) Validate() error {
	switch {
	case c.VirtualNodes <= 0:
		return fmt.Errorf("gateway: VirtualNodes must be positive, got %d", c.VirtualNodes)
	case c.LoadFactor != 0 && c.LoadFactor <= 1:
		return fmt.Errorf("gateway: LoadFactor must be > 1 (or 0 to disable), got %g", c.LoadFactor)
	case c.HotThreshold < 0:
		return fmt.Errorf("gateway: negative HotThreshold %d", c.HotThreshold)
	case c.HotThreshold > 0 && c.HotReplicas < 2:
		return fmt.Errorf("gateway: HotThreshold %d needs HotReplicas >= 2, got %d", c.HotThreshold, c.HotReplicas)
	case c.HotDecay < 0:
		return fmt.Errorf("gateway: negative HotDecay %d", c.HotDecay)
	case c.MaxRetries < 0:
		return fmt.Errorf("gateway: negative MaxRetries %d", c.MaxRetries)
	case c.FailThreshold < 0:
		return fmt.Errorf("gateway: negative FailThreshold %d", c.FailThreshold)
	case c.FailThreshold > 0 && c.EjectFor <= 0:
		return fmt.Errorf("gateway: FailThreshold %d needs a positive EjectFor, got %v", c.FailThreshold, c.EjectFor)
	case c.ProbeInterval < 0:
		return fmt.Errorf("gateway: negative ProbeInterval %v", c.ProbeInterval)
	case c.BarrierPoll < 0:
		return fmt.Errorf("gateway: negative BarrierPoll %v", c.BarrierPoll)
	case c.LeaseTTL < 0:
		return fmt.Errorf("gateway: negative LeaseTTL %v", c.LeaseTTL)
	case c.SuspectAfter < 0 || c.SuspectAfter > c.LeaseTTL:
		return fmt.Errorf("gateway: SuspectAfter %v must be in [0, LeaseTTL=%v]", c.SuspectAfter, c.LeaseTTL)
	case c.RampWindows < 0:
		return fmt.Errorf("gateway: negative RampWindows %d", c.RampWindows)
	case c.SweepInterval < 0:
		return fmt.Errorf("gateway: negative SweepInterval %v", c.SweepInterval)
	case c.AttemptTimeout < 0:
		return fmt.Errorf("gateway: negative AttemptTimeout %v", c.AttemptTimeout)
	case c.RetryBackoff < 0 || c.RetryBackoffMax < 0:
		return fmt.Errorf("gateway: negative retry backoff (%v, max %v)", c.RetryBackoff, c.RetryBackoffMax)
	case c.RetryBudgetRate < 0 || c.RetryBudgetBurst < 0:
		return fmt.Errorf("gateway: negative retry budget (rate %g, burst %d)", c.RetryBudgetRate, c.RetryBudgetBurst)
	}
	return nil
}

// Gateway routes requests across the fleet. Create with New; all methods
// are safe for concurrent use.
type Gateway struct {
	cfg    Config
	m      *metrics
	hot    *freq.Tracker // nil when hot-key handling is off
	budget *tokenBucket  // nil when the retry budget is off
	tbl    *member.Table

	// mu serializes membership mutations (announce/renew/leave/expiry);
	// the resulting ring is copy-on-write, so reads are lock-free.
	mu     sync.Mutex
	roster map[string]*shard // every announced node, routable or not
	ring   atomic.Pointer[ringState]

	// committedEpoch is the highest epoch Propagate has driven the whole
	// cluster to; members observed below it are lagging.
	committedEpoch atomic.Uint64

	// p2cSeq derandomizes power-of-two-choices pair selection: it is cheap,
	// race-free, and cycles through replica pairs so ties in in-flight load
	// still spread across the set.
	p2cSeq atomic.Uint64

	// tenants attributes routing per tenant; inflightAll is the fleet-wide
	// in-flight total the dominance guard compares each tenant against.
	tenants     tenantTable
	inflightAll atomic.Int64

	stop chan struct{}
	done sync.WaitGroup
}

// New validates the configuration and starts the health prober (when
// ProbeInterval > 0) and the lease sweeper (when LeaseTTL > 0). Nodes join
// via AddNode (static seeds) or Announce (leased members).
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.BarrierPoll == 0 {
		cfg.BarrierPoll = 2 * time.Millisecond
	}
	if cfg.RetryBackoff > 0 && cfg.RetryBackoffMax == 0 {
		cfg.RetryBackoffMax = 32 * cfg.RetryBackoff
	}
	g := &Gateway{
		cfg:    cfg,
		m:      &metrics{},
		hot:    freq.New(cfg.HotThreshold, freq.DefaultSlots, cfg.HotDecay),
		budget: newTokenBucket(cfg.RetryBudgetRate, cfg.RetryBudgetBurst),
		tbl: member.NewTable(member.Config{
			LeaseTTL:     cfg.LeaseTTL,
			SuspectAfter: cfg.SuspectAfter,
			RampWindows:  cfg.RampWindows,
			Now:          cfg.Clock,
		}),
		roster: map[string]*shard{},
		stop:   make(chan struct{}),
	}
	g.ring.Store(buildRing(nil, cfg.VirtualNodes))
	if cfg.ProbeInterval > 0 {
		g.done.Add(1)
		go g.proberLoop()
	}
	if cfg.LeaseTTL > 0 {
		g.done.Add(1)
		go g.sweeperLoop()
	}
	return g, nil
}

// Close stops the prober and lease sweeper. It does not touch the nodes.
func (g *Gateway) Close() {
	g.mu.Lock()
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.mu.Unlock()
	g.done.Wait()
}

// vnodesFor scales the full vnode count by a membership weight, keeping at
// least one point so a warming member is reachable at all.
func vnodesFor(weight float64, vnodes int) int {
	n := int(weight*float64(vnodes) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > vnodes {
		n = vnodes
	}
	return n
}

// rebuildLocked republishes the ring from the membership table: every
// routable member at its weight-scaled vnode count. Callers hold g.mu.
func (g *Gateway) rebuildLocked() {
	entries := g.tbl.Snapshot()
	shards := make([]*shard, 0, len(entries))
	for _, e := range entries {
		if e.Weight <= 0 {
			continue
		}
		s := g.roster[e.ID]
		if s == nil {
			continue
		}
		s.vnodes = vnodesFor(e.Weight, g.cfg.VirtualNodes)
		shards = append(shards, s)
	}
	g.ring.Store(buildRing(shards, g.cfg.VirtualNodes))
}

// AddNode joins a static member to the ring at full weight: no lease, no
// warm-up, never expires — the seed-list path, for fleets (or tests) that
// are configured by hand. Its share of the key space (~K/N keys) moves to
// it from the former owners; everything else keeps its owner.
func (g *Gateway) AddNode(n Node) error {
	if n == nil || n.ID() == "" {
		return errors.New("gateway: node must have a non-empty ID")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.roster[n.ID()]; dup {
		return fmt.Errorf("gateway: duplicate node id %q", n.ID())
	}
	if _, _, _, err := g.tbl.Announce(n.ID(), member.Meta{Addr: n.ID(), Static: true}, g.committedEpoch.Load()); err != nil {
		return err
	}
	g.roster[n.ID()] = &shard{node: n, id: n.ID()}
	g.rebuildLocked()
	return nil
}

// Announce registers a leased member (or renews a live one — re-announce is
// a heartbeat). The member becomes routable only once its epoch has
// converged to the cluster's committed registry epoch, and then ramps up
// under slow-start. A re-announce of an expired or left member is a rejoin:
// it restarts the converge→warm cycle with fresh health accounting.
func (g *Gateway) Announce(n Node, meta member.Meta) (member.Entry, error) {
	if n == nil || n.ID() == "" {
		return member.Entry{}, errors.New("gateway: node must have a non-empty ID")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	committed := g.committedEpoch.Load()
	e, changed, rejoin, err := g.tbl.Announce(n.ID(), meta, committed)
	if err != nil {
		return member.Entry{}, err
	}
	s := g.roster[n.ID()]
	if s == nil || rejoin {
		// First sight or a new incarnation: fresh health accounting.
		s = &shard{node: n, id: n.ID()}
		g.roster[n.ID()] = s
	}
	s.epoch.Store(e.Epoch)
	if e.Epoch >= committed {
		s.lagging.Store(false)
	}
	if changed || rejoin {
		g.rebuildLocked()
	}
	return e, nil
}

// Renew extends a leased member's lease (one heartbeat), advancing epoch
// convergence and the slow-start ramp. Unknown (or expired) members get
// member.ErrUnknown and must re-announce.
func (g *Gateway) Renew(id string, epoch uint64) (member.Entry, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	committed := g.committedEpoch.Load()
	e, changed, err := g.tbl.Renew(id, epoch, committed)
	if err != nil {
		return member.Entry{}, err
	}
	if s := g.roster[id]; s != nil {
		s.epoch.Store(e.Epoch)
		if e.Epoch >= committed {
			s.lagging.Store(false)
		}
	}
	if changed {
		g.rebuildLocked()
	}
	return e, nil
}

// Leave deregisters a member gracefully: it comes off the ring immediately
// (new keys rehash to successors) while requests already in flight on it
// finish undisturbed. Reports whether the id was a live member.
func (g *Gateway) Leave(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, wasRoutable := g.tbl.Leave(id)
	if _, ok := g.roster[id]; ok {
		delete(g.roster, id)
	}
	if wasRoutable {
		g.rebuildLocked()
	}
	return wasRoutable
}

// RemoveNode hard-removes a member (static or leased); its keys rehash to
// successors. Reports whether the id was known.
func (g *Gateway) RemoveNode(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	known := g.tbl.Remove(id)
	if _, ok := g.roster[id]; ok {
		delete(g.roster, id)
		known = true
	}
	if known {
		g.rebuildLocked()
	}
	return known
}

// SweepMembership advances lease timers once: members past SuspectAfter
// turn suspect, members past LeaseTTL expire off the ring. The background
// sweeper calls this every SweepInterval; tests with an injected Clock call
// it directly.
func (g *Gateway) SweepMembership() {
	g.mu.Lock()
	defer g.mu.Unlock()
	expired := g.tbl.Sweep()
	if len(expired) == 0 {
		return
	}
	for _, e := range expired {
		delete(g.roster, e.ID)
	}
	g.rebuildLocked()
}

func (g *Gateway) sweeperLoop() {
	defer g.done.Done()
	interval := g.cfg.SweepInterval
	if interval <= 0 {
		interval = g.cfg.LeaseTTL / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.SweepMembership()
		}
	}
}

// Membership returns the current membership table entries (all states,
// including expired and left ones), sorted by id.
func (g *Gateway) Membership() []member.Entry { return g.tbl.Snapshot() }

// Nodes returns the currently routable member ids in ring-iteration
// (sorted) order.
func (g *Gateway) Nodes() []string {
	rs := g.ring.Load()
	ids := make([]string, len(rs.shards))
	for i, s := range rs.shards {
		ids[i] = s.id
	}
	return ids
}

// Key is one request's routing identity: the content digest when the body
// is digestable, otherwise the task name (so undigestable traffic for one
// task still lands on one shard's batch lanes).
type Key struct {
	Digest    uint64
	HasDigest bool
	Task      string
	// Tenant is the request's accounting identity. It deliberately does NOT
	// feed the placement hash: two tenants submitting the same frame must
	// land on the same shard's cache. It drives per-tenant attribution and
	// the monopolization guard (see tenant.go). Empty means the default
	// tenant.
	Tenant string
}

// KeyFor derives the routing key the same way the serve layer derives its
// result-cache digest, so a frame's gateway shard is exactly the shard
// whose cache can hold its result.
func KeyFor(req serve.Request) Key {
	if req.Image != nil {
		return Key{Digest: rcache.DigestImage(req.Image), HasDigest: true, Task: req.Task, Tenant: req.Tenant}
	}
	return Key{Task: req.Task, Tenant: req.Tenant}
}

func (k Key) hash() uint64 {
	if k.HasDigest {
		return mix64(k.Digest)
	}
	return mix64(fnvString(k.Task))
}

// ExecInfo reports how a request was routed.
type ExecInfo struct {
	// Node is the id of the member that produced the final outcome.
	Node string
	// Attempts is the total node attempts (1 = no failover).
	Attempts int
	// Hot marks a request routed through hot-key replication.
	Hot bool
	// Spilled marks a request diverted past its owner by bounded load.
	Spilled bool
}

// Execute routes key k to a node and runs do against it, handling hot-key
// replication, bounded-load spill, failure classification, ejection
// bookkeeping, and paced failover retries (per-attempt deadlines, jittered
// backoff with Retry-After honor, and the fleet-wide retry budget). It is
// the transport-agnostic core under Detect and under cmd/itask-gateway's
// body forwarding. The callback receives the gateway's hot verdict for the
// key so adapters can forward it downstream (X-Itask-Hot on proxied
// requests, serve.Request.Hot in-process): a shard told its content is
// fleet-hot pre-promotes the digest into its replica tier instead of
// waiting for its own detector — which only ever sees 1/HotReplicas of the
// replicated traffic — to trip.
func (g *Gateway) Execute(ctx context.Context, k Key, do func(ctx context.Context, n Node, hot bool) error) (ExecInfo, error) {
	rs := g.ring.Load()
	info := ExecInfo{}
	if len(rs.shards) == 0 {
		return info, ErrNoNodes
	}
	h := k.hash()
	if g.hot != nil && k.HasDigest {
		info.Hot, _ = g.hot.Record(k.Digest)
	}

	// Per-tenant accounting brackets the whole routed request, and the
	// monopolization guard reads it at entry: a tenant already holding more
	// than half the fleet's in-flight work — while anyone else is in flight
	// at all — is dominant, and its request pins to its ring owner instead
	// of recruiting hot replicas or spill slots (see tenant.go). Single-
	// tenant traffic (tenIn == totalIn) is never dominant, so untenanted
	// fleets keep full hot-key and bounded-load behavior.
	ts := g.tenants.get(k.Tenant)
	totalIn := g.inflightAll.Add(1)
	tenIn := ts.inflight.Add(1)
	defer func() {
		ts.inflight.Add(-1)
		g.inflightAll.Add(-1)
	}()
	dominant := totalIn >= dominanceMinInFlight && tenIn < totalIn && tenIn*2 > totalIn
	if dominant {
		ts.dominated.Add(1)
	}

	// Preference order: the owner and its successors, healthy members
	// first. If every member is ejected the full order is used anyway —
	// a possibly-dead node beats certain failure.
	prefs := rs.successors(h, len(rs.shards))
	now := time.Now().UnixNano()
	avail := make([]*shard, 0, len(prefs))
	for _, s := range prefs {
		if s.available(now) {
			avail = append(avail, s)
		}
	}
	lastResort := len(avail) == 0
	if lastResort {
		avail = prefs
	}

	s := g.choose(avail, &info, dominant)
	tried := make([]*shard, 0, 1+g.cfg.MaxRetries)
	var lastErr error
	for attempt := 0; attempt <= g.cfg.MaxRetries && s != nil; attempt++ {
		if err := ctx.Err(); err != nil {
			return info, err
		}
		info.Attempts = attempt + 1
		info.Node = s.id
		tried = append(tried, s)

		s.inflight.Add(1)
		err := g.attempt(ctx, s, do, info.Hot)
		s.inflight.Add(-1)

		switch Classify(err) {
		case ClassOK:
			s.consecFails.Store(0)
			s.served.Add(1)
			g.m.inc(h, cRouted)
			ts.routed.Add(1)
			if info.Hot {
				g.m.inc(h, cHotRouted)
				ts.hotRouted.Add(1)
			}
			if info.Spilled {
				ts.spilled.Add(1)
			}
			if !k.HasDigest {
				g.m.inc(h, cTaskRouted)
			}
			return info, nil
		case ClassRequest:
			// The node answered; the request itself is at fault. Do not
			// spread poison to a successor.
			s.consecFails.Store(0)
			g.m.inc(h, cRouted)
			ts.routed.Add(1)
			return info, err
		case ClassOverload:
			s.failures.Add(1)
			lastErr = err
		case ClassNodeDown:
			s.failures.Add(1)
			g.noteDown(s)
			lastErr = err
		}
		// Failover: first untried member in preference order — paced by the
		// retry budget and the jittered backoff.
		s = nil
		for _, cand := range avail {
			if !containsShard(tried, cand) {
				s = cand
				break
			}
		}
		if s == nil || attempt >= g.cfg.MaxRetries {
			break
		}
		if !g.budget.take() {
			g.m.inc(h, cBudgetDry)
			lastErr = fmt.Errorf("%w: %w", ErrRetryBudget, lastErr)
			break
		}
		g.m.inc(h, cRetries)
		if d := g.retryDelay(attempt, lastErr); d > 0 {
			if !sleepRetry(ctx, d) {
				return info, ctx.Err()
			}
		}
	}
	g.m.inc(h, cFailed)
	ts.failed.Add(1)
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return info, lastErr
}

// attempt runs one node attempt under the per-attempt deadline. An attempt
// that dies on its own deadline — while the request as a whole still has
// time — is the shard's failure, not the request's: it reclassifies as
// ClassNodeDown so it fails over and counts toward ejection, which is what
// turns a blackholed (accepting but never answering) shard from a
// request-killer into a bounded detour.
func (g *Gateway) attempt(ctx context.Context, s *shard, do func(ctx context.Context, n Node, hot bool) error, hot bool) error {
	if g.cfg.AttemptTimeout <= 0 {
		return do(ctx, s.node, hot)
	}
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	err := do(actx, s.node, hot)
	if err != nil && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		return &NodeError{
			Class: ClassNodeDown,
			Err:   fmt.Errorf("gateway: attempt on %s timed out after %v: %w", s.id, g.cfg.AttemptTimeout, err),
		}
	}
	return err
}

// choose picks the first node to try: power-of-two-choices across the hot
// replica set for hot keys, bounded-load owner-or-spill otherwise. A pinned
// (dominant-tenant) request skips both elastic paths and takes its ring
// owner straight: the spread capacity is reserved for the tenants that are
// not already holding most of the fleet.
func (g *Gateway) choose(avail []*shard, info *ExecInfo, pinned bool) *shard {
	if len(avail) == 0 {
		return nil
	}
	if pinned {
		return avail[0]
	}
	if info.Hot && len(avail) >= 2 {
		set := avail
		if len(set) > g.cfg.HotReplicas {
			set = set[:g.cfg.HotReplicas]
		}
		// Rotate through adjacent pairs of the replica set: with R replicas
		// the pairs (0,1), (1,2), … (R-1,0) all occur, so every replica is
		// a candidate on a constant fraction of arrivals.
		seq := g.p2cSeq.Add(1)
		r := uint64(len(set))
		a := set[seq%r]
		b := set[(seq+1)%r]
		// Lower in-flight wins; ties go to a, whose rotating position makes
		// an idle replica set round-robin instead of herding on one member.
		if b.inflight.Load() < a.inflight.Load() {
			return b
		}
		return a
	}
	owner := avail[0]
	if g.cfg.LoadFactor > 0 && len(avail) > 1 {
		var total int64
		for _, s := range avail {
			total += s.inflight.Load()
		}
		// Bounded load: cap = ⌊c × (total/n + 1)⌋ — the fleet-average
		// in-flight plus the arriving request itself, scaled by the load
		// factor, so a cold fleet has cap ≥ 1.
		n := int64(len(avail))
		cap64 := int64(g.cfg.LoadFactor * float64(total+n) / float64(n))
		if owner.inflight.Load() >= cap64 {
			least := owner
			for _, s := range avail[1:] {
				if s.inflight.Load() < cap64 {
					info.Spilled = true
					g.m.inc(uint64(total), cSpills)
					return s
				}
				if s.inflight.Load() < least.inflight.Load() {
					least = s
				}
			}
			if least != owner {
				info.Spilled = true
				g.m.inc(uint64(total), cSpills)
				return least
			}
		}
	}
	return owner
}

// Result is a gateway-served detection outcome: the shard's serve result
// plus routing attribution.
type Result struct {
	serve.Result
	// Node is the shard that served the request.
	Node string
	// Attempts is 1 plus the number of failover retries taken.
	Attempts int
	// Hot marks the request as routed through hot-key replication.
	Hot bool
}

// Detect routes one request to its shard and executes it. Every node must
// implement DetectNode. The gateway's hot verdict rides the request as
// Request.Hot so the shard can pre-promote the digest in its replica tier.
func (g *Gateway) Detect(ctx context.Context, req serve.Request) (Result, error) {
	var res serve.Result
	info, err := g.Execute(ctx, KeyFor(req), func(ctx context.Context, n Node, hot bool) error {
		dn, ok := n.(DetectNode)
		if !ok {
			return &NodeError{Class: ClassRequest, Err: fmt.Errorf("gateway: node %s cannot serve Detect", n.ID())}
		}
		req := req
		req.Hot = hot
		r, derr := dn.Detect(ctx, req)
		if derr == nil {
			res = r
		}
		return derr
	})
	return Result{Result: res, Node: info.Node, Attempts: info.Attempts, Hot: info.Hot}, err
}

// CommittedEpoch is the highest registry epoch the whole cluster has been
// driven to by Propagate.
func (g *Gateway) CommittedEpoch() uint64 { return g.committedEpoch.Load() }

// Snapshot returns the gateway's metrics and per-member status, including
// announced members that are not (or no longer) routable.
func (g *Gateway) Snapshot() Snapshot {
	entries := g.tbl.Snapshot()
	g.mu.Lock()
	rosterCopy := make(map[string]*shard, len(g.roster))
	for id, s := range g.roster {
		rosterCopy[id] = s
	}
	g.mu.Unlock()
	ms := g.tbl.Stats()
	now := time.Now().UnixNano()
	snap := Snapshot{
		Routed:               g.m.total(cRouted),
		Failed:               g.m.total(cFailed),
		HotRouted:            g.m.total(cHotRouted),
		TaskRouted:           g.m.total(cTaskRouted),
		Spills:               g.m.total(cSpills),
		Retries:              g.m.total(cRetries),
		RetryBudgetExhausted: g.m.total(cBudgetDry),
		Ejections:            g.m.total(cEjections),
		EpochDrift:           g.m.total(cEpochDrift),
		Propagates:           g.m.total(cPropagates),
		CommittedEpoch:       g.committedEpoch.Load(),
		LeasesGranted:        ms.LeasesGranted,
		LeaseRenewals:        ms.Renewals,
		LeaseExpirations:     ms.LeaseExpirations,
		Rejoins:              ms.Rejoins,
		GracefulLeaves:       ms.GracefulLeaves,
		Nodes:                make([]NodeStatus, 0, len(entries)),
		PerTenant:            g.tenants.snapshot(),
	}
	for _, e := range entries {
		ns := NodeStatus{
			ID:     e.ID,
			State:  e.State.String(),
			Weight: e.Weight,
			Epoch:  e.Epoch,
		}
		if s := rosterCopy[e.ID]; s != nil {
			eu := s.ejectedUntil.Load()
			ns.InFlight = s.inflight.Load()
			ns.Served = s.served.Load()
			ns.Failures = s.failures.Load()
			ns.Ejected = eu != 0 && eu > now
			ns.Lagging = s.lagging.Load()
			if se := s.epoch.Load(); se > ns.Epoch {
				ns.Epoch = se
			}
		}
		snap.Nodes = append(snap.Nodes, ns)
	}
	return snap
}
