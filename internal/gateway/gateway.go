// Package gateway is iTask's distributed serve tier: a front door that
// consistent-hashes detection requests by content digest across a fleet of
// itask-serve backends, so each frame's result-cache entry lives on exactly
// one shard and the fleet's aggregate cache behaves like one large cache
// instead of N overlapping small ones.
//
// The design is four cooperating layers:
//
//   - Placement (ring.go): a consistent-hash ring with virtual nodes.
//     Requests route by the rcache content digest of their image (requests
//     without a digestable image fall back to a task key, keeping a task's
//     traffic on one shard's batch lanes). Node join/leave remaps only
//     ~K/N keys. With LoadFactor > 0 the ring is bounded-load: an owner
//     already carrying more than LoadFactor times the fleet-average
//     in-flight work spills the request to its successor instead of
//     queueing behind the herd.
//   - Hot keys (internal/freq MJRTY estimator): per-digest arrival counting
//     detects zipf-hot content; a hot digest is served by its HotReplicas
//     ring successors with power-of-two-choices balancing between them, so
//     one viral frame engages several shards' capacity instead of
//     saturating its owner (each replica answers from its own result cache
//     after one miss). The verdict also rides the proxied request
//     (Request.Hot / X-Itask-Hot) so shards pre-promote fleet-hot digests
//     into their in-process replica tier (see internal/rcache).
//   - Health (health.go): active probes plus passive failure accounting
//     eject an unreachable member; its keys rehash to successors and a
//     request caught mid-death retries once on the successor, so a node
//     death costs healthy traffic nothing. Ejected members keep being
//     probed and rejoin when they recover.
//   - Epochs (epoch.go): registry changes (publish / demote / rollback)
//     propagate through the gateway with a two-phase stage/commit barrier:
//     no shard activates a new version until every shard has staged it, so
//     clients never observe version flapping across shards. Members whose
//     route epoch falls behind the cluster's committed epoch are marked
//     lagging and skipped by routing until they catch up.
//
// The package is transport-agnostic: a Node is any handle with an ID, and
// the request path works through Execute's callback, so in-process fleets
// (ServeNode over serve.Server) and HTTP fleets (cmd/itask-gateway) share
// all routing, health, and epoch machinery.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/freq"
	"itask/internal/rcache"
	"itask/internal/serve"
)

// Node is one backend shard as the gateway sees it. ID must be stable and
// unique across the fleet — it determines the member's ring placement, so
// every gateway instance with the same member set routes identically.
type Node interface {
	ID() string
}

// DetectNode is implemented by nodes that execute detection requests
// directly (in-process fleets). Gateway.Detect requires it; HTTP fleets
// that forward opaque bodies use Execute instead.
type DetectNode interface {
	Node
	Detect(ctx context.Context, req serve.Request) (serve.Result, error)
}

// ProbeNode is optionally implemented by nodes that support an active
// liveness probe. A probe error counts toward ejection exactly like a
// request failure; a probe success clears failure accounting and lifts an
// ejection early.
type ProbeNode interface {
	Probe(ctx context.Context) error
}

// EpochNode is optionally implemented by nodes that expose their routing
// epoch (for the pipeline backend, the registry snapshot sequence). The
// prober compares it against the cluster's committed epoch to detect
// shards serving stale routing, and Propagate's barrier polls it.
type EpochNode interface {
	RouteEpoch(ctx context.Context) (uint64, error)
}

// ErrClass buckets node errors by what the gateway should do about them.
type ErrClass int

const (
	// ClassOK: no error.
	ClassOK ErrClass = iota
	// ClassRequest: the request's own fault (bad shape, poison content,
	// missed deadline). The node is healthy; retrying the same content on a
	// successor would just spread the failure. Returned to the caller.
	ClassRequest
	// ClassOverload: the node is saturated (queue full, breaker open). The
	// request spills to a successor once, but the node is not penalized —
	// load is not death.
	ClassOverload
	// ClassNodeDown: the node is unreachable or draining. The request
	// retries on a successor and the failure counts toward ejection.
	ClassNodeDown
)

// NodeError lets adapters that understand their transport (HTTP status
// codes, connection errors) pass an explicit class through Execute's
// callback. Errors not wrapped in NodeError are classified from the serve
// sentinels by Classify.
type NodeError struct {
	Class ErrClass
	Err   error
}

func (e *NodeError) Error() string { return e.Err.Error() }
func (e *NodeError) Unwrap() error { return e.Err }

// Classify buckets an error from a node. Adapters override via NodeError;
// serve sentinels map per the taxonomy above; unknown errors are treated as
// the request's own (fail fast, never penalize a node for content).
func Classify(err error) ErrClass {
	if err == nil {
		return ClassOK
	}
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.Class
	}
	switch {
	case errors.Is(err, serve.ErrShuttingDown):
		return ClassNodeDown
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrBreakerOpen):
		return ClassOverload
	default:
		return ClassRequest
	}
}

// Gateway-level sentinels.
var (
	// ErrNoNodes: the ring is empty (or every member is ejected and the
	// last-resort attempt failed too).
	ErrNoNodes = errors.New("gateway: no nodes available")
	// ErrUnsupportedChange: Propagate was asked to apply a registry change
	// to a node that implements neither ChangeStager nor ChangeApplier.
	ErrUnsupportedChange = errors.New("gateway: node cannot apply registry changes")
	// ErrPartialCommit: a two-phase change passed its commit point but some
	// member failed to commit; those members are marked lagging and skipped
	// by routing until they catch up.
	ErrPartialCommit = errors.New("gateway: change committed on a quorum only")
)

// Config sizes the gateway.
type Config struct {
	// VirtualNodes is the number of ring points per member (smooths the
	// per-member key share).
	VirtualNodes int
	// LoadFactor is the bounded-load factor c: an owner carrying more than
	// c × (fleet-average in-flight + 1) spills to its successor. 0 disables
	// bounded load; sensible values are 1.1–2.0.
	LoadFactor float64
	// HotThreshold is the windowed per-digest arrival count past which a
	// digest is treated as hot and replicated. 0 disables hot-key handling.
	HotThreshold int
	// HotReplicas is how many ring successors serve a hot digest (≥ 2 when
	// HotThreshold > 0).
	HotReplicas int
	// HotDecay is the number of arrivals between halvings of the hot-digest
	// estimator's counts — the window over which hotness is measured. 0
	// picks freq.DefaultDecay (8192). Shards reuse the same knob for their
	// in-process promotion detector, so gateway and shard agree on what
	// "recent" means.
	HotDecay int
	// MaxRetries is how many failover attempts a request gets on successor
	// shards after an overload- or down-class failure.
	MaxRetries int
	// FailThreshold is how many consecutive down-class failures eject a
	// member. 0 disables ejection.
	FailThreshold int
	// EjectFor is how long an ejected member is skipped by routing before
	// passively rejoining (a successful probe rejoins it earlier).
	EjectFor time.Duration
	// ProbeInterval is the active health-probe period. 0 disables the
	// prober (health is then purely passive).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (defaults to ProbeInterval when zero).
	ProbeTimeout time.Duration
	// BarrierPoll is the poll period of the epoch barrier used when a
	// member supports only single-phase change application.
	BarrierPoll time.Duration
}

// DefaultConfig returns a gateway sized for a handful of shards: 128 vnodes,
// bounded load at 1.25, hot keys past 64 windowed arrivals spread over 2
// replicas, one failover retry, ejection after 3 consecutive failures for
// 2s, probes every second.
func DefaultConfig() Config {
	return Config{
		VirtualNodes:  128,
		LoadFactor:    1.25,
		HotThreshold:  64,
		HotReplicas:   2,
		HotDecay:      freq.DefaultDecay,
		MaxRetries:    1,
		FailThreshold: 3,
		EjectFor:      2 * time.Second,
		ProbeInterval: time.Second,
		ProbeTimeout:  500 * time.Millisecond,
		BarrierPoll:   2 * time.Millisecond,
	}
}

// Validate rejects configurations that cannot route.
func (c Config) Validate() error {
	switch {
	case c.VirtualNodes <= 0:
		return fmt.Errorf("gateway: VirtualNodes must be positive, got %d", c.VirtualNodes)
	case c.LoadFactor != 0 && c.LoadFactor <= 1:
		return fmt.Errorf("gateway: LoadFactor must be > 1 (or 0 to disable), got %g", c.LoadFactor)
	case c.HotThreshold < 0:
		return fmt.Errorf("gateway: negative HotThreshold %d", c.HotThreshold)
	case c.HotThreshold > 0 && c.HotReplicas < 2:
		return fmt.Errorf("gateway: HotThreshold %d needs HotReplicas >= 2, got %d", c.HotThreshold, c.HotReplicas)
	case c.HotDecay < 0:
		return fmt.Errorf("gateway: negative HotDecay %d", c.HotDecay)
	case c.MaxRetries < 0:
		return fmt.Errorf("gateway: negative MaxRetries %d", c.MaxRetries)
	case c.FailThreshold < 0:
		return fmt.Errorf("gateway: negative FailThreshold %d", c.FailThreshold)
	case c.FailThreshold > 0 && c.EjectFor <= 0:
		return fmt.Errorf("gateway: FailThreshold %d needs a positive EjectFor, got %v", c.FailThreshold, c.EjectFor)
	case c.ProbeInterval < 0:
		return fmt.Errorf("gateway: negative ProbeInterval %v", c.ProbeInterval)
	case c.BarrierPoll < 0:
		return fmt.Errorf("gateway: negative BarrierPoll %v", c.BarrierPoll)
	}
	return nil
}

// Gateway routes requests across the fleet. Create with New; all methods
// are safe for concurrent use.
type Gateway struct {
	cfg Config
	m   *metrics
	hot *freq.Tracker // nil when hot-key handling is off

	// ring is copy-on-write: mu serializes mutations, reads are lock-free.
	mu   sync.Mutex
	ring atomic.Pointer[ringState]

	// committedEpoch is the highest epoch Propagate has driven the whole
	// cluster to; members observed below it are lagging.
	committedEpoch atomic.Uint64

	// p2cSeq derandomizes power-of-two-choices pair selection: it is cheap,
	// race-free, and cycles through replica pairs so ties in in-flight load
	// still spread across the set.
	p2cSeq atomic.Uint64

	stop chan struct{}
	done sync.WaitGroup
}

// New validates the configuration and starts the health prober (when
// ProbeInterval > 0). Nodes join via AddNode.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.BarrierPoll == 0 {
		cfg.BarrierPoll = 2 * time.Millisecond
	}
	g := &Gateway{
		cfg:  cfg,
		m:    &metrics{},
		hot:  freq.New(cfg.HotThreshold, freq.DefaultSlots, cfg.HotDecay),
		stop: make(chan struct{}),
	}
	g.ring.Store(buildRing(nil, cfg.VirtualNodes))
	if cfg.ProbeInterval > 0 {
		g.done.Add(1)
		go g.proberLoop()
	}
	return g, nil
}

// Close stops the prober. It does not touch the nodes.
func (g *Gateway) Close() {
	g.mu.Lock()
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.mu.Unlock()
	g.done.Wait()
}

// AddNode joins a node to the ring. Its share of the key space (~K/N keys)
// moves to it from the former owners; everything else keeps its owner.
func (g *Gateway) AddNode(n Node) error {
	if n == nil || n.ID() == "" {
		return errors.New("gateway: node must have a non-empty ID")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.ring.Load()
	if _, dup := rs.byID[n.ID()]; dup {
		return fmt.Errorf("gateway: duplicate node id %q", n.ID())
	}
	next := append(append([]*member(nil), rs.members...), &member{node: n, id: n.ID()})
	g.ring.Store(buildRing(next, g.cfg.VirtualNodes))
	return nil
}

// RemoveNode leaves a node from the ring; its keys rehash to successors.
// Reports whether the id was a member.
func (g *Gateway) RemoveNode(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.ring.Load()
	if _, ok := rs.byID[id]; !ok {
		return false
	}
	next := make([]*member, 0, len(rs.members)-1)
	for _, m := range rs.members {
		if m.id != id {
			next = append(next, m)
		}
	}
	g.ring.Store(buildRing(next, g.cfg.VirtualNodes))
	return true
}

// Nodes returns the current member ids in ring-iteration (sorted) order.
func (g *Gateway) Nodes() []string {
	rs := g.ring.Load()
	ids := make([]string, len(rs.members))
	for i, m := range rs.members {
		ids[i] = m.id
	}
	return ids
}

// Key is one request's routing identity: the content digest when the body
// is digestable, otherwise the task name (so undigestable traffic for one
// task still lands on one shard's batch lanes).
type Key struct {
	Digest    uint64
	HasDigest bool
	Task      string
}

// KeyFor derives the routing key the same way the serve layer derives its
// result-cache digest, so a frame's gateway shard is exactly the shard
// whose cache can hold its result.
func KeyFor(req serve.Request) Key {
	if req.Image != nil {
		return Key{Digest: rcache.DigestImage(req.Image), HasDigest: true, Task: req.Task}
	}
	return Key{Task: req.Task}
}

func (k Key) hash() uint64 {
	if k.HasDigest {
		return mix64(k.Digest)
	}
	return mix64(fnvString(k.Task))
}

// ExecInfo reports how a request was routed.
type ExecInfo struct {
	// Node is the id of the member that produced the final outcome.
	Node string
	// Attempts is the total node attempts (1 = no failover).
	Attempts int
	// Hot marks a request routed through hot-key replication.
	Hot bool
	// Spilled marks a request diverted past its owner by bounded load.
	Spilled bool
}

// Execute routes key k to a node and runs do against it, handling hot-key
// replication, bounded-load spill, failure classification, ejection
// bookkeeping, and failover retries. It is the transport-agnostic core
// under Detect and under cmd/itask-gateway's body forwarding. The callback
// receives the gateway's hot verdict for the key so adapters can forward it
// downstream (X-Itask-Hot on proxied requests, serve.Request.Hot
// in-process): a shard told its content is fleet-hot pre-promotes the
// digest into its replica tier instead of waiting for its own detector —
// which only ever sees 1/HotReplicas of the replicated traffic — to trip.
func (g *Gateway) Execute(ctx context.Context, k Key, do func(ctx context.Context, n Node, hot bool) error) (ExecInfo, error) {
	rs := g.ring.Load()
	info := ExecInfo{}
	if len(rs.members) == 0 {
		return info, ErrNoNodes
	}
	h := k.hash()
	if g.hot != nil && k.HasDigest {
		info.Hot, _ = g.hot.Record(k.Digest)
	}

	// Preference order: the owner and its successors, healthy members
	// first. If every member is ejected the full order is used anyway —
	// a possibly-dead node beats certain failure.
	prefs := rs.successors(h, len(rs.members))
	now := time.Now().UnixNano()
	avail := make([]*member, 0, len(prefs))
	for _, m := range prefs {
		if m.available(now) {
			avail = append(avail, m)
		}
	}
	lastResort := len(avail) == 0
	if lastResort {
		avail = prefs
	}

	m := g.choose(avail, &info)
	tried := make([]*member, 0, 1+g.cfg.MaxRetries)
	var lastErr error
	for attempt := 0; attempt <= g.cfg.MaxRetries && m != nil; attempt++ {
		if err := ctx.Err(); err != nil {
			return info, err
		}
		info.Attempts = attempt + 1
		info.Node = m.id
		tried = append(tried, m)

		m.inflight.Add(1)
		err := do(ctx, m.node, info.Hot)
		m.inflight.Add(-1)

		switch Classify(err) {
		case ClassOK:
			m.consecFails.Store(0)
			m.served.Add(1)
			g.m.inc(h, cRouted)
			if info.Hot {
				g.m.inc(h, cHotRouted)
			}
			if !k.HasDigest {
				g.m.inc(h, cTaskRouted)
			}
			return info, nil
		case ClassRequest:
			// The node answered; the request itself is at fault. Do not
			// spread poison to a successor.
			m.consecFails.Store(0)
			g.m.inc(h, cRouted)
			return info, err
		case ClassOverload:
			m.failures.Add(1)
			lastErr = err
		case ClassNodeDown:
			m.failures.Add(1)
			g.noteDown(m)
			lastErr = err
		}
		// Failover: first untried member in preference order.
		m = nil
		for _, cand := range avail {
			if !containsMember(tried, cand) {
				m = cand
				break
			}
		}
		if m != nil && attempt < g.cfg.MaxRetries {
			g.m.inc(h, cRetries)
		}
	}
	g.m.inc(h, cFailed)
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return info, lastErr
}

// choose picks the first node to try: power-of-two-choices across the hot
// replica set for hot keys, bounded-load owner-or-spill otherwise.
func (g *Gateway) choose(avail []*member, info *ExecInfo) *member {
	if len(avail) == 0 {
		return nil
	}
	if info.Hot && len(avail) >= 2 {
		set := avail
		if len(set) > g.cfg.HotReplicas {
			set = set[:g.cfg.HotReplicas]
		}
		// Rotate through adjacent pairs of the replica set: with R replicas
		// the pairs (0,1), (1,2), … (R-1,0) all occur, so every replica is
		// a candidate on a constant fraction of arrivals.
		seq := g.p2cSeq.Add(1)
		r := uint64(len(set))
		a := set[seq%r]
		b := set[(seq+1)%r]
		// Lower in-flight wins; ties go to a, whose rotating position makes
		// an idle replica set round-robin instead of herding on one member.
		if b.inflight.Load() < a.inflight.Load() {
			return b
		}
		return a
	}
	owner := avail[0]
	if g.cfg.LoadFactor > 0 && len(avail) > 1 {
		var total int64
		for _, m := range avail {
			total += m.inflight.Load()
		}
		// Bounded load: cap = ⌊c × (total/n + 1)⌋ — the fleet-average
		// in-flight plus the arriving request itself, scaled by the load
		// factor, so a cold fleet has cap ≥ 1.
		n := int64(len(avail))
		cap64 := int64(g.cfg.LoadFactor * float64(total+n) / float64(n))
		if owner.inflight.Load() >= cap64 {
			least := owner
			for _, m := range avail[1:] {
				if m.inflight.Load() < cap64 {
					info.Spilled = true
					g.m.inc(uint64(total), cSpills)
					return m
				}
				if m.inflight.Load() < least.inflight.Load() {
					least = m
				}
			}
			if least != owner {
				info.Spilled = true
				g.m.inc(uint64(total), cSpills)
				return least
			}
		}
	}
	return owner
}

// Result is a gateway-served detection outcome: the shard's serve result
// plus routing attribution.
type Result struct {
	serve.Result
	// Node is the shard that served the request.
	Node string
	// Attempts is 1 plus the number of failover retries taken.
	Attempts int
	// Hot marks the request as routed through hot-key replication.
	Hot bool
}

// Detect routes one request to its shard and executes it. Every node must
// implement DetectNode. The gateway's hot verdict rides the request as
// Request.Hot so the shard can pre-promote the digest in its replica tier.
func (g *Gateway) Detect(ctx context.Context, req serve.Request) (Result, error) {
	var res serve.Result
	info, err := g.Execute(ctx, KeyFor(req), func(ctx context.Context, n Node, hot bool) error {
		dn, ok := n.(DetectNode)
		if !ok {
			return &NodeError{Class: ClassRequest, Err: fmt.Errorf("gateway: node %s cannot serve Detect", n.ID())}
		}
		req := req
		req.Hot = hot
		r, derr := dn.Detect(ctx, req)
		if derr == nil {
			res = r
		}
		return derr
	})
	return Result{Result: res, Node: info.Node, Attempts: info.Attempts, Hot: info.Hot}, err
}

// CommittedEpoch is the highest registry epoch the whole cluster has been
// driven to by Propagate.
func (g *Gateway) CommittedEpoch() uint64 { return g.committedEpoch.Load() }

// Snapshot returns the gateway's metrics and per-node status.
func (g *Gateway) Snapshot() Snapshot {
	rs := g.ring.Load()
	now := time.Now().UnixNano()
	snap := Snapshot{
		Routed:         g.m.total(cRouted),
		Failed:         g.m.total(cFailed),
		HotRouted:      g.m.total(cHotRouted),
		TaskRouted:     g.m.total(cTaskRouted),
		Spills:         g.m.total(cSpills),
		Retries:        g.m.total(cRetries),
		Ejections:      g.m.total(cEjections),
		EpochDrift:     g.m.total(cEpochDrift),
		Propagates:     g.m.total(cPropagates),
		CommittedEpoch: g.committedEpoch.Load(),
		Nodes:          make([]NodeStatus, 0, len(rs.members)),
	}
	for _, m := range rs.members {
		eu := m.ejectedUntil.Load()
		snap.Nodes = append(snap.Nodes, NodeStatus{
			ID:       m.id,
			InFlight: m.inflight.Load(),
			Served:   m.served.Load(),
			Failures: m.failures.Load(),
			Ejected:  eu != 0 && eu > now,
			Lagging:  m.lagging.Load(),
			Epoch:    m.epoch.Load(),
		})
	}
	return snap
}
