package gateway_test

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/gateway"
	"itask/internal/serve"
)

// capNode models a shard as a capacity: up to cap requests execute
// concurrently, each costing a fixed service time; arrivals beyond cap
// queue on the semaphore. This is the regime where routing policy is
// everything — a shard absorbing more than its share of a zipf workload
// saturates and its queue, not the work, dominates tail latency.
type capNode struct {
	id  string
	sem chan struct{}
}

func newCapNode(id string, capacity int) *capNode {
	return &capNode{id: id, sem: make(chan struct{}, capacity)}
}

func (n *capNode) ID() string { return n.id }

func (n *capNode) Detect(ctx context.Context, _ serve.Request) (serve.Result, error) {
	select {
	case n.sem <- struct{}{}:
	case <-ctx.Done():
		return serve.Result{}, ctx.Err()
	}
	time.Sleep(100 * time.Microsecond)
	<-n.sem
	return serve.Result{Model: n.id, BatchSize: 1}, nil
}

// BenchmarkGatewayFanout drives a zipf(1.1) workload (rank 0 draws ~20% of
// all traffic) at a 4-shard fleet and reports p50/p99 latency alongside
// ns/op. Variants:
//
//	single:  plain consistent hashing — every digest has exactly one owner,
//	         so the hot head lands entirely on one shard.
//	bounded: single + bounded-load (c=1.25) spill past saturated owners.
//	hotrep:  single + hot-key detection replicating hot digests over 3
//	         shards with power-of-two-choices balancing.
//	full:    bounded + hotrep — the shipped default policy.
//
// The expected shape: all variants move ~the same work, but single's p99 is
// dominated by queueing on the hot shard while the others spread the head
// and flatten the tail (recorded in BENCH_gateway.json).
func BenchmarkGatewayFanout(b *testing.B) {
	for _, tc := range []struct {
		name    string
		bounded bool
		hot     bool
	}{
		{name: "zipf11/single"},
		{name: "zipf11/bounded", bounded: true},
		{name: "zipf11/hotrep", hot: true},
		{name: "zipf11/full", bounded: true, hot: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := gateway.Config{VirtualNodes: 64, MaxRetries: 1}
			if tc.bounded {
				cfg.LoadFactor = 1.25
			}
			if tc.hot {
				cfg.HotThreshold = 32
				cfg.HotReplicas = 3
			}
			g, err := gateway.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			for _, id := range []string{"shard-a", "shard-b", "shard-c", "shard-d"} {
				if err := g.AddNode(newCapNode(id, 4)); err != nil {
					b.Fatal(err)
				}
			}
			universe := chaos.ZipfImages(256, 3, 8, 8)

			var (
				mu     sync.Mutex
				lats   []float64
				gid    atomic.Uint64
				failed atomic.Uint64
			)
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				zs := chaos.NewZipfStream(gid.Add(1), 1.1, len(universe))
				ctx := context.Background()
				local := make([]float64, 0, 1024)
				for pb.Next() {
					im := universe[zs.Next()]
					t0 := time.Now()
					if _, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: im}); err != nil {
						failed.Add(1)
						continue
					}
					local = append(local, float64(time.Since(t0).Microseconds()))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			b.StopTimer()
			if n := failed.Load(); n != 0 {
				b.Fatalf("%d requests failed", n)
			}
			if len(lats) == 0 {
				return
			}
			sort.Float64s(lats)
			b.ReportMetric(lats[len(lats)/2], "p50-µs")
			b.ReportMetric(lats[len(lats)*99/100], "p99-µs")
		})
	}
}
