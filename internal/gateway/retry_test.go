package gateway

import (
	"context"
	"errors"
	"testing"
	"time"

	"itask/internal/serve"
)

func TestTokenBucket(t *testing.T) {
	if b := newTokenBucket(0, 5); b != nil {
		t.Fatal("rate 0 must disable the budget (nil bucket)")
	}
	var nilBucket *tokenBucket
	if !nilBucket.take() {
		t.Fatal("nil bucket must be an unlimited budget")
	}

	// A near-zero refill rate makes the test deterministic: only the burst
	// depth matters within the test's lifetime.
	b := newTokenBucket(1e-9, 2)
	if !b.take() || !b.take() {
		t.Fatal("burst-depth takes must succeed")
	}
	if b.take() {
		t.Fatal("take from a dry bucket must fail")
	}

	// Refill restores tokens proportional to elapsed time, capped at burst.
	b.mu.Lock()
	b.rate = 10 // 1 token per 100ms
	b.last = b.last.Add(-time.Hour)
	b.mu.Unlock()
	if !b.take() {
		t.Fatal("take after refill must succeed")
	}
	b.mu.Lock()
	if b.tokens > b.burst {
		t.Fatalf("tokens %g exceed burst %g", b.tokens, b.burst)
	}
	b.mu.Unlock()

	if nb := newTokenBucket(5, 0); nb == nil || nb.burst != 1 {
		t.Fatalf("rate without burst must default to depth 1, got %+v", nb)
	}
}

func TestRetryDelayJitterAndRetryAfter(t *testing.T) {
	g := &Gateway{cfg: Config{RetryBackoff: 10 * time.Millisecond, RetryBackoffMax: 40 * time.Millisecond}}

	// Full jitter: attempt k draws uniform [0, min(base<<k, max)).
	for i := 0; i < 200; i++ {
		if d := g.retryDelay(0, nil); d < 0 || d >= 10*time.Millisecond {
			t.Fatalf("attempt-0 delay %v outside [0, 10ms)", d)
		}
		if d := g.retryDelay(30, nil); d < 0 || d >= 40*time.Millisecond {
			t.Fatalf("deep-attempt delay %v outside [0, max=40ms)", d)
		}
	}

	// Retry-After floors the delay, capped at RetryBackoffMax.
	hinted := &NodeError{Class: ClassOverload, RetryAfter: time.Second, Err: errors.New("429")}
	if d := g.retryDelay(0, hinted); d != 40*time.Millisecond {
		t.Fatalf("capped Retry-After delay = %v, want exactly max (40ms)", d)
	}
	small := &NodeError{Class: ClassOverload, RetryAfter: 25 * time.Millisecond, Err: errors.New("429")}
	if d := g.retryDelay(0, small); d < 25*time.Millisecond || d > 40*time.Millisecond {
		t.Fatalf("hinted delay = %v, want in [25ms, 40ms]", d)
	}

	// An open in-process breaker carries its own horizon.
	bo := &serve.BreakerOpenError{RetryAfter: 30 * time.Millisecond}
	if d := g.retryDelay(0, bo); d < 30*time.Millisecond {
		t.Fatalf("breaker delay = %v, want >= its Retry-After (30ms)", d)
	}

	// All-zero config: no pause at all (PR 6 behavior).
	g0 := &Gateway{}
	if d := g0.retryDelay(3, errors.New("x")); d != 0 {
		t.Fatalf("unconfigured delay = %v, want 0", d)
	}
}

func TestSleepRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if sleepRetry(ctx, time.Minute) {
		t.Fatal("cancelled ctx must abort the pause")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled pause took too long")
	}
	if !sleepRetry(context.Background(), 0) || !sleepRetry(context.Background(), time.Microsecond) {
		t.Fatal("tiny pauses must complete")
	}
}

// A warming shard's vnode point set is a prefix of its full-weight set, so
// every key it owns mid-ramp is a key it will keep at full weight: the ramp
// only ever adds ranges, it never reshuffles them.
func TestRingRampMonotone(t *testing.T) {
	const full = 128
	others := testShards(5)
	warming := &shard{id: "warming", vnodes: full / 4}
	fleet := append(append([]*shard{}, others...), warming)
	rs4 := buildRing(fleet, full)
	warming.vnodes = full
	rs1 := buildRing(fleet, full)

	keys := sampleKeys(20000)
	atQuarter, kept := 0, 0
	for _, k := range keys {
		if rs4.owner(k).id != "warming" {
			continue
		}
		atQuarter++
		if rs1.owner(k).id == "warming" {
			kept++
		}
	}
	if atQuarter == 0 {
		t.Fatal("warming shard owned no keys at quarter weight")
	}
	if kept != atQuarter {
		t.Fatalf("ramp reshuffled: %d of %d quarter-weight keys lost at full weight", atQuarter-kept, atQuarter)
	}
	// And the quarter-weight share is roughly a quarter of the fair share.
	fair := len(keys) / 6
	if atQuarter > fair/2 {
		t.Fatalf("quarter-weight shard owns %d keys, expected well under half its fair share %d", atQuarter, fair)
	}
}
