package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"itask/internal/registry"
	"itask/internal/serve"
)

// servenode.go: the in-process node adapter. A ServeNode wraps one
// serve.Server shard (and, when the shard routes through a versioned model
// registry, that registry) so an in-process fleet — tests, benches, or a
// single binary hosting several shards — gets the full gateway feature set:
// detection, probing, route-epoch observation, and two-phase registry
// changes. Staging holds the validated change in the adapter; committing
// applies it to the registry atomically, which bumps the snapshot sequence
// the serve layer already uses as its route epoch.

// ServeNode adapts an in-process serve.Server (plus optional registry) to
// the gateway's Node interfaces.
type ServeNode struct {
	id  string
	srv *serve.Server
	reg *registry.Registry // nil: detect/probe only

	mu      sync.Mutex
	pending map[string]Change
}

// NewServeNode wraps a serve.Server shard. reg may be nil for shards
// without a versioned registry; such nodes serve detection and probes but
// reject registry changes and expose no route epoch.
func NewServeNode(id string, srv *serve.Server, reg *registry.Registry) (*ServeNode, error) {
	if id == "" {
		return nil, errors.New("gateway: ServeNode needs an id")
	}
	if srv == nil {
		return nil, errors.New("gateway: ServeNode needs a serve.Server")
	}
	return &ServeNode{id: id, srv: srv, reg: reg, pending: map[string]Change{}}, nil
}

// ID implements Node.
func (n *ServeNode) ID() string { return n.id }

// Detect implements DetectNode.
func (n *ServeNode) Detect(ctx context.Context, req serve.Request) (serve.Result, error) {
	return n.srv.Detect(ctx, req)
}

// Probe implements ProbeNode: a draining shard is down (its keys should
// rehash before it finishes draining), anything else is alive.
func (n *ServeNode) Probe(context.Context) error {
	if n.srv.Draining() {
		return serve.ErrShuttingDown
	}
	return nil
}

// Server exposes the wrapped shard (for per-shard metrics).
func (n *ServeNode) Server() *serve.Server { return n.srv }

// RouteEpoch implements EpochNode over the registry snapshot sequence.
func (n *ServeNode) RouteEpoch(context.Context) (uint64, error) {
	if n.reg == nil {
		return 0, fmt.Errorf("gateway: node %s has no registry", n.id)
	}
	return n.reg.Snapshot().Seq(), nil
}

// StageChange implements ChangeStager: validate the change and hold it
// without touching the registry, so routing is unaffected until the whole
// fleet has staged.
func (n *ServeNode) StageChange(_ context.Context, c Change) error {
	if n.reg == nil {
		return fmt.Errorf("%w: %s has no registry", ErrUnsupportedChange, n.id)
	}
	switch c.Op {
	case OpPublish:
		if _, ok := artifactOf(c.Payload); !ok {
			return fmt.Errorf("gateway: publish payload must be a registry.Artifact, got %T", c.Payload)
		}
	case OpDemote:
		if _, err := registry.ParseID(c.Target); err != nil {
			return fmt.Errorf("gateway: demote target: %w", err)
		}
	case OpRollback:
		if c.Target == "" {
			return errors.New("gateway: rollback needs a series name")
		}
	default:
		return fmt.Errorf("gateway: unknown change op %q", c.Op)
	}
	n.mu.Lock()
	n.pending[c.Fingerprint()] = c
	n.mu.Unlock()
	return nil
}

// CommitChange implements ChangeStager: activate a staged change on the
// registry and return the resulting route epoch.
func (n *ServeNode) CommitChange(_ context.Context, c Change) (uint64, error) {
	n.mu.Lock()
	_, ok := n.pending[c.Fingerprint()]
	delete(n.pending, c.Fingerprint())
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("gateway: commit of unstaged change %s on %s", c.Fingerprint(), n.id)
	}
	switch c.Op {
	case OpPublish:
		art, _ := artifactOf(c.Payload)
		if _, err := n.reg.Publish(art); err != nil {
			return 0, err
		}
	case OpDemote:
		id, err := registry.ParseID(c.Target)
		if err != nil {
			return 0, err
		}
		n.reg.Demote(id)
	case OpRollback:
		if _, err := n.reg.Rollback(c.Target); err != nil {
			return 0, err
		}
	}
	return n.reg.Snapshot().Seq(), nil
}

// AbortChange implements ChangeStager.
func (n *ServeNode) AbortChange(_ context.Context, c Change) error {
	n.mu.Lock()
	delete(n.pending, c.Fingerprint())
	n.mu.Unlock()
	return nil
}

func artifactOf(payload any) (registry.Artifact, bool) {
	switch a := payload.(type) {
	case registry.Artifact:
		return a, true
	case *registry.Artifact:
		if a != nil {
			return *a, true
		}
	}
	return registry.Artifact{}, false
}
