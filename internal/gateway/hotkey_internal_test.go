package gateway

import "testing"

func TestHotTrackerBasics(t *testing.T) {
	tr := newHotTracker(32)
	d := uint64(0xdeadbeefcafe)
	for i := 0; i < 31; i++ {
		if tr.record(d) {
			t.Fatalf("hot after %d arrivals, threshold 32", i+1)
		}
	}
	if !tr.record(d) {
		t.Fatal("not hot after 32 arrivals")
	}
	// A colliding cold key decays the incumbent's count but cannot evict it:
	// after the cold burst, the incumbent recovers to hot with exactly as
	// many arrivals as the burst spent.
	slot := mix64(d) & (hotSlots - 1)
	other := d + 1
	for mix64(other)&(hotSlots-1) != slot {
		other++
	}
	for i := 0; i < 8; i++ {
		if tr.record(other) {
			t.Fatal("colliding cold key went hot on the incumbent's count")
		}
	}
	for i := 0; i < 8; i++ {
		tr.record(d)
	}
	if !tr.record(d) {
		t.Fatal("incumbent lost its slot to a colliding cold key")
	}
	if newHotTracker(0) != nil {
		t.Fatal("threshold 0 must disable the tracker")
	}
}

// The regression that motivated mix64 slotting: rcache digests of structured
// tensors can share all their low bits, and raw masking would pile an entire
// workload into one slot where cold keys hold the hot key at count 0.
func TestHotTrackerStructuredDigests(t *testing.T) {
	tr := newHotTracker(32)
	const lowBits = 0x012 // every key shares its low 10 bits
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)<<20 | lowBits
	}
	slots := map[uint64]bool{}
	for _, k := range keys {
		slots[mix64(k)&(hotSlots-1)] = true
	}
	if len(slots) < len(keys)/2 {
		t.Fatalf("mix64 left %d/%d structured digests in distinct slots", len(slots), len(keys))
	}
	// keys[0] takes 50% of traffic; the rest share the tail. It must go hot.
	hot := false
	for i := 0; i < 400; i++ {
		if tr.record(keys[0]) {
			hot = true
		}
		tr.record(keys[1+i%(len(keys)-1)])
	}
	if !hot {
		t.Fatal("dominant structured digest never went hot")
	}
}
