package gateway_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/serve"
	"itask/internal/tensor"
)

// regBackend is a minimal serve.Backend routing through a real versioned
// registry, so ServeNode's stage/commit protocol drives actual registry
// publishes and the serve layer's epoch-memoized routing.
type regBackend struct{ reg *registry.Registry }

func (b *regBackend) Route(task string) (string, error) {
	snap := b.reg.Snapshot()
	if a, ok := snap.ForTask(task); ok {
		return a.ID.String(), nil
	}
	if a, ok := snap.Generalist(); ok {
		return a.ID.String(), nil
	}
	return "", fmt.Errorf("no artifact for task %q", task)
}

func (b *regBackend) RouteEpoch() uint64 { return b.reg.Snapshot().Seq() }

func (b *regBackend) DetectBatch(variant, _ string, imgs []*tensor.Tensor) ([]any, string, error) {
	out := make([]any, len(imgs))
	for i := range out {
		out[i] = i
	}
	return out, variant, nil
}

func studentArtifact() registry.Artifact {
	return registry.Artifact{
		Name:      "patrol-student",
		Kind:      registry.TaskSpecific,
		Task:      "patrol",
		Bytes:     1 << 20,
		LatencyUS: 500,
		Detect: func(*tensor.Tensor) []geom.Scored {
			return nil
		},
	}
}

// A real in-process fleet: three serve.Servers, each with its own versioned
// registry, behind one gateway. Propagated publish/demote drive every
// shard's registry in lock-step, and detection results pin the exact
// cluster-wide version at every step.
func TestServeNodeClusterPublishDemote(t *testing.T) {
	const n = 3
	ctx := context.Background()
	g := newTestGateway(t, passiveConfig())
	for i := 0; i < n; i++ {
		reg := registry.New()
		if _, err := reg.Publish(studentArtifact()); err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(&regBackend{reg}, serve.Config{
			Workers: 1, MaxBatch: 4, QueueCap: 64, LatencyWindow: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		})
		node, err := gateway.NewServeNode(fmt.Sprintf("shard-%d", i), srv, reg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AddNode(node); err != nil {
			t.Fatal(err)
		}
	}

	versionOf := func(i int) string {
		t.Helper()
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: img(i)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model
	}
	for i := 0; i < 30; i++ {
		if v := versionOf(i); !strings.Contains(v, "@v1") {
			t.Fatalf("pre-publish model = %s, want @v1", v)
		}
	}

	// Publish v2 fleet-wide. Artifact fields are identical on every shard,
	// so every registry assigns the same id and the fleet stays uniform.
	ep, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpPublish, Payload: studentArtifact()})
	if err != nil {
		t.Fatalf("Propagate(publish): %v", err)
	}
	if g.CommittedEpoch() != ep || ep == 0 {
		t.Fatalf("committed epoch = %d/%d", ep, g.CommittedEpoch())
	}
	var v2 string
	for i := 0; i < 30; i++ {
		v := versionOf(i)
		if !strings.Contains(v, "@v2") {
			t.Fatalf("post-publish model = %s, want @v2", v)
		}
		if v2 == "" {
			v2 = v
		} else if v != v2 {
			t.Fatalf("fleet disagrees on v2 id: %s vs %s", v, v2)
		}
	}

	// Demote the exact v2 id fleet-wide: every shard quarantines it and
	// rolls back to v1.
	ep2, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpDemote, Target: v2})
	if err != nil {
		t.Fatalf("Propagate(demote): %v", err)
	}
	if ep2 <= ep {
		t.Fatalf("demote epoch %d did not advance past %d", ep2, ep)
	}
	for i := 0; i < 30; i++ {
		if v := versionOf(i); !strings.Contains(v, "@v1") {
			t.Fatalf("post-demote model = %s, want rollback to @v1", v)
		}
	}

	// A bogus change stages nowhere and leaves routing alone.
	if _, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpDemote, Target: "not-an-id"}); err == nil {
		t.Fatal("demote of an unparsable id must fail at stage time")
	}
	if v := versionOf(0); !strings.Contains(v, "@v1") {
		t.Fatalf("routing disturbed by an aborted change: %s", v)
	}
}
