package gateway

import (
	"errors"
	"math/rand/v2"
	"sync"
	"time"

	"itask/internal/serve"
)

// retry.go: failover pacing. PR 6's failover retried a successor
// immediately and unconditionally, which is exactly how one flapping shard
// turns into a fleet-wide retry storm: every request that touches it fires
// a second (and third) attempt at the survivors, multiplying load right
// when the fleet has the least spare capacity. Three mechanisms bound it:
//
//   - Full-jitter exponential backoff between failover attempts: attempt k
//     waits a uniform draw from [0, min(RetryBackoff × 2^k, RetryBackoffMax)).
//     Full jitter (attempt spread over the whole interval, not around its
//     midpoint) decorrelates the retry times of the many requests that
//     discovered a failure in the same instant.
//   - Retry-After honor: a 429/503 that advertises a retry horizon is a
//     shard telling us its queue depth; the failover waits
//     min(Retry-After, RetryBackoffMax) before the next attempt instead of
//     immediately re-landing the same work one ring position over.
//   - A token-bucket retry budget shared by all requests: each failover
//     attempt (not first attempts) spends one token from a bucket refilled
//     at RetryBudgetRate tokens/sec with RetryBudgetBurst depth. When the
//     bucket is dry the request fails with its last error instead of
//     retrying — under a persistent fault the fleet serves what it can and
//     sheds the rest, rather than amplifying every failure by MaxRetries.
//
// All three are off for zero config values, preserving PR 6 behavior.

// tokenBucket is a mutex-guarded token bucket over the monotonic clock.
// A nil bucket means an unlimited budget.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take spends one token, refilling first. Reports false when the bucket is
// dry (the caller must not retry).
func (b *tokenBucket) take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterOf extracts a shard-advertised retry horizon from a failover
// error: an explicit NodeError hint (HTTP adapters parse Retry-After into
// it) or an in-process open breaker's own backoff.
func retryAfterOf(err error) time.Duration {
	var ne *NodeError
	if errors.As(err, &ne) && ne.RetryAfter > 0 {
		return ne.RetryAfter
	}
	var bo *serve.BreakerOpenError
	if errors.As(err, &bo) && bo.RetryAfter > 0 {
		return bo.RetryAfter
	}
	return 0
}

// retryDelay computes the pause before failover attempt number attempt
// (0-based: the delay taken after the attempt-th try failed): the larger of
// the full-jitter backoff draw and the failed shard's capped Retry-After.
func (g *Gateway) retryDelay(attempt int, lastErr error) time.Duration {
	var d time.Duration
	if base := g.cfg.RetryBackoff; base > 0 {
		ceil := base << uint(attempt)
		if max := g.cfg.RetryBackoffMax; max > 0 && (ceil > max || ceil <= 0) {
			ceil = max
		}
		d = rand.N(ceil) // full jitter: uniform in [0, ceil)
	}
	// Retry-After is honored only when failover pacing is configured at
	// all: an unconfigured gateway keeps its legacy immediate failover
	// even against hinting shards.
	if max := g.cfg.RetryBackoffMax; max > 0 {
		if ra := retryAfterOf(lastErr); ra > 0 {
			if ra > max {
				ra = max
			}
			if ra > d {
				d = ra
			}
		}
	}
	return d
}

// sleepRetry pauses for d, bailing out early if ctx ends. Reports whether
// the pause completed.
func sleepRetry(ctx interface{ Done() <-chan struct{} }, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
