package gateway_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/serve"
	"itask/internal/tensor"
)

// img builds a small deterministic image with a content digest unique to i.
func img(i int) *tensor.Tensor {
	t := tensor.New(3, 8, 8)
	for j := range t.Data {
		t.Data[j] = float32(i*31+j) * 0.5
	}
	return t
}

// fakeCluster is shared bookkeeping across a fleet of fakeNodes, used to
// assert the two-phase barrier: how many members had staged a change at the
// moment any member committed it.
type fakeCluster struct {
	staged  atomic.Int32
	aborted atomic.Int32
}

// fakeNode is an in-memory shard implementing every gateway node interface:
// detection (attributing results to its current model version), probing,
// route epochs, and two-phase registry changes.
type fakeNode struct {
	id string
	cl *fakeCluster

	stageDelay time.Duration
	stageErr   error
	commitErr  error

	mu        sync.Mutex
	down      bool
	gate      chan struct{} // non-nil: Detect blocks on it (holds in-flight)
	version   string
	epoch     uint64
	staged    map[string]bool
	commitSaw []int32 // cl.staged at each commit — the barrier evidence
	served    int
}

func newFakeNode(id string, cl *fakeCluster) *fakeNode {
	return &fakeNode{id: id, cl: cl, version: "v1", epoch: 1, staged: map[string]bool{}}
}

func (n *fakeNode) ID() string { return n.id }

func (n *fakeNode) Detect(_ context.Context, _ serve.Request) (serve.Result, error) {
	n.mu.Lock()
	down, gate := n.down, n.gate
	n.mu.Unlock()
	if down {
		return serve.Result{}, &gateway.NodeError{Class: gateway.ClassNodeDown, Err: errors.New("connection refused")}
	}
	if gate != nil {
		<-gate
	}
	n.mu.Lock()
	n.served++
	res := serve.Result{Model: n.version, BatchSize: 1}
	n.mu.Unlock()
	return res, nil
}

func (n *fakeNode) setDown(d bool) {
	n.mu.Lock()
	n.down = d
	n.mu.Unlock()
}

func (n *fakeNode) Probe(context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return errors.New("probe: connection refused")
	}
	return nil
}

func (n *fakeNode) RouteEpoch(context.Context) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch, nil
}

func (n *fakeNode) setEpochAndVersion(ep uint64, v string) {
	n.mu.Lock()
	n.epoch, n.version = ep, v
	n.mu.Unlock()
}

func (n *fakeNode) StageChange(_ context.Context, c gateway.Change) error {
	if n.stageDelay > 0 {
		time.Sleep(n.stageDelay)
	}
	if n.stageErr != nil {
		return n.stageErr
	}
	n.mu.Lock()
	n.staged[c.Fingerprint()] = true
	n.mu.Unlock()
	n.cl.staged.Add(1)
	return nil
}

func (n *fakeNode) CommitChange(_ context.Context, c gateway.Change) (uint64, error) {
	if n.commitErr != nil {
		return 0, n.commitErr
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.staged[c.Fingerprint()] {
		return 0, errors.New("commit of unstaged change")
	}
	delete(n.staged, c.Fingerprint())
	n.version = c.Payload.(string)
	n.epoch++
	n.commitSaw = append(n.commitSaw, n.cl.staged.Load())
	return n.epoch, nil
}

func (n *fakeNode) AbortChange(_ context.Context, c gateway.Change) error {
	n.mu.Lock()
	delete(n.staged, c.Fingerprint())
	n.mu.Unlock()
	n.cl.aborted.Add(1)
	return nil
}

func (n *fakeNode) currentVersion() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// passiveConfig is a gateway with health and failover on but the background
// prober off, so tests control time.
func passiveConfig() gateway.Config {
	return gateway.Config{
		VirtualNodes:  64,
		MaxRetries:    1,
		FailThreshold: 1,
		EjectFor:      time.Minute,
	}
}

func newTestGateway(t *testing.T, cfg gateway.Config, nodes ...gateway.Node) *gateway.Gateway {
	t.Helper()
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// The tentpole E2E property: with N=3 shards under concurrent traffic, one
// shard dying mid-run costs healthy keys nothing — its keys rehash to ring
// successors, requests caught mid-death fail over, and not one client
// request fails. Keys owned by the surviving shards never move.
func TestClusterRehashOnNodeDeath(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	g := newTestGateway(t, passiveConfig(), a, b, c)

	imgs := make([]*tensor.Tensor, 240)
	for i := range imgs {
		imgs[i] = img(i)
	}
	ctx := context.Background()

	// Baseline owner of every key across the healthy fleet.
	ownerBefore := make([]string, len(imgs))
	perNode := map[string]int{}
	for i, im := range imgs {
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: im})
		if err != nil {
			t.Fatal(err)
		}
		ownerBefore[i] = res.Node
		perNode[res.Node]++
	}
	if len(perNode) != 3 {
		t.Fatalf("keys landed on %d shards, want 3: %v", len(perNode), perNode)
	}

	// Concurrent storm; shard-b dies mid-run.
	var (
		failures atomic.Int64
		firstErr atomic.Value
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: imgs[(i*4+w)%len(imgs)]}); err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	b.setDown(true)
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the node death (first: %v)", n, firstErr.Load())
	}

	// After the death: shard-b's keys rehash to survivors, everyone else's
	// owner is untouched.
	for i, im := range imgs {
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: im})
		if err != nil {
			t.Fatal(err)
		}
		if ownerBefore[i] == "shard-b" {
			if res.Node == "shard-b" {
				t.Fatalf("key %d still routed to the dead shard", i)
			}
		} else if res.Node != ownerBefore[i] {
			t.Fatalf("healthy key %d moved %s -> %s on an unrelated death", i, ownerBefore[i], res.Node)
		}
	}
	snap := g.Snapshot()
	if snap.Ejections == 0 {
		t.Fatal("dead shard was never ejected")
	}
	if snap.Retries == 0 {
		t.Fatal("no request fail-over was recorded despite a mid-run death")
	}
	if snap.Failed != 0 {
		t.Fatalf("gateway recorded %d exhausted requests", snap.Failed)
	}
}

// A zipf-hot digest crosses HotThreshold and spreads over HotReplicas
// shards; when one replica dies, the digest stays routable with zero failed
// requests (the replica set re-forms over the survivors).
func TestHotKeyReplicationSurvivesEjection(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	cfg := passiveConfig()
	cfg.HotThreshold = 8
	cfg.HotReplicas = 2
	g := newTestGateway(t, cfg, a, b, c)

	hot := img(7)
	ctx := context.Background()
	counts := map[string]int{}
	for i := 0; i < 120; i++ {
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: hot})
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Node]++
	}
	if len(counts) != 2 {
		t.Fatalf("hot digest served by %d shards, want exactly its 2 replicas: %v", len(counts), counts)
	}
	for id, n := range counts {
		if n < 30 {
			t.Fatalf("replica %s served only %d/120 — p2c is not spreading: %v", id, n, counts)
		}
	}
	if snap := g.Snapshot(); snap.HotRouted < 100 {
		t.Fatalf("HotRouted = %d, want >= 100", snap.HotRouted)
	}

	// Kill one replica: the hot key must stay routable with no failures.
	var victim *fakeNode
	for _, n := range []*fakeNode{a, b, c} {
		if _, isReplica := counts[n.id]; isReplica {
			victim = n
			break
		}
	}
	victim.setDown(true)
	after := map[string]int{}
	for i := 0; i < 60; i++ {
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: hot})
		if err != nil {
			t.Fatalf("hot request %d failed after replica ejection: %v", i, err)
		}
		after[res.Node]++
	}
	if after[victim.id] != 0 {
		t.Fatalf("ejected replica %s still served %d hot requests", victim.id, after[victim.id])
	}
	if len(after) == 0 {
		t.Fatal("hot digest unroutable after replica ejection")
	}
}

// Requests without a digestable image route by task key: one task's
// undigestable traffic stays on one shard (batch-lane locality), and the
// gateway counts the fallback.
func TestTaskKeyFallback(t *testing.T) {
	cl := &fakeCluster{}
	g := newTestGateway(t, passiveConfig(),
		newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl))
	ctx := context.Background()
	for _, task := range []string{"patrol", "inspect", "survey", "count"} {
		first := ""
		for i := 0; i < 8; i++ {
			res, err := g.Detect(ctx, serve.Request{Task: task})
			if err != nil {
				t.Fatal(err)
			}
			if first == "" {
				first = res.Node
			} else if res.Node != first {
				t.Fatalf("task %q flapped shards %s -> %s", task, first, res.Node)
			}
		}
	}
	if snap := g.Snapshot(); snap.TaskRouted != 32 {
		t.Fatalf("TaskRouted = %d, want 32", snap.TaskRouted)
	}
}

// Bounded load: concurrent arrivals for one (cold) key spill past the
// saturated owner to ring successors instead of queueing behind it.
func TestBoundedLoadSpill(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	cfg := passiveConfig()
	cfg.LoadFactor = 1.25
	g := newTestGateway(t, cfg, a, b, c)
	ctx := context.Background()

	key := img(99)
	res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: key})
	if err != nil {
		t.Fatal(err)
	}
	owner := map[string]*fakeNode{"shard-a": a, "shard-b": b, "shard-c": c}[res.Node]

	// Saturate the owner: its next request blocks holding in-flight load.
	gate := make(chan struct{})
	owner.mu.Lock()
	owner.gate = gate
	owner.mu.Unlock()

	done := make(chan string, 4)
	for i := 0; i < 4; i++ {
		go func() {
			r, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: key})
			if err != nil {
				done <- "error"
				return
			}
			done <- r.Node
		}()
		time.Sleep(2 * time.Millisecond) // let each arrival observe the last one's load
	}
	close(gate)
	served := map[string]int{}
	for i := 0; i < 4; i++ {
		served[<-done]++
	}
	if served["error"] != 0 {
		t.Fatalf("spilled requests failed: %v", served)
	}
	if len(served) < 2 {
		t.Fatalf("all concurrent arrivals queued on the saturated owner: %v", served)
	}
	if snap := g.Snapshot(); snap.Spills == 0 {
		t.Fatal("no bounded-load spill recorded")
	}
}
