package gateway

import (
	"sort"
	"sync"
	"sync/atomic"

	"itask/internal/serve"
)

// tenant.go: per-tenant routing attribution and the monopolization guard.
//
// The gateway routes by content, not by tenant — a frame's digest decides its
// shard so the fleet's caches compose — but it still accounts every request
// to a tenant and watches for one tenant monopolizing the fleet's elastic
// capacity. Hot-key replication and bounded-load spill exist to absorb
// organic surges; a single tenant flooding hot content would otherwise
// recruit *every* replica and spill slot for itself, turning the fairness
// machinery on each shard (internal/fair) into a fight the flood already
// won upstream. The guard: a tenant holding more than half the fleet's
// in-flight work while at least one other tenant is also in flight is
// "dominant" and loses the spread — its requests pin to their ring owner,
// no p2c hot replicas, no bounded-load spill — so the elastic capacity
// stays available to everyone else.

const (
	// maxTenantRows bounds the attribution table; past it, new tenants
	// aggregate under tenantOverflow rather than growing without bound on
	// hostile ids (the HTTP shell additionally rejects ids over 64 bytes).
	maxTenantRows = 1024
	// tenantOverflow collects tenants beyond maxTenantRows ("~" cannot
	// appear first in an id that sorts before real tenants' metrics rows).
	tenantOverflow = "~overflow"
	// dominanceMinInFlight is the evidence floor: below this many total
	// in-flight requests a majority is noise, not monopolization.
	dominanceMinInFlight = 4
)

// tenantStats is one tenant's routing counters. inflight is the tenant's
// currently-executing requests fleet-wide (the dominance signal); the rest
// mirror the gateway's global counters.
type tenantStats struct {
	inflight  atomic.Int64
	routed    atomic.Uint64
	failed    atomic.Uint64
	hotRouted atomic.Uint64
	spilled   atomic.Uint64
	dominated atomic.Uint64
}

// tenantTable maps tenant id → stats, bounded at maxTenantRows.
type tenantTable struct {
	m sync.Map // string → *tenantStats
	n atomic.Int64
}

// get returns the stats row for a tenant, normalizing "" to the serve
// layer's default tenant and folding table overflow into one shared row.
func (t *tenantTable) get(tenant string) *tenantStats {
	if tenant == "" {
		tenant = serve.DefaultTenant
	}
	if v, ok := t.m.Load(tenant); ok {
		return v.(*tenantStats)
	}
	if t.n.Load() >= maxTenantRows {
		tenant = tenantOverflow
		if v, ok := t.m.Load(tenant); ok {
			return v.(*tenantStats)
		}
	}
	v, loaded := t.m.LoadOrStore(tenant, &tenantStats{})
	if !loaded {
		t.n.Add(1)
	}
	return v.(*tenantStats)
}

// TenantStatus is one tenant's routing view, shaped for /metricsz.
type TenantStatus struct {
	Tenant   string `json:"tenant"`
	InFlight int64  `json:"in_flight,omitempty"`
	// Routed counts requests that reached a backend and got an answer
	// (including the backend's own verdicts about request content); Failed
	// counts requests that exhausted every attempt.
	Routed uint64 `json:"routed"`
	Failed uint64 `json:"failed,omitempty"`
	// HotRouted and Spilled mirror the global counters, per tenant.
	HotRouted uint64 `json:"hot_routed,omitempty"`
	Spilled   uint64 `json:"spilled,omitempty"`
	// Dominated counts requests routed while this tenant held more than
	// half the fleet's in-flight work: each was pinned to its ring owner,
	// denied hot-replica spread and bounded-load spill.
	Dominated uint64 `json:"dominated,omitempty"`
}

// snapshot renders the table sorted by tenant id.
func (t *tenantTable) snapshot() []TenantStatus {
	var out []TenantStatus
	t.m.Range(func(k, v any) bool {
		ts := v.(*tenantStats)
		out = append(out, TenantStatus{
			Tenant:    k.(string),
			InFlight:  ts.inflight.Load(),
			Routed:    ts.routed.Load(),
			Failed:    ts.failed.Load(),
			HotRouted: ts.hotRouted.Load(),
			Spilled:   ts.spilled.Load(),
			Dominated: ts.dominated.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
