package gateway

import (
	"sort"
	"sync/atomic"

	"itask/internal/freq"
)

// ring.go: the consistent-hash layer. Each backend node projects
// VirtualNodes points onto a 64-bit ring; a request key is routed to the
// first point clockwise from its hash. Virtual nodes smooth the per-node
// key share (stddev ~ 1/sqrt(vnodes)), and consistent hashing bounds churn:
// adding or removing one node of n remaps only ~K/n of K keys, so a node
// death invalidates one shard's worth of result-cache locality instead of
// reshuffling the whole cluster (see TestRingRebalanceBound).
//
// The ring is copy-on-write: mutations (join/leave) build a fresh ringState
// under the gateway's mutex and publish it through an atomic pointer, so the
// request path reads the ring lock-free.

// member is one backend node's routing state. The Node itself is immutable
// here; the atomics are the gateway's health and load bookkeeping, shared
// across ring generations so ejections and in-flight counts survive an
// unrelated join/leave.
type member struct {
	node Node
	id   string

	// inflight is the gateway-observed concurrent request count, the load
	// signal for bounded-load spill and power-of-two-choices hot routing.
	inflight atomic.Int64
	// consecFails counts consecutive down-class failures (passive and probe);
	// reaching FailThreshold ejects the member.
	consecFails atomic.Int32
	// ejectedUntil is the unix-nano deadline of the current ejection
	// (0 = healthy). An ejected member is skipped by routing — its keys
	// rehash to successors — but keeps being probed so it can return early.
	ejectedUntil atomic.Int64
	// lagging marks a member whose observed route epoch is behind the
	// cluster's committed epoch; it is skipped by routing until it catches
	// up, so a stale shard never serves old-version results after a publish.
	lagging atomic.Bool
	// epoch is the member's last observed route epoch.
	epoch atomic.Uint64

	served   atomic.Uint64
	failures atomic.Uint64
}

// available reports whether routing may send new work to the member.
func (m *member) available(nowNanos int64) bool {
	if m.lagging.Load() {
		return false
	}
	eu := m.ejectedUntil.Load()
	return eu == 0 || eu <= nowNanos
}

type ringPoint struct {
	hash uint64
	m    *member
}

// ringState is one immutable generation of the ring.
type ringState struct {
	points  []ringPoint // vnode points sorted by hash
	members []*member   // sorted by id
	byID    map[string]*member
}

// buildRing constructs a fresh generation from a member set.
func buildRing(members []*member, vnodes int) *ringState {
	rs := &ringState{
		members: append([]*member(nil), members...),
		byID:    make(map[string]*member, len(members)),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	sort.Slice(rs.members, func(i, j int) bool { return rs.members[i].id < rs.members[j].id })
	for _, m := range rs.members {
		rs.byID[m.id] = m
		for v := 0; v < vnodes; v++ {
			rs.points = append(rs.points, ringPoint{hash: vnodeHash(m.id, v), m: m})
		}
	}
	sort.Slice(rs.points, func(i, j int) bool {
		if rs.points[i].hash != rs.points[j].hash {
			return rs.points[i].hash < rs.points[j].hash
		}
		// Tie-break identical hashes by id so the ring order is total and
		// every gateway instance agrees on it.
		return rs.points[i].m.id < rs.points[j].m.id
	})
	return rs
}

// owner returns the member owning hash h (first point clockwise), or nil on
// an empty ring.
func (rs *ringState) owner(h uint64) *member {
	if len(rs.points) == 0 {
		return nil
	}
	i := sort.Search(len(rs.points), func(i int) bool { return rs.points[i].hash >= h })
	if i == len(rs.points) {
		i = 0 // wrap past the highest point
	}
	return rs.points[i].m
}

// successors returns up to n distinct members in ring order starting at
// hash h's owner. This is both the replica set for hot keys and the retry /
// spill preference order: every gateway instance derives the same list.
func (rs *ringState) successors(h uint64, n int) []*member {
	if len(rs.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(rs.members) {
		n = len(rs.members)
	}
	out := make([]*member, 0, n)
	start := sort.Search(len(rs.points), func(i int) bool { return rs.points[i].hash >= h })
	for i := 0; i < len(rs.points) && len(out) < n; i++ {
		m := rs.points[(start+i)%len(rs.points)].m
		if !containsMember(out, m) {
			out = append(out, m)
		}
	}
	return out
}

func containsMember(ms []*member, m *member) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// FNV-1a 64-bit, inlined so the ring has no dependencies.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// vnodeHash places virtual node v of a member on the ring.
func vnodeHash(id string, v int) uint64 {
	h := fnvString(id)
	h ^= uint64(v) + 0x9e3779b97f4a7c15
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (freq.Mix64): a cheap bijective
// avalanche that decorrelates request keys (already FNV digests) from the
// FNV-derived vnode points, so key hashes and point hashes behave as
// independent uniform draws.
func mix64(x uint64) uint64 {
	return freq.Mix64(x)
}
