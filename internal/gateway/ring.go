package gateway

import (
	"sort"
	"sync/atomic"

	"itask/internal/freq"
)

// ring.go: the consistent-hash layer. Each backend shard projects a number
// of points onto a 64-bit ring; a request key is routed to the first point
// clockwise from its hash. Virtual nodes smooth the per-shard key share
// (stddev ~ 1/sqrt(vnodes)), and consistent hashing bounds churn: adding or
// removing one shard of n remaps only ~K/n of K keys, so a shard death
// invalidates one shard's worth of result-cache locality instead of
// reshuffling the whole cluster (see TestRingRebalanceBound).
//
// With lease-based membership a shard's point count scales with its
// slow-start weight: a warming shard at weight w projects ceil(w × vnodes)
// points. Point v's position depends only on (id, v), so a shard's partial
// point set is always a prefix of its full set — as the ramp advances the
// shard only ever *gains* key ranges it will keep at full weight, and the
// keys it serves while warming are exactly keys it would own anyway. Churn
// during a ramp is therefore monotone, never a reshuffle.
//
// The ring is copy-on-write: mutations (join/leave/expiry/ramp) build a
// fresh ringState under the gateway's mutex and publish it through an atomic
// pointer, so the request path reads the ring lock-free.

// shard is one backend node's routing state. The Node itself is immutable
// here; the atomics are the gateway's health and load bookkeeping, shared
// across ring generations so ejections and in-flight counts survive an
// unrelated join/leave. A rejoin after lease expiry allocates a fresh shard:
// the new incarnation starts with clean health accounting.
type shard struct {
	node Node
	id   string

	// vnodes is the shard's current ring-point count (scaled by its
	// membership weight). Written only under the gateway mutex before the
	// ring generation embedding it is built.
	vnodes int

	// inflight is the gateway-observed concurrent request count, the load
	// signal for bounded-load spill and power-of-two-choices hot routing.
	inflight atomic.Int64
	// consecFails counts consecutive down-class failures (passive and probe);
	// reaching FailThreshold ejects the shard.
	consecFails atomic.Int32
	// ejectedUntil is the unix-nano deadline of the current ejection
	// (0 = healthy). An ejected shard is skipped by routing — its keys
	// rehash to successors — but keeps being probed so it can return early.
	ejectedUntil atomic.Int64
	// lagging marks a shard whose observed route epoch is behind the
	// cluster's committed epoch; it is skipped by routing until it catches
	// up, so a stale shard never serves old-version results after a publish.
	lagging atomic.Bool
	// epoch is the shard's last observed route epoch.
	epoch atomic.Uint64

	served   atomic.Uint64
	failures atomic.Uint64
}

// available reports whether routing may send new work to the shard.
func (s *shard) available(nowNanos int64) bool {
	if s.lagging.Load() {
		return false
	}
	eu := s.ejectedUntil.Load()
	return eu == 0 || eu <= nowNanos
}

type ringPoint struct {
	hash uint64
	s    *shard
}

// ringState is one immutable generation of the ring.
type ringState struct {
	points []ringPoint // vnode points sorted by hash
	shards []*shard    // sorted by id
	byID   map[string]*shard
}

// buildRing constructs a fresh generation from a shard set. Each shard
// projects its own vnodes count of points (defaulting to defVnodes when
// unset), so membership weight shapes the key share.
func buildRing(shards []*shard, defVnodes int) *ringState {
	rs := &ringState{
		shards: append([]*shard(nil), shards...),
		byID:   make(map[string]*shard, len(shards)),
	}
	sort.Slice(rs.shards, func(i, j int) bool { return rs.shards[i].id < rs.shards[j].id })
	total := 0
	for _, s := range rs.shards {
		if s.vnodes <= 0 {
			s.vnodes = defVnodes
		}
		total += s.vnodes
	}
	rs.points = make([]ringPoint, 0, total)
	for _, s := range rs.shards {
		rs.byID[s.id] = s
		for v := 0; v < s.vnodes; v++ {
			rs.points = append(rs.points, ringPoint{hash: vnodeHash(s.id, v), s: s})
		}
	}
	sort.Slice(rs.points, func(i, j int) bool {
		if rs.points[i].hash != rs.points[j].hash {
			return rs.points[i].hash < rs.points[j].hash
		}
		// Tie-break identical hashes by id so the ring order is total and
		// every gateway instance agrees on it.
		return rs.points[i].s.id < rs.points[j].s.id
	})
	return rs
}

// owner returns the shard owning hash h (first point clockwise), or nil on
// an empty ring.
func (rs *ringState) owner(h uint64) *shard {
	if len(rs.points) == 0 {
		return nil
	}
	i := sort.Search(len(rs.points), func(i int) bool { return rs.points[i].hash >= h })
	if i == len(rs.points) {
		i = 0 // wrap past the highest point
	}
	return rs.points[i].s
}

// successors returns up to n distinct shards in ring order starting at
// hash h's owner. This is both the replica set for hot keys and the retry /
// spill preference order: every gateway instance derives the same list.
func (rs *ringState) successors(h uint64, n int) []*shard {
	if len(rs.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(rs.shards) {
		n = len(rs.shards)
	}
	out := make([]*shard, 0, n)
	start := sort.Search(len(rs.points), func(i int) bool { return rs.points[i].hash >= h })
	for i := 0; i < len(rs.points) && len(out) < n; i++ {
		s := rs.points[(start+i)%len(rs.points)].s
		if !containsShard(out, s) {
			out = append(out, s)
		}
	}
	return out
}

func containsShard(ss []*shard, s *shard) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// FNV-1a 64-bit, inlined so the ring has no dependencies.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// vnodeHash places virtual node v of a shard on the ring.
func vnodeHash(id string, v int) uint64 {
	h := fnvString(id)
	h ^= uint64(v) + 0x9e3779b97f4a7c15
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (freq.Mix64): a cheap bijective
// avalanche that decorrelates request keys (already FNV digests) from the
// FNV-derived vnode points, so key hashes and point hashes behave as
// independent uniform draws.
func mix64(x uint64) uint64 {
	return freq.Mix64(x)
}
