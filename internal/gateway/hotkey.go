package gateway

import "sync"

// hotkey.go: detection of zipf-hot content digests. Real detection traffic
// is heavily skewed — a viral frame can draw a double-digit share of all
// requests — and under plain consistent hashing that entire share lands on
// one shard, saturating it while its ring neighbors idle. The gateway
// counts per-digest arrivals in a fixed-size direct-mapped slot array; a
// digest whose windowed count crosses HotThreshold is declared hot and
// routed over HotReplicas successor shards with power-of-two-choices load
// balancing instead of a single owner (see gateway.go).
//
// The counter is a per-slot "frequent"/MJRTY estimator: a digest occupies
// its slot while it dominates the slot's traffic, and colliding cold keys
// decrement rather than evict it. Counts are halved every decayWindow
// arrivals so hotness is a property of recent traffic — yesterday's viral
// frame cools off and releases its replicas.

const (
	hotSlots    = 1024 // direct-mapped slots (power of two)
	decayWindow = 8192 // arrivals between halvings of every slot count
)

// hotSlot is padded to a cache line so adjacent slots never false-share
// under concurrent admission.
type hotSlot struct {
	mu    sync.Mutex
	key   uint64
	count uint32
	_     [64 - 8 - 8 - 4]byte
}

type hotTracker struct {
	threshold uint32
	slots     [hotSlots]hotSlot
	// ops counts arrivals to schedule decay; guarded by opsMu rather than an
	// atomic so exactly one caller runs each halving sweep.
	opsMu sync.Mutex
	ops   uint64
}

func newHotTracker(threshold int) *hotTracker {
	if threshold <= 0 {
		return nil
	}
	return &hotTracker{threshold: uint32(threshold)}
}

// record counts one arrival of digest d and reports whether d is currently
// hot. The digest is finalized through mix64 before indexing: FNV digests of
// structured inputs (quantized float tensors) can share their low bits
// wholesale, and without mixing an entire workload collapses into one slot
// where cold keys decrement the hot incumbent into oblivion.
func (t *hotTracker) record(d uint64) bool {
	s := &t.slots[mix64(d)&(hotSlots-1)]
	s.mu.Lock()
	switch {
	case s.key == d:
		if s.count < 1<<31 {
			s.count++
		}
	case s.count == 0:
		s.key = d
		s.count = 1
	default:
		// A colliding key decays the incumbent instead of evicting it: only
		// a key that out-arrives the incumbent can take the slot, so hot
		// digests are sticky against cold-tail collisions.
		s.count--
	}
	hot := s.key == d && s.count >= t.threshold
	s.mu.Unlock()

	t.opsMu.Lock()
	t.ops++
	decay := t.ops%decayWindow == 0
	t.opsMu.Unlock()
	if decay {
		t.halve()
	}
	return hot
}

func (t *hotTracker) halve() {
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		s.count /= 2
		s.mu.Unlock()
	}
}
