package gateway

import (
	"fmt"
	"testing"
)

func testShards(n int) []*shard {
	ms := make([]*shard, n)
	for i := range ms {
		ms[i] = &shard{id: fmt.Sprintf("node-%02d", i)}
	}
	return ms
}

func sampleKeys(k int) []uint64 {
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = mix64(uint64(i) + 1)
	}
	return keys
}

// Consistent hashing's whole point: adding the (n+1)-th node remaps only
// ~K/(n+1) keys — all of them TO the new node — and removing it remaps only
// its own keys. Everything else keeps its owner, so a membership change
// invalidates one shard's worth of cache locality, not the cluster's.
func TestRingRebalanceBound(t *testing.T) {
	const vnodes, n, K = 128, 10, 20000
	ms := testShards(n + 1)
	before := buildRing(ms[:n], vnodes)
	after := buildRing(ms, vnodes)
	keys := sampleKeys(K)

	moved := 0
	for _, k := range keys {
		ob, oa := before.owner(k), after.owner(k)
		if ob != oa {
			moved++
			if oa != ms[n] {
				t.Fatalf("key %x moved between old members (%s -> %s) on join", k, ob.id, oa.id)
			}
		}
	}
	// Expected share K/(n+1) ≈ 1818; allow vnode-placement variance.
	limit := K * 16 / (10 * (n + 1)) // 1.6 × K/(n+1)
	if moved == 0 || moved > limit {
		t.Fatalf("join remapped %d keys, want (0, %d]", moved, limit)
	}

	// Leave: removing the node sends exactly its keys back; no other key
	// moves between the survivors.
	for _, k := range keys {
		oa, ob := after.owner(k), before.owner(k)
		if oa == ms[n] {
			continue // its keys must redistribute
		}
		if oa != ob {
			t.Fatalf("key %x owned by survivor %s moved on leave", k, oa.id)
		}
	}
}

// Virtual nodes keep per-member key shares near uniform: with 128 vnodes no
// member of 10 owns more than ~1.5× its fair share (the ring is
// deterministic, so this is a fixed property, not a flaky sample).
func TestRingBalance(t *testing.T) {
	const vnodes, n, K = 128, 10, 20000
	rs := buildRing(testShards(n), vnodes)
	counts := map[string]int{}
	for _, k := range sampleKeys(K) {
		counts[rs.owner(k).id]++
	}
	fair := K / n
	for id, c := range counts {
		if c > fair*3/2 || c < fair/2 {
			t.Errorf("member %s owns %d keys, fair share %d", id, c, fair)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own keys", len(counts), n)
	}
}

// successors must start at the owner, be distinct, be capped at the member
// count, and agree across calls — it is both the hot-key replica set and
// the failover order, so every gateway instance must derive the same list.
func TestRingSuccessors(t *testing.T) {
	rs := buildRing(testShards(5), 64)
	for _, k := range sampleKeys(200) {
		succ := rs.successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("got %d successors, want 3", len(succ))
		}
		if succ[0] != rs.owner(k) {
			t.Fatalf("successors[0] = %s, owner = %s", succ[0].id, rs.owner(k).id)
		}
		seen := map[*shard]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member %s in successor set", m.id)
			}
			seen[m] = true
		}
		if all := rs.successors(k, 99); len(all) != 5 {
			t.Fatalf("successors capped at %d, want all 5 members", len(all))
		}
	}
	if rs.successors(42, 0) != nil {
		t.Fatal("n=0 must return nil")
	}
	if empty := buildRing(nil, 64); empty.owner(42) != nil || empty.successors(42, 2) != nil {
		t.Fatal("empty ring must return nil owner and successors")
	}
}
