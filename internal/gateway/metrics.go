package gateway

import "sync/atomic"

// metrics.go: the gateway's counters, sharded the same way as the serve
// layer's so concurrent clients on different cores never contend on one
// counter cache line. Shard selection hashes on the request key; totals are
// summed at snapshot time.

type counterID int

const (
	cRouted     counterID = iota // requests that reached a node
	cHotRouted                   // requests routed via hot-key replication
	cTaskRouted                  // undigestable requests routed by task key
	cSpills                      // bounded-load spills past the owner
	cRetries                     // failover retries onto a successor
	cBudgetDry                   // retries wanted but denied by the retry budget
	cFailed                      // requests that exhausted their attempts
	cEjections                   // members ejected by health accounting
	cEpochDrift                  // members observed behind the committed epoch
	cPropagates                  // cluster-wide registry changes propagated
	numCounters
)

const metricShards = 8

type counterShard struct {
	v [numCounters]atomic.Uint64
	_ [64]byte
}

type metrics struct {
	shards [metricShards]counterShard
}

func (m *metrics) inc(hint uint64, c counterID) {
	m.shards[hint%metricShards].v[c].Add(1)
}

func (m *metrics) total(c counterID) uint64 {
	var t uint64
	for i := range m.shards {
		t += m.shards[i].v[c].Load()
	}
	return t
}

// Snapshot is the gateway's observable state, shaped for /metricsz.
type Snapshot struct {
	// Routed counts requests that reached a backend (including retried
	// ones once); Failed counts requests that exhausted every attempt.
	Routed uint64 `json:"routed"`
	Failed uint64 `json:"failed,omitempty"`
	// HotRouted counts requests served through hot-key replication,
	// TaskRouted requests routed by task key because they carried no
	// digestable image.
	HotRouted  uint64 `json:"hot_routed,omitempty"`
	TaskRouted uint64 `json:"task_routed,omitempty"`
	// Spills counts bounded-load diversions past a saturated owner;
	// Retries counts failover attempts onto a successor shard;
	// RetryBudgetExhausted counts retries that were wanted but denied by
	// the fleet-wide token-bucket budget (the request failed with its last
	// shard error instead of amplifying).
	Spills               uint64 `json:"spills,omitempty"`
	Retries              uint64 `json:"retries,omitempty"`
	RetryBudgetExhausted uint64 `json:"retry_budget_exhausted,omitempty"`
	// Ejections counts health ejections; EpochDrift counts members caught
	// serving behind the cluster's committed registry epoch.
	Ejections  uint64 `json:"ejections,omitempty"`
	EpochDrift uint64 `json:"epoch_drift,omitempty"`
	// Propagates counts cluster-wide registry changes; CommittedEpoch is
	// the highest epoch every propagation has driven the cluster to.
	Propagates     uint64 `json:"propagates,omitempty"`
	CommittedEpoch uint64 `json:"committed_epoch"`

	// Membership lifecycle counters (see internal/member): leases granted
	// to announcing shards, heartbeat renewals, leases lost to missed
	// renewals, expired/left members that announced again, and graceful
	// deregistrations.
	LeasesGranted    uint64 `json:"leases_granted,omitempty"`
	LeaseRenewals    uint64 `json:"lease_renewals,omitempty"`
	LeaseExpirations uint64 `json:"lease_expirations,omitempty"`
	Rejoins          uint64 `json:"rejoins,omitempty"`
	GracefulLeaves   uint64 `json:"graceful_leaves,omitempty"`

	Nodes []NodeStatus `json:"nodes"`

	// PerTenant is routing attribution by tenant (sorted by tenant id):
	// which tenants the fleet is serving, who is failing, and who has been
	// pinned by the monopolization guard (see tenant.go).
	PerTenant []TenantStatus `json:"per_tenant,omitempty"`
}

// NodeStatus is one member's routing view.
type NodeStatus struct {
	ID string `json:"id"`
	// State is the membership state (joining, warming, active, suspect,
	// expired, left); Weight is the slow-start routing weight in (0, 1].
	State    string  `json:"state,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	InFlight int64   `json:"in_flight"`
	Served   uint64  `json:"served"`
	Failures uint64  `json:"failures,omitempty"`
	Ejected  bool    `json:"ejected,omitempty"`
	Lagging  bool    `json:"lagging,omitempty"`
	Epoch    uint64  `json:"epoch,omitempty"`
}
