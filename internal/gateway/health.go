package gateway

import (
	"context"
	"sync"
	"time"
)

// health.go: per-member failure accounting and the active prober. Health is
// two-channel:
//
//   - Passive: Execute classifies every node error; ClassNodeDown failures
//     increment the member's consecutive-failure count and eject it at
//     FailThreshold. Ejection is how a dead node's keys rehash — routing
//     skips ejected members, so their key ranges fall through to ring
//     successors — while the in-flight requests that discovered the death
//     retry on the successor and succeed.
//   - Active: a background loop probes every announced member (routable or
//     not) each ProbeInterval. A probe failure counts exactly like a
//     request failure (a quiet node can die without traffic noticing), a
//     probe success clears the count and lifts an ejection early. The same
//     sweep reads each member's route epoch and flags members behind the
//     cluster's committed epoch as lagging (see epoch.go) — a shard that
//     missed a publish must not serve old-version traffic. For a joining
//     member the observed epoch also drives convergence: the prober can
//     admit it to the ring as soon as it catches up, without waiting for
//     the member's own next heartbeat (the heartbeat still owns the lease —
//     prober observations never extend it).
//
// Ejection is deliberately time-bounded (EjectFor): with no prober, a
// passively ejected member rejoins on expiry and the next failure re-ejects
// it, giving a crash-looping node a duty cycle instead of permanent exile.
// Lease expiry (gateway.go's sweeper) is the third, coarser channel: a
// member that stops renewing leaves the ring entirely, ejected or not.

// noteDown records one down-class failure; at FailThreshold consecutive
// failures the member is ejected for EjectFor.
func (g *Gateway) noteDown(s *shard) {
	if g.cfg.FailThreshold <= 0 {
		return
	}
	if int(s.consecFails.Add(1)) < g.cfg.FailThreshold {
		return
	}
	s.consecFails.Store(0)
	until := time.Now().Add(g.cfg.EjectFor).UnixNano()
	if s.ejectedUntil.Swap(until) <= time.Now().UnixNano() {
		// Count a fresh ejection, not an extension of a running one.
		g.m.inc(uint64(until), cEjections)
	}
}

func (g *Gateway) proberLoop() {
	defer g.done.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// probeAll sweeps every announced member concurrently: one slow shard must
// not delay detection of the others. It walks the roster, not the ring, so
// epoch-gated joining members are probed too — that observation is what
// converges them.
func (g *Gateway) probeAll() {
	g.mu.Lock()
	shards := make([]*shard, 0, len(g.roster))
	for _, s := range g.roster {
		shards = append(shards, s)
	}
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			g.probeOne(s)
		}(s)
	}
	wg.Wait()
}

func (g *Gateway) probeOne(s *shard) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	if pn, ok := s.node.(ProbeNode); ok {
		if err := pn.Probe(ctx); err != nil {
			s.failures.Add(1)
			g.noteDown(s)
		} else {
			s.consecFails.Store(0)
			s.ejectedUntil.Store(0) // a live answer lifts any ejection early
		}
	}
	if en, ok := s.node.(EpochNode); ok {
		ep, err := en.RouteEpoch(ctx)
		if err != nil {
			return
		}
		g.observeEpoch(s, ep)
	}
}

// observeEpoch records a member's observed route epoch: behind the
// committed epoch it is lagging (skipped by routing); caught up, a joining
// member converges onto the ring without waiting for its next heartbeat.
func (g *Gateway) observeEpoch(s *shard, ep uint64) {
	s.epoch.Store(ep)
	committed := g.committedEpoch.Load()
	lag := ep < committed
	if s.lagging.Swap(lag) != lag && lag {
		g.m.inc(ep, cEpochDrift)
	}
	if lag {
		return
	}
	g.mu.Lock()
	if _, changed := g.tbl.Converge(s.id, ep, committed); changed {
		g.rebuildLocked()
	}
	g.mu.Unlock()
}
