package gateway

import (
	"context"
	"sync"
	"time"
)

// health.go: per-member failure accounting and the active prober. Health is
// two-channel:
//
//   - Passive: Execute classifies every node error; ClassNodeDown failures
//     increment the member's consecutive-failure count and eject it at
//     FailThreshold. Ejection is how a dead node's keys rehash — routing
//     skips ejected members, so their key ranges fall through to ring
//     successors — while the in-flight requests that discovered the death
//     retry on the successor and succeed.
//   - Active: a background loop probes every member each ProbeInterval.
//     A probe failure counts exactly like a request failure (a quiet node
//     can die without traffic noticing), a probe success clears the count
//     and lifts an ejection early. The same sweep reads each member's
//     route epoch and flags members behind the cluster's committed epoch
//     as lagging (see epoch.go) — a shard that missed a publish must not
//     serve old-version traffic.
//
// Ejection is deliberately time-bounded (EjectFor): with no prober, a
// passively ejected member rejoins on expiry and the next failure re-ejects
// it, giving a crash-looping node a duty cycle instead of permanent exile.

// noteDown records one down-class failure; at FailThreshold consecutive
// failures the member is ejected for EjectFor.
func (g *Gateway) noteDown(m *member) {
	if g.cfg.FailThreshold <= 0 {
		return
	}
	if int(m.consecFails.Add(1)) < g.cfg.FailThreshold {
		return
	}
	m.consecFails.Store(0)
	until := time.Now().Add(g.cfg.EjectFor).UnixNano()
	if m.ejectedUntil.Swap(until) <= time.Now().UnixNano() {
		// Count a fresh ejection, not an extension of a running one.
		g.m.inc(uint64(until), cEjections)
	}
}

func (g *Gateway) proberLoop() {
	defer g.done.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// probeAll sweeps every member concurrently: one slow shard must not delay
// detection of the others.
func (g *Gateway) probeAll() {
	rs := g.ring.Load()
	var wg sync.WaitGroup
	for _, m := range rs.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			g.probeOne(m)
		}(m)
	}
	wg.Wait()
}

func (g *Gateway) probeOne(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	if pn, ok := m.node.(ProbeNode); ok {
		if err := pn.Probe(ctx); err != nil {
			m.failures.Add(1)
			g.noteDown(m)
		} else {
			m.consecFails.Store(0)
			m.ejectedUntil.Store(0) // a live answer lifts any ejection early
		}
	}
	if en, ok := m.node.(EpochNode); ok {
		ep, err := en.RouteEpoch(ctx)
		if err != nil {
			return
		}
		m.epoch.Store(ep)
		lag := ep < g.committedEpoch.Load()
		if m.lagging.Swap(lag) != lag && lag {
			g.m.inc(ep, cEpochDrift)
		}
	}
}
