package gateway_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/serve"
)

// The publish barrier: with one shard staging slowly, no shard may activate
// the new version until every shard has staged it. The fakeNode records the
// cluster-wide staged count at each commit — all three must read 3.
func TestPublishTwoPhaseBarrier(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	c.stageDelay = 25 * time.Millisecond
	g := newTestGateway(t, passiveConfig(), a, b, c)
	ctx := context.Background()

	// Traffic keeps flowing during the propagation; any v2 answer before
	// the commit point would be a barrier violation (the version only flips
	// in CommitChange, which asserts the staged count below).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: img(i % 20)}); err != nil {
				t.Errorf("detect during propagation: %v", err)
				return
			}
		}
	}()

	ep, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpPublish, Payload: "v2"})
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	close(stop)
	wg.Wait()

	if ep != 2 {
		t.Fatalf("committed epoch = %d, want 2", ep)
	}
	if g.CommittedEpoch() != ep {
		t.Fatalf("CommittedEpoch() = %d, want %d", g.CommittedEpoch(), ep)
	}
	for _, n := range []*fakeNode{a, b, c} {
		if v := n.currentVersion(); v != "v2" {
			t.Fatalf("%s still serves %s after propagation", n.id, v)
		}
		n.mu.Lock()
		saw := append([]int32(nil), n.commitSaw...)
		n.mu.Unlock()
		if len(saw) != 1 || saw[0] != 3 {
			t.Fatalf("%s committed with cluster staged counts %v, want [3] — a shard activated before the fleet staged", n.id, saw)
		}
	}
	if snap := g.Snapshot(); snap.Propagates != 1 || snap.CommittedEpoch != ep {
		t.Fatalf("snapshot propagation state = {%d %d}, want {1 %d}", snap.Propagates, snap.CommittedEpoch, ep)
	}
}

// A failed stage aborts the change fleet-wide: the members that staged are
// rolled back, nobody activates, and routing is untouched.
func TestPublishStageFailureAborts(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	b.stageErr = errors.New("checksum mismatch")
	g := newTestGateway(t, passiveConfig(), a, b, c)
	ctx := context.Background()

	if _, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpPublish, Payload: "v2"}); err == nil {
		t.Fatal("Propagate succeeded past a failed stage")
	}
	if got := cl.aborted.Load(); got != 2 {
		t.Fatalf("%d staged members aborted, want 2", got)
	}
	for _, n := range []*fakeNode{a, b, c} {
		if v := n.currentVersion(); v != "v1" {
			t.Fatalf("%s activated %s despite the aborted publish", n.id, v)
		}
	}
	if g.CommittedEpoch() != 0 {
		t.Fatalf("CommittedEpoch advanced to %d on an aborted change", g.CommittedEpoch())
	}
	// Traffic still serves v1 everywhere.
	res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: img(3)})
	if err != nil || res.Model != "v1" {
		t.Fatalf("post-abort detect = {%v %v}, want v1", res.Model, err)
	}
}

// A member that fails its commit after the commit point is marked lagging
// and excluded from routing — clients never read the old version from it —
// then rejoins once the prober observes it at the committed epoch.
func TestPartialCommitMarksLaggingAndRecovers(t *testing.T) {
	cl := &fakeCluster{}
	a, b, c := newFakeNode("shard-a", cl), newFakeNode("shard-b", cl), newFakeNode("shard-c", cl)
	b.commitErr = errors.New("registry wedged")
	cfg := passiveConfig()
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbeTimeout = 100 * time.Millisecond
	g := newTestGateway(t, cfg, a, b, c)
	ctx := context.Background()

	ep, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpPublish, Payload: "v2"})
	if !errors.Is(err, gateway.ErrPartialCommit) {
		t.Fatalf("Propagate err = %v, want ErrPartialCommit", err)
	}
	if ep != 2 || g.CommittedEpoch() != 2 {
		t.Fatalf("committed epoch = %d/%d, want 2", ep, g.CommittedEpoch())
	}

	// The lagging member must not serve: every key routes to a or c, and
	// every answer is the committed version.
	for i := 0; i < 120; i++ {
		res, err := g.Detect(ctx, serve.Request{Task: "patrol", Image: img(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Node == "shard-b" {
			t.Fatal("lagging shard-b served a request")
		}
		if res.Model != "v2" {
			t.Fatalf("stale version %s served after commit", res.Model)
		}
	}
	found := false
	for _, ns := range g.Snapshot().Nodes {
		if ns.ID == "shard-b" {
			found = true
			if !ns.Lagging {
				t.Fatal("shard-b not marked lagging in snapshot")
			}
		}
	}
	if !found {
		t.Fatal("shard-b missing from snapshot")
	}

	// The wedged shard recovers (catches up to the committed epoch); the
	// prober notices and routing readmits it.
	b.commitErr = nil
	b.setEpochAndVersion(ep, "v2")
	deadline := time.Now().Add(2 * time.Second)
	for {
		lagging := false
		for _, ns := range g.Snapshot().Nodes {
			if ns.ID == "shard-b" {
				lagging = ns.Lagging
			}
		}
		if !lagging {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard-b still lagging after catching up to the committed epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// applyNode supports only single-phase application, with an activation
// delay between ApplyChange and the new epoch becoming visible — the shape
// of a backend whose reload is asynchronous. Propagate must fall back to
// apply + epoch barrier and not return until the whole fleet observably
// routes at the new epoch.
type applyNode struct {
	id    string
	delay time.Duration

	mu        sync.Mutex
	epoch     uint64
	target    uint64
	visibleAt time.Time
}

func (n *applyNode) ID() string { return n.id }

func (n *applyNode) ApplyChange(_ context.Context, _ gateway.Change) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.target = n.epoch + 1
	n.visibleAt = time.Now().Add(n.delay)
	return n.target, nil
}

func (n *applyNode) RouteEpoch(context.Context) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.target > n.epoch && time.Now().After(n.visibleAt) {
		n.epoch = n.target
	}
	return n.epoch, nil
}

func TestApplyBarrierFallback(t *testing.T) {
	nodes := []*applyNode{
		{id: "shard-a", epoch: 1},
		{id: "shard-b", epoch: 1, delay: 30 * time.Millisecond},
		{id: "shard-c", epoch: 1},
	}
	cfg := passiveConfig()
	cfg.BarrierPoll = time.Millisecond
	g := newTestGateway(t, cfg, nodes[0], nodes[1], nodes[2])

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	ep, err := g.Propagate(ctx, gateway.Change{Op: gateway.OpRollback, Target: "patrol-student"})
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	if ep != 2 {
		t.Fatalf("epoch = %d, want 2", ep)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("Propagate returned in %v — before shard-b's epoch became visible", elapsed)
	}
	for _, n := range nodes {
		got, _ := n.RouteEpoch(ctx)
		if got != ep {
			t.Fatalf("%s at epoch %d after barrier, want %d", n.id, got, ep)
		}
	}
	if g.CommittedEpoch() != ep {
		t.Fatalf("CommittedEpoch() = %d, want %d", g.CommittedEpoch(), ep)
	}
}

// A fleet with a node that supports neither protocol refuses the change
// up front rather than half-applying it.
func TestPropagateUnsupportedNode(t *testing.T) {
	cl := &fakeCluster{}
	g := newTestGateway(t, passiveConfig(), newFakeNode("shard-a", cl), bareNode("shard-x"))
	_, err := g.Propagate(context.Background(), gateway.Change{Op: gateway.OpPublish, Payload: "v2"})
	if !errors.Is(err, gateway.ErrUnsupportedChange) {
		t.Fatalf("err = %v, want ErrUnsupportedChange", err)
	}
}

type bareNode string

func (n bareNode) ID() string { return string(n) }
