package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/member"
)

// testClock is a manually advanced membership clock shared with the
// gateway, so lease-timing tests never sleep.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_000_000, 0)} }
func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// leaseConfig is a membership-enabled gateway with the background prober
// and sweeper effectively inert (tests drive SweepMembership directly via
// the injected clock).
func leaseConfig(clk *testClock) gateway.Config {
	return gateway.Config{
		VirtualNodes:  64,
		MaxRetries:    1,
		FailThreshold: 1,
		EjectFor:      time.Minute,
		LeaseTTL:      time.Second,
		SuspectAfter:  400 * time.Millisecond,
		RampWindows:   2,
		SweepInterval: time.Hour,
		Clock:         clk.now,
	}
}

func nodesOf(g *gateway.Gateway) map[string]bool {
	out := map[string]bool{}
	for _, id := range g.Nodes() {
		out[id] = true
	}
	return out
}

// The membership lifecycle as routing sees it: an announced member becomes
// routable (warming, ramping to active on renewals), turns suspect but
// stays routable when heartbeats pause, expires off the ring when the
// lease runs out — after which no request ever routes to it — and rejoins
// with a fresh lease on re-announce.
func TestLeaseLifecycleOnRing(t *testing.T) {
	clk := newTestClock()
	g := newTestGateway(t, leaseConfig(clk), newFakeNode("static", &fakeCluster{}))
	n2 := newFakeNode("leased", &fakeCluster{})

	e, err := g.Announce(n2, member.Meta{Addr: "http://leased"})
	if err != nil {
		t.Fatal(err)
	}
	if e.State != member.StateWarming || e.Weight != 0.5 {
		t.Fatalf("fresh announce converged to %v/%g, want warming/0.5", e.State, e.Weight)
	}
	if !nodesOf(g)["leased"] {
		t.Fatal("warming member missing from ring")
	}

	// One renewal completes the 2-window ramp.
	if e, err = g.Renew("leased", 0); err != nil || e.State != member.StateActive || e.Weight != 1 {
		t.Fatalf("renewal: %+v err=%v, want active/1", e, err)
	}

	// Heartbeats stop: suspect past SuspectAfter (still routable), expired
	// past LeaseTTL (off the ring).
	clk.advance(500 * time.Millisecond)
	g.SweepMembership()
	if !nodesOf(g)["leased"] {
		t.Fatal("suspect member must stay routable")
	}
	clk.advance(600 * time.Millisecond)
	g.SweepMembership()
	if nodesOf(g)["leased"] {
		t.Fatal("expired member still on the ring")
	}
	if _, err := g.Renew("leased", 0); !errors.Is(err, member.ErrUnknown) {
		t.Fatalf("renew of expired lease: %v, want ErrUnknown", err)
	}

	// Nothing routes to the expired member, ever.
	for i := 0; i < 200; i++ {
		info, err := g.Execute(context.Background(), gateway.Key{Digest: uint64(i), HasDigest: true},
			func(context.Context, gateway.Node, bool) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if info.Node != "static" {
			t.Fatalf("key %d routed to %s after expiry", i, info.Node)
		}
	}

	// Rejoin: fresh lease, fresh ramp, counted.
	if e, err = g.Announce(n2, member.Meta{Addr: "http://leased"}); err != nil || e.State != member.StateWarming {
		t.Fatalf("rejoin: %+v err=%v", e, err)
	}
	if !nodesOf(g)["leased"] {
		t.Fatal("rejoined member missing from ring")
	}
	snap := g.Snapshot()
	if snap.LeasesGranted != 2 || snap.LeaseExpirations != 1 || snap.Rejoins != 1 {
		t.Fatalf("lease counters: granted=%d expired=%d rejoins=%d",
			snap.LeasesGranted, snap.LeaseExpirations, snap.Rejoins)
	}
	var leased *gateway.NodeStatus
	for i := range snap.Nodes {
		if snap.Nodes[i].ID == "leased" {
			leased = &snap.Nodes[i]
		}
	}
	if leased == nil || leased.State != "warming" || leased.Weight != 0.5 {
		t.Fatalf("snapshot status: %+v, want warming/0.5", leased)
	}
}

// Graceful leave takes the member off the ring immediately and exactly
// once; a re-announce afterwards is a rejoin.
func TestGracefulLeave(t *testing.T) {
	clk := newTestClock()
	g := newTestGateway(t, leaseConfig(clk), newFakeNode("static", &fakeCluster{}))
	n2 := newFakeNode("leased", &fakeCluster{})
	if _, err := g.Announce(n2, member.Meta{}); err != nil {
		t.Fatal(err)
	}
	if !g.Leave("leased") {
		t.Fatal("leave of a live member reported false")
	}
	if g.Leave("leased") {
		t.Fatal("double leave reported true")
	}
	if nodesOf(g)["leased"] {
		t.Fatal("left member still on the ring")
	}
	// A left member never "expires" on top of its leave.
	clk.advance(time.Hour)
	g.SweepMembership()
	snap := g.Snapshot()
	if snap.GracefulLeaves != 1 || snap.LeaseExpirations != 0 {
		t.Fatalf("leave counters: leaves=%d expirations=%d", snap.GracefulLeaves, snap.LeaseExpirations)
	}
	if _, err := g.Announce(n2, member.Meta{}); err != nil {
		t.Fatal(err)
	}
	if g.Snapshot().Rejoins != 1 {
		t.Fatal("re-announce after leave not counted as rejoin")
	}
}

// A member announcing behind the cluster's committed registry epoch is
// admitted but not routable until its epoch converges — a rebooted shard
// with stale models must not serve old-version traffic.
func TestAnnounceGatedOnCommittedEpoch(t *testing.T) {
	clk := newTestClock()
	cl := &fakeCluster{}
	g := newTestGateway(t, leaseConfig(clk), newFakeNode("static", cl))

	// Drive the committed epoch to 2 (fakeNodes start at epoch 1).
	if ep, err := g.Propagate(context.Background(), gateway.Change{Op: gateway.OpPublish, Payload: "v2"}); err != nil || ep != 2 {
		t.Fatalf("propagate: epoch=%d err=%v", ep, err)
	}

	stale := newFakeNode("stale", cl) // epoch 1 < committed 2
	e, err := g.Announce(stale, member.Meta{Epoch: 1})
	if err != nil || e.State != member.StateJoining {
		t.Fatalf("stale announce: %+v err=%v, want joining", e, err)
	}
	if nodesOf(g)["stale"] {
		t.Fatal("epoch-gated member routable before convergence")
	}

	// The shard catches up and says so on its next heartbeat.
	if e, err = g.Renew("stale", 2); err != nil || e.State != member.StateWarming {
		t.Fatalf("converged renew: %+v err=%v, want warming", e, err)
	}
	if !nodesOf(g)["stale"] {
		t.Fatal("converged member missing from ring")
	}
}

// Fleet-level churn bound: a leased member joining an n-node fleet takes
// over only ~K/(n+1) of the key space once fully ramped, and every key it
// does not own keeps its owner through join, leave, and rejoin.
func TestMembershipChurnBound(t *testing.T) {
	clk := newTestClock()
	cfg := leaseConfig(clk)
	cfg.RampWindows = 1 // full weight on announce: isolates join churn
	const n, K = 5, 4000
	cl := &fakeCluster{}
	statics := make([]gateway.Node, n)
	for i := range statics {
		statics[i] = newFakeNode(fmt.Sprintf("node-%02d", i), cl)
	}
	g := newTestGateway(t, cfg, statics...)

	ownerOf := func(k int) string {
		info, err := g.Execute(context.Background(), gateway.Key{Digest: uint64(k)*2654435761 + 1, HasDigest: true},
			func(context.Context, gateway.Node, bool) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return info.Node
	}
	before := make([]string, K)
	for k := range before {
		before[k] = ownerOf(k)
	}

	joiner := newFakeNode("joiner", cl)
	if _, err := g.Announce(joiner, member.Meta{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := 0; k < K; k++ {
		after := ownerOf(k)
		if after != before[k] {
			moved++
			if after != "joiner" {
				t.Fatalf("key %d moved between old members (%s -> %s) on join", k, before[k], after)
			}
		}
	}
	limit := K * 16 / (10 * (n + 1)) // 1.6 × fair share
	if moved == 0 || moved > limit {
		t.Fatalf("join remapped %d of %d keys, want (0, %d]", moved, K, limit)
	}

	// Leave and rejoin restore the exact same routing: placement depends
	// only on the member id, not join order or lease history.
	g.Leave("joiner")
	for k := 0; k < K; k++ {
		if got := ownerOf(k); got != before[k] {
			t.Fatalf("key %d owned by %s after leave, was %s", k, got, before[k])
		}
	}
	if _, err := g.Announce(joiner, member.Meta{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	remapped := 0
	for k := 0; k < K; k++ {
		if ownerOf(k) != before[k] {
			remapped++
		}
	}
	if remapped != moved {
		t.Fatalf("rejoin remapped %d keys, join had remapped %d — placement not id-stable", remapped, moved)
	}
}

// Retry budget: with a flapping shard and the budget nearly dry, failover
// retries are bounded by the bucket depth and the excess requests fail
// with ErrRetryBudget instead of amplifying onto the survivors.
func TestRetryBudgetBoundsFailover(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:     64,
		MaxRetries:       2,
		RetryBudgetRate:  1e-9, // no refill within the test
		RetryBudgetBurst: 3,
	}
	cl := &fakeCluster{}
	g := newTestGateway(t, cfg, newFakeNode("a", cl), newFakeNode("b", cl))

	flaky := errors.New("flap")
	var budgetFails int
	for i := 0; i < 20; i++ {
		_, err := g.Execute(context.Background(), gateway.Key{Digest: uint64(i), HasDigest: true},
			func(_ context.Context, n gateway.Node, _ bool) error {
				if n.ID() == "a" {
					return &gateway.NodeError{Class: gateway.ClassNodeDown, Err: flaky}
				}
				return nil
			})
		if errors.Is(err, gateway.ErrRetryBudget) {
			if !errors.Is(err, flaky) {
				t.Fatalf("budget error lost the shard's last error: %v", err)
			}
			budgetFails++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	snap := g.Snapshot()
	if snap.Retries > 3 {
		t.Fatalf("%d failover retries, budget burst was 3", snap.Retries)
	}
	if budgetFails == 0 || snap.RetryBudgetExhausted == 0 {
		t.Fatalf("budget never reported exhaustion: fails=%d counter=%d", budgetFails, snap.RetryBudgetExhausted)
	}
}

// Retry-After honor: an overloaded shard's advertised horizon (capped at
// RetryBackoffMax) paces the failover instead of immediately re-landing
// the work one ring position over.
func TestFailoverHonorsRetryAfter(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:    64,
		MaxRetries:      1,
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 150 * time.Millisecond,
	}
	cl := &fakeCluster{}
	g := newTestGateway(t, cfg, newFakeNode("a", cl), newFakeNode("b", cl))

	start := time.Now()
	var served string
	info, err := g.Execute(context.Background(), gateway.Key{Digest: 7, HasDigest: true},
		func(_ context.Context, n gateway.Node, _ bool) error {
			if served == "" {
				served = n.ID()
				return &gateway.NodeError{Class: gateway.ClassOverload, RetryAfter: time.Second, Err: errors.New("429")}
			}
			return nil
		})
	elapsed := time.Since(start)
	if err != nil || info.Attempts != 2 {
		t.Fatalf("failover: attempts=%d err=%v", info.Attempts, err)
	}
	if elapsed < 150*time.Millisecond {
		t.Fatalf("failover after %v, want >= capped Retry-After (150ms)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("failover after %v: the 1s hint must be capped at 150ms", elapsed)
	}
}

// Per-attempt deadline: a blackholed shard (accepts, never answers) costs
// a request one AttemptTimeout slice, then the attempt reclassifies as a
// node failure and fails over — while a request whose own deadline expired
// is not retried at all.
func TestAttemptTimeoutFailsOver(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:   64,
		MaxRetries:     1,
		FailThreshold:  1,
		EjectFor:       time.Minute,
		AttemptTimeout: 40 * time.Millisecond,
	}
	cl := &fakeCluster{}
	g := newTestGateway(t, cfg, newFakeNode("a", cl), newFakeNode("b", cl))

	var first atomic.Value
	do := func(ctx context.Context, n gateway.Node, _ bool) error {
		if first.CompareAndSwap(nil, n.ID()) || first.Load() == n.ID() {
			<-ctx.Done() // blackhole: hold the request until its slice expires
			return ctx.Err()
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	info, err := g.Execute(ctx, gateway.Key{Digest: 7, HasDigest: true}, do)
	if err != nil || info.Attempts != 2 {
		t.Fatalf("blackholed attempt: attempts=%d err=%v", info.Attempts, err)
	}
	// The blackholed shard took a down-class failure and (FailThreshold 1)
	// is now ejected.
	for _, ns := range g.Snapshot().Nodes {
		if ns.ID == first.Load().(string) && !ns.Ejected {
			t.Fatalf("blackholed shard %s not ejected: %+v", ns.ID, ns)
		}
	}

	// A request that spent its own deadline is the caller's loss: no
	// failover, the ctx error comes back.
	sctx, scancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer scancel()
	_, err = g.Execute(sctx, gateway.Key{Digest: 7, HasDigest: true},
		func(ctx context.Context, _ gateway.Node, _ bool) error {
			<-ctx.Done()
			return ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("spent-deadline request: %v, want DeadlineExceeded", err)
	}
}

// Announce/renew/leave/sweep/route under full concurrency: the -race
// hammer for the membership path. A static core member keeps the ring
// non-empty, so every request must succeed.
func TestMembershipConcurrentChurn(t *testing.T) {
	cfg := gateway.Config{
		VirtualNodes:  32,
		MaxRetries:    1,
		LeaseTTL:      60 * time.Millisecond,
		SuspectAfter:  20 * time.Millisecond,
		RampWindows:   2,
		SweepInterval: 5 * time.Millisecond,
	}
	cl := &fakeCluster{}
	g := newTestGateway(t, cfg, newFakeNode("core", cl))

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Three leased members renew on a heartbeat, but flicker: each
	// periodically pauses long enough to expire, then re-announces.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("leased-%d", i)
			n := newFakeNode(id, cl)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := g.Renew(id, 1); err != nil {
					if _, aerr := g.Announce(n, member.Meta{Epoch: 1}); aerr != nil {
						t.Errorf("announce %s: %v", id, aerr)
						return
					}
				}
				d := time.Duration(rand.N(15)) * time.Millisecond
				if rand.N(10) == 0 {
					d = 100 * time.Millisecond // miss the lease: expire + rejoin
				}
				select {
				case <-stop:
					return
				case <-time.After(d):
				}
			}
		}(i)
	}

	// One member churns through announce/leave cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := newFakeNode("churner", cl)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := g.Announce(n, member.Meta{Epoch: 1}); err != nil {
				t.Errorf("churner announce: %v", err)
				return
			}
			time.Sleep(time.Duration(rand.N(5)) * time.Millisecond)
			g.Leave("churner")
		}
	}()

	// Executors hammer the routing path throughout.
	var routed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := g.Execute(context.Background(),
					gateway.Key{Digest: uint64(w*1_000_003 + i), HasDigest: true},
					func(context.Context, gateway.Node, bool) error { return nil })
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				routed.Add(1)
			}
		}(w)
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if routed.Load() == 0 {
		t.Fatal("hammer routed nothing")
	}
	snap := g.Snapshot()
	if snap.Failed != 0 {
		t.Fatalf("%d requests failed during churn", snap.Failed)
	}
	t.Logf("hammer: routed=%d leases=%d renewals=%d expirations=%d rejoins=%d leaves=%d",
		routed.Load(), snap.LeasesGranted, snap.LeaseRenewals, snap.LeaseExpirations, snap.Rejoins, snap.GracefulLeaves)
}
