package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"itask/internal/gateway"
	"itask/internal/serve"
)

// tenantCfg is a static, probe-free gateway configuration so tenant tests
// observe only the routing decisions they drive.
func tenantCfg() gateway.Config {
	cfg := gateway.DefaultConfig()
	cfg.ProbeInterval = 0
	cfg.LeaseTTL = 0
	cfg.SuspectAfter = 0
	cfg.LoadFactor = 0
	cfg.HotThreshold = 0
	cfg.RetryBackoff = 0
	return cfg
}

func tenantRow(snap gateway.Snapshot, tenant string) (gateway.TenantStatus, bool) {
	for _, ts := range snap.PerTenant {
		if ts.Tenant == tenant {
			return ts, true
		}
	}
	return gateway.TenantStatus{}, false
}

// Every Execute outcome lands in the right tenant's row: successes and
// request-faults count as routed, exhausted attempts as failed, and an
// unlabeled request books under the serve layer's default tenant.
func TestTenantAttributionInSnapshot(t *testing.T) {
	g, err := gateway.New(tenantCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl := &fakeCluster{}
	for _, id := range []string{"n1", "n2"} {
		if err := g.AddNode(newFakeNode(id, cl)); err != nil {
			t.Fatal(err)
		}
	}

	ok := func(context.Context, gateway.Node, bool) error { return nil }
	for i := 0; i < 2; i++ {
		if _, err := g.Execute(context.Background(), gateway.Key{Task: "patrol", Tenant: "a"}, ok); err != nil {
			t.Fatal(err)
		}
	}
	// A request-class failure is the tenant's own content at fault; the node
	// answered, so it still counts as routed.
	badContent := func(context.Context, gateway.Node, bool) error {
		return &gateway.NodeError{Class: gateway.ClassRequest, Err: errors.New("poison")}
	}
	if _, err := g.Execute(context.Background(), gateway.Key{Task: "patrol", Tenant: "b"}, badContent); err == nil {
		t.Fatal("request-class error swallowed")
	}
	if _, err := g.Execute(context.Background(), gateway.Key{Task: "patrol"}, ok); err != nil {
		t.Fatal(err)
	}
	// Every attempt down-classes: tenant c's request exhausts the fleet.
	down := func(context.Context, gateway.Node, bool) error {
		return &gateway.NodeError{Class: gateway.ClassNodeDown, Err: errors.New("refused")}
	}
	if _, err := g.Execute(context.Background(), gateway.Key{Task: "patrol", Tenant: "c"}, down); err == nil {
		t.Fatal("fleet-wide failure swallowed")
	}

	snap := g.Snapshot()
	want := map[string]struct{ routed, failed uint64 }{
		"a": {2, 0}, "b": {1, 0}, "c": {0, 1}, serve.DefaultTenant: {1, 0},
	}
	if len(snap.PerTenant) != len(want) {
		t.Fatalf("PerTenant rows = %+v, want %d tenants", snap.PerTenant, len(want))
	}
	for tenant, w := range want {
		row, found := tenantRow(snap, tenant)
		if !found {
			t.Fatalf("no PerTenant row for %q: %+v", tenant, snap.PerTenant)
		}
		if row.Routed != w.routed || row.Failed != w.failed {
			t.Errorf("tenant %s routed/failed = %d/%d, want %d/%d", tenant, row.Routed, row.Failed, w.routed, w.failed)
		}
		if row.InFlight != 0 {
			t.Errorf("tenant %s InFlight = %d after all requests returned", tenant, row.InFlight)
		}
	}
	// Rows come sorted by tenant id for stable /metricsz output.
	for i := 1; i < len(snap.PerTenant); i++ {
		if snap.PerTenant[i-1].Tenant >= snap.PerTenant[i].Tenant {
			t.Fatalf("PerTenant not sorted: %+v", snap.PerTenant)
		}
	}
}

// KeyFor carries the request's tenant for accounting without letting it
// touch placement: the same frame from two tenants must share one shard.
func TestKeyForCarriesTenant(t *testing.T) {
	req := serve.Request{Task: "patrol", Image: img(1), Tenant: "acme"}
	k := gateway.KeyFor(req)
	if k.Tenant != "acme" || !k.HasDigest {
		t.Fatalf("KeyFor = %+v, want digestable key with tenant acme", k)
	}
	other := req
	other.Tenant = "rival"
	if ko := gateway.KeyFor(other); ko.Digest != k.Digest {
		t.Fatalf("tenant changed the content digest: %d vs %d", ko.Digest, k.Digest)
	}
}

// A tenant holding most of the fleet's in-flight work loses the hot-replica
// spread: its requests pin to the ring owner while it stays dominant, and
// the spread returns once the flood drains.
func TestDominantTenantPinnedToOwner(t *testing.T) {
	cfg := tenantCfg()
	cfg.HotThreshold = 1
	cfg.HotReplicas = 2
	cfg.MaxRetries = 0
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl := &fakeCluster{}
	for _, id := range []string{"n1", "n2", "n3"} {
		if err := g.AddNode(newFakeNode(id, cl)); err != nil {
			t.Fatal(err)
		}
	}

	hotKey := gateway.Key{Digest: 42, HasDigest: true, Task: "patrol", Tenant: "flood"}
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	var wg sync.WaitGroup
	hold := func(k gateway.Key) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = g.Execute(context.Background(), k, func(context.Context, gateway.Node, bool) error {
				started <- struct{}{}
				<-gate
				return nil
			})
		}()
	}
	// flood parks 7 requests in flight; one bystander keeps a second tenant
	// in flight (a lone tenant, however loaded, is never "dominant" — there
	// is no one to protect capacity for).
	for i := 0; i < 7; i++ {
		hold(hotKey)
	}
	hold(gateway.Key{Digest: 43, HasDigest: true, Task: "patrol", Tenant: "bystander"})
	for i := 0; i < 8; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("held requests never reached their nodes")
		}
	}

	// While dominant, every flood request for the hot digest lands on one
	// node — the digest's ring owner — instead of p2c-spreading.
	pinned := map[string]int{}
	for i := 0; i < 30; i++ {
		info, err := g.Execute(context.Background(), hotKey, func(context.Context, gateway.Node, bool) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		pinned[info.Node]++
	}
	if len(pinned) != 1 {
		t.Fatalf("dominant tenant spread across %v, want a single pinned owner", pinned)
	}
	if row, _ := tenantRow(g.Snapshot(), "flood"); row.Dominated < 30 {
		t.Errorf("flood Dominated = %d, want >= 30", row.Dominated)
	}
	if row, _ := tenantRow(g.Snapshot(), "bystander"); row.Dominated != 0 {
		t.Errorf("bystander Dominated = %d, want 0", row.Dominated)
	}

	close(gate)
	wg.Wait()

	// Flood drained: the same tenant's hot requests spread over the replica
	// set again (p2c pair rotation round-robins an idle fleet).
	spread := map[string]int{}
	for i := 0; i < 20; i++ {
		info, err := g.Execute(context.Background(), hotKey, func(context.Context, gateway.Node, bool) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		spread[info.Node]++
	}
	if len(spread) < 2 {
		t.Fatalf("post-drain hot routing used %v, want p2c spread over >= 2 replicas", spread)
	}
}

// The attribution table is bounded: past maxTenantRows distinct ids, new
// tenants aggregate under the overflow row instead of growing the table on
// hostile id churn.
func TestTenantTableBounded(t *testing.T) {
	g, err := gateway.New(tenantCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AddNode(newFakeNode("n1", &fakeCluster{})); err != nil {
		t.Fatal(err)
	}
	ok := func(context.Context, gateway.Node, bool) error { return nil }
	const churn = 1100
	for i := 0; i < churn; i++ {
		k := gateway.Key{Task: "patrol", Tenant: fmt.Sprintf("t%04d", i)}
		if _, err := g.Execute(context.Background(), k, ok); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.Snapshot()
	if len(snap.PerTenant) > 1025 {
		t.Fatalf("tenant table grew to %d rows on id churn", len(snap.PerTenant))
	}
	over, found := tenantRow(snap, "~overflow")
	if !found || over.Routed == 0 {
		t.Fatalf("overflow row missing or empty: %+v (rows %d)", over, len(snap.PerTenant))
	}
	var total uint64
	for _, ts := range snap.PerTenant {
		total += ts.Routed
	}
	if total != churn {
		t.Fatalf("attributed %d requests across rows, want %d", total, churn)
	}
}
