package track

import "itask/internal/geom"

// GT is one ground-truth object in one frame, with its stable identity.
type GT struct {
	TrackID int
	Box     geom.Box
	Class   int
}

// Quality summarizes tracking performance over a sequence, MOT-style.
type Quality struct {
	// Recall is the fraction of GT boxes covered by a confirmed track.
	Recall float64
	// Precision is the fraction of emitted track boxes that cover a GT.
	Precision float64
	// IDSwitches counts frames where a GT identity changed tracker ID.
	IDSwitches int
	// MostlyTracked is the number of GT identities covered in >= 80% of
	// their frames.
	MostlyTracked int
	// GTIdentities is the number of distinct ground-truth tracks.
	GTIdentities int
}

// EvaluateTracking scores emitted tracks against per-frame ground truth.
// Matching is greedy best-IoU per frame at iouThresh, class-aware.
func EvaluateTracking(gtFrames [][]GT, outFrames [][]Track, iouThresh float64) Quality {
	if len(gtFrames) != len(outFrames) {
		panic("track: frame count mismatch")
	}
	var q Quality
	lastID := map[int]int{}  // GT track -> last tracker ID
	covered := map[int]int{} // GT track -> frames covered
	total := map[int]int{}   // GT track -> frames present
	var gtBoxes, matchedGT, outBoxes, matchedOut int

	for f := range gtFrames {
		gts := gtFrames[f]
		outs := outFrames[f]
		gtBoxes += len(gts)
		outBoxes += len(outs)
		for _, gt := range gts {
			total[gt.TrackID]++
		}
		type cand struct {
			gi, oi int
			iou    float64
		}
		var cands []cand
		for gi, gt := range gts {
			for oi, o := range outs {
				if o.Class != gt.Class {
					continue
				}
				if iou := geom.IoU(gt.Box, o.Box); iou >= iouThresh {
					cands = append(cands, cand{gi, oi, iou})
				}
			}
		}
		// Greedy best-IoU.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].iou > cands[j-1].iou; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		usedG := map[int]bool{}
		usedO := map[int]bool{}
		for _, c := range cands {
			if usedG[c.gi] || usedO[c.oi] {
				continue
			}
			usedG[c.gi] = true
			usedO[c.oi] = true
			matchedGT++
			matchedOut++
			gtID := gts[c.gi].TrackID
			trkID := outs[c.oi].ID
			if prev, seen := lastID[gtID]; seen && prev != trkID {
				q.IDSwitches++
			}
			lastID[gtID] = trkID
			covered[gtID]++
		}
	}
	if gtBoxes > 0 {
		q.Recall = float64(matchedGT) / float64(gtBoxes)
	}
	if outBoxes > 0 {
		q.Precision = float64(matchedOut) / float64(outBoxes)
	}
	q.GTIdentities = len(total)
	for id, n := range total {
		if float64(covered[id]) >= 0.8*float64(n) {
			q.MostlyTracked++
		}
	}
	return q
}
