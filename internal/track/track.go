// Package track implements a SORT-lite multi-object tracker over iTask
// detections: greedy IoU association against constant-velocity-extrapolated
// track states, with hit/miss lifecycle management. It supports the
// streaming deployments the paper motivates (patrol, monitoring) where
// per-frame detections must become stable object identities.
package track

import (
	"fmt"
	"sort"

	"itask/internal/geom"
)

// Track is one tracked object.
type Track struct {
	// ID is the stable track identity, assigned at confirmation.
	ID int
	// Box is the current (last associated or predicted) box.
	Box geom.Box
	// Class is the majority-vote class of the track's detections.
	Class int
	// Score is an exponential moving average of detection scores.
	Score float64
	// Hits counts associated detections; Misses counts consecutive frames
	// without one; Age counts frames since creation.
	Hits, Misses, Age int

	vx, vy     float64
	classVotes map[int]int
	confirmed  bool
}

// Confirmed reports whether the track has enough hits to be emitted.
func (t *Track) Confirmed() bool { return t.confirmed }

// predict extrapolates the box one frame with the velocity estimate.
func (t *Track) predict() geom.Box {
	b := t.Box
	b.X += t.vx
	b.Y += t.vy
	return b.Clip()
}

// Config tunes the tracker.
type Config struct {
	// IoUThresh is the minimum overlap for association.
	IoUThresh float64
	// MaxMisses is the consecutive-miss count after which a track dies.
	MaxMisses int
	// MinHits is the hit count needed to confirm (emit) a track.
	MinHits int
	// VelocitySmoothing is the EMA factor for velocity updates in (0,1];
	// 1 means use only the latest displacement.
	VelocitySmoothing float64
}

// DefaultConfig returns settings tuned for the 30-frame synthetic videos.
func DefaultConfig() Config {
	return Config{IoUThresh: 0.25, MaxMisses: 3, MinHits: 2, VelocitySmoothing: 0.5}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.IoUThresh <= 0 || c.IoUThresh >= 1:
		return fmt.Errorf("track: IoU threshold %v", c.IoUThresh)
	case c.MaxMisses < 0 || c.MinHits < 1:
		return fmt.Errorf("track: lifecycle config %d/%d", c.MaxMisses, c.MinHits)
	case c.VelocitySmoothing <= 0 || c.VelocitySmoothing > 1:
		return fmt.Errorf("track: velocity smoothing %v", c.VelocitySmoothing)
	}
	return nil
}

// Tracker maintains track state across frames. Not safe for concurrent use.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int
	// IDSwitchesSeen is incremented by the evaluation helper, not the
	// tracker itself.
	frames int
}

// New creates a tracker.
func New(cfg Config) *Tracker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tracker{cfg: cfg, nextID: 1}
}

// Update associates one frame's detections with existing tracks (greedy,
// best IoU first, same class only), spawns tentative tracks for unmatched
// detections, ages out stale tracks, and returns the confirmed tracks.
func (tr *Tracker) Update(dets []geom.Scored) []Track {
	tr.frames++
	type cand struct {
		ti, di int
		iou    float64
	}
	var cands []cand
	for ti, t := range tr.tracks {
		pred := t.predict()
		for di, d := range dets {
			if d.Class != t.Class && t.confirmed {
				continue
			}
			if iou := geom.IoU(pred, d.Box); iou >= tr.cfg.IoUThresh {
				cands = append(cands, cand{ti, di, iou})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].iou > cands[j].iou })
	usedT := map[int]bool{}
	usedD := map[int]bool{}
	for _, c := range cands {
		if usedT[c.ti] || usedD[c.di] {
			continue
		}
		usedT[c.ti] = true
		usedD[c.di] = true
		tr.associate(tr.tracks[c.ti], dets[c.di])
	}
	// Unmatched tracks: miss.
	for ti, t := range tr.tracks {
		if usedT[ti] {
			continue
		}
		t.Misses++
		t.Age++
		// Coast on the velocity estimate.
		t.Box = t.predict()
	}
	// Unmatched detections: tentative tracks.
	for di, d := range dets {
		if usedD[di] {
			continue
		}
		tr.tracks = append(tr.tracks, &Track{
			Box: d.Box, Class: d.Class, Score: d.Score,
			Hits: 1, Age: 1,
			classVotes: map[int]int{d.Class: 1},
		})
	}
	// Reap dead tracks.
	alive := tr.tracks[:0]
	for _, t := range tr.tracks {
		if t.Misses <= tr.cfg.MaxMisses {
			alive = append(alive, t)
		}
	}
	tr.tracks = alive

	// Emit confirmed tracks.
	var out []Track
	for _, t := range tr.tracks {
		if t.Hits >= tr.cfg.MinHits && t.Misses == 0 {
			if !t.confirmed {
				t.confirmed = true
				t.ID = tr.nextID
				tr.nextID++
			}
			out = append(out, *t)
		}
	}
	return out
}

// associate folds a detection into a track.
func (tr *Tracker) associate(t *Track, d geom.Scored) {
	s := tr.cfg.VelocitySmoothing
	dx := d.Box.X - t.Box.X
	dy := d.Box.Y - t.Box.Y
	if t.Hits > 0 {
		t.vx = (1-s)*t.vx + s*dx
		t.vy = (1-s)*t.vy + s*dy
	}
	t.Box = d.Box
	t.Score = 0.7*t.Score + 0.3*d.Score
	t.Hits++
	t.Misses = 0
	t.Age++
	t.classVotes[d.Class]++
	// Majority class (ties broken by smaller class id for determinism).
	best, bestN := t.Class, 0
	for cls, n := range t.classVotes {
		if n > bestN || (n == bestN && cls < best) {
			best, bestN = cls, n
		}
	}
	t.Class = best
}

// ActiveTracks returns the number of live (confirmed or tentative) tracks.
func (tr *Tracker) ActiveTracks() int { return len(tr.tracks) }

// Frames returns how many frames have been processed.
func (tr *Tracker) Frames() int { return tr.frames }
