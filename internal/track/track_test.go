package track

import (
	"testing"

	"itask/internal/geom"
)

func det(x, y, w, h float64, class int, score float64) geom.Scored {
	return geom.Scored{Box: geom.Box{X: x, Y: y, W: w, H: h}, Class: class, Score: score}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{IoUThresh: 0, MaxMisses: 1, MinHits: 1, VelocitySmoothing: 0.5},
		{IoUThresh: 0.5, MaxMisses: -1, MinHits: 1, VelocitySmoothing: 0.5},
		{IoUThresh: 0.5, MaxMisses: 1, MinHits: 0, VelocitySmoothing: 0.5},
		{IoUThresh: 0.5, MaxMisses: 1, MinHits: 1, VelocitySmoothing: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed", i)
		}
	}
}

func TestTrackConfirmationLifecycle(t *testing.T) {
	tr := New(DefaultConfig()) // MinHits 2
	// First frame: tentative, nothing emitted.
	out := tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 1, 0.9)})
	if len(out) != 0 {
		t.Fatalf("tentative track emitted: %+v", out)
	}
	// Second frame: confirmed.
	out = tr.Update([]geom.Scored{det(0.51, 0.5, 0.2, 0.2, 1, 0.9)})
	if len(out) != 1 {
		t.Fatalf("expected 1 confirmed track, got %d", len(out))
	}
	if out[0].ID != 1 || out[0].Class != 1 {
		t.Errorf("track = %+v", out[0])
	}
}

func TestTrackStableIdentity(t *testing.T) {
	tr := New(DefaultConfig())
	var id int
	for f := 0; f < 10; f++ {
		x := 0.2 + 0.02*float64(f) // moving right
		out := tr.Update([]geom.Scored{det(x, 0.5, 0.2, 0.2, 0, 0.9)})
		if f >= 1 {
			if len(out) != 1 {
				t.Fatalf("frame %d: %d tracks", f, len(out))
			}
			if id == 0 {
				id = out[0].ID
			} else if out[0].ID != id {
				t.Fatalf("identity switched at frame %d", f)
			}
		}
	}
}

func TestTrackSurvivesShortOcclusion(t *testing.T) {
	cfg := DefaultConfig() // MaxMisses 3
	tr := New(cfg)
	tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 0, 0.9)})
	out := tr.Update([]geom.Scored{det(0.52, 0.5, 0.2, 0.2, 0, 0.9)})
	id := out[0].ID
	// Two missed frames (occlusion).
	tr.Update(nil)
	tr.Update(nil)
	// Reappears roughly where velocity predicts.
	out = tr.Update([]geom.Scored{det(0.58, 0.5, 0.2, 0.2, 0, 0.9)})
	if len(out) != 1 || out[0].ID != id {
		t.Fatalf("track lost across occlusion: %+v", out)
	}
}

func TestTrackDiesAfterMaxMisses(t *testing.T) {
	tr := New(DefaultConfig())
	tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 0, 0.9)})
	tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 0, 0.9)})
	for i := 0; i < 4; i++ { // > MaxMisses
		tr.Update(nil)
	}
	if tr.ActiveTracks() != 0 {
		t.Errorf("stale track survived: %d active", tr.ActiveTracks())
	}
	// A new object gets a NEW id.
	tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 0, 0.9)})
	out := tr.Update([]geom.Scored{det(0.5, 0.5, 0.2, 0.2, 0, 0.9)})
	if len(out) != 1 || out[0].ID == 1 {
		t.Errorf("resurrected id: %+v", out)
	}
}

func TestTwoObjectsTwoTracks(t *testing.T) {
	tr := New(DefaultConfig())
	frame := []geom.Scored{
		det(0.25, 0.25, 0.2, 0.2, 0, 0.9),
		det(0.75, 0.75, 0.2, 0.2, 1, 0.8),
	}
	tr.Update(frame)
	out := tr.Update(frame)
	if len(out) != 2 {
		t.Fatalf("expected 2 tracks, got %d", len(out))
	}
	if out[0].ID == out[1].ID {
		t.Error("distinct objects share an ID")
	}
}

func TestEvaluateTrackingPerfect(t *testing.T) {
	// Build GT and emitted tracks that agree exactly.
	var gtFrames [][]GT
	var outFrames [][]Track
	for f := 0; f < 5; f++ {
		x := 0.3 + 0.05*float64(f)
		gtFrames = append(gtFrames, []GT{{TrackID: 7, Box: geom.Box{X: x, Y: 0.5, W: 0.2, H: 0.2}, Class: 2}})
		outFrames = append(outFrames, []Track{{ID: 1, Box: geom.Box{X: x, Y: 0.5, W: 0.2, H: 0.2}, Class: 2}})
	}
	q := EvaluateTracking(gtFrames, outFrames, 0.5)
	if q.Recall != 1 || q.Precision != 1 || q.IDSwitches != 0 || q.MostlyTracked != 1 {
		t.Errorf("perfect tracking misjudged: %+v", q)
	}
}

func TestEvaluateTrackingIDSwitch(t *testing.T) {
	box := geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	gtFrames := [][]GT{
		{{TrackID: 1, Box: box, Class: 0}},
		{{TrackID: 1, Box: box, Class: 0}},
		{{TrackID: 1, Box: box, Class: 0}},
	}
	outFrames := [][]Track{
		{{ID: 10, Box: box, Class: 0}},
		{{ID: 11, Box: box, Class: 0}}, // switch!
		{{ID: 11, Box: box, Class: 0}},
	}
	q := EvaluateTracking(gtFrames, outFrames, 0.5)
	if q.IDSwitches != 1 {
		t.Errorf("IDSwitches = %d, want 1", q.IDSwitches)
	}
}

func TestEvaluateTrackingMisses(t *testing.T) {
	box := geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	gtFrames := [][]GT{
		{{TrackID: 1, Box: box, Class: 0}},
		{{TrackID: 1, Box: box, Class: 0}},
	}
	outFrames := [][]Track{
		{{ID: 1, Box: box, Class: 0}},
		{}, // missed frame
	}
	q := EvaluateTracking(gtFrames, outFrames, 0.5)
	if q.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", q.Recall)
	}
	// 1 of 2 frames covered = 50% < 80%: not mostly tracked.
	if q.MostlyTracked != 0 {
		t.Errorf("MostlyTracked = %d, want 0", q.MostlyTracked)
	}
}

func TestEvaluateTrackingClassAware(t *testing.T) {
	box := geom.Box{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	gtFrames := [][]GT{{{TrackID: 1, Box: box, Class: 0}}}
	outFrames := [][]Track{{{ID: 1, Box: box, Class: 3}}} // wrong class
	q := EvaluateTracking(gtFrames, outFrames, 0.5)
	if q.Recall != 0 || q.Precision != 0 {
		t.Errorf("wrong-class match accepted: %+v", q)
	}
}
