package sched

import (
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// registerPair registers a generalist and one student for task "patrol" on
// a fresh scheduler. detect may be nil for a harmless stub.
func registerPair(t *testing.T, budget int64, detect DetectFunc) *Scheduler {
	t.Helper()
	if detect == nil {
		detect = func(img *tensor.Tensor) []geom.Scored { return nil }
	}
	s := New(budget)
	if err := s.Register(Model{Name: "gen", Kind: Generalist, Bytes: 400, Detect: detect}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Model{Name: "patrol-student", Kind: TaskSpecific, Task: "patrol", Bytes: 600, Detect: detect}); err != nil {
		t.Fatal(err)
	}
	return s
}

// A variant that errors during serving must not stay cached as healthy:
// Evict drops it, and the next selection is a miss that reloads the
// weights from storage.
func TestEvictedVariantNotCachedAsHealthy(t *testing.T) {
	s := registerPair(t, 2000, nil)
	m, err := s.SelectByName("patrol-student")
	if err != nil {
		t.Fatal(err)
	}
	id := m.ID.String()
	if got := s.Resident(); len(got) != 1 || got[0] != id {
		t.Fatalf("resident = %v, want [%s]", got, id)
	}
	before := s.Stats()

	// The serving layer saw the routed variant panic: quarantine its
	// resident weights. Evict accepts bare names as well as full IDs.
	if !s.Evict("patrol-student") {
		t.Fatal("Evict reported non-resident for a resident model")
	}
	for _, got := range s.Resident() {
		if got == id {
			t.Fatal("errored variant still resident after Evict")
		}
	}
	after := s.Stats()
	if after.QuarantineEvictions != before.QuarantineEvictions+1 {
		t.Errorf("QuarantineEvictions = %d, want %d", after.QuarantineEvictions, before.QuarantineEvictions+1)
	}
	if after.Evictions != before.Evictions {
		t.Errorf("LRU Evictions = %d, want %d (quarantine must not count as budget churn)",
			after.Evictions, before.Evictions)
	}

	// Re-selecting must be a miss (fresh load), not a hit on the stale
	// entry.
	if _, err := s.SelectByName("patrol-student"); err != nil {
		t.Fatal(err)
	}
	final := s.Stats()
	if final.Misses != after.Misses+1 {
		t.Errorf("reload after evict: Misses = %d, want %d", final.Misses, after.Misses+1)
	}
	if final.BytesLoaded != after.BytesLoaded+600 {
		t.Errorf("BytesLoaded = %d, want %d (weights re-fetched)", final.BytesLoaded, after.BytesLoaded+600)
	}

	// Evicting a non-resident or unknown model is a no-op.
	if s.Evict("patrol-student-again") {
		t.Error("Evict reported true for unknown model")
	}
}

// Evicting one variant must not disturb other residents or the budget
// accounting: the freed bytes are reusable.
func TestEvictFreesBudgetForOthers(t *testing.T) {
	s := registerPair(t, 1000, nil) // gen(400) + student(600) exactly fill it
	if _, err := s.SelectByName("gen"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectByName("patrol-student"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Resident()); got != 2 {
		t.Fatalf("resident count = %d, want 2", got)
	}
	quarantinedBefore := s.Stats().QuarantineEvictions
	s.Evict("patrol-student")
	// Reloading the student must now fit without LRU-evicting gen.
	if _, err := s.SelectByName("patrol-student"); err != nil {
		t.Fatal(err)
	}
	resident := s.Resident()
	if len(resident) != 2 {
		t.Fatalf("resident = %v, want both models", resident)
	}
	st := s.Stats()
	if st.QuarantineEvictions != quarantinedBefore+1 {
		t.Errorf("QuarantineEvictions = %d, want %d (only the explicit one)", st.QuarantineEvictions, quarantinedBefore+1)
	}
	if st.Evictions != 0 {
		t.Errorf("LRU Evictions = %d, want 0 (the freed bytes made room)", st.Evictions)
	}
}

// SelectByName on an unknown variant errors without touching the cache.
func TestSelectByNameUnknownLeavesCacheAlone(t *testing.T) {
	s := registerPair(t, 2000, nil)
	if _, err := s.SelectByName("nope"); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	if st := s.Stats(); st.Hits+st.Misses != 0 {
		t.Errorf("cache touched by failed selection: %+v", st)
	}
	if got := s.Resident(); len(got) != 0 {
		t.Errorf("resident = %v, want empty", got)
	}
}

// RouteFallback names the generalist even when a task-specific student
// exists, and errors when none is registered or it cannot fit.
func TestRouteFallbackPrefersGeneralist(t *testing.T) {
	s := registerPair(t, 2000, nil)
	variant, err := s.RouteFallback(Request{Task: "patrol"})
	if err != nil {
		t.Fatal(err)
	}
	// RouteFallback pins a full artifact ID; it must resolve to the
	// generalist.
	m, ok := s.Lookup(variant)
	if !ok || m.Name != "gen" || m.Kind != Generalist {
		t.Errorf("fallback = %q (resolved %+v), want the generalist", variant, m)
	}
	// Latency budget applies to the fallback too.
	s2 := New(2000)
	if err := s2.Register(Model{Name: "gen", Kind: Generalist, Bytes: 400, LatencyUS: 500,
		Detect: func(img *tensor.Tensor) []geom.Scored { return nil }}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RouteFallback(Request{Task: "patrol", LatencyBudgetUS: 100}); err == nil {
		t.Error("over-budget fallback should be refused")
	}
	// No generalist at all.
	s3 := New(2000)
	if _, err := s3.RouteFallback(Request{Task: "patrol"}); err == nil {
		t.Error("fallback without generalist should error")
	}
}

// DetectBatchOn pins execution to the named variant regardless of the
// scheduler's routing preference.
func TestDetectBatchOnForcesVariant(t *testing.T) {
	var genCalls, studentCalls int
	s := New(2000)
	mk := func(counter *int) DetectFunc {
		return func(img *tensor.Tensor) []geom.Scored {
			*counter++
			return []geom.Scored{{Class: 1, Score: 0.5}}
		}
	}
	if err := s.Register(Model{Name: "gen", Kind: Generalist, Bytes: 400, Detect: mk(&genCalls)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Model{Name: "patrol-student", Kind: TaskSpecific, Task: "patrol", Bytes: 600, Detect: mk(&studentCalls)}); err != nil {
		t.Fatal(err)
	}
	imgs := []*tensor.Tensor{tensor.New(1), tensor.New(1)}
	// Routing prefers the student, but the degraded lane pins gen.
	dets, m, err := s.DetectBatchOn("gen", imgs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "gen" || genCalls != 2 || studentCalls != 0 {
		t.Errorf("forced variant: model=%q gen=%d student=%d", m.Name, genCalls, studentCalls)
	}
	if len(dets) != len(imgs) {
		t.Errorf("detections for %d images, want %d", len(dets), len(imgs))
	}
	if _, _, err := s.DetectBatchOn("missing", imgs); err == nil {
		t.Error("unknown variant should error")
	}
}
