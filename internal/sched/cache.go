// Package sched implements iTask's situational runtime: a registry of model
// variants (task-specific distilled students and the quantized multi-task
// generalist), an LRU model cache under an edge memory budget, and the
// selection policy that picks a configuration per mission request — the
// "situational adaptability" component of the paper.
package sched

import (
	"fmt"
)

// CacheStats counts cache behaviour for the runtime experiments.
type CacheStats struct {
	Hits, Misses, Evictions int
	// BytesLoaded is the cumulative weight traffic from storage to RAM.
	BytesLoaded int64
}

// lruCache is a byte-budgeted LRU of loaded models.
type lruCache struct {
	budget int64
	used   int64
	// order holds names from least to most recently used.
	order []string
	sizes map[string]int64
	stats CacheStats
}

func newLRUCache(budgetBytes int64) *lruCache {
	return &lruCache{budget: budgetBytes, sizes: map[string]int64{}}
}

// touch marks name as most recently used. It must be resident.
func (c *lruCache) touch(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), name)
			return
		}
	}
	panic(fmt.Sprintf("sched: touch of non-resident model %q", name))
}

// resident reports whether name is loaded.
func (c *lruCache) resident(name string) bool {
	_, ok := c.sizes[name]
	return ok
}

// ensure makes name resident, evicting LRU entries as needed, and returns
// whether it was a cache hit. Returns an error when the model alone exceeds
// the budget.
func (c *lruCache) ensure(name string, size int64) (hit bool, err error) {
	if c.resident(name) {
		c.stats.Hits++
		c.touch(name)
		return true, nil
	}
	if size > c.budget {
		return false, fmt.Errorf("sched: model %q (%d B) exceeds cache budget (%d B)", name, size, c.budget)
	}
	c.stats.Misses++
	for c.used+size > c.budget {
		victim := c.order[0]
		c.order = c.order[1:]
		c.used -= c.sizes[victim]
		delete(c.sizes, victim)
		c.stats.Evictions++
	}
	c.sizes[name] = size
	c.used += size
	c.order = append(c.order, name)
	c.stats.BytesLoaded += size
	return false, nil
}

// Resident returns the names of loaded models, LRU first.
func (c *lruCache) Resident() []string {
	return append([]string(nil), c.order...)
}
