// Package sched implements iTask's situational runtime: a registry of model
// variants (task-specific distilled students and the quantized multi-task
// generalist), an LRU model cache under an edge memory budget, and the
// selection policy that picks a configuration per mission request — the
// "situational adaptability" component of the paper.
package sched

import (
	"container/list"
	"fmt"
)

// CacheStats counts cache behaviour for the runtime experiments.
type CacheStats struct {
	// Hits, Misses, and Evictions account budget-driven behaviour:
	// Evictions counts only capacity-pressure LRU drops made to fit a load.
	Hits, Misses, Evictions int
	// QuarantineEvictions counts health-driven drops via Evict — variants
	// whose weights the serving layer stopped trusting after a panic or
	// hang. Kept separate from Evictions so /metricsz distinguishes budget
	// churn from fault quarantine.
	QuarantineEvictions int
	// BytesLoaded is the cumulative weight traffic from storage to RAM.
	BytesLoaded int64
}

// entry is one resident model in the LRU list.
type entry struct {
	name string
	size int64
}

// lruCache is a byte-budgeted LRU of loaded models. Recency order lives in a
// doubly-linked list (front = least recently used) with an index map from
// model name to list element, so touch/ensure are O(1) — the cache sits on
// the per-request hot path of the serving layer.
//
// lruCache is not self-synchronizing: the owning Scheduler's mutex guards
// every call.
type lruCache struct {
	budget int64
	used   int64
	// order lists *entry values from least to most recently used.
	order *list.List
	// index maps a resident model name to its list element.
	index map[string]*list.Element
	stats CacheStats
}

func newLRUCache(budgetBytes int64) *lruCache {
	return &lruCache{
		budget: budgetBytes,
		order:  list.New(),
		index:  map[string]*list.Element{},
	}
}

// touch marks name as most recently used. It must be resident.
func (c *lruCache) touch(name string) {
	el, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("sched: touch of non-resident model %q", name))
	}
	c.order.MoveToBack(el)
}

// resident reports whether name is loaded.
func (c *lruCache) resident(name string) bool {
	_, ok := c.index[name]
	return ok
}

// ensure makes name resident, evicting LRU entries as needed, and returns
// whether it was a cache hit. Returns an error when the model alone exceeds
// the budget.
func (c *lruCache) ensure(name string, size int64) (hit bool, err error) {
	if c.resident(name) {
		c.stats.Hits++
		c.touch(name)
		return true, nil
	}
	if size > c.budget {
		return false, fmt.Errorf("sched: model %q (%d B) exceeds cache budget (%d B)", name, size, c.budget)
	}
	c.stats.Misses++
	for c.used+size > c.budget {
		front := c.order.Front()
		victim := front.Value.(*entry)
		c.order.Remove(front)
		delete(c.index, victim.name)
		c.used -= victim.size
		c.stats.Evictions++
	}
	c.index[name] = c.order.PushBack(&entry{name: name, size: size})
	c.used += size
	c.stats.BytesLoaded += size
	return false, nil
}

// evict drops name from the cache if resident, reporting whether it was.
// Used to quarantine possibly-corrupt weights after the variant panicked or
// hung: the entry must not stay cached as healthy, so the next ensure is a
// miss that reloads from storage. Counted as a QuarantineEviction, not an
// LRU Eviction.
func (c *lruCache) evict(name string) bool {
	el, ok := c.index[name]
	if !ok {
		return false
	}
	victim := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.index, name)
	c.used -= victim.size
	c.stats.QuarantineEvictions++
	return true
}

// Resident returns the names of loaded models, LRU first.
func (c *lruCache) Resident() []string {
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).name)
	}
	return out
}
