package sched_test

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/sched"
	"itask/internal/tensor"
)

// ExampleScheduler shows the situational configuration policy: the
// task-specific student serves its mission, everything else falls back to
// the quantized generalist.
func ExampleScheduler() {
	s := sched.New(1 << 20)
	noop := func(img *tensor.Tensor) []geom.Scored { return nil }
	_ = s.Register(sched.Model{
		Name: "generalist-q8", Kind: sched.Generalist,
		Bytes: 70 << 10, LatencyUS: 400, Detect: noop,
	})
	_ = s.Register(sched.Model{
		Name: "patrol-student", Kind: sched.TaskSpecific, Task: "patrol",
		Bytes: 160 << 10, LatencyUS: 100, Detect: noop,
	})

	m, _ := s.Select(sched.Request{Task: "patrol"})
	fmt.Println("patrol ->", m.Name)
	m, _ = s.Select(sched.Request{Task: "harvest"})
	fmt.Println("harvest ->", m.Name)
	// Output:
	// patrol -> patrol-student
	// harvest -> generalist-q8
}
