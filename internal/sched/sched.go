package sched

import (
	"fmt"
	"sync"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// Kind distinguishes the two iTask model configurations.
type Kind int

// The configuration kinds of the paper's dual-configuration design.
const (
	// TaskSpecific is a distilled per-task student: highest in-task
	// accuracy, one copy per task.
	TaskSpecific Kind = iota
	// Generalist is the quantized multi-task model: lower per-task
	// accuracy, works for every mission.
	Generalist
)

// String names the kind.
func (k Kind) String() string {
	if k == TaskSpecific {
		return "task-specific"
	}
	return "generalist"
}

// DetectFunc is the inference entry point of a registered model.
type DetectFunc func(img *tensor.Tensor) []geom.Scored

// BatchDetectFunc runs inference on a coalesced batch of images, returning
// one detection set per image.
type BatchDetectFunc func(imgs []*tensor.Tensor) [][]geom.Scored

// Model is one deployable variant in the registry. Its fields are immutable
// after Register, so a *Model returned by Select may be used concurrently.
type Model struct {
	Name string
	Kind Kind
	// Task is the mission this model serves (empty for generalists).
	Task string
	// Bytes is the weight footprint counted against the RAM budget.
	Bytes int64
	// LatencyUS is the per-inference latency on the accelerator (from
	// hwsim), used to enforce request latency budgets.
	LatencyUS float64
	// Detect runs inference.
	Detect DetectFunc
	// DetectBatch, when non-nil, runs inference on a whole micro-batch in
	// one pass (amortizing per-call overhead); when nil the scheduler falls
	// back to calling Detect per image.
	DetectBatch BatchDetectFunc
}

// Scheduler owns the registry, the model cache, and the selection policy.
//
// Concurrency: all methods are safe for concurrent use. A single mutex
// guards the registry, the LRU cache, and the accounting counters; model
// inference itself (Detect/DetectBatch) runs outside the lock, so many
// requests can execute concurrently while selection stays serialized. The
// exported Switches and LoadTimeUS fields are written under the lock — read
// them via Snapshot (or only after concurrent use has quiesced).
type Scheduler struct {
	// LoadBandwidthMBs models weight loading from storage to RAM, charged
	// on cache misses.
	LoadBandwidthMBs float64

	mu         sync.Mutex
	models     map[string]*Model
	generalist string
	byTask     map[string]string
	cache      *lruCache

	// Switches counts model changes between consecutive requests.
	Switches int
	last     string
	// LoadTimeUS accumulates time spent loading weights on misses.
	LoadTimeUS float64
}

// New creates a scheduler with the given RAM budget for model weights.
func New(budgetBytes int64) *Scheduler {
	return &Scheduler{
		LoadBandwidthMBs: 100,
		models:           map[string]*Model{},
		byTask:           map[string]string{},
		cache:            newLRUCache(budgetBytes),
	}
}

// Register adds a model to the registry (storage, not RAM).
func (s *Scheduler) Register(m Model) error {
	switch {
	case m.Name == "":
		return fmt.Errorf("sched: empty model name")
	case m.Detect == nil:
		return fmt.Errorf("sched: model %q has no Detect", m.Name)
	case m.Bytes <= 0:
		return fmt.Errorf("sched: model %q has non-positive size", m.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.models[m.Name]; dup {
		return fmt.Errorf("sched: duplicate model %q", m.Name)
	}
	switch m.Kind {
	case Generalist:
		if s.generalist != "" {
			return fmt.Errorf("sched: second generalist %q (have %q)", m.Name, s.generalist)
		}
	case TaskSpecific:
		if m.Task == "" {
			return fmt.Errorf("sched: task-specific model %q without task", m.Name)
		}
		if prev, dup := s.byTask[m.Task]; dup {
			return fmt.Errorf("sched: task %q already served by %q", m.Task, prev)
		}
	}
	mm := m
	s.models[m.Name] = &mm
	switch m.Kind {
	case Generalist:
		s.generalist = m.Name
	case TaskSpecific:
		s.byTask[m.Task] = m.Name
	}
	return nil
}

// Request describes one mission inference call.
type Request struct {
	Task string
	// LatencyBudgetUS, when > 0, rejects models whose inference latency
	// exceeds it (the real-time constraint of the paper's edge setting).
	LatencyBudgetUS float64
}

// candidates returns the model names that could serve the request, preferred
// first. Caller must hold s.mu.
func (s *Scheduler) candidates(req Request) []string {
	var out []string
	if name, ok := s.byTask[req.Task]; ok {
		out = append(out, name)
	}
	if s.generalist != "" {
		out = append(out, s.generalist)
	}
	return out
}

// Route reports which model variant Select would pick for the request, by
// name, without loading it or perturbing the cache. The serving layer uses
// this to coalesce requests targeting the same variant before committing to
// a load.
func (s *Scheduler) Route(req Request) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cands := s.candidates(req)
	if len(cands) == 0 {
		return "", fmt.Errorf("sched: no model can serve task %q", req.Task)
	}
	var lastErr error
	for _, name := range cands {
		m := s.models[name]
		if req.LatencyBudgetUS > 0 && m.LatencyUS > req.LatencyBudgetUS {
			lastErr = fmt.Errorf("sched: model %q latency %.0fus over budget %.0fus",
				name, m.LatencyUS, req.LatencyBudgetUS)
			continue
		}
		if m.Bytes > s.cache.budget {
			lastErr = fmt.Errorf("sched: model %q (%d B) exceeds cache budget (%d B)",
				name, m.Bytes, s.cache.budget)
			continue
		}
		return name, nil
	}
	return "", lastErr
}

// RouteFallback reports the degraded-path variant for the request: the
// quantized generalist, regardless of whether a task-specific student
// exists. The serving layer uses it to keep a task servable when the
// preferred variant's circuit breaker is open — the paper's dual-
// configuration adaptability, driven by failure instead of situation.
func (s *Scheduler) RouteFallback(req Request) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.generalist == "" {
		return "", fmt.Errorf("sched: no generalist fallback for task %q", req.Task)
	}
	m := s.models[s.generalist]
	if req.LatencyBudgetUS > 0 && m.LatencyUS > req.LatencyBudgetUS {
		return "", fmt.Errorf("sched: fallback %q latency %.0fus over budget %.0fus",
			m.Name, m.LatencyUS, req.LatencyBudgetUS)
	}
	if m.Bytes > s.cache.budget {
		return "", fmt.Errorf("sched: fallback %q (%d B) exceeds cache budget (%d B)",
			m.Name, m.Bytes, s.cache.budget)
	}
	return s.generalist, nil
}

// SelectByName loads a specific registered variant (LRU-evicting as needed)
// and accounts load time — the forced-variant path the serving layer uses
// to execute a batch on exactly the lane it was coalesced for, including
// degraded batches pinned to the quantized fallback.
func (s *Scheduler) SelectByName(name string) (*Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("sched: no model %q registered", name)
	}
	hit, err := s.cache.ensure(name, m.Bytes)
	if err != nil {
		return nil, err
	}
	if !hit {
		s.LoadTimeUS += float64(m.Bytes) / (s.LoadBandwidthMBs * 1e6) * 1e6
	}
	if s.last != "" && s.last != name {
		s.Switches++
	}
	s.last = name
	return m, nil
}

// DetectBatchOn runs a whole micro-batch on a specific variant (one
// selection, one cache touch, at most one weight load — see DetectBatch).
func (s *Scheduler) DetectBatchOn(name string, imgs []*tensor.Tensor) ([][]geom.Scored, *Model, error) {
	m, err := s.SelectByName(name)
	if err != nil {
		return nil, nil, err
	}
	return runBatch(m, imgs), m, nil
}

// Evict drops a variant's weights from the model cache, reporting whether
// it was resident. The serving layer calls this after a variant panics or
// hangs: the resident copy can no longer be trusted as healthy, so the next
// selection must reload it from storage rather than reuse it.
func (s *Scheduler) Evict(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.evict(name)
}

// Select picks the model for a request: the task-specific student when one
// exists, fits the cache, and meets the latency budget; otherwise the
// quantized generalist. Selection loads the model (LRU-evicting as needed)
// and accounts load time.
func (s *Scheduler) Select(req Request) (*Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cands := s.candidates(req)
	if len(cands) == 0 {
		return nil, fmt.Errorf("sched: no model can serve task %q", req.Task)
	}
	var lastErr error
	for _, name := range cands {
		m := s.models[name]
		if req.LatencyBudgetUS > 0 && m.LatencyUS > req.LatencyBudgetUS {
			lastErr = fmt.Errorf("sched: model %q latency %.0fus over budget %.0fus",
				name, m.LatencyUS, req.LatencyBudgetUS)
			continue
		}
		hit, err := s.cache.ensure(name, m.Bytes)
		if err != nil {
			lastErr = err
			continue
		}
		if !hit {
			s.LoadTimeUS += float64(m.Bytes) / (s.LoadBandwidthMBs * 1e6) * 1e6
		}
		if s.last != "" && s.last != name {
			s.Switches++
		}
		s.last = name
		return m, nil
	}
	return nil, lastErr
}

// Detect selects a model for the request and runs it. Inference executes
// outside the scheduler lock; the Detect closure must not depend on the
// model still being cache-resident (a concurrent request may evict it).
func (s *Scheduler) Detect(req Request, img *tensor.Tensor) ([]geom.Scored, *Model, error) {
	m, err := s.Select(req)
	if err != nil {
		return nil, nil, err
	}
	return m.Detect(img), m, nil
}

// DetectBatch selects a model once for the request and runs it over the
// whole batch, returning one detection set per image. A single selection
// per micro-batch is what makes coalescing pay: one lock acquisition, one
// cache touch, and at most one weight load for the entire batch, instead of
// one per image.
func (s *Scheduler) DetectBatch(req Request, imgs []*tensor.Tensor) ([][]geom.Scored, *Model, error) {
	m, err := s.Select(req)
	if err != nil {
		return nil, nil, err
	}
	return runBatch(m, imgs), m, nil
}

// runBatch executes a selected model over a micro-batch, preferring its
// batched entry point and falling back to per-image Detect.
func runBatch(m *Model, imgs []*tensor.Tensor) [][]geom.Scored {
	if m.DetectBatch != nil {
		return m.DetectBatch(imgs)
	}
	out := make([][]geom.Scored, len(imgs))
	for i, img := range imgs {
		out[i] = m.Detect(img)
	}
	return out
}

// Stats returns cache statistics.
func (s *Scheduler) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.stats
}

// Snapshot bundles the scheduler's accounting counters, read atomically
// with respect to concurrent requests.
type Snapshot struct {
	Cache      CacheStats
	Switches   int
	LoadTimeUS float64
}

// Snapshot returns all scheduler counters under one lock acquisition.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{Cache: s.cache.stats, Switches: s.Switches, LoadTimeUS: s.LoadTimeUS}
}

// Resident returns loaded model names, least recently used first.
func (s *Scheduler) Resident() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Resident()
}

// Models returns the registered model count.
func (s *Scheduler) Models() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.models)
}
