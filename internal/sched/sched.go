package sched

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// Kind distinguishes the two iTask model configurations.
type Kind int

// The configuration kinds of the paper's dual-configuration design.
const (
	// TaskSpecific is a distilled per-task student: highest in-task
	// accuracy, one copy per task.
	TaskSpecific Kind = iota
	// Generalist is the quantized multi-task model: lower per-task
	// accuracy, works for every mission.
	Generalist
)

// String names the kind.
func (k Kind) String() string {
	if k == TaskSpecific {
		return "task-specific"
	}
	return "generalist"
}

// DetectFunc is the inference entry point of a registered model.
type DetectFunc func(img *tensor.Tensor) []geom.Scored

// Model is one deployable variant in the registry.
type Model struct {
	Name string
	Kind Kind
	// Task is the mission this model serves (empty for generalists).
	Task string
	// Bytes is the weight footprint counted against the RAM budget.
	Bytes int64
	// LatencyUS is the per-inference latency on the accelerator (from
	// hwsim), used to enforce request latency budgets.
	LatencyUS float64
	// Detect runs inference.
	Detect DetectFunc
}

// Scheduler owns the registry, the model cache, and the selection policy.
// It is not safe for concurrent use; the edge runtime serializes requests.
type Scheduler struct {
	// LoadBandwidthMBs models weight loading from storage to RAM, charged
	// on cache misses.
	LoadBandwidthMBs float64

	models     map[string]*Model
	generalist string
	byTask     map[string]string
	cache      *lruCache

	// Switches counts model changes between consecutive requests.
	Switches int
	last     string
	// LoadTimeUS accumulates time spent loading weights on misses.
	LoadTimeUS float64
}

// New creates a scheduler with the given RAM budget for model weights.
func New(budgetBytes int64) *Scheduler {
	return &Scheduler{
		LoadBandwidthMBs: 100,
		models:           map[string]*Model{},
		byTask:           map[string]string{},
		cache:            newLRUCache(budgetBytes),
	}
}

// Register adds a model to the registry (storage, not RAM).
func (s *Scheduler) Register(m Model) error {
	switch {
	case m.Name == "":
		return fmt.Errorf("sched: empty model name")
	case m.Detect == nil:
		return fmt.Errorf("sched: model %q has no Detect", m.Name)
	case m.Bytes <= 0:
		return fmt.Errorf("sched: model %q has non-positive size", m.Name)
	}
	if _, dup := s.models[m.Name]; dup {
		return fmt.Errorf("sched: duplicate model %q", m.Name)
	}
	mm := m
	s.models[m.Name] = &mm
	switch m.Kind {
	case Generalist:
		if s.generalist != "" {
			return fmt.Errorf("sched: second generalist %q (have %q)", m.Name, s.generalist)
		}
		s.generalist = m.Name
	case TaskSpecific:
		if m.Task == "" {
			return fmt.Errorf("sched: task-specific model %q without task", m.Name)
		}
		if prev, dup := s.byTask[m.Task]; dup {
			return fmt.Errorf("sched: task %q already served by %q", m.Task, prev)
		}
		s.byTask[m.Task] = m.Name
	}
	return nil
}

// Request describes one mission inference call.
type Request struct {
	Task string
	// LatencyBudgetUS, when > 0, rejects models whose inference latency
	// exceeds it (the real-time constraint of the paper's edge setting).
	LatencyBudgetUS float64
}

// Select picks the model for a request: the task-specific student when one
// exists, fits the cache, and meets the latency budget; otherwise the
// quantized generalist. Selection loads the model (LRU-evicting as needed)
// and accounts load time.
func (s *Scheduler) Select(req Request) (*Model, error) {
	var candidates []string
	if name, ok := s.byTask[req.Task]; ok {
		candidates = append(candidates, name)
	}
	if s.generalist != "" {
		candidates = append(candidates, s.generalist)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("sched: no model can serve task %q", req.Task)
	}
	var lastErr error
	for _, name := range candidates {
		m := s.models[name]
		if req.LatencyBudgetUS > 0 && m.LatencyUS > req.LatencyBudgetUS {
			lastErr = fmt.Errorf("sched: model %q latency %.0fus over budget %.0fus",
				name, m.LatencyUS, req.LatencyBudgetUS)
			continue
		}
		hit, err := s.cache.ensure(name, m.Bytes)
		if err != nil {
			lastErr = err
			continue
		}
		if !hit {
			s.LoadTimeUS += float64(m.Bytes) / (s.LoadBandwidthMBs * 1e6) * 1e6
		}
		if s.last != "" && s.last != name {
			s.Switches++
		}
		s.last = name
		return m, nil
	}
	return nil, lastErr
}

// Detect selects a model for the request and runs it.
func (s *Scheduler) Detect(req Request, img *tensor.Tensor) ([]geom.Scored, *Model, error) {
	m, err := s.Select(req)
	if err != nil {
		return nil, nil, err
	}
	return m.Detect(img), m, nil
}

// Stats returns cache statistics.
func (s *Scheduler) Stats() CacheStats { return s.cache.stats }

// Resident returns loaded model names, least recently used first.
func (s *Scheduler) Resident() []string { return s.cache.Resident() }

// Models returns the registered model count.
func (s *Scheduler) Models() int { return len(s.models) }
