// Package sched routes inference requests over the versioned model registry
// and manages which model weights are RAM-resident. Since PR 4 the scheduler
// no longer owns model storage: models live in internal/registry as
// immutable, versioned artifacts behind an atomically-swapped snapshot.
// Routing decisions (Route/RouteFallback) are lock-free snapshot reads; only
// the LRU weight cache and its accounting counters sit behind the scheduler
// mutex, and cache entries are keyed by full artifact ID so each published
// version loads (and evicts) independently.
package sched

import (
	"fmt"
	"sync"

	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/tensor"
)

// Kind distinguishes the deployable iTask model configurations.
type Kind = registry.Kind

// The configuration kinds of the paper's dual-configuration design.
const (
	// TaskSpecific is a distilled per-task student: highest in-task
	// accuracy, one copy per task.
	TaskSpecific = registry.TaskSpecific
	// Generalist is the quantized multi-task model: lower per-task
	// accuracy, works for every mission.
	Generalist = registry.Generalist
)

// DetectFunc is the inference entry point of a registered model.
type DetectFunc = registry.DetectFunc

// BatchDetectFunc runs inference on a coalesced batch of images, returning
// one detection set per image.
type BatchDetectFunc = registry.BatchDetectFunc

// Model is one deployable, immutable, versioned artifact. It is an alias for
// registry.Artifact: a *Model returned by Select is a snapshot-published
// value and may be used concurrently and indefinitely.
type Model = registry.Artifact

// Scheduler owns the weight cache and the selection policy over the
// registry's routing snapshot.
//
// Concurrency: all methods are safe for concurrent use. Route and
// RouteFallback are lock-free snapshot reads; a single mutex guards the LRU
// cache and the accounting counters. Model inference (Detect/DetectBatch)
// runs outside any lock, so many requests execute concurrently while cache
// admission stays serialized. The exported Switches and LoadTimeUS fields
// are written under the lock — read them via Snapshot (or only after
// concurrent use has quiesced).
type Scheduler struct {
	// LoadBandwidthMBs models weight loading from storage to RAM, charged
	// on cache misses.
	LoadBandwidthMBs float64

	reg    *registry.Registry
	budget int64

	mu    sync.Mutex
	cache *lruCache

	// Switches counts model changes between consecutive requests.
	Switches int
	last     string
	// LoadTimeUS accumulates time spent loading weights on misses.
	LoadTimeUS float64
}

// New creates a scheduler with its own empty registry and the given RAM
// budget for model weights.
func New(budgetBytes int64) *Scheduler {
	return NewWith(registry.New(), budgetBytes)
}

// NewWith creates a scheduler routing over an existing registry, so the
// owner (e.g. the Pipeline facade) can publish and roll back artifacts while
// the scheduler serves them.
func NewWith(reg *registry.Registry, budgetBytes int64) *Scheduler {
	return &Scheduler{
		LoadBandwidthMBs: 100,
		reg:              reg,
		budget:           budgetBytes,
		cache:            newLRUCache(budgetBytes),
	}
}

// Registry exposes the underlying registry for publication and rollback.
func (s *Scheduler) Registry() *registry.Registry { return s.reg }

// Register publishes a model into the registry as the next version of its
// name. Unlike the pre-registry scheduler, re-registering a name is not an
// error: it publishes a new version and atomically makes it the routed one.
func (s *Scheduler) Register(m Model) error {
	_, err := s.reg.Publish(m)
	return err
}

// Request describes one mission inference call.
type Request struct {
	Task string
	// LatencyBudgetUS, when > 0, rejects models whose inference latency
	// exceeds it (the real-time constraint of the paper's edge setting).
	LatencyBudgetUS float64
}

// Route reports which variant Select would pick for the request — as a full
// artifact ID string (name@vN#sum) — without loading it or perturbing the
// cache. The serving layer uses this to coalesce requests targeting the same
// variant before committing to a load; because the ID pins an exact version,
// a batch coalesced for one version never silently executes on another.
// Lock-free: one snapshot load, no scheduler mutex.
func (s *Scheduler) Route(req Request) (string, error) {
	cands := s.reg.Snapshot().Candidates(req.Task)
	if len(cands) == 0 {
		return "", fmt.Errorf("sched: no model can serve task %q", req.Task)
	}
	var lastErr error
	for _, m := range cands {
		if err := s.admissible(m, req.LatencyBudgetUS); err != nil {
			lastErr = err
			continue
		}
		return m.ID.String(), nil
	}
	return "", lastErr
}

// RouteFallback reports the degraded-path variant for the request: the
// quantized generalist's active version, regardless of whether a
// task-specific student exists. The serving layer uses it to keep a task
// servable when the preferred variant's circuit breaker is open — the
// paper's dual-configuration adaptability, driven by failure instead of
// situation. Lock-free.
func (s *Scheduler) RouteFallback(req Request) (string, error) {
	m, ok := s.reg.Snapshot().Generalist()
	if !ok {
		return "", fmt.Errorf("sched: no generalist fallback for task %q", req.Task)
	}
	if err := s.admissible(m, req.LatencyBudgetUS); err != nil {
		return "", err
	}
	return m.ID.String(), nil
}

// admissible checks a candidate against the request latency budget and the
// cache budget (both immutable per-artifact / per-scheduler, so no lock).
func (s *Scheduler) admissible(m *Model, latencyBudgetUS float64) error {
	if latencyBudgetUS > 0 && m.LatencyUS > latencyBudgetUS {
		return fmt.Errorf("sched: model %q latency %.0fus over budget %.0fus",
			m.ID, m.LatencyUS, latencyBudgetUS)
	}
	if m.Bytes > s.budget {
		return fmt.Errorf("sched: model %q (%d B) exceeds cache budget (%d B)",
			m.ID, m.Bytes, s.budget)
	}
	return nil
}

// resolve maps a variant string (bare name or full artifact ID) to the
// artifact that should execute it, via the current snapshot. A full ID of a
// quarantined version transparently redirects to the name's active version —
// the automatic-rollback path for retries of batches pinned to a version
// that went bad.
func (s *Scheduler) resolve(variant string) (*Model, error) {
	m, ok := s.reg.Snapshot().Resolve(variant)
	if !ok {
		return nil, fmt.Errorf("sched: no model %q registered", variant)
	}
	return m, nil
}

// SelectByName loads a specific variant (LRU-evicting as needed) and
// accounts load time — the forced-variant path the serving layer uses to
// execute a batch on exactly the lane it was coalesced for, including
// degraded batches pinned to the quantized fallback. Accepts bare names and
// full artifact IDs.
func (s *Scheduler) SelectByName(variant string) (*Model, error) {
	m, err := s.resolve(variant)
	if err != nil {
		return nil, err
	}
	if err := s.admit(m); err != nil {
		return nil, err
	}
	return m, nil
}

// admit ensures an artifact's weights are cache-resident, accounting load
// time and switches.
func (s *Scheduler) admit(m *Model) error {
	key := m.ID.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	hit, err := s.cache.ensure(key, m.Bytes)
	if err != nil {
		return err
	}
	if !hit {
		s.LoadTimeUS += float64(m.Bytes) / (s.LoadBandwidthMBs * 1e6) * 1e6
	}
	if s.last != "" && s.last != key {
		s.Switches++
	}
	s.last = key
	return nil
}

// DetectBatchOn runs a whole micro-batch on a specific variant (one
// selection, one cache touch, at most one weight load — see DetectBatch).
func (s *Scheduler) DetectBatchOn(variant string, imgs []*tensor.Tensor) ([][]geom.Scored, *Model, error) {
	m, err := s.SelectByName(variant)
	if err != nil {
		return nil, nil, err
	}
	return runBatch(m, imgs), m, nil
}

// Evict drops a variant's weights from the model cache, reporting whether it
// was resident. The serving layer calls this after a variant panics or
// hangs: the resident copy can no longer be trusted as healthy, so the next
// selection must reload it from storage rather than reuse it. Accepts bare
// names and full artifact IDs.
func (s *Scheduler) Evict(variant string) bool {
	key := variant
	if m, err := s.resolve(variant); err == nil {
		key = m.ID.String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Try the resolved active version first, then the literal string (a
	// quarantined version's own weights may still be resident under its
	// exact ID even though resolve redirects away from it).
	if s.cache.evict(key) {
		return true
	}
	if key != variant {
		return s.cache.evict(variant)
	}
	return false
}

// Select picks the model for a request — the task-specific student when one
// exists, fits the cache, and meets the latency budget; otherwise the
// quantized generalist — then loads it (LRU-evicting as needed) and accounts
// load time. Candidate choice is a lock-free snapshot read; only cache
// admission takes the mutex.
func (s *Scheduler) Select(req Request) (*Model, error) {
	cands := s.reg.Snapshot().Candidates(req.Task)
	if len(cands) == 0 {
		return nil, fmt.Errorf("sched: no model can serve task %q", req.Task)
	}
	var lastErr error
	for _, m := range cands {
		if req.LatencyBudgetUS > 0 && m.LatencyUS > req.LatencyBudgetUS {
			lastErr = fmt.Errorf("sched: model %q latency %.0fus over budget %.0fus",
				m.ID, m.LatencyUS, req.LatencyBudgetUS)
			continue
		}
		if err := s.admit(m); err != nil {
			lastErr = err
			continue
		}
		return m, nil
	}
	return nil, lastErr
}

// Detect selects a model for the request and runs it. Inference executes
// outside the scheduler lock; the Detect closure must not depend on the
// model still being cache-resident (a concurrent request may evict it).
func (s *Scheduler) Detect(req Request, img *tensor.Tensor) ([]geom.Scored, *Model, error) {
	m, err := s.Select(req)
	if err != nil {
		return nil, nil, err
	}
	return m.Detect(img), m, nil
}

// DetectBatch selects a model once for the request and runs it over the
// whole batch, returning one detection set per image. A single selection
// per micro-batch is what makes coalescing pay: one lock acquisition, one
// cache touch, and at most one weight load for the entire batch, instead of
// one per image.
func (s *Scheduler) DetectBatch(req Request, imgs []*tensor.Tensor) ([][]geom.Scored, *Model, error) {
	m, err := s.Select(req)
	if err != nil {
		return nil, nil, err
	}
	return runBatch(m, imgs), m, nil
}

// runBatch executes a selected model over a micro-batch, preferring its
// batched entry point and falling back to per-image Detect.
func runBatch(m *Model, imgs []*tensor.Tensor) [][]geom.Scored {
	if m.DetectBatch != nil {
		return m.DetectBatch(imgs)
	}
	out := make([][]geom.Scored, len(imgs))
	for i, img := range imgs {
		out[i] = m.Detect(img)
	}
	return out
}

// Stats returns cache statistics.
func (s *Scheduler) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.stats
}

// Snapshot bundles the scheduler's accounting counters, read atomically
// with respect to concurrent requests.
type Snapshot struct {
	Cache      CacheStats
	Switches   int
	LoadTimeUS float64
}

// Snapshot returns all scheduler counters under one lock acquisition.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{Cache: s.cache.stats, Switches: s.Switches, LoadTimeUS: s.LoadTimeUS}
}

// Resident returns loaded artifact ID strings, least recently used first.
func (s *Scheduler) Resident() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Resident()
}

// Models returns the number of actively routed artifacts.
func (s *Scheduler) Models() int {
	return len(s.reg.Snapshot().Artifacts())
}

// Lookup resolves a variant string (bare name or full artifact ID) without
// loading it. Used by serving-layer introspection.
func (s *Scheduler) Lookup(variant string) (*Model, bool) {
	m, err := s.resolve(variant)
	if err != nil {
		return nil, false
	}
	return m, true
}
