package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

// TestConcurrentSchedulerNoLostUpdates hammers one scheduler from many
// goroutines doing Register, Route, Select, Detect, Stats, and Resident
// concurrently, then checks the accounting invariant that every successful
// selection recorded exactly one cache hit or miss. Run with -race; before
// the scheduler grew its mutex this was both a data race and a lost-update
// generator (CacheStats increments, LRU list splices).
func TestConcurrentSchedulerNoLostUpdates(t *testing.T) {
	const (
		goroutines = 8
		iters      = 300
		tasks      = 6
	)
	dummy := func(img *tensor.Tensor) []geom.Scored { return nil }

	s := New(3000) // room for ~3 of the 1000-byte models: forces eviction traffic
	if err := s.Register(Model{Name: "gen", Kind: Generalist, Bytes: 1000, Detect: dummy}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		err := s.Register(Model{
			Name: fmt.Sprintf("student-%d", i), Kind: TaskSpecific,
			Task: fmt.Sprintf("task-%d", i), Bytes: 1000, Detect: dummy,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	var selected atomic.Int64
	img := tensor.New(1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				task := fmt.Sprintf("task-%d", (g+i)%tasks)
				switch i % 5 {
				case 0:
					// Concurrent registration of unique late-arriving models.
					name := fmt.Sprintf("late-%d-%d", g, i)
					err := s.Register(Model{
						Name: name, Kind: TaskSpecific, Task: name, Bytes: 500, Detect: dummy,
					})
					if err != nil {
						t.Errorf("register %s: %v", name, err)
					}
				case 1:
					if _, err := s.Route(Request{Task: task}); err != nil {
						t.Errorf("route %s: %v", task, err)
					}
				case 2:
					if _, _, err := s.Detect(Request{Task: task}, img); err != nil {
						t.Errorf("detect %s: %v", task, err)
					} else {
						selected.Add(1)
					}
				default:
					if _, err := s.Select(Request{Task: task}); err != nil {
						t.Errorf("select %s: %v", task, err)
					} else {
						selected.Add(1)
					}
				}
				// Concurrent readers of the shared state.
				_ = s.Stats()
				_ = s.Resident()
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if got, want := int64(st.Hits+st.Misses), selected.Load(); got != want {
		t.Errorf("lost updates: hits+misses = %d, successful selections = %d", got, want)
	}
	if st.BytesLoaded < 1000 {
		t.Errorf("implausible BytesLoaded %d", st.BytesLoaded)
	}
	snap := s.Snapshot()
	if snap.Cache != st {
		// Stats drifted after quiescence: both reads should agree now.
		t.Errorf("Snapshot cache %+v != Stats %+v", snap.Cache, st)
	}
}
