package sched

import (
	"testing"
)

func streamScheduler(t *testing.T, latencyUS float64) *Scheduler {
	t.Helper()
	s := New(10000)
	if err := s.Register(Model{
		Name: "gen", Kind: Generalist, Bytes: 100,
		LatencyUS: latencyUS, Detect: dummyDetect(0),
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamConfigValidate(t *testing.T) {
	good := StreamConfig{ArrivalFPS: 30, Frames: 100, Mix: map[string]float64{"a": 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []StreamConfig{
		{Frames: 10, Mix: map[string]float64{"a": 1}},
		{ArrivalFPS: 30, Mix: map[string]float64{"a": 1}},
		{ArrivalFPS: 30, Frames: 10},
		{ArrivalFPS: 30, Frames: 10, DeadlineUS: -1, Mix: map[string]float64{"a": 1}},
		{ArrivalFPS: 30, Frames: 10, Mix: map[string]float64{"a": -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed", i)
		}
	}
}

func TestStreamLowLoadSojournEqualsService(t *testing.T) {
	// 100us service at 100 FPS (10ms gaps): queue never forms.
	s := streamScheduler(t, 100)
	st, err := s.SimulateStream(StreamConfig{
		ArrivalFPS: 100, Frames: 500, Mix: map[string]float64{"x": 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 500 {
		t.Fatalf("frames %d", st.Frames)
	}
	// First frame pays the model load; steady state is pure service.
	if st.P95US > 150 {
		t.Errorf("P95 %v us at low load, want ~100", st.P95US)
	}
	if st.Utilization > 0.05 {
		t.Errorf("utilization %v at 1%% load", st.Utilization)
	}
}

func TestStreamOverloadGrowsTail(t *testing.T) {
	// 2000us service at 1000 FPS: offered load 2x capacity, queue explodes.
	s := streamScheduler(t, 2000)
	st, err := s.SimulateStream(StreamConfig{
		ArrivalFPS: 1000, Frames: 500, DeadlineUS: 5000,
		Mix: map[string]float64{"x": 1}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.P95US < 10*2000 {
		t.Errorf("overload P95 %v us should be much larger than service", st.P95US)
	}
	if st.DeadlineMisses < st.Frames/2 {
		t.Errorf("expected massive deadline misses, got %d/%d", st.DeadlineMisses, st.Frames)
	}
	if st.Utilization < 0.95 {
		t.Errorf("overloaded server utilization %v, want ~1", st.Utilization)
	}
}

func TestStreamMissionMixCountsSwitches(t *testing.T) {
	s := New(10000)
	for i, task := range []string{"a", "b"} {
		if err := s.Register(Model{
			Name: "m" + task, Kind: TaskSpecific, Task: task, Bytes: 100,
			LatencyUS: 50, Detect: dummyDetect(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.SimulateStream(StreamConfig{
		ArrivalFPS: 100, Frames: 200,
		Mix: map[string]float64{"a": 1, "b": 1}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Switches == 0 {
		t.Error("alternating missions should switch models")
	}
	if st.Errors != 0 {
		t.Errorf("unexpected drops: %d", st.Errors)
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{ArrivalFPS: 200, Frames: 300, Mix: map[string]float64{"x": 1}, Seed: 7}
	a, err := streamScheduler(t, 500).SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := streamScheduler(t, 500).SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("stream simulation not deterministic")
	}
}

func TestStreamUnservableTaskDropped(t *testing.T) {
	s := New(10000) // no models at all
	st, err := s.SimulateStream(StreamConfig{
		ArrivalFPS: 30, Frames: 10, Mix: map[string]float64{"x": 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 10 || st.Frames != 0 {
		t.Errorf("expected all frames dropped: %+v", st)
	}
}
