package sched

import (
	"strings"
	"testing"

	"itask/internal/geom"
	"itask/internal/tensor"
)

func dummyDetect(tag int) DetectFunc {
	return func(img *tensor.Tensor) []geom.Scored {
		return []geom.Scored{{Class: tag, Score: 1}}
	}
}

func makeScheduler(t *testing.T, budget int64) *Scheduler {
	t.Helper()
	s := New(budget)
	models := []Model{
		{Name: "gen-q8", Kind: Generalist, Bytes: 400, LatencyUS: 400, Detect: dummyDetect(0)},
		{Name: "patrol-ts", Kind: TaskSpecific, Task: "patrol", Bytes: 300, LatencyUS: 150, Detect: dummyDetect(1)},
		{Name: "triage-ts", Kind: TaskSpecific, Task: "triage", Bytes: 300, LatencyUS: 150, Detect: dummyDetect(2)},
	}
	for _, m := range models {
		if err := s.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRegisterValidation(t *testing.T) {
	s := New(1000)
	cases := []Model{
		{},
		{Name: "x"},
		{Name: "x", Detect: dummyDetect(0)},
		{Name: "ts", Kind: TaskSpecific, Bytes: 1, Detect: dummyDetect(0)}, // no task
	}
	for i, m := range cases {
		if err := s.Register(m); err == nil {
			t.Errorf("case %d should fail: %+v", i, m)
		}
	}
	good := Model{Name: "g", Kind: Generalist, Bytes: 1, Detect: dummyDetect(0)}
	if err := s.Register(good); err != nil {
		t.Fatal(err)
	}
	// Re-registering a name is no longer an error: it publishes the next
	// version and routes it.
	if err := s.Register(good); err != nil {
		t.Errorf("republish of %q: %v", good.Name, err)
	}
	if m, err := s.SelectByName("g"); err != nil || m.ID.Version != 2 {
		t.Errorf("after republish: model %+v, err %v, want v2", m, err)
	}
	second := Model{Name: "g2", Kind: Generalist, Bytes: 1, Detect: dummyDetect(0)}
	if err := s.Register(second); err == nil {
		t.Error("second generalist should fail")
	}
	ts := Model{Name: "t1", Kind: TaskSpecific, Task: "a", Bytes: 1, Detect: dummyDetect(0)}
	if err := s.Register(ts); err != nil {
		t.Fatal(err)
	}
	ts2 := Model{Name: "t2", Kind: TaskSpecific, Task: "a", Bytes: 1, Detect: dummyDetect(0)}
	if err := s.Register(ts2); err == nil {
		t.Error("duplicate task should fail")
	}
}

func TestSelectPrefersTaskSpecific(t *testing.T) {
	s := makeScheduler(t, 1000)
	m, err := s.Select(Request{Task: "patrol"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "patrol-ts" {
		t.Errorf("selected %q, want patrol-ts", m.Name)
	}
}

func TestSelectFallsBackToGeneralist(t *testing.T) {
	s := makeScheduler(t, 1000)
	m, err := s.Select(Request{Task: "harvest"}) // no task-specific model
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "gen-q8" {
		t.Errorf("selected %q, want generalist", m.Name)
	}
}

func TestSelectHonorsLatencyBudget(t *testing.T) {
	s := makeScheduler(t, 1000)
	// Generalist (400us) over budget; patrol student (150us) within.
	m, err := s.Select(Request{Task: "patrol", LatencyBudgetUS: 200})
	if err != nil || m.Name != "patrol-ts" {
		t.Fatalf("m=%v err=%v", m, err)
	}
	// For a task without a student, generalist over budget -> error.
	if _, err := s.Select(Request{Task: "harvest", LatencyBudgetUS: 200}); err == nil {
		t.Error("over-budget request should fail")
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	s := makeScheduler(t, 650) // fits generalist(400)+one student(300)? no: 700 > 650
	if _, err := s.Select(Request{Task: "patrol"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(Request{Task: "triage"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
	// 300+300 = 600 <= 650: both students resident, no eviction yet.
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", st.Evictions)
	}
	// Loading the generalist (400) forces evictions.
	if _, err := s.Select(Request{Task: "unknown"}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions when budget exceeded")
	}
	// LRU: patrol-ts (oldest) must be evicted first. Resident returns full
	// artifact ID strings (name@vN#sum).
	for _, id := range s.Resident() {
		if strings.HasPrefix(id, "patrol-ts@") {
			t.Errorf("LRU victim %s still resident", id)
		}
	}
}

func TestCacheHitsOnRepeatedTask(t *testing.T) {
	s := makeScheduler(t, 1000)
	for i := 0; i < 5; i++ {
		if _, err := s.Select(Request{Task: "patrol"}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
	if s.Switches != 0 {
		t.Errorf("switches = %d, want 0", s.Switches)
	}
}

func TestSwitchCounting(t *testing.T) {
	s := makeScheduler(t, 1000)
	tasks := []string{"patrol", "triage", "patrol", "patrol", "triage"}
	for _, task := range tasks {
		if _, err := s.Select(Request{Task: task}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Switches != 3 {
		t.Errorf("switches = %d, want 3", s.Switches)
	}
}

func TestModelTooBigForBudget(t *testing.T) {
	s := New(100)
	if err := s.Register(Model{Name: "big", Kind: Generalist, Bytes: 500, LatencyUS: 1, Detect: dummyDetect(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(Request{Task: "x"}); err == nil {
		t.Error("model larger than budget should fail selection")
	}
}

func TestDetectRuns(t *testing.T) {
	s := makeScheduler(t, 1000)
	dets, m, err := s.Detect(Request{Task: "triage"}, tensor.New(3, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "triage-ts" || len(dets) != 1 || dets[0].Class != 2 {
		t.Errorf("detect routed wrong: model=%q dets=%v", m.Name, dets)
	}
}

func TestLoadTimeAccounting(t *testing.T) {
	s := makeScheduler(t, 1000)
	s.LoadBandwidthMBs = 1 // 1 MB/s -> 300 bytes = 300 us
	if _, err := s.Select(Request{Task: "patrol"}); err != nil {
		t.Fatal(err)
	}
	if s.LoadTimeUS < 299 || s.LoadTimeUS > 301 {
		t.Errorf("load time %v us, want ~300", s.LoadTimeUS)
	}
	before := s.LoadTimeUS
	// Hit: no extra load time.
	if _, err := s.Select(Request{Task: "patrol"}); err != nil {
		t.Fatal(err)
	}
	if s.LoadTimeUS != before {
		t.Error("cache hit should not add load time")
	}
}

func TestNoModelsAtAll(t *testing.T) {
	s := New(100)
	if _, err := s.Select(Request{Task: "x"}); err == nil {
		t.Error("empty registry should fail")
	}
}

func TestTouchPanicsOnNonResident(t *testing.T) {
	c := newLRUCache(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.touch("ghost")
}
