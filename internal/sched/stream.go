package sched

import (
	"fmt"
	"math"
	"sort"

	"itask/internal/tensor"
)

// StreamConfig drives a discrete-event simulation of the edge runtime
// serving a live frame stream: Poisson frame arrivals, a FIFO queue, and a
// single inference engine whose service time is the selected model's
// simulated accelerator latency plus any weight-load time on model
// switches.
type StreamConfig struct {
	// ArrivalFPS is the mean frame arrival rate (Poisson process).
	ArrivalFPS float64
	// Frames is the number of frames to simulate.
	Frames int
	// DeadlineUS is the per-frame latency budget; sojourn times above it
	// count as deadline misses (0 disables deadline accounting).
	DeadlineUS float64
	// Mix is the mission mixture: task name -> relative weight.
	Mix map[string]float64
	// Seed makes the arrival/mission sequence deterministic.
	Seed uint64
}

// Validate checks the configuration.
func (c StreamConfig) Validate() error {
	switch {
	case c.ArrivalFPS <= 0:
		return fmt.Errorf("sched: arrival rate %v", c.ArrivalFPS)
	case c.Frames <= 0:
		return fmt.Errorf("sched: frames %d", c.Frames)
	case c.DeadlineUS < 0:
		return fmt.Errorf("sched: deadline %v", c.DeadlineUS)
	case len(c.Mix) == 0:
		return fmt.Errorf("sched: empty mission mix")
	}
	for task, w := range c.Mix {
		if w < 0 {
			return fmt.Errorf("sched: negative weight for %q", task)
		}
	}
	return nil
}

// StreamStats summarizes one stream simulation.
type StreamStats struct {
	Frames int
	// MeanUS/P95US/P99US/MaxUS are frame sojourn times (queue + service).
	MeanUS, P95US, P99US, MaxUS float64
	// DeadlineMisses counts frames whose sojourn exceeded the budget.
	DeadlineMisses int
	// Utilization is busy time over simulated time.
	Utilization float64
	// Switches and LoadTimeUS mirror the scheduler's accounting for the
	// simulated window.
	Switches   int
	LoadTimeUS float64
	// Errors counts frames no model could serve (dropped).
	Errors int
}

// SimulateStream runs the discrete-event simulation against the scheduler's
// registered models. The scheduler's cache state evolves exactly as it
// would in deployment, so mission-switch thrash shows up as load-time
// spikes in the tail latencies.
func (s *Scheduler) SimulateStream(cfg StreamConfig) (StreamStats, error) {
	if err := cfg.Validate(); err != nil {
		return StreamStats{}, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	tasks := make([]string, 0, len(cfg.Mix))
	weights := make([]float64, 0, len(cfg.Mix))
	for task := range cfg.Mix {
		tasks = append(tasks, task)
	}
	sort.Strings(tasks) // deterministic iteration
	for _, task := range tasks {
		weights = append(weights, cfg.Mix[task])
	}

	meanGapUS := 1e6 / cfg.ArrivalFPS
	var clockUS, serverFreeUS, busyUS float64
	sojourns := make([]float64, 0, cfg.Frames)
	stats := StreamStats{}
	switchesBefore := s.Switches
	loadBefore := s.LoadTimeUS

	for f := 0; f < cfg.Frames; f++ {
		// Poisson arrivals: exponential inter-arrival times.
		clockUS += -meanGapUS * math.Log(1-rng.Float64())
		task := tasks[rng.Choice(weights)]
		loadStart := s.LoadTimeUS
		m, err := s.Select(Request{Task: task})
		if err != nil {
			stats.Errors++
			continue
		}
		service := m.LatencyUS + (s.LoadTimeUS - loadStart)
		start := clockUS
		if serverFreeUS > start {
			start = serverFreeUS
		}
		finish := start + service
		serverFreeUS = finish
		busyUS += service
		sojourn := finish - clockUS
		sojourns = append(sojourns, sojourn)
		if cfg.DeadlineUS > 0 && sojourn > cfg.DeadlineUS {
			stats.DeadlineMisses++
		}
	}
	stats.Frames = len(sojourns)
	stats.Switches = s.Switches - switchesBefore
	stats.LoadTimeUS = s.LoadTimeUS - loadBefore
	if len(sojourns) == 0 {
		return stats, nil
	}
	sort.Float64s(sojourns)
	var sum float64
	for _, v := range sojourns {
		sum += v
	}
	stats.MeanUS = sum / float64(len(sojourns))
	stats.P95US = sojourns[int(0.95*float64(len(sojourns)-1))]
	stats.P99US = sojourns[int(0.99*float64(len(sojourns)-1))]
	stats.MaxUS = sojourns[len(sojourns)-1]
	if serverFreeUS > 0 {
		end := clockUS
		if serverFreeUS > end {
			end = serverFreeUS
		}
		stats.Utilization = busyUS / end
	}
	return stats, nil
}
