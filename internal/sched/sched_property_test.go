package sched

import (
	"testing"
	"testing/quick"

	"itask/internal/tensor"
)

// TestCacheNeverExceedsBudgetProperty drives the scheduler with random
// request sequences over random model zoos and asserts the memory invariant
// after every request: the sum of resident model sizes never exceeds the
// budget, and hit/miss accounting is consistent.
func TestCacheNeverExceedsBudgetProperty(t *testing.T) {
	f := func(seed uint64, budgetSel uint8, nModels uint8, reqLen uint8) bool {
		rng := tensor.NewRNG(seed)
		budget := int64(budgetSel%8+2) * 200 // 400..1800 bytes
		s := New(budget)
		// Register a generalist and some task models with random sizes.
		if err := s.Register(Model{
			Name: "gen", Kind: Generalist,
			Bytes:     int64(rng.Intn(300) + 50),
			LatencyUS: 100, Detect: dummyDetect(0),
		}); err != nil {
			return false
		}
		tasks := []string{"a", "b", "c", "d", "e"}
		n := int(nModels%5) + 1
		for i := 0; i < n; i++ {
			_ = s.Register(Model{
				Name: "m" + tasks[i], Kind: TaskSpecific, Task: tasks[i],
				Bytes:     int64(rng.Intn(500) + 50),
				LatencyUS: 50, Detect: dummyDetect(i + 1),
			})
		}
		requests := int(reqLen%40) + 1
		for i := 0; i < requests; i++ {
			task := tasks[rng.Intn(len(tasks))]
			_, err := s.Select(Request{Task: task})
			// Errors are allowed (model bigger than budget); the invariant
			// must hold regardless.
			_ = err
			var used int64
			for _, id := range s.Resident() {
				m, ok := s.Lookup(id)
				if !ok {
					return false
				}
				used += m.Bytes
			}
			if used > budget {
				return false
			}
		}
		st := s.Stats()
		// Hits+misses equals successful selections; both non-negative and
		// bytes loaded consistent with misses.
		if st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 || st.QuarantineEvictions < 0 {
			return false
		}
		return st.BytesLoaded >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLRUOrderProperty: after any request sequence, the most recently
// selected model is the last element of Resident().
func TestLRUOrderProperty(t *testing.T) {
	f := func(seed uint64, reqLen uint8) bool {
		rng := tensor.NewRNG(seed)
		s := New(10000) // roomy: everything stays resident
		tasks := []string{"a", "b", "c"}
		for i, task := range tasks {
			if err := s.Register(Model{
				Name: "m" + task, Kind: TaskSpecific, Task: task,
				Bytes: 100, LatencyUS: 1, Detect: dummyDetect(i),
			}); err != nil {
				return false
			}
		}
		requests := int(reqLen%30) + 1
		var lastName string
		for i := 0; i < requests; i++ {
			task := tasks[rng.Intn(len(tasks))]
			m, err := s.Select(Request{Task: task})
			if err != nil {
				return false
			}
			lastName = m.ID.String()
		}
		res := s.Resident()
		return len(res) > 0 && res[len(res)-1] == lastName
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
