package kernels

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func randFloats(r *rand.Rand, n int) []float32 {
	d := make([]float32, n)
	for i := range d {
		switch r.Intn(16) {
		case 0:
			d[i] = float32(math.NaN())
		case 1:
			d[i] = float32(math.Inf(1))
		case 2:
			d[i] = float32(math.Copysign(0, -1))
		default:
			d[i] = r.Float32()*2e6 - 1e6
		}
	}
	return d
}

func leBytes(data []float32) []byte {
	b := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

// The float32 view and its little-endian byte encoding must digest
// identically: that equivalence is what lets the gateway hash raw wire
// payloads without materializing a tensor.
func TestHashF32MatchesHashWordsLE(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 1024, 12288} {
		data := randFloats(r, n)
		hf := HashF32(FNVOffset64, data)
		hb := HashWordsLE(FNVOffset64, leBytes(data))
		if hf != hb {
			t.Fatalf("n=%d: HashF32 %x != HashWordsLE %x", n, hf, hb)
		}
	}
}

// The assembly and portable implementations must agree bit-exactly for
// every length (block counts, tails, below-cutoff sizes) and seed: the
// digest keys caches, so the two paths must be the same function.
func TestHashAsmMatchesGo(t *testing.T) {
	if !asmSupported {
		t.Skip("no AVX2 on this host")
	}
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 15, 16, 63, 64, 65, 71, 72, 127, 128, 1000, 12288} {
		data := randFloats(r, n)
		bytes := leBytes(data)
		for _, seed := range []uint64{FNVOffset64, 0, 1, 0xdeadbeefcafef00d} {
			prev := SetAsmEnabled(true)
			af, ab := HashF32(seed, data), HashWordsLE(seed, bytes)
			SetAsmEnabled(false)
			gf, gb := HashF32(seed, data), HashWordsLE(seed, bytes)
			SetAsmEnabled(prev)
			if af != gf {
				t.Fatalf("n=%d seed=%x: asm HashF32 %x != go %x", n, seed, af, gf)
			}
			if ab != gb {
				t.Fatalf("n=%d seed=%x: asm HashWordsLE %x != go %x", n, seed, ab, gb)
			}
		}
	}
}

func TestHashProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randFloats(r, 300)

	// Deterministic.
	if HashF32(FNVOffset64, data) != HashF32(FNVOffset64, data) {
		t.Fatal("hash not deterministic")
	}
	// Seed-sensitive.
	if HashF32(FNVOffset64, data) == HashF32(FNVOffset64+1, data) {
		t.Fatal("seed does not affect hash")
	}
	// Content-sensitive, including in the tail region past the last block.
	mut := append([]float32(nil), data...)
	mut[len(mut)-1] = mut[len(mut)-1] + 1
	if HashF32(FNVOffset64, data) == HashF32(FNVOffset64, mut) {
		t.Fatal("tail mutation not reflected in hash")
	}
	// Bit-pattern hashing: +0 and -0 are distinct content.
	z := []float32{0}
	nz := []float32{float32(math.Copysign(0, -1))}
	if HashF32(FNVOffset64, z) == HashF32(FNVOffset64, nz) {
		t.Fatal("+0 and -0 digest identically")
	}
	// Empty input folds the lane seeds only — stable and seed-dependent.
	if HashF32(1, nil) == HashF32(2, nil) {
		t.Fatal("empty-input hash ignores seed")
	}
}

func TestHashWordsLERejectsRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged payload did not panic")
		}
	}()
	HashWordsLE(FNVOffset64, make([]byte, 7))
}

func TestHashScalarReference(t *testing.T) {
	// The scalar baseline is plain FNV-1a; pin one well-known value so the
	// reference itself cannot drift: FNV-1a of the single word 0.
	off := uint64(FNVOffset64)
	want := off * FNVPrime64 // wraps mod 2^64
	if got := HashF32Scalar(FNVOffset64, []float32{0}); got != want {
		t.Fatalf("scalar FNV-1a reference drifted: %x", got)
	}
}

func benchFrame() []float32 {
	r := rand.New(rand.NewSource(42))
	return randFloats(r, 3*64*64)
}

// BenchmarkHashKernel compares the digest implementations on a 3×64×64
// frame (the BENCH_ingress.json digest row): scalar FNV-1a baseline, the
// multi-lane portable kernel, and the AVX2 kernel.
func BenchmarkHashKernel(b *testing.B) {
	data := benchFrame()
	bytes := leBytes(data)
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			sinkHash = HashF32Scalar(FNVOffset64, data)
		}
	})
	b.Run("lanes_go", func(b *testing.B) {
		prev := SetAsmEnabled(false)
		defer SetAsmEnabled(prev)
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			sinkHash = HashF32(FNVOffset64, data)
		}
	})
	b.Run("lanes_asm", func(b *testing.B) {
		if !asmSupported {
			b.Skip("no AVX2 on this host")
		}
		prev := SetAsmEnabled(true)
		defer SetAsmEnabled(prev)
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			sinkHash = HashF32(FNVOffset64, data)
		}
	})
	b.Run("lanes_asm_bytes", func(b *testing.B) {
		if !asmSupported {
			b.Skip("no AVX2 on this host")
		}
		prev := SetAsmEnabled(true)
		defer SetAsmEnabled(prev)
		b.SetBytes(int64(len(bytes)))
		for i := 0; i < b.N; i++ {
			sinkHash = HashWordsLE(FNVOffset64, bytes)
		}
	})
}

var sinkHash uint64
