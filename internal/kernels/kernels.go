// Package kernels holds the register-tiled micro-kernels at the bottom of
// every GEMM in iTask: fused multiply-add dot/axpy primitives over float32
// and the widening int8 dot product the quantized configuration runs on.
//
// Each primitive has two implementations: a portable Go version unrolled
// 4-8× with independent accumulator chains (so the scalar pipeline can
// overlap multiply-add latencies), and an AVX2+FMA assembly version selected
// at startup by CPUID when the host supports it. The assembly carries the
// serving hot path; the Go version is the reference the tests compare it
// against, bit-exactly for int8 (int32 accumulation is associative) and
// within float reassociation tolerance for float32.
//
// The package is dependency-free and imported by internal/tensor and
// internal/quant; keep it that way.
package kernels

// useAsm reports whether the AVX2+FMA kernels are active. It is set once at
// init by the amd64 feature probe and flipped only by tests (via
// SetAsmEnabled) comparing the two implementations.
var useAsm bool

// AsmEnabled reports whether the assembly kernels are in use.
func AsmEnabled() bool { return useAsm }

// SetAsmEnabled forces the implementation choice; it returns the previous
// setting. Enabling has no effect on hosts without AVX2+FMA. Only tests and
// benchmarks should call this.
func SetAsmEnabled(on bool) bool {
	prev := useAsm
	useAsm = on && asmSupported
	return prev
}

// asmCutoff is the vector length below which the call overhead of the
// assembly kernels outweighs their throughput; shorter vectors stay on the
// unrolled Go path (measured: even with the 8-wide assembly tail step, a
// 12-element int8 dot is no faster through the asm call).
const asmCutoff = 16

// Dot returns Σ x[i]*y[i] over len(x) elements. y must be at least as long
// as x.
func Dot(x, y []float32) float32 {
	if useAsm && len(x) >= asmCutoff {
		return dotAsm(&x[0], &y[0], len(x))
	}
	return dotGo(x, y)
}

func dotGo(x, y []float32) float32 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Dot4 computes four dot products of x against b0..b3 in one pass, loading
// x once per step. All b slices must be at least len(x) long.
func Dot4(x, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	if useAsm && len(x) >= asmCutoff {
		var out [4]float32
		dot4Asm(&x[0], &b0[0], &b1[0], &b2[0], &b3[0], len(x), &out[0])
		return out[0], out[1], out[2], out[3]
	}
	return dot4Go(x, b0, b1, b2, b3)
}

func dot4Go(x, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(x)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for i, xv := range x {
		s0 += xv * b0[i]
		s1 += xv * b1[i]
		s2 += xv * b2[i]
		s3 += xv * b3[i]
	}
	return
}

// Axpy accumulates y += a*x over len(x) elements.
func Axpy(a float32, x, y []float32) {
	if useAsm && len(x) >= asmCutoff {
		axpyAsm(a, &x[0], &y[0], len(x))
		return
	}
	axpyGo(a, x, y)
}

func axpyGo(a float32, x, y []float32) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += a * v
	}
}

// Axpy4 accumulates y += a[0]*x0 + a[1]*x1 + a[2]*x2 + a[3]*x3 in a single
// pass over y, the 4-way fused update the ikj GEMM kernel is built from:
// one load+store of y amortizes four multiply-add streams.
func Axpy4(a *[4]float32, x0, x1, x2, x3, y []float32) {
	if useAsm && len(y) >= asmCutoff {
		axpy4Asm(&a[0], &x0[0], &x1[0], &x2[0], &x3[0], &y[0], len(y))
		return
	}
	axpy4Go(a, x0, x1, x2, x3, y)
}

func axpy4Go(a *[4]float32, x0, x1, x2, x3, y []float32) {
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	for i := range y {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// DotI8 returns Σ int32(a[i])*int32(b[i]) with exact int32 accumulation —
// the inner product of the quantized GEMM. b must be at least len(a) long.
func DotI8(a, b []int8) int32 {
	if useAsm && len(a) >= asmCutoff {
		return dotI8Asm(&a[0], &b[0], len(a))
	}
	return dotI8Go(a, b)
}

func dotI8Go(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}
