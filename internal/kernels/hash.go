package kernels

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Multi-lane FNV-1a content hashing, the digest kernel behind
// rcache.DigestImage. The classic FNV-1a loop is a strictly serial
// dependency chain — one xor and one 64-bit multiply per word, each step
// waiting on the last — so it runs at multiply *latency*, not throughput.
// Interleaving hashLanes independent FNV streams (word i feeds lane
// i mod hashLanes within each block) keeps that many multiplies in flight;
// the lanes fold into one 64-bit value at the end with the same
// xor-multiply step.
//
// The lane construction is part of the digest definition: HashF32 over a
// float32 slice and HashWordsLE over that slice's little-endian byte
// encoding return identical values, on every architecture and with the
// assembly on or off. The value is NOT the classic single-stream FNV-1a of
// the same words — callers that persist digests across processes must treat
// a lane-count change as a format change.

// FNV-1a 64-bit parameters (also the seed a caller starts from).
const (
	FNVOffset64 = 14695981039346656037
	FNVPrime64  = 1099511628211
)

// hashLanes is the interleave width; the digest value depends on it.
// Sixteen lanes fill four YMM registers of 64-bit accumulators on the AVX2
// path — and, more importantly, give it two *independent* multiply chains:
// AVX2 has no packed 64-bit multiply, so the FNV step decomposes into a
// ~10-cycle VPMULUDQ/shift/add chain per register pair, and with only 8
// lanes that chain is pure latency (measured: slower than the unrolled
// scalar fallback, whose 8 independent IMULs pipeline at ~1/cycle). The
// portable path runs the same 16 lanes as two 8-wide groups.
const hashLanes = 16

// hashAsmCutoff is the element count below which lane setup and the asm
// call cost more than they save; short inputs take the portable path.
const hashAsmCutoff = 64

// HashF32 absorbs data into a hashLanes-wide FNV-1a digest seeded with seed and
// returns the folded 64-bit value. Floats hash by IEEE-754 bit pattern
// (NaN payloads and signed zeros are distinct content). Allocation-free.
func HashF32(seed uint64, data []float32) uint64 {
	var l [hashLanes]uint64
	initLanes(&l, seed)
	blocks := len(data) / hashLanes
	if useAsm && len(data) >= hashAsmCutoff {
		hashBlocksAsm(&l[0], (*byte)(unsafe.Pointer(&data[0])), blocks)
	} else {
		hashBlocksF32(&l, data[:blocks*hashLanes])
	}
	h := foldLanes(&l)
	for _, v := range data[blocks*hashLanes:] {
		h = (h ^ uint64(math.Float32bits(v))) * FNVPrime64
	}
	return h
}

// HashWordsLE is HashF32 over a raw little-endian float32 (or any 32-bit
// word) payload: b is consumed 4 bytes per word without materializing
// floats. len(b) must be a multiple of 4 (a wire frame payload always is).
// Allocation-free.
func HashWordsLE(seed uint64, b []byte) uint64 {
	if len(b)%4 != 0 {
		panic("kernels: HashWordsLE needs a whole number of 32-bit words")
	}
	n := len(b) / 4
	var l [hashLanes]uint64
	initLanes(&l, seed)
	blocks := n / hashLanes
	if useAsm && n >= hashAsmCutoff {
		hashBlocksAsm(&l[0], &b[0], blocks)
	} else {
		hashBlocksLE(&l, b[:blocks*hashLanes*4])
	}
	h := foldLanes(&l)
	for i := blocks * hashLanes; i < n; i++ {
		h = (h ^ uint64(binary.LittleEndian.Uint32(b[4*i:]))) * FNVPrime64
	}
	return h
}

// HashF32Scalar is the classic single-stream FNV-1a over the same words —
// the pre-lane digest kept as the reference baseline the vectorized kernel
// is benchmarked against (and a regression oracle for the serial
// definition). Its value differs from HashF32 by construction.
func HashF32Scalar(seed uint64, data []float32) uint64 {
	h := seed
	for _, v := range data {
		h = (h ^ uint64(math.Float32bits(v))) * FNVPrime64
	}
	return h
}

// initLanes derives the lane seeds from the caller's seed: lane 0 carries
// it verbatim, each further lane is one FNV step over the lane index so the
// streams start decorrelated but deterministically.
func initLanes(l *[hashLanes]uint64, seed uint64) {
	l[0] = seed
	for j := 1; j < hashLanes; j++ {
		l[j] = (l[j-1] ^ uint64(j)) * FNVPrime64
	}
}

// foldLanes collapses the lane accumulators into one value with the same
// xor-multiply absorption step, in lane order.
func foldLanes(l *[hashLanes]uint64) uint64 {
	h := uint64(FNVOffset64)
	for j := 0; j < hashLanes; j++ {
		h = (h ^ l[j]) * FNVPrime64
	}
	return h
}

// hashBlocksF32 is the portable block kernel: sixteen independent
// xor-multiply chains, manually interleaved as two 8-wide groups so the
// compiler keeps many MULs in flight instead of one serial chain at
// multiply latency. (Sixteen locals would spill on amd64's 14 usable
// registers; two 8-wide passes over each block stay register-resident and
// 64-bit IMUL throughput is the bound either way.)
func hashBlocksF32(l *[hashLanes]uint64, data []float32) {
	l0, l1, l2, l3 := l[0], l[1], l[2], l[3]
	l4, l5, l6, l7 := l[4], l[5], l[6], l[7]
	for i := 0; i+hashLanes <= len(data); i += hashLanes {
		l0 = (l0 ^ uint64(math.Float32bits(data[i]))) * FNVPrime64
		l1 = (l1 ^ uint64(math.Float32bits(data[i+1]))) * FNVPrime64
		l2 = (l2 ^ uint64(math.Float32bits(data[i+2]))) * FNVPrime64
		l3 = (l3 ^ uint64(math.Float32bits(data[i+3]))) * FNVPrime64
		l4 = (l4 ^ uint64(math.Float32bits(data[i+4]))) * FNVPrime64
		l5 = (l5 ^ uint64(math.Float32bits(data[i+5]))) * FNVPrime64
		l6 = (l6 ^ uint64(math.Float32bits(data[i+6]))) * FNVPrime64
		l7 = (l7 ^ uint64(math.Float32bits(data[i+7]))) * FNVPrime64
	}
	l[0], l[1], l[2], l[3] = l0, l1, l2, l3
	l[4], l[5], l[6], l[7] = l4, l5, l6, l7
	l0, l1, l2, l3 = l[8], l[9], l[10], l[11]
	l4, l5, l6, l7 = l[12], l[13], l[14], l[15]
	for i := 8; i+8 <= len(data); i += hashLanes {
		l0 = (l0 ^ uint64(math.Float32bits(data[i]))) * FNVPrime64
		l1 = (l1 ^ uint64(math.Float32bits(data[i+1]))) * FNVPrime64
		l2 = (l2 ^ uint64(math.Float32bits(data[i+2]))) * FNVPrime64
		l3 = (l3 ^ uint64(math.Float32bits(data[i+3]))) * FNVPrime64
		l4 = (l4 ^ uint64(math.Float32bits(data[i+4]))) * FNVPrime64
		l5 = (l5 ^ uint64(math.Float32bits(data[i+5]))) * FNVPrime64
		l6 = (l6 ^ uint64(math.Float32bits(data[i+6]))) * FNVPrime64
		l7 = (l7 ^ uint64(math.Float32bits(data[i+7]))) * FNVPrime64
	}
	l[8], l[9], l[10], l[11] = l0, l1, l2, l3
	l[12], l[13], l[14], l[15] = l4, l5, l6, l7
}

// hashBlocksLE is hashBlocksF32 over the little-endian byte encoding.
func hashBlocksLE(l *[hashLanes]uint64, b []byte) {
	l0, l1, l2, l3 := l[0], l[1], l[2], l[3]
	l4, l5, l6, l7 := l[4], l[5], l[6], l[7]
	for i := 0; i+hashLanes*4 <= len(b); i += hashLanes * 4 {
		l0 = (l0 ^ uint64(binary.LittleEndian.Uint32(b[i:]))) * FNVPrime64
		l1 = (l1 ^ uint64(binary.LittleEndian.Uint32(b[i+4:]))) * FNVPrime64
		l2 = (l2 ^ uint64(binary.LittleEndian.Uint32(b[i+8:]))) * FNVPrime64
		l3 = (l3 ^ uint64(binary.LittleEndian.Uint32(b[i+12:]))) * FNVPrime64
		l4 = (l4 ^ uint64(binary.LittleEndian.Uint32(b[i+16:]))) * FNVPrime64
		l5 = (l5 ^ uint64(binary.LittleEndian.Uint32(b[i+20:]))) * FNVPrime64
		l6 = (l6 ^ uint64(binary.LittleEndian.Uint32(b[i+24:]))) * FNVPrime64
		l7 = (l7 ^ uint64(binary.LittleEndian.Uint32(b[i+28:]))) * FNVPrime64
	}
	l[0], l[1], l[2], l[3] = l0, l1, l2, l3
	l[4], l[5], l[6], l[7] = l4, l5, l6, l7
	l0, l1, l2, l3 = l[8], l[9], l[10], l[11]
	l4, l5, l6, l7 = l[12], l[13], l[14], l[15]
	for i := 32; i+32 <= len(b); i += hashLanes * 4 {
		l0 = (l0 ^ uint64(binary.LittleEndian.Uint32(b[i:]))) * FNVPrime64
		l1 = (l1 ^ uint64(binary.LittleEndian.Uint32(b[i+4:]))) * FNVPrime64
		l2 = (l2 ^ uint64(binary.LittleEndian.Uint32(b[i+8:]))) * FNVPrime64
		l3 = (l3 ^ uint64(binary.LittleEndian.Uint32(b[i+12:]))) * FNVPrime64
		l4 = (l4 ^ uint64(binary.LittleEndian.Uint32(b[i+16:]))) * FNVPrime64
		l5 = (l5 ^ uint64(binary.LittleEndian.Uint32(b[i+20:]))) * FNVPrime64
		l6 = (l6 ^ uint64(binary.LittleEndian.Uint32(b[i+24:]))) * FNVPrime64
		l7 = (l7 ^ uint64(binary.LittleEndian.Uint32(b[i+28:]))) * FNVPrime64
	}
	l[8], l[9], l[10], l[11] = l0, l1, l2, l3
	l[12], l[13], l[14], l[15] = l4, l5, l6, l7
}
