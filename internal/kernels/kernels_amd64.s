//go:build !noasm

// AVX2+FMA micro-kernels. Plan 9 operand order: source(s) first, destination
// last; VFMADD231PS m, a, d computes d += a*m elementwise.

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotAsm(x, y *float32, n int) float32
TEXT ·dotAsm(SB), NOSPLIT, $0-28
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, DX
	SHRQ $4, DX          // 16 floats per iteration, two FMA chains
	JZ   dot_reduce
dot_loop16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VFMADD231PS (DI), Y2, Y0
	VFMADD231PS 32(DI), Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  dot_loop16
dot_reduce:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $15, CX
	JZ   dot_done
dot_tail:
	VMOVSS (SI), X2
	VFMADD231SS (DI), X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_tail
dot_done:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func dot4Asm(x, b0, b1, b2, b3 *float32, n int, out *float32)
TEXT ·dot4Asm(SB), NOSPLIT, $0-56
	MOVQ x+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $3, DX          // 8 floats per iteration, x loaded once
	JZ   d4_reduce
d4_loop8:
	VMOVUPS (SI), Y4
	VFMADD231PS (R8), Y4, Y0
	VFMADD231PS (R9), Y4, Y1
	VFMADD231PS (R10), Y4, Y2
	VFMADD231PS (R11), Y4, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ DX
	JNZ  d4_loop8
d4_reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS X4, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS X4, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	ANDQ $7, CX
	JZ   d4_done
d4_tail:
	VMOVSS (SI), X4
	VFMADD231SS (R8), X4, X0
	VFMADD231SS (R9), X4, X1
	VFMADD231SS (R10), X4, X2
	VFMADD231SS (R11), X4, X3
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  d4_tail
d4_done:
	MOVQ out+48(FP), AX
	VMOVSS X0, (AX)
	VMOVSS X1, 4(AX)
	VMOVSS X2, 8(AX)
	VMOVSS X3, 12(AX)
	VZEROUPPER
	RET

// func axpyAsm(a float32, x, y *float32, n int)
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	VBROADCASTSS a+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $4, DX          // 16 floats per iteration
	JZ   axpy_tail_setup
axpy_loop16:
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VFMADD231PS (SI), Y0, Y1
	VFMADD231PS 32(SI), Y0, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  axpy_loop16
axpy_tail_setup:
	ANDQ $15, CX
	JZ   axpy_done
axpy_tail:
	VMOVSS (DI), X1
	VMOVSS (SI), X2
	VFMADD231SS X0, X2, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  axpy_tail
axpy_done:
	VZEROUPPER
	RET

// func axpy4Asm(a, x0, x1, x2, x3, y *float32, n int)
// a points at 4 packed coefficients.
TEXT ·axpy4Asm(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), AX
	VBROADCASTSS (AX), Y0
	VBROADCASTSS 4(AX), Y1
	VBROADCASTSS 8(AX), Y2
	VBROADCASTSS 12(AX), Y3
	MOVQ x0+8(FP), SI
	MOVQ x1+16(FP), R8
	MOVQ x2+24(FP), R9
	MOVQ x3+32(FP), R10
	MOVQ y+40(FP), DI
	MOVQ n+48(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX          // 8 floats per iteration, y loaded+stored once
	JZ   a4_tail_setup
a4_loop8:
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS (R8), Y1, Y4
	VFMADD231PS (R9), Y2, Y4
	VFMADD231PS (R10), Y3, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, DI
	DECQ DX
	JNZ  a4_loop8
a4_tail_setup:
	ANDQ $7, CX
	JZ   a4_done
a4_tail:
	VMOVSS (DI), X4
	VMOVSS (SI), X5
	VFMADD231SS X0, X5, X4
	VMOVSS (R8), X5
	VFMADD231SS X1, X5, X4
	VMOVSS (R9), X5
	VFMADD231SS X2, X5, X4
	VMOVSS (R10), X5
	VFMADD231SS X3, X5, X4
	VMOVSS X4, (DI)
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, DI
	DECQ CX
	JNZ  a4_tail
a4_done:
	VZEROUPPER
	RET

// func hashBlocksAsm(lanes *uint64, p *byte, nblocks int)
//
// Absorbs nblocks 16-word blocks of 32-bit little-endian words at p into
// the 16 FNV-1a lane accumulators at lanes: lane j ^= word, lane j *=
// prime, for j = block word index. Lanes live four per register in Y0-Y3,
// giving four independent dependency chains — with fewer, the decomposed
// multiply below is pure latency and the kernel loses to scalar IMUL
// chains. AVX2 has no packed 64×64 multiply, so h*prime mod 2^64 is
// decomposed around prime = ph·2^32 + pl (ph = 0x100, pl = 0x1B3):
//
//	h·prime ≡ lo(h)·pl + ((hi(h)·pl + lo(h)·ph) << 32)
//
// lo(h)·pl and hi(h)·pl are VPMULUDQ; lo(h)·ph is a left shift by 8 (only
// the low 32 bits of the parenthesized sum survive the <<32, so shifting
// all of h is equivalent and saves the mask). hi(h) reaches VPMULUDQ's
// even-dword operand slots via VPSHUFD (a shuffle-port op, keeping the
// shift/multiply ports for the arithmetic) — the odd dwords it also copies
// are ignored by VPMULUDQ.
TEXT ·hashBlocksAsm(SB), NOSPLIT, $0-24
	MOVQ lanes+0(FP), DI
	MOVQ p+8(FP), SI
	MOVQ nblocks+16(FP), CX
	TESTQ CX, CX
	JZ   hash_ret
	MOVQ $0x1B3, AX
	MOVQ AX, X15
	VPBROADCASTQ X15, Y15   // pl splat across the four 64-bit lanes
	VMOVDQU (DI), Y0
	VMOVDQU 32(DI), Y1
	VMOVDQU 64(DI), Y2
	VMOVDQU 96(DI), Y3
hash_loop:
	VPMOVZXDQ (SI), Y4      // 4 dwords -> 4 zero-extended qwords
	VPMOVZXDQ 16(SI), Y5
	VPMOVZXDQ 32(SI), Y6
	VPMOVZXDQ 48(SI), Y7
	VPXOR Y4, Y0, Y0
	VPXOR Y5, Y1, Y1
	VPXOR Y6, Y2, Y2
	VPXOR Y7, Y3, Y3
	VPMULUDQ Y15, Y0, Y4    // lo(h)*pl
	VPSHUFD $0xF5, Y0, Y5   // hi(h) into the even dword slots
	VPMULUDQ Y15, Y5, Y5    // hi(h)*pl
	VPSLLQ $8, Y0, Y6       // lo(h)*ph (low 32 bits are all that survive)
	VPADDQ Y6, Y5, Y5
	VPSLLQ $32, Y5, Y5
	VPADDQ Y5, Y4, Y0
	VPMULUDQ Y15, Y1, Y4
	VPSHUFD $0xF5, Y1, Y5
	VPMULUDQ Y15, Y5, Y5
	VPSLLQ $8, Y1, Y6
	VPADDQ Y6, Y5, Y5
	VPSLLQ $32, Y5, Y5
	VPADDQ Y5, Y4, Y1
	VPMULUDQ Y15, Y2, Y4
	VPSHUFD $0xF5, Y2, Y5
	VPMULUDQ Y15, Y5, Y5
	VPSLLQ $8, Y2, Y6
	VPADDQ Y6, Y5, Y5
	VPSLLQ $32, Y5, Y5
	VPADDQ Y5, Y4, Y2
	VPMULUDQ Y15, Y3, Y4
	VPSHUFD $0xF5, Y3, Y5
	VPMULUDQ Y15, Y5, Y5
	VPSLLQ $8, Y3, Y6
	VPADDQ Y6, Y5, Y5
	VPSLLQ $32, Y5, Y5
	VPADDQ Y5, Y4, Y3
	ADDQ $64, SI
	DECQ CX
	JNZ  hash_loop
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
hash_ret:
	VZEROUPPER
	RET

// func dotI8Asm(a, b *int8, n int) int32
TEXT ·dotI8Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
	VPXOR Y4, Y4, Y4
	MOVQ CX, DX
	SHRQ $5, DX          // 32 int8 per iteration, two accumulator chains
	JZ   i8_reduce
i8_loop32:
	VPMOVSXBW (SI), Y1   // 16 int8 -> 16 int16
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y1, Y3  // pairwise int16 products summed to 8 int32
	VPADDD Y3, Y0, Y0
	VPMOVSXBW 16(SI), Y1
	VPMOVSXBW 16(DI), Y2
	VPMADDWD Y2, Y1, Y3
	VPADDD Y3, Y4, Y4
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  i8_loop32
i8_reduce:
	VPADDD Y4, Y0, Y0
	ANDQ $31, CX

	// 16-wide tail step: one more widening multiply-accumulate on Y0.
	CMPQ CX, $16
	JL   i8_fold
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y1, Y3
	VPADDD Y3, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX

i8_fold:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0

	// 8-wide tail step on the folded xmm accumulator (after the 128-bit
	// fold so the VEX write to X0 cannot clobber a live upper lane).
	CMPQ CX, $8
	JL   i8_hsum
	VPMOVSXBW (SI), X1
	VPMOVSXBW (DI), X2
	VPMADDWD X2, X1, X3
	VPADDD X3, X0, X0
	ADDQ $8, SI
	ADDQ $8, DI
	SUBQ $8, CX

i8_hsum:
	VPSHUFD $0x4E, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD X1, X0, X0
	VMOVD X0, AX
	TESTQ CX, CX
	JZ   i8_done
i8_tail:
	MOVBLSX (SI), R8
	MOVBLSX (DI), R9
	IMULL R9, R8
	ADDL R8, AX
	INCQ SI
	INCQ DI
	DECQ CX
	JNZ  i8_tail
i8_done:
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET
