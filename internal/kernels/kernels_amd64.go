//go:build !noasm

package kernels

// asmSupported reports AVX2+FMA availability (CPUID plus OS ymm-state
// support via XGETBV). The assembly kernels require both.
var asmSupported = detectAVX2FMA()

func init() { useAsm = asmSupported }

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS saves ymm state.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}

// Implemented in kernels_amd64.s.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

//go:noescape
func dotAsm(x, y *float32, n int) float32

//go:noescape
func dot4Asm(x, b0, b1, b2, b3 *float32, n int, out *float32)

//go:noescape
func axpyAsm(a float32, x, y *float32, n int)

//go:noescape
func axpy4Asm(a, x0, x1, x2, x3, y *float32, n int)

//go:noescape
func dotI8Asm(a, b *int8, n int) int32

//go:noescape
func hashBlocksAsm(lanes *uint64, p *byte, nblocks int)
