package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// withAsm runs f once with the assembly kernels enabled and once disabled,
// so every test covers both implementations on hosts that have AVX2.
func withAsm(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	for _, on := range []bool{false, true} {
		prev := SetAsmEnabled(on)
		name := "go"
		if on && AsmEnabled() {
			name = "asm"
		} else if on {
			SetAsmEnabled(prev)
			continue // host has no AVX2+FMA
		}
		t.Run(name, f)
		SetAsmEnabled(prev)
	}
}

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func randI8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(256) - 128)
	}
	return out
}

func closeEnough(a, b float32, n int) bool {
	diff := math.Abs(float64(a - b))
	tol := 1e-4 * (1 + math.Abs(float64(b))) * math.Sqrt(float64(n+1))
	return diff <= tol
}

// refDot is a deliberately simple float64 reference.
func refDot(x, y []float32) float32 {
	var s float64
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return float32(s)
}

func TestDotAllLengths(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		for n := 0; n <= 130; n++ {
			x := randF32(rng, n)
			y := randF32(rng, n)
			got := Dot(x, y)
			want := refDot(x, y)
			if !closeEnough(got, want, n) {
				t.Fatalf("Dot n=%d: got %v want %v", n, got, want)
			}
		}
	})
}

func TestDotUnaligned(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(2))
		base := randF32(rng, 200)
		for off := 0; off < 9; off++ {
			x := base[off : off+64]
			y := base[off+70 : off+134]
			if !closeEnough(Dot(x, y), refDot(x, y), 64) {
				t.Fatalf("Dot unaligned offset %d mismatch", off)
			}
		}
	})
}

func TestDot4AllLengths(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for n := 0; n <= 100; n++ {
			x := randF32(rng, n)
			bs := [4][]float32{randF32(rng, n), randF32(rng, n), randF32(rng, n), randF32(rng, n)}
			s0, s1, s2, s3 := Dot4(x, bs[0], bs[1], bs[2], bs[3])
			for i, got := range []float32{s0, s1, s2, s3} {
				if want := refDot(x, bs[i]); !closeEnough(got, want, n) {
					t.Fatalf("Dot4 n=%d lane %d: got %v want %v", n, i, got, want)
				}
			}
		}
	})
}

func TestAxpyAllLengths(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(4))
		for n := 0; n <= 130; n++ {
			a := float32(rng.NormFloat64())
			x := randF32(rng, n)
			y := randF32(rng, n)
			want := make([]float32, n)
			for i := range want {
				want[i] = y[i] + a*x[i]
			}
			Axpy(a, x, y)
			for i := range y {
				if !closeEnough(y[i], want[i], 1) {
					t.Fatalf("Axpy n=%d idx %d: got %v want %v", n, i, y[i], want[i])
				}
			}
		}
	})
}

func TestAxpy4AllLengths(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for n := 0; n <= 100; n++ {
			var a [4]float32
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}
			xs := [4][]float32{randF32(rng, n), randF32(rng, n), randF32(rng, n), randF32(rng, n)}
			y := randF32(rng, n)
			want := make([]float32, n)
			for i := range want {
				want[i] = y[i] + a[0]*xs[0][i] + a[1]*xs[1][i] + a[2]*xs[2][i] + a[3]*xs[3][i]
			}
			Axpy4(&a, xs[0], xs[1], xs[2], xs[3], y)
			for i := range y {
				if !closeEnough(y[i], want[i], 4) {
					t.Fatalf("Axpy4 n=%d idx %d: got %v want %v", n, i, y[i], want[i])
				}
			}
		}
	})
}

func TestDotI8AllLengths(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(6))
		for n := 0; n <= 200; n++ {
			a := randI8(rng, n)
			b := randI8(rng, n)
			var want int32
			for i := range a {
				want += int32(a[i]) * int32(b[i])
			}
			if got := DotI8(a, b); got != want {
				t.Fatalf("DotI8 n=%d: got %d want %d (int8 dot must be exact)", n, got, want)
			}
		}
	})
}

func TestDotI8Extremes(t *testing.T) {
	withAsm(t, func(t *testing.T) {
		// All -128*-128 products: the widening path must not saturate.
		n := 96
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i], b[i] = -128, -128
		}
		want := int32(n) * 16384
		if got := DotI8(a, b); got != want {
			t.Fatalf("DotI8 extremes: got %d want %d", got, want)
		}
	})
}

func TestAsmMatchesGoExactlyI8(t *testing.T) {
	if !asmSupported {
		t.Skip("no AVX2+FMA on this host")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(500)
		a := randI8(rng, n)
		b := randI8(rng, n)
		if g, w := dotI8Go(a, b), DotI8(a, b); g != w {
			t.Fatalf("asm/go int8 dot differ at n=%d: %d vs %d", n, g, w)
		}
	}
}

func BenchmarkDotI8_256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randI8(rng, 256)
	y := randI8(rng, 256)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += DotI8(x, y)
	}
	_ = sink
}

func BenchmarkDot_256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randF32(rng, 256)
	y := randF32(rng, 256)
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkAxpy4_256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := [4]float32{0.1, 0.2, 0.3, 0.4}
	x0, x1, x2, x3 := randF32(rng, 256), randF32(rng, 256), randF32(rng, 256), randF32(rng, 256)
	y := randF32(rng, 256)
	for i := 0; i < b.N; i++ {
		Axpy4(&a, x0, x1, x2, x3, y)
	}
}
