//go:build !amd64 || noasm

package kernels

// Non-amd64 hosts — and amd64 builds with the asm gated off via the noasm
// build tag (CI's cross-compile matrix) — always run the portable unrolled
// Go kernels.
const asmSupported = false

func dotAsm(x, y *float32, n int) float32                     { panic("kernels: no asm") }
func dot4Asm(x, b0, b1, b2, b3 *float32, n int, out *float32) { panic("kernels: no asm") }
func axpyAsm(a float32, x, y *float32, n int)                 { panic("kernels: no asm") }
func axpy4Asm(a, x0, x1, x2, x3, y *float32, n int)           { panic("kernels: no asm") }
func dotI8Asm(a, b *int8, n int) int32                        { panic("kernels: no asm") }
func hashBlocksAsm(lanes *uint64, p *byte, nblocks int)       { panic("kernels: no asm") }
