package vit

import (
	"fmt"

	"itask/internal/nn"
	"itask/internal/tensor"
)

// AttentionRollout computes a per-token saliency map for ONE image using
// attention rollout (Abnar & Zuidema, 2020): per block, the head-averaged
// attention matrix is mixed with the residual identity (0.5·A + 0.5·I),
// row-normalized, and the per-block matrices are multiplied front to back.
// The returned length-Tokens vector is each token's column mass in the
// rolled-out matrix, normalized to sum to 1 — how much total attention
// flows into each patch.
//
// The model's attention caches are populated by a training-mode forward
// pass internally (weights are untouched: no Backward runs, and the
// experiment configs use zero dropout).
func (m *Model) AttentionRollout(img *tensor.Tensor) []float64 {
	patches := Patchify(m.Cfg, []*tensor.Tensor{img})
	m.Forward(patches, true) // populate attention caches
	t := m.Cfg.Tokens()

	// Start with identity.
	rolled := tensor.New(t, t)
	for i := 0; i < t; i++ {
		rolled.Set(1, i, i)
	}
	for _, layer := range m.Trunk.Layers {
		res, ok := layer.(*nn.Residual)
		if !ok {
			continue
		}
		seq, ok := res.Body.(*nn.Sequential)
		if !ok || len(seq.Layers) < 2 {
			continue
		}
		mhsa, ok := seq.Layers[1].(*nn.MultiHeadAttention)
		if !ok {
			continue
		}
		probs := mhsa.LastProbs()
		if len(probs) < m.Cfg.Heads {
			panic(fmt.Sprintf("vit: attention cache has %d matrices, want >= %d", len(probs), m.Cfg.Heads))
		}
		// Head-average for the single image (batch 0).
		avg := tensor.New(t, t)
		for h := 0; h < m.Cfg.Heads; h++ {
			avg.AddInPlace(probs[h])
		}
		avg.ScaleInPlace(1 / float32(m.Cfg.Heads))
		// Mix with the residual identity and row-normalize.
		for i := 0; i < t; i++ {
			var sum float32
			for j := 0; j < t; j++ {
				v := 0.5 * avg.At(i, j)
				if i == j {
					v += 0.5
				}
				avg.Set(v, i, j)
				sum += v
			}
			for j := 0; j < t; j++ {
				avg.Set(avg.At(i, j)/sum, i, j)
			}
		}
		rolled = tensor.MatMul(avg, rolled)
	}
	// Column mass: total attention received by each token.
	out := make([]float64, t)
	var total float64
	for j := 0; j < t; j++ {
		var col float64
		for i := 0; i < t; i++ {
			col += float64(rolled.At(i, j))
		}
		out[j] = col
		total += col
	}
	if total > 0 {
		for j := range out {
			out[j] /= total
		}
	}
	return out
}

// RenderSaliencyASCII draws a Grid×Grid saliency map as characters from
// light to heavy, for terminal inspection.
func RenderSaliencyASCII(cfg Config, saliency []float64) string {
	g := cfg.Grid()
	if len(saliency) != g*g {
		panic(fmt.Sprintf("vit: saliency length %d for %dx%d grid", len(saliency), g, g))
	}
	ramp := []byte(" .:-=+*#%@")
	mx := 0.0
	for _, v := range saliency {
		if v > mx {
			mx = v
		}
	}
	var b []byte
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			level := 0
			if mx > 0 {
				level = int(saliency[y*g+x] / mx * float64(len(ramp)-1))
			}
			b = append(b, ramp[level], ramp[level])
		}
		b = append(b, '\n')
	}
	return string(b)
}
