package vit

import (
	"fmt"

	"itask/internal/nn"
	"itask/internal/tensor"
)

// PosEmbed adds a learned per-token position embedding to a packed
// (B*T, Dim) activation.
type PosEmbed struct {
	Tokens, Dim int
	Emb         *nn.Param
	batch       int
}

// NewPosEmbed creates a position embedding initialized with small noise.
func NewPosEmbed(name string, tokens, dim int, rng *tensor.RNG) *PosEmbed {
	return &PosEmbed{
		Tokens: tokens, Dim: dim,
		Emb: nn.NewParam(name+".pos", tensor.Randn(rng, 0.02, tokens, dim)),
	}
}

// Forward adds the embedding row for each token position.
func (p *PosEmbed) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	rows := x.Shape[0]
	if rows%p.Tokens != 0 {
		panic(fmt.Sprintf("vit: PosEmbed rows %d not multiple of tokens %d", rows, p.Tokens))
	}
	if train {
		p.batch = rows / p.Tokens
	}
	y := x.Clone()
	d := p.Dim
	for i := 0; i < rows; i++ {
		tok := i % p.Tokens
		yr := y.Data[i*d : (i+1)*d]
		er := p.Emb.W.Data[tok*d : (tok+1)*d]
		for j, e := range er {
			yr[j] += e
		}
	}
	return y
}

// Backward accumulates token-position gradients and passes dy through.
func (p *PosEmbed) Backward(dy *tensor.Tensor) *tensor.Tensor {
	rows := dy.Shape[0]
	d := p.Dim
	for i := 0; i < rows; i++ {
		tok := i % p.Tokens
		gr := p.Emb.G.Data[tok*d : (tok+1)*d]
		dr := dy.Data[i*d : (i+1)*d]
		for j, g := range dr {
			gr[j] += g
		}
	}
	return dy
}

// Params returns the embedding parameter.
func (p *PosEmbed) Params() []*nn.Param { return []*nn.Param{p.Emb} }

// Model is the iTask vision transformer. It owns a patch-embedding trunk and
// two heads; see package comment. All state is single-goroutine; clone the
// model (via checkpoint round-trip) for concurrent inference.
type Model struct {
	Cfg   Config
	Embed *nn.Linear
	Pos   *PosEmbed
	Trunk *nn.Sequential // transformer blocks + final norm
	Det   *nn.Linear     // per-token detection head
	Cls   *nn.Linear     // pooled classification head

	// caches for backward
	feats *tensor.Tensor
	batch int
}

// New builds a model with freshly initialized weights drawn from rng.
func New(cfg Config, rng *tensor.RNG) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{
		Cfg:   cfg,
		Embed: nn.NewLinear("embed", cfg.PatchDim(), cfg.Dim, rng),
		Pos:   NewPosEmbed("embed", cfg.Tokens(), cfg.Dim, rng),
		Trunk: nn.NewSequential(),
	}
	for i := 0; i < cfg.Depth; i++ {
		p := fmt.Sprintf("block%d", i)
		attn := nn.NewSequential(
			nn.NewLayerNorm(p+".ln1", cfg.Dim),
			nn.NewMultiHeadAttention(p+".attn", cfg.Dim, cfg.Heads, cfg.Tokens(), rng),
		)
		mlp := nn.NewSequential(
			nn.NewLayerNorm(p+".ln2", cfg.Dim),
			nn.NewLinear(p+".mlp1", cfg.Dim, cfg.MLPRatio*cfg.Dim, rng),
			nn.NewGELU(),
			nn.NewLinear(p+".mlp2", cfg.MLPRatio*cfg.Dim, cfg.Dim, rng),
		)
		if cfg.Dropout > 0 {
			attn.Append(nn.NewDropout(cfg.Dropout, rng.Split()))
			mlp.Append(nn.NewDropout(cfg.Dropout, rng.Split()))
		}
		m.Trunk.Append(nn.NewResidual(attn), nn.NewResidual(mlp))
	}
	m.Trunk.Append(nn.NewLayerNorm("norm_f", cfg.Dim))
	m.Det = nn.NewLinear("det_head", cfg.Dim, cfg.DetWidth(), rng)
	m.Cls = nn.NewLinear("cls_head", cfg.Dim, cfg.Classes, rng)
	return m
}

// Forward runs the trunk on packed patches of shape (B*Tokens, PatchDim) and
// returns the token features (B*Tokens, Dim). Call DetHead/ClsHead on the
// result; then Backward with the head gradients.
func (m *Model) Forward(patches *tensor.Tensor, train bool) *tensor.Tensor {
	if patches.Dims() != 2 || patches.Shape[1] != m.Cfg.PatchDim() {
		panic(fmt.Sprintf("vit: Forward wants (B*T,%d) patches, got %v", m.Cfg.PatchDim(), patches.Shape))
	}
	if patches.Shape[0]%m.Cfg.Tokens() != 0 {
		panic(fmt.Sprintf("vit: %d rows not a multiple of %d tokens", patches.Shape[0], m.Cfg.Tokens()))
	}
	x := m.Embed.Forward(patches, train)
	x = m.Pos.Forward(x, train)
	feats := m.Trunk.Forward(x, train)
	if train {
		m.feats = feats
		m.batch = patches.Shape[0] / m.Cfg.Tokens()
	}
	return feats
}

// DetHead applies the detection head to token features, producing
// (B*Tokens, 5+Classes) raw predictions.
func (m *Model) DetHead(feats *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Det.Forward(feats, train)
}

// ClsHead mean-pools token features per image and applies the classification
// head, producing (B, Classes) logits.
func (m *Model) ClsHead(feats *tensor.Tensor, train bool) *tensor.Tensor {
	pooled := m.pool(feats)
	return m.Cls.Forward(pooled, train)
}

// PoolFeats mean-pools token features (B*Tokens, Dim) to per-image vectors
// (B, Dim); exposed for feature-matching distillation.
func (m *Model) PoolFeats(feats *tensor.Tensor) *tensor.Tensor { return m.pool(feats) }

// pool mean-pools (B*T, D) to (B, D).
func (m *Model) pool(feats *tensor.Tensor) *tensor.Tensor {
	t := m.Cfg.Tokens()
	b := feats.Shape[0] / t
	d := feats.Shape[1]
	out := tensor.New(b, d)
	inv := float32(1) / float32(t)
	for bi := 0; bi < b; bi++ {
		orow := out.Data[bi*d : (bi+1)*d]
		for ti := 0; ti < t; ti++ {
			frow := feats.Data[(bi*t+ti)*d : (bi*t+ti+1)*d]
			for j, v := range frow {
				orow[j] += v * inv
			}
		}
	}
	return out
}

// Backward propagates head gradients through the trunk. Either gradient may
// be nil if that head was unused this step. dDet has shape
// (B*Tokens, DetWidth); dCls has shape (B, Classes).
func (m *Model) Backward(dDet, dCls *tensor.Tensor) {
	m.BackwardExtra(dDet, dCls, nil)
}

// BackwardExtra is Backward with an additional gradient applied directly to
// the trunk's output features (B*Tokens, Dim) — used by feature-matching
// distillation losses that hook the representation rather than a head.
func (m *Model) BackwardExtra(dDet, dCls, dFeatsExtra *tensor.Tensor) {
	if m.feats == nil {
		panic("vit: Backward before Forward(train=true)")
	}
	t := m.Cfg.Tokens()
	d := m.Cfg.Dim
	dFeats := tensor.New(m.batch*t, d)
	if dFeatsExtra != nil {
		dFeats.AddInPlace(dFeatsExtra)
	}
	if dDet != nil {
		dFeats.AddInPlace(m.Det.Backward(dDet))
	}
	if dCls != nil {
		dPooled := m.Cls.Backward(dCls) // (B, Dim)
		inv := float32(1) / float32(t)
		for bi := 0; bi < m.batch; bi++ {
			prow := dPooled.Data[bi*d : (bi+1)*d]
			for ti := 0; ti < t; ti++ {
				frow := dFeats.Data[(bi*t+ti)*d : (bi*t+ti+1)*d]
				for j, v := range prow {
					frow[j] += v * inv
				}
			}
		}
	}
	dx := m.Trunk.Backward(dFeats)
	dx = m.Pos.Backward(dx)
	m.Embed.Backward(dx)
}

// Params returns every trainable parameter of the model.
func (m *Model) Params() []*nn.Param {
	ps := append(m.Embed.Params(), m.Pos.Params()...)
	ps = append(ps, m.Trunk.Params()...)
	ps = append(ps, m.Det.Params()...)
	ps = append(ps, m.Cls.Params()...)
	return ps
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.CountParams(m.Params()) }

// Patchify converts a batch of (C,H,W) images into the packed
// (B*Tokens, PatchDim) layout the model consumes. Patches are extracted in
// row-major grid order; within a patch, values are ordered channel-major
// (c, then y, then x), matching the Workload the hardware mapper assumes.
func Patchify(cfg Config, images []*tensor.Tensor) *tensor.Tensor {
	g := cfg.Grid()
	p := cfg.PatchSize
	pd := cfg.PatchDim()
	out := tensor.New(len(images)*cfg.Tokens(), pd)
	for bi, img := range images {
		if img.Dims() != 3 || img.Shape[0] != cfg.Channels || img.Shape[1] != cfg.ImageSize || img.Shape[2] != cfg.ImageSize {
			panic(fmt.Sprintf("vit: Patchify image %d has shape %v, want (%d,%d,%d)",
				bi, img.Shape, cfg.Channels, cfg.ImageSize, cfg.ImageSize))
		}
		for gy := 0; gy < g; gy++ {
			for gx := 0; gx < g; gx++ {
				row := out.Data[(bi*cfg.Tokens()+gy*g+gx)*pd:]
				k := 0
				for c := 0; c < cfg.Channels; c++ {
					for y := 0; y < p; y++ {
						srcOff := (c*cfg.ImageSize+(gy*p+y))*cfg.ImageSize + gx*p
						copy(row[k:k+p], img.Data[srcOff:srcOff+p])
						k += p
					}
				}
			}
		}
	}
	return out
}
