package vit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"itask/internal/nn"
)

// Checkpoint format: a simple little-endian binary stream —
//
//	magic "ITSK" | version u32 | paramCount u32 |
//	per param: nameLen u32, name, rank u32, dims []u32, data []f32
//
// Parameters are matched by name on load, so a checkpoint survives
// reorderings of Params() but not renames.
const (
	ckptMagic   = "ITSK"
	ckptVersion = 1
)

// SaveParams writes the parameters to w in checkpoint format.
func SaveParams(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.W.Shape))); err != nil {
			return err
		}
		for _, d := range p.W.Shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint from r into params, matching by name.
// Every parameter in params must be present in the stream with an identical
// shape; extra parameters in the stream are an error too, so a checkpoint
// can never silently half-load.
func LoadParams(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("vit: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("vit: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("vit: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		if _, dup := byName[p.Name]; dup {
			return fmt.Errorf("vit: duplicate parameter name %q", p.Name)
		}
		byName[p.Name] = p
	}
	if int(count) != len(params) {
		return fmt.Errorf("vit: checkpoint has %d params, model has %d", count, len(params))
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("vit: implausible name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return err
		}
		name := string(nameBuf)
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("vit: checkpoint param %q not in model", name)
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.W.Shape) {
			return fmt.Errorf("vit: param %q rank %d, model has %d", name, rank, len(p.W.Shape))
		}
		for d := 0; d < int(rank); d++ {
			var dim uint32
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return err
			}
			if int(dim) != p.W.Shape[d] {
				return fmt.Errorf("vit: param %q dim %d is %d, model has %d", name, d, dim, p.W.Shape[d])
			}
		}
		buf := make([]byte, 4*p.W.Size())
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("vit: reading param %q data: %w", name, err)
		}
		for j := range p.W.Data {
			p.W.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		delete(byName, name)
	}
	return nil
}

// SaveFile writes a model checkpoint to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, m.Params()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads a model checkpoint from path.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, m.Params())
}

// CloneWeightsTo copies this model's weights into dst, which must have the
// same architecture. Used to snapshot a teacher for inference while training
// continues, and to build per-goroutine inference copies.
func (m *Model) CloneWeightsTo(dst *Model) error {
	src := m.Params()
	dp := dst.Params()
	if len(src) != len(dp) {
		return fmt.Errorf("vit: clone param count mismatch %d vs %d", len(src), len(dp))
	}
	for i, p := range src {
		if dp[i].Name != p.Name || !dp[i].W.SameShape(p.W) {
			return fmt.Errorf("vit: clone mismatch at %q", p.Name)
		}
		dp[i].W.CopyFrom(p.W)
	}
	return nil
}
