package vit

import (
	"fmt"

	"itask/internal/geom"
	"itask/internal/nn"
	"itask/internal/tensor"
)

// Object is a ground-truth object: a box with a class label.
type Object struct {
	Box   geom.Box
	Class int
}

// DetTarget is the per-token training target for one image, in the YOLO-lite
// encoding the detection head uses: the grid cell containing an object's
// center is responsible for predicting it.
type DetTarget struct {
	// Obj is 1 for responsible cells, 0 elsewhere (length Tokens).
	Obj []float32
	// Class is the class index for responsible cells, -1 elsewhere.
	Class []int
	// Box holds (fx, fy, w, h) for responsible cells: fx,fy are the object
	// center's fractional position within the cell in [0,1]; w,h are the
	// box size normalized to the image.
	Box [][4]float32
}

// EncodeTargets builds the detection target for a set of ground-truth
// objects. When two objects land in the same cell the larger one wins,
// mirroring the renderer's occlusion order.
func EncodeTargets(cfg Config, objects []Object) DetTarget {
	t := cfg.Tokens()
	g := cfg.Grid()
	tgt := DetTarget{
		Obj:   make([]float32, t),
		Class: make([]int, t),
		Box:   make([][4]float32, t),
	}
	area := make([]float64, t)
	for i := range tgt.Class {
		tgt.Class[i] = -1
	}
	for _, o := range objects {
		if o.Class < 0 || o.Class >= cfg.Classes {
			panic(fmt.Sprintf("vit: object class %d out of range [0,%d)", o.Class, cfg.Classes))
		}
		gx := int(o.Box.X * float64(g))
		gy := int(o.Box.Y * float64(g))
		if gx < 0 || gx >= g || gy < 0 || gy >= g {
			continue // center outside the image: unlabeled
		}
		cell := gy*g + gx
		if tgt.Obj[cell] == 1 && area[cell] >= o.Box.Area() {
			continue
		}
		area[cell] = o.Box.Area()
		tgt.Obj[cell] = 1
		tgt.Class[cell] = o.Class
		fx := o.Box.X*float64(g) - float64(gx)
		fy := o.Box.Y*float64(g) - float64(gy)
		tgt.Box[cell] = [4]float32{float32(fx), float32(fy), float32(o.Box.W), float32(o.Box.H)}
	}
	return tgt
}

// DetLossWeights balances the three detection loss terms.
type DetLossWeights struct {
	Obj, Box, Class float32
	// NegObj down-weights objectness loss on background cells, which vastly
	// outnumber positives.
	NegObj float32
}

// DefaultDetLossWeights returns the weights used throughout the experiments.
func DefaultDetLossWeights() DetLossWeights {
	return DetLossWeights{Obj: 1, Box: 5, Class: 1, NegObj: 0.3}
}

// DetLoss computes the composite detection loss for raw head output
// (B*Tokens, 5+Classes) against per-image targets, returning the scalar loss
// and the gradient w.r.t. the raw output. Layout per row:
// [objLogit, tx, ty, tw, th, classLogits...]; box coordinates pass through a
// sigmoid before regression.
func DetLoss(cfg Config, out *tensor.Tensor, targets []DetTarget, w DetLossWeights) (float32, *tensor.Tensor) {
	t := cfg.Tokens()
	width := cfg.DetWidth()
	if out.Dims() != 2 || out.Shape[1] != width || out.Shape[0] != len(targets)*t {
		panic(fmt.Sprintf("vit: DetLoss output shape %v for %d targets", out.Shape, len(targets)))
	}
	rows := out.Shape[0]
	grad := tensor.New(rows, width)

	// Objectness: weighted BCE over all cells.
	objLogits := tensor.New(rows)
	objTarget := tensor.New(rows)
	objWeight := tensor.New(rows)
	for bi, tgt := range targets {
		for ti := 0; ti < t; ti++ {
			r := bi*t + ti
			objLogits.Data[r] = out.Data[r*width]
			objTarget.Data[r] = tgt.Obj[ti]
			if tgt.Obj[ti] > 0 {
				objWeight.Data[r] = 1
			} else {
				objWeight.Data[r] = w.NegObj
			}
		}
	}
	objLoss, dObj := nn.BCEWithLogits(objLogits, objTarget, objWeight)
	for r := 0; r < rows; r++ {
		grad.Data[r*width] = w.Obj * dObj.Data[r]
	}

	// Box regression on positive cells: sigmoid(raw) vs target, smooth-L1.
	var boxPred, boxTgt []float32
	var boxIdx []int // flat indices into out.Data
	for bi, tgt := range targets {
		for ti := 0; ti < t; ti++ {
			if tgt.Obj[ti] == 0 {
				continue
			}
			r := bi*t + ti
			for k := 0; k < 4; k++ {
				boxIdx = append(boxIdx, r*width+1+k)
				boxPred = append(boxPred, nn.Sigmoid(out.Data[r*width+1+k]))
				boxTgt = append(boxTgt, tgt.Box[ti][k])
			}
		}
	}
	var boxLoss float32
	if len(boxPred) > 0 {
		bp := tensor.FromSlice(boxPred, len(boxPred))
		bt := tensor.FromSlice(boxTgt, len(boxTgt))
		var dBox *tensor.Tensor
		boxLoss, dBox = nn.SmoothL1(bp, bt, 0.1)
		for i, flat := range boxIdx {
			s := boxPred[i]
			grad.Data[flat] += w.Box * dBox.Data[i] * s * (1 - s) // chain through sigmoid
		}
	}

	// Classification on positive cells.
	classLogits := tensor.New(rows, cfg.Classes)
	labels := make([]int, rows)
	for bi, tgt := range targets {
		for ti := 0; ti < t; ti++ {
			r := bi*t + ti
			labels[r] = tgt.Class[ti]
			copy(classLogits.Data[r*cfg.Classes:(r+1)*cfg.Classes], out.Data[r*width+5:(r+1)*width])
		}
	}
	clsLoss, dCls := nn.CrossEntropy(classLogits, labels)
	for r := 0; r < rows; r++ {
		for j := 0; j < cfg.Classes; j++ {
			grad.Data[r*width+5+j] += w.Class * dCls.At(r, j)
		}
	}

	total := w.Obj*objLoss + w.Box*boxLoss + w.Class*clsLoss
	return total, grad
}

// Decode converts the raw detection output for ONE image (Tokens, 5+Classes)
// into scored boxes above objThresh, then applies NMS.
func Decode(cfg Config, out *tensor.Tensor, objThresh, nmsIoU float64) []geom.Scored {
	t := cfg.Tokens()
	width := cfg.DetWidth()
	if out.Dims() != 2 || out.Shape[0] != t || out.Shape[1] != width {
		panic(fmt.Sprintf("vit: Decode output shape %v, want (%d,%d)", out.Shape, t, width))
	}
	g := cfg.Grid()
	var dets []geom.Scored
	for ti := 0; ti < t; ti++ {
		row := out.Data[ti*width : (ti+1)*width]
		obj := float64(nn.Sigmoid(row[0]))
		if obj < objThresh {
			continue
		}
		gy, gx := ti/g, ti%g
		fx := float64(nn.Sigmoid(row[1]))
		fy := float64(nn.Sigmoid(row[2]))
		bw := float64(nn.Sigmoid(row[3]))
		bh := float64(nn.Sigmoid(row[4]))
		cls := 0
		best := row[5]
		for j := 1; j < cfg.Classes; j++ {
			if row[5+j] > best {
				best, cls = row[5+j], j
			}
		}
		// Score = objectness * class confidence.
		clsProbs := tensor.SoftmaxRows(tensor.FromSlice(append([]float32(nil), row[5:]...), 1, cfg.Classes))
		score := obj * float64(clsProbs.Data[cls])
		dets = append(dets, geom.Scored{
			Box: geom.Box{
				X: (float64(gx) + fx) / float64(g),
				Y: (float64(gy) + fy) / float64(g),
				W: bw,
				H: bh,
			},
			Class: cls,
			Score: score,
		})
	}
	return geom.NMS(dets, nmsIoU)
}
