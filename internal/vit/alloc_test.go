package vit

import (
	"testing"

	"itask/internal/tensor"
)

// TestForwardInferenceSteadyStateAllocs pins the float model's inference
// forward to a small constant allocation budget: attention head scratch,
// score matrices, and softmax buffers all come from the tensor arena after
// warmup, so only per-layer output tensors and pool-dispatch closures remain.
func TestForwardInferenceSteadyStateAllocs(t *testing.T) {
	cfg := Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: 5,
	}
	rng := tensor.NewRNG(31)
	m := New(cfg, rng)
	img := tensor.Randn(rng, 0.5, 3, 32, 32)
	patches := Patchify(cfg, []*tensor.Tensor{img})
	for i := 0; i < 5; i++ {
		m.Forward(patches, false)
	}
	avg := testing.AllocsPerRun(20, func() {
		m.Forward(patches, false)
	})
	// The seed implementation allocated ~5 fresh tensors per head per block
	// (q/k/v slices, scores, probabilities, context) — O(depth × heads) and
	// proportional to batch. The arena path leaves the per-layer Sequential
	// outputs plus a fixed number of scratch headers and dispatch closures:
	// a per-architecture constant (~245 for this config), independent of
	// batch and heads.
	if avg > 300 {
		t.Fatalf("float Forward steady state allocates %.1f objects/op, want <= 300", avg)
	}
	t.Logf("float Forward steady-state allocs/op: %.1f", avg)
}
