package vit

import (
	"bytes"
	"math"
	"testing"

	"itask/internal/geom"
	"itask/internal/nn"
	"itask/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	good := TinyConfig(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("TinyConfig invalid: %v", err)
	}
	bad := []Config{
		{},
		{ImageSize: 33, Channels: 3, PatchSize: 4, Dim: 8, Depth: 1, Heads: 2, MLPRatio: 4, Classes: 2},
		{ImageSize: 32, Channels: 3, PatchSize: 4, Dim: 9, Depth: 1, Heads: 2, MLPRatio: 4, Classes: 2},
		{ImageSize: 32, Channels: 3, PatchSize: 4, Dim: 8, Depth: 1, Heads: 2, MLPRatio: 4, Classes: 0},
		{ImageSize: 32, Channels: 3, PatchSize: 4, Dim: 8, Depth: 1, Heads: 2, MLPRatio: 4, Classes: 2, Dropout: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation: %+v", i, c)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := TeacherConfig(5)
	if c.Grid() != 8 || c.Tokens() != 64 {
		t.Errorf("grid/tokens = %d/%d", c.Grid(), c.Tokens())
	}
	if c.PatchDim() != 3*4*4 {
		t.Errorf("patch dim = %d", c.PatchDim())
	}
	if c.DetWidth() != 10 {
		t.Errorf("det width = %d", c.DetWidth())
	}
}

func TestWorkloadAccounting(t *testing.T) {
	c := StudentConfig(4)
	w := c.Workload()
	// patch embed + 6 GEMMs per block + 2 heads
	want := 1 + 6*c.Depth + 2
	if len(w) != want {
		t.Fatalf("workload has %d GEMMs, want %d", len(w), want)
	}
	var macs int64
	for _, g := range w {
		if g.M <= 0 || g.K <= 0 || g.N <= 0 || g.Repeat <= 0 {
			t.Fatalf("degenerate GEMM %+v", g)
		}
		macs += g.MACs()
	}
	if macs != c.TotalMACs() {
		t.Error("TotalMACs disagrees with sum over Workload")
	}
	// Teacher must be strictly bigger than student.
	if TeacherConfig(4).TotalMACs() <= c.TotalMACs() {
		t.Error("teacher should cost more MACs than student")
	}
}

func TestPatchify(t *testing.T) {
	cfg := Config{ImageSize: 4, Channels: 2, PatchSize: 2, Dim: 8, Depth: 1, Heads: 2, MLPRatio: 2, Classes: 2}
	img := tensor.New(2, 4, 4)
	for i := range img.Data {
		img.Data[i] = float32(i)
	}
	p := Patchify(cfg, []*tensor.Tensor{img})
	if p.Shape[0] != 4 || p.Shape[1] != 8 {
		t.Fatalf("patchify shape %v", p.Shape)
	}
	// Patch (0,0), channel 0 holds pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5;
	// channel 1 holds 16,17,20,21.
	want := []float32{0, 1, 4, 5, 16, 17, 20, 21}
	for i, v := range want {
		if p.At(0, i) != v {
			t.Fatalf("patch0[%d] = %v, want %v (row %v)", i, p.At(0, i), v, p.Row(0).Data)
		}
	}
	// Second patch starts at x=2: pixels 2,3,6,7.
	if p.At(1, 0) != 2 || p.At(1, 3) != 7 {
		t.Errorf("patch1 = %v", p.Row(1).Data)
	}
}

func TestModelForwardShapes(t *testing.T) {
	cfg := TinyConfig(3)
	rng := tensor.NewRNG(1)
	m := New(cfg, rng)
	imgs := []*tensor.Tensor{
		tensor.Randn(rng, 1, cfg.Channels, cfg.ImageSize, cfg.ImageSize),
		tensor.Randn(rng, 1, cfg.Channels, cfg.ImageSize, cfg.ImageSize),
	}
	patches := Patchify(cfg, imgs)
	feats := m.Forward(patches, false)
	if feats.Shape[0] != 2*cfg.Tokens() || feats.Shape[1] != cfg.Dim {
		t.Fatalf("feats shape %v", feats.Shape)
	}
	det := m.DetHead(feats, false)
	if det.Shape[0] != 2*cfg.Tokens() || det.Shape[1] != cfg.DetWidth() {
		t.Fatalf("det shape %v", det.Shape)
	}
	cls := m.ClsHead(feats, false)
	if cls.Shape[0] != 2 || cls.Shape[1] != cfg.Classes {
		t.Fatalf("cls shape %v", cls.Shape)
	}
}

func TestModelDeterministicForward(t *testing.T) {
	cfg := TinyConfig(2)
	m1 := New(cfg, tensor.NewRNG(9))
	m2 := New(cfg, tensor.NewRNG(9))
	img := tensor.Randn(tensor.NewRNG(3), 1, cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	p := Patchify(cfg, []*tensor.Tensor{img})
	f1 := m1.Forward(p, false)
	f2 := m2.Forward(p, false)
	if !f1.Equal(f2) {
		t.Error("same seed must give identical models and outputs")
	}
}

// TestModelTrainingReducesLoss is the key end-to-end sanity check: a tiny
// model must be able to overfit a single synthetic example.
func TestModelTrainingReducesLoss(t *testing.T) {
	cfg := TinyConfig(2)
	rng := tensor.NewRNG(5)
	m := New(cfg, rng)
	img := tensor.Randn(rng, 1, cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	patches := Patchify(cfg, []*tensor.Tensor{img})
	objects := []Object{{Box: geom.Box{X: 0.3, Y: 0.6, W: 0.2, H: 0.3}, Class: 1}}
	tgt := EncodeTargets(cfg, objects)
	opt := nn.NewAdam(0.01)
	var first, last float32
	for step := 0; step < 60; step++ {
		feats := m.Forward(patches, true)
		det := m.DetHead(feats, true)
		loss, grad := DetLoss(cfg, det, []DetTarget{tgt}, DefaultDetLossWeights())
		if step == 0 {
			first = loss
		}
		last = loss
		m.Backward(grad, nil)
		opt.Step(m.Params())
	}
	if last >= first*0.5 {
		t.Errorf("training did not reduce loss: first %v, last %v", first, last)
	}
	// After overfitting, decoding should recover the object.
	feats := m.Forward(patches, false)
	det := m.DetHead(feats, false)
	dets := Decode(cfg, det, 0.5, 0.5)
	if len(dets) != 1 {
		t.Fatalf("decoded %d objects, want 1", len(dets))
	}
	if dets[0].Class != 1 {
		t.Errorf("decoded class %d, want 1", dets[0].Class)
	}
	if geom.IoU(dets[0].Box, objects[0].Box) < 0.4 {
		t.Errorf("decoded box IoU too low: %v vs %v", dets[0].Box, objects[0].Box)
	}
}

func TestEncodeTargets(t *testing.T) {
	cfg := TinyConfig(3) // 16px, patch 8 -> 2x2 grid
	objs := []Object{
		{Box: geom.Box{X: 0.25, Y: 0.25, W: 0.3, H: 0.3}, Class: 2}, // cell (0,0)
		{Box: geom.Box{X: 0.9, Y: 0.9, W: 0.1, H: 0.1}, Class: 0},   // cell (1,1)
	}
	tgt := EncodeTargets(cfg, objs)
	if tgt.Obj[0] != 1 || tgt.Class[0] != 2 {
		t.Errorf("cell 0: obj=%v class=%d", tgt.Obj[0], tgt.Class[0])
	}
	if tgt.Obj[3] != 1 || tgt.Class[3] != 0 {
		t.Errorf("cell 3: obj=%v class=%d", tgt.Obj[3], tgt.Class[3])
	}
	if tgt.Obj[1] != 0 || tgt.Class[1] != -1 {
		t.Errorf("cell 1 should be background")
	}
	// Fractional offsets: 0.25*2 = 0.5 within cell 0.
	if math.Abs(float64(tgt.Box[0][0])-0.5) > 1e-6 {
		t.Errorf("fx = %v, want 0.5", tgt.Box[0][0])
	}
}

func TestEncodeTargetsCollisionLargerWins(t *testing.T) {
	cfg := TinyConfig(3)
	objs := []Object{
		{Box: geom.Box{X: 0.2, Y: 0.2, W: 0.1, H: 0.1}, Class: 0},
		{Box: geom.Box{X: 0.3, Y: 0.3, W: 0.4, H: 0.4}, Class: 1}, // same cell, larger
	}
	tgt := EncodeTargets(cfg, objs)
	if tgt.Class[0] != 1 {
		t.Errorf("larger object should win the cell, got class %d", tgt.Class[0])
	}
	// Order independence.
	tgt2 := EncodeTargets(cfg, []Object{objs[1], objs[0]})
	if tgt2.Class[0] != 1 {
		t.Error("collision resolution must be order-independent")
	}
}

func TestEncodeTargetsOutsideImageIgnored(t *testing.T) {
	cfg := TinyConfig(2)
	tgt := EncodeTargets(cfg, []Object{{Box: geom.Box{X: 1.5, Y: 0.5, W: 0.1, H: 0.1}, Class: 0}})
	for _, o := range tgt.Obj {
		if o != 0 {
			t.Error("object outside image must not produce a target")
		}
	}
}

func TestDetLossGradientNumeric(t *testing.T) {
	cfg := TinyConfig(2)
	rng := tensor.NewRNG(7)
	out := tensor.Randn(rng, 1, cfg.Tokens(), cfg.DetWidth())
	tgt := EncodeTargets(cfg, []Object{{Box: geom.Box{X: 0.3, Y: 0.7, W: 0.2, H: 0.2}, Class: 1}})
	w := DefaultDetLossWeights()
	_, grad := DetLoss(cfg, out, []DetTarget{tgt}, w)
	const eps = 1e-3
	for i := 0; i < out.Size(); i++ {
		orig := out.Data[i]
		out.Data[i] = orig + eps
		lp, _ := DetLoss(cfg, out, []DetTarget{tgt}, w)
		out.Data[i] = orig - eps
		lm, _ := DetLoss(cfg, out, []DetTarget{tgt}, w)
		out.Data[i] = orig
		num := float64(lp-lm) / (2 * eps)
		ana := float64(grad.Data[i])
		d := math.Abs(num - ana)
		den := math.Max(math.Abs(num), math.Abs(ana))
		if den > 0.05 && d/den > 0.05 {
			t.Fatalf("DetLoss grad[%d]: numeric %v vs analytic %v", i, num, ana)
		}
		if den <= 0.05 && d > 5e-3 {
			t.Fatalf("DetLoss grad[%d]: numeric %v vs analytic %v (abs)", i, num, ana)
		}
	}
}

func TestDecodeThreshold(t *testing.T) {
	cfg := TinyConfig(2)
	out := tensor.New(cfg.Tokens(), cfg.DetWidth())
	// All objectness logits very negative -> no detections.
	for i := 0; i < cfg.Tokens(); i++ {
		out.Set(-10, i, 0)
	}
	if dets := Decode(cfg, out, 0.3, 0.5); len(dets) != 0 {
		t.Errorf("expected no detections, got %d", len(dets))
	}
	// One strong cell.
	out.Set(10, 3, 0)
	out.Set(5, 3, 5+1) // class 1
	dets := Decode(cfg, out, 0.3, 0.5)
	if len(dets) != 1 || dets[0].Class != 1 {
		t.Fatalf("dets = %+v", dets)
	}
	// Cell 3 of a 2x2 grid is (gy=1, gx=1): box center in right-bottom quadrant.
	if dets[0].Box.X <= 0.5 || dets[0].Box.Y <= 0.5 {
		t.Errorf("decoded center %v,%v not in bottom-right cell", dets[0].Box.X, dets[0].Box.Y)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := TinyConfig(3)
	m1 := New(cfg, tensor.NewRNG(11))
	m2 := New(cfg, tensor.NewRNG(22))
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		if !p1[i].W.Equal(p2[i].W) {
			t.Fatalf("param %q differs after round trip", p1[i].Name)
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	m1 := New(TinyConfig(3), tensor.NewRNG(1))
	m2 := New(TinyConfig(4), tensor.NewRNG(1)) // different class count
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m2.Params()); err == nil {
		t.Fatal("loading into mismatched model must fail")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := New(TinyConfig(2), tensor.NewRNG(1))
	if err := LoadParams(bytes.NewReader([]byte("NOPE....")), m.Params()); err == nil {
		t.Fatal("garbage magic must fail")
	}
}

func TestCloneWeightsTo(t *testing.T) {
	cfg := TinyConfig(2)
	a := New(cfg, tensor.NewRNG(1))
	b := New(cfg, tensor.NewRNG(2))
	if err := a.CloneWeightsTo(b); err != nil {
		t.Fatal(err)
	}
	img := tensor.Randn(tensor.NewRNG(3), 1, cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	p := Patchify(cfg, []*tensor.Tensor{img})
	if !a.Forward(p, false).Equal(b.Forward(p, false)) {
		t.Error("cloned model output differs")
	}
	if err := a.CloneWeightsTo(New(TinyConfig(3), tensor.NewRNG(1))); err == nil {
		t.Error("mismatched clone must fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	cfg := TinyConfig(2)
	m := New(cfg, tensor.NewRNG(4))
	path := t.TempDir() + "/model.ckpt"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg, tensor.NewRNG(5))
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !m.Embed.Weight.W.Equal(m2.Embed.Weight.W) {
		t.Error("file round trip lost weights")
	}
}

func TestNumParamsStudentSmallerThanTeacher(t *testing.T) {
	s := New(StudentConfig(4), tensor.NewRNG(1))
	te := New(TeacherConfig(4), tensor.NewRNG(1))
	if s.NumParams() >= te.NumParams() {
		t.Errorf("student %d params should be < teacher %d", s.NumParams(), te.NumParams())
	}
}
