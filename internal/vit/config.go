// Package vit implements the vision transformer at the heart of iTask: a
// patch-embedding trunk of pre-norm transformer blocks with two heads — a
// per-token detection head (objectness + box + class) and a mean-pooled
// scene-classification head. The same architecture serves as the large
// multi-task "teacher", the distilled task-specific "student", and (through
// internal/quant) the int8 quantized generalist.
package vit

import "fmt"

// Config describes a ViT variant. iTask uses three presets: TeacherConfig
// (the full vision-language-scale model stand-in), StudentConfig (the
// distilled task-specific model), and TinyConfig for fast tests.
type Config struct {
	// ImageSize is the square input resolution in pixels.
	ImageSize int
	// Channels is the number of input channels (3 for RGB scenes).
	Channels int
	// PatchSize is the square patch edge; ImageSize must be divisible by it.
	PatchSize int
	// Dim is the embedding width.
	Dim int
	// Depth is the number of transformer blocks.
	Depth int
	// Heads is the number of attention heads; must divide Dim.
	Heads int
	// MLPRatio scales the hidden width of each block's MLP (usually 4).
	MLPRatio int
	// Classes is the number of object classes the heads predict.
	Classes int
	// Dropout is the train-time dropout probability in blocks.
	Dropout float64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.ImageSize <= 0 || c.Channels <= 0 || c.PatchSize <= 0:
		return fmt.Errorf("vit: non-positive geometry in config %+v", c)
	case c.ImageSize%c.PatchSize != 0:
		return fmt.Errorf("vit: image size %d not divisible by patch size %d", c.ImageSize, c.PatchSize)
	case c.Dim <= 0 || c.Depth <= 0 || c.Heads <= 0:
		return fmt.Errorf("vit: non-positive dimensions in config %+v", c)
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("vit: dim %d not divisible by heads %d", c.Dim, c.Heads)
	case c.MLPRatio <= 0:
		return fmt.Errorf("vit: MLP ratio must be positive")
	case c.Classes <= 0:
		return fmt.Errorf("vit: need at least one class")
	case c.Dropout < 0 || c.Dropout >= 1:
		return fmt.Errorf("vit: dropout %v out of [0,1)", c.Dropout)
	}
	return nil
}

// Grid returns the number of patches along one edge.
func (c Config) Grid() int { return c.ImageSize / c.PatchSize }

// Tokens returns the total patch count (sequence length).
func (c Config) Tokens() int { return c.Grid() * c.Grid() }

// PatchDim returns the flattened patch vector width.
func (c Config) PatchDim() int { return c.Channels * c.PatchSize * c.PatchSize }

// DetWidth returns the per-token detection head output width:
// 1 objectness + 4 box offsets + Classes logits.
func (c Config) DetWidth() int { return 5 + c.Classes }

// TeacherConfig is the multi-task generalist stand-in for the paper's large
// vision-language model: deeper and wider than the student.
func TeacherConfig(classes int) Config {
	return Config{
		ImageSize: 32, Channels: 3, PatchSize: 4,
		Dim: 96, Depth: 6, Heads: 6, MLPRatio: 4,
		Classes: classes, Dropout: 0.0,
	}
}

// StudentConfig is the distilled task-specific model: small enough for
// real-time edge inference.
func StudentConfig(classes int) Config {
	return Config{
		ImageSize: 32, Channels: 3, PatchSize: 4,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 4,
		Classes: classes, Dropout: 0.0,
	}
}

// TinyConfig is a minimal model for unit tests.
func TinyConfig(classes int) Config {
	return Config{
		ImageSize: 16, Channels: 3, PatchSize: 8,
		Dim: 16, Depth: 1, Heads: 2, MLPRatio: 2,
		Classes: classes, Dropout: 0.0,
	}
}

// GEMM describes one matrix multiply of an inference pass, the unit the
// hardware simulator schedules. M is the row count (tokens), K the reduction
// width, N the output width; Repeat is how many times the GEMM runs per
// inference (e.g. per attention head).
type GEMM struct {
	Name    string
	M, K, N int
	Repeat  int
	// Dynamic marks GEMMs whose stationary operand is itself a per-image
	// activation (attention scores and context): batching more images
	// repeats these GEMMs instead of growing M, so they see none of the
	// weight-reuse amortization that the static-weight layers do.
	Dynamic bool
}

// MACs returns the total multiply-accumulate count for this GEMM.
func (g GEMM) MACs() int64 {
	return int64(g.M) * int64(g.K) * int64(g.N) * int64(g.Repeat)
}

// Workload enumerates the GEMMs of one single-image inference pass, in
// execution order. The hardware simulator maps exactly these shapes onto the
// systolic array; keeping the enumeration next to the model definition means
// the simulated workload can never drift from the executed one.
func (c Config) Workload() []GEMM {
	t := c.Tokens()
	dh := c.Dim / c.Heads
	var w []GEMM
	w = append(w, GEMM{Name: "patch_embed", M: t, K: c.PatchDim(), N: c.Dim, Repeat: 1})
	for i := 0; i < c.Depth; i++ {
		p := fmt.Sprintf("block%d.", i)
		w = append(w,
			GEMM{Name: p + "qkv", M: t, K: c.Dim, N: 3 * c.Dim, Repeat: 1},
			GEMM{Name: p + "scores", M: t, K: dh, N: t, Repeat: c.Heads, Dynamic: true},
			GEMM{Name: p + "context", M: t, K: t, N: dh, Repeat: c.Heads, Dynamic: true},
			GEMM{Name: p + "proj", M: t, K: c.Dim, N: c.Dim, Repeat: 1},
			GEMM{Name: p + "mlp1", M: t, K: c.Dim, N: c.MLPRatio * c.Dim, Repeat: 1},
			GEMM{Name: p + "mlp2", M: t, K: c.MLPRatio * c.Dim, N: c.Dim, Repeat: 1},
		)
	}
	w = append(w,
		GEMM{Name: "det_head", M: t, K: c.Dim, N: c.DetWidth(), Repeat: 1},
		GEMM{Name: "cls_head", M: 1, K: c.Dim, N: c.Classes, Repeat: 1},
	)
	return w
}

// TotalMACs sums the MAC count over the whole workload.
func (c Config) TotalMACs() int64 {
	var n int64
	for _, g := range c.Workload() {
		n += g.MACs()
	}
	return n
}
