package vit

import (
	"math"
	"strings"
	"testing"

	"itask/internal/tensor"
)

func TestAttentionRolloutBasics(t *testing.T) {
	cfg := Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 4,
	}
	m := New(cfg, tensor.NewRNG(1))
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, 32, 32)
	s := m.AttentionRollout(img)
	if len(s) != cfg.Tokens() {
		t.Fatalf("saliency length %d, want %d", len(s), cfg.Tokens())
	}
	var sum float64
	for _, v := range s {
		if v < 0 {
			t.Fatalf("negative saliency %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("saliency sums to %v, want 1", sum)
	}
}

func TestAttentionRolloutDeterministic(t *testing.T) {
	cfg := TinyConfig(3)
	m := New(cfg, tensor.NewRNG(3))
	img := tensor.Randn(tensor.NewRNG(4), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	a := m.AttentionRollout(img)
	b := m.AttentionRollout(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rollout not deterministic")
		}
	}
}

func TestAttentionRolloutDoesNotPerturbWeights(t *testing.T) {
	cfg := TinyConfig(2)
	m := New(cfg, tensor.NewRNG(5))
	img := tensor.Randn(tensor.NewRNG(6), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	patches := Patchify(cfg, []*tensor.Tensor{img})
	before := m.DetHead(m.Forward(patches, false), false).Clone()
	m.AttentionRollout(img)
	after := m.DetHead(m.Forward(patches, false), false)
	if !after.Equal(before) {
		t.Error("rollout changed inference results")
	}
}

func TestRenderSaliencyASCII(t *testing.T) {
	cfg := TinyConfig(2) // 2x2 grid
	s := []float64{0.7, 0.1, 0.1, 0.1}
	out := RenderSaliencyASCII(cfg, s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	// The hottest cell renders the heaviest glyph.
	if !strings.HasPrefix(lines[0], "@@") {
		t.Errorf("hot cell not rendered heavy: %q", lines[0])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong saliency length should panic")
			}
		}()
		RenderSaliencyASCII(cfg, []float64{1})
	}()
}
