package vit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"itask/internal/nn"
)

// sumLen truncates hex digests to 16 chars — 64 bits of SHA-256 is ample for
// corruption detection and keeps ArtifactID strings readable.
const sumLen = 16

// ChecksumParams hashes the canonical checkpoint encoding of params without
// writing it anywhere. The digest therefore equals the one produced by
// SaveFileSum for the same weights.
func ChecksumParams(params []*nn.Param) (string, error) {
	h := sha256.New()
	if err := SaveParams(h, params); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:sumLen], nil
}

// Checksum hashes the model's weights in checkpoint encoding.
func (m *Model) Checksum() (string, error) { return ChecksumParams(m.Params()) }

// SaveFileSum writes a checkpoint to path and returns the content checksum
// of the written bytes, for publication into a registry manifest.
func (m *Model) SaveFileSum(path string) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := SaveParams(io.MultiWriter(f, h), m.Params()); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:sumLen], nil
}

// LoadFileVerify loads a checkpoint from path, hashing the stream while
// reading, and fails if the digest differs from sum — a truncated or
// corrupted artifact is refused before any routing decision can see it.
// The model's weights may be partially overwritten on failure; callers load
// into a scratch model and publish only on success.
func (m *Model) LoadFileVerify(path, sum string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if err := LoadParams(io.TeeReader(f, h), m.Params()); err != nil {
		return err
	}
	// Drain any trailing bytes so the digest covers the whole file.
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	got := hex.EncodeToString(h.Sum(nil))[:sumLen]
	if got != sum {
		return fmt.Errorf("vit: checkpoint %s checksum %s, manifest says %s", path, got, sum)
	}
	return nil
}
