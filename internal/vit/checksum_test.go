package vit

import (
	"os"
	"path/filepath"
	"testing"

	"itask/internal/tensor"
)

func tinyModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	cfg := Config{ImageSize: 8, Channels: 1, PatchSize: 4, Dim: 8, Depth: 1,
		Heads: 2, MLPRatio: 2, Classes: 3}
	return New(cfg, tensor.NewRNG(seed))
}

func TestChecksumMatchesSavedFile(t *testing.T) {
	m := tinyModel(t, 1)
	path := filepath.Join(t.TempDir(), "m.ckpt")
	sum, err := m.SaveFileSum(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != sumLen {
		t.Fatalf("checksum %q length %d, want %d", sum, len(sum), sumLen)
	}
	// The in-memory digest equals the on-disk one.
	mem, err := m.Checksum()
	if err != nil || mem != sum {
		t.Fatalf("Checksum() = %q, %v; SaveFileSum = %q", mem, err, sum)
	}
	// Different weights produce a different digest.
	other, err := tinyModel(t, 2).Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if other == sum {
		t.Fatal("distinct models share a checksum")
	}
}

func TestLoadFileVerify(t *testing.T) {
	m := tinyModel(t, 3)
	path := filepath.Join(t.TempDir(), "m.ckpt")
	sum, err := m.SaveFileSum(path)
	if err != nil {
		t.Fatal(err)
	}
	dst := tinyModel(t, 4)
	if err := dst.LoadFileVerify(path, sum); err != nil {
		t.Fatalf("verify with correct sum: %v", err)
	}
	got, err := dst.Checksum()
	if err != nil || got != sum {
		t.Fatalf("loaded weights hash %q, want %q", got, sum)
	}
	// Wrong expected sum is refused.
	if err := tinyModel(t, 5).LoadFileVerify(path, "deadbeefdeadbeef"); err == nil {
		t.Fatal("mismatched checksum accepted")
	}
	// A flipped byte in the weight payload is refused even with the
	// original sum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tinyModel(t, 6).LoadFileVerify(path, sum); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	// Trailing garbage after a well-formed checkpoint is refused too.
	data[len(data)-1] ^= 0xff // restore
	data = append(data, 0xEE)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tinyModel(t, 7).LoadFileVerify(path, sum); err == nil {
		t.Fatal("checkpoint with trailing garbage accepted")
	}
}
