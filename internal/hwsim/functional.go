package hwsim

import "fmt"

// FunctionalArray is a cycle-by-cycle functional simulation of the
// weight-stationary systolic array: every PE's registers are stepped every
// cycle, activations enter skewed on the left edge, partial sums flow down
// columns and exit at the bottom. It computes bit-exact int8×int8→int32
// GEMMs and reports the exact cycle count, serving two purposes:
//
//  1. It validates the analytical cycle model in SimulateGEMM (the
//     analytical count must upper-bound the functional count and match it
//     exactly on array-aligned shapes — asserted in tests).
//  2. It demonstrates that the modeled dataflow actually computes the same
//     arithmetic the quantized software path (internal/quant) executes.
type FunctionalArray struct {
	Rows, Cols int
}

// NewFunctionalArray creates an array simulator.
func NewFunctionalArray(rows, cols int) *FunctionalArray {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("hwsim: functional array %dx%d", rows, cols))
	}
	return &FunctionalArray{Rows: rows, Cols: cols}
}

// pe is one processing element's state.
type pe struct {
	weight int8
	aReg   int32 // activation register (flows right)
	pReg   int32 // partial-sum register (flows down)
}

// RunGEMM computes out = A @ W for int8 A (M×K, row-major) and int8 W
// (K×N, row-major) with int32 accumulation, returning the exact result and
// the cycle count (weight loading + skewed pipeline, per tile).
func (fa *FunctionalArray) RunGEMM(a []int8, m, k int, w []int8, n int) ([]int32, int64) {
	if len(a) != m*k {
		panic(fmt.Sprintf("hwsim: A has %d values, want %d", len(a), m*k))
	}
	if len(w) != k*n {
		panic(fmt.Sprintf("hwsim: W has %d values, want %d", len(w), k*n))
	}
	out := make([]int32, m*n)
	var cycles int64

	grid := make([][]pe, fa.Rows)
	for r := range grid {
		grid[r] = make([]pe, fa.Cols)
	}

	for k0 := 0; k0 < k; k0 += fa.Rows {
		kt := min(fa.Rows, k-k0)
		for n0 := 0; n0 < n; n0 += fa.Cols {
			nt := min(fa.Cols, n-n0)

			// Weight load: one array row per cycle (kt rows used).
			for r := 0; r < kt; r++ {
				for c := 0; c < nt; c++ {
					grid[r][c].weight = w[(k0+r)*n+n0+c]
				}
			}
			cycles += int64(kt)

			// Skewed compute pipeline. Activation a[mi][k0+r] enters array
			// row r at cycle mi+r and reaches column c at cycle mi+r+c; the
			// psum for output (mi, n0+c) exits the bottom of column c at
			// cycle mi+(kt-1)+c. m+kt+nt cycles cover fill, stream, and
			// drain — the same per-tile compute term the analytical model
			// charges, so aligned shapes match SimulateGEMM exactly.
			tileCycles := m + kt + nt
			for t := 0; t < tileCycles; t++ {
				// Step PEs bottom-right to top-left so reads see the
				// previous cycle's registers without double buffering.
				for r := kt - 1; r >= 0; r-- {
					for c := nt - 1; c >= 0; c-- {
						var aIn int32
						if c == 0 {
							// Left edge: activation row mi = t-r enters.
							mi := t - r
							if mi >= 0 && mi < m {
								aIn = int32(a[mi*k+k0+r])
							}
						} else {
							aIn = grid[r][c-1].aReg
						}
						var pIn int32
						if r > 0 {
							pIn = grid[r-1][c].pReg
						}
						cell := &grid[r][c]
						cell.pReg = pIn + aIn*int32(cell.weight)
						cell.aReg = aIn
					}
				}
				// Bottom edge: column c emits output for row mi = t-(kt-1)-c.
				for c := 0; c < nt; c++ {
					mi := t - (kt - 1) - c
					if mi >= 0 && mi < m {
						out[mi*n+n0+c] += grid[kt-1][c].pReg
					}
				}
			}
			cycles += int64(tileCycles)

			// Clear pipeline registers between tiles.
			for r := 0; r < kt; r++ {
				for c := 0; c < nt; c++ {
					grid[r][c].aReg = 0
					grid[r][c].pReg = 0
				}
			}
		}
	}
	return out, cycles
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RefGEMMInt8 is the plain int32-accumulation reference the functional
// array must match bit-exactly.
func RefGEMMInt8(a []int8, m, k int, w []int8, n int) []int32 {
	out := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(w[p*n+j])
			}
			out[i*n+j] = acc
		}
	}
	return out
}
