package hwsim

import "fmt"

// AccelConfig describes the iTask acceleration circuit: a weight-stationary
// systolic MAC array with double-buffered SRAM and a DMA path to DRAM, plus
// a small fp32 vector unit for normalization/softmax/activation.
type AccelConfig struct {
	Name string
	// Rows × Cols is the systolic array geometry. Rows map the reduction
	// (K) dimension, Cols the output (N) dimension.
	Rows, Cols int
	// FreqMHz is the array clock.
	FreqMHz float64
	// VectorLanes is the fp32 vector unit width (elements per cycle).
	VectorLanes int
	// WeightSRAM and ActSRAM are on-chip buffer sizes in bytes.
	WeightSRAM, ActSRAM int
	// DRAMBandwidthGBs is the sustained DMA bandwidth.
	DRAMBandwidthGBs float64
	// StaticPowerW is leakage plus always-on logic (clock tree, DMA, ctrl).
	StaticPowerW float64
	// HostPowerW is the shared platform draw (host MCU, board, sensor I/O)
	// during the inference window — included so accelerator energy is
	// system-level, comparable to a wall measurement of the GPU board.
	HostPowerW float64
	// Energy is the per-operation energy table.
	Energy EnergyTable
}

// DefaultAccel returns the iTask accelerator design point: a 32×32 int8
// array at 800 MHz — 819 GOPS peak — with 256 KiB weight and 128 KiB
// activation SRAM, typical of recent edge detection ASICs.
func DefaultAccel() AccelConfig {
	return AccelConfig{
		Name: "itask-accel-32x32",
		Rows: 32, Cols: 32,
		FreqMHz:          800,
		VectorLanes:      16,
		WeightSRAM:       256 << 10,
		ActSRAM:          128 << 10,
		DRAMBandwidthGBs: 8,
		StaticPowerW:     0.6,
		HostPowerW:       2.0,
		Energy:           DefaultEnergyTable(),
	}
}

// Validate checks the design point.
func (c AccelConfig) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("hwsim: array %dx%d", c.Rows, c.Cols)
	case c.FreqMHz <= 0:
		return fmt.Errorf("hwsim: frequency %v", c.FreqMHz)
	case c.VectorLanes <= 0:
		return fmt.Errorf("hwsim: vector lanes %d", c.VectorLanes)
	case c.WeightSRAM <= 0 || c.ActSRAM <= 0:
		return fmt.Errorf("hwsim: SRAM sizes %d/%d", c.WeightSRAM, c.ActSRAM)
	case c.DRAMBandwidthGBs <= 0:
		return fmt.Errorf("hwsim: DRAM bandwidth %v", c.DRAMBandwidthGBs)
	case c.StaticPowerW < 0 || c.HostPowerW < 0:
		return fmt.Errorf("hwsim: power %v/%v", c.StaticPowerW, c.HostPowerW)
	}
	return nil
}

// PeakGOPS returns the array's peak int8 throughput in GOPS (MACs/s × 1e-9).
func (c AccelConfig) PeakGOPS() float64 {
	return float64(c.Rows*c.Cols) * c.FreqMHz * 1e6 * 1e-9
}

// GPUConfig is the roofline model of the GPU baseline: an embedded-class
// part (Jetson-like) running fp32 kernels at batch size 1.
type GPUConfig struct {
	Name string
	// PeakGFLOPs is peak fp32 throughput.
	PeakGFLOPs float64
	// MemBWGBs is sustained memory bandwidth.
	MemBWGBs float64
	// LaunchOverheadUS is the per-kernel launch + sync cost.
	LaunchOverheadUS float64
	// SaturationOutputs is the number of output elements needed to reach
	// full occupancy; smaller GEMMs run at proportionally lower utilization.
	SaturationOutputs float64
	// MinUtilization floors the occupancy roofline.
	MinUtilization float64
	// IdlePowerW is the board's static draw while a kernel sequence runs.
	IdlePowerW float64
	// Energy is the per-operation energy table (fp32 path).
	Energy EnergyTable
}

// DefaultGPU returns the embedded GPU baseline.
func DefaultGPU() GPUConfig {
	return GPUConfig{
		Name:              "edge-gpu-fp32",
		PeakGFLOPs:        1000,
		MemBWGBs:          60,
		LaunchOverheadUS:  8,
		SaturationOutputs: 65536,
		MinUtilization:    0.02,
		IdlePowerW:        4,
		Energy:            DefaultEnergyTable(),
	}
}

// Validate checks the GPU model.
func (c GPUConfig) Validate() error {
	switch {
	case c.PeakGFLOPs <= 0 || c.MemBWGBs <= 0:
		return fmt.Errorf("hwsim: GPU throughput %v/%v", c.PeakGFLOPs, c.MemBWGBs)
	case c.LaunchOverheadUS < 0:
		return fmt.Errorf("hwsim: GPU launch overhead %v", c.LaunchOverheadUS)
	case c.SaturationOutputs <= 0:
		return fmt.Errorf("hwsim: GPU saturation %v", c.SaturationOutputs)
	case c.MinUtilization <= 0 || c.MinUtilization > 1:
		return fmt.Errorf("hwsim: GPU min utilization %v", c.MinUtilization)
	case c.IdlePowerW < 0:
		return fmt.Errorf("hwsim: GPU idle power %v", c.IdlePowerW)
	}
	return nil
}

// CPUConfig is the scalar/SIMD CPU baseline (embedded quad-core with NEON).
type CPUConfig struct {
	Name string
	// SustainedGFLOPs is achievable fp32 GEMM throughput.
	SustainedGFLOPs float64
	// PowerW is package power while computing.
	PowerW float64
}

// DefaultCPU returns the embedded CPU baseline.
func DefaultCPU() CPUConfig {
	return CPUConfig{Name: "edge-cpu-neon", SustainedGFLOPs: 16, PowerW: 5}
}

// Validate checks the CPU model.
func (c CPUConfig) Validate() error {
	if c.SustainedGFLOPs <= 0 || c.PowerW < 0 {
		return fmt.Errorf("hwsim: CPU config %+v", c)
	}
	return nil
}
