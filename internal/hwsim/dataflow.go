package hwsim

import (
	"fmt"

	"itask/internal/vit"
)

// Dataflow selects the systolic array's mapping strategy.
type Dataflow int

// The two dataflows the iTask accelerator study compares.
const (
	// WeightStationary holds a (K,N) weight tile in the array and streams
	// activations; weights are read from DRAM once per layer. Best when
	// weights dominate traffic (the edge-inference case).
	WeightStationary Dataflow = iota
	// OutputStationary holds an (M,N) output tile in the PE accumulators
	// and streams both weights and activations through; partial sums never
	// leave the array, but weights are re-streamed once per M-tile.
	OutputStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	if d == OutputStationary {
		return "output-stationary"
	}
	return "weight-stationary"
}

// SimulateGEMMDataflow runs the cycle/traffic model for one GEMM under the
// chosen dataflow. WeightStationary delegates to SimulateGEMM (the default
// model); OutputStationary is modeled here:
//
// Tiling: the array holds an (Rows≤M, Cols≤N) output tile. For each of the
// ceil(M/Rows)×ceil(N/Cols) tiles, the full K reduction streams through
// (K + Rows + Cols pipeline cycles), then results drain (Cols cycles).
// Weights for the N-tile are re-read once per M-tile; activations for the
// M-tile once per N-tile; partial sums stay in the accumulators (no
// split-K SRAM bounce).
func SimulateGEMMDataflow(cfg AccelConfig, g vit.GEMM, df Dataflow) GEMMReport {
	if df == WeightStationary {
		return SimulateGEMM(cfg, g)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if g.M <= 0 || g.K <= 0 || g.N <= 0 || g.Repeat <= 0 {
		panic(fmt.Sprintf("hwsim: degenerate GEMM %+v", g))
	}
	tilesM := ceilDiv(g.M, cfg.Rows)
	tilesN := ceilDiv(g.N, cfg.Cols)

	perRepeatCycles := int64(tilesM*tilesN) * int64(g.K+cfg.Rows+2*cfg.Cols)
	cycles := perRepeatCycles * int64(g.Repeat)
	ideal := ceilDiv64(g.MACs(), int64(cfg.Rows*cfg.Cols))

	// Traffic per repeat: weights re-streamed per M-tile, activations
	// re-streamed per N-tile, outputs written once.
	weightReads := int64(g.K) * int64(g.N) * int64(tilesM)
	actReads := int64(g.M) * int64(g.K) * int64(tilesN)
	outWrites := int64(g.M) * int64(g.N)
	sramBytes := (weightReads + actReads + outWrites) * int64(g.Repeat)
	// Weights cross DRAM once per layer (cached in weight SRAM if they
	// fit; the re-streams above hit SRAM).
	dramBytes := int64(g.K) * int64(g.N) * int64(g.Repeat)

	computeTimeUS := float64(cycles) / (cfg.FreqMHz * 1e6) * 1e6
	dramTimeUS := float64(dramBytes) / (cfg.DRAMBandwidthGBs * 1e9) * 1e6
	timeUS := computeTimeUS
	if dramTimeUS > timeUS {
		timeUS = dramTimeUS
	}

	e := cfg.Energy
	return GEMMReport{
		Name:        g.Name,
		MACs:        g.MACs(),
		Cycles:      cycles,
		IdealCycles: ideal,
		TimeUS:      timeUS,
		Utilization: float64(ideal) / float64(cycles),
		SRAMBytes:   sramBytes,
		DRAMBytes:   dramBytes,
		ComputeUJ:   float64(g.MACs()) * e.MACInt8PJ * 1e-6,
		SRAMUJ:      float64(sramBytes) * e.SRAMPerBytePJ * 1e-6,
		DRAMUJ:      float64(dramBytes) * e.DRAMPerBytePJ * 1e-6,
	}
}

// SimulateAccelDataflow is SimulateAccel under a chosen dataflow.
func SimulateAccelDataflow(accel AccelConfig, model vit.Config, df Dataflow) ModelReport {
	if df == WeightStationary {
		return SimulateAccel(accel, model)
	}
	rep := ModelReport{Device: accel.Name + "/" + df.String()}
	var macWeightedUtil, totalMACs float64
	for _, g := range model.Workload() {
		lr := SimulateGEMMDataflow(accel, g, df)
		rep.Layers = append(rep.Layers, lr)
		rep.LatencyUS += lr.TimeUS
		rep.DynamicUJ += lr.EnergyUJ()
		macWeightedUtil += lr.Utilization * float64(lr.MACs)
		totalMACs += float64(lr.MACs)
	}
	rep.VectorOps = vectorOpCount(model)
	vecTimeUS := float64(rep.VectorOps) / (float64(accel.VectorLanes) * accel.FreqMHz * 1e6) * 1e6
	rep.LatencyUS += vecTimeUS
	rep.DynamicUJ += float64(rep.VectorOps) * accel.Energy.VectorOpPJ * 1e-6
	rep.StaticUJ = (accel.StaticPowerW + accel.HostPowerW) * rep.LatencyUS
	rep.TotalUJ = rep.DynamicUJ + rep.StaticUJ
	rep.FPS = 1e6 / rep.LatencyUS
	if totalMACs > 0 {
		rep.MeanUtilization = macWeightedUtil / totalMACs
	}
	return rep
}
