package hwsim

import (
	"fmt"

	"itask/internal/vit"
)

// GEMMReport is the simulated execution of one GEMM on the accelerator.
type GEMMReport struct {
	Name string
	// MACs is the arithmetic work.
	MACs int64
	// Cycles is the array-busy cycle count including pipeline fill/drain
	// and weight-load stalls.
	Cycles int64
	// IdealCycles is MACs / (Rows*Cols): the 100%-utilization floor.
	IdealCycles int64
	// TimeUS is wall time, the max of compute time and DRAM streaming time
	// (weights are double-buffered against compute).
	TimeUS float64
	// Utilization is IdealCycles / Cycles, in (0, 1].
	Utilization float64
	// SRAMBytes and DRAMBytes are the memory traffic.
	SRAMBytes, DRAMBytes int64
	// EnergyUJ breaks out energy by source (static energy is accounted at
	// the model level where total time is known).
	ComputeUJ, SRAMUJ, DRAMUJ float64
}

// EnergyUJ is the layer's dynamic energy.
func (r GEMMReport) EnergyUJ() float64 { return r.ComputeUJ + r.SRAMUJ + r.DRAMUJ }

// SimulateGEMM runs the cycle/traffic model for one (M,K,N)×Repeat GEMM on
// the weight-stationary array.
//
// Tiling: the array holds a (Rows≤K, Cols≤N) weight tile. For each of the
// ceil(K/Rows)×ceil(N/Cols) tiles, loading weights costs Rows cycles
// (one row broadcast per cycle) and computing costs M + Rows + Cols cycles
// (M activations streamed through, plus pipeline fill/drain). Partial sums
// for split-K accumulate in the output SRAM.
//
// Traffic: weights stream from DRAM once (int8, K·N bytes per repeat);
// activations are SRAM-resident (M·K bytes read per N-tile); outputs are
// written back as int8 after requantization (M·N bytes, int32 partials
// bounce in accumulator SRAM for split-K tiles).
func SimulateGEMM(cfg AccelConfig, g vit.GEMM) GEMMReport {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if g.M <= 0 || g.K <= 0 || g.N <= 0 || g.Repeat <= 0 {
		panic(fmt.Sprintf("hwsim: degenerate GEMM %+v", g))
	}
	tilesK := ceilDiv(g.K, cfg.Rows)
	tilesN := ceilDiv(g.N, cfg.Cols)

	perRepeatCycles := int64(0)
	for tk := 0; tk < tilesK; tk++ {
		for tn := 0; tn < tilesN; tn++ {
			load := int64(cfg.Rows)
			compute := int64(g.M + cfg.Rows + cfg.Cols)
			perRepeatCycles += load + compute
		}
	}
	cycles := perRepeatCycles * int64(g.Repeat)
	ideal := ceilDiv64(g.MACs(), int64(cfg.Rows*cfg.Cols))

	// Traffic per repeat.
	weightBytes := int64(g.K) * int64(g.N)              // int8 weights from DRAM
	actReads := int64(g.M) * int64(g.K) * int64(tilesN) // SRAM activation reads
	outWrites := int64(g.M) * int64(g.N)                // final int8 outputs
	partials := int64(0)
	if tilesK > 1 {
		// split-K: int32 partial sums read+written per extra K tile
		partials = int64(g.M) * int64(g.N) * 4 * 2 * int64(tilesK-1)
	}
	sramBytes := (actReads + outWrites + partials + weightBytes) * int64(g.Repeat)
	dramBytes := weightBytes * int64(g.Repeat)

	computeTimeUS := float64(cycles) / (cfg.FreqMHz * 1e6) * 1e6
	dramTimeUS := float64(dramBytes) / (cfg.DRAMBandwidthGBs * 1e9) * 1e6
	timeUS := computeTimeUS
	if dramTimeUS > timeUS {
		timeUS = dramTimeUS // weight streaming not hidden: DMA-bound layer
	}

	util := float64(ideal) / float64(cycles)
	e := cfg.Energy
	return GEMMReport{
		Name:        g.Name,
		MACs:        g.MACs(),
		Cycles:      cycles,
		IdealCycles: ideal,
		TimeUS:      timeUS,
		Utilization: util,
		SRAMBytes:   sramBytes,
		DRAMBytes:   dramBytes,
		ComputeUJ:   float64(g.MACs()) * e.MACInt8PJ * 1e-6,
		SRAMUJ:      float64(sramBytes) * e.SRAMPerBytePJ * 1e-6,
		DRAMUJ:      float64(dramBytes) * e.DRAMPerBytePJ * 1e-6,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
