package hwsim

import (
	"strings"
	"testing"
	"testing/quick"

	"itask/internal/scene"
	"itask/internal/vit"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultAccel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultGPU().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultCPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultAccel()
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("rows=0 should fail")
	}
	badG := DefaultGPU()
	badG.MinUtilization = 2
	if err := badG.Validate(); err == nil {
		t.Error("util>1 should fail")
	}
}

func TestPeakGOPS(t *testing.T) {
	a := DefaultAccel()
	want := float64(32*32) * 800e6 * 1e-9
	if got := a.PeakGOPS(); got != want {
		t.Errorf("PeakGOPS = %v, want %v", got, want)
	}
}

func TestSimulateGEMMInvariants(t *testing.T) {
	accel := DefaultAccel()
	f := func(ms, ks, ns uint8) bool {
		g := vit.GEMM{
			Name: "g",
			M:    int(ms)%200 + 1, K: int(ks)%300 + 1, N: int(ns)%300 + 1,
			Repeat: 1,
		}
		r := SimulateGEMM(accel, g)
		// Cycles can never beat the 100%-utilization floor.
		if r.Cycles < r.IdealCycles {
			return false
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			return false
		}
		if r.TimeUS <= 0 || r.EnergyUJ() <= 0 {
			return false
		}
		// DRAM traffic at least the weight bytes.
		return r.DRAMBytes >= int64(g.K)*int64(g.N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulateGEMMMonotoneInSize(t *testing.T) {
	accel := DefaultAccel()
	small := SimulateGEMM(accel, vit.GEMM{Name: "s", M: 64, K: 64, N: 64, Repeat: 1})
	big := SimulateGEMM(accel, vit.GEMM{Name: "b", M: 64, K: 128, N: 64, Repeat: 1})
	if big.Cycles <= small.Cycles || big.TimeUS <= small.TimeUS || big.EnergyUJ() <= small.EnergyUJ() {
		t.Error("bigger GEMM must cost more")
	}
	// Repeat scales linearly in cycles.
	rep2 := SimulateGEMM(accel, vit.GEMM{Name: "r", M: 64, K: 64, N: 64, Repeat: 2})
	if rep2.Cycles != 2*small.Cycles {
		t.Errorf("repeat=2 cycles %d, want %d", rep2.Cycles, 2*small.Cycles)
	}
}

func TestUtilizationImprovesWithAlignedShapes(t *testing.T) {
	accel := DefaultAccel() // 32x32
	aligned := SimulateGEMM(accel, vit.GEMM{Name: "a", M: 256, K: 64, N: 64, Repeat: 1})
	ragged := SimulateGEMM(accel, vit.GEMM{Name: "r", M: 256, K: 33, N: 33, Repeat: 1})
	if aligned.Utilization <= ragged.Utilization {
		t.Errorf("aligned util %v should beat ragged %v", aligned.Utilization, ragged.Utilization)
	}
}

func TestSimulateAccelModel(t *testing.T) {
	model := vit.TeacherConfig(int(scene.NumClasses))
	rep := SimulateAccel(DefaultAccel(), model)
	if len(rep.Layers) != len(model.Workload()) {
		t.Fatalf("layers %d vs workload %d", len(rep.Layers), len(model.Workload()))
	}
	if rep.LatencyUS <= 0 || rep.FPS <= 0 || rep.TotalUJ <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if rep.MeanUtilization <= 0 || rep.MeanUtilization > 1 {
		t.Errorf("utilization %v", rep.MeanUtilization)
	}
	if rep.TotalUJ != rep.DynamicUJ+rep.StaticUJ {
		t.Error("energy breakdown inconsistent")
	}
	// Latency at least the sum of layer times (vector work adds more).
	var sum float64
	for _, l := range rep.Layers {
		sum += l.TimeUS
	}
	if rep.LatencyUS < sum {
		t.Error("model latency below sum of layers")
	}
	if rep.LayerTable() == "" {
		t.Error("LayerTable empty")
	}
}

func TestStudentFasterThanTeacherOnAccel(t *testing.T) {
	accel := DefaultAccel()
	teacher := SimulateAccel(accel, vit.TeacherConfig(14))
	student := SimulateAccel(accel, vit.StudentConfig(14))
	if student.LatencyUS >= teacher.LatencyUS {
		t.Error("student must be faster than teacher")
	}
	if student.TotalUJ >= teacher.TotalUJ {
		t.Error("student must use less energy than teacher")
	}
}

func TestBiggerArrayFasterButLessUtilized(t *testing.T) {
	model := vit.TeacherConfig(14)
	small := DefaultAccel()
	small.Rows, small.Cols = 8, 8
	big := DefaultAccel()
	big.Rows, big.Cols = 64, 64
	rs := SimulateAccel(small, model)
	rb := SimulateAccel(big, model)
	if rb.LatencyUS >= rs.LatencyUS {
		t.Error("64x64 should beat 8x8 latency")
	}
	if rb.MeanUtilization >= rs.MeanUtilization {
		t.Error("bigger array should have lower utilization on a small model")
	}
}

func TestSimulateGPUBatchingImprovesThroughput(t *testing.T) {
	model := vit.TeacherConfig(14)
	gpu := DefaultGPU()
	b1 := SimulateGPU(gpu, model, 1)
	b8 := SimulateGPU(gpu, model, 8)
	if b8.LatencyUS >= b1.LatencyUS {
		t.Errorf("per-image latency at batch 8 (%v) should beat batch 1 (%v) via launch amortization",
			b8.LatencyUS, b1.LatencyUS)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("batch 0 should panic")
			}
		}()
		SimulateGPU(gpu, model, 0)
	}()
}

func TestGPULaunchOverheadDominatesAtBatch1(t *testing.T) {
	model := vit.TeacherConfig(14)
	gpu := DefaultGPU()
	rep := SimulateGPU(gpu, model, 1)
	kernels := float64(len(model.Workload())) + float64(4*model.Depth+2)
	launch := kernels * gpu.LaunchOverheadUS
	if launch < rep.LatencyUS*0.3 {
		t.Errorf("launch overhead %vus should be a large share of %vus at batch 1", launch, rep.LatencyUS)
	}
}

// TestHeadlineComparison checks the E3 claim shape: the accelerator beats
// the GPU by roughly the paper's 3.5x on latency and wins on energy, and
// the CPU loses to both.
func TestHeadlineComparison(t *testing.T) {
	model := vit.TeacherConfig(int(scene.NumClasses))
	c := Compare(DefaultAccel(), DefaultGPU(), DefaultCPU(), model)
	if c.SpeedupVsGPU < 2 || c.SpeedupVsGPU > 6 {
		t.Errorf("speedup vs GPU = %.2fx, want in the 3.5x ballpark (2-6x)", c.SpeedupVsGPU)
	}
	if c.EnergyReductionVsGPU < 0.3 {
		t.Errorf("energy reduction vs GPU = %.0f%%, want >= 30%%", 100*c.EnergyReductionVsGPU)
	}
	if c.SpeedupVsCPU <= c.SpeedupVsGPU {
		t.Error("CPU should be the slowest device")
	}
	if !strings.Contains(c.String(), "speedup") {
		t.Error("comparison table missing summary line")
	}
}

func TestVectorOpsScaleWithDepth(t *testing.T) {
	shallow := vit.StudentConfig(14)
	deep := shallow
	deep.Depth = shallow.Depth * 2
	if vectorOpCount(deep) <= vectorOpCount(shallow) {
		t.Error("vector ops should grow with depth")
	}
}

func TestCPUSlowerWhenWeaker(t *testing.T) {
	model := vit.StudentConfig(14)
	fast := DefaultCPU()
	slow := fast
	slow.SustainedGFLOPs = fast.SustainedGFLOPs / 4
	if SimulateCPU(slow, model).LatencyUS <= SimulateCPU(fast, model).LatencyUS {
		t.Error("weaker CPU must be slower")
	}
}

func TestEnergyTableSanity(t *testing.T) {
	e := DefaultEnergyTable()
	if e.MACInt8PJ >= e.MACFP32PJ {
		t.Error("int8 MAC must be cheaper than fp32")
	}
	if e.SRAMPerBytePJ >= e.DRAMPerBytePJ {
		t.Error("SRAM must be cheaper than DRAM")
	}
	if picojoulesToMillijoules(1e9) != 1 {
		t.Error("unit conversion wrong")
	}
}
