package hwsim

import (
	"fmt"
	"sort"
	"strings"

	"itask/internal/vit"
)

// ModelReport is the simulated execution of one full inference pass.
type ModelReport struct {
	Device string
	// Layers holds the per-GEMM breakdown (accelerator runs only).
	Layers []GEMMReport
	// VectorOps counts non-GEMM elementwise work (LN, softmax, GELU,
	// residual adds) executed on the vector unit.
	VectorOps int64
	// LatencyUS is end-to-end single-image latency.
	LatencyUS float64
	// FPS is 1e6 / LatencyUS.
	FPS float64
	// DynamicUJ, StaticUJ, TotalUJ are per-inference energies.
	DynamicUJ, StaticUJ, TotalUJ float64
	// MeanUtilization is MAC-weighted array utilization (accelerator only).
	MeanUtilization float64
}

// vectorOpCount estimates the elementwise fp32 work of one inference:
// per block, 2 LayerNorms (~8 ops/elem), softmax (~6 ops/elem over T² per
// head), GELU (~10 ops/elem over the MLP hidden), residual adds, plus the
// final norm and the head sigmoids. Constants are rough but consistent
// across devices, so cross-device ratios are insensitive to them.
func vectorOpCount(cfg vit.Config) int64 {
	t := int64(cfg.Tokens())
	d := int64(cfg.Dim)
	var ops int64
	perLN := 8 * t * d
	for i := 0; i < cfg.Depth; i++ {
		ops += 2 * perLN
		ops += 6 * int64(cfg.Heads) * t * t // softmax
		ops += 10 * t * d * int64(cfg.MLPRatio)
		ops += 2 * t * d // residual adds
	}
	ops += perLN                          // final norm
	ops += 12 * t * int64(cfg.DetWidth()) // head activations/decode
	return ops
}

// SimulateAccel maps a ViT workload onto the accelerator and returns the
// full report. Vector-unit work runs concurrently with nothing (worst case:
// serialized after the array), which is the conservative choice.
func SimulateAccel(accel AccelConfig, model vit.Config) ModelReport {
	if err := accel.Validate(); err != nil {
		panic(err)
	}
	rep := ModelReport{Device: accel.Name}
	var macWeightedUtil, totalMACs float64
	for _, g := range model.Workload() {
		lr := SimulateGEMM(accel, g)
		rep.Layers = append(rep.Layers, lr)
		rep.LatencyUS += lr.TimeUS
		rep.DynamicUJ += lr.EnergyUJ()
		macWeightedUtil += lr.Utilization * float64(lr.MACs)
		totalMACs += float64(lr.MACs)
	}
	rep.VectorOps = vectorOpCount(model)
	vecTimeUS := float64(rep.VectorOps) / (float64(accel.VectorLanes) * accel.FreqMHz * 1e6) * 1e6
	rep.LatencyUS += vecTimeUS
	rep.DynamicUJ += float64(rep.VectorOps) * accel.Energy.VectorOpPJ * 1e-6
	rep.StaticUJ = (accel.StaticPowerW + accel.HostPowerW) * rep.LatencyUS // W·µs = µJ
	rep.TotalUJ = rep.DynamicUJ + rep.StaticUJ
	rep.FPS = 1e6 / rep.LatencyUS
	if totalMACs > 0 {
		rep.MeanUtilization = macWeightedUtil / totalMACs
	}
	return rep
}

// SimulateAccelBatch models the accelerator executing a micro-batch of
// `batch` images back to back, the execution mode of the serving layer's
// dynamic batcher. Static-weight GEMMs (patch embed, QKV/proj, MLPs, heads)
// keep their weight tiles stationary across the whole batch — M grows by
// the batch factor while the per-tile weight loads, pipeline fill/drain,
// and DRAM weight streaming are paid once — which is exactly the
// weight-stationary amortization that makes micro-batching profitable on
// this design. GEMMs marked Dynamic (attention scores/context, whose
// stationary operand is a per-image activation) repeat per image and gain
// nothing. The report is normalized per image: LatencyUS = total/batch,
// FPS = batch/total. SimulateAccelBatch(a, m, 1) equals SimulateAccel(a, m).
func SimulateAccelBatch(accel AccelConfig, model vit.Config, batch int) ModelReport {
	if batch <= 0 {
		panic("hwsim: batch must be positive")
	}
	if err := accel.Validate(); err != nil {
		panic(err)
	}
	rep := ModelReport{Device: accel.Name}
	var macWeightedUtil, totalMACs float64
	for _, g := range model.Workload() {
		if g.Dynamic {
			g.Repeat *= batch
		} else {
			g.M *= batch
		}
		lr := SimulateGEMM(accel, g)
		rep.Layers = append(rep.Layers, lr)
		rep.LatencyUS += lr.TimeUS
		rep.DynamicUJ += lr.EnergyUJ()
		macWeightedUtil += lr.Utilization * float64(lr.MACs)
		totalMACs += float64(lr.MACs)
	}
	rep.VectorOps = vectorOpCount(model) * int64(batch)
	vecTimeUS := float64(rep.VectorOps) / (float64(accel.VectorLanes) * accel.FreqMHz * 1e6) * 1e6
	rep.LatencyUS += vecTimeUS
	rep.DynamicUJ += float64(rep.VectorOps) * accel.Energy.VectorOpPJ * 1e-6
	rep.StaticUJ = (accel.StaticPowerW + accel.HostPowerW) * rep.LatencyUS
	// Normalize to per-image figures at this batch size.
	rep.LatencyUS /= float64(batch)
	rep.DynamicUJ /= float64(batch)
	rep.StaticUJ /= float64(batch)
	rep.TotalUJ = rep.DynamicUJ + rep.StaticUJ
	rep.FPS = 1e6 / rep.LatencyUS
	if totalMACs > 0 {
		rep.MeanUtilization = macWeightedUtil / totalMACs
	}
	return rep
}

// SimulateGPU models the fp32 GPU baseline at the given batch size: each
// GEMM is one kernel with launch overhead, an occupancy-scaled compute
// roofline, and a bandwidth roofline; elementwise work is fused into a few
// extra kernels. Batching multiplies M (more parallelism, better occupancy)
// and amortizes launches.
func SimulateGPU(gpu GPUConfig, model vit.Config, batch int) ModelReport {
	if err := gpu.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic("hwsim: batch must be positive")
	}
	rep := ModelReport{Device: gpu.Name}
	var timeUS, dynamicUJ float64
	for _, g := range model.Workload() {
		m := g.M * batch
		outputs := float64(m * g.N)
		util := outputs / gpu.SaturationOutputs
		if util > 1 {
			util = 1
		}
		if util < gpu.MinUtilization {
			util = gpu.MinUtilization
		}
		flops := 2 * float64(g.MACs()) * float64(batch)
		computeUS := flops / (gpu.PeakGFLOPs * 1e9 * util) * 1e6
		bytes := 4 * float64(int64(m)*int64(g.K)+int64(g.K)*int64(g.N)+int64(m)*int64(g.N)) * float64(g.Repeat)
		memUS := bytes / (gpu.MemBWGBs * 1e9) * 1e6
		t := computeUS
		if memUS > t {
			t = memUS
		}
		timeUS += gpu.LaunchOverheadUS + t
		dynamicUJ += float64(g.MACs()) * float64(batch) * gpu.Energy.MACFP32PJ * 1e-6
		dynamicUJ += bytes * gpu.Energy.DRAMPerBytePJ * 1e-6
	}
	// Elementwise work: ~4 fused kernels per block plus head decode.
	vecOps := vectorOpCount(model) * int64(batch)
	fusedKernels := float64(4*model.Depth + 2)
	vecUS := float64(vecOps) / (gpu.PeakGFLOPs * 1e9 * 0.05) * 1e6 // elementwise kernels are bandwidth-poor
	timeUS += fusedKernels*gpu.LaunchOverheadUS + vecUS
	dynamicUJ += float64(vecOps) * gpu.Energy.MACFP32PJ * 1e-6

	rep.VectorOps = vecOps
	rep.LatencyUS = timeUS / float64(batch) // per-image latency at this batch
	rep.DynamicUJ = dynamicUJ / float64(batch)
	rep.StaticUJ = gpu.IdlePowerW * timeUS / float64(batch)
	rep.TotalUJ = rep.DynamicUJ + rep.StaticUJ
	rep.FPS = 1e6 / rep.LatencyUS
	return rep
}

// SimulateCPU models the embedded CPU baseline: sustained-GFLOPs GEMMs with
// no launch overhead, fp32 energy.
func SimulateCPU(cpu CPUConfig, model vit.Config) ModelReport {
	if err := cpu.Validate(); err != nil {
		panic(err)
	}
	e := DefaultEnergyTable()
	rep := ModelReport{Device: cpu.Name}
	var macs float64
	for _, g := range model.Workload() {
		macs += float64(g.MACs())
	}
	vecOps := float64(vectorOpCount(model))
	rep.VectorOps = int64(vecOps)
	flops := 2*macs + vecOps
	rep.LatencyUS = flops / (cpu.SustainedGFLOPs * 1e9) * 1e6
	rep.DynamicUJ = macs * e.MACFP32PJ * 1e-6
	rep.StaticUJ = cpu.PowerW * rep.LatencyUS
	rep.TotalUJ = rep.DynamicUJ + rep.StaticUJ
	rep.FPS = 1e6 / rep.LatencyUS
	return rep
}

// Comparison holds the accelerator-vs-baseline headline numbers of E3.
type Comparison struct {
	Accel, GPU, CPU ModelReport
	// SpeedupVsGPU and SpeedupVsCPU are latency ratios (>1 = accel wins).
	SpeedupVsGPU, SpeedupVsCPU float64
	// EnergyReductionVsGPU is 1 − accelEnergy/gpuEnergy (the paper's "40%
	// reduction" metric).
	EnergyReductionVsGPU float64
}

// Compare runs all three devices on the model at batch 1.
func Compare(accel AccelConfig, gpu GPUConfig, cpu CPUConfig, model vit.Config) Comparison {
	c := Comparison{
		Accel: SimulateAccel(accel, model),
		GPU:   SimulateGPU(gpu, model, 1),
		CPU:   SimulateCPU(cpu, model),
	}
	c.SpeedupVsGPU = c.GPU.LatencyUS / c.Accel.LatencyUS
	c.SpeedupVsCPU = c.CPU.LatencyUS / c.Accel.LatencyUS
	c.EnergyReductionVsGPU = 1 - c.Accel.TotalUJ/c.GPU.TotalUJ
	return c
}

// String renders a comparison table.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %10s %12s\n", "device", "latency(us)", "fps", "energy(uJ)")
	for _, r := range []ModelReport{c.Accel, c.GPU, c.CPU} {
		fmt.Fprintf(&b, "%-22s %12.1f %10.0f %12.1f\n", r.Device, r.LatencyUS, r.FPS, r.TotalUJ)
	}
	fmt.Fprintf(&b, "speedup vs GPU: %.2fx   vs CPU: %.2fx   energy reduction vs GPU: %.0f%%\n",
		c.SpeedupVsGPU, c.SpeedupVsCPU, 100*c.EnergyReductionVsGPU)
	return b.String()
}

// LayerTable renders the per-layer accelerator breakdown sorted by time.
func (r ModelReport) LayerTable() string {
	layers := append([]GEMMReport(nil), r.Layers...)
	sort.Slice(layers, func(i, j int) bool { return layers[i].TimeUS > layers[j].TimeUS })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %8s %7s %10s %10s\n", "layer", "MACs", "time(us)", "util", "sram(KB)", "energy(uJ)")
	for _, l := range layers {
		fmt.Fprintf(&b, "%-20s %10d %8.2f %6.1f%% %10.1f %10.2f\n",
			l.Name, l.MACs, l.TimeUS, 100*l.Utilization, float64(l.SRAMBytes)/1024, l.EnergyUJ())
	}
	return b.String()
}
