package hwsim_test

import (
	"fmt"

	"itask/internal/hwsim"
	"itask/internal/scene"
	"itask/internal/vit"
)

// ExampleCompare reproduces the headline hardware claim: the accelerator
// vs GPU/CPU baselines on the paper-scale generalist.
func ExampleCompare() {
	model := vit.TeacherConfig(int(scene.NumClasses))
	c := hwsim.Compare(hwsim.DefaultAccel(), hwsim.DefaultGPU(), hwsim.DefaultCPU(), model)
	fmt.Printf("speedup vs GPU: %.2fx\n", c.SpeedupVsGPU)
	fmt.Printf("accelerator wins energy: %v\n", c.EnergyReductionVsGPU > 0)
	// Output:
	// speedup vs GPU: 3.58x
	// accelerator wins energy: true
}

// ExampleFunctionalArray_RunGEMM shows the cycle-accurate functional
// simulation computing a small int8 GEMM bit-exactly.
func ExampleFunctionalArray_RunGEMM() {
	fa := hwsim.NewFunctionalArray(2, 2)
	a := []int8{1, 2, 3, 4} // 2x2
	w := []int8{5, 6, 7, 8} // 2x2
	out, _ := fa.RunGEMM(a, 2, 2, w, 2)
	fmt.Println(out)
	// Output: [19 22 43 50]
}
