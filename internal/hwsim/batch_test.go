package hwsim

import (
	"math"
	"testing"

	"itask/internal/vit"
)

func batchTestModel() vit.Config {
	return vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: 12,
	}
}

// Batch 1 must reproduce the single-image simulation exactly — the batcher
// degrades to SimulateAccel when it cannot coalesce.
func TestAccelBatchOneMatchesSingle(t *testing.T) {
	accel := DefaultAccel()
	model := batchTestModel()
	single := SimulateAccel(accel, model)
	b1 := SimulateAccelBatch(accel, model, 1)
	if math.Abs(single.LatencyUS-b1.LatencyUS) > 1e-9*single.LatencyUS {
		t.Errorf("batch-1 latency %.6f != single %.6f", b1.LatencyUS, single.LatencyUS)
	}
	if math.Abs(single.TotalUJ-b1.TotalUJ) > 1e-9*single.TotalUJ {
		t.Errorf("batch-1 energy %.6f != single %.6f", b1.TotalUJ, single.TotalUJ)
	}
}

// Weight-stationary amortization: per-image latency must strictly improve
// as the batch grows, and utilization must not degrade.
func TestAccelBatchAmortizes(t *testing.T) {
	accel := DefaultAccel()
	model := batchTestModel()
	prev := SimulateAccelBatch(accel, model, 1)
	for _, b := range []int{2, 4, 8, 16} {
		rep := SimulateAccelBatch(accel, model, b)
		if rep.LatencyUS >= prev.LatencyUS {
			t.Errorf("batch %d per-image latency %.2fus did not improve on %.2fus", b, rep.LatencyUS, prev.LatencyUS)
		}
		if rep.MeanUtilization < prev.MeanUtilization {
			t.Errorf("batch %d utilization %.3f below %.3f", b, rep.MeanUtilization, prev.MeanUtilization)
		}
		prev = rep
	}
	// The headline claim behind the serving layer: batch >= 4 beats
	// single-image execution by a clear margin on this design point.
	b4 := SimulateAccelBatch(accel, model, 4)
	b1 := SimulateAccelBatch(accel, model, 1)
	if speedup := b1.LatencyUS / b4.LatencyUS; speedup < 1.2 {
		t.Errorf("batch-4 speedup %.2fx, want >= 1.2x", speedup)
	}
}

func TestAccelBatchRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch 0")
		}
	}()
	SimulateAccelBatch(DefaultAccel(), batchTestModel(), 0)
}
