package hwsim

import (
	"testing"
	"testing/quick"

	"itask/internal/tensor"
	"itask/internal/vit"
)

func randInt8(rng *tensor.RNG, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

func TestFunctionalArrayTinyExact(t *testing.T) {
	// 2x2 GEMM on a 2x2 array, worked by hand.
	// A = [1 2; 3 4], W = [5 6; 7 8] -> A@W = [19 22; 43 50].
	fa := NewFunctionalArray(2, 2)
	a := []int8{1, 2, 3, 4}
	w := []int8{5, 6, 7, 8}
	out, cycles := fa.RunGEMM(a, 2, 2, w, 2)
	want := []int32{19, 22, 43, 50}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("out[%d] = %d, want %d (out=%v)", i, out[i], v, out)
		}
	}
	if cycles <= 0 {
		t.Error("no cycles counted")
	}
}

func TestFunctionalMatchesReferenceProperty(t *testing.T) {
	rng := tensor.NewRNG(1)
	f := func(ms, ks, ns, rs, cs uint8) bool {
		m := int(ms)%13 + 1
		k := int(ks)%17 + 1
		n := int(ns)%15 + 1
		rows := int(rs)%7 + 2
		cols := int(cs)%7 + 2
		a := randInt8(rng, m*k)
		w := randInt8(rng, k*n)
		fa := NewFunctionalArray(rows, cols)
		got, _ := fa.RunGEMM(a, m, k, w, n)
		want := RefGEMMInt8(a, m, k, w, n)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFunctionalCyclesMatchAnalyticalOnAlignedShapes(t *testing.T) {
	// When K and N are multiples of the array dims, the functional cycle
	// count must equal the analytical model's compute cycles exactly.
	accel := DefaultAccel()
	accel.Rows, accel.Cols = 8, 8
	rng := tensor.NewRNG(2)
	for _, shape := range []struct{ m, k, n int }{
		{16, 8, 8}, {4, 16, 24}, {10, 32, 8},
	} {
		g := vit.GEMM{Name: "t", M: shape.m, K: shape.k, N: shape.n, Repeat: 1}
		analytical := SimulateGEMM(accel, g).Cycles
		fa := NewFunctionalArray(accel.Rows, accel.Cols)
		a := randInt8(rng, shape.m*shape.k)
		w := randInt8(rng, shape.k*shape.n)
		_, functional := fa.RunGEMM(a, shape.m, shape.k, w, shape.n)
		if functional != analytical {
			t.Errorf("GEMM %dx%dx%d: functional %d cycles vs analytical %d",
				shape.m, shape.k, shape.n, functional, analytical)
		}
	}
}

func TestFunctionalCyclesUpperBoundedByAnalytical(t *testing.T) {
	// On ragged shapes the analytical model charges full padded tiles;
	// the functional array drains partial tiles sooner.
	accel := DefaultAccel()
	accel.Rows, accel.Cols = 8, 8
	rng := tensor.NewRNG(3)
	f := func(ms, ks, ns uint8) bool {
		m := int(ms)%20 + 1
		k := int(ks)%30 + 1
		n := int(ns)%30 + 1
		g := vit.GEMM{Name: "t", M: m, K: k, N: n, Repeat: 1}
		analytical := SimulateGEMM(accel, g).Cycles
		fa := NewFunctionalArray(8, 8)
		a := randInt8(rng, m*k)
		w := randInt8(rng, k*n)
		_, functional := fa.RunGEMM(a, m, k, w, n)
		return functional <= analytical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFunctionalArrayValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-dim array should panic")
			}
		}()
		NewFunctionalArray(0, 4)
	}()
	fa := NewFunctionalArray(4, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong A length should panic")
			}
		}()
		fa.RunGEMM(make([]int8, 5), 2, 3, make([]int8, 6), 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong W length should panic")
			}
		}()
		fa.RunGEMM(make([]int8, 6), 2, 3, make([]int8, 5), 2)
	}()
}

func TestFunctionalOverflowBehaviour(t *testing.T) {
	// Extreme int8 values: int32 accumulation must not saturate for the
	// reduction depths the models use (K up to a few hundred).
	fa := NewFunctionalArray(4, 4)
	k := 256
	a := make([]int8, k)
	w := make([]int8, k)
	for i := 0; i < k; i++ {
		a[i] = -128
		w[i] = -128
	}
	out, _ := fa.RunGEMM(a, 1, k, w, 1)
	want := int32(k) * 128 * 128
	if out[0] != want {
		t.Errorf("deep reduction = %d, want %d", out[0], want)
	}
}
