package hwsim

import (
	"regexp"
	"strings"
	"testing"
)

func TestGenerateVerilogStructure(t *testing.T) {
	v := GenerateVerilog(DefaultAccel())
	for _, module := range []string{
		"module itask_pe", "module itask_weight_loader",
		"module itask_systolic_array", "module itask_accel_top",
	} {
		if !strings.Contains(v, module) {
			t.Errorf("missing %q", module)
		}
	}
	// Balanced module/endmodule.
	if m, e := strings.Count(v, "\nmodule "), strings.Count(v, "endmodule"); m+1 != e && m != e {
		// "module" also appears at line starts after comments; count
		// endmodule against the 4 declared modules instead.
		if e != 4 {
			t.Errorf("expected 4 endmodule, got %d", e)
		}
	}
	if strings.Count(v, "endmodule") != 4 {
		t.Errorf("endmodule count = %d, want 4", strings.Count(v, "endmodule"))
	}
	// begin/end balance inside generate blocks and always blocks.
	begins := regexp.MustCompile(`\bbegin\b`).FindAllString(v, -1)
	ends := regexp.MustCompile(`\bend\b`).FindAllString(v, -1)
	if len(begins) != len(ends) {
		t.Errorf("begin/end imbalance: %d vs %d", len(begins), len(ends))
	}
}

func TestGenerateVerilogParameters(t *testing.T) {
	cfg := DefaultAccel()
	cfg.Rows, cfg.Cols = 16, 24
	v := GenerateVerilog(cfg)
	if !strings.Contains(v, "parameter ROWS  = 16") {
		t.Error("ROWS parameter not propagated")
	}
	if !strings.Contains(v, "parameter COLS  = 24") {
		t.Error("COLS parameter not propagated")
	}
	// int8 datapath with int32 accumulation.
	if !strings.Contains(v, "ACT_W = 8") || !strings.Contains(v, "ACC_W = 32") {
		t.Error("datapath widths missing")
	}
}

func TestGenerateVerilogDeterministic(t *testing.T) {
	a := GenerateVerilog(DefaultAccel())
	b := GenerateVerilog(DefaultAccel())
	if a != b {
		t.Error("RTL generation must be deterministic")
	}
	small := DefaultAccel()
	small.Rows = 8
	if GenerateVerilog(small) == a {
		t.Error("different configs must generate different RTL")
	}
}

func TestGenerateVerilogRejectsInvalidConfig(t *testing.T) {
	bad := DefaultAccel()
	bad.Rows = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid config")
		}
	}()
	GenerateVerilog(bad)
}

func TestGenerateVerilogNoTodoLeftovers(t *testing.T) {
	v := GenerateVerilog(DefaultAccel())
	for _, bad := range []string{"TODO", "FIXME", "%!"} {
		if strings.Contains(v, bad) {
			t.Errorf("generated RTL contains %q", bad)
		}
	}
}
