package hwsim

import (
	"testing"
	"testing/quick"

	"itask/internal/scene"
	"itask/internal/vit"
)

func TestDataflowString(t *testing.T) {
	if WeightStationary.String() != "weight-stationary" || OutputStationary.String() != "output-stationary" {
		t.Error("dataflow names wrong")
	}
}

func TestWeightStationaryDelegates(t *testing.T) {
	accel := DefaultAccel()
	g := vit.GEMM{Name: "g", M: 64, K: 96, N: 96, Repeat: 1}
	a := SimulateGEMM(accel, g)
	b := SimulateGEMMDataflow(accel, g, WeightStationary)
	if a != b {
		t.Error("WeightStationary must match SimulateGEMM exactly")
	}
}

func TestOutputStationaryInvariants(t *testing.T) {
	accel := DefaultAccel()
	f := func(ms, ks, ns uint8) bool {
		g := vit.GEMM{
			Name: "g",
			M:    int(ms)%200 + 1, K: int(ks)%300 + 1, N: int(ns)%300 + 1,
			Repeat: 1,
		}
		r := SimulateGEMMDataflow(accel, g, OutputStationary)
		if r.Cycles < r.IdealCycles {
			return false
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			return false
		}
		return r.TimeUS > 0 && r.EnergyUJ() > 0 && r.DRAMBytes >= int64(g.K)*int64(g.N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDataflowTradeoffShape(t *testing.T) {
	// Weight-stationary avoids weight re-streaming; output-stationary
	// avoids partial-sum bounce. For a tall GEMM (many M tiles) WS must
	// generate LESS SRAM weight traffic; for a deep-K GEMM (split-K in WS)
	// OS must avoid the partial-sum traffic WS pays.
	accel := DefaultAccel() // 32x32
	tall := vit.GEMM{Name: "tall", M: 512, K: 32, N: 32, Repeat: 1}
	ws := SimulateGEMMDataflow(accel, tall, WeightStationary)
	os := SimulateGEMMDataflow(accel, tall, OutputStationary)
	if os.SRAMBytes <= ws.SRAMBytes {
		t.Errorf("tall GEMM: OS re-streams weights per M-tile, expected more SRAM traffic (ws=%d os=%d)",
			ws.SRAMBytes, os.SRAMBytes)
	}
	deep := vit.GEMM{Name: "deep", M: 32, K: 1024, N: 32, Repeat: 1}
	wsDeep := SimulateGEMMDataflow(accel, deep, WeightStationary)
	osDeep := SimulateGEMMDataflow(accel, deep, OutputStationary)
	// WS pays int32 partial-sum bounce for 32 K-tiles; OS keeps them in
	// the accumulators.
	if osDeep.SRAMBytes >= wsDeep.SRAMBytes {
		t.Errorf("deep GEMM: WS pays split-K partial traffic, expected more SRAM traffic (ws=%d os=%d)",
			wsDeep.SRAMBytes, osDeep.SRAMBytes)
	}
}

func TestSimulateAccelDataflowModel(t *testing.T) {
	model := vit.TeacherConfig(int(scene.NumClasses))
	accel := DefaultAccel()
	ws := SimulateAccelDataflow(accel, model, WeightStationary)
	os := SimulateAccelDataflow(accel, model, OutputStationary)
	for _, r := range []ModelReport{ws, os} {
		if r.LatencyUS <= 0 || r.TotalUJ <= 0 || len(r.Layers) != len(model.Workload()) {
			t.Fatalf("degenerate report %+v", r.Device)
		}
	}
	if ws.Device == os.Device {
		t.Error("reports should be labeled by dataflow")
	}
}
