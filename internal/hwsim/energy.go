// Package hwsim models the iTask hardware acceleration circuit and its
// baselines at the level DAC evaluations report: per-layer cycle counts on a
// weight-stationary systolic array, SRAM/DRAM traffic, and an energy model
// built from public per-operation energy estimates (Horowitz, ISSCC 2014,
// 45nm, scaled). The GPU and CPU baselines are roofline-style analytical
// models of embedded-class parts at batch size 1 — the regime the paper's
// edge deployment targets, where kernel-launch overhead and low occupancy
// dominate GPU latency.
//
// Calibration policy (see DESIGN.md §4): the constants below are fixed
// technology numbers, not per-experiment tuning knobs. The headline ratios
// (accelerator vs GPU speedup and energy) emerge from the model.
package hwsim

// EnergyTable holds per-operation energies in picojoules and static powers
// in watts. Defaults follow Horowitz's ISSCC'14 survey numbers for ~45nm,
// with int8 MAC ≈ mult+add and fp32 MAC ≈ fp mult+add, plus conventional
// SRAM/DRAM per-byte access costs.
type EnergyTable struct {
	// MACInt8PJ is the energy of one 8-bit multiply-accumulate.
	MACInt8PJ float64
	// MACFP32PJ is the energy of one fp32 multiply-accumulate.
	MACFP32PJ float64
	// VectorOpPJ is the energy of one fp32 vector-unit op (LN, softmax...).
	VectorOpPJ float64
	// SRAMPerBytePJ is the on-chip SRAM access energy per byte.
	SRAMPerBytePJ float64
	// DRAMPerBytePJ is the off-chip DRAM access energy per byte.
	DRAMPerBytePJ float64
}

// DefaultEnergyTable returns the Horowitz-style constants.
func DefaultEnergyTable() EnergyTable {
	return EnergyTable{
		MACInt8PJ:     0.23, // 0.2 pJ mult + 0.03 pJ add
		MACFP32PJ:     4.6,  // 3.7 pJ mult + 0.9 pJ add
		VectorOpPJ:    1.2,
		SRAMPerBytePJ: 1.25, // 10 pJ / 64-bit word, 8KB array scale
		DRAMPerBytePJ: 20.0, // ~1.3 nJ / 64-bit DDR access
	}
}

// picojoulesToMillijoules converts pJ to mJ.
func picojoulesToMillijoules(pj float64) float64 { return pj * 1e-9 }
