package dataset

import (
	"testing"

	"itask/internal/geom"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

func TestStandardTasksCoverAllDomains(t *testing.T) {
	tasks := StandardTasks()
	if len(tasks) != int(scene.NumDomains) {
		t.Fatalf("%d standard tasks for %d domains", len(tasks), scene.NumDomains)
	}
	seen := map[scene.DomainID]bool{}
	for _, task := range tasks {
		if seen[task.Domain] {
			t.Errorf("domain %v appears twice", task.Domain)
		}
		seen[task.Domain] = true
		if task.Description == "" || len(task.Classes) == 0 {
			t.Errorf("task %q incomplete", task.Name)
		}
		got, err := TaskByName(task.Name)
		if err != nil || got.Name != task.Name {
			t.Errorf("TaskByName(%q) failed: %v", task.Name, err)
		}
	}
	if _, err := TaskByName("nope"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestBuildSizesAndLabels(t *testing.T) {
	rng := tensor.NewRNG(1)
	task, _ := TaskByName("patrol")
	s := Build(task, 10, scene.DefaultGenConfig(), rng)
	if s.Len() != 10 {
		t.Fatalf("set size %d", s.Len())
	}
	valid := map[int]bool{}
	for _, c := range task.Classes {
		valid[int(c)] = true
	}
	for _, ex := range s.Examples {
		if ex.Image == nil {
			t.Fatal("nil image")
		}
		for _, o := range ex.Objects {
			if !valid[o.Class] {
				t.Errorf("object class %d not in task classes", o.Class)
			}
		}
	}
}

func TestBuildMixedInterleaves(t *testing.T) {
	rng := tensor.NewRNG(2)
	tasks := StandardTasks()
	s := BuildMixed(tasks, 3, scene.DefaultGenConfig(), rng)
	if s.Len() != 3*len(tasks) {
		t.Fatalf("mixed size %d", s.Len())
	}
}

func TestBuildFewShot(t *testing.T) {
	rng := tensor.NewRNG(3)
	task, _ := TaskByName("inspect")
	k := 4
	s := BuildFewShot(task, k, scene.DefaultGenConfig(), rng)
	if s.Len() != k*len(task.Classes) {
		t.Fatalf("few-shot size %d, want %d", s.Len(), k*len(task.Classes))
	}
	// Every example has exactly one object.
	counts := map[int]int{}
	for _, ex := range s.Examples {
		if len(ex.Objects) != 1 {
			t.Fatalf("few-shot example has %d objects", len(ex.Objects))
		}
		counts[ex.Objects[0].Class]++
	}
	for _, c := range task.Classes {
		if counts[int(c)] != k {
			t.Errorf("class %v has %d examples, want %d", c, counts[int(c)], k)
		}
	}
}

func TestPackShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	task, _ := TaskByName("triage")
	s := Build(task, 5, scene.DefaultGenConfig(), rng)
	cfg := vit.StudentConfig(int(scene.NumClasses))
	b := Pack(cfg, s.Examples)
	if b.Patches.Shape[0] != 5*cfg.Tokens() || b.Patches.Shape[1] != cfg.PatchDim() {
		t.Fatalf("patches shape %v", b.Patches.Shape)
	}
	if len(b.Targets) != 5 || len(b.SceneLabels) != 5 {
		t.Fatalf("targets/labels %d/%d", len(b.Targets), len(b.SceneLabels))
	}
	for _, l := range b.SceneLabels {
		if l < -1 || l >= int(scene.NumClasses) {
			t.Errorf("scene label %d out of range", l)
		}
	}
}

func TestMajorityClass(t *testing.T) {
	if got := majorityClass(nil); got != -1 {
		t.Errorf("empty majority = %d", got)
	}
	objs := []vit.Object{{Class: 2}, {Class: 2}, {Class: 5}}
	if got := majorityClass(objs); got != 2 {
		t.Errorf("majority = %d, want 2", got)
	}
}

func TestBatchesPartitionAndDeterminism(t *testing.T) {
	rng := tensor.NewRNG(5)
	task, _ := TaskByName("harvest")
	s := Build(task, 10, scene.DefaultGenConfig(), rng)
	batches := s.Batches(4, tensor.NewRNG(9))
	if len(batches) != 3 {
		t.Fatalf("batch count %d", len(batches))
	}
	if len(batches[0]) != 4 || len(batches[2]) != 2 {
		t.Errorf("batch sizes %d/%d/%d", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	// Deterministic with same seed.
	again := s.Batches(4, tensor.NewRNG(9))
	if batches[0][0].Image != again[0][0].Image {
		t.Error("batch shuffle not deterministic")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("batch size 0 should panic")
			}
		}()
		s.Batches(0, rng)
	}()
}

func TestFlipHorizontal(t *testing.T) {
	img := tensor.New(1, 2, 4)
	for i := range img.Data {
		img.Data[i] = float32(i)
	}
	ex := Example{Image: img, Objects: []vit.Object{
		{Box: geom.Box{X: 0.25, Y: 0.5, W: 0.2, H: 0.2}, Class: 3},
	}}
	f := FlipHorizontal(ex)
	// Row 0 was [0 1 2 3] -> [3 2 1 0].
	if f.Image.At(0, 0, 0) != 3 || f.Image.At(0, 0, 3) != 0 {
		t.Errorf("row not mirrored: %v", f.Image.Data[:4])
	}
	if f.Objects[0].Box.X != 0.75 {
		t.Errorf("box center X = %v, want 0.75", f.Objects[0].Box.X)
	}
	if f.Objects[0].Box.Y != 0.5 || f.Objects[0].Class != 3 {
		t.Error("Y/class must be unchanged")
	}
	// Involution: flipping twice restores the original.
	ff := FlipHorizontal(f)
	if !ff.Image.Equal(ex.Image) || ff.Objects[0].Box != ex.Objects[0].Box {
		t.Error("double flip is not the identity")
	}
	// Original untouched.
	if img.At(0, 0, 0) != 0 {
		t.Error("FlipHorizontal mutated its input")
	}
}

func TestAugmentDoubles(t *testing.T) {
	rng := tensor.NewRNG(9)
	task, _ := TaskByName("patrol")
	s := Build(task, 5, scene.DefaultGenConfig(), rng)
	a := Augment(s)
	if a.Len() != 10 {
		t.Fatalf("augmented size %d, want 10", a.Len())
	}
	// First half is the original examples (shared images).
	if a.Examples[0].Image != s.Examples[0].Image {
		t.Error("originals should be preserved by reference")
	}
}

func TestGroundTruthsAndClassInts(t *testing.T) {
	ex := Example{Objects: []vit.Object{{Class: 3}, {Class: 7}}}
	gts := GroundTruths(ex)
	if len(gts) != 2 || gts[0].Class != 3 || gts[1].Class != 7 {
		t.Errorf("GroundTruths = %+v", gts)
	}
	ints := ClassInts([]scene.ClassID{scene.Car, scene.Gear})
	if len(ints) != 2 || ints[0] != int(scene.Car) || ints[1] != int(scene.Gear) {
		t.Errorf("ClassInts = %v", ints)
	}
}
