// Package dataset turns the synthetic scene generator into train/eval sets
// for the iTask experiments: per-task datasets, multi-task mixtures for the
// generalist teacher, and few-shot splits for the adaptation study.
// Class labels always use the global scene vocabulary so every model variant
// shares one head layout.
package dataset

import (
	"fmt"

	"itask/internal/metrics"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Task binds a mission to a domain: the mission text feeds the LLM, the
// domain drives scene generation, and Classes is the evaluation target set.
type Task struct {
	Name        string
	Domain      scene.DomainID
	Description string
	Classes     []scene.ClassID
}

// StandardTasks returns the four benchmark tasks, one per domain, with the
// mission descriptions used across all experiments.
func StandardTasks() []Task {
	return []Task{
		{
			Name:        "patrol",
			Domain:      scene.Driving,
			Description: "Detect cars, trucks, pedestrians, cyclists and cones on the road",
			Classes:     scene.GetDomain(scene.Driving).Classes,
		},
		{
			Name:        "triage",
			Domain:      scene.Medical,
			Description: "Locate lesions, instruments and vials in the room",
			Classes:     scene.GetDomain(scene.Medical).Classes,
		},
		{
			Name:        "inspect",
			Domain:      scene.Industrial,
			Description: "Inspect for gears, bolts and cracks on the line",
			Classes:     scene.GetDomain(scene.Industrial).Classes,
		},
		{
			Name:        "harvest",
			Domain:      scene.Orchard,
			Description: "Find ripe fruit and unripe fruit, count leaf clusters",
			Classes:     scene.GetDomain(scene.Orchard).Classes,
		},
	}
}

// TaskByName returns the standard task with the given name.
func TaskByName(name string) (Task, error) {
	for _, t := range StandardTasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("dataset: unknown task %q", name)
}

// Example is one labeled image.
type Example struct {
	Image   *tensor.Tensor
	Objects []vit.Object
}

// Set is a labeled dataset for one task (or a multi-task mixture).
type Set struct {
	Name     string
	Examples []Example
}

// fromScene converts a generated scene to an example with global class IDs.
func fromScene(sc scene.Scene) Example {
	ex := Example{Image: sc.Image}
	for _, gt := range sc.Objects {
		ex.Objects = append(ex.Objects, vit.Object{Box: gt.Box, Class: int(gt.Class)})
	}
	return ex
}

// Build generates an n-example dataset for the task.
func Build(task Task, n int, cfg scene.GenConfig, rng *tensor.RNG) Set {
	dom := scene.GetDomain(task.Domain)
	s := Set{Name: task.Name}
	for i := 0; i < n; i++ {
		s.Examples = append(s.Examples, fromScene(scene.Generate(dom, cfg, rng)))
	}
	return s
}

// BuildMixed generates a multi-task mixture with nPer examples per task,
// interleaved. This is the teacher's (and quantized generalist's) training
// distribution.
func BuildMixed(tasks []Task, nPer int, cfg scene.GenConfig, rng *tensor.RNG) Set {
	s := Set{Name: "mixed"}
	for i := 0; i < nPer; i++ {
		for _, t := range tasks {
			dom := scene.GetDomain(t.Domain)
			s.Examples = append(s.Examples, fromScene(scene.Generate(dom, cfg, rng)))
		}
	}
	return s
}

// BuildFewShot generates a dataset with exactly k examples per task class,
// each example containing a single object of that class — the few-shot
// adaptation regime of experiment E4.
func BuildFewShot(task Task, k int, cfg scene.GenConfig, rng *tensor.RNG) Set {
	dom := scene.GetDomain(task.Domain)
	fsCfg := cfg
	fsCfg.MinObjects, fsCfg.MaxObjects = 1, 1
	fsCfg.ClutterProb = 0
	s := Set{Name: fmt.Sprintf("%s-fewshot-%d", task.Name, k)}
	for _, cls := range task.Classes {
		fsCfg.OnlyClasses = []scene.ClassID{cls}
		for i := 0; i < k; i++ {
			s.Examples = append(s.Examples, fromScene(scene.Generate(dom, fsCfg, rng)))
		}
	}
	return s
}

// Len returns the example count.
func (s Set) Len() int { return len(s.Examples) }

// Batch is a packed minibatch ready for the model.
type Batch struct {
	// Patches is (B*Tokens, PatchDim).
	Patches *tensor.Tensor
	// Targets holds one detection target per image.
	Targets []vit.DetTarget
	// SceneLabels holds, per image, the majority object class (used by the
	// auxiliary scene-classification head); -1 when the image is empty.
	SceneLabels []int
}

// Pack converts examples into a model-ready batch.
func Pack(cfg vit.Config, examples []Example) Batch {
	imgs := make([]*tensor.Tensor, len(examples))
	targets := make([]vit.DetTarget, len(examples))
	labels := make([]int, len(examples))
	for i, ex := range examples {
		imgs[i] = ex.Image
		targets[i] = vit.EncodeTargets(cfg, ex.Objects)
		labels[i] = majorityClass(ex.Objects)
	}
	return Batch{Patches: vit.Patchify(cfg, imgs), Targets: targets, SceneLabels: labels}
}

func majorityClass(objs []vit.Object) int {
	if len(objs) == 0 {
		return -1
	}
	counts := map[int]int{}
	best, bestN := -1, 0
	for _, o := range objs {
		counts[o.Class]++
		if counts[o.Class] > bestN || (counts[o.Class] == bestN && o.Class < best) {
			best, bestN = o.Class, counts[o.Class]
		}
	}
	return best
}

// Batches splits the set into shuffled minibatches of size batchSize (the
// final short batch is kept). The shuffle is deterministic in rng.
func (s Set) Batches(batchSize int, rng *tensor.RNG) [][]Example {
	if batchSize <= 0 {
		panic("dataset: batch size must be positive")
	}
	perm := rng.Perm(len(s.Examples))
	var out [][]Example
	for lo := 0; lo < len(perm); lo += batchSize {
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		b := make([]Example, 0, hi-lo)
		for _, idx := range perm[lo:hi] {
			b = append(b, s.Examples[idx])
		}
		out = append(out, b)
	}
	return out
}

// GroundTruths converts an example's objects to the metrics representation.
func GroundTruths(ex Example) []metrics.GroundTruth {
	out := make([]metrics.GroundTruth, len(ex.Objects))
	for i, o := range ex.Objects {
		out[i] = metrics.GroundTruth{Box: o.Box, Class: o.Class}
	}
	return out
}

// ClassInts converts task classes to the int set the metrics package wants.
func ClassInts(classes []scene.ClassID) []int {
	out := make([]int, len(classes))
	for i, c := range classes {
		out[i] = int(c)
	}
	return out
}
