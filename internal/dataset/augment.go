package dataset

import (
	"itask/internal/tensor"
	"itask/internal/vit"
)

// FlipHorizontal returns a horizontally mirrored copy of an example: the
// image columns are reversed per channel and box centers reflect about the
// vertical axis. The only geometric augmentation that is label-exact for
// every shape in the renderer (all silhouettes are symmetric about their
// vertical axis except none — triangle/cross/ring/disc/square/diamond all
// are), so flipping never changes an object's class appearance.
func FlipHorizontal(ex Example) Example {
	img := ex.Image
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	flipped := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			src := img.Data[(ch*h+y)*w : (ch*h+y+1)*w]
			dst := flipped.Data[(ch*h+y)*w : (ch*h+y+1)*w]
			for x := 0; x < w; x++ {
				dst[x] = src[w-1-x]
			}
		}
	}
	out := Example{Image: flipped}
	for _, o := range ex.Objects {
		b := o.Box
		b.X = 1 - b.X
		out.Objects = append(out.Objects, vit.Object{Box: b, Class: o.Class})
	}
	return out
}

// Augment returns the set extended with a horizontally flipped copy of
// every example (deterministic, doubles the set).
func Augment(s Set) Set {
	out := Set{Name: s.Name + "+flip", Examples: make([]Example, 0, 2*s.Len())}
	out.Examples = append(out.Examples, s.Examples...)
	for _, ex := range s.Examples {
		out.Examples = append(out.Examples, FlipHorizontal(ex))
	}
	return out
}
