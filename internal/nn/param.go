// Package nn implements the neural-network layers used by the iTask vision
// transformer, with explicit layer-level automatic differentiation: every
// layer caches what it needs during Forward and produces input gradients and
// parameter gradients during Backward. There is no global tape; the call
// graph IS the tape, which keeps memory behaviour predictable on small
// devices and makes each layer's math independently gradient-checkable.
//
// Convention: activations flow as 2-D tensors of shape (rows, features),
// where rows is batch*tokens for transformer trunks. Layers that need the
// sequence structure (attention) are told the token count at construction.
package nn

import (
	"fmt"
	"math"

	"itask/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	// Name identifies the parameter in checkpoints and debug output,
	// e.g. "block3.attn.qkv.weight".
	Name string
	// W is the parameter value.
	W *tensor.Tensor
	// G is the gradient, accumulated by Backward calls and consumed
	// (then zeroed) by the optimizer.
	G *tensor.Tensor
}

// NewParam wraps w as a named parameter with a zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// NumEl returns the number of scalar values in the parameter.
func (p *Param) NumEl() int { return p.W.Size() }

// Layer is a differentiable computation. Forward must be called before
// Backward; Backward consumes the upstream gradient dy (same shape as
// Forward's output), accumulates parameter gradients, and returns the
// gradient w.r.t. Forward's input.
//
// Layers are stateful across a Forward/Backward pair (they cache
// activations) and therefore not safe for concurrent use; inference-only
// paths that need concurrency should clone the model per goroutine.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// ZeroGrads clears gradients of all params in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// CountParams returns the total scalar parameter count.
func CountParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.NumEl()
	}
	return n
}

// GradNorm returns the global L2 norm of all gradients, used for clipping
// and for training diagnostics.
func GradNorm(ps []*Param) float32 {
	var s float64
	for _, p := range ps {
		for _, g := range p.G.Data {
			s += float64(g) * float64(g)
		}
	}
	return float32(math.Sqrt(s))
}

// ClipGradNorm scales all gradients down so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm.
func ClipGradNorm(ps []*Param, maxNorm float32) float32 {
	n := GradNorm(ps)
	if n > maxNorm && n > 0 {
		scale := maxNorm / n
		for _, p := range ps {
			p.G.ScaleInPlace(scale)
		}
	}
	return n
}

// checkRank panics unless t has the wanted rank.
func checkRank(op string, t *tensor.Tensor, rank int) {
	if t.Dims() != rank {
		panic(fmt.Sprintf("nn: %s: want rank-%d input, got shape %v", op, rank, t.Shape))
	}
}
