package nn

import (
	"math"

	"itask/internal/tensor"
)

// LayerNorm normalizes each row of a (rows, Dim) activation to zero mean
// and unit variance, then applies a learned affine transform
// y = gamma * xhat + beta.
type LayerNorm struct {
	Dim   int
	Eps   float32
	Gamma *Param
	Beta  *Param

	// caches for backward
	xhat   *tensor.Tensor
	invStd []float32
}

// NewLayerNorm creates a LayerNorm over the last dimension of width dim,
// initialized to the identity transform (gamma=1, beta=0).
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		Dim:   dim,
		Eps:   1e-5,
		Gamma: NewParam(name+".gamma", tensor.Ones(dim)),
		Beta:  NewParam(name+".beta", tensor.New(dim)),
	}
}

// Forward normalizes each row and applies the affine transform.
func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("LayerNorm.Forward", x, 2)
	rows, d := x.Shape[0], x.Shape[1]
	if d != l.Dim {
		panic("nn: LayerNorm dim mismatch")
	}
	y := tensor.New(rows, d)
	xhat := tensor.New(rows, d)
	invStd := make([]float32, rows)
	for i := 0; i < rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dlt := float64(v) - mean
			variance += dlt * dlt
		}
		variance /= float64(d)
		is := float32(1 / math.Sqrt(variance+float64(l.Eps)))
		invStd[i] = is
		xh := xhat.Data[i*d : (i+1)*d]
		yr := y.Data[i*d : (i+1)*d]
		for j, v := range row {
			h := (v - float32(mean)) * is
			xh[j] = h
			yr[j] = l.Gamma.W.Data[j]*h + l.Beta.W.Data[j]
		}
	}
	if train {
		l.xhat = xhat
		l.invStd = invStd
	}
	return y
}

// Backward implements the standard LayerNorm gradient:
//
//	dx = invStd/D * gamma ⊙ (D*dy' - sum(dy') - xhat*sum(dy'*xhat))
//
// where dy' = dy (per-element, gamma applied), computed row-wise.
func (l *LayerNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.xhat == nil {
		panic("nn: LayerNorm.Backward before Forward(train=true)")
	}
	rows, d := dy.Shape[0], dy.Shape[1]
	dx := tensor.New(rows, d)
	gG := l.Gamma.G.Data
	bG := l.Beta.G.Data
	for i := 0; i < rows; i++ {
		dyr := dy.Data[i*d : (i+1)*d]
		xh := l.xhat.Data[i*d : (i+1)*d]
		dxr := dx.Data[i*d : (i+1)*d]
		var sumDY, sumDYX float64
		for j, g := range dyr {
			// parameter grads
			gG[j] += g * xh[j]
			bG[j] += g
			dyg := float64(g) * float64(l.Gamma.W.Data[j])
			sumDY += dyg
			sumDYX += dyg * float64(xh[j])
		}
		is := float64(l.invStd[i])
		df := float64(d)
		for j, g := range dyr {
			dyg := float64(g) * float64(l.Gamma.W.Data[j])
			dxr[j] = float32(is / df * (df*dyg - sumDY - float64(xh[j])*sumDYX))
		}
	}
	return dx
}

// Params returns gamma and beta.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }
