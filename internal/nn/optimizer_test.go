package nn

import (
	"math"
	"testing"

	"itask/internal/tensor"
)

// quadratic is a toy objective L(w) = 0.5 * Σ (w_i - target_i)² whose
// gradient is w - target; any sane optimizer must converge to target.
func quadraticGrad(p *Param, target *tensor.Tensor) {
	for i := range p.W.Data {
		p.G.Data[i] = p.W.Data[i] - target.Data[i]
	}
}

func testConvergence(t *testing.T, name string, opt Optimizer, steps int, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(7)
	target := tensor.Randn(rng, 1, 10)
	p := NewParam("w", tensor.Randn(rng, 1, 10))
	for i := 0; i < steps; i++ {
		quadraticGrad(p, target)
		opt.Step([]*Param{p})
	}
	dist := float64(tensor.Sub(p.W, target).Norm2())
	if dist > tol {
		t.Errorf("%s: after %d steps dist to optimum = %v (tol %v)", name, steps, dist, tol)
	}
	// Gradients must be zeroed by Step.
	if p.G.AbsMax() != 0 {
		t.Errorf("%s: Step did not zero gradients", name)
	}
}

func TestSGDConverges(t *testing.T) {
	testConvergence(t, "SGD", NewSGD(0.1, 0, 0), 200, 1e-3)
}

func TestSGDMomentumConverges(t *testing.T) {
	testConvergence(t, "SGD+momentum", NewSGD(0.05, 0.9, 0), 200, 1e-3)
}

func TestAdamConverges(t *testing.T) {
	testConvergence(t, "Adam", NewAdam(0.1), 300, 1e-2)
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", tensor.Full(1, 4))
	opt := NewAdamW(0.01, 0.5)
	// Zero gradient: only decay acts.
	for i := 0; i < 10; i++ {
		opt.Step([]*Param{p})
	}
	for _, v := range p.W.Data {
		if v >= 1 {
			t.Errorf("decay did not shrink weight: %v", v)
		}
	}
}

func TestSGDDecay(t *testing.T) {
	p := NewParam("w", tensor.Full(2, 3))
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p})
	want := float32(2 * (1 - 0.1*0.5))
	for _, v := range p.W.Data {
		if math.Abs(float64(v-want)) > 1e-6 {
			t.Errorf("decayed weight = %v, want %v", v, want)
		}
	}
}

func TestSetLR(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1, 0, 0), NewAdam(0.1)} {
		opt.SetLR(0.5)
		if opt.LR() != 0.5 {
			t.Errorf("SetLR not applied: %v", opt.LR())
		}
	}
}

func TestCosineSchedule(t *testing.T) {
	base, floor := float32(1.0), float32(0.1)
	warmup, total := 10, 100
	// Warmup is increasing.
	prev := float32(0)
	for i := 0; i < warmup; i++ {
		lr := CosineSchedule(base, floor, warmup, total, i)
		if lr <= prev {
			t.Fatalf("warmup not increasing at %d: %v <= %v", i, lr, prev)
		}
		prev = lr
	}
	// Peak near base right after warmup.
	if lr := CosineSchedule(base, floor, warmup, total, warmup); math.Abs(float64(lr-base)) > 1e-5 {
		t.Errorf("post-warmup lr = %v, want %v", lr, base)
	}
	// Monotone non-increasing during decay, ending at floor.
	prev = base + 1
	for i := warmup; i <= total; i++ {
		lr := CosineSchedule(base, floor, warmup, total, i)
		if lr > prev+1e-6 {
			t.Fatalf("decay not monotone at %d", i)
		}
		if lr < floor-1e-6 {
			t.Fatalf("lr %v below floor at %d", lr, i)
		}
		prev = lr
	}
	if lr := CosineSchedule(base, floor, warmup, total, total+50); lr != floor {
		t.Errorf("past-total lr = %v, want floor", lr)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	p.G.Data[0] = 3
	p.G.Data[1] = 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(float64(pre-5)) > 1e-6 {
		t.Errorf("pre-clip norm = %v, want 5", pre)
	}
	if n := GradNorm([]*Param{p}); math.Abs(float64(n-1)) > 1e-5 {
		t.Errorf("post-clip norm = %v, want 1", n)
	}
	// Below threshold: untouched.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.G.Data[0] != 0.3 {
		t.Error("clip should not touch small gradients")
	}
}

func TestCountParams(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 3, 4, rng)
	if got := CountParams(l.Params()); got != 3*4+4 {
		t.Errorf("CountParams = %d, want 16", got)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(9)
	d := NewDropout(0.5, rng)
	x := tensor.Ones(100, 10)
	// Eval mode: identity.
	y := d.Forward(x, false)
	if !y.Equal(x) {
		t.Error("eval-mode dropout must be identity")
	}
	// Train mode: roughly half zeroed, survivors scaled by 2.
	y = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("dropout zero fraction = %v, want ~0.5", frac)
	}
	// Backward uses the same mask.
	dy := tensor.Ones(100, 10)
	dx := d.Backward(dy)
	for i, v := range y.Data {
		if (v == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
	// Expectation preserved: mean of outputs ~ mean of inputs.
	if m := float64(y.Mean()); m < 0.85 || m > 1.15 {
		t.Errorf("inverted dropout mean = %v, want ~1", m)
	}
}

func TestDropoutInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout(1.0, tensor.NewRNG(1))
}
