package nn

import (
	"fmt"

	"itask/internal/tensor"
)

// Conv2D is a same-geometry 2-D convolution over images packed as
// (batch, C*H*W) rows. The spatial geometry is fixed at construction —
// appropriate for the fixed-resolution detectors in this codebase — which
// lets the layer keep the plain (rows, features) Layer contract.
//
// The implementation is im2col + GEMM: forward builds a column matrix of
// receptive fields and multiplies by the (outC, inC*K*K) weight; backward
// is the transposed GEMM plus col2im scatter. Padding is (K-1)/2 ("same")
// and stride is configurable.
type Conv2D struct {
	InC, OutC int
	K         int // kernel edge (odd)
	Stride    int
	H, W      int // input spatial dims

	Weight *Param // (OutC, InC*K*K)
	Bias   *Param // (OutC)

	// cached columns for backward: one (outH*outW, InC*K*K) matrix per
	// batch row.
	cols  []*tensor.Tensor
	batch int
}

// NewConv2D creates a convolution with He-normal weights.
func NewConv2D(name string, inC, outC, k, stride, h, w int, rng *tensor.RNG) *Conv2D {
	if k%2 == 0 || k <= 0 {
		panic(fmt.Sprintf("nn: Conv2D kernel %d must be odd", k))
	}
	if stride <= 0 || h <= 0 || w <= 0 || inC <= 0 || outC <= 0 {
		panic("nn: Conv2D non-positive geometry")
	}
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, H: h, W: w,
		Weight: NewParam(name+".weight", tensor.KaimingNormal(rng, outC, inC*k*k)),
		Bias:   NewParam(name+".bias", tensor.New(outC)),
	}
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.H + c.Stride - 1) / c.Stride }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.W + c.Stride - 1) / c.Stride }

// OutFeatures returns the flattened output width OutC*OutH*OutW.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.OutH() * c.OutW() }

// im2col expands one image (flattened C*H*W) into the (outH*outW, InC*K*K)
// receptive-field matrix.
func (c *Conv2D) im2col(img []float32) *tensor.Tensor {
	oh, ow := c.OutH(), c.OutW()
	pad := (c.K - 1) / 2
	cols := tensor.New(oh*ow, c.InC*c.K*c.K)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols.Data[(oy*ow+ox)*c.InC*c.K*c.K:]
			idx := 0
			for ch := 0; ch < c.InC; ch++ {
				base := ch * c.H * c.W
				for ky := 0; ky < c.K; ky++ {
					sy := oy*c.Stride + ky - pad
					for kx := 0; kx < c.K; kx++ {
						sx := ox*c.Stride + kx - pad
						if sy >= 0 && sy < c.H && sx >= 0 && sx < c.W {
							row[idx] = img[base+sy*c.W+sx]
						}
						idx++
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters column gradients back into an image gradient.
func (c *Conv2D) col2im(cols *tensor.Tensor, img []float32) {
	oh, ow := c.OutH(), c.OutW()
	pad := (c.K - 1) / 2
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols.Data[(oy*ow+ox)*c.InC*c.K*c.K:]
			idx := 0
			for ch := 0; ch < c.InC; ch++ {
				base := ch * c.H * c.W
				for ky := 0; ky < c.K; ky++ {
					sy := oy*c.Stride + ky - pad
					for kx := 0; kx < c.K; kx++ {
						sx := ox*c.Stride + kx - pad
						if sy >= 0 && sy < c.H && sx >= 0 && sx < c.W {
							img[base+sy*c.W+sx] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Forward convolves a batch (rows, InC*H*W) -> (rows, OutC*OutH*OutW).
// Output layout is channel-major per image, matching the input convention.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("Conv2D.Forward", x, 2)
	if x.Shape[1] != c.InC*c.H*c.W {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Shape[1], c.InC*c.H*c.W))
	}
	b := x.Shape[0]
	oh, ow := c.OutH(), c.OutW()
	out := tensor.New(b, c.OutFeatures())
	if train {
		c.cols = make([]*tensor.Tensor, b)
		c.batch = b
	}
	for bi := 0; bi < b; bi++ {
		cols := c.im2col(x.Data[bi*x.Shape[1] : (bi+1)*x.Shape[1]])
		if train {
			c.cols[bi] = cols
		}
		// (oh*ow, inC*K*K) @ (OutC, inC*K*K)ᵀ = (oh*ow, OutC)
		y := tensor.MatMulT(cols, c.Weight.W)
		y.AddRowVector(c.Bias.W)
		// Transpose to channel-major (OutC, oh*ow) layout in the output row.
		orow := out.Data[bi*c.OutFeatures():]
		for p := 0; p < oh*ow; p++ {
			for oc := 0; oc < c.OutC; oc++ {
				orow[oc*oh*ow+p] = y.Data[p*c.OutC+oc]
			}
		}
	}
	return out
}

// Backward propagates (rows, OutC*OutH*OutW) gradients.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	b := c.batch
	oh, ow := c.OutH(), c.OutW()
	dx := tensor.New(b, c.InC*c.H*c.W)
	for bi := 0; bi < b; bi++ {
		// Undo the channel-major transpose: dyMat (oh*ow, OutC).
		dyMat := tensor.New(oh*ow, c.OutC)
		drow := dy.Data[bi*c.OutFeatures():]
		for p := 0; p < oh*ow; p++ {
			for oc := 0; oc < c.OutC; oc++ {
				dyMat.Data[p*c.OutC+oc] = drow[oc*oh*ow+p]
			}
		}
		// dW += dyMatᵀ @ cols ; db += column sums of dyMat.
		c.Weight.G.AddInPlace(tensor.TMatMul(dyMat, c.cols[bi]))
		c.Bias.G.AddInPlace(dyMat.SumRows())
		// dCols = dyMat @ W ; scatter back to image.
		dCols := tensor.MatMul(dyMat, c.Weight.W)
		c.col2im(dCols, dx.Data[bi*c.InC*c.H*c.W:(bi+1)*c.InC*c.H*c.W])
	}
	return dx
}

// Params returns weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MaxPool2D is a 2×2/stride-2 max pooling over images packed as
// (batch, C*H*W) rows with fixed geometry.
type MaxPool2D struct {
	C, H, W int

	argmax []int
	batch  int
}

// NewMaxPool2D creates a pooling layer. H and W must be even.
func NewMaxPool2D(c, h, w int) *MaxPool2D {
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D dims %dx%d must be even", h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w}
}

// OutFeatures returns C*(H/2)*(W/2).
func (p *MaxPool2D) OutFeatures() int { return p.C * (p.H / 2) * (p.W / 2) }

// Forward pools each 2×2 window to its max.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("MaxPool2D.Forward", x, 2)
	if x.Shape[1] != p.C*p.H*p.W {
		panic(fmt.Sprintf("nn: MaxPool2D input width %d, want %d", x.Shape[1], p.C*p.H*p.W))
	}
	b := x.Shape[0]
	oh, ow := p.H/2, p.W/2
	out := tensor.New(b, p.OutFeatures())
	if train {
		p.argmax = make([]int, b*p.OutFeatures())
		p.batch = b
	}
	for bi := 0; bi < b; bi++ {
		in := x.Data[bi*x.Shape[1]:]
		orow := out.Data[bi*p.OutFeatures():]
		for ch := 0; ch < p.C; ch++ {
			base := ch * p.H * p.W
			obase := ch * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (2*oy)*p.W + 2*ox
					best := in[bestIdx]
					for _, off := range [3]int{1, p.W, p.W + 1} {
						if v := in[base+(2*oy)*p.W+2*ox+off]; v > best {
							best = v
							bestIdx = base + (2*oy)*p.W + 2*ox + off
						}
					}
					orow[obase+oy*ow+ox] = best
					if train {
						p.argmax[bi*p.OutFeatures()+obase+oy*ow+ox] = bi*x.Shape[1] + bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the max positions.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward(train=true)")
	}
	dx := tensor.New(p.batch, p.C*p.H*p.W)
	for i, v := range dy.Data {
		dx.Data[p.argmax[i]] += v
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }
