package nn

import (
	"fmt"
	"math"

	"itask/internal/tensor"
)

// MultiHeadAttention implements standard scaled dot-product self-attention
// with H heads over sequences of a fixed token count T. Inputs are packed as
// (B*T, Dim); the layer infers the batch size from the row count.
//
// The QKV projection and the output projection are fused Linear layers so
// the quantizer and hardware mapper see exactly four GEMMs per block
// (qkv, scores, context, proj), matching how the accelerator schedules them.
type MultiHeadAttention struct {
	Dim, Heads, Tokens int

	QKV  *Linear
	Proj *Linear

	// caches for backward
	q, k, v *tensor.Tensor // (B*T, Dim) each
	probs   []*tensor.Tensor
	batch   int
}

// NewMultiHeadAttention creates an MHSA layer for embeddings of width dim,
// heads attention heads, and sequences of tokens tokens.
func NewMultiHeadAttention(name string, dim, heads, tokens int, rng *tensor.RNG) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim:    dim,
		Heads:  heads,
		Tokens: tokens,
		QKV:    NewLinear(name+".qkv", dim, 3*dim, rng),
		Proj:   NewLinear(name+".proj", dim, dim, rng),
	}
}

// headSlice copies rows [row0,row0+T) and columns [c0,c0+dh) of src (width w)
// into a fresh (T,dh) matrix.
func headSlice(src *tensor.Tensor, row0, t, c0, dh, w int) *tensor.Tensor {
	out := tensor.New(t, dh)
	for i := 0; i < t; i++ {
		copy(out.Data[i*dh:(i+1)*dh], src.Data[(row0+i)*w+c0:(row0+i)*w+c0+dh])
	}
	return out
}

// headSliceAdd accumulates a (T,dh) matrix back into rows/columns of dst.
func headSliceAdd(dst *tensor.Tensor, blk *tensor.Tensor, row0, t, c0, dh, w int) {
	for i := 0; i < t; i++ {
		drow := dst.Data[(row0+i)*w+c0 : (row0+i)*w+c0+dh]
		srow := blk.Data[i*dh : (i+1)*dh]
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// Forward computes multi-head self-attention for x of shape (B*T, Dim).
//
// In training mode the per-head probability matrices (and q/k/v) are cached
// on the layer for Backward and attention-rollout saliency, so they are
// allocated normally. In inference mode nothing survives the call: every
// intermediate comes from the tensor scratch arena, and the (batch × heads)
// loop is tiled across the shared worker pool, one head per tile.
func (a *MultiHeadAttention) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("MHSA.Forward", x, 2)
	rows := x.Shape[0]
	if rows%a.Tokens != 0 {
		panic(fmt.Sprintf("nn: MHSA rows %d not a multiple of tokens %d", rows, a.Tokens))
	}
	if train {
		return a.forwardTrain(x)
	}
	b := rows / a.Tokens
	d := a.Dim
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	qkv := tensor.GetScratchNoZero(rows, 3*d)
	a.QKV.ForwardInto(qkv, x)
	out := tensor.GetScratchNoZero(rows, d)

	// Each (batch, head) pair reads a disjoint column band of qkv and writes
	// a disjoint (T,dh) block of out, so tiles are race-free. Head slices are
	// copied out of the packed qkv directly (no intermediate q/k/v split).
	tensor.ParallelFor(b*a.Heads, 1, func(lo, hi int) {
		qh := tensor.GetScratchNoZero(a.Tokens, dh)
		kh := tensor.GetScratchNoZero(a.Tokens, dh)
		vh := tensor.GetScratchNoZero(a.Tokens, dh)
		scores := tensor.GetScratchNoZero(a.Tokens, a.Tokens)
		for u := lo; u < hi; u++ {
			bi, h := u/a.Heads, u%a.Heads
			row0 := bi * a.Tokens
			c0 := h * dh
			for i := 0; i < a.Tokens; i++ {
				src := qkv.Data[(row0+i)*3*d : (row0+i+1)*3*d]
				copy(qh.Data[i*dh:(i+1)*dh], src[c0:c0+dh])
				copy(kh.Data[i*dh:(i+1)*dh], src[d+c0:d+c0+dh])
				copy(vh.Data[i*dh:(i+1)*dh], src[2*d+c0:2*d+c0+dh])
			}
			tensor.MatMulTInto(scores, qh, kh)
			scores.ScaleInPlace(scale)
			tensor.SoftmaxRowsInto(scores, scores)
			// Context: reuse qh as the (T,dh) destination — its values are
			// dead once scores is computed.
			tensor.MatMulInto(qh, scores, vh)
			for i := 0; i < a.Tokens; i++ {
				copy(out.Data[(row0+i)*d+c0:(row0+i)*d+c0+dh], qh.Data[i*dh:(i+1)*dh])
			}
		}
		tensor.PutScratch(qh, kh, vh, scores)
	})

	y := a.Proj.Forward(out, false)
	tensor.PutScratch(qkv, out)
	return y
}

// forwardTrain is the training-mode forward: identical math, but q/k/v and
// the per-head softmax probabilities are heap-allocated and retained for
// Backward / LastProbs.
func (a *MultiHeadAttention) forwardTrain(x *tensor.Tensor) *tensor.Tensor {
	rows := x.Shape[0]
	b := rows / a.Tokens
	qkv := a.QKV.Forward(x, true) // (rows, 3*Dim)
	d := a.Dim
	q := tensor.New(rows, d)
	k := tensor.New(rows, d)
	v := tensor.New(rows, d)
	for i := 0; i < rows; i++ {
		src := qkv.Data[i*3*d : (i+1)*3*d]
		copy(q.Data[i*d:(i+1)*d], src[0:d])
		copy(k.Data[i*d:(i+1)*d], src[d:2*d])
		copy(v.Data[i*d:(i+1)*d], src[2*d:3*d])
	}
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	out := tensor.New(rows, d)
	probs := make([]*tensor.Tensor, b*a.Heads)
	for bi := 0; bi < b; bi++ {
		row0 := bi * a.Tokens
		for h := 0; h < a.Heads; h++ {
			c0 := h * dh
			qh := headSlice(q, row0, a.Tokens, c0, dh, d)
			kh := headSlice(k, row0, a.Tokens, c0, dh, d)
			vh := headSlice(v, row0, a.Tokens, c0, dh, d)
			scores := tensor.MatMulT(qh, kh)
			scores.ScaleInPlace(scale)
			p := tensor.SoftmaxRows(scores)
			probs[bi*a.Heads+h] = p
			oh := tensor.MatMul(p, vh)
			headSliceAdd(out, oh, row0, a.Tokens, c0, dh, d)
		}
	}
	a.q, a.k, a.v = q, k, v
	a.probs = probs
	a.batch = b
	return a.Proj.Forward(out, true)
}

// Backward propagates gradients through the projection, the attention
// mechanism (including the softmax Jacobian), and the QKV projection.
func (a *MultiHeadAttention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if a.probs == nil {
		panic("nn: MHSA.Backward before Forward(train=true)")
	}
	dOut := a.Proj.Backward(dy) // (rows, Dim)
	rows := dOut.Shape[0]
	d := a.Dim
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	dq := tensor.New(rows, d)
	dk := tensor.New(rows, d)
	dv := tensor.New(rows, d)
	for bi := 0; bi < a.batch; bi++ {
		row0 := bi * a.Tokens
		for h := 0; h < a.Heads; h++ {
			c0 := h * dh
			p := a.probs[bi*a.Heads+h] // (T,T)
			qh := headSlice(a.q, row0, a.Tokens, c0, dh, d)
			kh := headSlice(a.k, row0, a.Tokens, c0, dh, d)
			vh := headSlice(a.v, row0, a.Tokens, c0, dh, d)
			dOh := headSlice(dOut, row0, a.Tokens, c0, dh, d)

			// dP = dOh @ Vhᵀ ; dVh = Pᵀ @ dOh
			dP := tensor.MatMulT(dOh, vh)
			dVh := tensor.TMatMul(p, dOh)

			// Softmax backward row-wise: dS = P ⊙ (dP - rowsum(dP ⊙ P)).
			t := a.Tokens
			dS := tensor.New(t, t)
			for i := 0; i < t; i++ {
				prow := p.Data[i*t : (i+1)*t]
				dprow := dP.Data[i*t : (i+1)*t]
				var dot float64
				for j, pv := range prow {
					dot += float64(pv) * float64(dprow[j])
				}
				dsrow := dS.Data[i*t : (i+1)*t]
				for j, pv := range prow {
					dsrow[j] = pv * (dprow[j] - float32(dot))
				}
			}
			dS.ScaleInPlace(scale)

			dQh := tensor.MatMul(dS, kh)  // (T,T)@(T,dh)
			dKh := tensor.TMatMul(dS, qh) // (T,T)ᵀ@(T,dh)

			headSliceAdd(dq, dQh, row0, a.Tokens, c0, dh, d)
			headSliceAdd(dk, dKh, row0, a.Tokens, c0, dh, d)
			headSliceAdd(dv, dVh, row0, a.Tokens, c0, dh, d)
		}
	}
	// Reassemble into the packed QKV gradient.
	dqkv := tensor.New(rows, 3*d)
	for i := 0; i < rows; i++ {
		dst := dqkv.Data[i*3*d : (i+1)*3*d]
		copy(dst[0:d], dq.Data[i*d:(i+1)*d])
		copy(dst[d:2*d], dk.Data[i*d:(i+1)*d])
		copy(dst[2*d:3*d], dv.Data[i*d:(i+1)*d])
	}
	return a.QKV.Backward(dqkv)
}

// Params returns the QKV and projection parameters.
func (a *MultiHeadAttention) Params() []*Param {
	return append(a.QKV.Params(), a.Proj.Params()...)
}

// LastProbs returns the attention probability matrices cached by the most
// recent Forward(train=true) call: one (T,T) tensor per batch item per head,
// indexed [batch*Heads + head]. Used by attention-rollout saliency; nil if
// no training-mode forward has run.
func (a *MultiHeadAttention) LastProbs() []*tensor.Tensor { return a.probs }
