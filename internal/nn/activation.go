package nn

import (
	"math"

	"itask/internal/tensor"
)

// GELU is the Gaussian Error Linear Unit with the tanh approximation used
// throughout transformer literature:
//
//	gelu(x) = 0.5x(1 + tanh(√(2/π)(x + 0.044715x³)))
//
// The backward pass differentiates the approximation itself, so the analytic
// and numeric gradients of this layer agree to machine precision.
type GELU struct {
	x *tensor.Tensor
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

const (
	geluC  = 0.7978845608028654 // sqrt(2/pi)
	geluC3 = 0.044715
)

func geluScalar(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+geluC3*x*x*x)))
}

func geluGradScalar(x float64) float64 {
	u := geluC * (x + geluC3*x*x*x)
	t := math.Tanh(u)
	du := geluC * (1 + 3*geluC3*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*du
}

// Forward applies GELU elementwise.
func (g *GELU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		g.x = x
	}
	return tensor.Apply(x, func(v float32) float32 { return float32(geluScalar(float64(v))) })
}

// Backward multiplies dy by gelu'(x).
func (g *GELU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if g.x == nil {
		panic("nn: GELU.Backward before Forward(train=true)")
	}
	dx := tensor.New(dy.Shape...)
	for i, v := range g.x.Data {
		dx.Data[i] = dy.Data[i] * float32(geluGradScalar(float64(v)))
	}
	return dx
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// ReLU is the rectified linear unit, used by the lightweight CNN baseline.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0,x) elementwise.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return y
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward(train=true)")
	}
	dx := tensor.New(dy.Shape...)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid computes the logistic function elementwise; the detection head
// uses it for objectness and box offsets.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Tanh is a convenience wrapper for float32.
func Tanh(x float32) float32 { return float32(math.Tanh(float64(x))) }
