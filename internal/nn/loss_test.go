package nn

import (
	"math"
	"testing"

	"itask/internal/tensor"
)

// numericLossGrad computes the central-difference gradient of loss fn with
// respect to pred.
func numericLossGrad(fn func(*tensor.Tensor) float32, pred *tensor.Tensor) *tensor.Tensor {
	const eps = 1e-3
	g := tensor.New(pred.Shape...)
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + eps
		lp := float64(fn(pred))
		pred.Data[i] = orig - eps
		lm := float64(fn(pred))
		pred.Data[i] = orig
		g.Data[i] = float32((lp - lm) / (2 * eps))
	}
	return g
}

func assertGradMatches(t *testing.T, name string, analytic, numeric *tensor.Tensor, tol float64) {
	t.Helper()
	for i := range analytic.Data {
		if relErr(float64(analytic.Data[i]), float64(numeric.Data[i])) > tol {
			t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, analytic.Data[i], numeric.Data[i])
		}
	}
}

func TestCrossEntropyValue(t *testing.T) {
	// Uniform logits over C classes -> loss = log(C).
	logits := tensor.New(2, 4)
	loss, _ := CrossEntropy(logits, []int{0, 3})
	want := float32(math.Log(4))
	if math.Abs(float64(loss-want)) > 1e-5 {
		t.Errorf("uniform CE = %v, want %v", loss, want)
	}
	// Near-certain correct prediction -> near-zero loss.
	confident := tensor.FromSlice([]float32{20, 0, 0, 0}, 1, 4)
	loss, _ = CrossEntropy(confident, []int{0})
	if loss > 1e-3 {
		t.Errorf("confident CE = %v, want ~0", loss)
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := tensor.Randn(rng, 1, 3, 5)
	lossAll, _ := CrossEntropy(logits, []int{1, 2, 3})
	lossIgn, grad := CrossEntropy(logits, []int{1, -1, 3})
	if lossAll == lossIgn {
		t.Error("ignored row should change the mean loss")
	}
	// Ignored row's gradient must be exactly zero.
	for j := 0; j < 5; j++ {
		if grad.At(1, j) != 0 {
			t.Fatalf("ignored row has nonzero grad %v", grad.At(1, j))
		}
	}
	// All rows ignored -> zero loss, zero grad.
	loss0, grad0 := CrossEntropy(logits, []int{-1, -1, -1})
	if loss0 != 0 || grad0.AbsMax() != 0 {
		t.Error("all-ignored CE should be exactly zero")
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(2)
	logits := tensor.Randn(rng, 1, 4, 6)
	labels := []int{0, 5, 2, -1}
	_, grad := CrossEntropy(logits, labels)
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := CrossEntropy(p, labels)
		return l
	}, logits)
	assertGradMatches(t, "CrossEntropy", grad, num, 2e-2)
}

func TestSoftCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.Randn(rng, 1, 3, 5)
	target := tensor.SoftmaxRows(tensor.Randn(rng, 1, 3, 5))
	loss, grad := SoftCrossEntropy(logits, target)
	if loss <= 0 {
		t.Errorf("soft CE should be positive, got %v", loss)
	}
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := SoftCrossEntropy(p, target)
		return l
	}, logits)
	assertGradMatches(t, "SoftCrossEntropy", grad, num, 2e-2)
}

func TestKLDistillProperties(t *testing.T) {
	rng := tensor.NewRNG(4)
	teacher := tensor.Randn(rng, 2, 4, 6)
	// KL(p ‖ p) == 0 with zero gradient.
	loss, grad := KLDistill(teacher.Clone(), teacher, 2)
	if math.Abs(float64(loss)) > 1e-5 {
		t.Errorf("KL(self) = %v, want 0", loss)
	}
	if grad.AbsMax() > 1e-6 {
		t.Errorf("KL(self) grad max = %v, want 0", grad.AbsMax())
	}
	// KL is non-negative for any student.
	student := tensor.Randn(rng, 2, 4, 6)
	loss, _ = KLDistill(student, teacher, 2)
	if loss < 0 {
		t.Errorf("KL = %v, want >= 0", loss)
	}
}

func TestKLDistillGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	student := tensor.Randn(rng, 1, 3, 4)
	teacher := tensor.Randn(rng, 1, 3, 4)
	for _, temp := range []float32{1, 2, 4} {
		_, grad := KLDistill(student, teacher, temp)
		num := numericLossGrad(func(p *tensor.Tensor) float32 {
			l, _ := KLDistill(p, teacher, temp)
			return l
		}, student)
		assertGradMatches(t, "KLDistill", grad, num, 3e-2)
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	target := tensor.FromSlice([]float32{1, 2, 3, 6}, 2, 2)
	loss, grad := MSE(pred, target)
	if loss != 1 { // (0+0+0+4)/4
		t.Errorf("MSE = %v, want 1", loss)
	}
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := MSE(p, target)
		return l
	}, pred)
	assertGradMatches(t, "MSE", grad, num, 1e-2)
}

func TestSmoothL1(t *testing.T) {
	pred := tensor.FromSlice([]float32{0.05, 3}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := SmoothL1(pred, target, 1)
	// element 0: quadratic region 0.5*0.0025; element 1: linear 3-0.5=2.5
	want := float32((0.5*0.05*0.05 + 2.5) / 2)
	if math.Abs(float64(loss-want)) > 1e-6 {
		t.Errorf("SmoothL1 = %v, want %v", loss, want)
	}
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := SmoothL1(p, target, 1)
		return l
	}, pred)
	assertGradMatches(t, "SmoothL1", grad, num, 2e-2)
}

func TestBCEWithLogits(t *testing.T) {
	rng := tensor.NewRNG(6)
	logits := tensor.Randn(rng, 1.2, 3, 3)
	target := tensor.New(3, 3)
	for i := range target.Data {
		if rng.Bool(0.5) {
			target.Data[i] = 1
		}
	}
	loss, grad := BCEWithLogits(logits, target, nil)
	if loss <= 0 {
		t.Errorf("BCE = %v, want > 0", loss)
	}
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := BCEWithLogits(p, target, nil)
		return l
	}, logits)
	assertGradMatches(t, "BCE", grad, num, 2e-2)
}

func TestBCEWithLogitsWeighted(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, -2}, 2)
	target := tensor.FromSlice([]float32{1, 0}, 2)
	weight := tensor.FromSlice([]float32{0, 1}, 2)
	_, grad := BCEWithLogits(logits, target, weight)
	if grad.Data[0] != 0 {
		t.Error("zero-weight element should have zero grad")
	}
	// Numeric check on the weighted version too.
	num := numericLossGrad(func(p *tensor.Tensor) float32 {
		l, _ := BCEWithLogits(p, target, weight)
		return l
	}, logits)
	assertGradMatches(t, "BCEWeighted", grad, num, 2e-2)
	// All-zero weights: defined as zero loss/grad.
	l0, g0 := BCEWithLogits(logits, target, tensor.New(2))
	if l0 != 0 || g0.AbsMax() != 0 {
		t.Error("all-zero-weight BCE should be zero")
	}
}

func TestBCEStabilityExtremeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float32{500, -500}, 2)
	target := tensor.FromSlice([]float32{1, 0}, 2)
	loss, grad := BCEWithLogits(logits, target, nil)
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("BCE overflowed: %v", loss)
	}
	if loss > 1e-3 {
		t.Errorf("correct extreme predictions should give ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}
