package nn

import (
	"math"

	"itask/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes gradients.
	Step(params []*Param)
	// SetLR overrides the current learning rate (used by schedules).
	SetLR(lr float32)
	// LR reports the current learning rate.
	LR() float32
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// weight decay.
type SGD struct {
	lr       float32
	Momentum float32
	Decay    float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{lr: lr, Momentum: momentum, Decay: decay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies one SGD update.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Decay != 0 {
			p.W.ScaleInPlace(1 - o.lr*o.Decay)
		}
		if o.Momentum != 0 {
			v := o.velocity[p]
			if v == nil {
				v = tensor.New(p.W.Shape...)
				o.velocity[p] = v
			}
			for i := range v.Data {
				v.Data[i] = o.Momentum*v.Data[i] + p.G.Data[i]
				p.W.Data[i] -= o.lr * v.Data[i]
			}
		} else {
			p.W.Axpy(-o.lr, p.G)
		}
		p.ZeroGrad()
	}
}

// SetLR sets the learning rate.
func (o *SGD) SetLR(lr float32) { o.lr = lr }

// LR returns the learning rate.
func (o *SGD) LR() float32 { return o.lr }

// Adam is the Adam optimizer (Kingma & Ba) with decoupled weight decay
// (AdamW-style): decay is applied to weights directly, not mixed into the
// moment estimates.
type Adam struct {
	lr             float32
	Beta1, Beta2   float32
	Eps            float32
	Decay          float32
	step           int
	moment, second map[*Param]*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float32) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		moment: map[*Param]*tensor.Tensor{}, second: map[*Param]*tensor.Tensor{},
	}
}

// NewAdamW creates Adam with decoupled weight decay.
func NewAdamW(lr, decay float32) *Adam {
	a := NewAdam(lr)
	a.Decay = decay
	return a
}

// Step applies one Adam update.
func (o *Adam) Step(params []*Param) {
	o.step++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for _, p := range params {
		m := o.moment[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			o.moment[p] = m
		}
		v := o.second[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			o.second[p] = v
		}
		if o.Decay != 0 {
			p.W.ScaleInPlace(1 - o.lr*o.Decay)
		}
		for i, g := range p.G.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.W.Data[i] -= o.lr * mhat / (float32(math.Sqrt(float64(vhat))) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// SetLR sets the learning rate.
func (o *Adam) SetLR(lr float32) { o.lr = lr }

// LR returns the learning rate.
func (o *Adam) LR() float32 { return o.lr }

// CosineSchedule returns the learning rate for step t of total steps,
// warming up linearly for warmup steps and then decaying on a half cosine
// from base to floor.
func CosineSchedule(base, floor float32, warmup, total, t int) float32 {
	if total <= 0 {
		return base
	}
	if t < warmup {
		return base * float32(t+1) / float32(warmup+1)
	}
	if t >= total {
		return floor
	}
	progress := float64(t-warmup) / float64(total-warmup)
	c := 0.5 * (1 + math.Cos(math.Pi*progress))
	return floor + (base-floor)*float32(c)
}
