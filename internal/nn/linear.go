package nn

import (
	"fmt"

	"itask/internal/tensor"
)

// Linear is a fully-connected layer y = x Wᵀ + b with weight stored
// (out,in) — the layout the quantization kernels and the hardware mapper
// also use, so weights move between the float and int8 worlds without
// transposition.
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param // nil when the layer is bias-free

	// cached input for the backward pass
	x *tensor.Tensor
}

// NewLinear creates a Linear layer with Xavier-uniform weights and zero bias.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	return &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", tensor.XavierUniform(rng, out, in)),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// NewLinearNoBias creates a bias-free Linear layer.
func NewLinearNoBias(name string, in, out int, rng *tensor.RNG) *Linear {
	return &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", tensor.XavierUniform(rng, out, in)),
	}
}

// Forward computes y = x Wᵀ + b for x of shape (rows, In).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("Linear.Forward", x, 2)
	if x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got input width %d", l.In, l.Out, x.Shape[1]))
	}
	if train {
		l.x = x
	}
	y := tensor.MatMulT(x, l.Weight.W)
	if l.Bias != nil {
		y.AddRowVector(l.Bias.W)
	}
	return y
}

// ForwardInto computes y = x Wᵀ + b into a caller-provided (rows, Out)
// tensor without caching anything for backward — the inference path used by
// the attention and pipeline hot loops so layer intermediates come from the
// scratch arena instead of the heap.
func (l *Linear) ForwardInto(out, x *tensor.Tensor) {
	checkRank("Linear.ForwardInto", x, 2)
	if x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got input width %d", l.In, l.Out, x.Shape[1]))
	}
	tensor.MatMulTInto(out, x, l.Weight.W)
	if l.Bias != nil {
		out.AddRowVector(l.Bias.W)
	}
}

// Backward computes dx = dy W, dW += dyᵀ x, db += sum_rows(dy).
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward(train=true)")
	}
	checkRank("Linear.Backward", dy, 2)
	dW := tensor.TMatMul(dy, l.x) // (Out,rows)ᵀ... actually (rows,Out)ᵀ@(rows,In) = (Out,In)
	l.Weight.G.AddInPlace(dW)
	if l.Bias != nil {
		l.Bias.G.AddInPlace(dy.SumRows())
	}
	return tensor.MatMul(dy, l.Weight.W) // (rows,Out) @ (Out,In) = (rows,In)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}
