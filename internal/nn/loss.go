package nn

import (
	"fmt"
	"math"

	"itask/internal/tensor"
)

// CrossEntropy computes mean softmax cross-entropy between logits (N,C) and
// integer labels, returning the scalar loss and dLoss/dLogits.
// A label of -1 means "ignore this row" (contributes nothing to loss or
// gradient), which the detection head uses for don't-care cells.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	checkRank("CrossEntropy", logits, 2)
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy %d labels for %d rows", len(labels), n))
	}
	grad := tensor.New(n, c)
	var loss float64
	count := 0
	for i := 0; i < n; i++ {
		if labels[i] < 0 {
			continue
		}
		count++
	}
	if count == 0 {
		return 0, grad
	}
	inv := float32(1 / float64(count))
	probs := tensor.SoftmaxRows(logits)
	lse := tensor.LogSumExpRows(logits)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 {
			continue
		}
		if y >= c {
			panic(fmt.Sprintf("nn: CrossEntropy label %d out of range [0,%d)", y, c))
		}
		loss += float64(lse[i] - logits.At(i, y))
		grow := grad.Data[i*c : (i+1)*c]
		prow := probs.Data[i*c : (i+1)*c]
		for j, p := range prow {
			grow[j] = p * inv
		}
		grow[y] -= inv
	}
	return float32(loss / float64(count)), grad
}

// SoftCrossEntropy computes mean cross-entropy between logits (N,C) and a
// full target distribution (N,C): loss = -mean_i sum_j t_ij log p_ij.
// Used for distillation soft targets.
func SoftCrossEntropy(logits, target *tensor.Tensor) (float32, *tensor.Tensor) {
	checkRank("SoftCrossEntropy", logits, 2)
	if !logits.SameShape(target) {
		panic("nn: SoftCrossEntropy shape mismatch")
	}
	n, c := logits.Shape[0], logits.Shape[1]
	probs := tensor.SoftmaxRows(logits)
	lse := tensor.LogSumExpRows(logits)
	grad := tensor.New(n, c)
	var loss float64
	inv := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		trow := target.Data[i*c : (i+1)*c]
		lrow := logits.Data[i*c : (i+1)*c]
		prow := probs.Data[i*c : (i+1)*c]
		grow := grad.Data[i*c : (i+1)*c]
		var tsum float64
		for j, tv := range trow {
			loss += float64(tv) * float64(lse[i]-lrow[j])
			tsum += float64(tv)
		}
		// grad = (tsum * p - t) / n ; for normalized targets tsum == 1.
		for j := range grow {
			grow[j] = (float32(tsum)*prow[j] - trow[j]) * inv
		}
	}
	return float32(loss / float64(n)), grad
}

// KLDistill computes the Hinton distillation loss
// T² · KL(softmax(teacher/T) ‖ softmax(student/T)) averaged over rows,
// returning the loss and its gradient w.r.t. the student logits.
// The T² factor keeps gradient magnitudes comparable across temperatures.
func KLDistill(student, teacher *tensor.Tensor, temp float32) (float32, *tensor.Tensor) {
	if !student.SameShape(teacher) {
		panic("nn: KLDistill shape mismatch")
	}
	if temp <= 0 {
		panic("nn: KLDistill temperature must be positive")
	}
	n, c := student.Shape[0], student.Shape[1]
	st := tensor.Scale(student, 1/temp)
	tt := tensor.Scale(teacher, 1/temp)
	sp := tensor.SoftmaxRows(st)
	tp := tensor.SoftmaxRows(tt)
	slse := tensor.LogSumExpRows(st)
	tlse := tensor.LogSumExpRows(tt)
	grad := tensor.New(n, c)
	var loss float64
	// d/ds_j of KL = (1/T)(softmax(s/T)_j - softmax(t/T)_j); times T² -> T.
	g := temp / float32(n)
	for i := 0; i < n; i++ {
		srow := st.Data[i*c : (i+1)*c]
		trow := tt.Data[i*c : (i+1)*c]
		tpr := tp.Data[i*c : (i+1)*c]
		spr := sp.Data[i*c : (i+1)*c]
		grow := grad.Data[i*c : (i+1)*c]
		for j, tpv := range tpr {
			if tpv > 0 {
				logT := float64(trow[j] - tlse[i])
				logS := float64(srow[j] - slse[i])
				loss += float64(tpv) * (logT - logS)
			}
			grow[j] = g * (spr[j] - tpv)
		}
	}
	return float32(temp) * float32(temp) * float32(loss/float64(n)), grad
}

// MSE computes mean squared error 1/N Σ(pred-target)², N = element count,
// and its gradient w.r.t. pred.
func MSE(pred, target *tensor.Tensor) (float32, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	n := pred.Size()
	grad := tensor.New(pred.Shape...)
	if n == 0 {
		return 0, grad
	}
	var loss float64
	inv := float32(2 / float64(n))
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = inv * d
	}
	return float32(loss / float64(n)), grad
}

// SmoothL1 computes the Huber-style smooth-L1 loss with threshold beta,
// averaged over all elements; used for box regression.
func SmoothL1(pred, target *tensor.Tensor, beta float32) (float32, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: SmoothL1 shape mismatch")
	}
	if beta <= 0 {
		panic("nn: SmoothL1 beta must be positive")
	}
	n := pred.Size()
	grad := tensor.New(pred.Shape...)
	if n == 0 {
		return 0, grad
	}
	var loss float64
	inv := float32(1 / float64(n))
	for i, p := range pred.Data {
		d := p - target.Data[i]
		ad := d
		if ad < 0 {
			ad = -ad
		}
		if ad < beta {
			loss += float64(0.5 * d * d / beta)
			grad.Data[i] = inv * d / beta
		} else {
			loss += float64(ad - 0.5*beta)
			if d > 0 {
				grad.Data[i] = inv
			} else {
				grad.Data[i] = -inv
			}
		}
	}
	return float32(loss / float64(n)), grad
}

// BCEWithLogits computes mean binary cross-entropy over logits and {0,1}
// targets with optional per-element weights (nil = all ones), returning the
// loss and gradient w.r.t. logits. Numerically stable formulation.
func BCEWithLogits(logits, target, weight *tensor.Tensor) (float32, *tensor.Tensor) {
	if !logits.SameShape(target) {
		panic("nn: BCEWithLogits shape mismatch")
	}
	if weight != nil && !weight.SameShape(logits) {
		panic("nn: BCEWithLogits weight shape mismatch")
	}
	n := logits.Size()
	grad := tensor.New(logits.Shape...)
	if n == 0 {
		return 0, grad
	}
	var loss, wsum float64
	for i, x := range logits.Data {
		w := float32(1)
		if weight != nil {
			w = weight.Data[i]
		}
		t := target.Data[i]
		// loss = max(x,0) - x*t + log(1+exp(-|x|))
		ax := x
		if ax < 0 {
			ax = -ax
		}
		mx := x
		if mx < 0 {
			mx = 0
		}
		loss += float64(w) * (float64(mx) - float64(x*t) + math.Log1p(math.Exp(-float64(ax))))
		grad.Data[i] = w * (Sigmoid(x) - t)
		wsum += float64(w)
	}
	if wsum == 0 {
		grad.Zero()
		return 0, grad
	}
	grad.ScaleInPlace(float32(1 / wsum))
	return float32(loss / wsum), grad
}
