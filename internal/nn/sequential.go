package nn

import "itask/internal/tensor"

// Sequential chains layers, feeding each layer's output to the next.
// Backward runs the chain in reverse.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) {
	s.Layers = append(s.Layers, layers...)
}

// Forward runs the chain front to back.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the chain back to front.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns the concatenated parameters of all layers, in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Residual wraps a layer f as x + f(x), the transformer residual connection.
type Residual struct {
	Body Layer
}

// NewResidual wraps body in a residual connection.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// Forward computes x + Body(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	return tensor.Add(x, y)
}

// Backward returns dy + Body.Backward(dy).
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := r.Body.Backward(dy)
	return tensor.Add(dy, dx)
}

// Params returns the wrapped layer's parameters.
func (r *Residual) Params() []*Param { return r.Body.Params() }
