package nn

import (
	"fmt"
	"math"
	"testing"

	"itask/internal/tensor"
)

// lossOf evaluates the scalar test loss L = Σ w ⊙ f(x) used for gradient
// checking, with a fixed random weighting w to make the loss sensitive to
// every output element.
func lossOf(l Layer, x, w *tensor.Tensor) float64 {
	y := l.Forward(x, true)
	return float64(tensor.Dot(y, w))
}

// checkGradients verifies analytic gradients of layer l against central
// finite differences, for both the input and every parameter.
func checkGradients(t *testing.T, name string, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(12345)
	y := l.Forward(x, true)
	w := tensor.Randn(rng, 1, y.Shape...)
	ZeroGrads(l.Params())
	// Re-run forward so caches correspond to this x (Forward above already
	// did, but be explicit about the pairing).
	l.Forward(x, true)
	dx := l.Backward(w.Clone())

	const eps = 1e-3
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(l, x, w)
		x.Data[i] = orig - eps
		lm := lossOf(l, x, w)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(dx.Data[i])
		if relErr(num, ana) > tol {
			t.Errorf("%s: dX[%d] numeric %.6g vs analytic %.6g", name, i, num, ana)
			return
		}
	}
	// Parameter gradients (sample to keep runtime sane on big layers).
	for _, p := range l.Params() {
		stride := 1
		if p.NumEl() > 64 {
			stride = p.NumEl() / 64
		}
		for i := 0; i < p.NumEl(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossOf(l, x, w)
			p.W.Data[i] = orig - eps
			lm := lossOf(l, x, w)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.G.Data[i])
			if relErr(num, ana) > tol {
				t.Errorf("%s: d%s[%d] numeric %.6g vs analytic %.6g", name, p.Name, i, num, ana)
				return
			}
		}
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 0.05 {
		// Near zero the float32 central difference is dominated by
		// cancellation noise (~loss·2⁻²³/eps ≈ 1e-3); compare absolutely.
		return d
	}
	return d / den
}

func TestLinearGradients(t *testing.T) {
	for _, shape := range []struct{ rows, in, out int }{
		{1, 3, 2}, {4, 5, 7}, {6, 8, 8},
	} {
		rng := tensor.NewRNG(uint64(shape.rows*100 + shape.in))
		l := NewLinear("fc", shape.in, shape.out, rng)
		x := tensor.Randn(rng, 1, shape.rows, shape.in)
		checkGradients(t, fmt.Sprintf("Linear(%d,%d,%d)", shape.rows, shape.in, shape.out), l, x, 2e-2)
	}
}

func TestLinearNoBiasGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewLinearNoBias("fc", 4, 3, rng)
	if len(l.Params()) != 1 {
		t.Fatalf("no-bias linear should expose 1 param, got %d", len(l.Params()))
	}
	x := tensor.Randn(rng, 1, 5, 4)
	checkGradients(t, "LinearNoBias", l, x, 2e-2)
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(21)
	l := NewLayerNorm("ln", 6)
	// Non-identity affine so gamma gradients are exercised nontrivially.
	for i := range l.Gamma.W.Data {
		l.Gamma.W.Data[i] = 1 + 0.1*float32(i)
		l.Beta.W.Data[i] = -0.05 * float32(i)
	}
	x := tensor.Randn(rng, 1.5, 4, 6)
	checkGradients(t, "LayerNorm", l, x, 3e-2)
}

func TestGELUGradients(t *testing.T) {
	rng := tensor.NewRNG(31)
	l := NewGELU()
	x := tensor.Randn(rng, 2, 5, 7)
	checkGradients(t, "GELU", l, x, 2e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(41)
	l := NewReLU()
	x := tensor.Randn(rng, 2, 5, 7)
	// Nudge values away from the kink at 0 where finite differences lie.
	for i, v := range x.Data {
		if v > -0.01 && v < 0.01 {
			x.Data[i] = 0.5
		}
	}
	checkGradients(t, "ReLU", l, x, 2e-2)
}

func TestAttentionGradients(t *testing.T) {
	for _, cfg := range []struct{ dim, heads, tokens, batch int }{
		{4, 1, 3, 1},
		{8, 2, 4, 2},
	} {
		rng := tensor.NewRNG(uint64(cfg.dim * cfg.tokens))
		a := NewMultiHeadAttention("attn", cfg.dim, cfg.heads, cfg.tokens, rng)
		x := tensor.Randn(rng, 0.7, cfg.batch*cfg.tokens, cfg.dim)
		checkGradients(t, fmt.Sprintf("MHSA(d=%d,h=%d,t=%d,b=%d)", cfg.dim, cfg.heads, cfg.tokens, cfg.batch), a, x, 4e-2)
	}
}

func TestSequentialGradients(t *testing.T) {
	rng := tensor.NewRNG(51)
	s := NewSequential(
		NewLinear("fc1", 5, 8, rng),
		NewGELU(),
		NewLayerNorm("ln", 8),
		NewLinear("fc2", 8, 3, rng),
	)
	x := tensor.Randn(rng, 1, 4, 5)
	checkGradients(t, "Sequential", s, x, 3e-2)
}

func TestResidualGradients(t *testing.T) {
	rng := tensor.NewRNG(61)
	r := NewResidual(NewSequential(
		NewLayerNorm("ln", 6),
		NewLinear("fc", 6, 6, rng),
	))
	x := tensor.Randn(rng, 1, 3, 6)
	checkGradients(t, "Residual", r, x, 3e-2)
}

func TestMHSADimDivisibilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim not divisible by heads")
		}
	}()
	NewMultiHeadAttention("a", 7, 2, 4, tensor.NewRNG(1))
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(1)
	layers := map[string]Layer{
		"Linear":    NewLinear("fc", 2, 2, rng),
		"LayerNorm": NewLayerNorm("ln", 2),
		"GELU":      NewGELU(),
		"ReLU":      NewReLU(),
		"MHSA":      NewMultiHeadAttention("a", 2, 1, 1, rng),
	}
	for name, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on Backward before Forward", name)
				}
			}()
			l.Backward(tensor.New(1, 2))
		}()
	}
}
