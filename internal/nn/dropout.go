package nn

import "itask/internal/tensor"

// Dropout randomly zeroes activations during training with probability P and
// rescales survivors by 1/(1-P) (inverted dropout), so inference needs no
// correction. The layer draws from its own deterministic RNG stream, which
// keeps whole training runs bit-reproducible from the experiment seed.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	mask []float32
}

// NewDropout creates a dropout layer with drop probability p in [0,1).
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies dropout when train is true; otherwise it is the identity.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	keep := float32(1 / (1 - d.P))
	d.mask = make([]float32, len(x.Data))
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = keep
			y.Data[i] = v * keep
		}
	}
	return y
}

// Backward applies the cached mask to the upstream gradient.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		// Forward ran in eval mode (identity); gradient passes through.
		return dy
	}
	dx := tensor.New(dy.Shape...)
	for i, m := range d.mask {
		dx.Data[i] = dy.Data[i] * m
	}
	return dx
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
