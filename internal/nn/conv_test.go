package nn

import (
	"testing"

	"itask/internal/tensor"
)

func TestConv2DIdentityKernel(t *testing.T) {
	rng := tensor.NewRNG(1)
	// 1x1 kernel with weight 1: convolution must be the identity.
	c := NewConv2D("c", 1, 1, 1, 1, 4, 4, rng)
	c.Weight.W.Fill(1)
	c.Bias.W.Zero()
	x := tensor.Randn(rng, 1, 2, 16)
	y := c.Forward(x, false)
	if !y.AllClose(x, 1e-6, 1e-6) {
		t.Error("1x1 identity convolution should preserve input")
	}
}

func TestConv2DKnownValue(t *testing.T) {
	rng := tensor.NewRNG(2)
	// 3x3 all-ones kernel on an all-ones 4x4 image: interior outputs are 9,
	// edges 6, corners 4 (zero padding).
	c := NewConv2D("c", 1, 1, 3, 1, 4, 4, rng)
	c.Weight.W.Fill(1)
	c.Bias.W.Zero()
	x := tensor.Ones(1, 16)
	y := c.Forward(x, false)
	if y.Data[0] != 4 { // corner
		t.Errorf("corner = %v, want 4", y.Data[0])
	}
	if y.Data[1] != 6 { // edge
		t.Errorf("edge = %v, want 6", y.Data[1])
	}
	if y.Data[5] != 9 { // interior
		t.Errorf("interior = %v, want 9", y.Data[5])
	}
}

func TestConv2DStride(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("c", 2, 4, 3, 2, 8, 8, rng)
	if c.OutH() != 4 || c.OutW() != 4 {
		t.Fatalf("out dims %dx%d, want 4x4", c.OutH(), c.OutW())
	}
	x := tensor.Randn(rng, 1, 3, 2*8*8)
	y := c.Forward(x, false)
	if y.Shape[0] != 3 || y.Shape[1] != 4*4*4 {
		t.Fatalf("output shape %v", y.Shape)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("c", 2, 3, 3, 1, 5, 4, rng)
	x := tensor.Randn(rng, 1, 2, 2*5*4)
	checkGradients(t, "Conv2D", c, x, 3e-2)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	c := NewConv2D("c", 1, 2, 3, 2, 6, 6, rng)
	x := tensor.Randn(rng, 1, 2, 36)
	checkGradients(t, "Conv2D-s2", c, x, 3e-2)
}

func TestConv2DValidation(t *testing.T) {
	rng := tensor.NewRNG(6)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("even kernel should panic")
			}
		}()
		NewConv2D("c", 1, 1, 2, 1, 4, 4, rng)
	}()
	c := NewConv2D("c", 1, 1, 3, 1, 4, 4, rng)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong input width should panic")
			}
		}()
		c.Forward(tensor.New(1, 15), false)
	}()
}

func TestMaxPool2DForward(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4)
	x := tensor.New(1, 16)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := p.Forward(x, false)
	// Windows: max of {0,1,4,5}=5, {2,3,6,7}=7, {8,9,12,13}=13, {10,11,14,15}=15.
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if y.Data[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestMaxPool2DBackwardRouting(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4)
	x := tensor.New(1, 16)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	p.Forward(x, true)
	dy := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	dx := p.Backward(dy)
	// Gradient lands exactly at the max positions (5, 7, 13, 15).
	for i, v := range dx.Data {
		switch i {
		case 5:
			if v != 1 {
				t.Errorf("dx[5] = %v", v)
			}
		case 7:
			if v != 2 {
				t.Errorf("dx[7] = %v", v)
			}
		case 13:
			if v != 3 {
				t.Errorf("dx[13] = %v", v)
			}
		case 15:
			if v != 4 {
				t.Errorf("dx[15] = %v", v)
			}
		default:
			if v != 0 {
				t.Errorf("dx[%d] = %v, want 0", i, v)
			}
		}
	}
}

func TestMaxPool2DGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	p := NewMaxPool2D(2, 4, 4)
	x := tensor.Randn(rng, 1, 2, 32)
	// Separate values so ties don't break finite differences at kinks.
	for i := range x.Data {
		x.Data[i] += float32(i) * 0.01
	}
	checkGradients(t, "MaxPool2D", p, x, 3e-2)
}

func TestConvNetComposition(t *testing.T) {
	rng := tensor.NewRNG(8)
	// conv -> relu -> pool -> linear: the baseline-detector building blocks
	// compose through Sequential.
	conv := NewConv2D("c", 3, 8, 3, 1, 8, 8, rng)
	pool := NewMaxPool2D(8, 8, 8)
	net := NewSequential(
		conv,
		NewReLU(),
		pool,
		NewLinear("fc", pool.OutFeatures(), 10, rng),
	)
	x := tensor.Randn(rng, 1, 2, 3*8*8)
	y := net.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 10 {
		t.Fatalf("output shape %v", y.Shape)
	}
	dy := tensor.Randn(rng, 1, 2, 10)
	dx := net.Backward(dy)
	if dx.Shape[0] != 2 || dx.Shape[1] != 3*8*8 {
		t.Fatalf("input grad shape %v", dx.Shape)
	}
}
