// Package freq detects frequent ("hot") 64-bit keys in a high-rate stream
// with a fixed-size direct-mapped slot array. It is the shared hot-content
// estimator of the serving stack: the distributed gateway uses it to decide
// which content digests to replicate across shards (internal/gateway), and
// the in-process result cache uses the same estimator to decide which
// digests to promote into its lock-free replica tier (internal/rcache).
//
// Each slot runs a "frequent"/MJRTY (Boyer–Moore majority vote) estimator: a
// key occupies its slot while it dominates the slot's traffic, and colliding
// cold keys decrement rather than evict it, so hot keys are sticky against
// cold-tail collisions. Counts are halved every DecayWindow arrivals, making
// hotness a property of recent traffic — yesterday's viral frame cools off
// and releases whatever resources its hotness earned.
//
// Keys are finalized through Mix64 before indexing: FNV digests of
// structured inputs (quantized float tensors) can share their low bits
// wholesale, and without mixing an entire workload collapses into one slot
// where cold keys decrement the hot incumbent into oblivion (regression
// pinned by TestTrackerStructuredDigests).
package freq

import "sync"

// Defaults used when a Tracker is built with zero slot count or decay
// window.
const (
	// DefaultSlots is the direct-mapped slot count (power of two).
	DefaultSlots = 1024
	// DefaultDecay is the number of arrivals between halvings of every
	// slot's count.
	DefaultDecay = 8192
)

// slot is padded to a cache line so adjacent slots never false-share under
// concurrent recording.
type slot struct {
	mu    sync.Mutex
	key   uint64
	count uint32
	_     [64 - 8 - 8 - 4]byte
}

// Tracker counts per-key arrivals and reports keys whose windowed count
// crossed the threshold. Safe for concurrent use. A nil *Tracker is a valid
// disabled tracker: Record and Hot report false, Force is a no-op.
type Tracker struct {
	threshold uint32
	decay     uint64
	mask      uint64
	slots     []slot

	// ops counts arrivals to schedule decay; guarded by opsMu rather than an
	// atomic so exactly one caller runs each halving sweep.
	opsMu sync.Mutex
	ops   uint64
}

// New builds a tracker that reports a key hot once its windowed count
// reaches threshold. threshold <= 0 returns nil (a disabled tracker). slots
// is rounded up to a power of two (0 = DefaultSlots); decay is the arrivals
// between halvings (0 = DefaultDecay).
func New(threshold, slots, decay int) *Tracker {
	if threshold <= 0 {
		return nil
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	pow := 1
	for pow < slots {
		pow <<= 1
	}
	if decay <= 0 {
		decay = DefaultDecay
	}
	return &Tracker{
		threshold: uint32(threshold),
		decay:     uint64(decay),
		mask:      uint64(pow - 1),
		slots:     make([]slot, pow),
	}
}

// Threshold reports the configured hot threshold (0 for a nil tracker).
func (t *Tracker) Threshold() uint32 {
	if t == nil {
		return 0
	}
	return t.threshold
}

// Record counts one arrival of key d. hot reports whether d is currently
// hot; swept reports whether this arrival crossed a decay-window boundary
// and triggered the halving sweep — callers maintaining state keyed on
// hotness (replica tables) use it to schedule their own demotion pass.
func (t *Tracker) Record(d uint64) (hot, swept bool) {
	if t == nil {
		return false, false
	}
	s := &t.slots[Mix64(d)&t.mask]
	s.mu.Lock()
	switch {
	case s.key == d:
		if s.count < 1<<31 {
			s.count++
		}
	case s.count == 0:
		s.key = d
		s.count = 1
	default:
		// A colliding key decays the incumbent instead of evicting it: only
		// a key that out-arrives the incumbent can take the slot, so hot
		// keys are sticky against cold-tail collisions.
		s.count--
	}
	hot = s.key == d && s.count >= t.threshold
	s.mu.Unlock()

	t.opsMu.Lock()
	t.ops++
	swept = t.ops%t.decay == 0
	t.opsMu.Unlock()
	if swept {
		t.halve()
	}
	return hot, swept
}

// Hot peeks whether d is currently hot without recording an arrival.
func (t *Tracker) Hot(d uint64) bool {
	if t == nil {
		return false
	}
	s := &t.slots[Mix64(d)&t.mask]
	s.mu.Lock()
	hot := s.key == d && s.count >= t.threshold
	s.mu.Unlock()
	return hot
}

// Force jumps d's count to the threshold, claiming its slot: the next Hot
// or Record reports it hot. Used to pre-heat a key something upstream (the
// gateway's fleet-wide view) already proved hot, so a shard promotes it
// before its own window fills. An incumbent with a higher count is not
// displaced — it is at least as hot.
func (t *Tracker) Force(d uint64) {
	if t == nil {
		return
	}
	s := &t.slots[Mix64(d)&t.mask]
	s.mu.Lock()
	if s.key != d {
		if s.count >= t.threshold {
			s.mu.Unlock()
			return
		}
		s.key = d
	}
	if s.count < t.threshold {
		s.count = t.threshold
	}
	s.mu.Unlock()
}

func (t *Tracker) halve() {
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		s.count /= 2
		s.mu.Unlock()
	}
}

// Mix64 is the splitmix64 finalizer: a cheap bijective avalanche that turns
// structured 64-bit keys (FNV digests of similar tensors share bit
// patterns) into uniform draws, so direct-mapped slot and ring-point
// selection behave as independent hashes.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
