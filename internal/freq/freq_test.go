package freq

import "testing"

func TestTrackerBasics(t *testing.T) {
	tr := New(32, 0, 0)
	d := uint64(0xdeadbeefcafe)
	for i := 0; i < 31; i++ {
		if hot, _ := tr.Record(d); hot {
			t.Fatalf("hot after %d arrivals, threshold 32", i+1)
		}
	}
	if hot, _ := tr.Record(d); !hot {
		t.Fatal("not hot after 32 arrivals")
	}
	// A colliding cold key decays the incumbent's count but cannot evict it:
	// after the cold burst, the incumbent recovers to hot with exactly as
	// many arrivals as the burst spent.
	slotIdx := Mix64(d) & tr.mask
	other := d + 1
	for Mix64(other)&tr.mask != slotIdx {
		other++
	}
	for i := 0; i < 8; i++ {
		if hot, _ := tr.Record(other); hot {
			t.Fatal("colliding cold key went hot on the incumbent's count")
		}
	}
	for i := 0; i < 8; i++ {
		tr.Record(d)
	}
	if hot, _ := tr.Record(d); !hot {
		t.Fatal("incumbent lost its slot to a colliding cold key")
	}
	if New(0, 0, 0) != nil {
		t.Fatal("threshold 0 must disable the tracker")
	}
	var nilTr *Tracker
	if hot, swept := nilTr.Record(d); hot || swept {
		t.Fatal("nil tracker must report nothing")
	}
	nilTr.Force(d) // must not panic
	if nilTr.Hot(d) {
		t.Fatal("nil tracker reported hot")
	}
}

// The regression that motivated Mix64 slotting: rcache digests of structured
// tensors can share all their low bits, and raw masking would pile an entire
// workload into one slot where cold keys hold the hot key at count 0.
func TestTrackerStructuredDigests(t *testing.T) {
	tr := New(32, 0, 0)
	const lowBits = 0x012 // every key shares its low 10 bits
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)<<20 | lowBits
	}
	slots := map[uint64]bool{}
	for _, k := range keys {
		slots[Mix64(k)&tr.mask] = true
	}
	if len(slots) < len(keys)/2 {
		t.Fatalf("Mix64 left %d/%d structured digests in distinct slots", len(slots), len(keys))
	}
	// keys[0] takes 50% of traffic; the rest share the tail. It must go hot.
	hot := false
	for i := 0; i < 400; i++ {
		if h, _ := tr.Record(keys[0]); h {
			hot = true
		}
		tr.Record(keys[1+i%(len(keys)-1)])
	}
	if !hot {
		t.Fatal("dominant structured digest never went hot")
	}
}

func TestTrackerHotPeeksWithoutArrival(t *testing.T) {
	tr := New(4, 0, 0)
	d := uint64(42)
	for i := 0; i < 100; i++ {
		if tr.Hot(d) {
			t.Fatal("Hot must not record arrivals")
		}
	}
	for i := 0; i < 4; i++ {
		tr.Record(d)
	}
	if !tr.Hot(d) {
		t.Fatal("Hot missed a key past threshold")
	}
}

func TestTrackerForce(t *testing.T) {
	tr := New(64, 0, 0)
	d := uint64(7)
	tr.Force(d)
	if !tr.Hot(d) {
		t.Fatal("forced key not hot")
	}
	// Force must not displace a hotter incumbent in the same slot.
	incumbent := uint64(100)
	for i := 0; i < 200; i++ {
		tr.Record(incumbent)
	}
	collider := incumbent + 1
	for Mix64(collider)&tr.mask != Mix64(incumbent)&tr.mask {
		collider++
	}
	tr.Force(collider)
	if !tr.Hot(incumbent) {
		t.Fatal("Force displaced an incumbent with a higher count")
	}
}

// TestTrackerDecayWindow pins the configurable decay: with a tiny window, a
// key that stops arriving falls below threshold after enough cold traffic.
func TestTrackerDecayWindow(t *testing.T) {
	tr := New(8, 0, 16) // halve every 16 arrivals
	d := uint64(0xabc)
	for i := 0; i < 12; i++ {
		tr.Record(d)
	}
	if !tr.Hot(d) {
		t.Fatal("not hot after 12 arrivals at threshold 8")
	}
	// 64 cold arrivals = 4 halvings: 12 -> 6 -> 3 -> 1 -> 0-ish, never
	// touching d's slot (distinct keys spread by Mix64; any that collide
	// only decay d faster).
	for i := 0; i < 64; i++ {
		tr.Record(uint64(0x1000 + i))
	}
	if tr.Hot(d) {
		t.Fatal("key survived 4 decay halvings without arrivals")
	}
}

func TestRecordReportsSweep(t *testing.T) {
	tr := New(2, 0, 8)
	swept := 0
	for i := 0; i < 24; i++ {
		if _, s := tr.Record(uint64(i)); s {
			swept++
		}
	}
	if swept != 3 {
		t.Fatalf("24 arrivals at decay window 8: got %d sweeps, want 3", swept)
	}
}
