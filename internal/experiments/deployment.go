package experiments

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/tensor"
)

// E11Row is one deployment variant of the quantized generalist.
type E11Row struct {
	Variant string
	MeanAcc float64
	// DeltaVsDeployed is MeanAcc minus the deployed default
	// (dynamic activation quantization, exact vector unit).
	DeltaVsDeployed float64
}

// E11DeploymentVariants quantifies the two hardware simplifications an
// edge deployment trades accuracy for:
//
//   - static (calibrated) activation quantization instead of a runtime
//     min/max scan per tensor, and
//   - the vector unit's approximate softmax/LayerNorm/GELU instead of
//     exact transcendentals.
//
// All four combinations are evaluated across the four tasks on the same
// validation scenes.
func E11DeploymentVariants(env *Env) ([]E11Row, error) {
	// Fresh quantized model so toggles never leak into env.Quant.
	qm, err := quant.FromViT(env.GenStudent, quant.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// Calibration set: fresh in-distribution scenes from every domain.
	rng := tensor.NewRNG(131313)
	var calib []*tensor.Tensor
	for _, task := range env.Tasks {
		dom := scene.GetDomain(task.Domain)
		for i := 0; i < 4; i++ {
			calib = append(calib, scene.Generate(dom, env.Gen, rng).Image)
		}
	}
	sp, err := quant.Calibrate(env.GenStudent, calib, quant.DefaultConfig(), 0.999)
	if err != nil {
		return nil, err
	}

	meanAcc := func() float64 {
		df := eval.DetectFunc(func(img *tensor.Tensor) []geom.Scored {
			return qm.Detect(img, env.Th.Obj, env.Th.NMSIoU)
		})
		var sum float64
		for _, task := range env.Tasks {
			sum += eval.Run(df, env.Val[task.Name], dataset.ClassInts(task.Classes), env.Th).Accuracy
		}
		return sum / float64(len(env.Tasks))
	}

	variants := []struct {
		name   string
		static bool
		approx bool
	}{
		{"dynamic + exact vector (deployed)", false, false},
		{"dynamic + approx vector", false, true},
		{"static + exact vector", true, false},
		{"static + approx vector", true, true},
	}
	var rows []E11Row
	var base float64
	for i, v := range variants {
		if v.static {
			if err := qm.SetStatic(sp); err != nil {
				return nil, err
			}
		} else {
			if err := qm.SetStatic(nil); err != nil {
				return nil, err
			}
		}
		qm.SetApproxVector(v.approx)
		acc := meanAcc()
		if i == 0 {
			base = acc
		}
		rows = append(rows, E11Row{
			Variant:         v.name,
			MeanAcc:         acc,
			DeltaVsDeployed: acc - base,
		})
	}
	return rows, nil
}

// FprintE11 renders the deployment-variant table.
func FprintE11(w io.Writer, rows []E11Row) {
	fmt.Fprintf(w, "E11 — deployment variants of the quantized generalist (mean over tasks)\n")
	fmt.Fprintf(w, "%-36s %10s %12s\n", "variant", "mean acc", "vs deployed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %9.1f%% %+11.1f%%\n", r.Variant, 100*r.MeanAcc, 100*r.DeltaVsDeployed)
	}
}
