package experiments

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/kg"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// E7Row is one point of Figure 4: quantization sensitivity.
type E7Row struct {
	Bits       int
	PerChannel bool
	// MeanAcc is the across-task mean accuracy of the quantized generalist.
	MeanAcc float64
	// DeltaVsFloat is MeanAcc minus the float teacher's mean accuracy.
	DeltaVsFloat float64
	// WeightKB is the quantized weight footprint.
	WeightKB float64
}

// E7BitWidth runs Figure 4: the trained generalist quantized at 8/6/4 bits,
// per-channel and per-tensor, evaluated across all tasks.
func E7BitWidth(env *Env) ([]E7Row, error) {
	// Float reference: the generalist before quantization.
	var floatMean float64
	for _, task := range env.Tasks {
		floatMean += eval.Run(eval.DetectorOf(env.GenStudent, env.Th), env.Val[task.Name],
			dataset.ClassInts(task.Classes), env.Th).Accuracy
	}
	floatMean /= float64(len(env.Tasks))

	var rows []E7Row
	for _, perChannel := range []bool{true, false} {
		for _, bits := range []int{8, 6, 4} {
			qm, err := quant.FromViT(env.GenStudent, quant.Config{Bits: bits, PerChannel: perChannel})
			if err != nil {
				return nil, err
			}
			df := eval.DetectFunc(func(img *tensor.Tensor) []geom.Scored {
				return qm.Detect(img, env.Th.Obj, env.Th.NMSIoU)
			})
			var mean float64
			for _, task := range env.Tasks {
				mean += eval.Run(df, env.Val[task.Name],
					dataset.ClassInts(task.Classes), env.Th).Accuracy
			}
			mean /= float64(len(env.Tasks))
			rows = append(rows, E7Row{
				Bits:         bits,
				PerChannel:   perChannel,
				MeanAcc:      mean,
				DeltaVsFloat: mean - floatMean,
				WeightKB:     float64(qm.WeightBytes()) / 1024,
			})
		}
	}
	return rows, nil
}

// FprintE7 renders Figure 4's series.
func FprintE7(w io.Writer, rows []E7Row) {
	fmt.Fprintf(w, "E7 (Fig. 4) — quantization sensitivity of the generalist\n")
	fmt.Fprintf(w, "%-6s %-12s %12s %14s %12s\n", "bits", "scheme", "mean acc", "vs float", "weights(KB)")
	for _, r := range rows {
		scheme := "per-tensor"
		if r.PerChannel {
			scheme = "per-channel"
		}
		fmt.Fprintf(w, "%-6d %-12s %11.1f%% %+13.1f%% %12.1f\n",
			r.Bits, scheme, 100*r.MeanAcc, 100*r.DeltaVsFloat, r.WeightKB)
	}
}

// E8KGRow is one row of the knowledge-graph ablation: an attribute family
// removed from the task graph before computing priors.
type E8KGRow struct {
	Removed string
	// Separation is mean prior over true task classes minus mean prior over
	// all other classes — how well the KG isolates the task's classes.
	Separation float64
	// ZeroShotAcc is the prior-conditioned generalist's accuracy with no
	// support samples (strength-1 bias conditioning only).
	ZeroShotAcc float64
}

// E8KGAblation removes one attribute family at a time from the patrol
// task's graph and measures prior quality and zero-shot conditioning.
func E8KGAblation(env *Env, taskName string) ([]E8KGRow, error) {
	var task dataset.Task
	found := false
	for _, t := range env.Tasks {
		if t.Name == taskName {
			task = t
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown task %q", taskName)
	}
	full := env.Graphs[taskName]
	val := env.Val[taskName]
	classes := dataset.ClassInts(task.Classes)
	taskID := "task:" + taskName

	families := []struct {
		name string
		rel  kg.Relation
	}{
		{"none", ""},
		{"shape", kg.HasShape},
		{"color", kg.HasColor},
		{"texture", kg.HasTexture},
		{"size", kg.HasSize},
	}
	var rows []E8KGRow
	for _, fam := range families {
		g := ablateFamily(full, fam.rel)
		priors := kg.ClassPriors(g, taskID)
		rows = append(rows, E8KGRow{
			Removed:     fam.name,
			Separation:  priorSeparation(priors, task.Classes),
			ZeroShotAcc: zeroShotAcc(env, priors, val, classes),
		})
	}
	return rows, nil
}

// ablateFamily deep-copies g without edges of the given relation
// (rel == "" keeps everything).
func ablateFamily(g *kg.Graph, rel kg.Relation) *kg.Graph {
	out := kg.New()
	for _, n := range g.Nodes() {
		out.AddNode(n.ID, n.Kind, n.Label)
	}
	for _, e := range g.Edges() {
		if rel != "" && e.Rel == rel {
			continue
		}
		out.AddEdge(e.From, e.To, e.Rel, e.Weight)
	}
	return out
}

func priorSeparation(priors []float64, taskClasses []scene.ClassID) float64 {
	in := map[int]bool{}
	for _, c := range taskClasses {
		in[int(c)] = true
	}
	var inMean, outMean float64
	var nIn, nOut int
	for c, p := range priors {
		if in[c] {
			inMean += p
			nIn++
		} else {
			outMean += p
			nOut++
		}
	}
	if nIn > 0 {
		inMean /= float64(nIn)
	}
	if nOut > 0 {
		outMean /= float64(nOut)
	}
	return inMean - outMean
}

// zeroShotAcc conditions a fresh copy of the teacher on priors and measures
// accuracy without any fine-tuning.
func zeroShotAcc(env *Env, priors []float64, val dataset.Set, classes []int) float64 {
	m := vit.New(TeacherModelCfg(), tensor.NewRNG(7))
	if err := env.Teacher.CloneWeightsTo(m); err != nil {
		panic(err)
	}
	if err := distill.ApplyClassPriors(m, priors, 1); err != nil {
		panic(err)
	}
	return eval.Run(eval.DetectorOf(m, env.Th), val, classes, env.Th).Accuracy
}

// FprintE8KG renders the KG ablation.
func FprintE8KG(w io.Writer, taskName string, rows []E8KGRow) {
	fmt.Fprintf(w, "E8a — knowledge-graph attribute ablation (task %q)\n", taskName)
	fmt.Fprintf(w, "%-10s %12s %14s\n", "removed", "separation", "zero-shot acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3f %13.1f%%\n", r.Removed, r.Separation, 100*r.ZeroShotAcc)
	}
}

// E8DistillRow is one row of the distillation-loss ablation.
type E8DistillRow struct {
	Variant string
	Acc     float64
}

// E8DistillAblation distills a student for one task under loss variants:
// hard labels only, +soft responses, +feature matching (the full recipe).
func E8DistillAblation(env *Env, taskName string) ([]E8DistillRow, error) {
	var task dataset.Task
	found := false
	for _, t := range env.Tasks {
		if t.Name == taskName {
			task = t
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown task %q", taskName)
	}
	rng := tensor.NewRNG(515151)
	set := dataset.Build(task, env.Scale.DistillSample, env.Gen, rng.Split())
	val := env.Val[taskName]
	classes := dataset.ClassInts(task.Classes)

	variants := []struct {
		name         string
		alpha        float32
		softW, featW float32
	}{
		{"hard-only", 0, 0, 0},
		{"soft-only", 1, 1, 0},
		{"hard+soft", 0.5, 1, 0},
		{"hard+soft+feature", 0.5, 1, 0.5},
	}
	var rows []E8DistillRow
	for i, v := range variants {
		student := vit.New(StudentModelCfg(), tensor.NewRNG(uint64(900+i)))
		cfg := distill.DefaultDistillConfig()
		cfg.Train.Epochs = env.Scale.DistillEpochs
		cfg.Train.Seed = uint64(7000 + i)
		cfg.Alpha = v.alpha
		cfg.SoftWeight = v.softW
		cfg.FeatureWeight = v.featW
		if _, err := distill.Distill(env.Teacher, student, set, cfg); err != nil {
			return nil, err
		}
		acc := eval.Run(eval.DetectorOf(student, env.Th), val, classes, env.Th).Accuracy
		rows = append(rows, E8DistillRow{Variant: v.name, Acc: acc})
	}
	return rows, nil
}

// FprintE8Distill renders the distillation ablation.
func FprintE8Distill(w io.Writer, taskName string, rows []E8DistillRow) {
	fmt.Fprintf(w, "E8b — distillation loss ablation (task %q)\n", taskName)
	fmt.Fprintf(w, "%-20s %10s\n", "variant", "acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %9.1f%%\n", r.Variant, 100*r.Acc)
	}
}
