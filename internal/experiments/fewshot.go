package experiments

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// E4Row is one point of Figure 1: few-shot adaptation to an unseen task.
type E4Row struct {
	Shots int
	// AccKG is accuracy with knowledge-graph prior conditioning.
	AccKG float64
	// AccNoKG is plain fine-tuning of the same base model (ablation).
	AccNoKG float64
}

// E4FewShot runs Figure 1 (claim C5): pretrain a generalist on three tasks,
// then adapt it to the held-out task from k samples per class, with and
// without the task's LLM-generated knowledge graph.
func E4FewShot(env *Env, heldOut string) ([]E4Row, error) {
	var target dataset.Task
	var pretrain []dataset.Task
	found := false
	for _, t := range env.Tasks {
		if t.Name == heldOut {
			target = t
			found = true
		} else {
			pretrain = append(pretrain, t)
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown held-out task %q", heldOut)
	}

	rng := tensor.NewRNG(424242)
	base := vit.New(StudentModelCfg(), rng.Split())
	mixed := dataset.BuildMixed(pretrain, env.Scale.TrainPerTask/2+8, env.Gen, rng.Split())
	tcfg := distill.DefaultTrainConfig()
	tcfg.Epochs = env.Scale.TeacherEpochs
	tcfg.Seed = rng.Uint64()
	if _, err := distill.Train(base, mixed, tcfg); err != nil {
		return nil, err
	}

	priors := env.Priors[target.Name]
	val := env.Val[target.Name]
	classes := dataset.ClassInts(target.Classes)

	adapt := func(k int, strength float32) (float64, error) {
		m := vit.New(StudentModelCfg(), rng.Split())
		if err := base.CloneWeightsTo(m); err != nil {
			return 0, err
		}
		cfg := distill.DefaultFewShotConfig()
		cfg.Train.Epochs = env.Scale.FewShotEpochs
		cfg.PriorStrength = strength
		var support dataset.Set
		if k > 0 {
			support = dataset.BuildFewShot(target, k, env.Gen, tensor.NewRNG(uint64(1000+k)))
		}
		if _, err := distill.FewShotAdapt(m, priors, support, cfg); err != nil {
			return 0, err
		}
		return eval.Run(eval.DetectorOf(m, env.Th), val, classes, env.Th).Accuracy, nil
	}

	var rows []E4Row
	for _, k := range env.Scale.FewShotKs {
		withKG, err := adapt(k, 1)
		if err != nil {
			return nil, err
		}
		withoutKG, err := adapt(k, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E4Row{Shots: k, AccKG: withKG, AccNoKG: withoutKG})
	}
	return rows, nil
}

// FprintE4 renders Figure 1's series.
func FprintE4(w io.Writer, heldOut string, rows []E4Row) {
	fmt.Fprintf(w, "E4 (Fig. 1) — few-shot adaptation to held-out task %q\n", heldOut)
	fmt.Fprintf(w, "%-8s %12s %12s %10s\n", "shots/k", "with KG", "without KG", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %11.1f%% %11.1f%% %+9.1f%%\n",
			r.Shots, 100*r.AccKG, 100*r.AccNoKG, 100*(r.AccKG-r.AccNoKG))
	}
}
