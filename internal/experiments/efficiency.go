package experiments

import (
	"fmt"
	"io"

	"itask/internal/baseline"
	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// E9Row is one point of the sample-efficiency study: accuracy on the target
// task as a function of how many target-task scenes each approach sees.
type E9Row struct {
	Samples int
	// ITaskAcc is the full pipeline: leave-one-out multi-task teacher →
	// distilled student on the n samples → KG prior conditioning.
	ITaskAcc float64
	// CNNAcc is the conventional baseline trained from scratch on the same
	// n samples.
	CNNAcc float64
	// ViTScratchAcc is the student architecture trained from scratch —
	// separates the pipeline's contribution from the architecture's.
	ViTScratchAcc float64
}

// E9SampleEfficiency quantifies the abstract's motivation: "conventional
// models often struggle ... requiring vast datasets", while iTask
// "generalize[s] efficiently from limited samples". The teacher is trained
// WITHOUT the target task, so every approach sees exactly n target scenes.
func E9SampleEfficiency(env *Env, targetName string, sampleCounts []int) ([]E9Row, error) {
	var target dataset.Task
	var pretrain []dataset.Task
	found := false
	for _, t := range env.Tasks {
		if t.Name == targetName {
			target = t
			found = true
		} else {
			pretrain = append(pretrain, t)
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown target task %q", targetName)
	}

	rng := tensor.NewRNG(606060)
	// Leave-one-out teacher: the reusable, task-agnostic part of iTask.
	looTeacher := vit.New(TeacherModelCfg(), rng.Split())
	mixed := dataset.BuildMixed(pretrain, env.Scale.TrainPerTask, env.Gen, rng.Split())
	tcfg := distill.DefaultTrainConfig()
	tcfg.Epochs = env.Scale.TeacherEpochs
	tcfg.Seed = rng.Uint64()
	if _, err := distill.Train(looTeacher, mixed, tcfg); err != nil {
		return nil, err
	}

	priors := env.Priors[targetName]
	val := env.Val[targetName]
	classes := dataset.ClassInts(target.Classes)
	th := env.Th

	var rows []E9Row
	for _, n := range sampleCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: sample count %d", n)
		}
		support := dataset.Build(target, n, env.Gen, tensor.NewRNG(uint64(3000+n)))

		// iTask: distill from the LOO teacher on the n samples, condition
		// with the task's knowledge graph.
		student := vit.New(StudentModelCfg(), tensor.NewRNG(uint64(4000+n)))
		dcfg := distill.DefaultDistillConfig()
		dcfg.Train.Epochs = env.Scale.DistillEpochs
		dcfg.Train.Seed = uint64(5000 + n)
		if _, err := distill.Distill(looTeacher, student, support, dcfg); err != nil {
			return nil, err
		}
		if err := distill.ApplyClassPriors(student, priors, 1); err != nil {
			return nil, err
		}
		itaskAcc := eval.Run(eval.DetectorOf(student, th), val, classes, th).Accuracy

		// Conventional CNN from scratch.
		cnn := baseline.NewCNN(baseline.DefaultCNNConfig(int(scene.NumClasses)), tensor.NewRNG(uint64(6000+n)))
		ccfg := baseline.DefaultTrainConfig()
		ccfg.Epochs = env.Scale.DistillEpochs
		ccfg.Seed = uint64(7000 + n)
		if _, err := cnn.Train(support, ccfg); err != nil {
			return nil, err
		}
		cnnDF := eval.DetectFunc(func(img *tensor.Tensor) []geom.Scored {
			return cnn.Detect(img, th.Obj, th.NMSIoU)
		})
		cnnAcc := eval.Run(cnnDF, val, classes, th).Accuracy

		// ViT (student architecture) from scratch — architecture control.
		scratch := vit.New(StudentModelCfg(), tensor.NewRNG(uint64(8000+n)))
		scfg := distill.DefaultTrainConfig()
		scfg.Epochs = env.Scale.DistillEpochs
		scfg.Seed = uint64(9000 + n)
		if _, err := distill.Train(scratch, support, scfg); err != nil {
			return nil, err
		}
		scratchAcc := eval.Run(eval.DetectorOf(scratch, th), val, classes, th).Accuracy

		rows = append(rows, E9Row{
			Samples: n, ITaskAcc: itaskAcc, CNNAcc: cnnAcc, ViTScratchAcc: scratchAcc,
		})
	}
	return rows, nil
}

// FprintE9 renders the sample-efficiency series.
func FprintE9(w io.Writer, targetName string, rows []E9Row) {
	fmt.Fprintf(w, "E9 — sample efficiency on task %q (accuracy vs target-task scenes)\n", targetName)
	fmt.Fprintf(w, "%-8s %10s %14s %16s\n", "scenes", "iTask", "CNN-scratch", "ViT-scratch")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %9.1f%% %13.1f%% %15.1f%%\n",
			r.Samples, 100*r.ITaskAcc, 100*r.CNNAcc, 100*r.ViTScratchAcc)
	}
}
