package experiments

import (
	"fmt"
	"io"

	"itask/internal/geom"
	"itask/internal/hwsim"
	"itask/internal/sched"
	"itask/internal/tensor"
)

// E12Row is one arrival-rate point of the real-time streaming study.
type E12Row struct {
	ArrivalFPS float64
	// StudentsP95US / StudentsMissPct: per-task students under a roomy
	// memory budget (the intended deployment).
	StudentsP95US   float64
	StudentsMissPct float64
	// GeneralistP95US / GeneralistMissPct: quantized generalist only.
	GeneralistP95US   float64
	GeneralistMissPct float64
	// TightP95US / TightMissPct: students under a tight budget that forces
	// cache thrash on mission switches.
	TightP95US   float64
	TightMissPct float64
}

// E12Streaming sweeps the frame arrival rate over a mixed-mission stream
// and reports tail latency and deadline misses for three deployments. All
// service times come from the accelerator model (paper-scale geometries),
// so this is the end-to-end "real-time processing" evaluation the paper's
// hardware section motivates.
func E12Streaming(deadlineUS float64, rates []float64) ([]E12Row, error) {
	accel := hwsim.DefaultAccel()
	studentLat := hwsim.SimulateAccel(accel, HWStudentCfg()).LatencyUS
	generalLat := hwsim.SimulateAccel(accel, HWTeacherCfg()).LatencyUS
	tasks := []string{"patrol", "triage", "inspect", "harvest"}
	mix := map[string]float64{}
	for _, task := range tasks {
		mix[task] = 1
	}
	noop := func(img *tensor.Tensor) []geom.Scored { return nil }

	const studentBytes = 200 << 10
	const generalBytes = 400 << 10

	build := func(withStudents bool, budget int64) (*sched.Scheduler, error) {
		s := sched.New(budget)
		if err := s.Register(sched.Model{
			Name: "generalist", Kind: sched.Generalist,
			Bytes: generalBytes, LatencyUS: generalLat, Detect: noop,
		}); err != nil {
			return nil, err
		}
		if withStudents {
			for _, task := range tasks {
				if err := s.Register(sched.Model{
					Name: task + "-student", Kind: sched.TaskSpecific, Task: task,
					Bytes: studentBytes, LatencyUS: studentLat, Detect: noop,
				}); err != nil {
					return nil, err
				}
			}
		}
		return s, nil
	}

	var rows []E12Row
	for _, fps := range rates {
		cfg := sched.StreamConfig{
			ArrivalFPS: fps, Frames: 4000, DeadlineUS: deadlineUS, Mix: mix, Seed: 42,
		}
		run := func(withStudents bool, budget int64) (float64, float64, error) {
			s, err := build(withStudents, budget)
			if err != nil {
				return 0, 0, err
			}
			st, err := s.SimulateStream(cfg)
			if err != nil {
				return 0, 0, err
			}
			return st.P95US, 100 * float64(st.DeadlineMisses) / float64(st.Frames), nil
		}
		row := E12Row{ArrivalFPS: fps}
		var err error
		// Roomy budget: generalist + all students resident.
		if row.StudentsP95US, row.StudentsMissPct, err = run(true, 2<<20); err != nil {
			return nil, err
		}
		if row.GeneralistP95US, row.GeneralistMissPct, err = run(false, 2<<20); err != nil {
			return nil, err
		}
		// Tight budget: generalist + one student; switches thrash.
		if row.TightP95US, row.TightMissPct, err = run(true, generalBytes+studentBytes+(50<<10)); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintE12 renders the streaming study.
func FprintE12(w io.Writer, deadlineUS float64, rows []E12Row) {
	fmt.Fprintf(w, "E12 — real-time streaming, mixed missions (deadline %.0f us, P95 sojourn / miss rate)\n", deadlineUS)
	fmt.Fprintf(w, "%-8s %22s %22s %24s\n", "fps", "students(roomy)", "generalist-only", "students(tight memory)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.0f %14.0fus %5.1f%% %14.0fus %5.1f%% %16.0fus %5.1f%%\n",
			r.ArrivalFPS,
			r.StudentsP95US, r.StudentsMissPct,
			r.GeneralistP95US, r.GeneralistMissPct,
			r.TightP95US, r.TightMissPct)
	}
}
