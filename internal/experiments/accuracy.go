package experiments

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/eval"
)

// E1Row is one row of Table 1: per-task accuracy of the three
// configurations (claim C1: task-specific beats quantized in-task).
type E1Row struct {
	Task string
	// TeacherAcc is the float multi-task teacher (upper reference).
	TeacherAcc float64
	// StudentAcc is the distilled task-specific configuration.
	StudentAcc float64
	// QuantAcc is the quantized generalist configuration.
	QuantAcc float64
	// StudentMAP and QuantMAP are the corresponding mAPs.
	StudentMAP, QuantMAP float64
	// GapPct is 100·(StudentAcc − QuantAcc): the paper reports ~15%.
	GapPct float64
}

// E1ConfigAccuracy runs Table 1.
func E1ConfigAccuracy(env *Env) []E1Row {
	var rows []E1Row
	qdet := env.quantDetector()
	for _, task := range env.Tasks {
		classes := dataset.ClassInts(task.Classes)
		val := env.Val[task.Name]
		teacher := eval.Run(eval.DetectorOf(env.Teacher, env.Th), val, classes, env.Th)
		student := eval.Run(eval.DetectorOf(env.Students[task.Name], env.Th), val, classes, env.Th)
		quantS := eval.Run(qdet, val, classes, env.Th)
		rows = append(rows, E1Row{
			Task:       task.Name,
			TeacherAcc: teacher.Accuracy,
			StudentAcc: student.Accuracy,
			QuantAcc:   quantS.Accuracy,
			StudentMAP: student.MAP,
			QuantMAP:   quantS.MAP,
			GapPct:     100 * (student.Accuracy - quantS.Accuracy),
		})
	}
	return rows
}

// FprintE1 renders Table 1.
func FprintE1(w io.Writer, rows []E1Row) {
	fmt.Fprintf(w, "E1 (Table 1) — configuration accuracy per task\n")
	fmt.Fprintf(w, "%-10s %10s %14s %12s %12s %10s %8s\n",
		"task", "teacher", "task-specific", "quantized", "ts-mAP", "q-mAP", "gap")
	var meanGap float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.1f%% %13.1f%% %11.1f%% %12.3f %10.3f %+7.1f%%\n",
			r.Task, 100*r.TeacherAcc, 100*r.StudentAcc, 100*r.QuantAcc, r.StudentMAP, r.QuantMAP, r.GapPct)
		meanGap += r.GapPct
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "mean task-specific advantage: %+.1f%% (paper claim C1: +15%%)\n", meanGap/float64(len(rows)))
	}
}

// E2Row is one row of Table 2: a configuration evaluated across every task
// (claim C2: the quantized generalist is robust off-task, students are not).
type E2Row struct {
	Config string
	// AccOn holds accuracy per evaluation task, keyed by task name order
	// of Env.Tasks.
	AccOn []float64
	// MeanAcc is the across-task mean.
	MeanAcc float64
	// WorstAcc is the minimum across tasks.
	WorstAcc float64
}

// E2MultiTask runs Table 2: each per-task student plus the quantized
// generalist, evaluated on all four tasks.
func E2MultiTask(env *Env) []E2Row {
	var rows []E2Row
	evalConfig := func(name string, df eval.DetectFunc) E2Row {
		row := E2Row{Config: name, WorstAcc: 1}
		for _, task := range env.Tasks {
			s := eval.Run(df, env.Val[task.Name], dataset.ClassInts(task.Classes), env.Th)
			row.AccOn = append(row.AccOn, s.Accuracy)
			row.MeanAcc += s.Accuracy
			if s.Accuracy < row.WorstAcc {
				row.WorstAcc = s.Accuracy
			}
		}
		row.MeanAcc /= float64(len(env.Tasks))
		return row
	}
	for _, task := range env.Tasks {
		rows = append(rows, evalConfig("student:"+task.Name, eval.DetectorOf(env.Students[task.Name], env.Th)))
	}
	rows = append(rows, evalConfig("quantized-generalist", env.quantDetector()))
	return rows
}

// FprintE2 renders Table 2.
func FprintE2(w io.Writer, env *Env, rows []E2Row) {
	fmt.Fprintf(w, "E2 (Table 2) — cross-task robustness (accuracy %%)\n")
	fmt.Fprintf(w, "%-22s", "config \\ eval task")
	for _, t := range env.Tasks {
		fmt.Fprintf(w, " %9s", t.Name)
	}
	fmt.Fprintf(w, " %9s %9s\n", "mean", "worst")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s", r.Config)
		for _, a := range r.AccOn {
			fmt.Fprintf(w, " %8.1f%%", 100*a)
		}
		fmt.Fprintf(w, " %8.1f%% %8.1f%%\n", 100*r.MeanAcc, 100*r.WorstAcc)
	}
}
