package experiments

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// tinyScale keeps the experiment-harness tests fast; the benchmark harness
// runs QuickScale and the CLI can run FullScale.
func tinyScale() Scale {
	return Scale{
		Name:          "tiny",
		TrainPerTask:  40,
		DistillSample: 64,
		ValPerTask:    24,
		TeacherEpochs: 14,
		DistillEpochs: 14,
		FewShotKs:     []int{0, 2},
		FewShotEpochs: 6,
		E9Samples:     []int{8, 32},
	}
}

var (
	tinyEnvOnce sync.Once
	tinyEnv     *Env
	tinyEnvErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping trained-environment tests in -short mode")
	}
	tinyEnvOnce.Do(func() {
		tinyEnv, tinyEnvErr = BuildEnv(tinyScale())
	})
	if tinyEnvErr != nil {
		t.Fatal(tinyEnvErr)
	}
	return tinyEnv
}

func TestBuildEnvArtifacts(t *testing.T) {
	env := testEnv(t)
	if env.Teacher == nil || env.Quant == nil {
		t.Fatal("missing generalist artifacts")
	}
	if len(env.Students) != len(env.Tasks) {
		t.Fatalf("students %d for %d tasks", len(env.Students), len(env.Tasks))
	}
	for _, task := range env.Tasks {
		if env.Graphs[task.Name] == nil || env.Priors[task.Name] == nil {
			t.Errorf("task %s missing KG artifacts", task.Name)
		}
		if env.Val[task.Name].Len() != env.Scale.ValPerTask {
			t.Errorf("task %s val size %d", task.Name, env.Val[task.Name].Len())
		}
	}
}

func TestE1Shape(t *testing.T) {
	env := testEnv(t)
	rows := E1ConfigAccuracy(env)
	if len(rows) != len(env.Tasks) {
		t.Fatalf("E1 rows %d", len(rows))
	}
	var sb strings.Builder
	FprintE1(&sb, rows)
	if !strings.Contains(sb.String(), "task-specific") {
		t.Error("E1 table malformed")
	}
	for _, r := range rows {
		for _, v := range []float64{r.TeacherAcc, r.StudentAcc, r.QuantAcc} {
			if v < 0 || v > 1 {
				t.Errorf("E1 %s accuracy out of range: %+v", r.Task, r)
			}
		}
	}
	// Claim C1 direction at tiny scale: on average the task-specific
	// students should not lose to the quantized generalist.
	var gap float64
	for _, r := range rows {
		gap += r.GapPct
	}
	if gap/float64(len(rows)) < -5 {
		t.Errorf("mean task-specific gap %.1f%%: direction of claim C1 violated", gap/float64(len(rows)))
	}
}

func TestE2Shape(t *testing.T) {
	env := testEnv(t)
	rows := E2MultiTask(env)
	if len(rows) != len(env.Tasks)+1 {
		t.Fatalf("E2 rows %d", len(rows))
	}
	gen := rows[len(rows)-1]
	if gen.Config != "quantized-generalist" {
		t.Fatal("last row should be the generalist")
	}
	// Claim C2 direction: the generalist's worst-task accuracy beats the
	// average student's worst-task accuracy (students collapse off-task).
	var studentWorst float64
	for _, r := range rows[:len(rows)-1] {
		studentWorst += r.WorstAcc
	}
	studentWorst /= float64(len(rows) - 1)
	if gen.WorstAcc < studentWorst {
		t.Errorf("generalist worst %.3f should beat mean student worst %.3f", gen.WorstAcc, studentWorst)
	}
	var sb strings.Builder
	FprintE2(&sb, env, rows)
	if !strings.Contains(sb.String(), "worst") {
		t.Error("E2 table malformed")
	}
}

func TestE3AndHardwareFigures(t *testing.T) {
	res := E3Hardware()
	if len(res.Rows) != 4 {
		t.Fatalf("E3 rows %d", len(res.Rows))
	}
	if res.SpeedupVsGPU < 2 || res.SpeedupVsGPU > 6 {
		t.Errorf("speedup %.2f outside 3.5x ballpark", res.SpeedupVsGPU)
	}
	if res.EnergyReductionVsGPU <= 0.3 {
		t.Errorf("energy reduction %.2f too small", res.EnergyReductionVsGPU)
	}
	FprintE3(os.Stderr, res)

	sweep := E5ArraySweep()
	if len(sweep) != 5 {
		t.Fatalf("E5 rows %d", len(sweep))
	}
	// Latency falls from 8x8 through 32x32; past the model's parallelism it
	// may plateau or regress (tile padding) — that knee is the figure's
	// point. Utilization falls monotonically with array size.
	for i := 1; i < 3; i++ {
		if sweep[i].LatencyUS >= sweep[i-1].LatencyUS {
			t.Errorf("latency should fall up to 32x32: %+v", sweep)
		}
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Utilization >= sweep[i-1].Utilization {
			t.Errorf("utilization should fall with array size: %+v", sweep)
		}
	}

	breakdown := E6EnergyBreakdown()
	shares := map[string]float64{}
	for _, r := range breakdown {
		shares[r.Device] += r.SharePct
		if r.EnergyUJ < 0 {
			t.Errorf("negative energy component %+v", r)
		}
	}
	for dev, total := range shares {
		if total < 99 || total > 101 {
			t.Errorf("%s energy shares sum to %.1f%%, want 100%%", dev, total)
		}
	}

	batches := E3GPUBatchSweep()
	if batches[len(batches)-1].PerImageUS >= batches[0].PerImageUS {
		t.Error("GPU per-image latency should improve with batch")
	}
}

func TestE4Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E4FewShot(env, "harvest")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(env.Scale.FewShotKs) {
		t.Fatalf("E4 rows %d", len(rows))
	}
	// More shots must not make KG-guided adaptation dramatically worse;
	// and the KG curve should dominate on average.
	var kgSum, noSum float64
	for _, r := range rows {
		kgSum += r.AccKG
		noSum += r.AccNoKG
	}
	if kgSum < noSum {
		t.Errorf("KG curve (%.3f total) should dominate no-KG (%.3f)", kgSum, noSum)
	}
	var sb strings.Builder
	FprintE4(&sb, "harvest", rows)
	if !strings.Contains(sb.String(), "with KG") {
		t.Error("E4 table malformed")
	}
	if _, err := E4FewShot(env, "nope"); err == nil {
		t.Error("unknown held-out task should error")
	}
}

func TestE7Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E7BitWidth(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("E7 rows %d", len(rows))
	}
	// Within a scheme, accuracy must not improve as bits shrink (weak
	// monotonicity with a small tolerance for eval noise).
	const tol = 0.08
	for s := 0; s < 2; s++ {
		grp := rows[s*3 : s*3+3] // bits 8,6,4
		if grp[2].MeanAcc > grp[0].MeanAcc+tol {
			t.Errorf("4-bit (%.3f) should not beat 8-bit (%.3f)", grp[2].MeanAcc, grp[0].MeanAcc)
		}
		if grp[2].WeightKB >= grp[0].WeightKB {
			t.Error("4-bit weights should be smaller than 8-bit")
		}
	}
	var sb strings.Builder
	FprintE7(&sb, rows)
	if !strings.Contains(sb.String(), "per-channel") {
		t.Error("E7 table malformed")
	}
}

func TestE8Shapes(t *testing.T) {
	env := testEnv(t)
	kgRows, err := E8KGAblation(env, "patrol")
	if err != nil {
		t.Fatal(err)
	}
	if len(kgRows) != 5 || kgRows[0].Removed != "none" {
		t.Fatalf("E8a rows %+v", kgRows)
	}
	// The full graph must separate task classes from the rest, and at least
	// one attribute family must be load-bearing (its removal reduces
	// separation). Individual removals can go either way — Match averages
	// over constrained families, so dropping a weakly-informative family
	// can sharpen the remaining evidence.
	if kgRows[0].Separation <= 0 {
		t.Errorf("full graph separation %.3f should be positive", kgRows[0].Separation)
	}
	loadBearing := false
	for _, r := range kgRows[1:] {
		if r.Separation < kgRows[0].Separation-1e-9 {
			loadBearing = true
		}
		if r.Separation < -1 || r.Separation > 1 {
			t.Errorf("separation out of range: %+v", r)
		}
	}
	if !loadBearing {
		t.Error("no attribute family is load-bearing for the patrol task")
	}
	dRows, err := E8DistillAblation(env, "inspect")
	if err != nil {
		t.Fatal(err)
	}
	if len(dRows) != 4 {
		t.Fatalf("E8b rows %d", len(dRows))
	}
	var sb strings.Builder
	FprintE8KG(&sb, "patrol", kgRows)
	FprintE8Distill(&sb, "inspect", dRows)
	if !strings.Contains(sb.String(), "zero-shot") {
		t.Error("E8 tables malformed")
	}
	if _, err := E8KGAblation(env, "nope"); err == nil {
		t.Error("unknown task should error")
	}
	if _, err := E8DistillAblation(env, "nope"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestE9Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E9SampleEfficiency(env, "triage", env.Scale.E9Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(env.Scale.E9Samples) {
		t.Fatalf("E9 rows %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.ITaskAcc, r.CNNAcc, r.ViTScratchAcc} {
			if v < 0 || v > 1 {
				t.Errorf("E9 accuracy out of range: %+v", r)
			}
		}
	}
	// Claim direction: at the smallest budget, the iTask pipeline should
	// not lose to the conventional from-scratch baselines.
	first := rows[0]
	if first.ITaskAcc+0.05 < first.CNNAcc || first.ITaskAcc+0.05 < first.ViTScratchAcc {
		t.Errorf("iTask should dominate at low data: %+v", first)
	}
	var sb strings.Builder
	FprintE9(&sb, "triage", rows)
	if !strings.Contains(sb.String(), "CNN-scratch") {
		t.Error("E9 table malformed")
	}
	if _, err := E9SampleEfficiency(env, "nope", []int{4}); err == nil {
		t.Error("unknown task should error")
	}
	if _, err := E9SampleEfficiency(env, "triage", []int{0}); err == nil {
		t.Error("zero sample count should error")
	}
}

func TestE10Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E10NoiseRobustness(env, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E10 rows %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.FloatAcc, r.Int8Acc, r.Int4Acc} {
			if v < 0 || v > 1 {
				t.Errorf("accuracy out of range: %+v", r)
			}
		}
	}
	// Heavy noise must not HELP any variant (weak monotonic, with noise
	// tolerance).
	const tol = 0.08
	if rows[1].FloatAcc > rows[0].FloatAcc+tol {
		t.Errorf("noise improved float accuracy: %+v", rows)
	}
	// int8 should track float closely at nominal noise.
	if rows[0].Int8Acc < rows[0].FloatAcc-0.15 {
		t.Errorf("int8 far below float at nominal noise: %+v", rows[0])
	}
	var sb strings.Builder
	FprintE10(&sb, rows)
	if !strings.Contains(sb.String(), "noise scale") {
		t.Error("E10 table malformed")
	}
	if _, err := E10NoiseRobustness(env, []float64{-1}); err == nil {
		t.Error("negative scale should error")
	}
}

func TestE12Shape(t *testing.T) {
	// Analytical + event-sim only: no trained environment needed.
	rows, err := E12Streaming(33000, []float64{100, 2000, 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E12 rows %d", len(rows))
	}
	// At low load everyone is comfortable; at high load the student
	// deployment (faster service) must beat the generalist-only one.
	low, high := rows[0], rows[2]
	if low.StudentsMissPct > 1 || low.GeneralistMissPct > 1 {
		t.Errorf("misses at low load: %+v", low)
	}
	if high.StudentsP95US >= high.GeneralistP95US {
		t.Errorf("students should sustain higher rates: %+v", high)
	}
	// Tight memory can only hurt relative to roomy.
	for _, r := range rows {
		if r.TightP95US+1e-9 < r.StudentsP95US {
			t.Errorf("tight budget outperformed roomy: %+v", r)
		}
	}
	var sb strings.Builder
	FprintE12(&sb, 33000, rows)
	if !strings.Contains(sb.String(), "generalist-only") {
		t.Error("E12 table malformed")
	}
}

func TestE13Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E13FaultInjection(env, []float64{1e-4, 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E13 rows %d", len(rows))
	}
	if rows[1].FlippedBits <= rows[0].FlippedBits {
		t.Errorf("higher rate should flip more bits: %+v", rows)
	}
	// Heavy corruption must hurt (well beyond eval noise).
	if rows[1].DeltaVsClean > -0.02 && rows[1].MeanAcc > 0.05 {
		t.Errorf("1%% bit flips should visibly degrade accuracy: %+v", rows[1])
	}
	var sb strings.Builder
	FprintE13(&sb, rows)
	if !strings.Contains(sb.String(), "soft-error") {
		t.Error("E13 table malformed")
	}
	if _, err := E13FaultInjection(env, []float64{-1}); err == nil {
		t.Error("negative rate should error")
	}
}

func TestE11Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := E11DeploymentVariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("E11 rows %d", len(rows))
	}
	if rows[0].DeltaVsDeployed != 0 {
		t.Error("baseline delta must be zero")
	}
	// No simplification may cost more than a modest accuracy budget.
	for _, r := range rows {
		if r.MeanAcc < 0 || r.MeanAcc > 1 {
			t.Errorf("accuracy out of range: %+v", r)
		}
		if r.DeltaVsDeployed < -0.15 {
			t.Errorf("variant %q loses too much accuracy: %+v", r.Variant, r)
		}
	}
	var sb strings.Builder
	FprintE11(&sb, rows)
	if !strings.Contains(sb.String(), "deployed") {
		t.Error("E11 table malformed")
	}
}
